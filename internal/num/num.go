// Package num centralizes epsilon-tolerant float64 comparisons for the
// synthesis flow's cost, bound, and distance arithmetic.
//
// The exactness claims of the CDCS algorithm (Lemmas 3.1/3.2, Theorems
// 3.1/3.2) are stated over real arithmetic; the implementation computes
// the same quantities in float64, where sums of Euclidean distances and
// bandwidth ratios accumulate rounding noise on the order of 1e-12 per
// operation. Comparing such values with raw `==`, `<=`, or `>=` makes
// prune decisions and tie-breaks depend on summation order — exactly
// the kind of silent nondeterminism the cdcsvet `floatcmp` analyzer
// exists to reject. Every cost/bound comparison in the hot path goes
// through this package instead, with one shared absolute tolerance.
//
// The helpers come in two deliberate flavors:
//
//   - Eq/LessEq/GreaterEq treat values within Eps as equal, so a
//     mathematical tie that float noise split apart is still a tie;
//   - Less/Greater require a margin of more than Eps, so "strictly
//     better" means better beyond noise.
//
// Eps is absolute, not relative: the quantities compared here (costs,
// distances, bandwidths) are unit-scaled in the paper's benchmarks,
// magnitudes roughly 1e-3..1e4, where an absolute 1e-9 is far above
// accumulated rounding error and far below any genuine difference.
package num

import "math"

// Eps is the shared comparison tolerance. It matches the 1e-9 slack the
// synthesis dominance check has always used, sitting comfortably
// between float64 rounding noise (~1e-12) and the smallest meaningful
// cost difference in the supported workloads.
const Eps = 1e-9

// Eq reports a ≈ b: the values differ by at most Eps.
func Eq(a, b float64) bool { return math.Abs(a-b) <= Eps }

// Less reports a < b by more than Eps (definitely less, beyond noise).
func Less(a, b float64) bool { return a < b-Eps }

// LessEq reports a ≤ b within tolerance: a is smaller or Eq to b.
func LessEq(a, b float64) bool { return a <= b+Eps }

// Greater reports a > b by more than Eps (definitely greater).
func Greater(a, b float64) bool { return a > b+Eps }

// GreaterEq reports a ≥ b within tolerance: a is larger or Eq to b.
func GreaterEq(a, b float64) bool { return a >= b-Eps }

// IsZero reports |a| ≤ Eps.
func IsZero(a float64) bool { return math.Abs(a) <= Eps }

// Positive reports a > Eps: positive beyond noise.
func Positive(a float64) bool { return a > Eps }

// Ceil is an epsilon-guarded integer ceiling: a quotient that float
// noise nudged just above an integer (2.0000000000000004) still rounds
// to that integer instead of demanding one more unit of capacity.
func Ceil(x float64) int { return int(math.Ceil(x - Eps)) }

// Exact comparators
//
// The helpers below are deliberately tolerance-free. The audit of the
// branch-and-bound incumbent/pruning semantics (the PR-3 ROADMAP item)
// concluded that epsilon does NOT belong in the search's ordering
// decisions, for two reasons:
//
//   - Soundness. The prune test discards a subtree when its admissible
//     lower bound cannot beat the incumbent. Widening "cannot beat" by
//     Eps (pruning at bound >= incumbent-Eps) could discard a subtree
//     containing a solution genuinely better by up to Eps — the exact
//     optimum the paper's tables claim. Pruning must use the same
//     exact ordering the incumbent update uses; a mathematical tie
//     broken either way is fine, a discarded improvement is not.
//
//   - Reproducibility. The CI bench gate pins the search's node,
//     prune, and incumbent counters exactly; an epsilon in any
//     comparison on the search path moves them. Exact comparisons
//     keep the explored tree a pure function of the enumeration
//     order.
//
// Epsilon remains correct where a *tie* must be recognized as a tie —
// dominance tests, greedy tie-breaks layered behind an Eq guard, gap
// accounting — which is what the tolerant helpers above are for. The
// cdcsvet floatcmp analyzer flags every raw float ordering in the
// solver packages; routing a comparison through one of these helpers
// is the reviewed statement that it belongs to the exact family.

// Improves reports that cost a is strictly better (lower) than
// incumbent b, exactly: the branch-and-bound incumbent update and
// min-cost selections. Must stay the precise complement of NoBetter.
func Improves(a, b float64) bool { return a < b }

// NoBetter reports a ≥ b exactly: the admissible prune test — the
// subtree's lower bound a cannot improve on incumbent b. Exact by the
// soundness argument above.
func NoBetter(a, b float64) bool { return a >= b }

// Stronger reports a > b exactly: keep the tighter of two valid lower
// bounds. Either choice is sound, so exactness here is purely for
// counter reproducibility.
func Stronger(a, b float64) bool { return a > b }

// Below reports a < b exactly: threshold and feasibility tests
// (capacity vs demand, slack vs raise) where the model's semantics
// are a hard cutoff, plus ordering comparators that feed sorts.
func Below(a, b float64) bool { return a < b }

// AtMost reports a ≤ b exactly: the non-strict counterpart of Below,
// for dominance preconditions stated as ≤ in the paper.
func AtMost(a, b float64) bool { return a <= b }

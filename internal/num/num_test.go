package num

import (
	"math"
	"testing"
)

func TestEq(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{1, 1, true},
		{1, 1 + 1e-12, true},  // rounding noise is a tie
		{1, 1 + 0.5e-9, true}, // within Eps
		{1, 1 + 2e-9, false},  // beyond Eps
		{0, 0, true},
		{0, Eps, true}, // boundary is inclusive
		{-1, 1, false},
		{1, 2, false},
		{math.Inf(1), math.Inf(1), false}, // Inf-Inf is NaN: not equal
		{3.5, math.Inf(1), false},
	}
	for _, c := range cases {
		if got := Eq(c.a, c.b); got != c.want {
			t.Errorf("Eq(%g, %g) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := Eq(c.b, c.a); got != c.want {
			t.Errorf("Eq(%g, %g) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestOrderings(t *testing.T) {
	cases := []struct {
		name                             string
		a, b                             float64
		less, lessEq, greater, greaterEq bool
	}{
		{"far below", 1, 2, true, true, false, false},
		{"far above", 2, 1, false, false, true, true},
		{"exactly equal", 1, 1, false, true, false, true},
		{"noise above", 1 + 1e-12, 1, false, true, false, true},
		{"noise below", 1 - 1e-12, 1, false, true, false, true},
		{"just beyond eps above", 1 + 2e-9, 1, false, false, true, true},
		{"just beyond eps below", 1 - 2e-9, 1, true, true, false, false},
		{"vs +inf", 1, math.Inf(1), true, true, false, false},
	}
	for _, c := range cases {
		if got := Less(c.a, c.b); got != c.less {
			t.Errorf("%s: Less(%v, %v) = %v, want %v", c.name, c.a, c.b, got, c.less)
		}
		if got := LessEq(c.a, c.b); got != c.lessEq {
			t.Errorf("%s: LessEq(%v, %v) = %v, want %v", c.name, c.a, c.b, got, c.lessEq)
		}
		if got := Greater(c.a, c.b); got != c.greater {
			t.Errorf("%s: Greater(%v, %v) = %v, want %v", c.name, c.a, c.b, got, c.greater)
		}
		if got := GreaterEq(c.a, c.b); got != c.greaterEq {
			t.Errorf("%s: GreaterEq(%v, %v) = %v, want %v", c.name, c.a, c.b, got, c.greaterEq)
		}
	}
}

// The two flavors partition cleanly: for any pair, exactly one of
// Less / Eq / Greater holds, and the Eq-inclusive forms agree.
func TestTrichotomy(t *testing.T) {
	vals := []float64{0, 1e-12, Eps, 2e-9, 0.5, 1, 1 + 1e-12, 1 + 2e-9, 100, -3}
	for _, a := range vals {
		for _, b := range vals {
			n := 0
			if Less(a, b) {
				n++
			}
			if Eq(a, b) {
				n++
			}
			if Greater(a, b) {
				n++
			}
			if n != 1 {
				t.Errorf("trichotomy violated for (%v, %v): %d of {Less,Eq,Greater} hold", a, b, n)
			}
			if LessEq(a, b) != (Less(a, b) || Eq(a, b)) {
				t.Errorf("LessEq(%v, %v) disagrees with Less||Eq", a, b)
			}
			if GreaterEq(a, b) != (Greater(a, b) || Eq(a, b)) {
				t.Errorf("GreaterEq(%v, %v) disagrees with Greater||Eq", a, b)
			}
		}
	}
}

func TestZeroAndCeil(t *testing.T) {
	if !IsZero(0) || !IsZero(1e-12) || IsZero(2e-9) || IsZero(-1) {
		t.Error("IsZero boundary behavior wrong")
	}
	if Positive(0) || Positive(1e-12) || !Positive(2e-9) || !Positive(1) {
		t.Error("Positive boundary behavior wrong")
	}
	ceilCases := []struct {
		x    float64
		want int
	}{
		{2.0, 2},
		{2.0000000000000004, 2}, // 2.4/1.2 in float64
		{2.0 + 1e-8, 3},         // genuinely above
		{1.5, 2},
		{0, 0},
		{0.9999999999, 1}, // just below an integer still needs a full unit
	}
	for _, c := range ceilCases {
		if got := Ceil(c.x); got != c.want {
			t.Errorf("Ceil(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

// Package soc adapts the CDCS flow to on-chip communication synthesis,
// the paper's second application domain (Section 4, Figure 5): global
// wires are segmented at the technology's critical length l_crit by
// inserting optimally-sized repeaters (Otten and Brayton's
// planning-for-performance model, the paper's reference [11]), distances
// are Manhattan, and the cost figure is the number of repeaters —
// ⌊(|xᵥ−xᵤ| + |yᵥ−yᵤ|) / l_crit⌋ per channel.
package soc

import (
	"fmt"
	"math"

	"repro/internal/library"
	"repro/internal/model"
)

// Technology describes a process node for the critical-length wire
// model. Distances are millimeters.
type Technology struct {
	// Name is the process label ("0.18um").
	Name string
	// LCrit is the critical repeater spacing: the longest wire that
	// meets timing without an intermediate repeater.
	LCrit float64
	// WireBandwidth is the bandwidth a repeated wire sustains, in the
	// application's bandwidth unit; on-chip wires are clocked, so one
	// wire carries one word per cycle regardless of length once
	// repeated at l_crit.
	WireBandwidth float64
}

// Tech180nm is the 0.18 µm process of the paper's example, with
// l_crit = 0.6 mm.
func Tech180nm() Technology {
	return Technology{Name: "0.18um", LCrit: 0.6, WireBandwidth: 100}
}

// FromParasitics derives the critical length from first-order
// parasitics: a wire of resistance r and capacitance c per unit length
// driven through repeaters of output resistance rd and input
// capacitance cg has optimal spacing l_crit = sqrt(2·rd·cg / (r·c)).
func FromParasitics(name string, rd, cg, r, c, wireBandwidth float64) (Technology, error) {
	if rd <= 0 || cg <= 0 || r <= 0 || c <= 0 {
		return Technology{}, fmt.Errorf("soc: parasitics must be positive (rd=%g cg=%g r=%g c=%g)", rd, cg, r, c)
	}
	return Technology{
		Name:          name,
		LCrit:         math.Sqrt(2 * rd * cg / (r * c)),
		WireBandwidth: wireBandwidth,
	}, nil
}

// RepeaterCount is the paper's on-chip cost function for one channel:
// ⌊d / l_crit⌋ repeaters for a wire of Manhattan length d.
func (t Technology) RepeaterCount(d float64) int {
	if d < 0 {
		return 0
	}
	return int(math.Floor(d / t.LCrit))
}

// TotalRepeaters sums RepeaterCount over all channels of a constraint
// graph (which must use the Manhattan norm to be meaningful on-chip).
func (t Technology) TotalRepeaters(cg *model.ConstraintGraph) int {
	total := 0
	for i := 0; i < cg.NumChannels(); i++ {
		total += t.RepeaterCount(cg.Distance(model.ChannelID(i)))
	}
	return total
}

// Library returns the paper's first-cut on-chip communication library:
// a single metal-wire link of span l_crit (free metal, since the cost
// criterion counts repeaters only) and three communication nodes — an
// optimally sized inverter (the repeater, cost 1 so that implementation
// cost equals repeater count), a multiplexer and a de-multiplexer.
//
// The wire link carries a tiny fixed cost so Assumption 2.1's positive
// cost clause holds; ε is small enough never to change which
// architecture wins.
func (t Technology) Library() *library.Library {
	const epsilon = 1e-6
	return &library.Library{
		Links: []library.Link{
			{
				Name:      "wire",
				Bandwidth: t.WireBandwidth,
				MaxSpan:   t.LCrit,
				CostFixed: epsilon,
			},
		},
		Nodes: []library.Node{
			{Name: "inverter", Kind: library.Repeater, Cost: 1},
			{Name: "mux", Kind: library.Mux, Cost: 1},
			{Name: "demux", Kind: library.Demux, Cost: 1},
		},
	}
}

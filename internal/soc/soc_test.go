package soc

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/library"
	"repro/internal/model"
)

func TestTech180nm(t *testing.T) {
	tech := Tech180nm()
	if tech.LCrit != 0.6 {
		t.Errorf("LCrit = %v, want 0.6", tech.LCrit)
	}
	if tech.Name != "0.18um" {
		t.Errorf("Name = %q", tech.Name)
	}
}

func TestFromParasitics(t *testing.T) {
	// l_crit = sqrt(2·rd·cg/(r·c)); pick values giving exactly 2.
	tech, err := FromParasitics("test", 100, 2e-3, 0.05, 2e-3, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(2 * 100 * 2e-3 / (0.05 * 2e-3))
	if math.Abs(tech.LCrit-want) > 1e-12 {
		t.Errorf("LCrit = %v, want %v", tech.LCrit, want)
	}
	if _, err := FromParasitics("bad", -1, 1, 1, 1, 1); err == nil {
		t.Error("negative parasitics should be rejected")
	}
	if _, err := FromParasitics("bad", 1, 1, 0, 1, 1); err == nil {
		t.Error("zero wire resistance should be rejected")
	}
}

func TestRepeaterCount(t *testing.T) {
	tech := Tech180nm()
	cases := []struct {
		d    float64
		want int
	}{
		{0, 0},
		{0.59, 0},
		{0.61, 1},
		{1.7, 2},
		{4.25, 7},
		{-1, 0},
	}
	for _, c := range cases {
		if got := tech.RepeaterCount(c.d); got != c.want {
			t.Errorf("RepeaterCount(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestTotalRepeaters(t *testing.T) {
	tech := Tech180nm()
	cg := model.NewConstraintGraph(geom.Manhattan)
	a := cg.MustAddPort(model.Port{Name: "a", Position: geom.Pt(0, 0)})
	b := cg.MustAddPort(model.Port{Name: "b", Position: geom.Pt(1.0, 0.7)}) // d=1.7 → 2
	c := cg.MustAddPort(model.Port{Name: "c", Position: geom.Pt(1.0, 1.0)}) // b→c d=0.3 → 0
	cg.MustAddChannel(model.Channel{Name: "ab", From: a, To: b, Bandwidth: 1})
	cg.MustAddChannel(model.Channel{Name: "bc", From: b, To: c, Bandwidth: 1})
	if got := tech.TotalRepeaters(cg); got != 2 {
		t.Errorf("TotalRepeaters = %d, want 2", got)
	}
}

func TestLibraryShape(t *testing.T) {
	lib := Tech180nm().Library()
	if err := lib.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	wire, ok := lib.LinkByName("wire")
	if !ok || wire.MaxSpan != 0.6 {
		t.Errorf("wire link wrong: %+v ok=%v", wire, ok)
	}
	for _, kind := range []library.NodeKind{library.Repeater, library.Mux, library.Demux} {
		if _, ok := lib.CheapestNode(kind); !ok {
			t.Errorf("library missing node kind %v", kind)
		}
	}
	if cost := lib.NodeCost(library.Repeater); cost != 1 {
		t.Errorf("repeater cost = %v, want 1 (cost unit = repeaters)", cost)
	}
}

package obs

import (
	"sync"
	"time"
)

// Event is one typed progress notification from a running synthesis.
// Events are emitted at the flow's decision points — phase boundaries
// in synth, per-arity level completions in merging, every incumbent
// improvement in the covering branch-and-bound — and stream to
// subscribers while the run is still in flight, which is what makes a
// long anytime solve observable before its deadline fires.
//
// The struct is flat so its JSON form is one self-describing NDJSON
// line with deterministic key order; unused fields are omitted. Which
// fields a given Type populates is cataloged in docs/OBSERVABILITY.md.
type Event struct {
	// Seq is the stream-assigned sequence number, contiguous from 1.
	// Replay-then-tail consumers (SSE clients) verify gap-free
	// delivery against it.
	Seq int64 `json:"seq"`
	// TimeUs is microseconds since the stream's first event.
	TimeUs int64 `json:"timeUs"`
	// Type discriminates the event (the Event* constants).
	Type string `json:"type"`
	// Phase names the synthesis phase for phase_start/phase_end.
	Phase string `json:"phase,omitempty"`
	// Channels and Workers describe the run (run_start).
	Channels int `json:"channels,omitempty"`
	Workers  int `json:"workers,omitempty"`
	// K, Candidates and SetsTested report per-arity enumeration
	// progress (enum_level): candidates accepted at level K and the
	// cumulative subsets tested so far.
	K          int `json:"k,omitempty"`
	Candidates int `json:"candidates,omitempty"`
	SetsTested int `json:"setsTested,omitempty"`
	// Cost, LowerBound, Gap and Nodes describe an incumbent
	// improvement (incumbent) or the final outcome (run_end).
	Cost       float64 `json:"cost,omitempty"`
	LowerBound float64 `json:"lowerBound,omitempty"`
	Gap        float64 `json:"gap,omitempty"`
	Nodes      int     `json:"nodes,omitempty"`
	// Optimal and Degraded summarize the outcome (run_end).
	Optimal  bool `json:"optimal,omitempty"`
	Degraded bool `json:"degraded,omitempty"`
	// Err carries the failure for run_error.
	Err string `json:"error,omitempty"`
	// TraceID and SpanID correlate the event with a distributed trace
	// (stamped by the stream when SetTrace was called, so every SSE
	// line of a traced job links back to its trace).
	TraceID string `json:"traceId,omitempty"`
	SpanID  string `json:"spanId,omitempty"`
}

// Event types.
const (
	// EventRunStart opens a run (Channels, Workers).
	EventRunStart = "run_start"
	// EventRunEnd closes a successful run (Cost, Optimal, Degraded).
	EventRunEnd = "run_end"
	// EventRunError closes a failed run (Err).
	EventRunError = "run_error"
	// EventPhaseStart / EventPhaseEnd bracket a synthesis phase
	// (Phase: plan, enumerate, price, solve, materialize).
	EventPhaseStart = "phase_start"
	EventPhaseEnd   = "phase_end"
	// EventEnumLevel reports one completed enumeration arity level
	// (K, Candidates, SetsTested).
	EventEnumLevel = "enum_level"
	// EventIncumbent reports a branch-and-bound incumbent improvement
	// (Cost, LowerBound, Gap, Nodes).
	EventIncumbent = "incumbent"
)

// DefaultEventBuffer is the replay ring size when Config.EventBuffer
// is zero.
const DefaultEventBuffer = 1024

// DefaultSubscriberBuffer is a subscriber's queue size when Subscribe
// is called with a non-positive buffer.
const DefaultSubscriberBuffer = 256

// Events is a bounded, drop-oldest, concurrency-safe pub/sub stream.
// Published events are stamped with a contiguous sequence number and
// kept in a bounded replay ring (oldest dropped first), so a late
// subscriber receives the retained history followed by the live tail
// with no gap and no duplicate — Subscribe snapshots the ring and
// registers the tail channel under one lock.
//
// A nil *Events is a valid no-op receiver everywhere, so emitting code
// never branches on "is the stream on".
type Events struct {
	mu      sync.Mutex
	cap     int
	buf     []Event // replay ring, rotated via start
	start   int
	count   int
	seq     int64
	dropped int64
	subs    map[int]chan Event
	nextSub int
	closed  bool
	now     func() time.Time
	epoch   time.Time
	traceID string
	spanID  string
}

// SetTrace makes the stream stamp every subsequently-published event
// with the given trace correlation IDs (an event's own non-empty IDs
// win). The serving daemon calls it once at job admission, before the
// run publishes anything.
func (e *Events) SetTrace(traceID, spanID string) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.traceID = traceID
	e.spanID = spanID
}

// NewEvents returns a stream retaining the last bufCap events for
// replay (<=0 means DefaultEventBuffer) under the given clock (nil
// means time.Now).
func NewEvents(bufCap int, now func() time.Time) *Events {
	if bufCap <= 0 {
		bufCap = DefaultEventBuffer
	}
	if now == nil {
		now = time.Now
	}
	return &Events{
		cap:  bufCap,
		buf:  make([]Event, 0, bufCap),
		subs: make(map[int]chan Event),
		now:  now,
	}
}

// Publish stamps ev with the next sequence number and relative
// timestamp, retains it in the replay ring (dropping the oldest
// retained event when full), and offers it to every subscriber. A
// subscriber whose queue is full has its own oldest queued event
// dropped to make room — a slow consumer lags, it never blocks the
// publisher (the solver's hot path). No-op on a nil or closed stream.
func (e *Events) Publish(ev Event) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	ts := e.now()
	if e.epoch.IsZero() {
		e.epoch = ts
	}
	e.seq++
	ev.Seq = e.seq
	ev.TimeUs = ts.Sub(e.epoch).Microseconds()
	if ev.TraceID == "" {
		ev.TraceID = e.traceID
	}
	if ev.SpanID == "" {
		ev.SpanID = e.spanID
	}
	if e.count < e.cap {
		e.buf = append(e.buf, ev)
		e.count++
	} else {
		e.buf[e.start] = ev
		e.start = (e.start + 1) % e.cap
		e.dropped++
	}
	for _, ch := range e.subs {
		select {
		case ch <- ev:
		default:
			// Full queue: drop the subscriber's oldest, then retry. The
			// second send can only fail if the subscriber drained and
			// refilled the queue concurrently; dropping the new event
			// then is the same bounded-lag contract.
			select {
			case <-ch:
				e.dropped++
			default:
			}
			select {
			case ch <- ev:
			default:
				e.dropped++
			}
		}
	}
}

// Subscribe atomically snapshots the replay ring and registers a live
// tail channel with the given queue size (<=0 means
// DefaultSubscriberBuffer): the returned history followed by the
// channel's events is sequence-contiguous. cancel unregisters and
// closes the channel (already-queued events remain receivable); on a
// closed stream the channel comes back closed, so consumers uniformly
// run replay-then-range. A nil *Events subscribes to an empty, closed
// stream.
func (e *Events) Subscribe(buf int) (replay []Event, live <-chan Event, cancel func()) {
	if buf <= 0 {
		buf = DefaultSubscriberBuffer
	}
	ch := make(chan Event, buf)
	if e == nil {
		close(ch)
		return nil, ch, func() {}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	replay = e.historyLocked()
	if e.closed {
		close(ch)
		return replay, ch, func() {}
	}
	id := e.nextSub
	e.nextSub++
	e.subs[id] = ch
	return replay, ch, func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		if _, ok := e.subs[id]; ok {
			delete(e.subs, id)
			close(ch)
		}
	}
}

// History returns a copy of the retained events, oldest first.
func (e *Events) History() []Event {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.historyLocked()
}

func (e *Events) historyLocked() []Event {
	out := make([]Event, 0, e.count)
	for i := 0; i < e.count; i++ {
		out = append(out, e.buf[(e.start+i)%e.cap])
	}
	return out
}

// Dropped returns how many events were evicted from the replay ring or
// subscriber queues.
func (e *Events) Dropped() int64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dropped
}

// Close ends the stream: every subscriber's channel is closed (after
// its queued events drain) and further publishes are dropped. The
// replay ring stays readable, so late subscribers still get the full
// retained history followed by an immediately-closed tail. Safe to
// call more than once; no-op on nil.
func (e *Events) Close() {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	for id, ch := range e.subs {
		delete(e.subs, id)
		close(ch)
	}
}

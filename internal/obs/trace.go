package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values are strings so
// the exported JSON is trivially deterministic; use the typed
// constructors for non-string values.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int) Attr {
	return Attr{Key: key, Value: strconv.Itoa(value)}
}

// Int64 builds an int64 attribute.
func Int64(key string, value int64) Attr {
	return Attr{Key: key, Value: strconv.FormatInt(value, 10)}
}

// Float builds a float attribute, formatted with the shortest
// round-trip representation (deterministic for a given value).
func Float(key string, value float64) Attr {
	return Attr{Key: key, Value: strconv.FormatFloat(value, 'g', -1, 64)}
}

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr {
	return Attr{Key: key, Value: strconv.FormatBool(value)}
}

// Span is one timed region of a run. StartUs/DurUs are microseconds
// relative to the tracer's first span. Children appear in start order;
// when spans are started from a single goroutine (as the synthesis
// phases are) that order is deterministic.
type Span struct {
	Name     string  `json:"name"`
	StartUs  int64   `json:"startUs"`
	DurUs    int64   `json:"durUs"`
	Attrs    []Attr  `json:"attrs,omitempty"`
	Children []*Span `json:"children,omitempty"`

	start time.Time
}

// Tracer records a forest of spans. All methods are safe for
// concurrent use; every structural mutation happens under one mutex,
// so workers may open spans under a shared parent (their completion
// order, not their content, is then scheduling-dependent).
type Tracer struct {
	mu    sync.Mutex
	now   func() time.Time
	epoch time.Time
	roots []*Span
}

// NewTracer returns an empty tracer using the given clock (nil means
// time.Now).
func NewTracer(now func() time.Time) *Tracer {
	if now == nil {
		now = time.Now
	}
	return &Tracer{now: now}
}

// start opens a span under parent (nil parent = new root).
func (t *Tracer) start(parent *Span, name string, attrs []Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ts := t.now()
	if t.epoch.IsZero() {
		t.epoch = ts
	}
	sp := &Span{
		Name:    name,
		StartUs: ts.Sub(t.epoch).Microseconds(),
		Attrs:   append([]Attr(nil), attrs...),
		start:   ts,
	}
	if parent == nil {
		t.roots = append(t.roots, sp)
	} else {
		parent.Children = append(parent.Children, sp)
	}
	return sp
}

// end closes the span, appending any final attributes (the idiom for
// attaching counters known only when the phase finishes).
func (t *Tracer) end(sp *Span, attrs []Attr) {
	if t == nil || sp == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp.DurUs = t.now().Sub(sp.start).Microseconds()
	sp.Attrs = append(sp.Attrs, attrs...)
}

// Roots returns a deep copy of the completed span forest.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.roots))
	for i, sp := range t.roots {
		out[i] = copySpan(sp)
	}
	return out
}

func copySpan(sp *Span) *Span {
	c := &Span{
		Name:    sp.Name,
		StartUs: sp.StartUs,
		DurUs:   sp.DurUs,
		Attrs:   append([]Attr(nil), sp.Attrs...),
	}
	for _, child := range sp.Children {
		c.Children = append(c.Children, copySpan(child))
	}
	return c
}

// JSON exports the span forest as indented JSON ({"spans": [...]}).
// Byte-identical across runs when the tracer's clock is deterministic.
func (t *Tracer) JSON() ([]byte, error) {
	return json.MarshalIndent(struct {
		Spans []*Span `json:"spans"`
	}{Spans: t.Roots()}, "", "  ")
}

// ChromeTrace exports the span forest in the Chrome trace_event JSON
// array format — loadable by chrome://tracing and Perfetto. Every span
// becomes one complete ("ph":"X") event; attributes become args.
func (t *Tracer) ChromeTrace() ([]byte, error) {
	var events []chromeEvent
	var walk func(sp *Span)
	walk = func(sp *Span) {
		args := make(map[string]string, len(sp.Attrs))
		for _, a := range sp.Attrs {
			args[a.Key] = a.Value
		}
		events = append(events, chromeEvent{
			Name: sp.Name, Phase: "X",
			TsUs: sp.StartUs, DurUs: sp.DurUs,
			PID: 1, TID: 1, Args: args,
		})
		for _, child := range sp.Children {
			walk(child)
		}
	}
	for _, root := range t.Roots() {
		walk(root)
	}
	// Marshal each event with sorted args so the output is stable (the
	// encoding/json map marshaling sorts keys, but we keep the array
	// assembly explicit and deterministic regardless).
	var buf bytes.Buffer
	buf.WriteString("[\n")
	for i, ev := range events {
		data, err := json.Marshal(ev)
		if err != nil {
			return nil, fmt.Errorf("obs: encode trace event %q: %w", ev.Name, err)
		}
		buf.WriteString("  ")
		buf.Write(data)
		if i < len(events)-1 {
			buf.WriteByte(',')
		}
		buf.WriteByte('\n')
	}
	buf.WriteString("]\n")
	return buf.Bytes(), nil
}

// chromeEvent is one trace_event entry. encoding/json marshals the
// Args map with sorted keys, keeping the bytes deterministic.
type chromeEvent struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	TsUs  int64             `json:"ts"`
	DurUs int64             `json:"dur"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// FindSpans returns every span in the forest whose name equals name,
// in depth-first start order (a test/report convenience).
func (t *Tracer) FindSpans(name string) []*Span {
	var out []*Span
	var walk func(sp *Span)
	walk = func(sp *Span) {
		if sp.Name == name {
			out = append(out, sp)
		}
		for _, child := range sp.Children {
			walk(child)
		}
	}
	for _, root := range t.Roots() {
		walk(root)
	}
	return out
}

// Attr returns the value of the span attribute with the given key and
// whether it is present (last write wins, matching end-attr appends).
func (sp *Span) Attr(key string) (string, bool) {
	for i := len(sp.Attrs) - 1; i >= 0; i-- {
		if sp.Attrs[i].Key == key {
			return sp.Attrs[i].Value, true
		}
	}
	return "", false
}

// Trace opens a span named name under the span currently carried by
// ctx (or as a root), returning a derived context carrying the new
// span and the function that closes it. When ctx carries no sink — or
// the sink has tracing disabled — both returned values are cheap
// no-ops, so call sites never branch.
//
// With Config.PprofLabels set, the region additionally runs under a
// runtime/pprof label phase=<name>; the end function restores the
// caller's labels. Worker goroutines that inherit the derived context
// apply the same labels with ApplyGoroutineLabels.
func Trace(ctx context.Context, name string, attrs ...Attr) (context.Context, func(...Attr)) {
	s := FromContext(ctx)
	if s == nil || (s.tracer == nil && !s.pprofLabels) {
		return ctx, noopEnd
	}
	var sp *Span
	if s.tracer != nil {
		parent, _ := ctx.Value(ctxKeySpan{}).(*Span)
		sp = s.tracer.start(parent, name, attrs)
		ctx = context.WithValue(ctx, ctxKeySpan{}, sp)
	}
	restore := func() {}
	if s.pprofLabels {
		ctx, restore = pushPprofLabel(ctx, name)
	}
	tracer := s.tracer
	return ctx, func(endAttrs ...Attr) {
		tracer.end(sp, endAttrs)
		restore()
	}
}

// noopEnd is the shared do-nothing span closer, so the disabled path
// allocates no closure.
func noopEnd(...Attr) {}

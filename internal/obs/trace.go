package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values are strings so
// the exported JSON is trivially deterministic; use the typed
// constructors for non-string values.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int) Attr {
	return Attr{Key: key, Value: strconv.Itoa(value)}
}

// Int64 builds an int64 attribute.
func Int64(key string, value int64) Attr {
	return Attr{Key: key, Value: strconv.FormatInt(value, 10)}
}

// Float builds a float attribute, formatted with the shortest
// round-trip representation (deterministic for a given value).
func Float(key string, value float64) Attr {
	return Attr{Key: key, Value: strconv.FormatFloat(value, 'g', -1, 64)}
}

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr {
	return Attr{Key: key, Value: strconv.FormatBool(value)}
}

// Span is one timed region of a run. StartUs/DurUs are microseconds
// relative to the tracer's first span. Children appear in start order;
// when spans are started from a single goroutine (as the synthesis
// phases are) that order is deterministic.
type Span struct {
	Name     string  `json:"name"`
	StartUs  int64   `json:"startUs"`
	DurUs    int64   `json:"durUs"`
	TraceID  string  `json:"traceId,omitempty"`
	SpanID   string  `json:"spanId,omitempty"`
	ParentID string  `json:"parentSpanId,omitempty"`
	Attrs    []Attr  `json:"attrs,omitempty"`
	Children []*Span `json:"children,omitempty"`

	start time.Time
	sc    SpanContext
}

// Context returns the span's identity (zero when the tracer has no ID
// source). Safe on nil.
func (sp *Span) Context() SpanContext {
	if sp == nil {
		return SpanContext{}
	}
	return sp.sc
}

// Tracer records a forest of spans. All methods are safe for
// concurrent use; every structural mutation happens under one mutex,
// so workers may open spans under a shared parent (their completion
// order, not their content, is then scheduling-dependent).
type Tracer struct {
	mu     sync.Mutex
	now    func() time.Time
	epoch  time.Time
	roots  []*Span
	ids    *IDSource
	parent SpanContext
}

// NewTracer returns an empty tracer using the given clock (nil means
// time.Now). Spans carry no W3C identifiers; use NewTracerWithIDs for
// distributed traces.
func NewTracer(now func() time.Time) *Tracer {
	if now == nil {
		now = time.Now
	}
	return &Tracer{now: now}
}

// NewTracerWithIDs returns a tracer whose spans carry W3C trace/span
// identifiers drawn from ids. When parent is valid, root spans join
// parent's trace and parent under parent's span (the propagated
// remote context); otherwise the first root starts a fresh trace that
// later roots share.
func NewTracerWithIDs(now func() time.Time, ids *IDSource, parent SpanContext) *Tracer {
	t := NewTracer(now)
	if ids == nil {
		ids = NewIDSource(0)
	}
	t.ids = ids
	t.parent = parent
	return t
}

// start opens a span under parent (nil parent = new root).
func (t *Tracer) start(parent *Span, name string, attrs []Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ts := t.now()
	if t.epoch.IsZero() {
		t.epoch = ts
	}
	sp := &Span{
		Name:    name,
		StartUs: ts.Sub(t.epoch).Microseconds(),
		Attrs:   append([]Attr(nil), attrs...),
		start:   ts,
	}
	if t.ids != nil {
		sp.sc.SpanID = t.ids.SpanID()
		switch {
		case parent != nil && parent.sc.Valid():
			sp.sc.TraceID = parent.sc.TraceID
			sp.ParentID = parent.sc.SpanID.String()
		case t.parent.Valid():
			sp.sc.TraceID = t.parent.TraceID
			sp.ParentID = t.parent.SpanID.String()
		default:
			// First root of a fresh trace; later parentless roots
			// share it so one tracer is always one trace.
			t.parent = SpanContext{TraceID: t.ids.TraceID(), SpanID: sp.sc.SpanID}
			sp.sc.TraceID = t.parent.TraceID
		}
		sp.TraceID = sp.sc.TraceID.String()
		sp.SpanID = sp.sc.SpanID.String()
	}
	if parent == nil {
		t.roots = append(t.roots, sp)
	} else {
		parent.Children = append(parent.Children, sp)
	}
	return sp
}

// Start opens a span under parent (nil = new root). Unlike Trace, the
// span's lifetime is not tied to a context — the serving daemon opens
// queue-wait and request spans in one function and closes them in
// another. Safe on a nil tracer (returns nil, which End ignores).
func (t *Tracer) Start(parent *Span, name string, attrs ...Attr) *Span {
	return t.start(parent, name, attrs)
}

// End closes a span opened with Start, appending any final attributes.
func (t *Tracer) End(sp *Span, attrs ...Attr) {
	t.end(sp, attrs)
}

// end closes the span, appending any final attributes (the idiom for
// attaching counters known only when the phase finishes).
func (t *Tracer) end(sp *Span, attrs []Attr) {
	if t == nil || sp == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp.DurUs = t.now().Sub(sp.start).Microseconds()
	sp.Attrs = append(sp.Attrs, attrs...)
}

// Roots returns a deep copy of the completed span forest.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.roots))
	for i, sp := range t.roots {
		out[i] = copySpan(sp)
	}
	return out
}

func copySpan(sp *Span) *Span {
	c := &Span{
		Name:     sp.Name,
		StartUs:  sp.StartUs,
		DurUs:    sp.DurUs,
		TraceID:  sp.TraceID,
		SpanID:   sp.SpanID,
		ParentID: sp.ParentID,
		Attrs:    append([]Attr(nil), sp.Attrs...),
		sc:       sp.sc,
	}
	for _, child := range sp.Children {
		c.Children = append(c.Children, copySpan(child))
	}
	return c
}

// JSON exports the span forest as indented JSON ({"spans": [...]}).
// Byte-identical across runs when the tracer's clock is deterministic.
func (t *Tracer) JSON() ([]byte, error) {
	return json.MarshalIndent(struct {
		Spans []*Span `json:"spans"`
	}{Spans: t.Roots()}, "", "  ")
}

// ChromeTrace exports the span forest in the Chrome trace_event JSON
// array format — loadable by chrome://tracing and Perfetto. Every span
// becomes one complete ("ph":"X") event; attributes become args. Spans
// that overlap in time (parallel pricing workers under one parent) are
// spread across lanes so each gets its own tid row.
func (t *Tracer) ChromeTrace() ([]byte, error) {
	return ChromeExport([]TraceSource{{Spans: t.Roots()}})
}

// TraceSource is one process's span forest for ChromeExport. Name
// labels the Perfetto process row (empty = unnamed).
type TraceSource struct {
	Name  string
	Spans []*Span
}

// ChromeExport renders one or more span forests as a single Chrome
// trace_event JSON array. Each source becomes one pid (1-based, in
// slice order, with a process_name metadata record when named); within
// a source, spans are packed onto tid lanes greedily — a span shares
// its parent's lane when it fits after the previous occupant, and
// overlapping siblings spill onto fresh lanes — so parallel workers
// render as parallel rows. The assignment is a pure function of the
// span forest, keeping the bytes deterministic.
func ChromeExport(sources []TraceSource) ([]byte, error) {
	var events []chromeEvent
	for i, src := range sources {
		pid := i + 1
		if src.Name != "" {
			events = append(events, chromeEvent{
				Name: "process_name", Phase: "M", PID: pid,
				Args: map[string]string{"name": src.Name},
			})
		}
		events = append(events, chromeEvents(src.Spans, pid)...)
	}
	// Marshal each event with sorted args so the output is stable (the
	// encoding/json map marshaling sorts keys, but we keep the array
	// assembly explicit and deterministic regardless).
	var buf bytes.Buffer
	buf.WriteString("[\n")
	for i, ev := range events {
		data, err := json.Marshal(ev)
		if err != nil {
			return nil, fmt.Errorf("obs: encode trace event %q: %w", ev.Name, err)
		}
		buf.WriteString("  ")
		buf.Write(data)
		if i < len(events)-1 {
			buf.WriteByte(',')
		}
		buf.WriteByte('\n')
	}
	buf.WriteString("]\n")
	return buf.Bytes(), nil
}

// chromeEvents flattens one forest into complete events with lane tids.
func chromeEvents(roots []*Span, pid int) []chromeEvent {
	var events []chromeEvent
	nextLane := 1
	// lane bookkeeping per sibling group: each entry is a lane number
	// and the end time of the last sibling placed on it.
	type slot struct {
		lane    int
		lastEnd int64
	}
	var walk func(sp *Span, lane int)
	walk = func(sp *Span, lane int) {
		args := make(map[string]string, len(sp.Attrs))
		for _, a := range sp.Attrs {
			args[a.Key] = a.Value
		}
		events = append(events, chromeEvent{
			Name: sp.Name, Phase: "X",
			TsUs: sp.StartUs, DurUs: sp.DurUs,
			PID: pid, TID: lane, Args: args,
		})
		// Children nest inside sp, so sp's own lane is free for them;
		// siblings that overlap the previous occupant spill onto fresh
		// lanes, first-fit in start order.
		slots := []slot{{lane: lane, lastEnd: sp.StartUs}}
		for _, child := range sp.Children {
			placed := false
			for si := range slots {
				if slots[si].lastEnd <= child.StartUs {
					slots[si].lastEnd = child.StartUs + child.DurUs
					walk(child, slots[si].lane)
					placed = true
					break
				}
			}
			if !placed {
				nextLane++
				slots = append(slots, slot{lane: nextLane, lastEnd: child.StartUs + child.DurUs})
				walk(child, nextLane)
			}
		}
	}
	rootSlots := []slot{}
	for _, root := range roots {
		placed := false
		for si := range rootSlots {
			if rootSlots[si].lastEnd <= root.StartUs {
				rootSlots[si].lastEnd = root.StartUs + root.DurUs
				walk(root, rootSlots[si].lane)
				placed = true
				break
			}
		}
		if !placed {
			lane := 1
			if len(rootSlots) > 0 {
				nextLane++
				lane = nextLane
			}
			rootSlots = append(rootSlots, slot{lane: lane, lastEnd: root.StartUs + root.DurUs})
			walk(root, lane)
		}
	}
	return events
}

// chromeEvent is one trace_event entry. encoding/json marshals the
// Args map with sorted keys, keeping the bytes deterministic.
type chromeEvent struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	TsUs  int64             `json:"ts"`
	DurUs int64             `json:"dur"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// FindSpans returns every span in the forest whose name equals name,
// in depth-first start order (a test/report convenience).
func (t *Tracer) FindSpans(name string) []*Span {
	var out []*Span
	var walk func(sp *Span)
	walk = func(sp *Span) {
		if sp.Name == name {
			out = append(out, sp)
		}
		for _, child := range sp.Children {
			walk(child)
		}
	}
	for _, root := range t.Roots() {
		walk(root)
	}
	return out
}

// Attr returns the value of the span attribute with the given key and
// whether it is present (last write wins, matching end-attr appends).
func (sp *Span) Attr(key string) (string, bool) {
	for i := len(sp.Attrs) - 1; i >= 0; i-- {
		if sp.Attrs[i].Key == key {
			return sp.Attrs[i].Value, true
		}
	}
	return "", false
}

// Trace opens a span named name under the span currently carried by
// ctx (or as a root), returning a derived context carrying the new
// span and the function that closes it. When ctx carries no sink — or
// the sink has tracing disabled — both returned values are cheap
// no-ops, so call sites never branch.
//
// With Config.PprofLabels set, the region additionally runs under a
// runtime/pprof label phase=<name>; the end function restores the
// caller's labels. Worker goroutines that inherit the derived context
// apply the same labels with ApplyGoroutineLabels.
func Trace(ctx context.Context, name string, attrs ...Attr) (context.Context, func(...Attr)) {
	s := FromContext(ctx)
	if s == nil || (s.tracer == nil && !s.pprofLabels) {
		return ctx, noopEnd
	}
	var sp *Span
	if s.tracer != nil {
		parent, _ := ctx.Value(ctxKeySpan{}).(*Span)
		sp = s.tracer.start(parent, name, attrs)
		ctx = context.WithValue(ctx, ctxKeySpan{}, sp)
	}
	restore := func() {}
	if s.pprofLabels {
		ctx, restore = pushPprofLabel(ctx, name)
	}
	tracer := s.tracer
	return ctx, func(endAttrs ...Attr) {
		tracer.end(sp, endAttrs)
		restore()
	}
}

// noopEnd is the shared do-nothing span closer, so the disabled path
// allocates no closure.
func noopEnd(...Attr) {}

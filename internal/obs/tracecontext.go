package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
)

// TraceparentHeader is the W3C Trace Context header name used to carry
// a SpanContext across process boundaries.
const TraceparentHeader = "traceparent"

// TraceID is a 128-bit trace identifier shared by every span of one
// distributed request, across however many replicas it touches.
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// SpanID is a 64-bit span identifier, unique within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// SpanContext identifies one span of one trace — the pair that crosses
// process boundaries in a traceparent header. The zero value is
// invalid and means "no trace".
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether the context names a real trace (per W3C, an
// all-zero trace or span ID is invalid).
func (sc SpanContext) Valid() bool {
	return !sc.TraceID.IsZero() && !sc.SpanID.IsZero()
}

// Traceparent serializes the context as a W3C traceparent value:
// "00-<32 hex trace-id>-<16 hex parent-id>-01" (version 00, sampled).
func (sc SpanContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-01", sc.TraceID, sc.SpanID)
}

// ParseTraceparent parses a W3C traceparent header value. It accepts
// version 00 exactly: "00-" + 32 lowercase hex + "-" + 16 lowercase
// hex + "-" + 2 hex flags, with non-zero IDs. Malformed or absent
// values return ok=false — callers fall back to a fresh root, never an
// error, so a bad upstream header can't fail a request.
func ParseTraceparent(h string) (sc SpanContext, ok bool) {
	if len(h) != 55 || h[0] != '0' || h[1] != '0' ||
		h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(h[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(h[36:52])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.DecodeString(h[53:55]); err != nil {
		return SpanContext{}, false
	}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// IDSource hands out trace and span IDs from a splitmix64 stream. A
// non-zero seed gives a fully deterministic ID sequence (golden tests
// stay byte-stable); seed zero draws a random seed once at
// construction. Safe for concurrent use.
type IDSource struct {
	mu    sync.Mutex
	state uint64
}

// NewIDSource returns an ID source. Seed zero means "seed randomly".
func NewIDSource(seed uint64) *IDSource {
	if seed == 0 {
		var b [8]byte
		if _, err := crand.Read(b[:]); err == nil {
			seed = binary.LittleEndian.Uint64(b[:])
		}
		if seed == 0 {
			seed = 0x9e3779b97f4a7c15
		}
	}
	return &IDSource{state: seed}
}

// next advances the splitmix64 stream (same generator the fleet router
// uses for rendezvous hashing), never returning zero.
func (s *IDSource) next() uint64 {
	for {
		s.state += 0x9e3779b97f4a7c15
		z := s.state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		if z != 0 {
			return z
		}
	}
}

// TraceID draws a fresh 128-bit trace ID.
func (s *IDSource) TraceID() TraceID {
	s.mu.Lock()
	defer s.mu.Unlock()
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], s.next())
	binary.BigEndian.PutUint64(id[8:], s.next())
	return id
}

// SpanID draws a fresh 64-bit span ID.
func (s *IDSource) SpanID() SpanID {
	s.mu.Lock()
	defer s.mu.Unlock()
	var id SpanID
	binary.BigEndian.PutUint64(id[:], s.next())
	return id
}

// NewRoot draws a fresh root span context (new trace, new span).
func (s *IDSource) NewRoot() SpanContext {
	return SpanContext{TraceID: s.TraceID(), SpanID: s.SpanID()}
}

// ctxKeySpanContext carries an explicit SpanContext — the remote
// parent a client wants stamped on outgoing requests — independent of
// any live span.
type ctxKeySpanContext struct{}

// ContextWithSpanContext returns ctx carrying sc. The client transport
// reads it back with SpanContextFromContext to stamp traceparent on
// outgoing requests. An invalid sc returns ctx unchanged.
func ContextWithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKeySpanContext{}, sc)
}

// SpanContextFromContext returns the span context carried by ctx: the
// currently-open span's context when a traced span is active (so
// outgoing requests parent under the span that issued them), else any
// explicitly-installed value, else the invalid zero SpanContext.
func SpanContextFromContext(ctx context.Context) SpanContext {
	if sp, _ := ctx.Value(ctxKeySpan{}).(*Span); sp != nil && sp.sc.Valid() {
		return sp.sc
	}
	sc, _ := ctx.Value(ctxKeySpanContext{}).(SpanContext)
	return sc
}

// ContextWithSpan returns ctx carrying sp as the current span, so
// subsequent Trace calls nest under it and SpanContextFromContext
// reports its identity. The serving daemon uses it to hang the synth
// phase tree under the per-job request span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKeySpan{}, sp)
}

package obs

import (
	"context"
	"runtime/pprof"
)

// pushPprofLabel layers a phase=<name> pprof label onto ctx and
// applies it to the calling goroutine, returning the labeled context
// and a function restoring the caller's previous label set. CPU
// profiles taken while the region runs then attribute samples to the
// synthesis phase (and to any workload labels installed higher up
// with WithLabels).
func pushPprofLabel(ctx context.Context, name string) (context.Context, func()) {
	// The pre-push context carries the previously active label set
	// (pprof labels are immutable once attached), so restoring is just
	// re-applying it.
	prev := ctx
	ctx = pprof.WithLabels(ctx, pprof.Labels("phase", name))
	pprof.SetGoroutineLabels(ctx)
	return ctx, func() {
		pprof.SetGoroutineLabels(prev)
	}
}

// WithLabels attaches arbitrary pprof labels (e.g. workload=wan) to
// ctx and the calling goroutine, independent of any sink: callers use
// it to tag a whole run before phases add their own phase labels.
// kv must be an even-length key/value list; an odd trailing key is
// dropped.
func WithLabels(ctx context.Context, kv ...string) context.Context {
	if len(kv)%2 == 1 {
		kv = kv[:len(kv)-1]
	}
	if len(kv) == 0 {
		return ctx
	}
	ctx = pprof.WithLabels(ctx, pprof.Labels(kv...))
	pprof.SetGoroutineLabels(ctx)
	return ctx
}

// ApplyGoroutineLabels applies ctx's pprof label set to the calling
// goroutine. Worker goroutines receive a context derived inside a
// span but run on their own goroutines, so the labels do not follow
// automatically; each worker calls this once on start (a no-op when
// no labels were ever attached).
func ApplyGoroutineLabels(ctx context.Context) {
	pprof.SetGoroutineLabels(ctx)
}

package obs

import (
	"regexp"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"ucp/incumbents", "ucp_incumbents"},
		{"merging/candidates/k2", "merging_candidates_k2"},
		{"serve/job_duration_ms", "serve_job_duration_ms"},
		{"9lives", "_9lives"},
		{"a:b", "a:b"},
		{"weird name-here", "weird_name_here"},
	}
	for _, c := range cases {
		if got := PromName(c.in); got != c.want {
			t.Errorf("PromName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("ucp/incumbents").Add(3)
	r.Counter("already_total").Add(1)
	r.Gauge("serve/jobs_inflight").Set(2)
	h := r.Histogram("serve/job_duration_ms", 1, 10, 100)
	h.Record(0)   // bucket le=1
	h.Record(5)   // bucket le=10
	h.Record(7)   // bucket le=10
	h.Record(500) // overflow

	out := string(r.Snapshot().Prometheus())

	for _, want := range []string{
		"# TYPE ucp_incumbents_total counter\n",
		"ucp_incumbents_total 3\n",
		// No double suffix on a name already ending in _total.
		"# TYPE already_total counter\n",
		"already_total 1\n",
		"# TYPE serve_jobs_inflight gauge\n",
		"serve_jobs_inflight 2\n",
		"# TYPE serve_job_duration_ms histogram\n",
		// Buckets are cumulative, not disjoint.
		"serve_job_duration_ms_bucket{le=\"1\"} 1\n",
		"serve_job_duration_ms_bucket{le=\"10\"} 3\n",
		"serve_job_duration_ms_bucket{le=\"100\"} 3\n",
		"serve_job_duration_ms_bucket{le=\"+Inf\"} 4\n",
		"serve_job_duration_ms_sum 512\n",
		"serve_job_duration_ms_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "already_total_total") {
		t.Error("counter name already ending in _total must not get a second suffix")
	}
}

// TestPrometheusFormatValid asserts every emitted line is either a
// well-formed comment or a well-formed sample line of the text
// exposition format 0.0.4.
func TestPrometheusFormatValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("merging/candidates/k2").Add(13)
	r.Gauge("synth/price/queue_depth").Set(0)
	r.Histogram("synth/price/arity", 2, 4, 8).Record(3)

	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="(\+Inf|\d+)"\})? -?\d+$`)
	comment := regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	for _, line := range strings.Split(strings.TrimRight(string(r.Snapshot().Prometheus()), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !comment.MatchString(line) {
				t.Errorf("malformed comment line %q", line)
			}
			continue
		}
		if !sample.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestPrometheusEmptySnapshot(t *testing.T) {
	var r *Registry
	if out := r.Snapshot().Prometheus(); len(out) != 0 {
		t.Errorf("nil registry rendered %q, want empty", out)
	}
}

package obs

import (
	"bytes"
	"fmt"
	"strings"
)

// Prometheus renders the snapshot in the Prometheus text exposition
// format, version 0.0.4 — the format a Prometheus server scrapes from
// GET /metrics. Metric names are sanitized (every character outside
// [a-zA-Z0-9_:] becomes '_', so "ucp/incumbents" exposes as
// "ucp_incumbents"), counters get the conventional "_total" suffix,
// and histograms render cumulative "_bucket" series with an explicit
// le="+Inf" bucket plus "_sum" and "_count". The output is
// deterministic: sections and series follow the snapshot's name-sorted
// order and every value is an integer.
func (s Snapshot) Prometheus() []byte {
	var buf bytes.Buffer
	for _, c := range s.Counters {
		name := PromName(c.Name)
		if !strings.HasSuffix(name, "_total") {
			name += "_total"
		}
		fmt.Fprintf(&buf, "# HELP %s Synthesis counter %s.\n", name, c.Name)
		fmt.Fprintf(&buf, "# TYPE %s counter\n", name)
		fmt.Fprintf(&buf, "%s %d\n", name, c.Value)
	}
	for _, g := range s.Gauges {
		name := PromName(g.Name)
		fmt.Fprintf(&buf, "# HELP %s Synthesis gauge %s.\n", name, g.Name)
		fmt.Fprintf(&buf, "# TYPE %s gauge\n", name)
		fmt.Fprintf(&buf, "%s %d\n", name, g.Value)
	}
	for _, h := range s.Histograms {
		name := PromName(h.Name)
		fmt.Fprintf(&buf, "# HELP %s Synthesis histogram %s.\n", name, h.Name)
		fmt.Fprintf(&buf, "# TYPE %s histogram\n", name)
		// Prometheus buckets are cumulative; the registry's are
		// disjoint, so accumulate while emitting.
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			fmt.Fprintf(&buf, "%s_bucket{le=\"%d\"} %d\n", name, b.Le, cum)
		}
		fmt.Fprintf(&buf, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		fmt.Fprintf(&buf, "%s_sum %d\n", name, h.Sum)
		fmt.Fprintf(&buf, "%s_count %d\n", name, h.Count)
	}
	return buf.Bytes()
}

// PromName sanitizes a registry metric name ("merging/candidates/k2")
// into a valid Prometheus metric name ("merging_candidates_k2"): every
// character outside [a-zA-Z0-9_:] maps to '_', and a leading digit
// gains a '_' prefix.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		valid := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9')
		if !valid {
			b.WriteByte('_')
			continue
		}
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
		}
		b.WriteRune(r)
	}
	return b.String()
}

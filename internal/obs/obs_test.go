package obs

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock returns a deterministic clock advancing 1ms per call.
func fakeClock() func() time.Time {
	base := time.Unix(0, 0)
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * time.Millisecond)
	}
}

func TestNilSinkIsInert(t *testing.T) {
	var s *Sink
	if s.Tracer() != nil || s.Metrics() != nil {
		t.Fatal("nil sink must hand out nil collectors")
	}
	// Every instrument operation on the nil chain must be a no-op, not
	// a panic.
	s.Metrics().Counter("x").Add(1)
	s.Metrics().Gauge("x").Set(1)
	s.Metrics().Histogram("x", 1, 2).Record(1)
	if got := s.Metrics().Counter("x").Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
	snap := s.Metrics().Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestTraceWithoutSinkIsPassThrough(t *testing.T) {
	ctx := context.Background()
	ctx2, end := Trace(ctx, "synth/run")
	if ctx2 != ctx {
		t.Fatal("Trace without a sink must return ctx unchanged")
	}
	end() // must not panic
	if FromContext(ctx) != nil {
		t.Fatal("FromContext on a bare context must be nil")
	}
}

func TestSpanTreeStructure(t *testing.T) {
	sink := New(Config{Tracing: true, Now: fakeClock()})
	ctx := NewContext(context.Background(), sink)

	rctx, endRun := Trace(ctx, "synth/run", Int("channels", 8))
	_, endChild := Trace(rctx, "merging/enumerate")
	endChild(Int("candidates", 51))
	endRun()

	roots := sink.Tracer().Roots()
	if len(roots) != 1 || roots[0].Name != "synth/run" {
		t.Fatalf("roots = %+v", roots)
	}
	if len(roots[0].Children) != 1 || roots[0].Children[0].Name != "merging/enumerate" {
		t.Fatalf("children = %+v", roots[0].Children)
	}
	if v, ok := roots[0].Children[0].Attr("candidates"); !ok || v != "51" {
		t.Fatalf("end attr not recorded: %+v", roots[0].Children[0].Attrs)
	}
	if v, ok := roots[0].Attr("channels"); !ok || v != "8" {
		t.Fatalf("start attr not recorded: %+v", roots[0].Attrs)
	}
	if roots[0].Children[0].DurUs <= 0 {
		t.Fatal("child span has no duration")
	}
}

func TestTraceExportsDeterministic(t *testing.T) {
	runOnce := func() ([]byte, []byte) {
		sink := New(Config{Tracing: true, Now: fakeClock()})
		ctx := NewContext(context.Background(), sink)
		rctx, endRun := Trace(ctx, "synth/run")
		for _, name := range []string{"p2p/plan", "merging/enumerate", "ucp/solve"} {
			_, end := Trace(rctx, name, String("k", "v"))
			end(Int("n", 3))
		}
		endRun(Float("cost", 1234.5))
		tree, err := sink.Tracer().JSON()
		if err != nil {
			t.Fatal(err)
		}
		chrome, err := sink.Tracer().ChromeTrace()
		if err != nil {
			t.Fatal(err)
		}
		return tree, chrome
	}
	tree1, chrome1 := runOnce()
	tree2, chrome2 := runOnce()
	if !bytes.Equal(tree1, tree2) {
		t.Errorf("span-tree JSON not byte-identical:\n%s\nvs\n%s", tree1, tree2)
	}
	if !bytes.Equal(chrome1, chrome2) {
		t.Errorf("Chrome trace not byte-identical:\n%s\nvs\n%s", chrome1, chrome2)
	}
	if !bytes.Contains(chrome1, []byte(`"ph":"X"`)) {
		t.Errorf("Chrome trace lacks complete events:\n%s", chrome1)
	}
}

func TestSnapshotDeterministicAndSorted(t *testing.T) {
	runOnce := func(order []string) []byte {
		r := NewRegistry()
		for _, name := range order {
			r.Counter(name).Add(int64(len(name)))
		}
		r.Gauge("z/gauge").Set(7)
		h := r.Histogram("h/hist", 2, 4)
		h.Record(1)
		h.Record(3)
		h.Record(9)
		data, err := r.Snapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	// Same instruments created in different orders must snapshot to
	// identical bytes (name-sorted sections).
	a := runOnce([]string{"b/two", "a/one", "c/three"})
	b := runOnce([]string{"c/three", "b/two", "a/one"})
	if !bytes.Equal(a, b) {
		t.Errorf("snapshots differ by creation order:\n%s\nvs\n%s", a, b)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", 10, 100)
	for _, v := range []int64{5, 10, 11, 100, 101, 5000} {
		h.Record(v)
	}
	snap := r.Snapshot()
	hv := snap.Histograms[0]
	if hv.Count != 6 || hv.Sum != 5+10+11+100+101+5000 {
		t.Fatalf("count/sum = %d/%d", hv.Count, hv.Sum)
	}
	want := []int64{2, 2} // ≤10: {5,10}; ≤100: {11,100}
	for i, b := range hv.Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket %d = %+v, want count %d", i, b, want[i])
		}
	}
	if hv.Overflow != 2 {
		t.Fatalf("overflow = %d", hv.Overflow)
	}
}

func TestConcurrentInstrumentsAndSpans(t *testing.T) {
	sink := New(Config{Tracing: true, Metrics: true, PprofLabels: true})
	ctx := NewContext(context.Background(), sink)
	rctx, endRun := Trace(ctx, "synth/run")

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ApplyGoroutineLabels(rctx)
			c := sink.Metrics().Counter("workers/ops")
			h := sink.Metrics().Histogram("workers/val", 8, 64)
			g := sink.Metrics().Gauge("workers/depth")
			for i := 0; i < 1000; i++ {
				_, end := Trace(rctx, "worker/op")
				c.Add(1)
				h.Record(int64(i % 100))
				g.Add(1)
				g.Add(-1)
				end()
			}
		}()
	}
	wg.Wait()
	endRun()

	if got := sink.Metrics().Counter("workers/ops").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	roots := sink.Tracer().Roots()
	if len(roots) != 1 || len(roots[0].Children) != 8000 {
		t.Fatalf("span forest shape wrong: %d roots, %d children",
			len(roots), len(roots[0].Children))
	}
}

func TestCounterMapAndShorthands(t *testing.T) {
	sink := New(Config{Metrics: true})
	ctx := NewContext(context.Background(), sink)
	Counter(ctx, "a").Add(3)
	Gauge(ctx, "g").Set(9)
	m := sink.Metrics().Snapshot().CounterMap()
	if m["a"] != 3 {
		t.Fatalf("CounterMap = %v", m)
	}
	// Shorthands on a sink-less context are inert.
	Counter(context.Background(), "a").Add(1)
	if got := sink.Metrics().Counter("a").Value(); got != 3 {
		t.Fatalf("counter leaked across contexts: %d", got)
	}
}

func TestWithLabelsTolerant(t *testing.T) {
	// Odd-length and empty kv lists must not panic.
	ctx := WithLabels(context.Background(), "workload", "wan", "dangling")
	ctx = WithLabels(ctx)
	_ = ctx
}

package obs

import (
	"sync"
	"testing"
	"time"
)

// collect receives until ch closes or n events arrived.
func collect(t *testing.T, ch <-chan Event, n int) []Event {
	t.Helper()
	var out []Event
	timeout := time.After(5 * time.Second)
	for len(out) < n {
		select {
		case ev, ok := <-ch:
			if !ok {
				return out
			}
			out = append(out, ev)
		case <-timeout:
			t.Fatalf("timed out after %d of %d events", len(out), n)
		}
	}
	return out
}

func TestEventsPublishStampsContiguousSeq(t *testing.T) {
	e := NewEvents(16, nil)
	for i := 0; i < 5; i++ {
		e.Publish(Event{Type: EventEnumLevel, K: i})
	}
	hist := e.History()
	if len(hist) != 5 {
		t.Fatalf("history len = %d, want 5", len(hist))
	}
	for i, ev := range hist {
		if ev.Seq != int64(i+1) {
			t.Errorf("hist[%d].Seq = %d, want %d", i, ev.Seq, i+1)
		}
	}
}

func TestEventsReplayThenTailIsGapFree(t *testing.T) {
	e := NewEvents(64, nil)
	for i := 0; i < 10; i++ {
		e.Publish(Event{Type: EventEnumLevel})
	}
	replay, live, cancel := e.Subscribe(64)
	defer cancel()
	if len(replay) != 10 {
		t.Fatalf("replay len = %d, want 10", len(replay))
	}
	for i := 0; i < 10; i++ {
		e.Publish(Event{Type: EventIncumbent})
	}
	tail := collect(t, live, 10)
	all := append(replay, tail...)
	for i, ev := range all {
		if ev.Seq != int64(i+1) {
			t.Fatalf("event %d has Seq %d, want %d (gap or duplicate across replay/tail boundary)", i, ev.Seq, i+1)
		}
	}
}

func TestEventsRingDropsOldest(t *testing.T) {
	e := NewEvents(4, nil)
	for i := 0; i < 10; i++ {
		e.Publish(Event{Type: EventEnumLevel, K: i})
	}
	hist := e.History()
	if len(hist) != 4 {
		t.Fatalf("history len = %d, want 4", len(hist))
	}
	for i, ev := range hist {
		if want := int64(7 + i); ev.Seq != want {
			t.Errorf("hist[%d].Seq = %d, want %d (oldest must be dropped first)", i, ev.Seq, want)
		}
	}
	if e.Dropped() < 6 {
		t.Errorf("Dropped() = %d, want >= 6", e.Dropped())
	}
}

func TestEventsSlowSubscriberNeverBlocksPublisher(t *testing.T) {
	e := NewEvents(64, nil)
	_, live, cancel := e.Subscribe(2)
	defer cancel()
	// Publish far more than the queue holds without draining; Publish
	// must return (drop-oldest) rather than block the solver.
	for i := 0; i < 20; i++ {
		e.Publish(Event{Type: EventIncumbent})
	}
	// The queue retains the newest events.
	got := collect(t, live, 2)
	if got[len(got)-1].Seq != 20 {
		t.Errorf("last queued Seq = %d, want 20 (queue keeps newest)", got[len(got)-1].Seq)
	}
}

func TestEventsNilReceiverIsInert(t *testing.T) {
	var e *Events
	e.Publish(Event{Type: EventIncumbent}) // must not panic
	if h := e.History(); h != nil {
		t.Errorf("nil History() = %v, want nil", h)
	}
	if d := e.Dropped(); d != 0 {
		t.Errorf("nil Dropped() = %d, want 0", d)
	}
	replay, live, cancel := e.Subscribe(1)
	if len(replay) != 0 {
		t.Errorf("nil Subscribe replay = %v, want empty", replay)
	}
	if _, ok := <-live; ok {
		t.Error("nil Subscribe live channel must come back closed")
	}
	cancel()
	e.Close()
}

func TestEventsClose(t *testing.T) {
	e := NewEvents(16, nil)
	e.Publish(Event{Type: EventRunStart})
	_, live, cancel := e.Subscribe(4)
	defer cancel()
	e.Publish(Event{Type: EventRunEnd})
	e.Close()
	e.Close() // idempotent
	// Queued events drain, then the channel reports closed.
	got := collect(t, live, 2)
	if len(got) != 1 || got[0].Type != EventRunEnd {
		t.Fatalf("drained %v, want the one queued run_end", got)
	}
	// Publishing after Close is dropped.
	e.Publish(Event{Type: EventIncumbent})
	if len(e.History()) != 2 {
		t.Errorf("history after post-close publish = %d events, want 2", len(e.History()))
	}
	// Late subscribers still get the retained history and a closed tail.
	replay, live2, cancel2 := e.Subscribe(1)
	defer cancel2()
	if len(replay) != 2 {
		t.Errorf("post-close replay len = %d, want 2", len(replay))
	}
	if _, ok := <-live2; ok {
		t.Error("post-close live channel must come back closed")
	}
}

func TestEventsCancelIsIdempotentAndStopsDelivery(t *testing.T) {
	e := NewEvents(16, nil)
	_, live, cancel := e.Subscribe(4)
	cancel()
	cancel() // second cancel must not panic or double-close
	if _, ok := <-live; ok {
		t.Error("canceled subscription channel must be closed")
	}
	e.Publish(Event{Type: EventIncumbent}) // no subscriber left; must not panic
}

func TestEventsConcurrentPublishSubscribe(t *testing.T) {
	e := NewEvents(1024, nil)
	const publishers, each = 4, 100
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				e.Publish(Event{Type: EventIncumbent})
			}
		}()
	}
	// Subscribe mid-stream; replay+tail must still be gap-free.
	replay, live, cancel := e.Subscribe(1024)
	wg.Wait()
	e.Close()
	var tail []Event
	for ev := range live {
		tail = append(tail, ev)
	}
	cancel()
	all := append(replay, tail...)
	if len(all) == 0 {
		t.Fatal("no events delivered")
	}
	want := all[0].Seq
	for i, ev := range all {
		if ev.Seq != want+int64(i) {
			t.Fatalf("event %d has Seq %d, want %d (replay/tail must be contiguous)", i, ev.Seq, want+int64(i))
		}
	}
	if last := all[len(all)-1].Seq; last != publishers*each {
		t.Errorf("last Seq = %d, want %d", last, publishers*each)
	}
}

func TestEventsDeterministicTimestamps(t *testing.T) {
	tick := time.Unix(0, 0)
	now := func() time.Time {
		tick = tick.Add(time.Millisecond)
		return tick
	}
	e := NewEvents(8, now)
	e.Publish(Event{Type: EventRunStart})
	e.Publish(Event{Type: EventRunEnd})
	hist := e.History()
	if hist[0].TimeUs != 0 || hist[1].TimeUs != 1000 {
		t.Errorf("TimeUs = %d, %d; want 0, 1000 (relative to first event)", hist[0].TimeUs, hist[1].TimeUs)
	}
}

// Package obs is the synthesis observability layer: a zero-dependency
// span tracer, a metrics registry, and runtime/pprof label propagation,
// carried through the flow on a context.Context.
//
// The design principle is "pay only when watching". A run without an
// installed Sink costs one context lookup per *phase* (not per inner
// loop): the hot loops keep accumulating their counters in plain struct
// fields exactly as before, and the instrumented packages publish those
// totals to the registry once per phase. A nil *Sink — and nil *Tracer,
// *Registry, *Counter, … — is a valid no-op receiver everywhere, so
// call sites never branch on "is observability on".
//
// Span naming follows "<package>/<phase>" (e.g. "merging/enumerate",
// "ucp/solve"); the catalog of spans and metrics lives in
// docs/OBSERVABILITY.md.
//
// Determinism: the algorithm's counters (sets tested, prune hits, B&B
// nodes, …) are pure functions of the instance, so two identical runs
// snapshot identical counter values; with a caller-injected clock
// (Config.Now) the exported trace and metric JSON are byte-identical
// run to run, which the CI benchmark gate and the determinism tests
// rely on. Wall-clock fields (span durations, duration histograms) are
// the only nondeterministic values and are excluded from exact-match
// comparisons by cmd/bench-diff.
package obs

import (
	"context"
	"time"
)

// Config selects which collectors a Sink carries.
type Config struct {
	// Tracing enables the span tracer.
	Tracing bool
	// Metrics enables the counter/gauge/histogram registry.
	Metrics bool
	// Registry, when non-nil, is used as the metrics registry instead
	// of creating a fresh one (implies Metrics). The serving daemon
	// shares one registry across every job so /metrics is a single
	// accumulated scrape target.
	Registry *Registry
	// Tracer, when non-nil, is used as the span tracer instead of
	// creating a fresh one (implies Tracing). The serving daemon hands
	// each job's pre-created ID-carrying tracer to the run's sink so
	// the synth phase tree lands in the job's distributed trace.
	Tracer *Tracer
	// Events enables the progress event stream (phase boundaries,
	// enumeration levels, incumbent improvements) with a bounded
	// drop-oldest replay ring.
	Events bool
	// EventBuffer sizes the event replay ring; zero means
	// DefaultEventBuffer. Only meaningful with Events set.
	EventBuffer int
	// EventStream, when non-nil, is used as the event stream instead
	// of creating a fresh one (implies Events). The serving daemon
	// hands each job's pre-created stream to the run's sink so SSE
	// subscribers attached before the run started miss nothing.
	EventStream *Events
	// PprofLabels propagates a "phase" runtime/pprof label with every
	// span, so CPU profiles taken during a run attribute samples to
	// synthesis phases. Meaningful only while profiling; cheap always.
	PprofLabels bool
	// Now overrides the tracer's clock. Nil means time.Now. Tests
	// inject a deterministic clock to get byte-identical trace JSON.
	Now func() time.Time
}

// Sink is one run's observability collector. The zero value and the
// nil pointer are both inert; build a live one with New.
type Sink struct {
	tracer      *Tracer
	metrics     *Registry
	events      *Events
	eventBuffer int
	pprofLabels bool
	now         func() time.Time
}

// New returns a Sink with the collectors cfg enables. A Config with
// neither Tracing, Metrics nor Events yields a Sink that only
// propagates pprof labels (or nothing at all).
func New(cfg Config) *Sink {
	s := &Sink{pprofLabels: cfg.PprofLabels, now: cfg.Now, eventBuffer: cfg.EventBuffer}
	switch {
	case cfg.Tracer != nil:
		s.tracer = cfg.Tracer
	case cfg.Tracing:
		s.tracer = NewTracer(cfg.Now)
	}
	switch {
	case cfg.Registry != nil:
		s.metrics = cfg.Registry
	case cfg.Metrics:
		s.metrics = NewRegistry()
	}
	switch {
	case cfg.EventStream != nil:
		s.events = cfg.EventStream
	case cfg.Events:
		s.events = NewEvents(cfg.EventBuffer, cfg.Now)
	}
	return s
}

// Clock returns the sink's clock (Config.Now, or time.Now). Every
// wall-clock observation the instrumented code records — span stamps
// and duration histograms alike — goes through it, so injecting a
// deterministic clock makes the complete trace and metrics exports
// byte-identical across identical serial runs. A caller-injected
// clock must be safe for concurrent use if the run prices in
// parallel; time.Now trivially is.
func (s *Sink) Clock() func() time.Time {
	if s == nil || s.now == nil {
		return time.Now
	}
	return s.now
}

// Tracer returns the sink's span tracer, nil when tracing is disabled
// (a nil *Tracer is itself a no-op receiver).
func (s *Sink) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tracer
}

// Metrics returns the sink's registry, nil when metrics are disabled
// (a nil *Registry hands out nil instruments, which are no-ops).
func (s *Sink) Metrics() *Registry {
	if s == nil {
		return nil
	}
	return s.metrics
}

// Events returns the sink's progress event stream, nil when events are
// disabled (a nil *Events is itself a no-op receiver).
func (s *Sink) Events() *Events {
	if s == nil {
		return nil
	}
	return s.events
}

// InitEvents retrofits an event stream onto a sink built without one
// (the facade calls it when Options.Progress is set on a caller-built
// Observer); a stream already present is kept. Call before the run —
// it is not synchronized against concurrent publishers. No-op on nil.
func (s *Sink) InitEvents() {
	if s == nil || s.events != nil {
		return
	}
	s.events = NewEvents(s.eventBuffer, s.now)
}

// ctxKey* are private context key types so no other package can
// collide with the sink/span values.
type ctxKeySink struct{}
type ctxKeySpan struct{}

// NewContext returns ctx carrying the sink; the instrumented packages
// retrieve it with FromContext. A nil sink returns ctx unchanged.
func NewContext(ctx context.Context, s *Sink) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKeySink{}, s)
}

// FromContext returns the sink carried by ctx, or nil (a valid no-op
// receiver) when none is installed.
func FromContext(ctx context.Context) *Sink {
	s, _ := ctx.Value(ctxKeySink{}).(*Sink)
	return s
}

// Counter is shorthand for FromContext(ctx).Metrics().Counter(name):
// the handle a phase fetches once and then Adds to freely.
func Counter(ctx context.Context, name string) *CounterHandle {
	return FromContext(ctx).Metrics().Counter(name)
}

// Gauge is shorthand for FromContext(ctx).Metrics().Gauge(name).
func Gauge(ctx context.Context, name string) *GaugeHandle {
	return FromContext(ctx).Metrics().Gauge(name)
}

// EventsFromContext is shorthand for FromContext(ctx).Events(): the
// stream handle a phase fetches once and then publishes to freely (nil
// — a no-op publisher — when events are disabled).
func EventsFromContext(ctx context.Context) *Events {
	return FromContext(ctx).Events()
}

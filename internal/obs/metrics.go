package obs

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a run's named counters, gauges and histograms.
// Instruments are created on first use and live for the registry's
// lifetime; handles are safe to share across goroutines (the pricing
// worker pool hammers them under -race). A nil *Registry hands out nil
// handles, which are themselves no-ops, so disabled metrics cost one
// nil check per operation.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*CounterHandle
	gauges   map[string]*GaugeHandle
	hists    map[string]*HistogramHandle
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*CounterHandle),
		gauges:   make(map[string]*GaugeHandle),
		hists:    make(map[string]*HistogramHandle),
	}
}

// CounterHandle is a monotonically increasing int64 instrument.
type CounterHandle struct{ v atomic.Int64 }

// Add increments the counter; no-op on a nil handle.
func (c *CounterHandle) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Value returns the current count (0 on a nil handle).
func (c *CounterHandle) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// GaugeHandle is a set-or-adjust int64 instrument (queue depths, pool
// sizes).
type GaugeHandle struct{ v atomic.Int64 }

// Set stores the gauge value; no-op on a nil handle.
func (g *GaugeHandle) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta; no-op on a nil handle.
func (g *GaugeHandle) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current gauge value (0 on a nil handle).
func (g *GaugeHandle) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistogramHandle is an int64-valued histogram with fixed upper
// bounds. Values and sums are integers (arities, node counts,
// microseconds) so concurrent recording stays order-independent —
// float accumulation would make snapshots scheduling-dependent.
type HistogramHandle struct {
	bounds  []int64        // ascending upper bounds (inclusive)
	buckets []atomic.Int64 // len(bounds)+1; last is overflow
	count   atomic.Int64
	sum     atomic.Int64
}

// Record adds one observation; no-op on a nil handle.
func (h *HistogramHandle) Record(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *CounterHandle {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &CounterHandle{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *GaugeHandle {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &GaugeHandle{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending upper bounds on first use (later calls reuse the first
// creation's bounds).
func (r *Registry) Histogram(name string, bounds ...int64) *HistogramHandle {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &HistogramHandle{
			bounds:  append([]int64(nil), bounds...),
			buckets: make([]atomic.Int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// NamedValue is one counter or gauge in a snapshot.
type NamedValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Bucket is one histogram bucket in a snapshot: observations ≤ Le
// (and above the previous bound).
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramValue is one histogram in a snapshot.
type HistogramValue struct {
	Name string `json:"name"`
	// Count and Sum summarize all observations.
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	// Buckets are the bounded buckets; Overflow counts observations
	// above the last bound.
	Buckets  []Bucket `json:"buckets"`
	Overflow int64    `json:"overflow"`
}

// Snapshot is a point-in-time copy of every instrument, each section
// sorted by name so the JSON form is deterministic.
type Snapshot struct {
	Counters   []NamedValue     `json:"counters"`
	Gauges     []NamedValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Snapshot copies out every instrument. A nil registry snapshots
// empty (never nil) sections, so the JSON shape is stable.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   []NamedValue{},
		Gauges:     []NamedValue{},
		Histograms: []HistogramValue{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters = append(snap.Counters, NamedValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		snap.Gauges = append(snap.Gauges, NamedValue{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		hv := HistogramValue{
			Name:  name,
			Count: h.count.Load(),
			Sum:   h.sum.Load(),
		}
		for i, b := range h.bounds {
			hv.Buckets = append(hv.Buckets, Bucket{Le: b, Count: h.buckets[i].Load()})
		}
		hv.Overflow = h.buckets[len(h.bounds)].Load()
		snap.Histograms = append(snap.Histograms, hv)
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	return snap
}

// JSON renders the snapshot as indented JSON; deterministic because
// every section is name-sorted and every value is an integer.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// CounterMap returns the snapshot's counters as a map, the form
// cmd/cdcs-bench embeds per run and cmd/bench-diff compares.
func (s Snapshot) CounterMap() map[string]int64 {
	out := make(map[string]int64, len(s.Counters))
	for _, c := range s.Counters {
		out[c.Name] = c.Value
	}
	return out
}

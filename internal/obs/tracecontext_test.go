package obs

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	ids := NewIDSource(42)
	sc := ids.NewRoot()
	if !sc.Valid() {
		t.Fatal("NewRoot must return a valid context")
	}
	h := sc.Traceparent()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") {
		t.Fatalf("traceparent = %q, want 55-byte version-00 header", h)
	}
	got, ok := ParseTraceparent(h)
	if !ok || got != sc {
		t.Fatalf("ParseTraceparent(%q) = %+v/%v, want round trip", h, got, ok)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	valid := NewIDSource(1).NewRoot().Traceparent()
	for _, h := range []string{
		"",
		"garbage",
		valid[:54],                             // truncated
		valid + "0",                            // too long
		"01" + valid[2:],                       // wrong version
		strings.Replace(valid, "-", "_", 1),    // bad separator
		"00-" + strings.Repeat("z", 32) + valid[35:], // non-hex trace ID
		"00-" + strings.Repeat("0", 32) + valid[35:], // zero trace ID
		valid[:36] + strings.Repeat("0", 16) + "-01", // zero span ID
	} {
		if sc, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) = %+v, want rejection", h, sc)
		}
	}
}

func TestIDSourceSeededDeterministic(t *testing.T) {
	a, b := NewIDSource(7), NewIDSource(7)
	for i := 0; i < 100; i++ {
		ta, tb := a.TraceID(), b.TraceID()
		if ta != tb {
			t.Fatalf("draw %d: trace IDs diverged: %s vs %s", i, ta, tb)
		}
		if ta.IsZero() {
			t.Fatalf("draw %d: zero trace ID", i)
		}
		sa, sb := a.SpanID(), b.SpanID()
		if sa != sb || sa.IsZero() {
			t.Fatalf("draw %d: span IDs = %s vs %s", i, sa, sb)
		}
	}
	if NewIDSource(8).TraceID() == NewIDSource(9).TraceID() {
		t.Error("different seeds produced the same first trace ID")
	}
}

func TestTracerStampsOneTracePerTracer(t *testing.T) {
	tr := NewTracerWithIDs(fakeClock(), NewIDSource(3), SpanContext{})
	root := tr.Start(nil, "serve/job")
	child := tr.Start(root, "serve/admission")
	tr.End(child)
	second := tr.Start(nil, "late-root")
	tr.End(second)
	tr.End(root)

	roots := tr.Roots()
	if len(roots) != 2 {
		t.Fatalf("roots = %d, want 2", len(roots))
	}
	r, s := roots[0], roots[1]
	if r.TraceID == "" || r.SpanID == "" || r.ParentID != "" {
		t.Fatalf("first root identity = %+v, want fresh trace root", r)
	}
	if len(r.Children) != 1 {
		t.Fatalf("children = %d", len(r.Children))
	}
	c := r.Children[0]
	if c.TraceID != r.TraceID || c.ParentID != r.SpanID {
		t.Errorf("child = trace %s parent %s, want under root %s/%s",
			c.TraceID, c.ParentID, r.TraceID, r.SpanID)
	}
	// A later parentless root shares the trace, parented under the
	// first root: one tracer is one trace.
	if s.TraceID != r.TraceID || s.ParentID != r.SpanID {
		t.Errorf("second root = trace %s parent %s, want to join %s/%s",
			s.TraceID, s.ParentID, r.TraceID, r.SpanID)
	}
}

func TestTracerJoinsPropagatedParent(t *testing.T) {
	remote := NewIDSource(11).NewRoot()
	tr := NewTracerWithIDs(fakeClock(), NewIDSource(12), remote)
	root := tr.Start(nil, "serve/job")
	tr.End(root)
	got := tr.Roots()[0]
	if got.TraceID != remote.TraceID.String() {
		t.Errorf("trace ID = %s, want propagated %s", got.TraceID, remote.TraceID)
	}
	if got.ParentID != remote.SpanID.String() {
		t.Errorf("parent = %s, want remote span %s", got.ParentID, remote.SpanID)
	}
	if got.SpanID == remote.SpanID.String() {
		t.Error("root reused the remote span ID")
	}
}

func TestSpanContextInContext(t *testing.T) {
	if sc := SpanContextFromContext(context.Background()); sc.Valid() {
		t.Fatalf("bare context carries %+v", sc)
	}
	sc := NewIDSource(5).NewRoot()
	ctx := ContextWithSpanContext(context.Background(), sc)
	if got := SpanContextFromContext(ctx); got != sc {
		t.Fatalf("explicit value = %+v, want %+v", got, sc)
	}
	// An invalid value must not overwrite the context.
	if ctx2 := ContextWithSpanContext(ctx, SpanContext{}); SpanContextFromContext(ctx2) != sc {
		t.Error("invalid span context replaced a valid one")
	}
	// A live span takes precedence over the explicit value.
	tr := NewTracerWithIDs(fakeClock(), NewIDSource(6), SpanContext{})
	sp := tr.Start(nil, "serve/job")
	ctx = ContextWithSpan(ctx, sp)
	if got := SpanContextFromContext(ctx); got != sp.Context() {
		t.Fatalf("live span context = %+v, want %+v", got, sp.Context())
	}
}

// mkSpan builds a span with explicit timing for lane-assignment tests.
func mkSpan(name string, startUs, durUs int64, children ...*Span) *Span {
	return &Span{Name: name, StartUs: startUs, DurUs: durUs, Children: children}
}

// laneOf extracts the tid assigned to the named event.
func laneOf(t *testing.T, data []byte, name string) int {
	t.Helper()
	for _, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, `"name":"`+name+`"`) {
			var tid int
			i := strings.Index(line, `"tid":`)
			if i < 0 {
				t.Fatalf("event %q has no tid: %s", name, line)
			}
			if _, err := fmt.Sscan(strings.TrimRight(line[i+len(`"tid":`):], ",}"), &tid); err != nil {
				t.Fatalf("parse tid of %q: %v", name, err)
			}
			return tid
		}
	}
	t.Fatalf("event %q not in trace:\n%s", name, data)
	return 0
}

func TestChromeExportLanes(t *testing.T) {
	// Root 0..100; seq1 (0..40) and seq2 (40..60) fit the root's lane
	// back-to-back; par overlaps seq1 and must spill to a fresh lane.
	root := mkSpan("root", 0, 100,
		mkSpan("seq1", 0, 40),
		mkSpan("par", 10, 50),
		mkSpan("seq2", 60, 20),
	)
	data, err := ChromeExport([]TraceSource{{Name: "replica-a", Spans: []*Span{root}}})
	if err != nil {
		t.Fatal(err)
	}
	if laneOf(t, data, "root") != 1 || laneOf(t, data, "seq1") != 1 || laneOf(t, data, "seq2") != 1 {
		t.Errorf("sequential spans must share the root lane:\n%s", data)
	}
	if lane := laneOf(t, data, "par"); lane == 1 {
		t.Errorf("overlapping sibling must spill off lane 1:\n%s", data)
	}
	if !bytes.Contains(data, []byte(`"name":"process_name"`)) ||
		!bytes.Contains(data, []byte(`"name":"replica-a"`)) {
		t.Errorf("missing process_name metadata:\n%s", data)
	}
}

func TestChromeExportMultiSourcePIDs(t *testing.T) {
	a := []*Span{mkSpan("on-a", 0, 10)}
	b := []*Span{mkSpan("on-b", 0, 10)}
	data, err := ChromeExport([]TraceSource{{Name: "A", Spans: a}, {Name: "B", Spans: b}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"name":"on-a","ph":"X","ts":0,"dur":10,"pid":1`)) {
		t.Errorf("source A not on pid 1:\n%s", data)
	}
	if !bytes.Contains(data, []byte(`"name":"on-b","ph":"X","ts":0,"dur":10,"pid":2`)) {
		t.Errorf("source B not on pid 2:\n%s", data)
	}
	again, err := ChromeExport([]TraceSource{{Name: "A", Spans: a}, {Name: "B", Spans: b}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("ChromeExport not deterministic for identical input")
	}
}

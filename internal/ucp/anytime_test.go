package ucp

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"
)

// randomInstance builds a random covering matrix. Feasibility is not
// guaranteed — infeasible draws exercise the ErrInfeasible path.
func randomInstance(rng *rand.Rand) *Matrix {
	rows := 4 + rng.Intn(10)
	cols := 3 + rng.Intn(25)
	m := NewMatrix(rows)
	for j := 0; j < cols; j++ {
		var covered []int
		for r := 0; r < rows; r++ {
			if rng.Float64() < 0.35 {
				covered = append(covered, r)
			}
		}
		if len(covered) == 0 {
			covered = []int{rng.Intn(rows)}
		}
		m.MustAddColumn(Column{Rows: covered, Weight: 0.5 + 4*rng.Float64()})
	}
	return m
}

// TestAnytimeProperties checks, over random matrices, the anytime-solver
// contract: the exact optimum never exceeds the greedy cost, every
// returned solution is a genuine cover, LowerBound is admissible, and an
// interrupted solve still returns a valid cover marked non-optimal.
func TestAnytimeProperties(t *testing.T) {
	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := randomInstance(rng)

		if !m.Feasible() {
			if _, err := m.Solve(); !errors.Is(err, ErrInfeasible) {
				t.Fatalf("seed %d: infeasible instance: Solve err = %v, want ErrInfeasible", seed, err)
			}
			if _, err := m.SolveGreedy(); !errors.Is(err, ErrInfeasible) {
				t.Fatalf("seed %d: infeasible instance: SolveGreedy err = %v, want ErrInfeasible", seed, err)
			}
			continue
		}

		greedy, err := m.SolveGreedy()
		if err != nil {
			t.Fatalf("seed %d: greedy: %v", seed, err)
		}
		exact, err := m.Solve()
		if err != nil {
			t.Fatalf("seed %d: exact: %v", seed, err)
		}

		if !m.Covers(greedy.Columns) {
			t.Fatalf("seed %d: greedy solution does not cover all rows", seed)
		}
		if !m.Covers(exact.Columns) {
			t.Fatalf("seed %d: exact solution does not cover all rows", seed)
		}
		if exact.Cost > greedy.Cost+1e-9 {
			t.Fatalf("seed %d: exact cost %.6f > greedy cost %.6f", seed, exact.Cost, greedy.Cost)
		}
		if !exact.Optimal || exact.Interrupted {
			t.Fatalf("seed %d: uninterrupted exact solve: Optimal=%v Interrupted=%v", seed, exact.Optimal, exact.Interrupted)
		}
		if exact.LowerBound > exact.Cost+1e-9 {
			t.Fatalf("seed %d: LowerBound %.6f > Cost %.6f", seed, exact.LowerBound, exact.Cost)
		}
		if g := exact.GapBound(); g < -1e-9 || math.IsInf(g, 0) || math.IsNaN(g) {
			t.Fatalf("seed %d: bad gap bound %v", seed, g)
		}

		// Interrupted solve: a dead context before the search starts must
		// still yield a valid (greedy-seeded) cover, marked non-optimal,
		// with an admissible lower bound.
		interrupted, err := m.SolveContext(canceled)
		if err != nil {
			t.Fatalf("seed %d: interrupted solve errored: %v", seed, err)
		}
		if !interrupted.Interrupted || interrupted.Optimal {
			t.Fatalf("seed %d: dead-context solve: Optimal=%v Interrupted=%v, want false/true",
				seed, interrupted.Optimal, interrupted.Interrupted)
		}
		if !m.Covers(interrupted.Columns) {
			t.Fatalf("seed %d: interrupted solution does not cover all rows", seed)
		}
		if interrupted.Cost < exact.Cost-1e-9 {
			t.Fatalf("seed %d: interrupted cost %.6f beats the optimum %.6f", seed, interrupted.Cost, exact.Cost)
		}
		if interrupted.LowerBound > exact.Cost+1e-9 {
			t.Fatalf("seed %d: interrupted LowerBound %.6f is not admissible (optimum %.6f)",
				seed, interrupted.LowerBound, exact.Cost)
		}
		if g := interrupted.GapBound(); g < -1e-9 || math.IsInf(g, 0) || math.IsNaN(g) {
			t.Fatalf("seed %d: interrupted gap bound %v not finite/non-negative", seed, g)
		}
	}
}

// TestSolveContextMidSearchDeadline runs larger instances under a real
// (already-expiring) deadline. Whether or not the solver happens to
// finish first, every invariant must hold — and the expired-deadline
// variant must always report the interruption.
func TestSolveContextMidSearchDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rows := 30
	m := NewMatrix(rows)
	for j := 0; j < 120; j++ {
		var covered []int
		for r := 0; r < rows; r++ {
			if rng.Float64() < 0.2 {
				covered = append(covered, r)
			}
		}
		if len(covered) == 0 {
			covered = []int{rng.Intn(rows)}
		}
		m.MustAddColumn(Column{Rows: covered, Weight: 1 + rng.Float64()})
	}
	if !m.Feasible() {
		t.Fatal("instance unexpectedly infeasible")
	}

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	sol, err := m.SolveContext(ctx)
	if err != nil {
		t.Fatalf("SolveContext: %v", err)
	}
	if sol.Optimal || !sol.Interrupted {
		t.Fatalf("expired deadline: Optimal=%v Interrupted=%v, want false/true", sol.Optimal, sol.Interrupted)
	}
	if !m.Covers(sol.Columns) {
		t.Fatal("interrupted solution does not cover all rows")
	}
	if sol.LowerBound > sol.Cost+1e-9 {
		t.Fatalf("LowerBound %.6f > Cost %.6f", sol.LowerBound, sol.Cost)
	}
	if g := sol.GapBound(); g < -1e-9 || math.IsInf(g, 0) || math.IsNaN(g) {
		t.Fatalf("gap bound %v not finite/non-negative", g)
	}
}

// TestSolveDecomposedInterrupted checks that block-decomposed solving
// propagates interruption and accumulates per-block lower bounds.
func TestSolveDecomposedInterrupted(t *testing.T) {
	// Two independent 2-row blocks.
	m := NewMatrix(4)
	m.MustAddColumn(Column{Rows: []int{0, 1}, Weight: 3})
	m.MustAddColumn(Column{Rows: []int{0}, Weight: 1})
	m.MustAddColumn(Column{Rows: []int{1}, Weight: 1})
	m.MustAddColumn(Column{Rows: []int{2, 3}, Weight: 3})
	m.MustAddColumn(Column{Rows: []int{2}, Weight: 1})
	m.MustAddColumn(Column{Rows: []int{3}, Weight: 1})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := m.SolveDecomposedContext(ctx)
	if err != nil {
		t.Fatalf("SolveDecomposedContext: %v", err)
	}
	if sol.Optimal || !sol.Interrupted {
		t.Fatalf("Optimal=%v Interrupted=%v, want false/true", sol.Optimal, sol.Interrupted)
	}
	if !m.Covers(sol.Columns) {
		t.Fatal("interrupted decomposed solution does not cover all rows")
	}
	if sol.LowerBound > sol.Cost+1e-9 {
		t.Fatalf("LowerBound %.6f > Cost %.6f", sol.LowerBound, sol.Cost)
	}

	// Uninterrupted decomposed solve on the same instance is optimal.
	opt, err := m.SolveDecomposed()
	if err != nil {
		t.Fatalf("SolveDecomposed: %v", err)
	}
	if !opt.Optimal || opt.Interrupted {
		t.Fatalf("uninterrupted: Optimal=%v Interrupted=%v", opt.Optimal, opt.Interrupted)
	}
	if opt.Cost != 4 {
		t.Fatalf("optimum cost = %v, want 4", opt.Cost)
	}
	if sol.Cost < opt.Cost-1e-9 {
		t.Fatalf("interrupted cost %.6f beats the optimum %.6f", sol.Cost, opt.Cost)
	}
}

// TestInfeasibleSentinel checks every solver returns the shared typed
// sentinel for infeasible instances.
func TestInfeasibleSentinel(t *testing.T) {
	m := NewMatrix(2)
	m.MustAddColumn(Column{Rows: []int{0}, Weight: 1}) // row 1 uncoverable

	if _, err := m.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("Solve: err = %v, want ErrInfeasible", err)
	}
	if _, err := m.SolveGreedy(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("SolveGreedy: err = %v, want ErrInfeasible", err)
	}
	if _, err := m.SolveExhaustive(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("SolveExhaustive: err = %v, want ErrInfeasible", err)
	}
	if _, err := m.SolveDecomposed(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("SolveDecomposed: err = %v, want ErrInfeasible", err)
	}
}

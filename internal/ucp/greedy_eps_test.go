package ucp

import (
	"context"
	"errors"
	"testing"
)

// Two columns whose cost-per-new-row ratios differ only by float
// rounding noise must be treated as a tie and resolved toward the
// column covering more rows — independent of insertion order. Before
// the num.Eq migration the raw `<` comparison let the 5e-13 ratio gap
// decide, so the chosen cover flipped with column order.
func TestGreedyNearEqualRatioTieBreak(t *testing.T) {
	narrow := Column{Weight: 1.0, Rows: []int{0}}          // ratio exactly 1.0
	wide := Column{Weight: 2.0 + 1e-12, Rows: []int{0, 1}} // ratio 1.0 + 5e-13
	filler := Column{Weight: 1.0, Rows: []int{1}}          // completes the narrow cover

	build := func(cols ...Column) *Matrix {
		m := NewMatrix(2)
		for _, c := range cols {
			m.MustAddColumn(c)
		}
		return m
	}

	var costs []float64
	for _, m := range []*Matrix{build(narrow, wide, filler), build(wide, narrow, filler)} {
		sol, err := m.SolveGreedy()
		if err != nil {
			t.Fatalf("SolveGreedy: %v", err)
		}
		if len(sol.Columns) != 1 {
			t.Errorf("greedy chose %d columns %v, want the single wide column", len(sol.Columns), sol.Columns)
		}
		costs = append(costs, sol.Cost)
	}
	if costs[0] != costs[1] {
		t.Errorf("greedy cost depends on column order: %v vs %v", costs[0], costs[1])
	}
}

// The Context variants added for the ctxflow invariant: a live context
// changes nothing, a dead one stops the solver with a wrapped
// context error (greedy has no feasible partial cover to return).
func TestGreedyAndExhaustiveContext(t *testing.T) {
	m := NewMatrix(3)
	m.MustAddColumn(Column{Weight: 1, Rows: []int{0, 1}})
	m.MustAddColumn(Column{Weight: 1, Rows: []int{1, 2}})
	m.MustAddColumn(Column{Weight: 3, Rows: []int{0, 1, 2}})

	want, err := m.SolveGreedy()
	if err != nil {
		t.Fatalf("SolveGreedy: %v", err)
	}
	got, err := m.SolveGreedyContext(context.Background())
	if err != nil {
		t.Fatalf("SolveGreedyContext(background): %v", err)
	}
	if got.Cost != want.Cost {
		t.Errorf("SolveGreedyContext cost %v != SolveGreedy cost %v", got.Cost, want.Cost)
	}

	exWant, err := m.SolveExhaustive()
	if err != nil {
		t.Fatalf("SolveExhaustive: %v", err)
	}
	exGot, err := m.SolveExhaustiveContext(context.Background())
	if err != nil {
		t.Fatalf("SolveExhaustiveContext(background): %v", err)
	}
	if exGot.Cost != exWant.Cost {
		t.Errorf("SolveExhaustiveContext cost %v != SolveExhaustive cost %v", exGot.Cost, exWant.Cost)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.SolveGreedyContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("SolveGreedyContext(canceled): err = %v, want errors.Is(err, context.Canceled)", err)
	}
	if _, err := m.SolveExhaustiveContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("SolveExhaustiveContext(canceled): err = %v, want errors.Is(err, context.Canceled)", err)
	}
}

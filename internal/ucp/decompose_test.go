package ucp

import (
	"math"
	"math/rand"
	"testing"
)

func TestComponentsSplit(t *testing.T) {
	m := NewMatrix(4)
	m.MustAddColumn(Column{Rows: []int{0, 1}, Weight: 1})
	m.MustAddColumn(Column{Rows: []int{1}, Weight: 1})
	m.MustAddColumn(Column{Rows: []int{2, 3}, Weight: 1})
	blocks := m.components()
	if len(blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(blocks))
	}
	if len(blocks[0][0]) != 2 || len(blocks[1][0]) != 2 {
		t.Errorf("row split wrong: %v", blocks)
	}
	if len(blocks[0][1]) != 2 || len(blocks[1][1]) != 1 {
		t.Errorf("column split wrong: %v", blocks)
	}
}

func TestSolveDecomposedSingleBlock(t *testing.T) {
	m := NewMatrix(2)
	m.MustAddColumn(Column{Rows: []int{0, 1}, Weight: 2})
	m.MustAddColumn(Column{Rows: []int{0}, Weight: 1.5})
	m.MustAddColumn(Column{Rows: []int{1}, Weight: 1.5})
	direct, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := m.SolveDecomposed()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(direct.Cost-dec.Cost) > 1e-12 {
		t.Errorf("decomposed %v ≠ direct %v", dec.Cost, direct.Cost)
	}
}

func TestSolveDecomposedInfeasible(t *testing.T) {
	m := NewMatrix(2)
	m.MustAddColumn(Column{Rows: []int{0}, Weight: 1})
	if _, err := m.SolveDecomposed(); err == nil {
		t.Error("infeasible instance should error")
	}
}

// Property: on random block-structured instances, the decomposed solve
// matches the exhaustive optimum and returns a valid cover.
func TestSolveDecomposedMatchesExhaustiveProperty(t *testing.T) {
	r := rand.New(rand.NewSource(808))
	for trial := 0; trial < 60; trial++ {
		nBlocks := 1 + r.Intn(3)
		rowsPerBlock := 1 + r.Intn(3)
		total := nBlocks * rowsPerBlock
		m := NewMatrix(total)
		for b := 0; b < nBlocks; b++ {
			base := b * rowsPerBlock
			nCols := 1 + r.Intn(5)
			for j := 0; j < nCols; j++ {
				var cover []int
				for rr := 0; rr < rowsPerBlock; rr++ {
					if r.Float64() < 0.6 {
						cover = append(cover, base+rr)
					}
				}
				if len(cover) == 0 {
					cover = []int{base + r.Intn(rowsPerBlock)}
				}
				m.MustAddColumn(Column{Rows: cover, Weight: 0.5 + r.Float64()*5})
			}
			// Ensure feasibility of each block.
			all := make([]int, rowsPerBlock)
			for rr := range all {
				all[rr] = base + rr
			}
			m.MustAddColumn(Column{Rows: all, Weight: 4 + r.Float64()*4})
		}
		want, err := m.SolveExhaustive()
		if err != nil {
			t.Fatalf("trial %d exhaustive: %v", trial, err)
		}
		got, err := m.SolveDecomposed()
		if err != nil {
			t.Fatalf("trial %d decomposed: %v", trial, err)
		}
		if math.Abs(got.Cost-want.Cost) > 1e-9 {
			t.Fatalf("trial %d: decomposed %v ≠ exhaustive %v", trial, got.Cost, want.Cost)
		}
		if !m.Covers(got.Columns) {
			t.Fatalf("trial %d: decomposed solution does not cover", trial)
		}
		if math.Abs(m.CostOf(got.Columns)-got.Cost) > 1e-9 {
			t.Fatalf("trial %d: reported cost mismatches selected columns", trial)
		}
	}
}

func BenchmarkSolveDecomposedVsDirect(b *testing.B) {
	// Four independent 6-row blocks: decomposition should beat direct
	// branch-and-bound over the union.
	build := func() *Matrix {
		r := rand.New(rand.NewSource(5))
		m := NewMatrix(24)
		for blk := 0; blk < 4; blk++ {
			base := blk * 6
			for j := 0; j < 14; j++ {
				var cover []int
				for rr := 0; rr < 6; rr++ {
					if r.Float64() < 0.4 {
						cover = append(cover, base+rr)
					}
				}
				if len(cover) == 0 {
					cover = []int{base + r.Intn(6)}
				}
				m.MustAddColumn(Column{Rows: cover, Weight: 0.5 + r.Float64()*5})
			}
		}
		return m
	}
	m := build()
	if !m.Feasible() {
		b.Skip("unlucky seed")
	}
	b.Run("decomposed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.SolveDecomposed(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.Solve(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Package ucp implements the weighted Unate Covering Problem solver used
// by the global step of the CDCS algorithm: rows are constraint arcs,
// columns are candidate arc implementations with their costs as weights,
// and the optimum implementation graph corresponds to a minimum-weight
// set of columns covering all rows.
//
// The exact solver is a branch-and-bound in the classical
// Espresso/Scherzo style (the paper defers to such solvers, refs [4, 8]):
// essential-column extraction, row and column dominance reductions, and
// a maximal-independent-set lower bound. A greedy heuristic and an
// exhaustive solver are provided as baselines and cross-checks.
package ucp

import (
	"fmt"
	"math"
	"sort"
)

// Column is one candidate: the set of rows it covers and its weight.
type Column struct {
	// Rows lists the covered row indices; order is irrelevant and
	// duplicates are ignored.
	Rows []int
	// Weight is the column's cost; must be non-negative and finite.
	Weight float64
	// Label is an optional human-readable identifier carried through to
	// solutions.
	Label string
}

// Matrix is a weighted unate covering instance with rows 0..NumRows-1.
//
// Beside the column list it maintains two flat bitmask views of the
// coverage relation, built incrementally by AddColumn and consumed by
// the solver's hot loops: colMask[j] holds the rows column j covers
// (one bit per row), rowMask[r] holds the columns covering row r (one
// bit per column). Membership, cover-count and subset tests — the
// innermost operations of essential extraction, dominance reduction and
// both lower bounds — become single-word AND/popcount operations
// instead of binary searches over sorted row slices.
type Matrix struct {
	numRows int
	cols    []Column
	// rowWords is the word length of every colMask (fixed by numRows);
	// colWords is the current word length of every rowMask (grows as
	// columns are added, all rows kept at equal length so mask pairs
	// compare word-by-word).
	rowWords int
	colWords int
	colMask  [][]uint64
	rowMask  [][]uint64
}

// NewMatrix creates an instance with the given number of rows.
func NewMatrix(numRows int) *Matrix {
	m := &Matrix{numRows: numRows, rowWords: (numRows + 63) / 64}
	m.rowMask = make([][]uint64, numRows)
	return m
}

// NumRows returns the number of rows to cover.
func (m *Matrix) NumRows() int { return m.numRows }

// NumColumns returns the number of candidate columns.
func (m *Matrix) NumColumns() int { return len(m.cols) }

// Column returns column j.
func (m *Matrix) Column(j int) Column { return m.cols[j] }

// AddColumn adds a candidate column and returns its index. Row indices
// are deduplicated and sorted; out-of-range rows, empty covers, and
// invalid weights are rejected.
func (m *Matrix) AddColumn(c Column) (int, error) {
	if len(c.Rows) == 0 {
		return 0, fmt.Errorf("ucp: column %q covers no rows", c.Label)
	}
	if c.Weight < 0 || math.IsNaN(c.Weight) || math.IsInf(c.Weight, 0) {
		return 0, fmt.Errorf("ucp: column %q has invalid weight %g", c.Label, c.Weight)
	}
	rows := append([]int(nil), c.Rows...)
	sort.Ints(rows)
	dedup := rows[:0]
	for _, r := range rows {
		if r < 0 || r >= m.numRows {
			return 0, fmt.Errorf("ucp: column %q covers out-of-range row %d", c.Label, r)
		}
		if len(dedup) > 0 && dedup[len(dedup)-1] == r {
			continue
		}
		dedup = append(dedup, r)
	}
	c.Rows = dedup
	m.cols = append(m.cols, c)
	j := len(m.cols) - 1

	// Extend the bitmask views. Column masks are fixed-width (rows are
	// known up front); row masks grow a word whenever the column count
	// crosses a 64-boundary, and every row is kept at the same width so
	// subset tests can walk mask pairs word-by-word.
	cm := make([]uint64, m.rowWords)
	for _, r := range dedup {
		cm[r>>6] |= 1 << (uint(r) & 63)
	}
	m.colMask = append(m.colMask, cm)
	if w := j>>6 + 1; w > m.colWords {
		m.colWords = w
		for r := range m.rowMask {
			m.rowMask[r] = append(m.rowMask[r], 0)
		}
	}
	for _, r := range dedup {
		m.rowMask[r][j>>6] |= 1 << (uint(j) & 63)
	}
	return j, nil
}

// covers reports whether column j covers row r (a single bit test).
func (m *Matrix) covers(j, r int) bool {
	return m.colMask[j][r>>6]&(1<<(uint(r)&63)) != 0
}

// MustAddColumn is AddColumn that panics on error.
func (m *Matrix) MustAddColumn(c Column) int {
	j, err := m.AddColumn(c)
	if err != nil {
		panic(err)
	}
	return j
}

// Feasible reports whether every row is covered by at least one column.
func (m *Matrix) Feasible() bool {
	covered := make([]bool, m.numRows)
	for _, c := range m.cols {
		for _, r := range c.Rows {
			covered[r] = true
		}
	}
	for _, ok := range covered {
		if !ok {
			return false
		}
	}
	return true
}

// Solution is a set of selected columns covering all rows.
type Solution struct {
	// Columns are indices into the original matrix, sorted ascending.
	Columns []int
	// Cost is the summed weight of the selected columns.
	Cost float64
	// Optimal is true when the solver proved optimality.
	Optimal bool
	// Interrupted is true when a context deadline or cancellation cut
	// the branch-and-bound short; Columns then hold the best incumbent
	// found (never worse than the greedy cover the search is seeded
	// with) and Optimal is false.
	Interrupted bool
	// LowerBound is an admissible lower bound on the optimal cost of
	// this instance: equal to Cost when Optimal, and otherwise the root
	// relaxation bound (the stronger of the independent-set and
	// dual-ascent bounds), so Cost − LowerBound bounds the optimality
	// gap of an interrupted solve. The greedy solver leaves it zero.
	LowerBound float64
	// Stats carries solver counters.
	Stats Stats
}

// GapBound returns an upper bound on how far Cost can be above the true
// optimum (zero when the solve was proved optimal).
func (s Solution) GapBound() float64 { return s.Cost - s.LowerBound }

// Stats counts solver effort.
type Stats struct {
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// Prunes is the number of subtrees cut by the lower bound.
	Prunes int
	// Reductions is the number of essential/dominance simplifications
	// applied.
	Reductions int
	// Infeasible is the number of subproblems abandoned because some
	// row lost its last covering column (previously dropped silently).
	Infeasible int
	// Incumbents is the number of times the branch-and-bound improved
	// its incumbent solution (the greedy seed does not count; a solve
	// whose seed is already optimal reports zero).
	Incumbents int
}

// CostOf returns the summed weight of a column set.
func (m *Matrix) CostOf(columns []int) float64 {
	var sum float64
	for _, j := range columns {
		sum += m.cols[j].Weight
	}
	return sum
}

// Covers reports whether the column set covers every row.
func (m *Matrix) Covers(columns []int) bool {
	covered := make([]bool, m.numRows)
	for _, j := range columns {
		for _, r := range m.cols[j].Rows {
			covered[r] = true
		}
	}
	for _, ok := range covered {
		if !ok {
			return false
		}
	}
	return true
}

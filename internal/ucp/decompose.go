package ucp

import (
	"context"
	"sort"

	"repro/internal/obs"
)

// Covering instances from the synthesis flow often decompose: channels
// in different regions share no merging candidates, so the covering
// matrix splits into independent blocks (connected components of the
// bipartite row–column incidence graph). Solving the blocks separately
// is exponentially cheaper than branching over the union.

// components labels every row with a block id and returns, per block,
// the rows and the columns touching them.
func (m *Matrix) components() (blocks [][2][]int) {
	// Union-find over rows.
	parent := make([]int, m.numRows)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, c := range m.cols {
		for i := 1; i < len(c.Rows); i++ {
			union(c.Rows[0], c.Rows[i])
		}
	}
	rowsOf := make(map[int][]int)
	for r := 0; r < m.numRows; r++ {
		root := find(r)
		rowsOf[root] = append(rowsOf[root], r)
	}
	colsOf := make(map[int][]int)
	for j, c := range m.cols {
		if len(c.Rows) == 0 {
			continue
		}
		root := find(c.Rows[0])
		colsOf[root] = append(colsOf[root], j)
	}
	var roots []int
	for root := range rowsOf {
		roots = append(roots, root)
	}
	sort.Ints(roots)
	for _, root := range roots {
		blocks = append(blocks, [2][]int{rowsOf[root], colsOf[root]})
	}
	return blocks
}

// SolveDecomposed splits the instance into independent blocks, solves
// each with the branch-and-bound, and concatenates the solutions. For a
// single-block instance it is identical to Solve. The combined solution
// is optimal because no column spans two blocks.
func (m *Matrix) SolveDecomposed() (Solution, error) {
	return m.SolveDecomposedContext(context.Background())
}

// SolveDecomposedContext is SolveDecomposed under cooperative
// cancellation. Blocks solved before the deadline are exact; blocks
// interrupted mid-search contribute their best incumbent (see
// SolveContext), so the combined solution is always a valid cover. The
// summed LowerBound remains admissible for the whole instance because
// no column spans two blocks.
func (m *Matrix) SolveDecomposedContext(ctx context.Context) (Solution, error) {
	if !m.Feasible() {
		return Solution{}, ErrInfeasible
	}
	blocks := m.components()
	if len(blocks) <= 1 {
		return m.SolveContext(ctx)
	}
	// Each block's SolveContext opens its own child span and publishes
	// its own counters; this span only frames them and records the
	// decomposition width.
	ctx, endSpan := obs.Trace(ctx, "ucp/solve-decomposed",
		obs.Int("rows", m.numRows), obs.Int("cols", len(m.cols)), obs.Int("blocks", len(blocks)))
	var out Solution
	out.Optimal = true
	for _, b := range blocks {
		rows, cols := b[0], b[1]
		// Build the sub-instance with remapped row indices.
		rowIndex := make(map[int]int, len(rows))
		for i, r := range rows {
			rowIndex[r] = i
		}
		sub := NewMatrix(len(rows))
		for _, j := range cols {
			c := m.cols[j]
			mapped := make([]int, len(c.Rows))
			for i, r := range c.Rows {
				mapped[i] = rowIndex[r]
			}
			sub.MustAddColumn(Column{Rows: mapped, Weight: c.Weight, Label: c.Label})
		}
		sol, err := sub.SolveContext(ctx)
		if err != nil {
			return Solution{}, err
		}
		for _, sj := range sol.Columns {
			out.Columns = append(out.Columns, cols[sj])
		}
		out.Cost += sol.Cost
		out.LowerBound += sol.LowerBound
		if sol.Interrupted {
			out.Interrupted = true
			out.Optimal = false
		}
		out.Stats.Nodes += sol.Stats.Nodes
		out.Stats.Prunes += sol.Stats.Prunes
		out.Stats.Reductions += sol.Stats.Reductions
		out.Stats.Infeasible += sol.Stats.Infeasible
		out.Stats.Incumbents += sol.Stats.Incumbents
	}
	sort.Ints(out.Columns)
	endSpan(obs.Int("nodes", out.Stats.Nodes), obs.Bool("interrupted", out.Interrupted))
	return out, nil
}

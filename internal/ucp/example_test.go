package ucp_test

import (
	"fmt"

	"repro/internal/ucp"
)

// Example solves a tiny weighted covering instance: a bundle column
// covering all three rows beats the three singletons when its weight is
// below their sum.
func Example() {
	m := ucp.NewMatrix(3)
	m.MustAddColumn(ucp.Column{Rows: []int{0, 1, 2}, Weight: 2.5, Label: "bundle"})
	m.MustAddColumn(ucp.Column{Rows: []int{0}, Weight: 1, Label: "r0"})
	m.MustAddColumn(ucp.Column{Rows: []int{1}, Weight: 1, Label: "r1"})
	m.MustAddColumn(ucp.Column{Rows: []int{2}, Weight: 1, Label: "r2"})

	sol, _ := m.Solve()
	fmt.Printf("cost %.1f using %d column(s): %s\n",
		sol.Cost, len(sol.Columns), m.Column(sol.Columns[0]).Label)
	// Output:
	// cost 2.5 using 1 column(s): bundle
}

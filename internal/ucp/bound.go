package ucp

// Lower bounds for the branch-and-bound solver. Two classical bounds
// are implemented:
//
//   - the maximal-independent-set bound (rows no available column covers
//     pairwise, each contributing its cheapest cover) — see solve.go;
//   - a dual-ascent bound on the LP relaxation, in the spirit of the
//     LPR-based lower bounds of the paper's reference [8] (Liao &
//     Devadas): row duals u_r are raised until some covering column
//     becomes tight; Σ u_r is dual feasible, hence a valid lower bound.
//
// Neither bound dominates the other, so the solver uses their maximum.

import "repro/internal/num"

// dualAscentBound computes the dual-ascent bound for the subproblem
// restricted to active rows and available columns.
func (s *bbState) dualAscentBound(active, avail []bool) float64 {
	m := s.m
	slack := make([]float64, len(m.cols))
	usable := make([]bool, len(m.cols))
	for j, ok := range avail {
		if !ok {
			continue
		}
		usable[j] = true
		slack[j] = m.cols[j].Weight
	}
	var bound float64
	// Process rows hardest-first (fewest covering columns) — the usual
	// heuristic order that tends to tighten the bound.
	rows := s.rowsByCoverCount(active, avail)
	for _, r := range rows {
		// Raise u_r by the minimum remaining slack among columns
		// covering r.
		raise := -1.0
		for j := range usable {
			if !usable[j] || !m.covers(j, r) {
				continue
			}
			if raise < 0 || num.Below(slack[j], raise) {
				raise = slack[j]
			}
		}
		if raise <= 0 {
			continue
		}
		bound += raise
		for j := range usable {
			if usable[j] && m.covers(j, r) {
				slack[j] -= raise
			}
		}
	}
	return bound
}

// rowsByCoverCount returns the active rows sorted by ascending number
// of available covering columns.
func (s *bbState) rowsByCoverCount(active, avail []bool) []int {
	type rowCount struct{ r, n int }
	var rows []rowCount
	for r := 0; r < s.m.numRows; r++ {
		if !active[r] {
			continue
		}
		n := 0
		for j, ok := range avail {
			if ok && s.m.covers(j, r) {
				n++
			}
		}
		rows = append(rows, rowCount{r, n})
	}
	// Insertion sort: row counts are small and allocation-free ordering
	// keeps this hot path cheap.
	for i := 1; i < len(rows); i++ {
		for k := i; k > 0 && rows[k].n < rows[k-1].n; k-- {
			rows[k], rows[k-1] = rows[k-1], rows[k]
		}
	}
	out := make([]int, len(rows))
	for i, rc := range rows {
		out[i] = rc.r
	}
	return out
}

// combinedBound returns the stronger of the MIS and dual-ascent bounds.
func (s *bbState) combinedBound(active, avail []bool) float64 {
	mis := s.lowerBound(active, avail)
	da := s.dualAscentBound(active, avail)
	if num.Stronger(da, mis) {
		return da
	}
	return mis
}

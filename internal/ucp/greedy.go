package ucp

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/num"
)

// SolveGreedy returns a feasible (not necessarily optimal) cover using
// the classical weight-per-newly-covered-row heuristic. It serves as a
// baseline for the exact solver and as its initial incumbent.
func (m *Matrix) SolveGreedy() (Solution, error) {
	return m.SolveGreedyContext(context.Background())
}

// SolveGreedyContext is SolveGreedy under cooperative cancellation: the
// context is polled once per chosen column (the greedy outer loop), and
// a cancellation mid-run returns the context's error wrapped — unlike
// the exact solver there is no feasible partial cover to hand back.
//
// Tie-breaks are epsilon-tolerant: two columns whose cost-per-new-row
// ratios differ only by float noise (num.Eq) are a tie, resolved toward
// the column covering more rows and then toward the lower index, so the
// chosen cover cannot depend on the order rounding errors accumulate.
func (m *Matrix) SolveGreedyContext(ctx context.Context) (Solution, error) {
	if !m.Feasible() {
		return Solution{}, ErrInfeasible
	}
	done := ctx.Done()
	covered := make([]bool, m.numRows)
	remaining := m.numRows
	var chosen []int
	var cost float64
	for remaining > 0 {
		if done != nil {
			select {
			case <-done:
				return Solution{}, fmt.Errorf("ucp: greedy interrupted: %w", ctx.Err())
			default:
			}
		}
		bestJ := -1
		bestRatio := math.Inf(1)
		bestNew := 0
		for j, c := range m.cols {
			newRows := 0
			for _, r := range c.Rows {
				if !covered[r] {
					newRows++
				}
			}
			if newRows == 0 {
				continue
			}
			ratio := c.Weight / float64(newRows)
			switch {
			case bestJ < 0:
				bestJ, bestRatio, bestNew = j, ratio, newRows
			case num.Eq(ratio, bestRatio):
				if newRows > bestNew {
					bestJ, bestRatio, bestNew = j, ratio, newRows
				}
			case num.Less(ratio, bestRatio):
				bestJ, bestRatio, bestNew = j, ratio, newRows
			}
		}
		if bestJ < 0 {
			return Solution{}, fmt.Errorf("ucp: greedy stalled with %d rows uncovered", remaining)
		}
		chosen = append(chosen, bestJ)
		cost += m.cols[bestJ].Weight
		for _, r := range m.cols[bestJ].Rows {
			if !covered[r] {
				covered[r] = true
				remaining--
			}
		}
	}
	sort.Ints(chosen)
	return Solution{Columns: chosen, Cost: cost, Optimal: false}, nil
}

// SolveExhaustive enumerates all 2^n column subsets and returns the true
// optimum. It exists to cross-check the branch-and-bound solver in tests
// and refuses instances with more than 24 columns.
func (m *Matrix) SolveExhaustive() (Solution, error) {
	return m.SolveExhaustiveContext(context.Background())
}

// SolveExhaustiveContext is SolveExhaustive under cooperative
// cancellation, polling the context every cancelCheckInterval subset
// masks; a 24-column instance walks 16M subsets, long enough to need a
// way out. A cancellation mid-run returns the context's error wrapped.
func (m *Matrix) SolveExhaustiveContext(ctx context.Context) (Solution, error) {
	n := len(m.cols)
	if n > 24 {
		return Solution{}, fmt.Errorf("ucp: exhaustive solver limited to 24 columns, got %d", n)
	}
	if !m.Feasible() {
		return Solution{}, ErrInfeasible
	}
	done := ctx.Done()
	bestCost := math.Inf(1)
	var best []int
	for mask := 0; mask < 1<<n; mask++ {
		if done != nil && mask&(cancelCheckInterval-1) == 0 {
			select {
			case <-done:
				return Solution{}, fmt.Errorf("ucp: exhaustive interrupted: %w", ctx.Err())
			default:
			}
		}
		var cost float64
		covered := make([]bool, m.numRows)
		count := 0
		for j := 0; j < n; j++ {
			if mask&(1<<j) == 0 {
				continue
			}
			cost += m.cols[j].Weight
			for _, r := range m.cols[j].Rows {
				if !covered[r] {
					covered[r] = true
					count++
				}
			}
		}
		if count != m.numRows || num.NoBetter(cost, bestCost) {
			continue
		}
		bestCost = cost
		best = best[:0]
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				best = append(best, j)
			}
		}
	}
	return Solution{Columns: append([]int(nil), best...), Cost: bestCost, Optimal: true, LowerBound: bestCost}, nil
}

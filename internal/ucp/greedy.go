package ucp

import (
	"fmt"
	"math"
	"sort"
)

// SolveGreedy returns a feasible (not necessarily optimal) cover using
// the classical weight-per-newly-covered-row heuristic. It serves as a
// baseline for the exact solver and as its initial incumbent.
func (m *Matrix) SolveGreedy() (Solution, error) {
	if !m.Feasible() {
		return Solution{}, ErrInfeasible
	}
	covered := make([]bool, m.numRows)
	remaining := m.numRows
	var chosen []int
	var cost float64
	for remaining > 0 {
		bestJ := -1
		bestRatio := math.Inf(1)
		bestNew := 0
		for j, c := range m.cols {
			newRows := 0
			for _, r := range c.Rows {
				if !covered[r] {
					newRows++
				}
			}
			if newRows == 0 {
				continue
			}
			ratio := c.Weight / float64(newRows)
			if ratio < bestRatio || (ratio == bestRatio && newRows > bestNew) {
				bestJ, bestRatio, bestNew = j, ratio, newRows
			}
		}
		if bestJ < 0 {
			return Solution{}, fmt.Errorf("ucp: greedy stalled with %d rows uncovered", remaining)
		}
		chosen = append(chosen, bestJ)
		cost += m.cols[bestJ].Weight
		for _, r := range m.cols[bestJ].Rows {
			if !covered[r] {
				covered[r] = true
				remaining--
			}
		}
	}
	sort.Ints(chosen)
	return Solution{Columns: chosen, Cost: cost, Optimal: false}, nil
}

// SolveExhaustive enumerates all 2^n column subsets and returns the true
// optimum. It exists to cross-check the branch-and-bound solver in tests
// and refuses instances with more than 24 columns.
func (m *Matrix) SolveExhaustive() (Solution, error) {
	n := len(m.cols)
	if n > 24 {
		return Solution{}, fmt.Errorf("ucp: exhaustive solver limited to 24 columns, got %d", n)
	}
	if !m.Feasible() {
		return Solution{}, ErrInfeasible
	}
	bestCost := math.Inf(1)
	var best []int
	for mask := 0; mask < 1<<n; mask++ {
		var cost float64
		covered := make([]bool, m.numRows)
		count := 0
		for j := 0; j < n; j++ {
			if mask&(1<<j) == 0 {
				continue
			}
			cost += m.cols[j].Weight
			for _, r := range m.cols[j].Rows {
				if !covered[r] {
					covered[r] = true
					count++
				}
			}
		}
		if count != m.numRows || cost >= bestCost {
			continue
		}
		bestCost = cost
		best = best[:0]
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				best = append(best, j)
			}
		}
	}
	return Solution{Columns: append([]int(nil), best...), Cost: bestCost, Optimal: true, LowerBound: bestCost}, nil
}

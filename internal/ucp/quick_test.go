package ucp

import (
	"math"
	"testing"
	"testing/quick"
)

// Quick-generated covering instances: the recipe bytes drive matrix
// shape, covers and weights, so testing/quick explores the structure
// space while the checks compare solvers.

func matrixFromRecipe(recipe []byte) *Matrix {
	if len(recipe) < 4 {
		return nil
	}
	rows := int(recipe[0]%5) + 1
	cols := int(recipe[1]%8) + 1
	m := NewMatrix(rows)
	idx := 2
	next := func() byte {
		if idx >= len(recipe) {
			idx = 2
		}
		b := recipe[idx]
		idx++
		return b
	}
	for j := 0; j < cols; j++ {
		var cover []int
		mask := next()
		for r := 0; r < rows; r++ {
			if mask&(1<<uint(r)) != 0 {
				cover = append(cover, r)
			}
		}
		if len(cover) == 0 {
			cover = []int{int(next()) % rows}
		}
		weight := 0.25 + float64(next()%40)/4
		m.MustAddColumn(Column{Rows: cover, Weight: weight})
	}
	return m
}

// Property: the exact solver matches the exhaustive optimum and always
// returns a valid cover, for quick-generated instances.
func TestQuickSolveMatchesExhaustive(t *testing.T) {
	f := func(recipe []byte) bool {
		m := matrixFromRecipe(recipe)
		if m == nil || !m.Feasible() {
			return true
		}
		want, err := m.SolveExhaustive()
		if err != nil {
			return false
		}
		got, err := m.Solve()
		if err != nil {
			return false
		}
		if math.Abs(got.Cost-want.Cost) > 1e-9 {
			return false
		}
		return m.Covers(got.Columns) && math.Abs(m.CostOf(got.Columns)-got.Cost) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: decomposed solving agrees with direct solving.
func TestQuickDecomposedAgrees(t *testing.T) {
	f := func(recipe []byte) bool {
		m := matrixFromRecipe(recipe)
		if m == nil || !m.Feasible() {
			return true
		}
		direct, err := m.Solve()
		if err != nil {
			return false
		}
		dec, err := m.SolveDecomposed()
		if err != nil {
			return false
		}
		return math.Abs(direct.Cost-dec.Cost) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: greedy is feasible and never below the optimum.
func TestQuickGreedyAdmissible(t *testing.T) {
	f := func(recipe []byte) bool {
		m := matrixFromRecipe(recipe)
		if m == nil || !m.Feasible() {
			return true
		}
		opt, err := m.Solve()
		if err != nil {
			return false
		}
		g, err := m.SolveGreedy()
		if err != nil {
			return false
		}
		return m.Covers(g.Columns) && g.Cost >= opt.Cost-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

package ucp

import (
	"math/rand"
	"testing"
)

func fullState(m *Matrix) (*bbState, []bool, []bool) {
	s := &bbState{m: m}
	active := make([]bool, m.numRows)
	for i := range active {
		active[i] = true
	}
	avail := make([]bool, len(m.cols))
	for i := range avail {
		avail[i] = true
	}
	return s, active, avail
}

func TestDualAscentBoundSimple(t *testing.T) {
	// Two disjoint rows, singleton columns: bound = sum of cheapest.
	m := NewMatrix(2)
	m.MustAddColumn(Column{Rows: []int{0}, Weight: 3})
	m.MustAddColumn(Column{Rows: []int{0}, Weight: 5})
	m.MustAddColumn(Column{Rows: []int{1}, Weight: 2})
	s, active, avail := fullState(m)
	if got := s.dualAscentBound(active, avail); got != 5 {
		t.Errorf("dual ascent = %v, want 5", got)
	}
}

func TestDualAscentTighterThanMISOnOverlap(t *testing.T) {
	// Three rows covered pairwise by shared columns: the MIS can pick
	// only one row (every pair shares a column), while dual ascent keeps
	// raising the second row's dual until tightness.
	m := NewMatrix(3)
	m.MustAddColumn(Column{Rows: []int{0, 1}, Weight: 4})
	m.MustAddColumn(Column{Rows: []int{1, 2}, Weight: 4})
	m.MustAddColumn(Column{Rows: []int{0, 2}, Weight: 4})
	s, active, avail := fullState(m)
	mis := s.lowerBound(active, avail)
	da := s.dualAscentBound(active, avail)
	if da < mis {
		t.Errorf("expected dual ascent (%v) ≥ MIS (%v) here", da, mis)
	}
	// Optimum is 8 (two columns); both bounds must stay below.
	opt, err := m.SolveExhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if da > opt.Cost+1e-9 || mis > opt.Cost+1e-9 {
		t.Errorf("bound exceeded optimum %v: mis=%v da=%v", opt.Cost, mis, da)
	}
}

// Property: both bounds are admissible (never exceed the exhaustive
// optimum) on random instances, and the combined bound is their max.
func TestBoundsAdmissibleProperty(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	for trial := 0; trial < 150; trial++ {
		rows := 1 + r.Intn(6)
		cols := 1 + r.Intn(10)
		m := NewMatrix(rows)
		for j := 0; j < cols; j++ {
			var cover []int
			for rr := 0; rr < rows; rr++ {
				if r.Float64() < 0.5 {
					cover = append(cover, rr)
				}
			}
			if len(cover) == 0 {
				cover = []int{r.Intn(rows)}
			}
			m.MustAddColumn(Column{Rows: cover, Weight: 0.25 + r.Float64()*8})
		}
		if !m.Feasible() {
			continue
		}
		opt, err := m.SolveExhaustive()
		if err != nil {
			t.Fatal(err)
		}
		s, active, avail := fullState(m)
		mis := s.lowerBound(active, avail)
		da := s.dualAscentBound(active, avail)
		comb := s.combinedBound(active, avail)
		if mis > opt.Cost+1e-9 {
			t.Fatalf("trial %d: MIS bound %v > optimum %v", trial, mis, opt.Cost)
		}
		if da > opt.Cost+1e-9 {
			t.Fatalf("trial %d: dual-ascent bound %v > optimum %v", trial, da, opt.Cost)
		}
		if comb < mis-1e-12 || comb < da-1e-12 {
			t.Fatalf("trial %d: combined bound %v below components (%v, %v)", trial, comb, mis, da)
		}
	}
}

// Property: row dominance never changes the optimum (solver with the
// full reduction stack still matches exhaustive). Heavier-overlap
// instances exercise the row-dominance path specifically.
func TestRowDominancePreservesOptimumProperty(t *testing.T) {
	r := rand.New(rand.NewSource(405))
	for trial := 0; trial < 80; trial++ {
		rows := 2 + r.Intn(5)
		m := NewMatrix(rows)
		// Nested covers: columns covering prefixes force row dominance.
		for j := 0; j < 8; j++ {
			k := 1 + r.Intn(rows)
			cover := make([]int, k)
			for i := range cover {
				cover[i] = i
			}
			m.MustAddColumn(Column{Rows: cover, Weight: 0.5 + r.Float64()*5})
		}
		if !m.Feasible() {
			continue
		}
		want, err := m.SolveExhaustive()
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if diff := got.Cost - want.Cost; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: solve %v ≠ exhaustive %v", trial, got.Cost, want.Cost)
		}
	}
}

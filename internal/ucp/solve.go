package ucp

import (
	"context"
	"math"
	"math/bits"
	"sort"

	"repro/internal/num"
	"repro/internal/obs"
)

// cancelCheckInterval is how many branch-and-bound nodes are explored
// between cooperative context checks. Checking the context involves a
// select on its Done channel; doing so once per node would dominate the
// cost of small subproblems, so the check is amortized over a power-of-
// two node interval (masked, not divided, in the hot loop).
const cancelCheckInterval = 256

// Solve finds a provably minimum-weight cover by branch-and-bound with
// classical reductions. It returns ErrInfeasible when the instance is
// infeasible (some row has no covering column).
func (m *Matrix) Solve() (Solution, error) {
	return m.SolveContext(context.Background())
}

// SolveContext is Solve under cooperative cancellation: when ctx is
// canceled or its deadline passes mid-search, the solver stops at the
// next node-count checkpoint and returns its best incumbent — seeded
// from the greedy cover, so once the instance is feasible a valid cover
// always exists — with Optimal=false and Interrupted=true instead of an
// error. Solution.LowerBound then bounds how far the incumbent can be
// from the true optimum.
func (m *Matrix) SolveContext(ctx context.Context) (Solution, error) {
	if !m.Feasible() {
		return Solution{}, ErrInfeasible
	}
	ctx, endSpan := obs.Trace(ctx, "ucp/solve",
		obs.Int("rows", m.numRows), obs.Int("cols", len(m.cols)))
	s := &bbState{
		m:        m,
		bestCost: math.Inf(1),
		done:     ctx.Done(),
		events:   obs.EventsFromContext(ctx),
		actMask:  make([]uint64, m.rowWords),
		avMask:   make([]uint64, m.colWords),
	}
	// Seed the incumbent with the greedy solution so pruning bites early
	// and an interrupted solve always has a feasible answer.
	if greedy, err := m.SolveGreedy(); err == nil {
		s.bestCost = greedy.Cost
		s.bestCols = append([]int(nil), greedy.Columns...)
	}
	active := make([]bool, m.numRows)
	for r := range active {
		active[r] = true
	}
	avail := make([]bool, len(m.cols))
	for j := range avail {
		avail[j] = true
	}
	// The root lower bound is computed before branching: it stays valid
	// for the whole instance no matter where the search is interrupted.
	rootBound := s.combinedBound(active, avail)
	s.rootBound = rootBound
	// The greedy seed is the search's first incumbent, so the stream
	// reports it like any later improvement (with Nodes=0). It is not
	// counted in Stats.Incumbents, which tallies improvements found by
	// branching — the deterministic counter the benchmark gate pins.
	if s.events != nil && s.bestCols != nil {
		gap := s.bestCost - rootBound
		if gap < 0 {
			gap = 0
		}
		s.events.Publish(obs.Event{
			Type:       obs.EventIncumbent,
			Cost:       s.bestCost,
			LowerBound: rootBound,
			Gap:        gap,
		})
	}
	// An unconditional root check makes an already-dead context
	// deterministic for any instance size (the in-search checks are
	// amortized and may never trigger on small trees).
	select {
	case <-s.done:
		s.interrupted = true
	default:
		s.branch(active, avail, nil, 0)
	}
	sort.Ints(s.bestCols)
	sol := Solution{
		Columns:     s.bestCols,
		Cost:        s.bestCost,
		Optimal:     !s.interrupted,
		Interrupted: s.interrupted,
		Stats:       s.stats,
	}
	if sol.Optimal {
		sol.LowerBound = sol.Cost
	} else {
		sol.LowerBound = math.Min(rootBound, sol.Cost)
	}
	publishSolve(ctx, sol.Stats)
	endSpan(
		obs.Int("nodes", sol.Stats.Nodes),
		obs.Int("prunes", sol.Stats.Prunes),
		obs.Int("reductions", sol.Stats.Reductions),
		obs.Int("incumbents", sol.Stats.Incumbents),
		obs.Bool("interrupted", sol.Interrupted),
	)
	return sol, nil
}

// publishSolve adds one solve's counters to the registry carried by
// ctx (no-op without one). The branch-and-bound accumulates its Stats
// in plain struct fields — the search loop never touches an
// instrument — and the totals are published here in one batch.
func publishSolve(ctx context.Context, st Stats) {
	m := obs.FromContext(ctx).Metrics()
	if m == nil {
		return
	}
	m.Counter("ucp/solves").Add(1)
	m.Counter("ucp/nodes").Add(int64(st.Nodes))
	m.Counter("ucp/prunes").Add(int64(st.Prunes))
	m.Counter("ucp/reductions").Add(int64(st.Reductions))
	m.Counter("ucp/infeasible_subproblems").Add(int64(st.Infeasible))
	m.Counter("ucp/incumbents").Add(int64(st.Incumbents))
}

type bbState struct {
	m        *Matrix
	bestCost float64
	bestCols []int
	stats    Stats
	// done is the context's cancellation channel (nil for a background
	// context, in which case no checks are performed at all).
	done <-chan struct{}
	// interrupted latches once cancellation is observed; every frame on
	// the recursion stack unwinds immediately after.
	interrupted bool
	// events receives an EventIncumbent on every incumbent improvement
	// (nil — a no-op publisher — without a stream on the context). The
	// publish sits inside the improvement branch, never on the per-node
	// path, so a disabled stream costs one nil comparison per
	// improvement.
	events *obs.Events
	// rootBound is the instance's root relaxation, giving each
	// incumbent event an optimality-gap bound.
	rootBound float64
	// actMask/avMask are scratch words for the reduction scans: the
	// active-row and available-column sets rendered as bitmasks so
	// essential extraction and both dominance passes run on word AND /
	// popcount operations against the matrix's coverage masks. The
	// search is single-threaded and each reduce call finishes with the
	// scratch before recursing, so one buffer per dimension suffices
	// for the whole solve.
	actMask []uint64
	avMask  []uint64
}

// maskFromBools renders a bool set as a bitmask into dst (zeroed first).
func maskFromBools(dst []uint64, set []bool) []uint64 {
	for i := range dst {
		dst[i] = 0
	}
	for i, ok := range set {
		if ok {
			dst[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	return dst
}

// popcountAnd returns |a ∩ b| for equal-length masks.
func popcountAnd(a, b []uint64) int {
	n := 0
	for i, w := range a {
		n += bits.OnesCount64(w & b[i])
	}
	return n
}

// maskSubsetUnder reports whether a∩ctx ⊆ b (ctx restricts both sides:
// x∩ctx ⊆ y∩ctx ⟺ x∩ctx ⊆ y).
func maskSubsetUnder(a, b, ctx []uint64) bool {
	for i, w := range a {
		if w&ctx[i]&^b[i] != 0 {
			return false
		}
	}
	return true
}

// checkCancel polls the context every cancelCheckInterval nodes.
func (s *bbState) checkCancel() bool {
	if s.interrupted {
		return true
	}
	if s.done != nil && s.stats.Nodes&(cancelCheckInterval-1) == 0 {
		select {
		case <-s.done:
			s.interrupted = true
		default:
		}
	}
	return s.interrupted
}

// branch explores the subproblem where `active` rows remain uncovered
// and `avail` columns may still be chosen; `chosen` columns cost `cost`.
func (s *bbState) branch(active, avail []bool, chosen []int, cost float64) {
	s.stats.Nodes++
	if s.checkCancel() {
		return
	}

	// Apply reductions until a fixed point. Reductions mutate copies.
	active = append([]bool(nil), active...)
	avail = append([]bool(nil), avail...)
	chosen = append([]int(nil), chosen...)

	for {
		changed, feasible, extraCost, extraCols := s.reduce(active, avail)
		if !feasible {
			s.stats.Infeasible++
			return
		}
		cost += extraCost
		chosen = append(chosen, extraCols...)
		if num.NoBetter(cost, s.bestCost) {
			s.stats.Prunes++
			return
		}
		if !changed {
			break
		}
	}

	// All rows covered?
	remaining := 0
	for _, on := range active {
		if on {
			remaining++
		}
	}
	if remaining == 0 {
		if num.Improves(cost, s.bestCost) {
			s.bestCost = cost
			s.bestCols = append([]int(nil), chosen...)
			s.stats.Incumbents++
			if s.events != nil {
				gap := cost - s.rootBound
				if gap < 0 {
					gap = 0
				}
				s.events.Publish(obs.Event{
					Type:       obs.EventIncumbent,
					Cost:       cost,
					LowerBound: s.rootBound,
					Gap:        gap,
					Nodes:      s.stats.Nodes,
				})
			}
		}
		return
	}

	// Lower bound: the stronger of the independent-set and dual-ascent
	// bounds.
	if num.NoBetter(cost+s.combinedBound(active, avail), s.bestCost) {
		s.stats.Prunes++
		return
	}

	// Branch on the hardest row: fewest available covering columns.
	row := s.hardestRow(active, avail)
	if row < 0 {
		// Unreachable after a feasible reduction fixed point (every
		// active row has a cover), but counted rather than silently
		// dropped so a logic regression shows up in the stats.
		s.stats.Infeasible++
		return
	}
	var covering []int
	for j, ok := range avail {
		if !ok {
			continue
		}
		if s.m.covers(j, row) {
			covering = append(covering, j)
		}
	}
	// Try cheapest-first for better incumbents early.
	sort.Slice(covering, func(a, b int) bool {
		return num.Below(s.m.cols[covering[a]].Weight, s.m.cols[covering[b]].Weight)
	})
	for i, j := range covering {
		if s.interrupted {
			return
		}
		childActive := append([]bool(nil), active...)
		childAvail := append([]bool(nil), avail...)
		for _, r := range s.m.cols[j].Rows {
			childActive[r] = false
		}
		childAvail[j] = false
		// Columns earlier in the branching list are excluded in later
		// branches (they were already fully explored with this row).
		for _, prev := range covering[:i] {
			childAvail[prev] = false
		}
		s.branch(childActive, childAvail, append(chosen, j), cost+s.m.cols[j].Weight)
	}
}

// reduce applies one round of essential-column extraction and column
// dominance to the subproblem in place. It reports whether anything
// changed, whether the subproblem remains feasible, and any columns
// forced into the solution (with their total weight).
func (s *bbState) reduce(active, avail []bool) (changed, feasible bool, extraCost float64, extraCols []int) {
	m := s.m
	// Render the entry sets as bitmasks once. Neither set changes before
	// an early return, so the masks stay valid through essential
	// extraction and column dominance (which only reads active via
	// actMask and snapshots its covers up front, exactly like the
	// pre-flattening slice snapshots did).
	avMask := maskFromBools(s.avMask, avail)
	actMask := maskFromBools(s.actMask, active)

	// Count covering columns per active row; find essentials. The count
	// is a popcount of rowMask[r] ∩ avail; when it is exactly one, the
	// essential column is the lone surviving bit.
	for r := 0; r < m.numRows; r++ {
		if !active[r] {
			continue
		}
		count := popcountAnd(m.rowMask[r], avMask)
		if count == 0 {
			return false, false, 0, nil
		}
		if count == 1 {
			// Essential column: must be chosen.
			j := -1
			for wi, w := range m.rowMask[r] {
				if w &= avMask[wi]; w != 0 {
					j = wi<<6 + bits.TrailingZeros64(w)
					break
				}
			}
			s.stats.Reductions++
			extraCols = append(extraCols, j)
			extraCost += m.cols[j].Weight
			for _, rr := range m.cols[j].Rows {
				active[rr] = false
			}
			avail[j] = false
			return true, true, extraCost, extraCols
		}
	}

	// Column dominance: drop columns whose active cover is a subset of
	// another no-heavier column's. The active covers are never
	// materialized — colMask[j] ∩ actMask is compared word-wise — and
	// actMask stays a faithful snapshot throughout since this pass only
	// flips avail bits.
	type colInfo struct {
		j int
		w float64
	}
	var infos []colInfo
	for j, ok := range avail {
		if !ok {
			continue
		}
		if popcountAnd(m.colMask[j], actMask) == 0 {
			// Useless column in this subproblem.
			avail[j] = false
			s.stats.Reductions++
			changed = true
			continue
		}
		infos = append(infos, colInfo{j: j, w: m.cols[j].Weight})
	}
	for _, a := range infos {
		if !avail[a.j] {
			continue
		}
		for _, b := range infos {
			if a.j == b.j || !avail[b.j] || !avail[a.j] {
				continue
			}
			// a dominated by b: cover(a) ⊆ cover(b), weight(a) ≥ weight(b).
			// Weights that differ only by float noise are a tie, broken by
			// index so equal columns do not erase each other.
			if num.Greater(a.w, b.w) || (num.Eq(a.w, b.w) && a.j > b.j) {
				if maskSubsetUnder(m.colMask[a.j], m.colMask[b.j], actMask) {
					avail[a.j] = false
					s.stats.Reductions++
					changed = true
					break
				}
			}
		}
	}

	// Row dominance: if every available column covering row r2 also
	// covers row r1 (r1's covering set ⊇ r2's), any cover of r2 covers
	// r1 for free, so r1 can be deactivated. The cover sets are
	// rowMask[r] ∩ avail, snapshotted here (after the column-dominance
	// drops) by re-rendering avMask; like the pre-flattening version the
	// snapshot is deliberately not refreshed as rows deactivate.
	avMask = maskFromBools(s.avMask, avail)
	var activeRows []int
	coverCount := make([]int, m.numRows)
	for r := 0; r < m.numRows; r++ {
		if active[r] {
			activeRows = append(activeRows, r)
			coverCount[r] = popcountAnd(m.rowMask[r], avMask)
		}
	}
	for _, r1 := range activeRows {
		if !active[r1] {
			continue
		}
		for _, r2 := range activeRows {
			if r1 == r2 || !active[r1] || !active[r2] {
				continue
			}
			// Drop r1 when covers(r2) ⊆ covers(r1); tie-break by index
			// so mutually dominating rows do not erase each other.
			if coverCount[r2] < coverCount[r1] ||
				(coverCount[r2] == coverCount[r1] && r2 < r1) {
				if maskSubsetUnder(m.rowMask[r2], m.rowMask[r1], avMask) {
					active[r1] = false
					s.stats.Reductions++
					changed = true
					break
				}
			}
		}
	}
	return changed, true, extraCost, extraCols
}

// lowerBound computes an admissible bound for the remaining subproblem:
// greedily pick pairwise independent active rows (no available column
// covers two of them) and sum, for each, the cheapest covering column.
func (s *bbState) lowerBound(active, avail []bool) float64 {
	m := s.m
	blocked := make([]bool, m.numRows)
	var bound float64
	// Visit rows in order of increasing cheapest-cover weight descending
	// — picking expensive rows first strengthens the bound.
	type rowInfo struct {
		r    int
		minW float64
	}
	var rows []rowInfo
	for r := 0; r < m.numRows; r++ {
		if !active[r] {
			continue
		}
		minW := math.Inf(1)
		for j, ok := range avail {
			if !ok {
				continue
			}
			if m.covers(j, r) && num.Below(m.cols[j].Weight, minW) {
				minW = m.cols[j].Weight
			}
		}
		rows = append(rows, rowInfo{r: r, minW: minW})
	}
	sort.Slice(rows, func(a, b int) bool { return num.Stronger(rows[a].minW, rows[b].minW) })
	for _, ri := range rows {
		if blocked[ri.r] {
			continue
		}
		bound += ri.minW
		// Block every row sharing a column with ri.r.
		for j, ok := range avail {
			if !ok {
				continue
			}
			if !m.covers(j, ri.r) {
				continue
			}
			for _, rr := range m.cols[j].Rows {
				if active[rr] {
					blocked[rr] = true
				}
			}
		}
	}
	return bound
}

// hardestRow returns the active row with the fewest available covering
// columns, or -1 if no active row exists.
func (s *bbState) hardestRow(active, avail []bool) int {
	best := -1
	bestCount := math.MaxInt32
	for r := 0; r < s.m.numRows; r++ {
		if !active[r] {
			continue
		}
		count := 0
		for j, ok := range avail {
			if ok && s.m.covers(j, r) {
				count++
			}
		}
		if count > 0 && count < bestCount {
			best, bestCount = r, count
		}
	}
	return best
}

package ucp

import "errors"

// ErrInfeasible is returned by every solver when some row has no
// covering column. Callers distinguish it with errors.Is; the cdcs
// facade re-exports it.
var ErrInfeasible = errors.New("ucp: infeasible: some row has no covering column")

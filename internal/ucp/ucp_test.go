package ucp

import (
	"math"
	"math/rand"
	"testing"
)

func TestAddColumnValidation(t *testing.T) {
	m := NewMatrix(3)
	if _, err := m.AddColumn(Column{Rows: nil, Weight: 1}); err == nil {
		t.Error("empty cover should be rejected")
	}
	if _, err := m.AddColumn(Column{Rows: []int{0}, Weight: -1}); err == nil {
		t.Error("negative weight should be rejected")
	}
	if _, err := m.AddColumn(Column{Rows: []int{0}, Weight: math.NaN()}); err == nil {
		t.Error("NaN weight should be rejected")
	}
	if _, err := m.AddColumn(Column{Rows: []int{5}, Weight: 1}); err == nil {
		t.Error("out-of-range row should be rejected")
	}
	j, err := m.AddColumn(Column{Rows: []int{2, 0, 2, 1}, Weight: 1})
	if err != nil {
		t.Fatalf("AddColumn: %v", err)
	}
	got := m.Column(j).Rows
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("rows not deduped/sorted: %v", got)
	}
}

func TestFeasibility(t *testing.T) {
	m := NewMatrix(2)
	m.MustAddColumn(Column{Rows: []int{0}, Weight: 1})
	if m.Feasible() {
		t.Error("row 1 uncovered; should be infeasible")
	}
	if _, err := m.Solve(); err == nil {
		t.Error("Solve should reject infeasible instance")
	}
	if _, err := m.SolveGreedy(); err == nil {
		t.Error("SolveGreedy should reject infeasible instance")
	}
	if _, err := m.SolveExhaustive(); err == nil {
		t.Error("SolveExhaustive should reject infeasible instance")
	}
}

func TestSolveTrivial(t *testing.T) {
	m := NewMatrix(2)
	m.MustAddColumn(Column{Rows: []int{0, 1}, Weight: 3, Label: "both"})
	m.MustAddColumn(Column{Rows: []int{0}, Weight: 1, Label: "r0"})
	m.MustAddColumn(Column{Rows: []int{1}, Weight: 1, Label: "r1"})
	sol, err := m.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Cost != 2 {
		t.Errorf("cost = %v, want 2 (two singletons beat the bundle)", sol.Cost)
	}
	if !sol.Optimal || !m.Covers(sol.Columns) {
		t.Errorf("solution invalid: %+v", sol)
	}
}

func TestSolvePrefersBundleWhenCheaper(t *testing.T) {
	m := NewMatrix(3)
	m.MustAddColumn(Column{Rows: []int{0, 1, 2}, Weight: 2.5})
	m.MustAddColumn(Column{Rows: []int{0}, Weight: 1})
	m.MustAddColumn(Column{Rows: []int{1}, Weight: 1})
	m.MustAddColumn(Column{Rows: []int{2}, Weight: 1})
	sol, err := m.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Cost != 2.5 || len(sol.Columns) != 1 || sol.Columns[0] != 0 {
		t.Errorf("solution = %+v, want the bundle", sol)
	}
}

func TestSolveEssentialColumn(t *testing.T) {
	m := NewMatrix(2)
	only := m.MustAddColumn(Column{Rows: []int{0}, Weight: 5}) // the only cover of row 0
	m.MustAddColumn(Column{Rows: []int{1}, Weight: 1})
	m.MustAddColumn(Column{Rows: []int{1}, Weight: 2})
	sol, err := m.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	found := false
	for _, j := range sol.Columns {
		if j == only {
			found = true
		}
	}
	if !found {
		t.Errorf("essential column missing from %v", sol.Columns)
	}
	if sol.Cost != 6 {
		t.Errorf("cost = %v, want 6", sol.Cost)
	}
}

func TestSolveEqualColumnsNotBothErased(t *testing.T) {
	// Two identical columns: dominance must not delete both.
	m := NewMatrix(1)
	m.MustAddColumn(Column{Rows: []int{0}, Weight: 2})
	m.MustAddColumn(Column{Rows: []int{0}, Weight: 2})
	sol, err := m.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Cost != 2 || len(sol.Columns) != 1 {
		t.Errorf("solution = %+v", sol)
	}
}

func TestGreedyFeasibleButMaybeSuboptimal(t *testing.T) {
	// Classic greedy trap: greedy picks the big cheap-ratio column then
	// needs two more; optimum is two columns.
	m := NewMatrix(4)
	m.MustAddColumn(Column{Rows: []int{0, 1, 2}, Weight: 3}) // ratio 1.0
	m.MustAddColumn(Column{Rows: []int{0, 1}, Weight: 2.2})  // ratio 1.1
	m.MustAddColumn(Column{Rows: []int{2, 3}, Weight: 2.2})  // ratio 1.1
	m.MustAddColumn(Column{Rows: []int{3}, Weight: 2})
	g, err := m.SolveGreedy()
	if err != nil {
		t.Fatalf("SolveGreedy: %v", err)
	}
	if !m.Covers(g.Columns) {
		t.Error("greedy solution does not cover")
	}
	e, err := m.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if e.Cost > g.Cost+1e-12 {
		t.Errorf("exact (%v) worse than greedy (%v)", e.Cost, g.Cost)
	}
	if e.Cost != 4.4 {
		t.Errorf("exact cost = %v, want 4.4", e.Cost)
	}
}

func TestExhaustiveLimit(t *testing.T) {
	m := NewMatrix(1)
	for i := 0; i < 25; i++ {
		m.MustAddColumn(Column{Rows: []int{0}, Weight: 1})
	}
	if _, err := m.SolveExhaustive(); err == nil {
		t.Error("exhaustive should refuse > 24 columns")
	}
}

func TestCostOfAndCovers(t *testing.T) {
	m := NewMatrix(2)
	a := m.MustAddColumn(Column{Rows: []int{0}, Weight: 1.5})
	b := m.MustAddColumn(Column{Rows: []int{1}, Weight: 2})
	if got := m.CostOf([]int{a, b}); got != 3.5 {
		t.Errorf("CostOf = %v", got)
	}
	if !m.Covers([]int{a, b}) || m.Covers([]int{a}) {
		t.Error("Covers wrong")
	}
}

// Property: branch-and-bound matches the exhaustive optimum on random
// instances, and greedy is never better than the optimum.
func TestSolveMatchesExhaustiveProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 120; trial++ {
		rows := 1 + r.Intn(7)
		cols := 1 + r.Intn(12)
		m := NewMatrix(rows)
		for j := 0; j < cols; j++ {
			var cover []int
			for rr := 0; rr < rows; rr++ {
				if r.Float64() < 0.45 {
					cover = append(cover, rr)
				}
			}
			if len(cover) == 0 {
				cover = []int{r.Intn(rows)}
			}
			m.MustAddColumn(Column{Rows: cover, Weight: 0.1 + r.Float64()*9.9})
		}
		if !m.Feasible() {
			continue
		}
		want, err := m.SolveExhaustive()
		if err != nil {
			t.Fatalf("trial %d exhaustive: %v", trial, err)
		}
		got, err := m.Solve()
		if err != nil {
			t.Fatalf("trial %d solve: %v", trial, err)
		}
		if math.Abs(got.Cost-want.Cost) > 1e-9 {
			t.Fatalf("trial %d: B&B cost %v ≠ exhaustive %v", trial, got.Cost, want.Cost)
		}
		if !m.Covers(got.Columns) {
			t.Fatalf("trial %d: B&B solution does not cover", trial)
		}
		greedy, err := m.SolveGreedy()
		if err != nil {
			t.Fatalf("trial %d greedy: %v", trial, err)
		}
		if greedy.Cost < want.Cost-1e-9 {
			t.Fatalf("trial %d: greedy %v beat optimum %v", trial, greedy.Cost, want.Cost)
		}
	}
}

// Property: zero-weight columns are handled (free candidates must not
// break the bound logic).
func TestSolveZeroWeightColumns(t *testing.T) {
	m := NewMatrix(2)
	m.MustAddColumn(Column{Rows: []int{0}, Weight: 0})
	m.MustAddColumn(Column{Rows: []int{1}, Weight: 4})
	m.MustAddColumn(Column{Rows: []int{0, 1}, Weight: 5})
	sol, err := m.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Cost != 4 {
		t.Errorf("cost = %v, want 4", sol.Cost)
	}
}

func BenchmarkSolveRandom20x40(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	m := NewMatrix(20)
	for j := 0; j < 40; j++ {
		var cover []int
		for rr := 0; rr < 20; rr++ {
			if r.Float64() < 0.25 {
				cover = append(cover, rr)
			}
		}
		if len(cover) == 0 {
			cover = []int{r.Intn(20)}
		}
		m.MustAddColumn(Column{Rows: cover, Weight: 0.1 + r.Float64()*9.9})
	}
	for _, rr := range []int{0, 5, 10, 15} {
		m.MustAddColumn(Column{Rows: []int{rr}, Weight: 10})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

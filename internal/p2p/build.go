package p2p

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/impl"
	"repro/internal/library"
)

// BuildChains materializes a plan between two existing vertices of an
// implementation graph: it creates the repeater vertices of each chain
// (evenly spaced between the endpoint positions), instantiates the link
// arcs, and returns one path per chain. It does not assign the paths to
// any channel — callers compose them (directly for point-to-point
// implementations, concatenated with trunk paths for mergings).
func BuildChains(ig *impl.Graph, from, to graph.VertexID, plan Plan, lib *library.Library, namePrefix string) ([]graph.Path, error) {
	if plan.Chains < 1 || plan.Segments < 1 {
		return nil, fmt.Errorf("p2p: malformed plan %+v", plan)
	}
	var rep library.Node
	if plan.Segments > 1 {
		var ok bool
		rep, ok = lib.CheapestNode(library.Repeater)
		if !ok {
			return nil, fmt.Errorf("p2p: plan needs repeaters but library has none")
		}
	}
	src := ig.Vertex(from).Position
	dst := ig.Vertex(to).Position

	paths := make([]graph.Path, 0, plan.Chains)
	for chain := 0; chain < plan.Chains; chain++ {
		verts := []graph.VertexID{from}
		for s := 1; s < plan.Segments; s++ {
			t := float64(s) / float64(plan.Segments)
			name := fmt.Sprintf("%s.rep%d.%d", namePrefix, chain, s)
			v, err := ig.AddCommVertex(rep, src.Lerp(dst, t), name)
			if err != nil {
				return nil, err
			}
			verts = append(verts, v)
		}
		verts = append(verts, to)
		arcs := make([]graph.ArcID, 0, plan.Segments)
		for i := 1; i < len(verts); i++ {
			a, err := ig.AddLink(verts[i-1], verts[i], plan.Link)
			if err != nil {
				return nil, fmt.Errorf("p2p: %s: %w", namePrefix, err)
			}
			arcs = append(arcs, a)
		}
		paths = append(paths, graph.Path{Vertices: verts, Arcs: arcs})
	}
	return paths, nil
}

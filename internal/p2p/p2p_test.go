package p2p

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/impl"
	"repro/internal/library"
	"repro/internal/model"
)

func wanLib() *library.Library {
	return &library.Library{
		Links: []library.Link{
			{Name: "radio", Bandwidth: 11, MaxSpan: math.Inf(1), CostPerLength: 2},
			{Name: "optical", Bandwidth: 1000, MaxSpan: math.Inf(1), CostPerLength: 4},
		},
	}
}

func socLib() *library.Library {
	return &library.Library{
		Links: []library.Link{
			{Name: "wire", Bandwidth: 100, MaxSpan: 0.6, CostFixed: 0.001, CostPerLength: 0},
		},
		Nodes: []library.Node{
			{Name: "inv", Kind: library.Repeater, Cost: 1},
			{Name: "mux", Kind: library.Mux, Cost: 1},
			{Name: "demux", Kind: library.Demux, Cost: 1},
		},
	}
}

func TestBestPlanMatching(t *testing.T) {
	p, err := BestPlan(10, 10, wanLib(), Options{})
	if err != nil {
		t.Fatalf("BestPlan: %v", err)
	}
	if p.Kind() != "matching" || p.Link.Name != "radio" {
		t.Errorf("plan = %v, want radio matching", p)
	}
	if p.Cost != 20 {
		t.Errorf("cost = %v, want 20", p.Cost)
	}
}

func TestBestPlanPicksCheaperLink(t *testing.T) {
	// At 30 Mbps the radio (11 Mbps) needs 3 chains at $2/m; optical
	// carries it on one link at $4/m. For d=10: radio 3×20=60, optical 40.
	p, err := BestPlan(10, 30, wanLib(), Options{})
	if err != nil {
		t.Fatalf("BestPlan: %v", err)
	}
	if p.Link.Name != "optical" || p.Cost != 40 {
		t.Errorf("plan = %v, want optical at 40", p)
	}
}

func TestBestPlanDuplication(t *testing.T) {
	// Bandwidth 2000 exceeds even optical: 2 parallel opticals.
	p, err := BestPlan(10, 2000, wanLib(), Options{})
	if err != nil {
		t.Fatalf("BestPlan: %v", err)
	}
	if p.Kind() != "duplication" || p.Chains != 2 || p.Link.Name != "optical" {
		t.Errorf("plan = %v, want 2-chain optical duplication", p)
	}
	if p.Cost != 80 {
		t.Errorf("cost = %v, want 80", p.Cost)
	}
}

func TestBestPlanSegmentation(t *testing.T) {
	// SoC wire spans 0.6; distance 2.0 → 4 segments, 3 repeaters.
	p, err := BestPlan(2.0, 50, socLib(), Options{})
	if err != nil {
		t.Fatalf("BestPlan: %v", err)
	}
	if p.Kind() != "segmentation" || p.Segments != 4 {
		t.Errorf("plan = %v, want 4-segment segmentation", p)
	}
	want := 4*0.001 + 3*1.0
	if math.Abs(p.Cost-want) > 1e-12 {
		t.Errorf("cost = %v, want %v", p.Cost, want)
	}
}

func TestBestPlanSegmentationExactMultiple(t *testing.T) {
	// Distance exactly 2 spans of 0.6 must give 2 segments, not 3.
	p, err := BestPlan(1.2, 50, socLib(), Options{})
	if err != nil {
		t.Fatalf("BestPlan: %v", err)
	}
	if p.Segments != 2 {
		t.Errorf("segments = %d, want 2", p.Segments)
	}
}

func TestBestPlanCombined(t *testing.T) {
	// Distance 1.0 (2 segments) and bandwidth 150 (2 chains).
	p, err := BestPlan(1.0, 150, socLib(), Options{})
	if err != nil {
		t.Fatalf("BestPlan: %v", err)
	}
	if p.Kind() != "segmentation+duplication" || p.Segments != 2 || p.Chains != 2 {
		t.Errorf("plan = %v, want 2×2", p)
	}
}

func TestBestPlanSwitchCharging(t *testing.T) {
	plain, err := BestPlan(1.0, 150, socLib(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	charged, err := BestPlan(1.0, 150, socLib(), Options{ChargeSwitchesOnDuplication: true})
	if err != nil {
		t.Fatal(err)
	}
	if charged.Cost != plain.Cost+2 { // demux $1 + mux $1
		t.Errorf("switch charging: %v vs %v, want +2", charged.Cost, plain.Cost)
	}
}

func TestBestPlanInfeasible(t *testing.T) {
	// No repeater in the library: segmentation impossible.
	lib := &library.Library{
		Links: []library.Link{{Name: "short", Bandwidth: 10, MaxSpan: 1, CostFixed: 1}},
	}
	if _, err := BestPlan(5, 5, lib, Options{}); err == nil {
		t.Error("segmentation without repeaters should be infeasible")
	}
	// Bounded MaxSegments makes a long channel infeasible.
	if _, err := BestPlan(100, 10, socLib(), Options{MaxSegments: 10}); err == nil {
		t.Error("MaxSegments bound should reject 167-segment plan")
	}
	if _, err := BestPlan(1, 1e9, socLib(), Options{MaxChains: 3}); err == nil {
		t.Error("MaxChains bound should reject huge duplication")
	}
}

func TestBestPlanInvalidArgs(t *testing.T) {
	if _, err := BestPlan(-1, 10, wanLib(), Options{}); err == nil {
		t.Error("negative distance should error")
	}
	if _, err := BestPlan(10, 0, wanLib(), Options{}); err == nil {
		t.Error("zero bandwidth should error")
	}
	if _, err := BestPlan(math.NaN(), 1, wanLib(), Options{}); err == nil {
		t.Error("NaN distance should error")
	}
}

func TestPlanKindStrings(t *testing.T) {
	cases := []struct {
		segs, chains int
		want         string
	}{
		{1, 1, "matching"},
		{3, 1, "segmentation"},
		{1, 2, "duplication"},
		{2, 2, "segmentation+duplication"},
	}
	for _, c := range cases {
		p := Plan{Segments: c.segs, Chains: c.chains}
		if got := p.Kind(); got != c.want {
			t.Errorf("Kind(%d, %d) = %q, want %q", c.segs, c.chains, got, c.want)
		}
	}
}

func TestSynthesizeWANVerifies(t *testing.T) {
	cg := model.NewConstraintGraph(geom.Euclidean)
	a := cg.MustAddPort(model.Port{Name: "A", Position: geom.Pt(0, 0)})
	b := cg.MustAddPort(model.Port{Name: "B", Position: geom.Pt(30, 40)})
	cg.MustAddChannel(model.Channel{Name: "ab", From: a, To: b, Bandwidth: 10})
	cg.MustAddChannel(model.Channel{Name: "ba", From: b, To: a, Bandwidth: 25})

	ig, plans, err := Synthesize(cg, wanLib(), Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if err := ig.Verify(impl.VerifyOptions{}); err != nil {
		t.Errorf("Verify: %v", err)
	}
	// Lemma 2.1: graph cost equals the sum of plan costs.
	if got, want := ig.Cost(), TotalCost(plans); math.Abs(got-want) > 1e-9 {
		t.Errorf("Lemma 2.1 violated: graph cost %v ≠ Σ plans %v", got, want)
	}
	// ab: radio at distance 50 → 100; ba: 25 Mbps needs optical (200) or
	// 3 radios (300): optical.
	if plans[0].Link.Name != "radio" || plans[1].Link.Name != "optical" {
		t.Errorf("plans = %v, %v", plans[0], plans[1])
	}
}

func TestSynthesizeSegmentedVerifies(t *testing.T) {
	cg := model.NewConstraintGraph(geom.Manhattan)
	a := cg.MustAddPort(model.Port{Name: "A", Position: geom.Pt(0, 0)})
	b := cg.MustAddPort(model.Port{Name: "B", Position: geom.Pt(1.0, 0.7)})
	cg.MustAddChannel(model.Channel{Name: "ab", From: a, To: b, Bandwidth: 50})

	ig, plans, err := Synthesize(cg, socLib(), Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if err := ig.Verify(impl.VerifyOptions{}); err != nil {
		t.Errorf("Verify: %v", err)
	}
	// Manhattan distance 1.7 → 3 segments of 0.5667 each (≤ 0.6).
	if plans[0].Segments != 3 {
		t.Errorf("segments = %d, want 3", plans[0].Segments)
	}
	if ig.NumCommVertices() != 2 {
		t.Errorf("repeaters = %d, want 2", ig.NumCommVertices())
	}
}

func TestSynthesizeRejectsInvalidInputs(t *testing.T) {
	cg := model.NewConstraintGraph(geom.Euclidean)
	if _, _, err := Synthesize(cg, wanLib(), Options{}); err == nil {
		t.Error("empty constraint graph should fail")
	}
	cg.MustAddPort(model.Port{Name: "A", Position: geom.Pt(0, 0)})
	if _, _, err := Synthesize(cg, &library.Library{}, Options{}); err == nil {
		t.Error("empty library should fail")
	}
}

// Property: on random instances, synthesized graphs always verify and
// Lemma 2.1 holds.
func TestSynthesizeRandomProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	libs := []*library.Library{wanLib(), socLib()}
	for trial := 0; trial < 40; trial++ {
		lib := libs[trial%2]
		cg := model.NewConstraintGraph(geom.Euclidean)
		n := 2 + r.Intn(6)
		scale := 10.0
		if lib == socLib() {
			scale = 2.0 // keep segment counts manageable
		}
		var ports []model.PortID
		for i := 0; i < n; i++ {
			ports = append(ports, cg.MustAddPort(model.Port{
				Name:     string(rune('A' + i)),
				Position: geom.Pt(r.Float64()*scale, r.Float64()*scale),
			}))
		}
		added := 0
		for tries := 0; added < n && tries < 50; tries++ {
			u := ports[r.Intn(n)]
			v := ports[r.Intn(n)]
			if u == v {
				continue
			}
			name := "ch" + string(rune('0'+added))
			if _, err := cg.AddChannel(model.Channel{
				Name: name, From: u, To: v, Bandwidth: 1 + r.Float64()*40,
			}); err == nil {
				added++
			}
		}
		if added == 0 {
			continue
		}
		ig, plans, err := Synthesize(cg, lib, Options{})
		if err != nil {
			t.Fatalf("trial %d: Synthesize: %v", trial, err)
		}
		if err := ig.Verify(impl.VerifyOptions{}); err != nil {
			t.Fatalf("trial %d: Verify: %v", trial, err)
		}
		if got, want := ig.Cost(), TotalCost(plans); math.Abs(got-want) > 1e-6*math.Max(1, want) {
			t.Fatalf("trial %d: Lemma 2.1: %v ≠ %v", trial, got, want)
		}
	}
}

// Property: BestPlan cost is monotone in distance and bandwidth for the
// standard libraries (the practical content of Assumption 2.1).
func TestBestPlanMonotoneProperty(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, lib := range []*library.Library{wanLib(), socLib()} {
		for trial := 0; trial < 200; trial++ {
			d1, b1 := r.Float64()*5, 1+r.Float64()*50
			d2, b2 := d1+r.Float64()*5, b1+r.Float64()*50
			p1, err1 := BestPlan(d1, b1, lib, Options{})
			p2, err2 := BestPlan(d2, b2, lib, Options{})
			if err1 != nil || err2 != nil {
				t.Fatalf("unexpected infeasibility: %v %v", err1, err2)
			}
			if p1.Cost > p2.Cost+1e-9 {
				t.Fatalf("monotonicity violated: (%g,%g)→%g > (%g,%g)→%g",
					d1, b1, p1.Cost, d2, b2, p2.Cost)
			}
		}
	}
}

func TestCheckAssumption(t *testing.T) {
	ds := []float64{0.1, 0.5, 1, 2, 5, 10, 50}
	bs := []float64{1, 5, 10, 11, 20, 100, 500}
	for _, lib := range []*library.Library{wanLib(), socLib()} {
		if err := CheckAssumption(lib, ds, bs, Options{}); err != nil {
			t.Errorf("CheckAssumption: %v", err)
		}
	}
}

func TestCheckAssumptionDetectsViolation(t *testing.T) {
	// Every per-link plan cost is nondecreasing in (d, b), so the
	// library-wide minimum is monotone by construction; the clause of
	// Assumption 2.1 that can actually fail is positivity. A free link
	// (rejected by Library.Validate, but CheckAssumption must stand on
	// its own) yields zero-cost implementations.
	lib := &library.Library{
		Links: []library.Link{
			{Name: "free", Bandwidth: 10, MaxSpan: 100},
		},
	}
	err := CheckAssumption(lib, []float64{1, 5}, []float64{5}, Options{})
	if err == nil {
		t.Error("expected positivity violation to be detected")
	}
}

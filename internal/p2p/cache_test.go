package p2p

import (
	"math"
	"sync"
	"testing"

	"repro/internal/library"
)

func cacheTestLib() *library.Library {
	return &library.Library{
		Links: []library.Link{
			{Name: "radio", Bandwidth: 11, MaxSpan: math.Inf(1), CostPerLength: 2},
			{Name: "optical", Bandwidth: 1000, MaxSpan: math.Inf(1), CostPerLength: 4},
			{Name: "short", Bandwidth: 50, MaxSpan: 10, CostFixed: 3},
		},
		Nodes: []library.Node{
			{Name: "rep", Kind: library.Repeater, Cost: 1},
			{Name: "mux", Kind: library.Mux},
			{Name: "demux", Kind: library.Demux},
		},
	}
}

// TestPlannerMatchesBestPlan: the memoized planner must be a pure
// lookup-table view of BestPlan — identical plans, identical errors,
// on first (miss) and second (hit) ask alike.
func TestPlannerMatchesBestPlan(t *testing.T) {
	lib := cacheTestLib()
	pl := NewPlanner(lib)
	cases := []struct {
		d, b float64
		opt  Options
	}{
		{5, 10, Options{}},
		{5, 10, Options{MaxChains: 1}},
		{100, 10, Options{}},
		{100, 25, Options{}},
		{3, 40, Options{}},
		{42, 2000, Options{MaxChains: 1}}, // infeasible single-chain
		{7, 10, Options{ChargeSwitchesOnDuplication: true}},
	}
	for round := 0; round < 2; round++ {
		for _, c := range cases {
			want, wantErr := BestPlan(c.d, c.b, lib, c.opt)
			got, gotErr := pl.BestPlan(c.d, c.b, c.opt)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("round %d (%g,%g,%+v): err %v vs %v", round, c.d, c.b, c.opt, gotErr, wantErr)
			}
			if wantErr == nil && got != want {
				t.Fatalf("round %d (%g,%g,%+v): plan %+v vs %+v", round, c.d, c.b, c.opt, got, want)
			}
		}
	}
	s := pl.Stats()
	if s.Misses != int64(len(cases)) || s.Hits != int64(len(cases)) {
		t.Errorf("stats = %+v, want %d misses and %d hits", s, len(cases), len(cases))
	}
}

// TestPlannerDistinguishesOptions: the same requirement under different
// Options must occupy distinct cache slots (a trunk forced to one chain
// must not be answered with a multi-chain plan cached for access legs).
func TestPlannerDistinguishesOptions(t *testing.T) {
	pl := NewPlanner(cacheTestLib())
	multi, err := pl.BestPlan(5, 60, Options{})
	if err != nil {
		t.Fatal(err)
	}
	single, err := pl.BestPlan(5, 60, Options{MaxChains: 1})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Chains <= 1 {
		t.Fatalf("expected duplication for bandwidth 60, got %+v", multi)
	}
	if single.Chains != 1 {
		t.Fatalf("MaxChains=1 plan has %d chains", single.Chains)
	}
}

// TestPlannerCachesErrors: an infeasible requirement is answered from
// cache on the second ask (one miss total).
func TestPlannerCachesErrors(t *testing.T) {
	pl := NewPlanner(cacheTestLib())
	for i := 0; i < 3; i++ {
		if _, err := pl.BestPlan(100, 5000, Options{MaxChains: 1}); err == nil {
			t.Fatal("expected infeasibility error")
		}
	}
	s := pl.Stats()
	if s.Misses != 1 || s.Hits != 2 {
		t.Errorf("stats = %+v, want 1 miss / 2 hits", s)
	}
}

// TestPlannerConcurrent hammers one planner from many goroutines over a
// shared key set; run under -race this proves the table is safe, and
// every answer must equal the serial BestPlan.
func TestPlannerConcurrent(t *testing.T) {
	lib := cacheTestLib()
	pl := NewPlanner(lib)
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d := float64(1 + (i+w)%17)
				b := float64(5 + (i*w)%40)
				opt := Options{}
				if i%3 == 0 {
					opt.MaxChains = 1
				}
				got, gotErr := pl.BestPlan(d, b, opt)
				want, wantErr := BestPlan(d, b, lib, opt)
				if (gotErr == nil) != (wantErr == nil) || (gotErr == nil && got != want) {
					errs <- &mismatchError{d: d, b: b}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	s := pl.Stats()
	if s.Hits+s.Misses != workers*200 {
		t.Errorf("counter total %d, want %d", s.Hits+s.Misses, workers*200)
	}
	if s.Hits == 0 {
		t.Error("no cache hits across overlapping workers")
	}
}

type mismatchError struct{ d, b float64 }

func (e *mismatchError) Error() string { return "cached plan diverged from BestPlan" }

// TestPlannerSingleFlight: 16 workers hammer the same small key set
// through a cold planner; the fill hook counts actual BestPlan solves.
// Single-flight means every unique key is solved exactly once no matter
// how many goroutines raced past the lookup, and Stats().Misses counts
// exactly those solves (the pre-sharding sync.Map implementation let
// every racing miss solve and Store, so Misses overcounted unique keys
// nondeterministically). Run under -race this also proves the
// fill/read handoff is properly synchronized.
func TestPlannerSingleFlight(t *testing.T) {
	lib := cacheTestLib()
	pl := NewPlanner(lib)

	var mu sync.Mutex
	solves := make(map[[2]float64]int)
	testFillHook = func(d, b float64) {
		mu.Lock()
		solves[[2]float64{d, b}]++
		mu.Unlock()
	}
	defer func() { testFillHook = nil }()

	const workers = 16
	const perWorker = 100
	const uniqueKeys = 10 // d in 1..10, b fixed
	var start, wg sync.WaitGroup
	start.Add(1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			start.Wait() // maximize racing misses on the cold table
			for i := 0; i < perWorker; i++ {
				d := float64(1 + (i+w)%uniqueKeys)
				if _, err := pl.BestPlan(d, 10, Options{}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	start.Done()
	wg.Wait()

	if len(solves) != uniqueKeys {
		t.Errorf("solved %d distinct keys, want %d", len(solves), uniqueKeys)
	}
	for k, n := range solves {
		if n != 1 {
			t.Errorf("key %v solved %d times, want exactly 1", k, n)
		}
	}
	s := pl.Stats()
	if s.Misses != uniqueKeys {
		t.Errorf("Misses = %d, want %d (one per unique key at any worker count)", s.Misses, uniqueKeys)
	}
	if s.Entries != uniqueKeys {
		t.Errorf("Entries = %d, want %d", s.Entries, uniqueKeys)
	}
	if s.Hits+s.Misses != workers*perWorker {
		t.Errorf("Hits+Misses = %d, want %d", s.Hits+s.Misses, workers*perWorker)
	}
	if s.Shards != numShards {
		t.Errorf("Shards = %d, want %d", s.Shards, numShards)
	}
}

// TestPlannerRejectsNonFinite: NaN/Inf requirements must error without
// touching the memo. A NaN key in particular would poison the table —
// NaN ≠ NaN, so every ask would miss and insert a fresh entry, growing
// the memo without bound.
func TestPlannerRejectsNonFinite(t *testing.T) {
	pl := NewPlanner(cacheTestLib())
	nan := math.NaN()
	inf := math.Inf(1)
	bad := [][2]float64{
		{nan, 10}, {5, nan}, {nan, nan},
		{inf, 10}, {math.Inf(-1), 10}, {5, inf}, {5, math.Inf(-1)},
	}
	for i := 0; i < 3; i++ { // repeated asks must not accumulate entries
		for _, c := range bad {
			if _, err := pl.BestPlan(c[0], c[1], Options{}); err == nil {
				t.Fatalf("BestPlan(%g, %g) succeeded, want error", c[0], c[1])
			}
		}
	}
	s := pl.Stats()
	if s.Entries != 0 {
		t.Errorf("non-finite keys grew the memo to %d entries, want 0", s.Entries)
	}
	if s.Hits != 0 || s.Misses != 0 {
		t.Errorf("non-finite rejections counted in stats: %+v", s)
	}
}

// TestPlannerEntriesMatchesMisses: after any quiesced workload the memo
// size equals the solve count — no duplicate entries across shards.
func TestPlannerEntriesMatchesMisses(t *testing.T) {
	pl := NewPlanner(cacheTestLib())
	for i := 0; i < 50; i++ {
		pl.BestPlan(float64(1+i%20), float64(5+i%7), Options{})
	}
	s := pl.Stats()
	if s.Entries != s.Misses {
		t.Errorf("Entries = %d, Misses = %d; want equal on a quiesced planner", s.Entries, s.Misses)
	}
}

// TestCacheStatsHitRate covers the derived ratio.
func TestCacheStatsHitRate(t *testing.T) {
	if r := (CacheStats{}).HitRate(); r != 0 {
		t.Errorf("empty hit rate = %v", r)
	}
	if r := (CacheStats{Hits: 3, Misses: 1}).HitRate(); r != 0.75 {
		t.Errorf("hit rate = %v, want 0.75", r)
	}
}

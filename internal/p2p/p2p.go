// Package p2p implements the optimum point-to-point synthesis of
// Definitions 2.6–2.7 and Lemma 2.1: each constraint arc is implemented
// in isolation by the cheapest combination of
//
//   - arc matching       — exactly one library link;
//   - K-way segmentation — K links in series, interleaved by K−1
//     repeaters, when no single link spans the distance;
//   - K-way duplication  — K links in parallel, when no single link
//     provides the bandwidth;
//   - both combined      — parallel chains of segmented links.
//
// Following Definition 2.7, a duplication is a set of parallel paths
// between the two computational vertices; mux/demux switch costs for
// duplication can optionally be charged via Options (the paper's
// introduction mentions the switch pair, its formal definition does not
// cost it).
//
// Segmentation places repeaters at even spacing along the straight
// segment between the endpoints. Under every built-in norm the straight
// segment realizes the endpoint distance exactly, so K even segments
// each measure d/K.
package p2p

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/impl"
	"repro/internal/library"
	"repro/internal/model"
	"repro/internal/num"
)

// Options tunes point-to-point synthesis.
type Options struct {
	// ChargeSwitchesOnDuplication adds one demux and one mux node cost
	// whenever a plan uses more than one parallel chain.
	ChargeSwitchesOnDuplication bool
	// MaxSegments bounds K for segmentation; zero means 1<<20. Plans
	// needing more segments are deemed infeasible.
	MaxSegments int
	// MaxChains bounds K for duplication; zero means 1<<20.
	MaxChains int
}

func (o Options) maxSegments() int {
	if o.MaxSegments <= 0 {
		return 1 << 20
	}
	return o.MaxSegments
}

func (o Options) maxChains() int {
	if o.MaxChains <= 0 {
		return 1 << 20
	}
	return o.MaxChains
}

// Plan is the cheapest stand-alone implementation found for one
// (distance, bandwidth) requirement: Chains parallel chains, each made
// of Segments equal-length instances of Link joined by repeaters.
type Plan struct {
	Link     library.Link
	Segments int // links per chain (1 = plain matching)
	Chains   int // parallel chains (1 = no duplication)
	Cost     float64
	// Distance and Bandwidth echo the requirement the plan satisfies.
	Distance, Bandwidth float64
}

// Kind names the Definition 2.7 structure the plan realizes.
func (p Plan) Kind() string {
	switch {
	case p.Segments == 1 && p.Chains == 1:
		return "matching"
	case p.Chains == 1:
		return "segmentation"
	case p.Segments == 1:
		return "duplication"
	default:
		return "segmentation+duplication"
	}
}

// String renders the plan compactly.
func (p Plan) String() string {
	return fmt.Sprintf("%s: %d×%d %s, cost %.3f", p.Kind(), p.Chains, p.Segments, p.Link.Name, p.Cost)
}

// planFor evaluates the cheapest plan using one specific link type, or
// ok=false when that type cannot satisfy the requirement.
func planFor(l library.Link, d, b float64, lib *library.Library, opt Options) (Plan, bool) {
	if l.Bandwidth <= 0 {
		return Plan{}, false
	}
	chains := 1
	if num.Below(l.Bandwidth, b) {
		chains = num.Ceil(b / l.Bandwidth)
		if chains > opt.maxChains() {
			return Plan{}, false
		}
	}
	segments := 1
	if !l.CanSpan(d) {
		if l.MaxSpan <= 0 {
			return Plan{}, false
		}
		segments = num.Ceil(d / l.MaxSpan)
		if segments < 1 {
			segments = 1
		}
		if segments > opt.maxSegments() {
			return Plan{}, false
		}
	}
	repCost := 0.0
	if segments > 1 {
		repCost = lib.NodeCost(library.Repeater)
		if math.IsInf(repCost, 1) {
			return Plan{}, false // segmentation impossible without repeaters
		}
	}
	chainCost := float64(segments)*l.CostFixed + l.CostPerLength*d + float64(segments-1)*repCost
	total := float64(chains) * chainCost
	if chains > 1 && opt.ChargeSwitchesOnDuplication {
		demux := lib.NodeCost(library.Demux)
		mux := lib.NodeCost(library.Mux)
		if math.IsInf(demux, 1) || math.IsInf(mux, 1) {
			return Plan{}, false
		}
		total += demux + mux
	}
	return Plan{
		Link:      l,
		Segments:  segments,
		Chains:    chains,
		Cost:      total,
		Distance:  d,
		Bandwidth: b,
	}, true
}

// BestPlan returns the minimum-cost stand-alone implementation of a
// requirement (distance d, bandwidth b) over all library link types, per
// the four-step recipe below Definition 2.7. It returns an error when no
// link type can satisfy the requirement within the option bounds.
func BestPlan(d, b float64, lib *library.Library, opt Options) (Plan, error) {
	if d < 0 || math.IsNaN(d) {
		return Plan{}, fmt.Errorf("p2p: invalid distance %g", d)
	}
	if b <= 0 || math.IsNaN(b) {
		return Plan{}, fmt.Errorf("p2p: invalid bandwidth %g", b)
	}
	var best Plan
	found := false
	for _, l := range lib.Links {
		p, ok := planFor(l, d, b, lib, opt)
		if !ok {
			continue
		}
		if !found || num.Improves(p.Cost, best.Cost) {
			best, found = p, true
		}
	}
	if !found {
		return Plan{}, fmt.Errorf("p2p: no library link satisfies d=%g b=%g", d, b)
	}
	return best, nil
}

// Instantiate materializes a plan for channel ch into the implementation
// graph: it creates the repeater vertices and link instances and records
// the resulting path set P(a).
func Instantiate(ig *impl.Graph, ch model.ChannelID, plan Plan, lib *library.Library) error {
	cg := ig.ConstraintGraph()
	c := cg.Channel(ch)
	paths, err := BuildChains(ig, graph.VertexID(c.From), graph.VertexID(c.To), plan, lib, c.Name)
	if err != nil {
		return fmt.Errorf("p2p: channel %q: %w", c.Name, err)
	}
	ig.AssignImplementation(ch, paths)
	return nil
}

// Synthesize builds the optimum point-to-point implementation graph of
// Definition 2.6: every constraint arc implemented independently at
// minimum cost, with pairwise-disjoint arc implementations. It returns
// the graph together with the per-channel plans; per Lemma 2.1 the graph
// cost equals the sum of the plan costs.
func Synthesize(cg *model.ConstraintGraph, lib *library.Library, opt Options) (*impl.Graph, []Plan, error) {
	if err := cg.Validate(); err != nil {
		return nil, nil, err
	}
	if err := lib.Validate(); err != nil {
		return nil, nil, err
	}
	ig := impl.New(cg)
	plans := make([]Plan, cg.NumChannels())
	for i := 0; i < cg.NumChannels(); i++ {
		ch := model.ChannelID(i)
		plan, err := BestPlan(cg.Distance(ch), cg.Bandwidth(ch), lib, opt)
		if err != nil {
			return nil, nil, fmt.Errorf("p2p: channel %q: %w", cg.Channel(ch).Name, err)
		}
		if err := Instantiate(ig, ch, plan, lib); err != nil {
			return nil, nil, err
		}
		plans[i] = plan
	}
	return ig, plans, nil
}

// TotalCost sums the plan costs, the right-hand side of Lemma 2.1.
func TotalCost(plans []Plan) float64 {
	var sum float64
	for _, p := range plans {
		sum += p.Cost
	}
	return sum
}

package p2p

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/library"
)

// Planner memoizes BestPlan over one fixed library. The synthesis flow
// re-solves identical point-to-point sub-problems constantly: every
// pattern-search probe in place.Optimize prices k access legs and a
// trunk, probes revisit positions across iterations, and candidates
// sharing channels share endpoint geometry. A Planner collapses those
// repeats into map lookups.
//
// The cache key is the full BestPlan input except the library —
// (distance, bandwidth, Options) — so one Planner must only ever be
// asked about the library it was built for. Both successful plans and
// infeasibility errors are cached: a requirement no link can satisfy is
// re-asked thousands of times by a pattern search walking an infeasible
// region, and the negative answer is as reusable as a plan.
//
// The memo table is striped into numShards typed maps, each guarded by
// its own mutex, so pricing workers hammering different sub-problems do
// not serialize on one lock. Within a shard the fill is single-flight:
// when several goroutines miss the same key concurrently, exactly one
// entry is created and exactly one BestPlan solve runs (guarded by the
// entry's sync.Once); the racing callers block on the Once and read the
// filled result. Stats().Misses therefore counts solves — equivalently,
// unique keys — not miss *attempts*, at every worker count.
//
// All methods are safe for concurrent use; BestPlan is deterministic,
// so cache hits can never change a result.
type Planner struct {
	lib    *library.Library
	shards [numShards]shard
	hits   atomic.Int64
	misses atomic.Int64
}

// numShards is the stripe count of the memo table: a power of two so
// shard selection masks the key hash instead of dividing. 32 keeps
// per-shard contention negligible at the worker counts the pricing pool
// reaches while costing only 32 small maps per run.
const numShards = 32

// Shard locks are leaves: no code path may hold one shard's lock
// while acquiring another (Stats walks shards strictly one at a
// time), or the first pair of goroutines to pick opposite orders
// deadlocks. cdcsvet checks the discipline:
//
//cdcsvet:lockorder shard.mu -> shard.mu
type shard struct {
	mu      sync.Mutex
	entries map[planKey]*planEntry
}

// planKey identifies one BestPlan sub-problem. Options is a small
// comparable struct, so the whole key is comparable.
type planKey struct {
	d, b float64
	opt  Options
}

// hash mixes the key into a shard index. The float bit patterns go
// through a 64-bit SplitMix64-style finalizer — distances produced by
// geometric probes share exponent bits, so the avalanche step is what
// spreads them across shards.
func (k planKey) hash() uint64 {
	h := math.Float64bits(k.d)
	h = mix64(h ^ math.Float64bits(k.b))
	h = mix64(h ^ uint64(k.opt.MaxSegments)<<1 ^ uint64(k.opt.MaxChains)<<21)
	if k.opt.ChargeSwitchesOnDuplication {
		h = mix64(h ^ 0x9e3779b97f4a7c15)
	}
	return h
}

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// planEntry is one memoized sub-problem. once guards the single fill;
// plan/err are written inside once.Do and only read after it returns,
// which is what makes the lock-free read on the hit path safe.
type planEntry struct {
	once sync.Once
	plan Plan
	err  error
}

// testFillHook, when non-nil, is invoked once per BestPlan solve the
// planner performs (inside the single-flight fill). Tests use it to
// prove racing misses solve exactly once; production code never sets
// it.
var testFillHook func(d, b float64)

// NewPlanner returns an empty memo table over lib.
func NewPlanner(lib *library.Library) *Planner {
	return &Planner{lib: lib}
}

// Library returns the library the planner memoizes over.
func (p *Planner) Library() *library.Library { return p.lib }

// BestPlan is a memoized BestPlan(d, b, p.Library(), opt).
//
// Non-finite inputs are rejected up front without touching the memo: a
// NaN key can never be looked up again (NaN ≠ NaN, so every ask would
// miss and Store a fresh entry — the table would grow without bound on
// poisoned inputs), and an infinite distance or bandwidth admits no
// finite-cost plan. The rejection is counted as neither hit nor miss.
func (p *Planner) BestPlan(d, b float64, opt Options) (Plan, error) {
	if math.IsNaN(d) || math.IsInf(d, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
		return Plan{}, fmt.Errorf("p2p: non-finite requirement d=%g b=%g", d, b)
	}
	key := planKey{d: d, b: b, opt: opt}
	sh := &p.shards[key.hash()&(numShards-1)]
	sh.mu.Lock()
	e, ok := sh.entries[key]
	if !ok {
		if sh.entries == nil {
			sh.entries = make(map[planKey]*planEntry)
		}
		e = &planEntry{}
		sh.entries[key] = e
	}
	sh.mu.Unlock()
	// Outside the shard lock: the fill runs one BestPlan solve per
	// entry no matter how many goroutines raced past the map lookup.
	// Whoever arrives first executes it; everyone else blocks on the
	// Once until the result is written. On the steady-state hit path
	// this is a single atomic load.
	e.once.Do(func() {
		if hook := testFillHook; hook != nil {
			hook(d, b)
		}
		e.plan, e.err = BestPlan(d, b, p.lib, opt)
	})
	if ok {
		p.hits.Add(1)
	} else {
		p.misses.Add(1)
	}
	return e.plan, e.err
}

// CacheStats are a Planner's lifetime counters.
type CacheStats struct {
	// Hits counts BestPlan calls answered from an entry some other call
	// created (including calls that waited on a racing fill).
	Hits int64
	// Misses counts calls that created a memo entry. Under single-fill
	// semantics this equals both the number of BestPlan solves and the
	// number of unique keys asked, at every worker count.
	Misses int64
	// Entries is the memo table's size: unique sub-problems cached
	// across all shards. Equal to Misses for a quiesced planner; sampled
	// live it can trail it by in-flight fills.
	Entries int64
	// Shards is the stripe count of the memo table.
	Shards int
}

// HitRate returns Hits/(Hits+Misses), or 0 for an unused planner.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the hit/miss counters and the table size.
func (p *Planner) Stats() CacheStats {
	s := CacheStats{Hits: p.hits.Load(), Misses: p.misses.Load(), Shards: numShards}
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		s.Entries += int64(len(sh.entries))
		sh.mu.Unlock()
	}
	return s
}

package p2p

import (
	"sync"
	"sync/atomic"

	"repro/internal/library"
)

// Planner memoizes BestPlan over one fixed library. The synthesis flow
// re-solves identical point-to-point sub-problems constantly: every
// pattern-search probe in place.Optimize prices k access legs and a
// trunk, probes revisit positions across iterations, and candidates
// sharing channels share endpoint geometry. A Planner collapses those
// repeats into map lookups.
//
// The cache key is the full BestPlan input except the library —
// (distance, bandwidth, Options) — so one Planner must only ever be
// asked about the library it was built for. Both successful plans and
// infeasibility errors are cached: a requirement no link can satisfy is
// re-asked thousands of times by a pattern search walking an infeasible
// region, and the negative answer is as reusable as a plan.
//
// All methods are safe for concurrent use; BestPlan is deterministic,
// so concurrent fills of the same key store identical values and cache
// hits can never change a result.
type Planner struct {
	lib    *library.Library
	memo   sync.Map // planKey -> planResult
	hits   atomic.Int64
	misses atomic.Int64
}

// planKey identifies one BestPlan sub-problem. Options is a small
// comparable struct, so the whole key is comparable.
type planKey struct {
	d, b float64
	opt  Options
}

type planResult struct {
	plan Plan
	err  error
}

// NewPlanner returns an empty memo table over lib.
func NewPlanner(lib *library.Library) *Planner {
	return &Planner{lib: lib}
}

// Library returns the library the planner memoizes over.
func (p *Planner) Library() *library.Library { return p.lib }

// BestPlan is a memoized BestPlan(d, b, p.Library(), opt).
func (p *Planner) BestPlan(d, b float64, opt Options) (Plan, error) {
	key := planKey{d: d, b: b, opt: opt}
	if v, ok := p.memo.Load(key); ok {
		p.hits.Add(1)
		r := v.(planResult)
		return r.plan, r.err
	}
	p.misses.Add(1)
	plan, err := BestPlan(d, b, p.lib, opt)
	p.memo.Store(key, planResult{plan: plan, err: err})
	return plan, err
}

// CacheStats are a Planner's lifetime counters.
type CacheStats struct {
	// Hits counts BestPlan calls answered from the memo table.
	Hits int64
	// Misses counts calls that had to solve the sub-problem.
	Misses int64
}

// HitRate returns Hits/(Hits+Misses), or 0 for an unused planner.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the hit/miss counters.
func (p *Planner) Stats() CacheStats {
	return CacheStats{Hits: p.hits.Load(), Misses: p.misses.Load()}
}

package p2p

import (
	"fmt"

	"repro/internal/library"
	"repro/internal/num"
)

// CheckAssumption samples the library's minimum-cost point-to-point
// implementation costs on a grid of (distance, bandwidth) requirements
// and verifies the monotonicity direction of Assumption 2.1: whenever
// d ≤ d' and b ≤ b', the minimum implementation costs satisfy
// C(P(a)) ≤ C(P(a')). (The assumption as stated is an equivalence; for
// scalar costs the reverse direction can only be checked meaningfully on
// comparable requirement pairs, which is exactly what the grid covers.)
//
// It also verifies that every sampled requirement has strictly positive
// cost, the assumption's other clause. distances and bandwidths give the
// sample axes; every pairwise combination is evaluated. Samples that no
// library element can implement are skipped (infeasibility is a library
// coverage question, not a monotonicity violation).
func CheckAssumption(lib *library.Library, distances, bandwidths []float64, opt Options) error {
	type sample struct {
		d, b, cost float64
		feasible   bool
	}
	var samples []sample
	for _, d := range distances {
		for _, b := range bandwidths {
			p, err := BestPlan(d, b, lib, opt)
			s := sample{d: d, b: b}
			if err == nil {
				s.cost = p.Cost
				s.feasible = true
				if p.Cost <= 0 && d > 0 {
					return fmt.Errorf("p2p: assumption 2.1 violated: zero cost at d=%g b=%g", d, b)
				}
			}
			samples = append(samples, s)
		}
	}
	for _, s1 := range samples {
		if !s1.feasible {
			continue
		}
		for _, s2 := range samples {
			if !s2.feasible {
				continue
			}
			if num.AtMost(s1.d, s2.d) && num.AtMost(s1.b, s2.b) && num.Greater(s1.cost, s2.cost) {
				return fmt.Errorf(
					"p2p: assumption 2.1 violated: (d=%g, b=%g) costs %.6g but dominated (d=%g, b=%g) costs %.6g",
					s1.d, s1.b, s1.cost, s2.d, s2.b, s2.cost)
			}
		}
	}
	return nil
}

package impl

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
)

func TestImplementationJSONExport(t *testing.T) {
	cg, u, v, ch := simpleCG(t)
	ig := New(cg)
	mid, _ := ig.AddCommVertex(repnode, geom.Pt(5, 0), "r0")
	a0, _ := ig.AddLink(graph.VertexID(u), mid, radio)
	a1, _ := ig.AddLink(mid, graph.VertexID(v), radio)
	ig.AssignImplementation(ch, []graph.Path{{
		Vertices: []graph.VertexID{graph.VertexID(u), mid, graph.VertexID(v)},
		Arcs:     []graph.ArcID{a0, a1},
	}})

	data, err := json.Marshal(ig)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded struct {
		Cost     float64 `json:"cost"`
		Vertices []struct {
			Kind string `json:"kind"`
			Node string `json:"node"`
		} `json:"vertices"`
		Links []struct {
			Link   string  `json:"link"`
			Length float64 `json:"length"`
			Cost   float64 `json:"cost"`
		} `json:"links"`
		Channels []struct {
			Channel string  `json:"channel"`
			Paths   [][]int `json:"paths"`
		} `json:"channels"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if math.Abs(decoded.Cost-ig.Cost()) > 1e-12 {
		t.Errorf("cost = %v, want %v", decoded.Cost, ig.Cost())
	}
	if len(decoded.Vertices) != 3 {
		t.Fatalf("vertices = %d, want 3", len(decoded.Vertices))
	}
	commCount := 0
	for _, vx := range decoded.Vertices {
		if vx.Kind == "communication" {
			commCount++
			if vx.Node == "" {
				t.Error("communication vertex missing node name")
			}
		}
	}
	if commCount != 1 {
		t.Errorf("communication vertices = %d, want 1", commCount)
	}
	if len(decoded.Links) != 2 {
		t.Fatalf("links = %d, want 2", len(decoded.Links))
	}
	var total float64
	for _, l := range decoded.Links {
		if l.Link != "radio" {
			t.Errorf("link type = %q", l.Link)
		}
		total += l.Length
	}
	if math.Abs(total-10) > 1e-12 {
		t.Errorf("total length = %v, want 10", total)
	}
	if len(decoded.Channels) != 1 || decoded.Channels[0].Channel != "a1" {
		t.Fatalf("channels = %+v", decoded.Channels)
	}
	if len(decoded.Channels[0].Paths) != 1 || len(decoded.Channels[0].Paths[0]) != 2 {
		t.Errorf("paths = %+v, want one 2-link path", decoded.Channels[0].Paths)
	}
}

func TestImplementationJSONExportEmptyChannelImpl(t *testing.T) {
	// Export works even on partially built graphs (no assigned paths).
	cg, u, v, _ := simpleCG(t)
	ig := New(cg)
	_, _ = ig.AddLink(graph.VertexID(u), graph.VertexID(v), radio)
	if _, err := json.Marshal(ig); err != nil {
		t.Fatalf("marshal of partial graph: %v", err)
	}
	_ = v
}

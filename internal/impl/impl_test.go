package impl

import (
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/library"
	"repro/internal/model"
)

var (
	radio   = library.Link{Name: "radio", Bandwidth: 11, MaxSpan: math.Inf(1), CostPerLength: 2}
	optical = library.Link{Name: "optical", Bandwidth: 1000, MaxSpan: math.Inf(1), CostPerLength: 4}
	segment = library.Link{Name: "segment", Bandwidth: 100, MaxSpan: 6, CostFixed: 1}
	repnode = library.Node{Name: "rep", Kind: library.Repeater, Cost: 1}
	muxnode = library.Node{Name: "mux", Kind: library.Mux, Cost: 2}
)

// simpleCG builds u --(10 Mbps)--> v at distance 10.
func simpleCG(t *testing.T) (*model.ConstraintGraph, model.PortID, model.PortID, model.ChannelID) {
	t.Helper()
	cg := model.NewConstraintGraph(geom.Euclidean)
	u := cg.MustAddPort(model.Port{Name: "u", Position: geom.Pt(0, 0)})
	v := cg.MustAddPort(model.Port{Name: "v", Position: geom.Pt(10, 0)})
	ch := cg.MustAddChannel(model.Channel{Name: "a1", From: u, To: v, Bandwidth: 10})
	return cg, u, v, ch
}

func TestNewMirrorsPorts(t *testing.T) {
	cg, u, v, _ := simpleCG(t)
	ig := New(cg)
	if ig.NumVertices() != 2 || ig.NumCommVertices() != 0 {
		t.Fatalf("vertex counts: total=%d comm=%d", ig.NumVertices(), ig.NumCommVertices())
	}
	for _, id := range []model.PortID{u, v} {
		vx := ig.Vertex(graph.VertexID(id))
		if vx.Kind != Computational || !vx.Position.Eq(cg.Port(id).Position) {
			t.Errorf("vertex %d does not mirror port: %+v", id, vx)
		}
		if !ig.Computational(graph.VertexID(id)) {
			t.Errorf("vertex %d should be computational", id)
		}
	}
}

func TestArcMatchingVerifies(t *testing.T) {
	cg, u, v, ch := simpleCG(t)
	ig := New(cg)
	a, err := ig.AddLink(graph.VertexID(u), graph.VertexID(v), radio)
	if err != nil {
		t.Fatalf("AddLink: %v", err)
	}
	ig.AssignImplementation(ch, []graph.Path{{
		Vertices: []graph.VertexID{graph.VertexID(u), graph.VertexID(v)},
		Arcs:     []graph.ArcID{a},
	}})
	if err := ig.Verify(VerifyOptions{}); err != nil {
		t.Errorf("Verify: %v", err)
	}
	if got := ig.Cost(); got != 20 { // radio $2/unit × 10 units
		t.Errorf("Cost = %v, want 20", got)
	}
	if got := ig.ArcLength(a); got != 10 {
		t.Errorf("ArcLength = %v, want 10", got)
	}
}

func TestSegmentationVerifies(t *testing.T) {
	cg, u, v, ch := simpleCG(t)
	ig := New(cg)
	// Two 5-unit segments joined by a repeater; segment max span is 6.
	mid, err := ig.AddCommVertex(repnode, geom.Pt(5, 0), "r0")
	if err != nil {
		t.Fatalf("AddCommVertex: %v", err)
	}
	a0, err := ig.AddLink(graph.VertexID(u), mid, segment)
	if err != nil {
		t.Fatalf("AddLink 1: %v", err)
	}
	a1, err := ig.AddLink(mid, graph.VertexID(v), segment)
	if err != nil {
		t.Fatalf("AddLink 2: %v", err)
	}
	p := graph.Path{
		Vertices: []graph.VertexID{graph.VertexID(u), mid, graph.VertexID(v)},
		Arcs:     []graph.ArcID{a0, a1},
	}
	ig.AssignImplementation(ch, []graph.Path{p})
	if err := ig.Verify(VerifyOptions{}); err != nil {
		t.Errorf("Verify: %v", err)
	}
	// Cost: 2 segments × $1 + 1 repeater × $1 = 3.
	if got := ig.Cost(); got != 3 {
		t.Errorf("Cost = %v, want 3", got)
	}
	if got := ig.PathLength(p); got != 10 {
		t.Errorf("PathLength = %v, want 10", got)
	}
	if got := ig.PathBandwidth(p); got != 100 {
		t.Errorf("PathBandwidth = %v, want 100", got)
	}
	if got := ig.PathCost(p); got != 2 {
		t.Errorf("PathCost = %v, want 2 (links only)", got)
	}
	if ig.NumCommVertices() != 1 {
		t.Errorf("NumCommVertices = %d, want 1", ig.NumCommVertices())
	}
}

func TestDuplicationVerifies(t *testing.T) {
	// Channel needs 20 Mbps; radio gives 11 per link, so two parallel
	// radios are required.
	cg := model.NewConstraintGraph(geom.Euclidean)
	u := cg.MustAddPort(model.Port{Name: "u", Position: geom.Pt(0, 0)})
	v := cg.MustAddPort(model.Port{Name: "v", Position: geom.Pt(10, 0)})
	ch := cg.MustAddChannel(model.Channel{Name: "a1", From: u, To: v, Bandwidth: 20})
	ig := New(cg)
	a0, _ := ig.AddLink(graph.VertexID(u), graph.VertexID(v), radio)
	a1, _ := ig.AddLink(graph.VertexID(u), graph.VertexID(v), radio)
	ig.AssignImplementation(ch, []graph.Path{
		{Vertices: []graph.VertexID{graph.VertexID(u), graph.VertexID(v)}, Arcs: []graph.ArcID{a0}},
		{Vertices: []graph.VertexID{graph.VertexID(u), graph.VertexID(v)}, Arcs: []graph.ArcID{a1}},
	})
	if err := ig.Verify(VerifyOptions{}); err != nil {
		t.Errorf("Verify: %v", err)
	}
	// One radio alone must fail the bandwidth check.
	ig2 := New(cg)
	b0, _ := ig2.AddLink(graph.VertexID(u), graph.VertexID(v), radio)
	ig2.AssignImplementation(ch, []graph.Path{
		{Vertices: []graph.VertexID{graph.VertexID(u), graph.VertexID(v)}, Arcs: []graph.ArcID{b0}},
	})
	if err := ig2.Verify(VerifyOptions{}); err == nil {
		t.Error("insufficient bandwidth should fail verification")
	}
}

func TestMergingSharedTrunk(t *testing.T) {
	// Two channels from the same source to two nearby destinations share
	// an optical trunk to a mux-less split point (demux), then branch.
	cg := model.NewConstraintGraph(geom.Euclidean)
	s := cg.MustAddPort(model.Port{Name: "s", Position: geom.Pt(0, 0)})
	d1 := cg.MustAddPort(model.Port{Name: "d1", Position: geom.Pt(100, 1)})
	d2 := cg.MustAddPort(model.Port{Name: "d2", Position: geom.Pt(100, -1)})
	c1 := cg.MustAddChannel(model.Channel{Name: "c1", From: s, To: d1, Bandwidth: 10})
	c2 := cg.MustAddChannel(model.Channel{Name: "c2", From: s, To: d2, Bandwidth: 10})

	ig := New(cg)
	split, _ := ig.AddCommVertex(library.Node{Name: "demux", Kind: library.Demux, Cost: 2}, geom.Pt(100, 0), "split")
	trunk, _ := ig.AddLink(graph.VertexID(s), split, optical)
	b1, _ := ig.AddLink(split, graph.VertexID(d1), radio)
	b2, _ := ig.AddLink(split, graph.VertexID(d2), radio)
	ig.AssignImplementation(c1, []graph.Path{{
		Vertices: []graph.VertexID{graph.VertexID(s), split, graph.VertexID(d1)},
		Arcs:     []graph.ArcID{trunk, b1},
	}})
	ig.AssignImplementation(c2, []graph.Path{{
		Vertices: []graph.VertexID{graph.VertexID(s), split, graph.VertexID(d2)},
		Arcs:     []graph.ArcID{trunk, b2},
	}})
	if err := ig.Verify(VerifyOptions{}); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestSumCapacityRejectsOverload(t *testing.T) {
	// Two 10 Mbps channels over one shared 11 Mbps radio trunk: fine
	// under MaxCapacity, overloaded under SumCapacity.
	cg := model.NewConstraintGraph(geom.Euclidean)
	s := cg.MustAddPort(model.Port{Name: "s", Position: geom.Pt(0, 0)})
	d1 := cg.MustAddPort(model.Port{Name: "d1", Position: geom.Pt(100, 1)})
	d2 := cg.MustAddPort(model.Port{Name: "d2", Position: geom.Pt(100, -1)})
	c1 := cg.MustAddChannel(model.Channel{Name: "c1", From: s, To: d1, Bandwidth: 10})
	c2 := cg.MustAddChannel(model.Channel{Name: "c2", From: s, To: d2, Bandwidth: 10})

	ig := New(cg)
	split, _ := ig.AddCommVertex(library.Node{Name: "demux", Kind: library.Demux, Cost: 2}, geom.Pt(100, 0), "split")
	trunk, _ := ig.AddLink(graph.VertexID(s), split, radio)
	b1, _ := ig.AddLink(split, graph.VertexID(d1), radio)
	b2, _ := ig.AddLink(split, graph.VertexID(d2), radio)
	ig.AssignImplementation(c1, []graph.Path{{
		Vertices: []graph.VertexID{graph.VertexID(s), split, graph.VertexID(d1)},
		Arcs:     []graph.ArcID{trunk, b1},
	}})
	ig.AssignImplementation(c2, []graph.Path{{
		Vertices: []graph.VertexID{graph.VertexID(s), split, graph.VertexID(d2)},
		Arcs:     []graph.ArcID{trunk, b2},
	}})
	if err := ig.Verify(VerifyOptions{Capacity: SumCapacity}); err == nil {
		t.Error("sum rule should reject 20 Mbps over an 11 Mbps trunk")
	}
	if err := ig.Verify(VerifyOptions{Capacity: MaxCapacity}); err != nil {
		t.Errorf("max rule should accept: %v", err)
	}
}

func TestVerifyStructuralErrors(t *testing.T) {
	cg, u, v, ch := simpleCG(t)

	t.Run("missing implementation", func(t *testing.T) {
		ig := New(cg)
		ig.AddLink(graph.VertexID(u), graph.VertexID(v), radio)
		if err := ig.Verify(VerifyOptions{}); err == nil {
			t.Error("missing P(a) should fail")
		}
	})

	t.Run("wrong endpoints", func(t *testing.T) {
		ig := New(cg)
		a, _ := ig.AddLink(graph.VertexID(v), graph.VertexID(u), radio) // reversed
		ig.AssignImplementation(ch, []graph.Path{{
			Vertices: []graph.VertexID{graph.VertexID(v), graph.VertexID(u)},
			Arcs:     []graph.ArcID{a},
		}})
		if err := ig.Verify(VerifyOptions{}); err == nil {
			t.Error("reversed path should fail")
		}
	})

	t.Run("computational interior", func(t *testing.T) {
		cg2 := model.NewConstraintGraph(geom.Euclidean)
		a := cg2.MustAddPort(model.Port{Name: "a", Position: geom.Pt(0, 0)})
		b := cg2.MustAddPort(model.Port{Name: "b", Position: geom.Pt(5, 0)})
		c := cg2.MustAddPort(model.Port{Name: "c", Position: geom.Pt(10, 0)})
		ac := cg2.MustAddChannel(model.Channel{Name: "ac", From: a, To: c, Bandwidth: 5})
		ig := New(cg2)
		l1, _ := ig.AddLink(graph.VertexID(a), graph.VertexID(b), radio)
		l2, _ := ig.AddLink(graph.VertexID(b), graph.VertexID(c), radio)
		ig.AssignImplementation(ac, []graph.Path{{
			Vertices: []graph.VertexID{graph.VertexID(a), graph.VertexID(b), graph.VertexID(c)},
			Arcs:     []graph.ArcID{l1, l2},
		}})
		if err := ig.Verify(VerifyOptions{}); err == nil {
			t.Error("path through computational vertex should fail")
		}
	})

	t.Run("unused link", func(t *testing.T) {
		ig := New(cg)
		a, _ := ig.AddLink(graph.VertexID(u), graph.VertexID(v), radio)
		ig.AddLink(graph.VertexID(u), graph.VertexID(v), radio) // dead hardware
		ig.AssignImplementation(ch, []graph.Path{{
			Vertices: []graph.VertexID{graph.VertexID(u), graph.VertexID(v)},
			Arcs:     []graph.ArcID{a},
		}})
		if err := ig.Verify(VerifyOptions{}); err == nil {
			t.Error("unused link should fail verification")
		}
	})

	t.Run("unused comm vertex", func(t *testing.T) {
		ig := New(cg)
		a, _ := ig.AddLink(graph.VertexID(u), graph.VertexID(v), radio)
		ig.AddCommVertex(repnode, geom.Pt(5, 5), "orphan")
		ig.AssignImplementation(ch, []graph.Path{{
			Vertices: []graph.VertexID{graph.VertexID(u), graph.VertexID(v)},
			Arcs:     []graph.ArcID{a},
		}})
		if err := ig.Verify(VerifyOptions{}); err == nil {
			t.Error("orphan communication vertex should fail verification")
		}
	})
}

func TestAddLinkSpanEnforced(t *testing.T) {
	cg, u, v, _ := simpleCG(t)
	ig := New(cg)
	if _, err := ig.AddLink(graph.VertexID(u), graph.VertexID(v), segment); err == nil {
		t.Error("6-unit segment cannot span 10 units; AddLink should fail")
	}
	if _, err := ig.AddLink(99, graph.VertexID(v), radio); err == nil {
		t.Error("bad endpoint should fail")
	}
}

func TestAddCommVertexRejectsNonFinite(t *testing.T) {
	cg, _, _, _ := simpleCG(t)
	ig := New(cg)
	if _, err := ig.AddCommVertex(muxnode, geom.Pt(math.NaN(), 0), "bad"); err == nil {
		t.Error("NaN position should be rejected")
	}
}

func TestCommVertexCostCounted(t *testing.T) {
	cg, u, v, ch := simpleCG(t)
	ig := New(cg)
	mid, _ := ig.AddCommVertex(library.Node{Name: "rep", Kind: library.Repeater, Cost: 7}, geom.Pt(5, 0), "")
	a0, _ := ig.AddLink(graph.VertexID(u), mid, radio)
	a1, _ := ig.AddLink(mid, graph.VertexID(v), radio)
	ig.AssignImplementation(ch, []graph.Path{{
		Vertices: []graph.VertexID{graph.VertexID(u), mid, graph.VertexID(v)},
		Arcs:     []graph.ArcID{a0, a1},
	}})
	// 2 radios × 5 units × $2 + $7 repeater = 27.
	if got := ig.Cost(); got != 27 {
		t.Errorf("Cost = %v, want 27", got)
	}
	// Default name assigned.
	if name := ig.Vertex(mid).Name; !strings.Contains(name, "rep") {
		t.Errorf("default name = %q", name)
	}
}

func TestDot(t *testing.T) {
	cg, u, v, ch := simpleCG(t)
	ig := New(cg)
	a, _ := ig.AddLink(graph.VertexID(u), graph.VertexID(v), radio)
	ig.AssignImplementation(ch, []graph.Path{{
		Vertices: []graph.VertexID{graph.VertexID(u), graph.VertexID(v)},
		Arcs:     []graph.ArcID{a},
	}})
	dot := ig.Dot()
	for _, want := range []string{"digraph", "radio", "shape=ellipse"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestTrivialPathBandwidth(t *testing.T) {
	cg, u, _, _ := simpleCG(t)
	ig := New(cg)
	p := graph.Path{Vertices: []graph.VertexID{graph.VertexID(u)}}
	if got := ig.PathBandwidth(p); !math.IsInf(got, 1) {
		t.Errorf("trivial path bandwidth = %v, want +Inf", got)
	}
	if got := ig.PathLength(p); got != 0 {
		t.Errorf("trivial path length = %v, want 0", got)
	}
}

package impl

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/library"
)

// Stats summarizes an implementation graph's composition: instance
// counts and total realized length per link type, instance counts per
// node kind, and the aggregate cost split between links and nodes.
type Stats struct {
	// LinksByType maps link name to instance count.
	LinksByType map[string]int
	// LengthByType maps link name to summed realized length.
	LengthByType map[string]float64
	// NodesByKind maps node kind to instance count.
	NodesByKind map[library.NodeKind]int
	// LinkCost and NodeCost split the Definition 2.5 total.
	LinkCost, NodeCost float64
	// TotalLength is the summed realized length of all link instances.
	TotalLength float64
}

// Stats computes the summary.
func (ig *Graph) Stats() Stats {
	s := Stats{
		LinksByType:  make(map[string]int),
		LengthByType: make(map[string]float64),
		NodesByKind:  make(map[library.NodeKind]int),
	}
	for a := 0; a < ig.g.NumArcs(); a++ {
		id := graph.ArcID(a)
		l := ig.links[id]
		length := ig.ArcLength(id)
		s.LinksByType[l.Name]++
		s.LengthByType[l.Name] += length
		s.TotalLength += length
		s.LinkCost += l.Cost(length)
	}
	for _, v := range ig.vertices {
		if v.Kind == Communication {
			s.NodesByKind[v.Node.Kind]++
			s.NodeCost += v.Node.Cost
		}
	}
	return s
}

// LinkTypeNames returns the link type names present, sorted.
func (s Stats) LinkTypeNames() []string {
	names := make([]string, 0, len(s.LinksByType))
	for n := range s.LinksByType {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Repeaters returns the number of repeater instances.
func (s Stats) Repeaters() int { return s.NodesByKind[library.Repeater] }

// Switches returns the combined number of mux and demux instances.
func (s Stats) Switches() int {
	return s.NodesByKind[library.Mux] + s.NodesByKind[library.Demux]
}

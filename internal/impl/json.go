package impl

import (
	"encoding/json"

	"repro/internal/graph"
	"repro/internal/model"
)

// JSON export of a synthesized architecture, for handoff to downstream
// tools (floorplanners, board routers, documentation generators). The
// export is self-describing: vertices with kinds and positions, link
// instances with their library types and realized lengths, and the
// per-channel path sets.
//
// The export is one-way by design: an implementation graph is derived
// data, and the authoritative inputs (constraint graph + library)
// already round-trip through their own codecs.

type jsonImpl struct {
	Cost     float64       `json:"cost"`
	Vertices []jsonVertex  `json:"vertices"`
	Links    []jsonImpLink `json:"links"`
	Channels []jsonImpPath `json:"channels"`
}

type jsonVertex struct {
	ID   int     `json:"id"`
	Kind string  `json:"kind"` // "computational" | "communication"
	Name string  `json:"name"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
	// Node is the library node name (communication vertices only).
	Node string `json:"node,omitempty"`
}

type jsonImpLink struct {
	ID     int     `json:"id"`
	From   int     `json:"from"`
	To     int     `json:"to"`
	Link   string  `json:"link"`
	Length float64 `json:"length"`
	Cost   float64 `json:"cost"`
}

type jsonImpPath struct {
	Channel string  `json:"channel"`
	Paths   [][]int `json:"paths"` // link IDs per path
}

// MarshalJSON encodes the architecture.
func (ig *Graph) MarshalJSON() ([]byte, error) {
	out := jsonImpl{Cost: ig.Cost()}
	for v := 0; v < ig.NumVertices(); v++ {
		vx := ig.Vertex(graph.VertexID(v))
		jv := jsonVertex{
			ID:   v,
			Name: vx.Name,
			X:    vx.Position.X,
			Y:    vx.Position.Y,
		}
		if vx.Kind == Communication {
			jv.Kind = "communication"
			jv.Node = vx.Node.Name
		} else {
			jv.Kind = "computational"
		}
		out.Vertices = append(out.Vertices, jv)
	}
	for a := 0; a < ig.NumLinks(); a++ {
		id := graph.ArcID(a)
		arc := ig.g.Arc(id)
		l := ig.links[id]
		length := ig.ArcLength(id)
		out.Links = append(out.Links, jsonImpLink{
			ID:     a,
			From:   int(arc.From),
			To:     int(arc.To),
			Link:   l.Name,
			Length: length,
			Cost:   l.Cost(length),
		})
	}
	for i := 0; i < ig.cg.NumChannels(); i++ {
		ch := model.ChannelID(i)
		entry := jsonImpPath{Channel: ig.cg.Channel(ch).Name}
		for _, p := range ig.Implementation(ch) {
			ids := make([]int, len(p.Arcs))
			for j, a := range p.Arcs {
				ids[j] = int(a)
			}
			entry.Paths = append(entry.Paths, ids)
		}
		out.Channels = append(out.Channels, entry)
	}
	return json.Marshal(out)
}

// Package impl implements the implementation graph of Definitions
// 2.3–2.5: the concrete communication architecture produced by the
// synthesis flow. Its vertex set is the constraint graph's port vertices
// (the bijection χ) extended with communication vertices — instances of
// library nodes (the surjection ψ) — and every arc is an instance of a
// library link (the surjection φ).
//
// Each constraint arc a is implemented by a set of paths P(a) from χ(u)
// to χ(v) passing only through communication vertices; the package
// provides a full Definition 2.4 satisfaction checker plus the cost
// function of Definition 2.5.
package impl

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/library"
	"repro/internal/model"
)

// VertexKind distinguishes the two vertex classes of Definition 2.4.
type VertexKind int

const (
	// Computational vertices correspond bijectively to constraint-graph
	// ports; they carry no cost.
	Computational VertexKind = iota
	// Communication vertices are instances of library nodes inserted by
	// the synthesis transformations (segmentation, duplication, merging).
	Communication
)

// Vertex is a vertex of the implementation graph.
type Vertex struct {
	Kind VertexKind
	// Port is the constraint-graph port this vertex mirrors
	// (Computational vertices only).
	Port model.PortID
	// Node is the library node instantiated here (Communication only).
	Node library.Node
	// Position is the vertex position; for computational vertices it
	// equals the port position (χ preserves positions).
	Position geom.Point
	// Name is a human-readable identifier.
	Name string
}

// Graph is an implementation graph under construction or under
// verification.
type Graph struct {
	cg       *model.ConstraintGraph
	g        *graph.Digraph
	vertices []Vertex
	links    []library.Link // indexed by ArcID: the φ mapping
	implOf   map[model.ChannelID][]graph.Path
}

// New creates an implementation graph for the given constraint graph,
// pre-populated with one computational vertex per port (same IDs, same
// positions — the bijection χ is the identity on indices).
func New(cg *model.ConstraintGraph) *Graph {
	ig := &Graph{
		cg:     cg,
		g:      &graph.Digraph{},
		implOf: make(map[model.ChannelID][]graph.Path),
	}
	for i := 0; i < cg.NumPorts(); i++ {
		id := model.PortID(i)
		p := cg.Port(id)
		ig.g.AddVertex()
		ig.vertices = append(ig.vertices, Vertex{
			Kind:     Computational,
			Port:     id,
			Position: p.Position,
			Name:     p.Name,
		})
	}
	return ig
}

// ConstraintGraph returns the constraint graph this implementation
// belongs to.
func (ig *Graph) ConstraintGraph() *model.ConstraintGraph { return ig.cg }

// Digraph exposes the underlying directed graph (read-only use).
func (ig *Graph) Digraph() *graph.Digraph { return ig.g }

// NumVertices returns the total number of vertices (computational plus
// communication).
func (ig *Graph) NumVertices() int { return len(ig.vertices) }

// NumCommVertices returns the number of communication vertices.
func (ig *Graph) NumCommVertices() int { return len(ig.vertices) - ig.cg.NumPorts() }

// NumLinks returns the number of instantiated links (arcs).
func (ig *Graph) NumLinks() int { return ig.g.NumArcs() }

// Vertex returns the vertex with the given ID.
func (ig *Graph) Vertex(v graph.VertexID) Vertex { return ig.vertices[v] }

// Link returns the library link instantiated on the given arc.
func (ig *Graph) Link(a graph.ArcID) library.Link { return ig.links[a] }

// Computational reports whether v is a computational vertex.
func (ig *Graph) Computational(v graph.VertexID) bool {
	return ig.vertices[v].Kind == Computational
}

// AddCommVertex inserts a communication vertex instantiating the given
// library node at the given position, returning its ID.
func (ig *Graph) AddCommVertex(node library.Node, pos geom.Point, name string) (graph.VertexID, error) {
	if !pos.IsFinite() {
		return 0, fmt.Errorf("impl: communication vertex %q at non-finite position %v", name, pos)
	}
	id := ig.g.AddVertex()
	if name == "" {
		name = fmt.Sprintf("%s#%d", node.Name, id)
	}
	ig.vertices = append(ig.vertices, Vertex{
		Kind:     Communication,
		Node:     node,
		Position: pos,
		Name:     name,
	})
	return id, nil
}

// ArcLength returns the realized length of arc a: the norm distance
// between its endpoint positions.
func (ig *Graph) ArcLength(a graph.ArcID) float64 {
	arc := ig.g.Arc(a)
	return ig.cg.Norm().Distance(ig.vertices[arc.From].Position, ig.vertices[arc.To].Position)
}

// AddLink instantiates a library link from u to v. The realized length
// is the norm distance between the endpoints; it must not exceed the
// link's span.
func (ig *Graph) AddLink(u, v graph.VertexID, l library.Link) (graph.ArcID, error) {
	if !ig.g.HasVertex(u) || !ig.g.HasVertex(v) {
		return 0, fmt.Errorf("impl: link %q endpoints out of range", l.Name)
	}
	length := ig.cg.Norm().Distance(ig.vertices[u].Position, ig.vertices[v].Position)
	// A relative tolerance absorbs float rounding when a chain splits a
	// distance that is an exact multiple of the span: the k-th lerp
	// point can land an ulp past MaxSpan.
	if !l.CanSpan(length) && length > l.MaxSpan*(1+1e-9) {
		return 0, fmt.Errorf("impl: link %q (span %g) cannot cover distance %g from %q to %q",
			l.Name, l.MaxSpan, length, ig.vertices[u].Name, ig.vertices[v].Name)
	}
	id, err := ig.g.AddArc(u, v)
	if err != nil {
		return 0, fmt.Errorf("impl: link %q: %w", l.Name, err)
	}
	ig.links = append(ig.links, l)
	return id, nil
}

// AssignImplementation records the path set P(a) implementing a channel.
// Paths must already exist in the graph; structural checks happen in
// Verify. Assigning twice replaces the previous path set.
func (ig *Graph) AssignImplementation(ch model.ChannelID, paths []graph.Path) {
	ig.implOf[ch] = paths
}

// Implementation returns the recorded path set P(a) for a channel.
func (ig *Graph) Implementation(ch model.ChannelID) []graph.Path {
	return ig.implOf[ch]
}

// PathBandwidth returns b(q) = min over the path's arcs of the link
// bandwidth (Definition 2.3). The trivial path has +Inf bandwidth.
func (ig *Graph) PathBandwidth(p graph.Path) float64 {
	b := math.Inf(1)
	for _, a := range p.Arcs {
		if lb := ig.links[a].Bandwidth; lb < b {
			b = lb
		}
	}
	return b
}

// PathLength returns d(q) = Σ d(aᵢ) over the path's arcs.
func (ig *Graph) PathLength(p graph.Path) float64 {
	var total float64
	for _, a := range p.Arcs {
		total += ig.ArcLength(a)
	}
	return total
}

// PathCost returns c(q) = Σ c(aᵢ) over the path's arcs (link costs only).
func (ig *Graph) PathCost(p graph.Path) float64 {
	var total float64
	for _, a := range p.Arcs {
		total += ig.links[a].Cost(ig.ArcLength(a))
	}
	return total
}

// Cost returns C(G') of Definition 2.5: the sum of all communication
// vertex costs and all link instance costs. Computational vertices are
// free.
func (ig *Graph) Cost() float64 {
	var total float64
	for _, v := range ig.vertices {
		if v.Kind == Communication {
			total += v.Node.Cost
		}
	}
	for a := 0; a < ig.g.NumArcs(); a++ {
		id := graph.ArcID(a)
		total += ig.links[id].Cost(ig.ArcLength(id))
	}
	return total
}

// Dot renders the implementation graph in Graphviz DOT syntax.
// Communication vertices are drawn as boxes; arcs are labelled with
// their link name and realized length.
func (ig *Graph) Dot() string {
	return ig.g.Dot(graph.DotOptions{
		Name: "implementation",
		VertexLabel: func(v graph.VertexID) string {
			return ig.vertices[v].Name
		},
		VertexAttrs: func(v graph.VertexID) string {
			if ig.vertices[v].Kind == Communication {
				return "shape=box"
			}
			return "shape=ellipse"
		},
		ArcLabel: func(a graph.ArcID) string {
			return fmt.Sprintf("%s d=%.2f", ig.links[a].Name, ig.ArcLength(a))
		},
	})
}

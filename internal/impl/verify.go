package impl

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/model"
)

// CapacityRule selects how bandwidth on shared links is accounted for
// when several channels route over the same link instance.
type CapacityRule int

const (
	// SumCapacity requires the link bandwidth to cover the sum of the
	// bandwidths of all channels routed over it. This matches the
	// paper's multiplexer description ("one outgoing link whose
	// bandwidth is larger than the sum of the incoming") and is the
	// default.
	SumCapacity CapacityRule = iota
	// MaxCapacity only requires the link bandwidth to cover the largest
	// single channel, the literal reading of the b(q*) condition in
	// Definition 2.8. Provided for ablation.
	MaxCapacity
)

// VerifyOptions configures the Definition 2.4 checker.
type VerifyOptions struct {
	// Capacity selects the shared-link accounting rule.
	Capacity CapacityRule
	// Tol is the tolerance for bandwidth comparisons; zero means 1e-9.
	Tol float64
}

func (o VerifyOptions) tol() float64 {
	if o.Tol > 0 {
		return o.Tol
	}
	return 1e-9
}

// Verify checks that the implementation graph satisfies every constraint
// of Definition 2.4 with respect to its constraint graph:
//
//  1. every channel has a recorded, structurally valid path set P(a);
//  2. each path runs from χ(u) to χ(v) and its interior vertices are all
//     communication vertices;
//  3. the summed path bandwidths cover b(a);
//  4. every link instance respects its span (guaranteed at construction,
//     re-checked here) and its bandwidth under the chosen capacity rule;
//  5. every link instance is used by at least one path (no dead
//     hardware — a cost-minimal architecture never pays for unused
//     links, and letting them pass verification would mask synthesis
//     bugs).
//
// It returns nil if all constraints hold.
func (ig *Graph) Verify(opt VerifyOptions) error {
	tol := opt.tol()
	// Per-link total routed bandwidth (sum rule) and max routed channel
	// (max rule).
	routedSum := make([]float64, ig.g.NumArcs())
	routedMax := make([]float64, ig.g.NumArcs())
	usedArc := make([]bool, ig.g.NumArcs())
	usedVertex := make([]bool, ig.g.NumVertices())

	for i := 0; i < ig.cg.NumChannels(); i++ {
		ch := model.ChannelID(i)
		c := ig.cg.Channel(ch)
		paths := ig.implOf[ch]
		if len(paths) == 0 {
			return fmt.Errorf("impl: channel %q has no implementation", c.Name)
		}
		var bwSum float64
		for pi, p := range paths {
			if err := p.Validate(ig.g); err != nil {
				return fmt.Errorf("impl: channel %q path %d: %w", c.Name, pi, err)
			}
			if p.Source() != graph.VertexID(c.From) {
				return fmt.Errorf("impl: channel %q path %d starts at %q, want χ(%q)",
					c.Name, pi, ig.vertices[p.Source()].Name, ig.cg.Port(c.From).Name)
			}
			if p.Target() != graph.VertexID(c.To) {
				return fmt.Errorf("impl: channel %q path %d ends at %q, want χ(%q)",
					c.Name, pi, ig.vertices[p.Target()].Name, ig.cg.Port(c.To).Name)
			}
			for _, v := range p.Interior() {
				if ig.vertices[v].Kind != Communication {
					return fmt.Errorf("impl: channel %q path %d passes through computational vertex %q",
						c.Name, pi, ig.vertices[v].Name)
				}
			}
			bwSum += ig.PathBandwidth(p)
			for _, a := range p.Arcs {
				usedArc[a] = true
				if c.Bandwidth > routedMax[a] {
					routedMax[a] = c.Bandwidth
				}
			}
			for _, v := range p.Vertices {
				usedVertex[v] = true
			}
		}
		if bwSum+tol < c.Bandwidth {
			return fmt.Errorf("impl: channel %q bandwidth %.6g not covered: paths provide %.6g",
				c.Name, c.Bandwidth, bwSum)
		}
	}

	// Sum-rule load: parallel paths of one channel split the demand
	// rather than each carrying the full charge.
	for i := 0; i < ig.cg.NumChannels(); i++ {
		ch := model.ChannelID(i)
		shares := ig.splitDemand(ch)
		for pi, p := range ig.implOf[ch] {
			for _, a := range p.Arcs {
				routedSum[a] += shares[pi]
			}
		}
	}

	for a := 0; a < ig.g.NumArcs(); a++ {
		id := graph.ArcID(a)
		l := ig.links[id]
		length := ig.ArcLength(id)
		if !l.CanSpan(length) && length > l.MaxSpan*(1+1e-9) {
			return fmt.Errorf("impl: link %q instance spans %.6g > max span %.6g", l.Name, length, l.MaxSpan)
		}
		var demand float64
		switch opt.Capacity {
		case MaxCapacity:
			demand = routedMax[id]
		default:
			demand = routedSum[id]
		}
		if demand > l.Bandwidth+tol {
			return fmt.Errorf("impl: link %q instance overloaded: demand %.6g > bandwidth %.6g",
				l.Name, demand, l.Bandwidth)
		}
		if !usedArc[id] {
			arc := ig.g.Arc(id)
			return fmt.Errorf("impl: link %q from %q to %q is not used by any channel implementation",
				l.Name, ig.vertices[arc.From].Name, ig.vertices[arc.To].Name)
		}
	}
	for v := 0; v < ig.g.NumVertices(); v++ {
		if ig.vertices[v].Kind == Communication && !usedVertex[v] {
			return fmt.Errorf("impl: communication vertex %q is not used by any channel implementation",
				ig.vertices[v].Name)
		}
	}
	return nil
}

// splitDemand apportions a channel's bandwidth demand b(a) across its
// parallel implementation paths: each path is filled up to its own
// bandwidth in order until the demand is exhausted (a feasible split
// exists whenever Σ b(q) ≥ b(a)).
func (ig *Graph) splitDemand(ch model.ChannelID) []float64 {
	c := ig.cg.Channel(ch)
	paths := ig.implOf[ch]
	shares := make([]float64, len(paths))
	remaining := c.Bandwidth
	for i, p := range paths {
		if remaining <= 0 {
			break
		}
		take := math.Min(remaining, ig.PathBandwidth(p))
		shares[i] = take
		remaining -= take
	}
	return shares
}

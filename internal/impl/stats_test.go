package impl

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/library"
	"repro/internal/model"
)

func TestStats(t *testing.T) {
	cg := model.NewConstraintGraph(geom.Euclidean)
	u := cg.MustAddPort(model.Port{Name: "u", Position: geom.Pt(0, 0)})
	v := cg.MustAddPort(model.Port{Name: "v", Position: geom.Pt(10, 0)})
	ch := cg.MustAddChannel(model.Channel{Name: "c", From: u, To: v, Bandwidth: 10})

	ig := New(cg)
	mid, _ := ig.AddCommVertex(library.Node{Name: "rep", Kind: library.Repeater, Cost: 3}, geom.Pt(5, 0), "")
	a0, _ := ig.AddLink(graph.VertexID(u), mid, radio)
	a1, _ := ig.AddLink(mid, graph.VertexID(v), radio)
	ig.AssignImplementation(ch, []graph.Path{{
		Vertices: []graph.VertexID{graph.VertexID(u), mid, graph.VertexID(v)},
		Arcs:     []graph.ArcID{a0, a1},
	}})

	s := ig.Stats()
	if s.LinksByType["radio"] != 2 {
		t.Errorf("radio instances = %d, want 2", s.LinksByType["radio"])
	}
	if math.Abs(s.LengthByType["radio"]-10) > 1e-12 || math.Abs(s.TotalLength-10) > 1e-12 {
		t.Errorf("lengths wrong: %+v", s)
	}
	if s.Repeaters() != 1 || s.Switches() != 0 {
		t.Errorf("node counts wrong: %+v", s.NodesByKind)
	}
	if s.NodeCost != 3 {
		t.Errorf("NodeCost = %v, want 3", s.NodeCost)
	}
	if math.Abs(s.LinkCost-20) > 1e-12 { // $2/unit × 10 units
		t.Errorf("LinkCost = %v, want 20", s.LinkCost)
	}
	// Stats split must reconstruct the Definition 2.5 total.
	if math.Abs((s.LinkCost+s.NodeCost)-ig.Cost()) > 1e-12 {
		t.Errorf("stats split %v ≠ graph cost %v", s.LinkCost+s.NodeCost, ig.Cost())
	}
	names := s.LinkTypeNames()
	if len(names) != 1 || names[0] != "radio" {
		t.Errorf("LinkTypeNames = %v", names)
	}
}

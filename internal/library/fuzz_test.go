package library

import "testing"

// FuzzDecode ensures the library JSON decoder never panics and that
// accepted libraries re-validate and re-encode.
func FuzzDecode(f *testing.F) {
	f.Add([]byte(`{"links":[{"name":"radio","bandwidth":11,"maxSpan":null,"costPerLength":2}],"nodes":[{"name":"mux","kind":"mux","cost":0}]}`))
	f.Add([]byte(`{"links":[{"name":"w","bandwidth":1,"maxSpan":0.6,"costFixed":1}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"links":[{"name":"x","bandwidth":-1,"maxSpan":1}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		lib, err := Decode(data)
		if err != nil {
			return
		}
		if err := lib.Validate(); err != nil {
			t.Fatalf("accepted library fails validation: %v", err)
		}
		if _, err := lib.MarshalJSON(); err != nil {
			t.Fatalf("accepted library fails to re-encode: %v", err)
		}
	})
}

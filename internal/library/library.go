// Package library implements the communication library of Definition
// 2.2: a collection of communication links and communication nodes from
// which implementation graphs are composed.
//
// A link is characterized by the longest channel it can realize (its
// span), the fastest channel it can realize (its bandwidth), and a cost.
// The paper uses two pricing styles, both supported here:
//
//   - length-priced links, such as the WAN example's radio link
//     (11 Mbps, any length ℓ, $2×meter) — cost grows with the realized
//     length and the span is unbounded;
//   - fixed links, such as the on-chip critical-length wire (one metal
//     segment of length l_crit) — a fixed span with a fixed per-instance
//     cost.
//
// Nodes are repeaters (receive and re-transmit), multiplexers (merge
// several incoming links onto one faster outgoing link) and
// de-multiplexers (the inverse), each with a fixed instantiation cost.
package library

import (
	"fmt"
	"math"
)

// NodeKind distinguishes the communication node types of the paper.
type NodeKind int

const (
	// Repeater receives and re-transmits the same data, used to
	// concatenate links in an arc segmentation.
	Repeater NodeKind = iota
	// Mux merges multiple incoming links into one outgoing link whose
	// bandwidth covers their sum.
	Mux
	// Demux splits one incoming link back into multiple outgoing links.
	Demux
)

// String returns the lower-case kind name.
func (k NodeKind) String() string {
	switch k {
	case Repeater:
		return "repeater"
	case Mux:
		return "mux"
	case Demux:
		return "demux"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is a communication node type available in the library. Instances
// of it become communication vertices of the implementation graph.
type Node struct {
	Name string
	Kind NodeKind
	// Cost is c(n), charged once per instance.
	Cost float64
}

// Link is a communication link type available in the library.
type Link struct {
	Name string
	// Bandwidth is b(l): the fastest channel one instance can realize.
	Bandwidth float64
	// MaxSpan is d(l): the longest channel one instance can realize.
	// math.Inf(1) models length-parametric links (radio, fiber) that can
	// be manufactured at any length.
	MaxSpan float64
	// CostFixed is charged once per instance.
	CostFixed float64
	// CostPerLength is charged per unit of realized length. The total
	// cost of an instance spanning length d is CostFixed + CostPerLength·d.
	CostPerLength float64
}

// Cost returns c(l) for an instance realized at the given length.
func (l Link) Cost(length float64) float64 {
	return l.CostFixed + l.CostPerLength*length
}

// CanSpan reports whether a single instance can cover distance d.
func (l Link) CanSpan(d float64) bool { return d <= l.MaxSpan }

// Unbounded reports whether the link is length-parametric.
func (l Link) Unbounded() bool { return math.IsInf(l.MaxSpan, 1) }

// Library is the communication library L ∪ N.
type Library struct {
	Links []Link
	Nodes []Node
}

// Validate checks that the library is well-formed: at least one link,
// positive bandwidths and spans, non-negative costs, unique names.
func (lib *Library) Validate() error {
	if len(lib.Links) == 0 {
		return fmt.Errorf("library: no links")
	}
	names := make(map[string]bool)
	for _, l := range lib.Links {
		if l.Name == "" {
			return fmt.Errorf("library: link with empty name")
		}
		if names[l.Name] {
			return fmt.Errorf("library: duplicate name %q", l.Name)
		}
		names[l.Name] = true
		if l.Bandwidth <= 0 || math.IsNaN(l.Bandwidth) {
			return fmt.Errorf("library: link %q bandwidth %g must be positive", l.Name, l.Bandwidth)
		}
		if l.MaxSpan <= 0 || math.IsNaN(l.MaxSpan) {
			return fmt.Errorf("library: link %q span %g must be positive", l.Name, l.MaxSpan)
		}
		if l.CostFixed < 0 || l.CostPerLength < 0 {
			return fmt.Errorf("library: link %q has negative cost", l.Name)
		}
		if l.CostFixed == 0 && l.CostPerLength == 0 {
			return fmt.Errorf("library: link %q is free; Assumption 2.1 requires positive implementation costs", l.Name)
		}
	}
	for _, n := range lib.Nodes {
		if n.Name == "" {
			return fmt.Errorf("library: node with empty name")
		}
		if names[n.Name] {
			return fmt.Errorf("library: duplicate name %q", n.Name)
		}
		names[n.Name] = true
		if n.Cost < 0 || math.IsNaN(n.Cost) {
			return fmt.Errorf("library: node %q has negative cost", n.Name)
		}
	}
	return nil
}

// MaxBandwidth returns max over links of b(l), the quantity used by the
// Theorem 3.2 bandwidth prune.
func (lib *Library) MaxBandwidth() float64 {
	var m float64
	for _, l := range lib.Links {
		if l.Bandwidth > m {
			m = l.Bandwidth
		}
	}
	return m
}

// LinkByName returns the link with the given name.
func (lib *Library) LinkByName(name string) (Link, bool) {
	for _, l := range lib.Links {
		if l.Name == name {
			return l, true
		}
	}
	return Link{}, false
}

// CheapestNode returns the lowest-cost node of the given kind.
func (lib *Library) CheapestNode(kind NodeKind) (Node, bool) {
	best := Node{}
	found := false
	for _, n := range lib.Nodes {
		if n.Kind != kind {
			continue
		}
		if !found || n.Cost < best.Cost {
			best, found = n, true
		}
	}
	return best, found
}

// NodeCost returns the cheapest instantiation cost of a node of the given
// kind, or +Inf if the library has none. Synthesis uses +Inf to rule out
// transformations requiring an unavailable node kind.
func (lib *Library) NodeCost(kind NodeKind) float64 {
	if n, ok := lib.CheapestNode(kind); ok {
		return n.Cost
	}
	return math.Inf(1)
}

// LinksWithBandwidth returns all links whose bandwidth is at least b.
func (lib *Library) LinksWithBandwidth(b float64) []Link {
	var out []Link
	for _, l := range lib.Links {
		if l.Bandwidth >= b {
			out = append(out, l)
		}
	}
	return out
}

package library

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestLibraryJSONRoundTrip(t *testing.T) {
	lib := validLibrary()
	data, err := json.Marshal(lib)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got.Links) != len(lib.Links) || len(got.Nodes) != len(lib.Nodes) {
		t.Fatalf("shape changed: %d/%d links, %d/%d nodes",
			len(got.Links), len(lib.Links), len(got.Nodes), len(lib.Nodes))
	}
	for i, l := range lib.Links {
		g := got.Links[i]
		if g.Name != l.Name || g.Bandwidth != l.Bandwidth ||
			g.CostFixed != l.CostFixed || g.CostPerLength != l.CostPerLength {
			t.Errorf("link %d changed: %+v vs %+v", i, g, l)
		}
		if l.Unbounded() != g.Unbounded() {
			t.Errorf("link %d span boundedness changed", i)
		}
		if !l.Unbounded() && g.MaxSpan != l.MaxSpan {
			t.Errorf("link %d span changed: %v vs %v", i, g.MaxSpan, l.MaxSpan)
		}
	}
	for i, n := range lib.Nodes {
		if got.Nodes[i] != n {
			t.Errorf("node %d changed: %+v vs %+v", i, got.Nodes[i], n)
		}
	}
}

func TestUnboundedSpanEncodesAsNull(t *testing.T) {
	lib := &Library{Links: []Link{
		{Name: "radio", Bandwidth: 1, MaxSpan: math.Inf(1), CostPerLength: 1},
	}}
	data, err := json.Marshal(lib)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"maxSpan":null`) {
		t.Errorf("unbounded span should encode as null: %s", data)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		`{`,
		`{"links":[{"name":"x","bandwidth":1,"maxSpan":1,"costFixed":1}],"nodes":[{"name":"n","kind":"router","cost":1}]}`,
		`{"links":[]}`, // fails validation: no links
		`{"links":[{"name":"x","bandwidth":-1,"maxSpan":1,"costFixed":1}]}`,
	}
	for i, c := range cases {
		if _, err := Decode([]byte(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestKindByName(t *testing.T) {
	for _, kind := range []NodeKind{Repeater, Mux, Demux} {
		got, err := KindByName(kind.String())
		if err != nil || got != kind {
			t.Errorf("KindByName(%q) = %v, %v", kind.String(), got, err)
		}
	}
	if _, err := KindByName("bogus"); err == nil {
		t.Error("unknown kind should fail")
	}
}

package library

import (
	"encoding/json"
	"fmt"
	"math"
)

// JSON schema for libraries:
//
//	{"links":[{"name":"radio","bandwidth":11,"maxSpan":null,"costPerLength":2}],
//	 "nodes":[{"name":"mux","kind":"mux","cost":0}]}
//
// A null or absent maxSpan means the link is length-parametric
// (unbounded span).

type jsonLibrary struct {
	Links []jsonLink `json:"links"`
	Nodes []jsonNode `json:"nodes,omitempty"`
}

type jsonLink struct {
	Name          string   `json:"name"`
	Bandwidth     float64  `json:"bandwidth"`
	MaxSpan       *float64 `json:"maxSpan"`
	CostFixed     float64  `json:"costFixed,omitempty"`
	CostPerLength float64  `json:"costPerLength,omitempty"`
}

type jsonNode struct {
	Name string  `json:"name"`
	Kind string  `json:"kind"`
	Cost float64 `json:"cost"`
}

// MarshalJSON encodes the library; unbounded spans become null.
func (lib *Library) MarshalJSON() ([]byte, error) {
	out := jsonLibrary{}
	for _, l := range lib.Links {
		jl := jsonLink{
			Name:          l.Name,
			Bandwidth:     l.Bandwidth,
			CostFixed:     l.CostFixed,
			CostPerLength: l.CostPerLength,
		}
		if !l.Unbounded() {
			span := l.MaxSpan
			jl.MaxSpan = &span
		}
		out.Links = append(out.Links, jl)
	}
	for _, n := range lib.Nodes {
		out.Nodes = append(out.Nodes, jsonNode{Name: n.Name, Kind: n.Kind.String(), Cost: n.Cost})
	}
	return json.Marshal(out)
}

// Decode parses a library serialized by MarshalJSON and validates it.
func Decode(data []byte) (*Library, error) {
	var in jsonLibrary
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("library: decode: %w", err)
	}
	lib := &Library{}
	for _, l := range in.Links {
		span := math.Inf(1)
		if l.MaxSpan != nil {
			span = *l.MaxSpan
		}
		lib.Links = append(lib.Links, Link{
			Name:          l.Name,
			Bandwidth:     l.Bandwidth,
			MaxSpan:       span,
			CostFixed:     l.CostFixed,
			CostPerLength: l.CostPerLength,
		})
	}
	for _, n := range in.Nodes {
		kind, err := KindByName(n.Kind)
		if err != nil {
			return nil, fmt.Errorf("library: decode: %w", err)
		}
		lib.Nodes = append(lib.Nodes, Node{Name: n.Name, Kind: kind, Cost: n.Cost})
	}
	if err := lib.Validate(); err != nil {
		return nil, err
	}
	return lib, nil
}

// KindByName is the inverse of NodeKind.String.
func KindByName(name string) (NodeKind, error) {
	switch name {
	case "repeater":
		return Repeater, nil
	case "mux":
		return Mux, nil
	case "demux":
		return Demux, nil
	default:
		return 0, fmt.Errorf("library: unknown node kind %q", name)
	}
}

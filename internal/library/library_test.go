package library

import (
	"math"
	"testing"
)

func validLibrary() *Library {
	return &Library{
		Links: []Link{
			{Name: "radio", Bandwidth: 11, MaxSpan: math.Inf(1), CostPerLength: 2},
			{Name: "optical", Bandwidth: 1000, MaxSpan: math.Inf(1), CostPerLength: 4},
			{Name: "segment", Bandwidth: 5, MaxSpan: 0.6, CostFixed: 1},
		},
		Nodes: []Node{
			{Name: "rep", Kind: Repeater, Cost: 1},
			{Name: "rep-cheap", Kind: Repeater, Cost: 0.5},
			{Name: "mux4", Kind: Mux, Cost: 2},
			{Name: "demux4", Kind: Demux, Cost: 2},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := validLibrary().Validate(); err != nil {
		t.Errorf("valid library rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		lib  Library
	}{
		{"no links", Library{}},
		{"empty link name", Library{Links: []Link{{Bandwidth: 1, MaxSpan: 1, CostFixed: 1}}}},
		{"duplicate names", Library{Links: []Link{
			{Name: "x", Bandwidth: 1, MaxSpan: 1, CostFixed: 1},
			{Name: "x", Bandwidth: 2, MaxSpan: 1, CostFixed: 1},
		}}},
		{"zero bandwidth", Library{Links: []Link{{Name: "x", MaxSpan: 1, CostFixed: 1}}}},
		{"zero span", Library{Links: []Link{{Name: "x", Bandwidth: 1, CostFixed: 1}}}},
		{"negative cost", Library{Links: []Link{{Name: "x", Bandwidth: 1, MaxSpan: 1, CostFixed: -1}}}},
		{"free link", Library{Links: []Link{{Name: "x", Bandwidth: 1, MaxSpan: 1}}}},
		{"bad node name", Library{
			Links: []Link{{Name: "x", Bandwidth: 1, MaxSpan: 1, CostFixed: 1}},
			Nodes: []Node{{Kind: Repeater}},
		}},
		{"node/link name clash", Library{
			Links: []Link{{Name: "x", Bandwidth: 1, MaxSpan: 1, CostFixed: 1}},
			Nodes: []Node{{Name: "x", Kind: Repeater}},
		}},
		{"negative node cost", Library{
			Links: []Link{{Name: "x", Bandwidth: 1, MaxSpan: 1, CostFixed: 1}},
			Nodes: []Node{{Name: "n", Kind: Repeater, Cost: -1}},
		}},
	}
	for _, c := range cases {
		if err := c.lib.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestLinkCost(t *testing.T) {
	l := Link{Name: "radio", Bandwidth: 11, MaxSpan: math.Inf(1), CostPerLength: 2}
	if got := l.Cost(10); got != 20 {
		t.Errorf("Cost(10) = %v, want 20", got)
	}
	fixed := Link{Name: "seg", Bandwidth: 1, MaxSpan: 0.6, CostFixed: 3}
	if got := fixed.Cost(0.5); got != 3 {
		t.Errorf("fixed Cost(0.5) = %v, want 3", got)
	}
	mixed := Link{Name: "m", Bandwidth: 1, MaxSpan: 5, CostFixed: 1, CostPerLength: 2}
	if got := mixed.Cost(2); got != 5 {
		t.Errorf("mixed Cost(2) = %v, want 5", got)
	}
}

func TestLinkSpanPredicates(t *testing.T) {
	seg := Link{Name: "seg", Bandwidth: 1, MaxSpan: 0.6, CostFixed: 1}
	if !seg.CanSpan(0.6) || seg.CanSpan(0.61) {
		t.Error("CanSpan boundary wrong")
	}
	if seg.Unbounded() {
		t.Error("bounded link reported unbounded")
	}
	radio := Link{Name: "r", Bandwidth: 1, MaxSpan: math.Inf(1), CostPerLength: 1}
	if !radio.Unbounded() || !radio.CanSpan(1e12) {
		t.Error("unbounded link predicates wrong")
	}
}

func TestMaxBandwidth(t *testing.T) {
	lib := validLibrary()
	if got := lib.MaxBandwidth(); got != 1000 {
		t.Errorf("MaxBandwidth = %v, want 1000", got)
	}
}

func TestLinkByName(t *testing.T) {
	lib := validLibrary()
	if l, ok := lib.LinkByName("optical"); !ok || l.Bandwidth != 1000 {
		t.Errorf("LinkByName(optical) = %+v, %v", l, ok)
	}
	if _, ok := lib.LinkByName("zzz"); ok {
		t.Error("unknown link lookup should fail")
	}
}

func TestCheapestNode(t *testing.T) {
	lib := validLibrary()
	n, ok := lib.CheapestNode(Repeater)
	if !ok || n.Name != "rep-cheap" {
		t.Errorf("CheapestNode(Repeater) = %+v, %v", n, ok)
	}
	if _, ok := (&Library{}).CheapestNode(Mux); ok {
		t.Error("empty library should have no mux")
	}
}

func TestNodeCost(t *testing.T) {
	lib := validLibrary()
	if got := lib.NodeCost(Repeater); got != 0.5 {
		t.Errorf("NodeCost(Repeater) = %v, want 0.5", got)
	}
	if got := (&Library{}).NodeCost(Mux); !math.IsInf(got, 1) {
		t.Errorf("missing node kind cost = %v, want +Inf", got)
	}
}

func TestLinksWithBandwidth(t *testing.T) {
	lib := validLibrary()
	fast := lib.LinksWithBandwidth(30)
	if len(fast) != 1 || fast[0].Name != "optical" {
		t.Errorf("LinksWithBandwidth(30) = %+v", fast)
	}
	all := lib.LinksWithBandwidth(0)
	if len(all) != 3 {
		t.Errorf("LinksWithBandwidth(0) returned %d links", len(all))
	}
}

func TestNodeKindString(t *testing.T) {
	if Repeater.String() != "repeater" || Mux.String() != "mux" || Demux.String() != "demux" {
		t.Error("kind names wrong")
	}
	if NodeKind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

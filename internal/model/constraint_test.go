package model

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
)

func twoPortGraph(t *testing.T) (*ConstraintGraph, PortID, PortID) {
	t.Helper()
	cg := NewConstraintGraph(geom.Euclidean)
	u := cg.MustAddPort(Port{Name: "u", Position: geom.Pt(0, 0)})
	v := cg.MustAddPort(Port{Name: "v", Position: geom.Pt(3, 4)})
	return cg, u, v
}

func TestAddPortAndChannel(t *testing.T) {
	cg, u, v := twoPortGraph(t)
	ch := cg.MustAddChannel(Channel{Name: "a1", From: u, To: v, Bandwidth: 10})
	if cg.NumPorts() != 2 || cg.NumChannels() != 1 {
		t.Fatalf("counts: %d ports %d channels", cg.NumPorts(), cg.NumChannels())
	}
	if got := cg.Distance(ch); got != 5 {
		t.Errorf("Distance = %v, want 5", got)
	}
	if got := cg.Bandwidth(ch); got != 10 {
		t.Errorf("Bandwidth = %v, want 10", got)
	}
	if err := cg.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestNilNormDefaultsToEuclidean(t *testing.T) {
	cg := NewConstraintGraph(nil)
	if cg.Norm().Name() != "euclidean" {
		t.Errorf("default norm = %q", cg.Norm().Name())
	}
}

func TestManhattanDistance(t *testing.T) {
	cg := NewConstraintGraph(geom.Manhattan)
	u := cg.MustAddPort(Port{Name: "u", Position: geom.Pt(0, 0)})
	v := cg.MustAddPort(Port{Name: "v", Position: geom.Pt(3, 4)})
	ch := cg.MustAddChannel(Channel{Name: "a", From: u, To: v, Bandwidth: 1})
	if got := cg.Distance(ch); got != 7 {
		t.Errorf("Manhattan distance = %v, want 7", got)
	}
}

func TestAddPortErrors(t *testing.T) {
	cg, _, _ := twoPortGraph(t)
	if _, err := cg.AddPort(Port{Name: ""}); err == nil {
		t.Error("empty name should be rejected")
	}
	if _, err := cg.AddPort(Port{Name: "u"}); err == nil {
		t.Error("duplicate name should be rejected")
	}
	if _, err := cg.AddPort(Port{Name: "w", Position: geom.Pt(math.NaN(), 0)}); err == nil {
		t.Error("NaN position should be rejected")
	}
}

func TestAddChannelErrors(t *testing.T) {
	cg, u, v := twoPortGraph(t)
	cg.MustAddChannel(Channel{Name: "a1", From: u, To: v, Bandwidth: 10})
	cases := []Channel{
		{Name: "", From: u, To: v, Bandwidth: 1},
		{Name: "a1", From: u, To: v, Bandwidth: 1},  // duplicate
		{Name: "a2", From: u, To: u, Bandwidth: 1},  // self-loop
		{Name: "a3", From: u, To: v, Bandwidth: 0},  // zero bandwidth
		{Name: "a4", From: u, To: v, Bandwidth: -5}, // negative
		{Name: "a5", From: u, To: 99, Bandwidth: 1}, // dangling
		{Name: "a6", From: u, To: v, Bandwidth: math.Inf(1)},
	}
	for _, c := range cases {
		if _, err := cg.AddChannel(c); err == nil {
			t.Errorf("channel %+v should be rejected", c)
		}
	}
}

func TestLookups(t *testing.T) {
	cg, u, v := twoPortGraph(t)
	ch := cg.MustAddChannel(Channel{Name: "a1", From: u, To: v, Bandwidth: 10})
	if id, ok := cg.PortByName("v"); !ok || id != v {
		t.Errorf("PortByName(v) = %v, %v", id, ok)
	}
	if _, ok := cg.PortByName("zzz"); ok {
		t.Error("unknown port lookup should fail")
	}
	if id, ok := cg.ChannelByName("a1"); !ok || id != ch {
		t.Errorf("ChannelByName(a1) = %v, %v", id, ok)
	}
	if _, ok := cg.ChannelByName("zzz"); ok {
		t.Error("unknown channel lookup should fail")
	}
}

func TestChannelIDsAndAggregates(t *testing.T) {
	cg, u, v := twoPortGraph(t)
	cg.MustAddChannel(Channel{Name: "b", From: u, To: v, Bandwidth: 10})
	cg.MustAddChannel(Channel{Name: "a", From: v, To: u, Bandwidth: 5})
	ids := cg.ChannelIDs()
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Errorf("ChannelIDs = %v", ids)
	}
	if got := cg.TotalBandwidth(); got != 15 {
		t.Errorf("TotalBandwidth = %v", got)
	}
	names := cg.SortedChannelNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("SortedChannelNames = %v", names)
	}
}

func TestValidateEmptyGraph(t *testing.T) {
	cg := NewConstraintGraph(nil)
	if err := cg.Validate(); err == nil {
		t.Error("empty graph should fail validation")
	}
}

func TestDotOutput(t *testing.T) {
	cg, u, v := twoPortGraph(t)
	cg.MustAddChannel(Channel{Name: "a1", From: u, To: v, Bandwidth: 10})
	dot := cg.Dot()
	for _, want := range []string{"digraph", `"u"`, `"v"`, "a1", "d=5.00", "b=10.0"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	cg := NewConstraintGraph(geom.Manhattan)
	u := cg.MustAddPort(Port{Name: "u", Module: "M1", Position: geom.Pt(1.5, -2)})
	v := cg.MustAddPort(Port{Name: "v", Module: "M2", Position: geom.Pt(4, 6)})
	cg.MustAddChannel(Channel{Name: "a1", From: u, To: v, Bandwidth: 12.5})
	cg.MustAddChannel(Channel{Name: "a2", From: v, To: u, Bandwidth: 3})

	data, err := json.Marshal(cg)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := DecodeConstraintGraph(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Norm().Name() != "manhattan" {
		t.Errorf("norm = %q", got.Norm().Name())
	}
	if got.NumPorts() != 2 || got.NumChannels() != 2 {
		t.Fatalf("counts: %d ports %d channels", got.NumPorts(), got.NumChannels())
	}
	for i := range cg.ChannelIDs() {
		id := ChannelID(i)
		if cg.Distance(id) != got.Distance(id) {
			t.Errorf("channel %d distance changed: %v vs %v", i, cg.Distance(id), got.Distance(id))
		}
		if cg.Bandwidth(id) != got.Bandwidth(id) {
			t.Errorf("channel %d bandwidth changed", i)
		}
	}
	if p := got.Port(u); p.Module != "M1" {
		t.Errorf("module lost: %+v", p)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		`{`,
		`{"norm":"bogus","ports":[],"channels":[]}`,
		`{"norm":"euclidean","ports":[{"name":"u","x":0,"y":0}],"channels":[{"name":"c","from":"u","to":"missing","bandwidth":1}]}`,
		`{"norm":"euclidean","ports":[{"name":"u","x":0,"y":0}],"channels":[{"name":"c","from":"missing","to":"u","bandwidth":1}]}`,
		`{"norm":"euclidean","ports":[{"name":"u","x":0,"y":0},{"name":"u","x":1,"y":1}],"channels":[]}`,
		`{"norm":"euclidean","ports":[{"name":"u","x":0,"y":0},{"name":"v","x":1,"y":1}],"channels":[{"name":"c","from":"u","to":"v","bandwidth":-1}]}`,
	}
	for i, c := range cases {
		if _, err := DecodeConstraintGraph([]byte(c)); err == nil {
			t.Errorf("case %d should fail to decode", i)
		}
	}
}

func TestProjection(t *testing.T) {
	cg := NewConstraintGraph(geom.Euclidean)
	a := cg.MustAddPort(Port{Name: "a", Position: geom.Pt(0, 0)})
	b := cg.MustAddPort(Port{Name: "b", Position: geom.Pt(1, 0)})
	c := cg.MustAddPort(Port{Name: "c", Position: geom.Pt(2, 0)})
	ab := cg.MustAddChannel(Channel{Name: "ab", From: a, To: b, Bandwidth: 1})
	bc := cg.MustAddChannel(Channel{Name: "bc", From: b, To: c, Bandwidth: 2})
	cg.MustAddChannel(Channel{Name: "ca", From: c, To: a, Bandwidth: 3})

	sub, err := cg.Projection([]ChannelID{ab, bc})
	if err != nil {
		t.Fatalf("Projection: %v", err)
	}
	if sub.NumChannels() != 2 {
		t.Errorf("projected channels = %d, want 2", sub.NumChannels())
	}
	if sub.NumPorts() != 3 {
		t.Errorf("projected ports = %d, want 3 (a, b, c all touched)", sub.NumPorts())
	}
	// Distances preserved.
	id, ok := sub.ChannelByName("bc")
	if !ok {
		t.Fatal("channel bc lost in projection")
	}
	if sub.Distance(id) != 1 {
		t.Errorf("projected distance = %v, want 1", sub.Distance(id))
	}
	if _, err := cg.Projection([]ChannelID{99}); err == nil {
		t.Error("projection of unknown channel should fail")
	}
}

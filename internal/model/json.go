package model

import (
	"encoding/json"
	"fmt"

	"repro/internal/geom"
)

// jsonGraph is the serialized form of a ConstraintGraph. Positions are
// explicit and distances are derived on load, so a serialized graph can
// never carry inconsistent arc lengths.
type jsonGraph struct {
	Norm     string        `json:"norm"`
	Ports    []jsonPort    `json:"ports"`
	Channels []jsonChannel `json:"channels"`
}

type jsonPort struct {
	Name   string  `json:"name"`
	Module string  `json:"module,omitempty"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
}

type jsonChannel struct {
	Name      string  `json:"name"`
	From      string  `json:"from"`
	To        string  `json:"to"`
	Bandwidth float64 `json:"bandwidth"`
}

// MarshalJSON encodes the graph with port references by name.
func (cg *ConstraintGraph) MarshalJSON() ([]byte, error) {
	out := jsonGraph{Norm: cg.norm.Name()}
	for _, p := range cg.ports {
		out.Ports = append(out.Ports, jsonPort{
			Name:   p.Name,
			Module: p.Module,
			X:      p.Position.X,
			Y:      p.Position.Y,
		})
	}
	for _, c := range cg.channels {
		out.Channels = append(out.Channels, jsonChannel{
			Name:      c.Name,
			From:      cg.ports[c.From].Name,
			To:        cg.ports[c.To].Name,
			Bandwidth: c.Bandwidth,
		})
	}
	return json.Marshal(out)
}

// DecodeConstraintGraph parses a graph serialized by MarshalJSON.
func DecodeConstraintGraph(data []byte) (*ConstraintGraph, error) {
	var in jsonGraph
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("model: decode: %w", err)
	}
	norm, err := geom.NormByName(in.Norm)
	if err != nil {
		return nil, fmt.Errorf("model: decode: %w", err)
	}
	cg := NewConstraintGraph(norm)
	for _, p := range in.Ports {
		if _, err := cg.AddPort(Port{
			Name:     p.Name,
			Module:   p.Module,
			Position: geom.Pt(p.X, p.Y),
		}); err != nil {
			return nil, fmt.Errorf("model: decode: %w", err)
		}
	}
	for _, c := range in.Channels {
		from, ok := cg.PortByName(c.From)
		if !ok {
			return nil, fmt.Errorf("model: decode: channel %q references unknown port %q", c.Name, c.From)
		}
		to, ok := cg.PortByName(c.To)
		if !ok {
			return nil, fmt.Errorf("model: decode: channel %q references unknown port %q", c.Name, c.To)
		}
		if _, err := cg.AddChannel(Channel{
			Name:      c.Name,
			From:      from,
			To:        to,
			Bandwidth: c.Bandwidth,
		}); err != nil {
			return nil, fmt.Errorf("model: decode: %w", err)
		}
	}
	return cg, nil
}

// Projection returns the projection G^k of Definition 3.1: a new
// constraint graph containing only the given channels and the ports they
// touch. Port and channel names are preserved.
func (cg *ConstraintGraph) Projection(channels []ChannelID) (*ConstraintGraph, error) {
	sub := NewConstraintGraph(cg.norm)
	portMap := make(map[PortID]PortID)
	for _, id := range channels {
		if int(id) < 0 || int(id) >= len(cg.channels) {
			return nil, fmt.Errorf("model: projection: unknown channel %d", id)
		}
		c := cg.channels[id]
		for _, end := range []PortID{c.From, c.To} {
			if _, done := portMap[end]; !done {
				newID, err := sub.AddPort(cg.ports[end])
				if err != nil {
					return nil, err
				}
				portMap[end] = newID
			}
		}
		if _, err := sub.AddChannel(Channel{
			Name:      c.Name,
			From:      portMap[c.From],
			To:        portMap[c.To],
			Bandwidth: c.Bandwidth,
		}); err != nil {
			return nil, err
		}
	}
	return sub, nil
}

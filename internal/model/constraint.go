// Package model implements the communication constraint graph of
// Definition 2.1: a directed graph whose vertices are ports of
// computational modules (each with a position in the plane) and whose
// arcs are point-to-point unidirectional communication channels, each
// carrying two arc properties — the distance d(a) between its endpoints
// and the required bandwidth b(a).
//
// The constraint graph is the sole input of the synthesis flow besides
// the communication library: per the paper's orthogonalization of
// concerns, module functionality is abstracted away entirely.
package model

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/graph"
)

// PortID identifies a port vertex of a constraint graph.
type PortID = graph.VertexID

// ChannelID identifies a constraint arc (a virtual channel).
type ChannelID = graph.ArcID

// Port is a vertex of the constraint graph: one input or output port of a
// computational module, at a fixed position.
type Port struct {
	// Name is a human-readable identifier ("A.out0"). Names are unique
	// within a graph.
	Name string
	// Module optionally names the computational module owning the port.
	// Ports of the same module may share a position (the paper's WAN
	// example adopts exactly that approximation).
	Module string
	// Position is p(v) of Definition 2.1.
	Position geom.Point
}

// Channel is a constraint arc: a point-to-point unidirectional virtual
// channel with its two arc properties.
type Channel struct {
	// Name is a human-readable identifier ("a1"). Names are unique
	// within a graph.
	Name string
	// From and To are the source and destination ports.
	From, To PortID
	// Bandwidth is b(a), in the application's bandwidth unit (e.g. Mbps).
	Bandwidth float64
}

// ConstraintGraph is the communication constraint graph G(V, A).
// Construct it with NewConstraintGraph and the Add* methods.
type ConstraintGraph struct {
	norm     geom.Norm
	g        *graph.Digraph
	ports    []Port
	channels []Channel
	byName   map[string]PortID
}

// NewConstraintGraph returns an empty constraint graph measuring arc
// lengths with the given norm. A nil norm defaults to Euclidean.
func NewConstraintGraph(norm geom.Norm) *ConstraintGraph {
	if norm == nil {
		norm = geom.Euclidean
	}
	return &ConstraintGraph{
		norm:   norm,
		g:      &graph.Digraph{},
		byName: make(map[string]PortID),
	}
}

// Norm returns the norm used to measure arc lengths.
func (cg *ConstraintGraph) Norm() geom.Norm { return cg.norm }

// AddPort adds a port vertex and returns its ID. Port names must be
// unique and non-empty.
func (cg *ConstraintGraph) AddPort(p Port) (PortID, error) {
	if p.Name == "" {
		return 0, fmt.Errorf("model: port name must be non-empty")
	}
	if _, dup := cg.byName[p.Name]; dup {
		return 0, fmt.Errorf("model: duplicate port name %q", p.Name)
	}
	if !p.Position.IsFinite() {
		return 0, fmt.Errorf("model: port %q has non-finite position %v", p.Name, p.Position)
	}
	id := cg.g.AddVertex()
	cg.ports = append(cg.ports, p)
	cg.byName[p.Name] = id
	return id, nil
}

// MustAddPort is AddPort that panics on error, for programmatic builders.
func (cg *ConstraintGraph) MustAddPort(p Port) PortID {
	id, err := cg.AddPort(p)
	if err != nil {
		panic(err)
	}
	return id
}

// AddChannel adds a constraint arc and returns its ID. The channel's
// distance is derived from the endpoint positions under the graph norm
// (keeping d(a) consistent with p(u), p(v) as Definition 2.1 requires).
func (cg *ConstraintGraph) AddChannel(c Channel) (ChannelID, error) {
	if c.Name == "" {
		return 0, fmt.Errorf("model: channel name must be non-empty")
	}
	for _, existing := range cg.channels {
		if existing.Name == c.Name {
			return 0, fmt.Errorf("model: duplicate channel name %q", c.Name)
		}
	}
	if c.Bandwidth <= 0 || math.IsNaN(c.Bandwidth) || math.IsInf(c.Bandwidth, 0) {
		return 0, fmt.Errorf("model: channel %q bandwidth %g must be positive and finite", c.Name, c.Bandwidth)
	}
	id, err := cg.g.AddArc(c.From, c.To)
	if err != nil {
		return 0, fmt.Errorf("model: channel %q: %w", c.Name, err)
	}
	cg.channels = append(cg.channels, c)
	return id, nil
}

// MustAddChannel is AddChannel that panics on error.
func (cg *ConstraintGraph) MustAddChannel(c Channel) ChannelID {
	id, err := cg.AddChannel(c)
	if err != nil {
		panic(err)
	}
	return id
}

// NumPorts returns the number of port vertices.
func (cg *ConstraintGraph) NumPorts() int { return len(cg.ports) }

// NumChannels returns the number of constraint arcs.
func (cg *ConstraintGraph) NumChannels() int { return len(cg.channels) }

// Port returns the port with the given ID.
func (cg *ConstraintGraph) Port(id PortID) Port { return cg.ports[id] }

// Channel returns the channel with the given ID.
func (cg *ConstraintGraph) Channel(id ChannelID) Channel { return cg.channels[id] }

// PortByName looks a port up by name.
func (cg *ConstraintGraph) PortByName(name string) (PortID, bool) {
	id, ok := cg.byName[name]
	return id, ok
}

// ChannelByName looks a channel up by name.
func (cg *ConstraintGraph) ChannelByName(name string) (ChannelID, bool) {
	for i, c := range cg.channels {
		if c.Name == name {
			return ChannelID(i), true
		}
	}
	return 0, false
}

// ChannelIDs returns all channel IDs in insertion order.
func (cg *ConstraintGraph) ChannelIDs() []ChannelID {
	ids := make([]ChannelID, len(cg.channels))
	for i := range ids {
		ids[i] = ChannelID(i)
	}
	return ids
}

// Distance returns d(a): the norm distance between the channel's
// endpoint positions.
func (cg *ConstraintGraph) Distance(id ChannelID) float64 {
	c := cg.channels[id]
	return cg.norm.Distance(cg.ports[c.From].Position, cg.ports[c.To].Position)
}

// Bandwidth returns b(a) for the channel.
func (cg *ConstraintGraph) Bandwidth(id ChannelID) float64 {
	return cg.channels[id].Bandwidth
}

// Position returns p(v) for the port.
func (cg *ConstraintGraph) Position(id PortID) geom.Point {
	return cg.ports[id].Position
}

// Digraph exposes the underlying directed graph (read-only use).
func (cg *ConstraintGraph) Digraph() *graph.Digraph { return cg.g }

// Validate checks structural invariants: every channel endpoint exists,
// bandwidths are positive, no two ports share a name, and every channel
// connects two distinct ports. (Distance consistency holds by
// construction, since distances are always derived from positions.)
func (cg *ConstraintGraph) Validate() error {
	if len(cg.ports) == 0 {
		return fmt.Errorf("model: constraint graph has no ports")
	}
	for i, c := range cg.channels {
		if !cg.g.HasVertex(c.From) || !cg.g.HasVertex(c.To) {
			return fmt.Errorf("model: channel %q (#%d) has dangling endpoint", c.Name, i)
		}
		if c.From == c.To {
			return fmt.Errorf("model: channel %q is a self-loop", c.Name)
		}
		if c.Bandwidth <= 0 {
			return fmt.Errorf("model: channel %q has non-positive bandwidth", c.Name)
		}
	}
	return nil
}

// SortedChannelNames returns channel names sorted lexicographically;
// handy for deterministic reports.
func (cg *ConstraintGraph) SortedChannelNames() []string {
	names := make([]string, len(cg.channels))
	for i, c := range cg.channels {
		names[i] = c.Name
	}
	sort.Strings(names)
	return names
}

// TotalBandwidth returns Σ b(a) over all channels.
func (cg *ConstraintGraph) TotalBandwidth() float64 {
	var sum float64
	for _, c := range cg.channels {
		sum += c.Bandwidth
	}
	return sum
}

// Dot renders the constraint graph in Graphviz DOT syntax, labelling
// arcs with their name, distance and bandwidth.
func (cg *ConstraintGraph) Dot() string {
	return cg.g.Dot(graph.DotOptions{
		Name: "constraint",
		VertexLabel: func(v graph.VertexID) string {
			return cg.ports[v].Name
		},
		ArcLabel: func(a graph.ArcID) string {
			c := cg.channels[a]
			return fmt.Sprintf("%s d=%.2f b=%.1f", c.Name, cg.Distance(a), c.Bandwidth)
		},
	})
}

package model

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// clampCoord maps arbitrary quick floats into a sane coordinate range.
func clampCoord(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e4)
}

func clampBW(v float64) float64 {
	v = math.Abs(clampCoord(v))
	if v < 1e-3 {
		return 1
	}
	return v
}

// Property: JSON round-trips preserve distances and bandwidths for
// randomly generated graphs.
func TestJSONRoundTripProperty(t *testing.T) {
	f := func(coords []float64, bws []float64) bool {
		if len(coords) < 4 || len(bws) == 0 {
			return true
		}
		cg := NewConstraintGraph(geom.Euclidean)
		var ports []PortID
		for i := 0; i+1 < len(coords) && len(ports) < 8; i += 2 {
			ports = append(ports, cg.MustAddPort(Port{
				Name:     "p" + string(rune('0'+len(ports))),
				Position: geom.Pt(clampCoord(coords[i]), clampCoord(coords[i+1])),
			}))
		}
		if len(ports) < 2 {
			return true
		}
		added := 0
		for i, bw := range bws {
			u := ports[i%len(ports)]
			v := ports[(i+1)%len(ports)]
			if u == v {
				continue
			}
			name := "c" + string(rune('0'+added))
			if _, err := cg.AddChannel(Channel{
				Name: name, From: u, To: v, Bandwidth: clampBW(bw),
			}); err == nil {
				added++
			}
			if added >= 8 {
				break
			}
		}
		if added == 0 {
			return true
		}
		data, err := json.Marshal(cg)
		if err != nil {
			return false
		}
		got, err := DecodeConstraintGraph(data)
		if err != nil {
			return false
		}
		if got.NumPorts() != cg.NumPorts() || got.NumChannels() != cg.NumChannels() {
			return false
		}
		for i := 0; i < cg.NumChannels(); i++ {
			id := ChannelID(i)
			if math.Abs(got.Distance(id)-cg.Distance(id)) > 1e-9 {
				return false
			}
			if got.Bandwidth(id) != cg.Bandwidth(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Distance is symmetric under channel reversal and consistent
// with the norm.
func TestDistanceConsistencyProperty(t *testing.T) {
	f := func(x1, y1, x2, y2, bw float64) bool {
		p1 := geom.Pt(clampCoord(x1), clampCoord(y1))
		p2 := geom.Pt(clampCoord(x2), clampCoord(y2))
		cg := NewConstraintGraph(geom.Manhattan)
		u := cg.MustAddPort(Port{Name: "u", Position: p1})
		v := cg.MustAddPort(Port{Name: "v", Position: p2})
		if p1.Eq(p2) {
			return true // self-distance channels carry d=0; fine but skip
		}
		fwd := cg.MustAddChannel(Channel{Name: "f", From: u, To: v, Bandwidth: clampBW(bw)})
		rev := cg.MustAddChannel(Channel{Name: "r", From: v, To: u, Bandwidth: clampBW(bw)})
		if cg.Distance(fwd) != cg.Distance(rev) {
			return false
		}
		return cg.Distance(fwd) == geom.Manhattan.Distance(p1, p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package model

import "testing"

// FuzzDecodeConstraintGraph ensures the JSON decoder never panics and,
// when it accepts an input, produces a graph that re-validates and
// re-encodes.
func FuzzDecodeConstraintGraph(f *testing.F) {
	f.Add([]byte(`{"norm":"euclidean","ports":[{"name":"u","x":0,"y":0},{"name":"v","x":3,"y":4}],"channels":[{"name":"c","from":"u","to":"v","bandwidth":10}]}`))
	f.Add([]byte(`{"norm":"manhattan","ports":[],"channels":[]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"norm":"euclidean","ports":[{"name":"u","x":1e308,"y":-1e308}],"channels":[]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cg, err := DecodeConstraintGraph(data)
		if err != nil {
			return
		}
		// Accepted graphs must be internally consistent.
		if cg.NumChannels() > 0 {
			if err := cg.Validate(); err != nil {
				t.Fatalf("accepted graph fails validation: %v", err)
			}
		}
		if _, err := cg.MarshalJSON(); err != nil {
			t.Fatalf("accepted graph fails to re-encode: %v", err)
		}
	})
}

// Package client is the cdcs-side HTTP client for a cdcsd daemon or
// fleet: submit a synthesis job, poll it to completion, and retry
// overload responses the way the daemon asks. The retry loop treats
// 429 and 503 — the shed and drain tiers — plus transport errors as
// retryable: it honors an explicit Retry-After hint when the server
// sends one and otherwise backs off exponentially with equal jitter,
// up to a capped attempt count.
//
// With multiple endpoints configured the client spreads retries
// across the fleet: a transport error (replica down, connection
// refused) rotates to the next endpoint immediately instead of
// sleeping through a backoff the dead replica will never honor, and a
// shed/drain response rotates too — Retry-After is a per-replica
// promise, so trying a different replica right away still honors it.
// Only once every endpoint has refused in a row does the client
// sleep (the largest Retry-After seen on the ring, or the backoff).
// A submission answered by a fleet replica names the replica the job
// lives on (the envelope's server field); the client pins itself
// there so Get/Wait poll the right member after a peer forward.
//
// Everything time-shaped (sleeper, jitter) is injectable so the
// backoff schedule is unit-testable without wall-clock waits.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/obs"
)

// userAgent identifies this client build on every request
// ("cdcs-client/<version>") so fleet operators can tell client
// populations apart in the daemon's request logs.
var userAgent = "cdcs-client/" + buildinfo.Version()

// Config tunes the client. The zero value (plus a BaseURL) retries 5
// attempts with 100ms base backoff capped at 5s.
type Config struct {
	// BaseURL is the daemon root, e.g. "http://localhost:8080".
	BaseURL string
	// BaseURLs lists every replica of a cdcsd fleet; retries rotate
	// through them in order before any backoff sleep. BaseURL, when
	// also set, is tried first. Duplicates collapse after
	// normalization (whitespace and trailing slash stripped).
	BaseURLs []string
	// MaxAttempts bounds tries per request (first attempt included);
	// <=0 means 5.
	MaxAttempts int
	// BaseBackoff is the first retry's nominal delay; doubles per
	// attempt. <=0 means 100ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the nominal delay. <=0 means 5s.
	MaxBackoff time.Duration
	// Jitter returns a uniform [0,1) sample for equal jitter
	// (delay = nominal/2 + jitter*nominal/2); nil means math/rand.
	Jitter func() float64
	// Sleep waits between attempts; nil means time.Sleep. Tests inject
	// a recorder to assert the schedule.
	Sleep func(time.Duration)
	// HTTP is the transport; nil means a client with a 30s timeout.
	HTTP *http.Client
	// Logger receives retry warnings; nil disables.
	Logger *slog.Logger
}

// Client talks to one cdcsd daemon or a fleet of replicas.
type Client struct {
	mu          sync.Mutex // guards bases and cur
	bases       []string
	cur         int
	maxAttempts int
	baseBackoff time.Duration
	maxBackoff  time.Duration
	jitter      func() float64
	sleep       func(time.Duration)
	http        *http.Client
	log         *slog.Logger
}

// New builds a Client from cfg, resolving defaults.
func New(cfg Config) *Client {
	c := &Client{
		bases:       normalizeBases(cfg.BaseURL, cfg.BaseURLs),
		maxAttempts: cfg.MaxAttempts,
		baseBackoff: cfg.BaseBackoff,
		maxBackoff:  cfg.MaxBackoff,
		jitter:      cfg.Jitter,
		sleep:       cfg.Sleep,
		http:        cfg.HTTP,
		log:         cfg.Logger,
	}
	if c.maxAttempts <= 0 {
		c.maxAttempts = 5
	}
	if c.baseBackoff <= 0 {
		c.baseBackoff = 100 * time.Millisecond
	}
	if c.maxBackoff <= 0 {
		c.maxBackoff = 5 * time.Second
	}
	if c.jitter == nil {
		c.jitter = rand.Float64
	}
	if c.sleep == nil {
		c.sleep = time.Sleep
	}
	if c.http == nil {
		c.http = &http.Client{Timeout: 30 * time.Second}
	}
	return c
}

// normalizeBases folds BaseURL and BaseURLs into one ordered, deduped
// endpoint ring. An all-empty config yields the single empty base the
// zero-value client always had (requests then hit bare paths).
func normalizeBases(first string, rest []string) []string {
	var bases []string
	seen := make(map[string]bool)
	for _, raw := range append([]string{first}, rest...) {
		b := strings.TrimSuffix(strings.TrimSpace(raw), "/")
		if b == "" || seen[b] {
			continue
		}
		seen[b] = true
		bases = append(bases, b)
	}
	if len(bases) == 0 {
		bases = []string{""}
	}
	return bases
}

// base returns the endpoint the next request should use.
func (c *Client) base() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bases[c.cur]
}

// ringSize is the number of distinct endpoints in the rotation.
func (c *Client) ringSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.bases)
}

// rotate advances to the next endpoint in the ring.
func (c *Client) rotate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.bases) > 1 {
		c.cur = (c.cur + 1) % len(c.bases)
	}
}

// pin parks the client on the replica that owns a just-accepted job —
// a fleet daemon may have forwarded the submission to its rendezvous
// owner, and polling any other replica would 404. Unknown owners are
// added to the ring.
func (c *Client) pin(job *Job) {
	target := strings.TrimSuffix(job.Server, "/")
	if target == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, b := range c.bases {
		if b == target {
			c.cur = i
			return
		}
	}
	c.bases = append(c.bases, target)
	c.cur = len(c.bases) - 1
}

// Job is the daemon's job envelope — the subset of GET /v1/jobs/{id}
// the client consumes; Result stays raw so the CLI can re-emit it
// verbatim as a -report file.
type Job struct {
	ID        string          `json:"id"`
	Workload  string          `json:"workload"`
	State     string          `json:"state"`
	Restarted bool            `json:"restarted,omitempty"`
	Admission string          `json:"admission,omitempty"`
	Server    string          `json:"server,omitempty"`
	TraceID   string          `json:"traceId,omitempty"`
	Error     string          `json:"error,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
}

// Terminal reports whether the job reached done or failed.
func (j *Job) Terminal() bool { return j.State == "done" || j.State == "failed" }

// StatusError is a non-2xx daemon response that exhausted retries (or
// was not retryable).
type StatusError struct {
	Code int
	Body string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Code, strings.TrimSpace(e.Body))
}

// retryable reports whether a status is worth another attempt: the
// shed tier (429) and the drain window (503) both carry Retry-After
// and both clear on their own.
func retryable(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// Submit POSTs a synthesis spec and returns the accepted job,
// retrying overload responses per the config. With a multi-endpoint
// ring a failed attempt rotates to the next replica immediately — a
// dead or shedding replica says nothing about its peers — and the
// client only sleeps once every endpoint has refused in a row, using
// the largest Retry-After seen on that pass (or the backoff).
func (c *Client) Submit(ctx context.Context, spec []byte) (*Job, error) {
	var (
		lastErr   error
		ringFails int           // consecutive failures since the last sleep
		ringHint  time.Duration // largest Retry-After this pass over the ring
		backoffs  int           // sleeps taken; drives the exponential
	)
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		base := c.base()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			base+"/v1/synthesize", bytes.NewReader(spec))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		job, retryAfter, err := c.do(req, http.StatusAccepted)
		if err == nil {
			c.pin(job)
			return job, nil
		}
		lastErr = err
		var se *StatusError
		if errors.As(err, &se) && !retryable(se.Code) {
			return nil, err
		}
		if attempt+1 >= c.maxAttempts {
			break
		}
		ringFails++
		if retryAfter > ringHint {
			ringHint = retryAfter
		}
		c.rotate()
		if ringFails < c.ringSize() {
			// Another replica is untried this pass: move on without
			// sleeping. The Retry-After (if any) binds only the
			// replica that sent it, and a refused connection deserves
			// no backoff at all.
			if c.log != nil {
				c.log.Warn("submit rotating to next endpoint",
					"attempt", attempt+1, "endpoint", base, "next", c.base(), "error", err.Error())
			}
			continue
		}
		delay := c.backoff(backoffs, ringHint)
		backoffs++
		ringFails, ringHint = 0, 0
		if c.log != nil {
			c.log.Warn("submit retry", "attempt", attempt+1, "delay", delay.String(), "error", err.Error())
		}
		c.sleep(delay)
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("submit failed after %d attempts: %w", c.maxAttempts, lastErr)
}

// Get fetches a job's current state from the pinned endpoint.
func (c *Client) Get(ctx context.Context, id string) (*Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base()+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	job, _, err := c.do(req, http.StatusOK)
	return job, err
}

// Wait polls the job every poll interval (via the injected sleeper)
// until it reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*Job, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		job, err := c.Get(ctx, id)
		if err != nil {
			return nil, err
		}
		if job.Terminal() {
			return job, nil
		}
		c.sleep(poll)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
}

// do runs one request and decodes the job envelope on the expected
// status; otherwise it returns a StatusError plus any Retry-After
// hint the response carried.
func (c *Client) do(req *http.Request, wantStatus int) (*Job, time.Duration, error) {
	c.stamp(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, 0, err
	}
	if resp.StatusCode != wantStatus {
		return nil, parseRetryAfter(resp.Header.Get("Retry-After")),
			&StatusError{Code: resp.StatusCode, Body: string(body)}
	}
	var job Job
	if err := json.Unmarshal(body, &job); err != nil {
		return nil, 0, fmt.Errorf("decode job envelope: %w", err)
	}
	return &job, 0, nil
}

// stamp sets the headers every request carries: the client
// User-Agent, and — when the request context carries a span context
// (obs.ContextWithSpanContext, or a live traced span) — the W3C
// traceparent that makes the daemon's spans children of the caller's
// trace.
func (c *Client) stamp(req *http.Request) {
	req.Header.Set("User-Agent", userAgent)
	if sc := obs.SpanContextFromContext(req.Context()); sc.Valid() {
		req.Header.Set(obs.TraceparentHeader, sc.Traceparent())
	}
}

// backoff computes the delay before retry number attempt+1: an
// explicit server hint verbatim, otherwise capped exponential with
// equal jitter so synchronized clients fan out.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	if retryAfter > 0 {
		return retryAfter
	}
	d := c.baseBackoff << attempt
	if d > c.maxBackoff || d <= 0 { // <=0: shift overflow
		d = c.maxBackoff
	}
	return d/2 + time.Duration(c.jitter()*float64(d/2))
}

// parseRetryAfter reads the whole-seconds Retry-After form the daemon
// emits; anything else (dates, garbage, absence) means no hint.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

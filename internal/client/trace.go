package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/obs"
)

// replicaTrace is one replica's GET /v1/traces/{traceID} answer.
type replicaTrace struct {
	TraceID string      `json:"traceId"`
	Server  string      `json:"server,omitempty"`
	Spans   []*obs.Span `json:"spans"`
}

// CollectTrace fans a GET /v1/traces/{traceID} out to every endpoint
// on the client's ring and stitches the partial span forests into one
// Perfetto-loadable Chrome trace_event file: each replica that holds
// spans becomes its own pid row (labeled with the replica's fleet
// address), overlapping spans within a replica spread across tid
// lanes. Replicas that never saw the trace (404) or are unreachable
// are skipped; an error is returned only when no replica held any
// spans. Ring order makes the output deterministic for a fixed fleet.
func (c *Client) CollectTrace(ctx context.Context, traceID string) ([]byte, error) {
	if traceID == "" {
		return nil, fmt.Errorf("collect trace: empty trace ID")
	}
	c.mu.Lock()
	bases := append([]string(nil), c.bases...)
	c.mu.Unlock()

	var sources []obs.TraceSource
	var lastErr error
	for _, base := range bases {
		rt, err := c.fetchTrace(ctx, base, traceID)
		if err != nil {
			lastErr = err
			continue
		}
		if rt == nil || len(rt.Spans) == 0 {
			continue
		}
		name := rt.Server
		if name == "" {
			name = base
		}
		sources = append(sources, obs.TraceSource{Name: name, Spans: rt.Spans})
	}
	if len(sources) == 0 {
		if lastErr != nil {
			return nil, fmt.Errorf("collect trace %s: no replica answered (last error: %w)", traceID, lastErr)
		}
		return nil, fmt.Errorf("collect trace %s: no replica holds spans for it", traceID)
	}
	return obs.ChromeExport(sources)
}

// fetchTrace asks one replica for its local spans of a trace; a 404
// (replica never touched the trace) returns nil without error.
func (c *Client) fetchTrace(ctx context.Context, base, traceID string) (*replicaTrace, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		base+"/v1/traces/"+traceID, nil)
	if err != nil {
		return nil, err
	}
	c.stamp(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &StatusError{Code: resp.StatusCode, Body: string(body)}
	}
	var rt replicaTrace
	if err := json.Unmarshal(body, &rt); err != nil {
		return nil, fmt.Errorf("decode trace from %s: %w", base, err)
	}
	return &rt, nil
}

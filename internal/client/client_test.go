package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSleeper records every delay the client sleeps, so tests assert
// the exact backoff schedule without waiting wall-clock time.
type fakeSleeper struct {
	delays []time.Duration
}

func (f *fakeSleeper) sleep(d time.Duration) { f.delays = append(f.delays, d) }

// overloadedServer returns 429 (optionally with Retry-After) for the
// first fail submissions, then accepts.
func overloadedServer(fail int, retryAfter string) (*httptest.Server, *int32) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := atomic.AddInt32(&calls, 1)
		if int(n) <= fail {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			http.Error(w, `{"error":"overloaded"}`, http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		_, _ = w.Write([]byte(`{"id":"j-000001","workload":"wan","state":"queued"}`))
	}))
	return ts, &calls
}

// TestBackoffSchedule pins the exponential equal-jitter schedule with
// a deterministic jitter of 1.0: delay(attempt) = base << attempt,
// capped at MaxBackoff.
func TestBackoffSchedule(t *testing.T) {
	ts, calls := overloadedServer(3, "")
	defer ts.Close()
	sl := &fakeSleeper{}
	c := New(Config{
		BaseURL:     ts.URL,
		MaxAttempts: 5,
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  150 * time.Millisecond,
		Jitter:      func() float64 { return 1.0 },
		Sleep:       sl.sleep,
	})
	job, err := c.Submit(context.Background(), []byte(`{"example":"wan"}`))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if job.ID != "j-000001" {
		t.Errorf("job id = %q", job.ID)
	}
	if got := atomic.LoadInt32(calls); got != 4 {
		t.Errorf("server saw %d calls, want 4 (3 rejections + 1 accept)", got)
	}
	// jitter=1.0 → delay = nominal/2 + nominal/2 = nominal.
	want := []time.Duration{100 * time.Millisecond, 150 * time.Millisecond, 150 * time.Millisecond}
	if len(sl.delays) != len(want) {
		t.Fatalf("slept %v, want %v", sl.delays, want)
	}
	for i := range want {
		if sl.delays[i] != want[i] {
			t.Errorf("delay %d = %v, want %v (200ms nominal must cap at 150ms)", i, sl.delays[i], want[i])
		}
	}
}

// TestJitterSpreadsDelays: jitter 0 halves the nominal delay — the
// equal-jitter lower bound.
func TestJitterSpreadsDelays(t *testing.T) {
	ts, _ := overloadedServer(1, "")
	defer ts.Close()
	sl := &fakeSleeper{}
	c := New(Config{
		BaseURL:     ts.URL,
		BaseBackoff: 100 * time.Millisecond,
		Jitter:      func() float64 { return 0 },
		Sleep:       sl.sleep,
	})
	if _, err := c.Submit(context.Background(), []byte(`{"example":"wan"}`)); err != nil {
		t.Fatal(err)
	}
	if len(sl.delays) != 1 || sl.delays[0] != 50*time.Millisecond {
		t.Errorf("delays = %v, want exactly [50ms]", sl.delays)
	}
}

// TestRetryAfterHonored: an explicit server hint replaces the
// computed backoff verbatim.
func TestRetryAfterHonored(t *testing.T) {
	ts, _ := overloadedServer(2, "3")
	defer ts.Close()
	sl := &fakeSleeper{}
	c := New(Config{
		BaseURL: ts.URL,
		Jitter:  func() float64 { return 1.0 },
		Sleep:   sl.sleep,
	})
	if _, err := c.Submit(context.Background(), []byte(`{"example":"wan"}`)); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{3 * time.Second, 3 * time.Second}
	if len(sl.delays) != len(want) {
		t.Fatalf("slept %v, want %v", sl.delays, want)
	}
	for i := range want {
		if sl.delays[i] != want[i] {
			t.Errorf("delay %d = %v, want the server's 3s hint", i, sl.delays[i])
		}
	}
}

// TestAttemptsCapped: a permanently overloaded server exhausts
// MaxAttempts and surfaces the last 429.
func TestAttemptsCapped(t *testing.T) {
	ts, calls := overloadedServer(1000, "")
	defer ts.Close()
	sl := &fakeSleeper{}
	c := New(Config{
		BaseURL:     ts.URL,
		MaxAttempts: 3,
		Jitter:      func() float64 { return 0 },
		Sleep:       sl.sleep,
	})
	_, err := c.Submit(context.Background(), []byte(`{"example":"wan"}`))
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want a wrapped 429 StatusError", err)
	}
	if got := atomic.LoadInt32(calls); got != 3 {
		t.Errorf("server saw %d calls, want exactly MaxAttempts = 3", got)
	}
	if len(sl.delays) != 2 {
		t.Errorf("slept %d times, want 2 (no sleep after the final attempt)", len(sl.delays))
	}
}

// TestNonRetryableFailsFast: a 400 must not be retried.
func TestNonRetryableFailsFast(t *testing.T) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		http.Error(w, `{"error":"bad spec"}`, http.StatusBadRequest)
	}))
	defer ts.Close()
	sl := &fakeSleeper{}
	c := New(Config{BaseURL: ts.URL, Sleep: sl.sleep})
	_, err := c.Submit(context.Background(), []byte(`{`))
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want StatusError 400", err)
	}
	if atomic.LoadInt32(&calls) != 1 || len(sl.delays) != 0 {
		t.Errorf("calls = %d sleeps = %d, want 1 and 0: client errors are not retryable",
			atomic.LoadInt32(&calls), len(sl.delays))
	}
}

// TestWaitPollsToTerminal drives Wait over a job that needs a few
// polls to finish, with the sleeper counting the polls.
func TestWaitPollsToTerminal(t *testing.T) {
	var gets int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if atomic.AddInt32(&gets, 1) < 3 {
			_, _ = w.Write([]byte(`{"id":"j-000001","state":"running"}`))
			return
		}
		_, _ = w.Write([]byte(`{"id":"j-000001","state":"done","result":{"cost":9.5}}`))
	}))
	defer ts.Close()
	sl := &fakeSleeper{}
	c := New(Config{BaseURL: ts.URL, Sleep: sl.sleep})
	job, err := c.Wait(context.Background(), "j-000001", 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != "done" || string(job.Result) != `{"cost":9.5}` {
		t.Errorf("job = %+v, want done with its result", job)
	}
	if len(sl.delays) != 2 {
		t.Errorf("polled %d sleeps, want 2", len(sl.delays))
	}
}

// TestDeadEndpointRotatesImmediately: with a fleet configured, a
// refused connection moves to the next replica without any sleep —
// backing off against a dead socket just wastes the deadline.
func TestDeadEndpointRotatesImmediately(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	ts, calls := overloadedServer(0, "")
	defer ts.Close()
	sl := &fakeSleeper{}
	c := New(Config{
		BaseURLs: []string{deadURL, ts.URL},
		Sleep:    sl.sleep,
	})
	job, err := c.Submit(context.Background(), []byte(`{"example":"wan"}`))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if job.ID != "j-000001" {
		t.Errorf("job id = %q", job.ID)
	}
	if len(sl.delays) != 0 {
		t.Errorf("slept %v, want no sleeps: rotation must be immediate", sl.delays)
	}
	if got := atomic.LoadInt32(calls); got != 1 {
		t.Errorf("live server saw %d calls, want 1", got)
	}
}

// TestShedRotatesToIdleReplica: a 429 from one replica retries on the
// next one immediately; its Retry-After binds only the sender.
func TestShedRotatesToIdleReplica(t *testing.T) {
	busy, busyCalls := overloadedServer(1000, "7")
	defer busy.Close()
	idle, idleCalls := overloadedServer(0, "")
	defer idle.Close()
	sl := &fakeSleeper{}
	c := New(Config{
		BaseURLs: []string{busy.URL, idle.URL},
		Sleep:    sl.sleep,
	})
	if _, err := c.Submit(context.Background(), []byte(`{"example":"wan"}`)); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if len(sl.delays) != 0 {
		t.Errorf("slept %v, want none: the idle replica was one rotation away", sl.delays)
	}
	if b, i := atomic.LoadInt32(busyCalls), atomic.LoadInt32(idleCalls); b != 1 || i != 1 {
		t.Errorf("calls busy=%d idle=%d, want 1/1", b, i)
	}
}

// TestRingExhaustedSleepsLargestHint: when every replica sheds in one
// pass, the client sleeps once with the largest Retry-After seen, then
// sweeps the ring again.
func TestRingExhaustedSleepsLargestHint(t *testing.T) {
	a, aCalls := overloadedServer(1, "2")
	defer a.Close()
	b, bCalls := overloadedServer(1, "5")
	defer b.Close()
	sl := &fakeSleeper{}
	c := New(Config{
		BaseURLs:    []string{a.URL, b.URL},
		MaxAttempts: 4,
		Jitter:      func() float64 { return 1.0 },
		Sleep:       sl.sleep,
	})
	job, err := c.Submit(context.Background(), []byte(`{"example":"wan"}`))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if job.ID != "j-000001" {
		t.Errorf("job id = %q", job.ID)
	}
	if len(sl.delays) != 1 || sl.delays[0] != 5*time.Second {
		t.Errorf("delays = %v, want exactly [5s] (the largest hint on the exhausted ring)", sl.delays)
	}
	if ac, bc := atomic.LoadInt32(aCalls), atomic.LoadInt32(bCalls); ac != 2 || bc != 1 {
		t.Errorf("calls a=%d b=%d, want 2/1 (sleep, then resume the sweep at a)", ac, bc)
	}
}

// TestSubmitPinsOwnerReplica: a fleet daemon names the replica a
// forwarded job lives on; Get/Wait must poll that owner, not whichever
// endpoint happened to take the submission.
func TestSubmitPinsOwnerReplica(t *testing.T) {
	var ownerGets int32
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&ownerGets, 1)
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"id":"j-000007","state":"done","result":{"cost":1.5}}`))
	}))
	defer owner.Close()
	var frontGets int32
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			atomic.AddInt32(&frontGets, 1)
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		_, _ = w.Write([]byte(`{"id":"j-000007","state":"queued","server":"` + owner.URL + `"}`))
	}))
	defer front.Close()
	sl := &fakeSleeper{}
	c := New(Config{BaseURL: front.URL, Sleep: sl.sleep})
	job, err := c.Submit(context.Background(), []byte(`{"example":"wan"}`))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if job.Server != owner.URL {
		t.Fatalf("job server = %q, want %q", job.Server, owner.URL)
	}
	fin, err := c.Wait(context.Background(), job.ID, time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if fin.State != "done" {
		t.Errorf("state = %q", fin.State)
	}
	if atomic.LoadInt32(&frontGets) != 0 || atomic.LoadInt32(&ownerGets) == 0 {
		t.Errorf("polls front=%d owner=%d, want all polls on the pinned owner",
			atomic.LoadInt32(&frontGets), atomic.LoadInt32(&ownerGets))
	}
}

// TestNormalizeBases pins dedup, trimming, and the empty fallback.
func TestNormalizeBases(t *testing.T) {
	got := normalizeBases("http://a:1/", []string{" http://b:2 ", "http://a:1", "", "http://b:2/"})
	want := []string{"http://a:1", "http://b:2"}
	if len(got) != len(want) {
		t.Fatalf("bases = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bases[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if empty := normalizeBases("", nil); len(empty) != 1 || empty[0] != "" {
		t.Errorf("empty config bases = %v, want the single empty base", empty)
	}
}

// TestRetryAfterParsing covers the header forms the daemon can emit
// and the garbage it never should.
func TestRetryAfterParsing(t *testing.T) {
	for in, want := range map[string]time.Duration{
		"":        0,
		"1":       time.Second,
		"30":      30 * time.Second,
		"-5":      0,
		"soon":    0,
		"1.5":     0,
		"Wed, 21": 0,
	} {
		if got := parseRetryAfter(in); got != want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", in, got, want)
		}
	}
}

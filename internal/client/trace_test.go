package client

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/buildinfo"
	"repro/internal/obs"
)

// TestRequestStamping: every client request carries the cdcs-client
// User-Agent, and a span context on the request context becomes a
// traceparent header; without one no header is sent.
func TestRequestStamping(t *testing.T) {
	type seen struct{ ua, tp string }
	var got []seen
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = append(got, seen{ua: r.Header.Get("User-Agent"), tp: r.Header.Get(obs.TraceparentHeader)})
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		_, _ = w.Write([]byte(`{"id":"j-000001","state":"queued"}`))
	}))
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL})

	if _, err := c.Submit(context.Background(), []byte(`{"example":"wan"}`)); err != nil {
		t.Fatal(err)
	}
	sc := obs.NewIDSource(42).NewRoot()
	ctx := obs.ContextWithSpanContext(context.Background(), sc)
	if _, err := c.Submit(ctx, []byte(`{"example":"wan"}`)); err != nil {
		t.Fatal(err)
	}

	if len(got) != 2 {
		t.Fatalf("server saw %d requests", len(got))
	}
	wantUA := "cdcs-client/" + buildinfo.Version()
	for i, s := range got {
		if s.ua != wantUA {
			t.Errorf("request %d User-Agent = %q, want %q", i, s.ua, wantUA)
		}
	}
	if got[0].tp != "" {
		t.Errorf("context without a span stamped traceparent %q", got[0].tp)
	}
	if want := sc.Traceparent(); got[1].tp != want {
		t.Errorf("traceparent = %q, want %q", got[1].tp, want)
	}
}

// traceReplica fakes one replica's GET /v1/traces/{id} endpoint.
func traceReplica(t *testing.T, name, body string) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/traces/") {
			http.NotFound(w, r)
			return
		}
		if body == "" {
			http.Error(w, `{"error":"no local spans"}`, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(body))
	}))
}

// TestCollectTraceStitchesReplicas: partial forests from two replicas
// merge into one Chrome export with one pid row per replica; replicas
// that never saw the trace (404) are skipped.
func TestCollectTraceStitchesReplicas(t *testing.T) {
	a := traceReplica(t, "a", `{"traceId":"t1","server":"replica-a","spans":[
		{"name":"serve/forward","startUs":0,"durUs":10}]}`)
	defer a.Close()
	b := traceReplica(t, "b", `{"traceId":"t1","server":"replica-b","spans":[
		{"name":"serve/job","startUs":2,"durUs":6}]}`)
	defer b.Close()
	empty := traceReplica(t, "c", "")
	defer empty.Close()

	c := New(Config{BaseURLs: []string{a.URL, empty.URL, b.URL}})
	data, err := c.CollectTrace(context.Background(), "t1")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"name":"replica-a"`, `"name":"replica-b"`,
		`"name":"serve/forward","ph":"X","ts":0,"dur":10,"pid":1`,
		`"name":"serve/job","ph":"X","ts":2,"dur":6,"pid":2`,
	} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("stitched trace missing %s:\n%s", want, data)
		}
	}
}

// TestCollectTraceNoSpans: when no replica holds the trace the client
// reports it rather than writing an empty file.
func TestCollectTraceNoSpans(t *testing.T) {
	a := traceReplica(t, "a", "")
	defer a.Close()
	c := New(Config{BaseURL: a.URL})
	if _, err := c.CollectTrace(context.Background(), "deadbeef"); err == nil {
		t.Fatal("CollectTrace with no spans anywhere must error")
	}
	if _, err := c.CollectTrace(context.Background(), ""); err == nil {
		t.Fatal("CollectTrace with an empty ID must error")
	}
}

package routing

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/impl"
	"repro/internal/library"
	"repro/internal/model"
	"repro/internal/p2p"
	"repro/internal/workloads"
)

var wire = library.Link{Name: "wire", Bandwidth: 100, MaxSpan: 10, CostFixed: 0.01}

func simpleChip(t *testing.T, from, to geom.Point) *impl.Graph {
	t.Helper()
	cg := model.NewConstraintGraph(geom.Manhattan)
	u := cg.MustAddPort(model.Port{Name: "u", Position: from})
	v := cg.MustAddPort(model.Port{Name: "v", Position: to})
	ch := cg.MustAddChannel(model.Channel{Name: "c", From: u, To: v, Bandwidth: 1})
	ig := impl.New(cg)
	a, err := ig.AddLink(graph.VertexID(u), graph.VertexID(v), wire)
	if err != nil {
		t.Fatal(err)
	}
	ig.AssignImplementation(ch, []graph.Path{{
		Vertices: []graph.VertexID{graph.VertexID(u), graph.VertexID(v)},
		Arcs:     []graph.ArcID{a},
	}})
	return ig
}

func TestLPathShapes(t *testing.T) {
	a, b := geom.Pt(0, 0), geom.Pt(3, 4)
	hv := lPath(a, b, true)
	if len(hv) != 3 || !hv[1].Eq(geom.Pt(3, 0)) {
		t.Errorf("HV path = %v", hv)
	}
	vh := lPath(a, b, false)
	if len(vh) != 3 || !vh[1].Eq(geom.Pt(0, 4)) {
		t.Errorf("VH path = %v", vh)
	}
	aligned := lPath(geom.Pt(0, 0), geom.Pt(5, 0), true)
	if len(aligned) != 2 {
		t.Errorf("aligned path should be a straight segment: %v", aligned)
	}
	// Both elbows realize the Manhattan distance exactly.
	want := geom.Manhattan.Distance(a, b)
	for _, p := range [][]geom.Point{hv, vh} {
		if got := geom.PathLength(geom.Manhattan, p); math.Abs(got-want) > 1e-12 {
			t.Errorf("path length %v ≠ Manhattan distance %v", got, want)
		}
	}
}

func TestRouteSingleLink(t *testing.T) {
	ig := simpleChip(t, geom.Pt(0, 0), geom.Pt(3, 4))
	res, err := RouteImplementation(ig, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Routes) != 1 {
		t.Fatalf("routes = %d, want 1", len(res.Routes))
	}
	r := res.Routes[0]
	if !r.Points[0].Eq(geom.Pt(0, 0)) || !r.Points[len(r.Points)-1].Eq(geom.Pt(3, 4)) {
		t.Errorf("route endpoints wrong: %v", r.Points)
	}
	if math.Abs(res.TotalWirelength-7) > 1e-12 {
		t.Errorf("wirelength = %v, want 7", res.TotalWirelength)
	}
	// Axis-aligned segments only.
	for i := 1; i < len(r.Points); i++ {
		dx := r.Points[i].X - r.Points[i-1].X
		dy := r.Points[i].Y - r.Points[i-1].Y
		if dx != 0 && dy != 0 {
			t.Errorf("segment %d not axis-aligned: %v", i, r.Points)
		}
	}
}

func TestRouteRequiresManhattan(t *testing.T) {
	cg := model.NewConstraintGraph(geom.Euclidean)
	cg.MustAddPort(model.Port{Name: "u", Position: geom.Pt(0, 0)})
	ig := impl.New(cg)
	if _, err := RouteImplementation(ig, Options{}); err == nil {
		t.Error("Euclidean graphs should be rejected")
	}
}

func TestRouteEmptyGraph(t *testing.T) {
	cg := model.NewConstraintGraph(geom.Manhattan)
	cg.MustAddPort(model.Port{Name: "u", Position: geom.Pt(0, 0)})
	ig := impl.New(cg)
	res, err := RouteImplementation(ig, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Routes) != 0 || res.TotalWirelength != 0 {
		t.Errorf("empty routing wrong: %+v", res)
	}
}

func TestCongestionSpreading(t *testing.T) {
	// Many identical diagonal links: the greedy elbow choice must split
	// them across HV and VH, halving the worst-cell overlap compared to
	// routing them all the same way.
	cg := model.NewConstraintGraph(geom.Manhattan)
	nLinks := 8
	for i := 0; i < nLinks; i++ {
		u := cg.MustAddPort(model.Port{
			Name:     "u" + string(rune('0'+i)),
			Position: geom.Pt(0, 0),
		})
		v := cg.MustAddPort(model.Port{
			Name:     "v" + string(rune('0'+i)),
			Position: geom.Pt(8, 8),
		})
		cg.MustAddChannel(model.Channel{
			Name: "c" + string(rune('0'+i)), From: u, To: v, Bandwidth: 1,
		})
	}
	ig := impl.New(cg)
	bigWire := library.Link{Name: "wire", Bandwidth: 100, MaxSpan: 100, CostFixed: 0.01}
	for i := 0; i < nLinks; i++ {
		a, err := ig.AddLink(graph.VertexID(2*i), graph.VertexID(2*i+1), bigWire)
		if err != nil {
			t.Fatal(err)
		}
		ig.AssignImplementation(model.ChannelID(i), []graph.Path{{
			Vertices: []graph.VertexID{graph.VertexID(2 * i), graph.VertexID(2*i + 1)},
			Arcs:     []graph.ArcID{a},
		}})
	}
	res, err := RouteImplementation(ig, Options{GridCells: 16})
	if err != nil {
		t.Fatal(err)
	}
	hv, vh := 0, 0
	for _, r := range res.Routes {
		if len(r.Points) != 3 {
			t.Fatalf("expected elbow routes, got %v", r.Points)
		}
		if r.Points[1].Y == r.Points[0].Y {
			hv++
		} else {
			vh++
		}
	}
	if hv == 0 || vh == 0 {
		t.Errorf("greedy router did not spread elbows: hv=%d vh=%d", hv, vh)
	}
	// Everyone shares the two endpoint cells, but the elbow split keeps
	// the interior cells at roughly half the routes.
	if res.MaxOverlap > nLinks {
		t.Errorf("MaxOverlap = %d > %d routes?", res.MaxOverlap, nLinks)
	}
}

func TestRouteMPEG4(t *testing.T) {
	cg := workloads.MPEG4()
	lib := workloads.MPEG4Technology().Library()
	ig, _, err := p2p.Synthesize(cg, lib, p2p.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RouteImplementation(ig, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Routes) != ig.NumLinks() {
		t.Errorf("routed %d of %d links", len(res.Routes), ig.NumLinks())
	}
	// Total wirelength equals the summed realized link lengths (the
	// router embeds, never lengthens).
	want := ig.Stats().TotalLength
	if math.Abs(res.TotalWirelength-want) > 1e-9 {
		t.Errorf("wirelength %v ≠ link lengths %v", res.TotalWirelength, want)
	}
	if res.MaxOverlap < 1 {
		t.Error("congestion stats missing")
	}
}

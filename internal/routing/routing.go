// Package routing embeds an on-chip implementation graph's link
// instances as rectilinear wire routes on the die, the detailed step
// behind the paper's Figure 5 picture: every link becomes an L-shaped
// (horizontal-vertical or vertical-horizontal) Manhattan path, elbows
// are chosen greedily to spread congestion, and the result reports
// wirelength and a congestion map.
//
// Routing is geometric only — it embeds exactly the links the
// synthesizer produced and never alters the architecture. Because the
// synthesizer segments wires at l_crit, each routed piece is one metal
// segment between two repeaters (or a port), matching how the paper's
// repeater-insertion result would reach layout.
package routing

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/impl"
)

// Options tunes the router.
type Options struct {
	// GridCells is the congestion-grid resolution per axis; zero
	// means 32.
	GridCells int
}

func (o Options) gridCells() int {
	if o.GridCells <= 0 {
		return 32
	}
	return o.GridCells
}

// Route is one link instance's embedded wire.
type Route struct {
	// Arc identifies the link instance.
	Arc graph.ArcID
	// Points is the axis-aligned polyline from the source vertex to
	// the target vertex (2 points when aligned, 3 with an elbow).
	Points []geom.Point
	// Length is the route's Manhattan wirelength.
	Length float64
}

// Result is a completed routing.
type Result struct {
	Routes []Route
	// TotalWirelength sums all route lengths.
	TotalWirelength float64
	// GridCells is the congestion grid resolution used.
	GridCells int
	// MaxOverlap is the largest number of routes crossing one grid
	// cell; MeanOverlap averages over non-empty cells.
	MaxOverlap  int
	MeanOverlap float64
	// Congestion is the per-cell route count, row-major with
	// Congestion[y][x], y increasing northwards; Bounds is the region
	// the grid covers.
	Congestion [][]int
	Bounds     geom.BoundingBox
}

// RouteImplementation embeds every link of a Manhattan-norm
// implementation graph. Links are processed in ID order; for each, the
// elbow (HV vs VH) with the lower current congestion is chosen, then
// the route is committed to the congestion grid.
func RouteImplementation(ig *impl.Graph, opt Options) (*Result, error) {
	cg := ig.ConstraintGraph()
	if cg.Norm().Name() != "manhattan" {
		return nil, fmt.Errorf("routing: rectilinear routing requires the Manhattan norm, got %s", cg.Norm().Name())
	}
	n := ig.NumLinks()
	res := &Result{GridCells: opt.gridCells()}
	if n == 0 {
		return res, nil
	}

	// Congestion grid over the bounding box of all vertices.
	var pts []geom.Point
	for v := 0; v < ig.NumVertices(); v++ {
		pts = append(pts, ig.Vertex(graph.VertexID(v)).Position)
	}
	bb := geom.Bounds(pts).Expand(1e-9)
	grid := newCongestionGrid(bb, res.GridCells)

	for a := 0; a < n; a++ {
		id := graph.ArcID(a)
		arc := ig.Digraph().Arc(id)
		from := ig.Vertex(arc.From).Position
		to := ig.Vertex(arc.To).Position

		hv := lPath(from, to, true)
		vh := lPath(from, to, false)
		chosen := hv
		if grid.pathCost(vh) < grid.pathCost(hv) {
			chosen = vh
		}
		grid.commit(chosen)
		route := Route{
			Arc:    id,
			Points: chosen,
			Length: geom.PathLength(geom.Manhattan, chosen),
		}
		res.Routes = append(res.Routes, route)
		res.TotalWirelength += route.Length
	}
	res.MaxOverlap, res.MeanOverlap = grid.stats()
	res.Bounds = bb
	res.Congestion = make([][]int, grid.cells)
	for y := 0; y < grid.cells; y++ {
		res.Congestion[y] = append([]int(nil), grid.count[y*grid.cells:(y+1)*grid.cells]...)
	}
	return res, nil
}

// lPath returns the L-shaped polyline from a to b: horizontal-first
// when hFirst, vertical-first otherwise. Degenerate (aligned) pairs
// yield a 2-point segment.
func lPath(a, b geom.Point, hFirst bool) []geom.Point {
	if a.X == b.X || a.Y == b.Y {
		return []geom.Point{a, b}
	}
	if hFirst {
		return []geom.Point{a, geom.Pt(b.X, a.Y), b}
	}
	return []geom.Point{a, geom.Pt(a.X, b.Y), b}
}

// congestionGrid counts route occupancy per cell.
type congestionGrid struct {
	bb    geom.BoundingBox
	cells int
	count []int
}

func newCongestionGrid(bb geom.BoundingBox, cells int) *congestionGrid {
	return &congestionGrid{bb: bb, cells: cells, count: make([]int, cells*cells)}
}

func (g *congestionGrid) cellAt(p geom.Point) int {
	w := g.bb.Width()
	h := g.bb.Height()
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	cx := int((p.X - g.bb.Min.X) / w * float64(g.cells))
	cy := int((p.Y - g.bb.Min.Y) / h * float64(g.cells))
	if cx < 0 {
		cx = 0
	}
	if cx >= g.cells {
		cx = g.cells - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.cells {
		cy = g.cells - 1
	}
	return cy*g.cells + cx
}

// cellsOf rasterizes a polyline into the set of cells it touches,
// sampling each segment at sub-cell resolution.
func (g *congestionGrid) cellsOf(path []geom.Point) []int {
	seen := make(map[int]bool)
	var cells []int
	step := math.Max(g.bb.Width(), g.bb.Height()) / float64(g.cells) / 2
	if step <= 0 {
		step = 1
	}
	for i := 1; i < len(path); i++ {
		a, b := path[i-1], path[i]
		segLen := geom.Manhattan.Distance(a, b)
		samples := int(segLen/step) + 1
		for s := 0; s <= samples; s++ {
			t := float64(s) / float64(samples)
			c := g.cellAt(a.Lerp(b, t))
			if !seen[c] {
				seen[c] = true
				cells = append(cells, c)
			}
		}
	}
	return cells
}

// pathCost scores a candidate path by its current congestion: the sum
// of squared occupancy over touched cells (quadratic so hot cells repel
// strongly).
func (g *congestionGrid) pathCost(path []geom.Point) float64 {
	var cost float64
	for _, c := range g.cellsOf(path) {
		occ := float64(g.count[c])
		cost += occ * occ
	}
	return cost
}

func (g *congestionGrid) commit(path []geom.Point) {
	for _, c := range g.cellsOf(path) {
		g.count[c]++
	}
}

func (g *congestionGrid) stats() (maxOverlap int, meanOverlap float64) {
	nonEmpty := 0
	total := 0
	for _, c := range g.count {
		if c == 0 {
			continue
		}
		nonEmpty++
		total += c
		if c > maxOverlap {
			maxOverlap = c
		}
	}
	if nonEmpty > 0 {
		meanOverlap = float64(total) / float64(nonEmpty)
	}
	return maxOverlap, meanOverlap
}

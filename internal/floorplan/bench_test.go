package floorplan

import "testing"

func BenchmarkPlace12Modules(b *testing.B) {
	mods, demands := ringInstance(12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Place(mods, demands, Options{Seed: int64(i), Iterations: 5000}); err != nil {
			b.Fatal(err)
		}
	}
}

// Package floorplan places computational modules on a die or board —
// the step upstream of constraint-driven communication synthesis. The
// paper assumes module positions are given ("once their relative
// positions and required pairwise communication bandwidth is
// provided"); this package produces them: a slot-grid simulated
// annealer that minimizes the bandwidth-weighted Manhattan wirelength
// of the inter-module demands, i.e. exactly the cost the downstream
// synthesizer will have to pay for.
//
// The model is deliberately simple (equal-size slots, module centers,
// swap/relocate moves) — enough to generate realistic clustered
// instances and to study how placement quality propagates into
// synthesis cost.
package floorplan

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/model"
)

// Module is a computational block to place.
type Module struct {
	// Name identifies the module; names must be unique and non-empty.
	Name string
}

// Demand is a directed communication requirement between two modules.
type Demand struct {
	// From and To index into the module slice.
	From, To int
	// Bandwidth weighs the demand in the wirelength objective and
	// becomes the channel bandwidth downstream.
	Bandwidth float64
}

// Options tunes the annealer. The zero value gives sensible defaults.
type Options struct {
	// Seed makes the run reproducible.
	Seed int64
	// Iterations is the number of annealing moves; zero means 20000.
	Iterations int
	// SlotPitch is the center-to-center slot distance; zero means 2.0.
	SlotPitch float64
	// InitialTemp and Cooling control the annealing schedule; zeros
	// mean (auto, 0.995-per-100-moves).
	InitialTemp float64
	Cooling     float64
}

func (o Options) iterations() int {
	if o.Iterations <= 0 {
		return 20000
	}
	return o.Iterations
}

func (o Options) slotPitch() float64 {
	if o.SlotPitch <= 0 {
		return 2.0
	}
	return o.SlotPitch
}

// Placement is a completed floorplan.
type Placement struct {
	// Positions holds each module's center, indexed like the input.
	Positions []geom.Point
	// Wirelength is the bandwidth-weighted Manhattan wirelength
	// Σ b·‖p(from) − p(to)‖₁ over the demands.
	Wirelength float64
	// Moves and Accepted count annealing statistics.
	Moves, Accepted int
}

// Place anneals the modules onto a near-square slot grid.
func Place(modules []Module, demands []Demand, opt Options) (*Placement, error) {
	n := len(modules)
	if n == 0 {
		return nil, fmt.Errorf("floorplan: no modules")
	}
	names := make(map[string]bool, n)
	for _, m := range modules {
		if m.Name == "" {
			return nil, fmt.Errorf("floorplan: module with empty name")
		}
		if names[m.Name] {
			return nil, fmt.Errorf("floorplan: duplicate module %q", m.Name)
		}
		names[m.Name] = true
	}
	for _, d := range demands {
		if d.From < 0 || d.From >= n || d.To < 0 || d.To >= n {
			return nil, fmt.Errorf("floorplan: demand references module out of range")
		}
		if d.From == d.To {
			return nil, fmt.Errorf("floorplan: self demand on module %d", d.From)
		}
		if d.Bandwidth <= 0 {
			return nil, fmt.Errorf("floorplan: non-positive demand bandwidth")
		}
	}

	// Slot grid: the smallest square that fits all modules, plus slack
	// so relocation moves exist.
	side := int(math.Ceil(math.Sqrt(float64(n))))
	if side*side == n {
		side++
	}
	pitch := opt.slotPitch()
	slotPos := func(slot int) geom.Point {
		return geom.Pt(float64(slot%side)*pitch, float64(slot/side)*pitch)
	}
	nSlots := side * side

	r := rand.New(rand.NewSource(opt.Seed))
	// slotOf[m] = slot of module m; modAt[s] = module in slot s or -1.
	slotOf := make([]int, n)
	modAt := make([]int, nSlots)
	for i := range modAt {
		modAt[i] = -1
	}
	perm := r.Perm(nSlots)
	for m := 0; m < n; m++ {
		slotOf[m] = perm[m]
		modAt[perm[m]] = m
	}

	cost := func() float64 {
		var total float64
		for _, d := range demands {
			total += d.Bandwidth * geom.Manhattan.Distance(slotPos(slotOf[d.From]), slotPos(slotOf[d.To]))
		}
		return total
	}
	// Incremental delta for moving module m to slot s (and the occupant,
	// if any, to m's slot).
	moduleCost := func(m int, posOf func(int) geom.Point) float64 {
		var total float64
		for _, d := range demands {
			if d.From == m || d.To == m {
				total += d.Bandwidth * geom.Manhattan.Distance(posOf(d.From), posOf(d.To))
			}
		}
		return total
	}

	cur := cost()
	temp := opt.InitialTemp
	if temp <= 0 {
		temp = cur / math.Max(1, float64(len(demands))) // ~ one demand's cost
		if temp <= 0 {
			temp = 1
		}
	}
	cooling := opt.Cooling
	if cooling <= 0 || cooling >= 1 {
		cooling = 0.995
	}

	pl := &Placement{}
	for iter := 0; iter < opt.iterations(); iter++ {
		pl.Moves++
		m := r.Intn(n)
		s := r.Intn(nSlots)
		oldSlot := slotOf[m]
		if s == oldSlot {
			continue
		}
		other := modAt[s]

		posBefore := func(x int) geom.Point { return slotPos(slotOf[x]) }
		before := moduleCost(m, posBefore)
		if other >= 0 && other != m {
			before += moduleCost(other, posBefore)
			// Shared demands double-count symmetrically before and after,
			// so the delta stays exact.
		}
		// Tentatively apply.
		slotOf[m] = s
		modAt[s] = m
		modAt[oldSlot] = other
		if other >= 0 {
			slotOf[other] = oldSlot
		}
		after := moduleCost(m, posBefore)
		if other >= 0 && other != m {
			after += moduleCost(other, posBefore)
		}
		delta := after - before
		if delta <= 0 || r.Float64() < math.Exp(-delta/temp) {
			cur += delta
			pl.Accepted++
		} else {
			// Revert.
			slotOf[m] = oldSlot
			modAt[oldSlot] = m
			modAt[s] = other
			if other >= 0 {
				slotOf[other] = s
			}
		}
		if iter%100 == 99 {
			temp *= cooling
		}
	}

	pl.Positions = make([]geom.Point, n)
	for m := 0; m < n; m++ {
		pl.Positions[m] = slotPos(slotOf[m])
	}
	pl.Wirelength = cost()
	return pl, nil
}

// ToConstraintGraph converts a placement plus demands into a CDCS
// constraint graph: one dedicated port pair per demand, positioned at
// the module centers, under the Manhattan norm.
func ToConstraintGraph(modules []Module, demands []Demand, pl *Placement) (*model.ConstraintGraph, error) {
	if len(pl.Positions) != len(modules) {
		return nil, fmt.Errorf("floorplan: placement/module count mismatch")
	}
	cg := model.NewConstraintGraph(geom.Manhattan)
	for i, d := range demands {
		name := fmt.Sprintf("%s-%s.%d", modules[d.From].Name, modules[d.To].Name, i)
		src, err := cg.AddPort(model.Port{
			Name:     name + ".out",
			Module:   modules[d.From].Name,
			Position: pl.Positions[d.From],
		})
		if err != nil {
			return nil, err
		}
		dst, err := cg.AddPort(model.Port{
			Name:     name + ".in",
			Module:   modules[d.To].Name,
			Position: pl.Positions[d.To],
		})
		if err != nil {
			return nil, err
		}
		if _, err := cg.AddChannel(model.Channel{
			Name: name, From: src, To: dst, Bandwidth: d.Bandwidth,
		}); err != nil {
			return nil, err
		}
	}
	return cg, nil
}

package floorplan

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/impl"
	"repro/internal/soc"
	"repro/internal/synth"
)

func ringInstance(n int) ([]Module, []Demand) {
	modules := make([]Module, n)
	for i := range modules {
		modules[i] = Module{Name: "m" + string(rune('A'+i))}
	}
	var demands []Demand
	for i := 0; i < n; i++ {
		demands = append(demands, Demand{From: i, To: (i + 1) % n, Bandwidth: 1 + float64(i%3)})
	}
	return modules, demands
}

func TestPlaceValidation(t *testing.T) {
	if _, err := Place(nil, nil, Options{}); err == nil {
		t.Error("no modules should fail")
	}
	mods := []Module{{Name: "a"}, {Name: "a"}}
	if _, err := Place(mods, nil, Options{}); err == nil {
		t.Error("duplicate names should fail")
	}
	mods = []Module{{Name: "a"}, {Name: ""}}
	if _, err := Place(mods, nil, Options{}); err == nil {
		t.Error("empty name should fail")
	}
	mods = []Module{{Name: "a"}, {Name: "b"}}
	if _, err := Place(mods, []Demand{{From: 0, To: 5, Bandwidth: 1}}, Options{}); err == nil {
		t.Error("out-of-range demand should fail")
	}
	if _, err := Place(mods, []Demand{{From: 0, To: 0, Bandwidth: 1}}, Options{}); err == nil {
		t.Error("self demand should fail")
	}
	if _, err := Place(mods, []Demand{{From: 0, To: 1, Bandwidth: 0}}, Options{}); err == nil {
		t.Error("zero bandwidth should fail")
	}
}

func TestPlaceDistinctPositions(t *testing.T) {
	mods, demands := ringInstance(9)
	pl, err := Place(mods, demands, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[geom.Point]bool{}
	for _, p := range pl.Positions {
		if seen[p] {
			t.Fatalf("two modules share slot %v", p)
		}
		seen[p] = true
	}
}

func TestPlaceDeterministic(t *testing.T) {
	mods, demands := ringInstance(8)
	a, err := Place(mods, demands, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Place(mods, demands, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Positions {
		if !a.Positions[i].Eq(b.Positions[i]) {
			t.Fatalf("non-deterministic placement at module %d", i)
		}
	}
}

func TestPlaceBeatsRandom(t *testing.T) {
	mods, demands := ringInstance(12)
	pl, err := Place(mods, demands, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Average wirelength of random placements (the annealer's own
	// initial state distribution).
	r := rand.New(rand.NewSource(99))
	var sum float64
	const samples = 50
	side := 4 // ceil(sqrt(12)) + slack matches Place's grid for n=12
	_ = side
	for s := 0; s < samples; s++ {
		quick, err := Place(mods, demands, Options{Seed: r.Int63(), Iterations: 1})
		if err != nil {
			t.Fatal(err)
		}
		sum += quick.Wirelength
	}
	avgRandom := sum / samples
	if pl.Wirelength >= avgRandom {
		t.Errorf("annealed %v not better than random average %v", pl.Wirelength, avgRandom)
	}
	if pl.Accepted == 0 || pl.Moves == 0 {
		t.Error("annealer made no moves")
	}
}

func TestWirelengthConsistent(t *testing.T) {
	mods, demands := ringInstance(6)
	pl, err := Place(mods, demands, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var manual float64
	for _, d := range demands {
		manual += d.Bandwidth * geom.Manhattan.Distance(pl.Positions[d.From], pl.Positions[d.To])
	}
	if math.Abs(manual-pl.Wirelength) > 1e-9 {
		t.Errorf("reported wirelength %v ≠ recomputed %v (incremental-delta bug?)", pl.Wirelength, manual)
	}
}

func TestToConstraintGraphAndSynthesize(t *testing.T) {
	// End-to-end upstream→downstream: floorplan a small SoC, build the
	// constraint graph, synthesize, verify.
	mods, demands := ringInstance(6)
	pl, err := Place(mods, demands, Options{Seed: 5, SlotPitch: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	cg, err := ToConstraintGraph(mods, demands, pl)
	if err != nil {
		t.Fatal(err)
	}
	if cg.NumChannels() != len(demands) {
		t.Fatalf("channels = %d, want %d", cg.NumChannels(), len(demands))
	}
	lib := soc.Tech180nm().Library()
	ig, rep, err := synth.Synthesize(cg, lib, synth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ig.Verify(impl.VerifyOptions{}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Cost > rep.P2PCost+1e-9 {
		t.Errorf("cost %v exceeds p2p %v", rep.Cost, rep.P2PCost)
	}
}

func TestToConstraintGraphMismatch(t *testing.T) {
	mods, demands := ringInstance(4)
	pl := &Placement{Positions: []geom.Point{{}}}
	if _, err := ToConstraintGraph(mods, demands, pl); err == nil {
		t.Error("mismatched placement should fail")
	}
}

// Property: a better placement never synthesizes to a worse p2p
// baseline on pure-wirelength libraries (cost is monotone in distance).
func TestPlacementQualityPropagates(t *testing.T) {
	mods, demands := ringInstance(9)
	good, err := Place(mods, demands, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Place(mods, demands, Options{Seed: 2, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if good.Wirelength > bad.Wirelength {
		t.Skip("annealer did not improve on this seed")
	}
	lib := soc.Tech180nm().Library()
	cost := func(pl *Placement) float64 {
		cg, err := ToConstraintGraph(mods, demands, pl)
		if err != nil {
			t.Fatal(err)
		}
		_, rep, err := synth.Synthesize(cg, lib, synth.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Cost
	}
	cGood, cBad := cost(good), cost(bad)
	if cGood > cBad+1e-9 {
		t.Errorf("better placement synthesized worse: %v vs %v", cGood, cBad)
	}
}

package report

import (
	"strings"
	"testing"
)

func TestUpperTriangle(t *testing.T) {
	names := []string{"a1", "a2", "a3"}
	vals := [3][3]float64{{0, 1.5, 2.25}, {0, 0, 3.125}, {0, 0, 0}}
	out := UpperTriangle(names, func(i, j int) float64 { return vals[i][j] })
	for _, want := range []string{"a1", "a2", "a3", "1.50", "2.25", "3.12"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Lower triangle must not appear: value 0.00 should never be printed.
	if strings.Contains(out, "0.00") {
		t.Errorf("lower triangle leaked:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 3 rows
		t.Errorf("got %d lines, want 4", len(lines))
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"k", "count"}, [][]string{{"2", "13"}, {"3", "21"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "k") || !strings.Contains(lines[0], "count") {
		t.Errorf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "-") {
		t.Errorf("separator missing: %q", lines[1])
	}
}

func TestFormatRecords(t *testing.T) {
	recs := []Record{
		{Experiment: "E1", Metric: "gamma", Paper: "10.38", Measured: "10.38", Match: true},
		{Experiment: "E4", Metric: "5-way", Paper: "5", Measured: "6", Match: false, Note: "superset"},
	}
	out := FormatRecords(recs)
	if !strings.Contains(out, "OK") || !strings.Contains(out, "DIFF") {
		t.Errorf("verdicts missing:\n%s", out)
	}
	if !strings.Contains(out, "superset") {
		t.Errorf("note missing:\n%s", out)
	}
	if AllMatch(recs) {
		t.Error("AllMatch should be false")
	}
	if !AllMatch(recs[:1]) {
		t.Error("AllMatch should be true for the first record")
	}
}

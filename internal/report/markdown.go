package report

import (
	"fmt"
	"strings"
)

// MarkdownTable renders rows under headers as a GitHub-flavored
// Markdown table.
func MarkdownTable(headers []string, rows [][]string) string {
	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(escapeMarkdownCell(c))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// MarkdownRecords renders paper-vs-measured records as a Markdown table
// with bold verdicts.
func MarkdownRecords(records []Record) string {
	rows := make([][]string, len(records))
	for i, r := range records {
		verdict := "**OK**"
		if !r.Match {
			verdict = "**DIFF**"
		}
		rows[i] = []string{r.Experiment, r.Metric, r.Paper, r.Measured, verdict, r.Note}
	}
	return MarkdownTable([]string{"experiment", "metric", "paper", "measured", "verdict", "note"}, rows)
}

// MarkdownSection renders one experiment as a Markdown section: title,
// fenced detail block, and the records table.
func MarkdownSection(id, title, text string, records []Record) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", id, title)
	if text != "" {
		b.WriteString("```\n")
		b.WriteString(strings.TrimRight(text, "\n"))
		b.WriteString("\n```\n\n")
	}
	b.WriteString(MarkdownRecords(records))
	b.WriteByte('\n')
	return b.String()
}

func escapeMarkdownCell(s string) string {
	s = strings.ReplaceAll(s, "|", "\\|")
	return strings.ReplaceAll(s, "\n", " ")
}

package report

import "testing"

// Report rendering feeds EXPERIMENTS.md and the CLI: it must be
// byte-identical across runs (the mapiter determinism contract).
func TestRenderingByteStable(t *testing.T) {
	names := []string{"mpeg4", "lan", "wan"}
	at := func(i, j int) float64 { return float64(i*10 + j) }
	records := []Record{
		{Experiment: "E1 / Table 1", Metric: "cost", Paper: "12.2", Measured: "12.2", Match: true},
		{Experiment: "E2 / Table 2", Metric: "savings", Paper: "31%", Measured: "30%", Match: false, Note: "rounding"},
	}

	tri := UpperTriangle(names, at)
	tbl := Table([]string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	rec := FormatRecords(records)
	for i := 0; i < 10; i++ {
		if got := UpperTriangle(names, at); got != tri {
			t.Fatalf("run %d: UpperTriangle output differs between identical runs", i)
		}
		if got := Table([]string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}}); got != tbl {
			t.Fatalf("run %d: Table output differs between identical runs", i)
		}
		if got := FormatRecords(records); got != rec {
			t.Fatalf("run %d: FormatRecords output differs between identical runs", i)
		}
	}

	wantTri := "" +
		"          mpeg4      lan      wan\n" +
		"mpeg4               1.00     2.00\n" +
		"lan                         12.00\n" +
		"wan                              \n"
	if tri != wantTri {
		t.Errorf("UpperTriangle drifted from golden:\ngot:\n%q\nwant:\n%q", tri, wantTri)
	}
}

package report

import (
	"strings"
	"testing"
)

func TestMarkdownTable(t *testing.T) {
	out := MarkdownTable([]string{"k", "count"}, [][]string{{"2", "13"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "| k |") {
		t.Errorf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator missing: %q", lines[1])
	}
	if !strings.Contains(lines[2], "| 2 | 13 |") {
		t.Errorf("row wrong: %q", lines[2])
	}
}

func TestMarkdownEscaping(t *testing.T) {
	out := MarkdownTable([]string{"v"}, [][]string{{"a|b\nc"}})
	if !strings.Contains(out, `a\|b c`) {
		t.Errorf("pipe/newline not escaped:\n%s", out)
	}
}

func TestMarkdownRecords(t *testing.T) {
	out := MarkdownRecords([]Record{
		{Experiment: "E1", Metric: "m", Paper: "1", Measured: "1", Match: true},
		{Experiment: "E2", Metric: "n", Paper: "2", Measured: "3", Match: false},
	})
	if !strings.Contains(out, "**OK**") || !strings.Contains(out, "**DIFF**") {
		t.Errorf("verdicts missing:\n%s", out)
	}
}

func TestMarkdownSection(t *testing.T) {
	out := MarkdownSection("E1", "Title", "detail\n", []Record{
		{Experiment: "E1", Metric: "m", Paper: "1", Measured: "1", Match: true},
	})
	for _, want := range []string{"## E1 — Title", "```\ndetail\n```", "| experiment |"} {
		if !strings.Contains(out, want) {
			t.Errorf("section missing %q:\n%s", want, out)
		}
	}
	// Empty text omits the fence.
	noText := MarkdownSection("E2", "T", "", nil)
	if strings.Contains(noText, "```") {
		t.Errorf("empty detail should omit fence:\n%s", noText)
	}
}

// Package report renders the experiment outputs: upper-triangular
// matrices in the layout of the paper's Tables 1–2, generic aligned
// text tables, and paper-vs-measured comparison records for
// EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"
)

// UpperTriangle renders a symmetric matrix the way the paper prints its
// tables: column headers, one row per entity, and only the upper
// triangle filled (two decimals).
func UpperTriangle(names []string, at func(i, j int) float64) string {
	n := len(names)
	width := 9
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", "")
	for _, name := range names {
		fmt.Fprintf(&b, "%*s", width, name)
	}
	b.WriteByte('\n')
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%-6s", names[i])
		for j := 0; j < n; j++ {
			if j <= i {
				fmt.Fprintf(&b, "%*s", width, "")
				continue
			}
			fmt.Fprintf(&b, "%*.2f", width, at(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table renders rows of cells under headers, left-aligned, columns sized
// to their widest cell.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Record is one paper-vs-measured comparison.
type Record struct {
	// Experiment identifies the artifact ("E1 / Table 1").
	Experiment string
	// Metric names the compared quantity.
	Metric string
	// Paper is the published value; Measured is ours.
	Paper, Measured string
	// Match reports whether the acceptance criterion held.
	Match bool
	// Note carries deviations or context.
	Note string
}

// FormatRecords renders comparison records as an aligned table with an
// OK/DIFF verdict column.
func FormatRecords(records []Record) string {
	rows := make([][]string, len(records))
	for i, r := range records {
		verdict := "OK"
		if !r.Match {
			verdict = "DIFF"
		}
		rows[i] = []string{r.Experiment, r.Metric, r.Paper, r.Measured, verdict, r.Note}
	}
	return Table([]string{"experiment", "metric", "paper", "measured", "verdict", "note"}, rows)
}

// AllMatch reports whether every record matched.
func AllMatch(records []Record) bool {
	for _, r := range records {
		if !r.Match {
			return false
		}
	}
	return true
}

// Package serve is the cdcsd serving layer: a zero-dependency net/http
// front end that runs constraint-driven synthesis as bounded
// concurrent jobs and exposes the live observability plane —
// per-job progress events over SSE (replay of the bounded history,
// then the live tail), the shared metrics registry in Prometheus text
// exposition format 0.0.4 on GET /metrics, health/readiness probes,
// and optional /debug/pprof.
//
// Endpoints:
//
//	POST /v1/synthesize        submit a job (JSON graph+library or a
//	                           built-in example); 202 + job id
//	GET  /v1/jobs              list jobs, oldest first
//	GET  /v1/jobs/{id}         job state + result
//	GET  /v1/jobs/{id}/events  SSE: replayed history, then live tail
//	GET  /metrics              Prometheus text format 0.0.4
//	GET  /healthz              liveness + version
//	GET  /readyz               readiness (503 while draining)
//	/debug/pprof/...           only with Config.EnablePprof
//
// Every job shares one obs.Registry, so /metrics accumulates the
// algorithm counters (ucp_incumbents_total, merging_sets_tested_total,
// …) across the daemon's lifetime; each job carries its own bounded
// obs.Events stream, so SSE subscribers see exactly that job's
// progress. Shutdown reuses the synthesis layer's cooperative
// cancellation: Drain cancels the run context and every in-flight job
// returns its best incumbent as an explicitly degraded result instead
// of being killed.
package serve

import (
	"context"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"repro/internal/obs"
)

// Config tunes the server. The zero value serves with the defaults
// noted on each field.
type Config struct {
	// MaxConcurrent bounds how many synthesis jobs run at once;
	// submissions beyond it queue. <=0 means 2.
	MaxConcurrent int
	// MaxJobs bounds how many jobs are retained in memory (running
	// jobs included; finished jobs are evicted oldest-first to make
	// room). A submission that cannot evict is rejected with 429.
	// <=0 means 64.
	MaxJobs int
	// EventBuffer sizes each job's event replay ring; <=0 means
	// obs.DefaultEventBuffer.
	EventBuffer int
	// EnablePprof mounts net/http/pprof under /debug/pprof.
	EnablePprof bool
	// Logger receives the server's structured logs; nil means
	// slog.Default().
	Logger *slog.Logger
	// Version is reported in /healthz and the startup log.
	Version string
}

// Server is the cdcsd HTTP front end. Build with New, mount Handler,
// and call Drain on shutdown.
type Server struct {
	cfg Config
	log *slog.Logger
	reg *obs.Registry
	mux *http.ServeMux

	// runCtx parents every job; Drain cancels it so in-flight
	// synthesis degrades to its incumbent and returns promptly.
	runCtx    context.Context
	cancelRun context.CancelFunc
	wg        sync.WaitGroup
	// sem bounds concurrent synthesis: one slot per running job,
	// acquired by the job goroutine, so excess submissions queue.
	sem chan struct{}

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // insertion order, for listing and eviction
	nextID   int
	draining bool
}

// New returns a ready-to-serve Server.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 64
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		log:       cfg.Logger,
		reg:       obs.NewRegistry(),
		mux:       http.NewServeMux(),
		runCtx:    ctx,
		cancelRun: cancel,
		jobs:      make(map[string]*Job),
	}
	s.sem = make(chan struct{}, cfg.MaxConcurrent)
	s.routes()
	return s
}

// Registry returns the server-wide metrics registry every job
// publishes into — the /metrics scrape target.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Handler returns the server's root handler with request logging and
// request counting applied.
func (s *Server) Handler() http.Handler {
	return s.logRequests(s.mux)
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/synthesize", s.handleSynthesize)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	if s.cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// Drain stops accepting jobs, cancels the run context — every
// in-flight synthesis hits its next cooperative checkpoint and returns
// its incumbent as a degraded result — and waits for job goroutines to
// finish or ctx to expire. Call before http.Server.Shutdown so SSE
// streams end (job completion closes their event streams) and the
// HTTP drain does not deadlock on them.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.log.Info("draining", "reason", "shutdown")
	s.cancelRun()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// statusRecorder captures the response status for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so SSE streaming works through
// the logging middleware.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.reg.Counter("serve/http_requests").Add(1)
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"duration_ms", time.Since(start).Milliseconds(),
		)
	})
}

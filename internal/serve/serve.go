// Package serve is the cdcsd serving layer: a zero-dependency net/http
// front end that runs constraint-driven synthesis as bounded
// concurrent jobs and exposes the live observability plane —
// per-job progress events over SSE (replay of the bounded history,
// then the live tail), the shared metrics registry in Prometheus text
// exposition format 0.0.4 on GET /metrics, health/readiness probes,
// and optional /debug/pprof.
//
// Endpoints:
//
//	POST /v1/synthesize        submit a job (JSON graph+library or a
//	                           built-in example); 202 + job id
//	POST /v1/batch             submit many named graphs at once; 202 +
//	                           per-member admission envelope, or
//	                           ?stream=ndjson for results as they land
//	GET  /v1/batch/{id}        batch envelope with live member state
//	GET  /v1/jobs              list jobs, oldest first
//	GET  /v1/jobs/{id}         job state + result
//	GET  /v1/jobs/{id}/events  SSE: replayed history, then live tail
//	GET  /v1/jobs/{id}/trace   the job's span forest (deterministic
//	                           JSON, or ?format=chrome for Perfetto)
//	GET  /v1/traces/{traceID}  all local spans of a distributed trace
//	                           from the bounded drop-oldest ring
//	GET  /v1/fleet             replica membership, load and forwarding
//	GET  /metrics              Prometheus text format 0.0.4
//	GET  /healthz              liveness + version
//	GET  /readyz               readiness (503 while draining)
//	/debug/pprof/...           only with Config.EnablePprof
//
// Every job shares one obs.Registry, so /metrics accumulates the
// algorithm counters (ucp_incumbents_total, merging_sets_tested_total,
// …) across the daemon's lifetime; each job carries its own bounded
// obs.Events stream, so SSE subscribers see exactly that job's
// progress. Shutdown reuses the synthesis layer's cooperative
// cancellation: Drain cancels the run context and every in-flight job
// returns its best incumbent as an explicitly degraded result instead
// of being killed.
//
// With Config.DataDir the job table is durable (internal/durable): a
// write-ahead log records every submission, state transition and
// result, and New replays it — finished jobs are restored queryable
// with byte-identical results and a synthetic SSE history,
// interrupted jobs are re-queued through the synth pipeline and
// marked restarted. Admission is tiered (shed.go): at the degrade
// watermark new jobs get a tightened timeout budget, at the shed
// watermark they get 429 + Retry-After, and every decision is counted
// under serve/shed/* and logged.
package serve

import (
	"context"
	"errors"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"repro/internal/durable"
	"repro/internal/fleet"
	"repro/internal/obs"
)

// Config tunes the server. The zero value serves with the defaults
// noted on each field.
type Config struct {
	// MaxConcurrent bounds how many synthesis jobs run at once;
	// submissions beyond it queue. <=0 means 2.
	MaxConcurrent int
	// MaxJobs bounds how many jobs are retained in memory (running
	// jobs included; finished jobs are evicted oldest-first to make
	// room). A submission that cannot evict is rejected with 429.
	// <=0 means 64.
	MaxJobs int
	// EventBuffer sizes each job's event replay ring; <=0 means
	// obs.DefaultEventBuffer.
	EventBuffer int
	// EnablePprof mounts net/http/pprof under /debug/pprof.
	EnablePprof bool
	// Logger receives the server's structured logs; nil means
	// slog.Default().
	Logger *slog.Logger
	// Version is reported in /healthz and the startup log.
	Version string
	// DataDir enables durable job persistence: the job table is
	// WAL-logged and snapshotted there, and startup replays it —
	// finished jobs are restored for GET /v1/jobs and SSE replay,
	// interrupted ones are re-queued and marked restarted. Empty
	// means in-memory only.
	DataDir string
	// Durable tunes the WAL (fsync batching, snapshot cadence,
	// injected filesystem/clock). Registry and Source are wired by
	// the server.
	Durable durable.Options
	// Shed sets the tiered load-shedding watermarks; the zero value
	// derives them from MaxConcurrent.
	Shed ShedConfig
	// Fleet, when set, makes this replica fleet-aware: submissions
	// past the degrade watermark are forwarded to their rendezvous
	// owner, and GET /v1/fleet reports membership and forwarding
	// counters. Nil means standalone.
	Fleet *fleet.Router
	// TraceIDs supplies trace/span identifiers for the per-job
	// tracers; nil means a randomly-seeded source. Tests inject a
	// fixed-seed source for deterministic IDs.
	TraceIDs *obs.IDSource
	// TraceRing bounds how many distinct traces are retained for
	// GET /v1/traces/{traceID} (drop-oldest). <=0 means
	// DefaultTraceRing.
	TraceRing int
	// Now is the server's clock (job timestamps, durations); nil
	// means time.Now. Tests inject a frozen clock for deterministic
	// job lifetimes.
	Now func() time.Time
}

// Server is the cdcsd HTTP front end. Build with New, mount Handler,
// and call Drain on shutdown.
type Server struct {
	cfg  Config
	log  *slog.Logger
	reg  *obs.Registry
	mux  *http.ServeMux
	now  func() time.Time
	shed ShedConfig

	// fleet is the replica's routing view; nil when standalone.
	// fleetClient carries peer forwards.
	fleet       *fleet.Router
	fleetClient *http.Client

	// store persists the job table; nil without Config.DataDir.
	store *durable.Store

	// ids hands out trace/span identifiers; traces retains finished
	// span forests for GET /v1/traces/{traceID}.
	ids    *obs.IDSource
	traces *traceRing

	// runCtx parents every job; Drain cancels it so in-flight
	// synthesis degrades to its incumbent and returns promptly.
	runCtx    context.Context
	cancelRun context.CancelFunc
	wg        sync.WaitGroup
	// sem bounds concurrent synthesis: one slot per running job,
	// acquired by the job goroutine, so excess submissions queue.
	sem chan struct{}

	// mu guards the job table below. The durable store must never be
	// called while holding it: store writes take the store's own lock,
	// and the store's snapshot compaction calls back into
	// snapshotTable, which takes s.mu — the persist* helpers run
	// strictly after unlock (restore.go). cdcsvet checks the
	// discipline:
	//
	//cdcsvet:lockorder Server.mu -> durable.Store
	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // insertion order, for listing and eviction
	nextID   int
	active   int // unfinished jobs (queued + running): the shed load
	draining bool

	// batches binds member jobs of POST /v1/batch submissions; bounded
	// to MaxJobs envelopes, oldest dropped first.
	batches    map[string]*batch
	batchOrder []string
	nextBatch  int
}

// New returns a ready-to-serve Server. With Config.DataDir set it
// opens (or creates) the durable store and replays it — restoring
// finished jobs and re-queuing interrupted ones — before serving;
// only a data directory that cannot be opened fails construction.
func New(cfg Config) (*Server, error) {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 64
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		log:       cfg.Logger,
		reg:       obs.NewRegistry(),
		mux:       http.NewServeMux(),
		now:       cfg.Now,
		shed:      cfg.Shed.normalize(cfg.MaxConcurrent),
		runCtx:    ctx,
		cancelRun: cancel,
		jobs:      make(map[string]*Job),
		batches:   make(map[string]*batch),
		fleet:     cfg.Fleet,
		ids:       cfg.TraceIDs,
		traces:    newTraceRing(cfg.TraceRing),
	}
	if s.ids == nil {
		s.ids = obs.NewIDSource(0)
	}
	if s.fleet != nil {
		s.fleetClient = &http.Client{Timeout: fleetHTTPTimeout}
	}
	s.sem = make(chan struct{}, cfg.MaxConcurrent)
	// Register the admission and batch counters eagerly so /metrics
	// (and the catalog-drift test) always expose the full split.
	for _, tier := range []string{TierAccept, TierDegrade, TierShed} {
		s.reg.Counter("serve/shed/" + tier)
	}
	for _, name := range []string{"submitted", "members", "rejected"} {
		s.reg.Counter("serve/batch/" + name)
	}
	s.reg.Counter("fleet/forwarded")
	s.reg.Counter("fleet/forward_failed")
	for _, name := range []string{
		"spans_started", "spans_dropped", "ring_evictions",
		"roots_propagated", "roots_new",
	} {
		s.reg.Counter("trace/" + name)
	}
	s.routes()
	if cfg.DataDir != "" {
		opts := cfg.Durable
		opts.Registry = s.reg
		opts.Logger = s.log
		if opts.Now == nil {
			opts.Now = s.now
		}
		opts.Source = s.snapshotTable
		opts.BatchSource = s.snapshotBatches
		store, replay, err := durable.Open(cfg.DataDir, opts)
		if err != nil {
			cancel()
			return nil, err
		}
		s.store = store
		s.restore(replay)
	}
	return s, nil
}

// Registry returns the server-wide metrics registry every job
// publishes into — the /metrics scrape target.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Handler returns the server's root handler with request logging and
// request counting applied.
func (s *Server) Handler() http.Handler {
	return s.logRequests(s.mux)
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/synthesize", s.handleSynthesize)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/batch/{id}", s.handleBatchGet)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	s.mux.HandleFunc("GET /v1/traces/{traceID}", s.handleTraceGet)
	s.mux.HandleFunc("GET /v1/fleet", s.handleFleet)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	if s.cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// Drain stops accepting jobs, cancels the run context — every
// in-flight synthesis hits its next cooperative checkpoint and returns
// its incumbent as a degraded result — and waits for job goroutines to
// finish or ctx to expire. Call before http.Server.Shutdown so SSE
// streams end (job completion closes their event streams) and the
// HTTP drain does not deadlock on them.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.log.Info("draining", "reason", "shutdown")
	s.cancelRun()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	// Close the store either way: on a clean drain this compacts the
	// table into the snapshot; on a timed-out drain the WAL keeps the
	// abandoned jobs as unfinished, so the next start re-queues them.
	if s.store != nil {
		if cerr := s.store.Close(); cerr != nil && !errors.Is(cerr, durable.ErrClosed) {
			s.log.Warn("durable store close", "error", cerr.Error())
		}
	}
	return err
}

// Unfinished lists the IDs of jobs not yet in a terminal state —
// what a deadline-bounded drain is about to abandon.
func (s *Server) Unfinished() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for _, id := range s.order {
		if j := s.jobs[id]; j != nil {
			if st := j.State(); st != StateDone && st != StateFailed {
				out = append(out, id)
			}
		}
	}
	return out
}

// statusRecorder captures the response status for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so SSE streaming works through
// the logging middleware.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.reg.Counter("serve/http_requests").Add(1)
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"duration_ms", time.Since(start).Milliseconds(),
		}
		if ua := r.Header.Get("User-Agent"); ua != "" {
			attrs = append(attrs, "user_agent", ua)
		}
		if sc, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); ok {
			attrs = append(attrs, "trace_id", sc.TraceID.String())
		}
		s.log.Info("request", attrs...)
	})
}

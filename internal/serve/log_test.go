package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"regexp"
	"strings"
	"testing"
)

// jsonKeys returns the top-level keys of one JSON object in their
// textual order of appearance.
func jsonKeys(t *testing.T, line []byte) []string {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(line))
	tok, err := dec.Token()
	if err != nil || tok != json.Delim('{') {
		t.Fatalf("log line is not a JSON object: %s", line)
	}
	var keys []string
	depth := 0
	expectKey := true
	for dec.More() || depth > 0 {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		switch v := tok.(type) {
		case json.Delim:
			if v == '{' || v == '[' {
				depth++
			} else {
				depth--
			}
			expectKey = depth == 0
		default:
			if depth == 0 {
				if expectKey {
					keys = append(keys, v.(string))
					expectKey = false
				} else {
					expectKey = true
				}
			}
		}
	}
	return keys
}

// TestJSONLoggerKeyOrderDeterministic pins the daemon log line shape:
// time, level, msg first, then the attrs in exactly the order the call
// site emitted them — the order log-processing pipelines key on.
func TestJSONLoggerKeyOrderDeterministic(t *testing.T) {
	want := []string{"time", "level", "msg", "job_id", "workload", "cost", "optimal"}
	for run := 0; run < 3; run++ {
		var buf bytes.Buffer
		log := NewLogger(&buf, slog.LevelInfo, true)
		log.Info("job done", "job_id", "j-000001", "workload", "wan", "cost", 464.55, "optimal", true)
		keys := jsonKeys(t, buf.Bytes())
		if strings.Join(keys, ",") != strings.Join(want, ",") {
			t.Fatalf("run %d: key order %v, want %v", run, keys, want)
		}
	}
}

func TestJSONLoggerWithGroupAttrs(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelInfo, true).With("job_id", "j-000002")
	log.Info("job started", "channels", 8)
	keys := jsonKeys(t, buf.Bytes())
	want := []string{"time", "level", "msg", "job_id", "channels"}
	if strings.Join(keys, ",") != strings.Join(want, ",") {
		t.Fatalf("key order %v, want %v", keys, want)
	}
}

func TestLoggerLevelFilter(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelWarn, true)
	log.Info("hidden")
	log.Warn("shown")
	lines := strings.Count(buf.String(), "\n")
	if lines != 1 || !strings.Contains(buf.String(), "shown") {
		t.Fatalf("want exactly the warn line, got: %s", buf.String())
	}
}

func TestTextLoggerForTerminals(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelInfo, false)
	log.Info("trace written", "path", "t.json")
	line := buf.String()
	if json.Valid([]byte(strings.TrimSpace(line))) {
		t.Fatalf("text format must not be JSON: %s", line)
	}
	if m, _ := regexp.MatchString(`msg="trace written" path=t\.json`, line); !m {
		t.Fatalf("unexpected text line: %s", line)
	}
}

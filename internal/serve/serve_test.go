package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// infeasibleGraph/infeasibleLibrary build a deterministically failing
// instance: the only link's span is shorter than the channel and the
// library has no repeaters, so p2p planning errors out.
const infeasibleGraph = `{"norm":"euclidean",
 "ports":[{"name":"A.out","module":"A","x":0,"y":0},{"name":"B.in","module":"B","x":10,"y":0}],
 "channels":[{"name":"c1","from":"A.out","to":"B.in","bandwidth":1}]}`

const infeasibleLibrary = `{"links":[{"name":"short","bandwidth":200,"maxSpan":1,"costPerLength":1}],"nodes":[]}`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
	})
	return srv, ts
}

func submit(t *testing.T, ts *httptest.Server, body string) (jobJSON, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/synthesize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/synthesize: %v", err)
	}
	defer resp.Body.Close()
	var j jobJSON
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			t.Fatalf("decode job: %v", err)
		}
	}
	return j, resp.StatusCode
}

func waitJob(t *testing.T, ts *httptest.Server, id string) jobJSON {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET job: %v", err)
		}
		var j jobJSON
		err = json.NewDecoder(resp.Body).Decode(&j)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode job: %v", err)
		}
		if j.State == StateDone || j.State == StateFailed {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return jobJSON{}
}

func TestSynthesizeWanJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	j, code := submit(t, ts, `{"example":"wan","options":{"workers":1}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	if j.ID == "" || j.Links.Events != "/v1/jobs/"+j.ID+"/events" {
		t.Fatalf("bad job envelope: %+v", j)
	}
	fin := waitJob(t, ts, j.ID)
	if fin.State != StateDone {
		t.Fatalf("state = %q (error %q), want done", fin.State, fin.Error)
	}
	r := fin.Result
	if r == nil || !r.Optimal || r.Degraded {
		t.Fatalf("result = %+v, want optimal and not degraded", r)
	}
	if r.Cost <= 0 || r.Cost >= r.P2PCost {
		t.Errorf("cost = %v vs p2p %v, want 0 < cost < p2p", r.Cost, r.P2PCost)
	}
}

func TestSynthesizeReturnGraph(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	j, _ := submit(t, ts, `{"example":"wan","returnGraph":true,"options":{"workers":1}}`)
	fin := waitJob(t, ts, j.ID)
	if fin.State != StateDone || len(fin.Result.Graph) == 0 {
		t.Fatalf("want done with embedded graph, got state %q graph %d bytes", fin.State, len(fin.Result.Graph))
	}
	if !json.Valid(fin.Result.Graph) {
		t.Error("embedded graph is not valid JSON")
	}
}

func TestJobFailure(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	body := fmt.Sprintf(`{"graph":%s,"library":%s}`, infeasibleGraph, infeasibleLibrary)
	j, code := submit(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	fin := waitJob(t, ts, j.ID)
	if fin.State != StateFailed || fin.Error == "" {
		t.Fatalf("state = %q error %q, want failed with an error message", fin.State, fin.Error)
	}
	snap := srv.Registry().Snapshot().CounterMap()
	if snap["serve/jobs_failed"] != 1 {
		t.Errorf("serve/jobs_failed = %d, want 1", snap["serve/jobs_failed"])
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, body := range []string{
		`{`,                       // malformed JSON
		`{"example":"nope"}`,      // unknown example
		`{}`,                      // neither example nor graph
		`{"unknownField":true}`,   // DisallowUnknownFields
		`{"example":"wan","x":1}`, // unknown field alongside valid ones
	} {
		if _, code := submit(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("submit(%q) status = %d, want 400", body, code)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/j-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}
}

// TestRejectWhenFull fills the one-slot job table with an unfinished
// job and asserts the next submission is rejected with 429. The first
// wan run takes tens of milliseconds, so the immediate second POST
// lands while the table is still full; the retry loop absorbs the
// (unlikely) race where it finished first.
func TestRejectWhenFull(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxJobs: 1})
	var rejected bool
	var last jobJSON
	for try := 0; try < 20 && !rejected; try++ {
		j1, code := submit(t, ts, `{"example":"wan","options":{"workers":1}}`)
		if code != http.StatusAccepted {
			t.Fatalf("fill submit status = %d, want 202", code)
		}
		_, code = submit(t, ts, `{"example":"wan","options":{"workers":1}}`)
		rejected = code == http.StatusTooManyRequests
		last = j1
		waitJob(t, ts, j1.ID)
	}
	if !rejected {
		t.Fatal("never observed a 429 with a full one-slot job table")
	}
	_ = last
	snap := srv.Registry().Snapshot().CounterMap()
	if snap["serve/jobs_rejected"] < 1 {
		t.Errorf("serve/jobs_rejected = %d, want >= 1", snap["serve/jobs_rejected"])
	}
}

func TestHealthzReadyzAndDrain(t *testing.T) {
	srv, ts := newTestServer(t, Config{Version: "test-v1"})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" || health["version"] != "test-v1" {
		t.Errorf("healthz = %v, want status ok and version test-v1", health)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("readyz status = %d, want 200", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining = %d, want 503", resp.StatusCode)
	}
	if _, code := submit(t, ts, `{"example":"wan"}`); code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining = %d, want 503", code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	j, _ := submit(t, ts, `{"example":"wan","options":{"workers":1}}`)
	waitJob(t, ts, j.ID)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE ucp_incumbents_total counter\n",
		"# TYPE serve_jobs_submitted_total counter\nserve_jobs_submitted_total 1\n",
		"# TYPE serve_jobs_completed_total counter\nserve_jobs_completed_total 1\n",
		"# TYPE serve_job_duration_ms histogram\n",
		"serve_job_duration_ms_bucket{le=\"+Inf\"} 1\n",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// sseEvent is one parsed Server-Sent Events frame.
type sseEvent struct {
	name string
	id   int64
	ev   obs.Event
}

// readSSE parses every frame from an open SSE stream until it ends.
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.ParseInt(strings.TrimPrefix(line, "id: "), 10, 64)
			if err != nil {
				t.Fatalf("bad SSE id line %q: %v", line, err)
			}
			cur.id = id
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.ev); err != nil {
				t.Fatalf("bad SSE data line %q: %v", line, err)
			}
		case line == "":
			if cur.name != "" {
				out = append(out, cur)
				cur = sseEvent{}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read SSE: %v", err)
	}
	return out
}

func checkEventStream(t *testing.T, events []sseEvent) {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("no SSE events received")
	}
	incumbents := 0
	for i, e := range events {
		if want := int64(i + 1); e.id != want || e.ev.Seq != want {
			t.Fatalf("event %d: id=%d seq=%d, want both %d (replay/tail must be gap-free and duplicate-free)",
				i, e.id, e.ev.Seq, want)
		}
		if e.name != e.ev.Type {
			t.Errorf("event %d: SSE name %q != payload type %q", i, e.name, e.ev.Type)
		}
		if e.ev.Type == obs.EventIncumbent {
			incumbents++
		}
	}
	if events[0].ev.Type != obs.EventRunStart {
		t.Errorf("first event = %q, want run_start", events[0].ev.Type)
	}
	if last := events[len(events)-1].ev.Type; last != obs.EventRunEnd {
		t.Errorf("last event = %q, want run_end", last)
	}
	if incumbents == 0 {
		t.Error("no incumbent events in the stream")
	}
}

// TestSSELiveTail subscribes while the job is (most likely) still
// running, so the bulk of the stream arrives over the live tail; the
// stream must end on its own once the job finishes.
func TestSSELiveTail(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	j, _ := submit(t, ts, `{"example":"wan","options":{"workers":1}}`)
	resp, err := http.Get(ts.URL + j.Links.Events)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	checkEventStream(t, readSSE(t, resp.Body))
}

// TestSSEReplayAfterCompletion subscribes after the job finished: the
// whole stream is served from the replay ring and the tail closes
// immediately. The replayed history must be identical in sequence to
// what a live subscriber saw.
func TestSSEReplayAfterCompletion(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	j, _ := submit(t, ts, `{"example":"wan","options":{"workers":1}}`)
	waitJob(t, ts, j.ID)
	resp, err := http.Get(ts.URL + j.Links.Events)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readSSE(t, resp.Body)
	checkEventStream(t, events)
}

// TestMetricsScrapeUnderLoad hammers /metrics while jobs publish into
// the shared registry from pricing workers — the -race run of this
// test is the snapshot-vs-writer data-race check.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2})
	var jobs []jobJSON
	for i := 0; i < 2; i++ {
		j, code := submit(t, ts, `{"example":"wan","options":{"workers":2}}`)
		if code != http.StatusAccepted {
			t.Fatalf("submit status = %d", code)
		}
		jobs = append(jobs, j)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	for _, j := range jobs {
		if fin := waitJob(t, ts, j.ID); fin.State != StateDone {
			t.Errorf("job %s state = %q, want done", j.ID, fin.State)
		}
	}
	close(stop)
	wg.Wait()
}

package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/cdcs"
	"repro/internal/obs"
)

// BatchRequest is the POST /v1/batch body: many named constraint
// graphs fanned out through the bounded job table in one request.
// Each member passes the same tiered admission gate as a single
// POST /v1/synthesize — under one lock hold, so the k-th member sees
// the load its k-1 admitted predecessors created and an oversized
// batch degrades then sheds member-by-member instead of being
// admitted or rejected whole.
type BatchRequest struct {
	// Workload labels the batch in logs and the envelope; defaults to
	// "batch".
	Workload string       `json:"workload,omitempty"`
	Graphs   []BatchGraph `json:"graphs"`
}

// BatchGraph is one batch member: a name (defaulted to its index)
// plus the same spec POST /v1/synthesize accepts.
type BatchGraph struct {
	Name string `json:"name,omitempty"`
	SynthesizeRequest
}

// batch binds the member jobs of one POST /v1/batch. Members are
// immutable after admission — live job state is read through the job
// table under s.mu — so the struct needs no lock of its own.
type batch struct {
	id       string
	workload string
	created  time.Time
	restored bool
	members  []batchMember
	// traceID identifies the batch's distributed trace; every admitted
	// member's serve/job span is a child of the batch root span.
	traceID string
}

// batchMember is one graph's admission outcome: an admitted member
// has a jobID and tier, a shed member has tier TierShed only, an
// undecodable member has err only.
type batchMember struct {
	name  string
	jobID string
	tier  string
	err   string
}

// memberName returns the member name an admitted job was submitted
// under. Members are immutable, so no lock is needed.
func (b *batch) memberName(jobID string) string {
	for _, m := range b.members {
		if m.jobID == jobID {
			return m.name
		}
	}
	return ""
}

// batchMemberJSON is one member in the batch envelope.
type batchMemberJSON struct {
	Name  string `json:"name"`
	Tier  string `json:"tier,omitempty"`
	Error string `json:"error,omitempty"`
	// Job embeds the member's live job view; absent for shed or
	// invalid members (and for members whose job aged out of the
	// retention bound after a restart).
	Job *jobJSON `json:"job,omitempty"`
}

// batchJSON is the GET /v1/batch/{id} shape, and the first NDJSON
// line of a streamed submission.
type batchJSON struct {
	ID       string `json:"id"`
	Workload string `json:"workload,omitempty"`
	Created  string `json:"created"`
	// Restored marks a batch replayed from the durable log after a
	// daemon restart.
	Restored bool `json:"restored,omitempty"`
	// TraceID is the batch's distributed trace identifier; member jobs
	// share it.
	TraceID string `json:"traceId,omitempty"`
	// Done is true once every admitted member reached a terminal
	// state (shed and invalid members are terminal by definition).
	Done    bool              `json:"done"`
	Members []batchMemberJSON `json:"members"`
	Links   batchLinks        `json:"links"`
}

type batchLinks struct {
	Self string `json:"self"`
}

// batchJSONLocked renders the envelope with live member job state.
// Caller holds s.mu (lock order s.mu → j.mu, same as the job listing
// path).
func (s *Server) batchJSONLocked(b *batch) batchJSON {
	out := batchJSON{
		ID:       b.id,
		Workload: b.workload,
		Created:  b.created.UTC().Format(time.RFC3339Nano),
		Restored: b.restored,
		TraceID:  b.traceID,
		Done:     true,
		Members:  make([]batchMemberJSON, 0, len(b.members)),
		Links:    batchLinks{Self: "/v1/batch/" + b.id},
	}
	for _, m := range b.members {
		mj := batchMemberJSON{Name: m.name, Tier: m.tier, Error: m.err}
		if m.jobID != "" {
			if j := s.jobs[m.jobID]; j != nil {
				jj := s.jobView(j)
				mj.Job = &jj
				if jj.State != StateDone && jj.State != StateFailed {
					out.Done = false
				}
			}
		}
		out.Members = append(out.Members, mj)
	}
	return out
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.reg.Counter("serve/batch/rejected").Add(1)
		httpError(w, http.StatusBadRequest, "decode batch: %v", err)
		return
	}
	if len(req.Graphs) == 0 {
		s.reg.Counter("serve/batch/rejected").Add(1)
		httpError(w, http.StatusBadRequest, "empty batch: need at least one graph")
		return
	}
	label := req.Workload
	if label == "" {
		label = "batch"
	}

	// Decode every member before taking the lock: a graph that cannot
	// decode is a per-member error in the envelope (partial
	// acceptance), never a whole-batch reject.
	type decoded struct {
		cg       *cdcs.ConstraintGraph
		lib      *cdcs.Library
		workload string
		err      error
	}
	decs := make([]decoded, len(req.Graphs))
	for i := range req.Graphs {
		g := &req.Graphs[i]
		if g.Name == "" {
			g.Name = fmt.Sprintf("g-%d", i)
		}
		cg, lib, workload, err := decodeInstance(&g.SynthesizeRequest)
		if g.SynthesizeRequest.Workload != "" {
			workload = g.SynthesizeRequest.Workload
		}
		decs[i] = decoded{cg: cg, lib: lib, workload: workload, err: err}
	}

	// The batch root span: members parent under it, so a stitched
	// trace shows the whole fan-out. A propagated traceparent makes
	// the batch a child of the caller's trace.
	parent, propagated := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
	bt := obs.NewTracerWithIDs(s.now, s.ids, parent)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.reg.Counter("serve/batch/rejected").Add(1)
		w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds(s.shed.RetryAfter)))
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	bspan := bt.Start(nil, "serve/batch",
		obs.String("workload", label), obs.Int("graphs", len(req.Graphs)))
	b := &batch{
		workload: label,
		created:  s.now(),
		members:  make([]batchMember, len(req.Graphs)),
		traceID:  bspan.Context().TraceID.String(),
	}
	var admitted []*Job
	var evictions []string
	shedCount, invalid := 0, 0
	for i := range req.Graphs {
		g, d, m := &req.Graphs[i], &decs[i], &b.members[i]
		m.name = g.Name
		if d.err != nil {
			m.err = d.err.Error()
			invalid++
			continue
		}
		tier, load := s.tierLocked()
		if tier != TierShed {
			evicted, ok := s.evictLocked()
			if !ok {
				// Table full with nothing finished to evict: this
				// member sheds; later members re-test as jobs finish.
				tier = TierShed
			} else if evicted != "" {
				evictions = append(evictions, evicted)
			}
		}
		m.tier = tier
		if tier == TierShed {
			shedCount++
			continue
		}
		j := s.newJobLocked(g.SynthesizeRequest, d.cg, d.lib, d.workload, tier, bspan.Context(), load)
		m.jobID = j.ID
		admitted = append(admitted, j)
	}
	if len(admitted) == 0 {
		// Nothing entered the table: the batch is not recorded. Sheds
		// still count toward the tier split; an all-invalid batch is a
		// client error.
		s.mu.Unlock()
		s.reg.Counter("serve/shed/" + TierShed).Add(int64(shedCount))
		s.reg.Counter("serve/batch/rejected").Add(1)
		if shedCount > 0 {
			s.log.Warn("batch shed whole",
				"workload", label, "graphs", len(req.Graphs), "shed", shedCount, "invalid", invalid)
			w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds(s.shed.RetryAfter)))
			httpError(w, http.StatusTooManyRequests,
				"overloaded: all %d decodable members shed at or above the shed watermark %d; retry later",
				shedCount, s.shed.ShedAt)
			return
		}
		httpError(w, http.StatusBadRequest,
			"no graph admitted: all %d members invalid (first: %s)", invalid, b.members[0].err)
		return
	}
	s.nextBatch++
	b.id = fmt.Sprintf("b-%06d", s.nextBatch)
	s.batches[b.id] = b
	s.batchOrder = append(s.batchOrder, b.id)
	s.evictBatchesLocked()
	env := s.batchJSONLocked(b)
	s.mu.Unlock()

	// The batch span covers admission (member runs are their own child
	// spans with their own lifetimes); record it now so the trace ring
	// answers for the batch even while members still run.
	bt.End(bspan, obs.Int("admitted", len(admitted)),
		obs.Int("shed", shedCount), obs.Int("invalid", invalid))
	s.countRoot(propagated)
	s.recordTrace(b.traceID, bt.Roots())
	for _, m := range b.members {
		if m.tier != "" {
			s.reg.Counter("serve/shed/" + m.tier).Add(1)
		}
	}
	s.reg.Counter("serve/batch/submitted").Add(1)
	s.reg.Counter("serve/batch/members").Add(int64(len(req.Graphs)))
	s.reg.Counter("serve/jobs_submitted").Add(int64(len(admitted)))
	for _, id := range evictions {
		s.persistEvict(id)
	}
	for _, j := range admitted {
		s.persistJob(j)
	}
	s.persistBatch(b)
	s.log.Info("batch submitted",
		"batch_id", b.id, "workload", label, "graphs", len(req.Graphs),
		"admitted", len(admitted), "shed", shedCount, "invalid", invalid,
		"trace_id", b.traceID)
	for _, j := range admitted {
		go s.runJob(j)
	}

	if r.URL.Query().Get("stream") == "ndjson" {
		s.streamBatch(w, r, b, env, admitted)
		return
	}
	writeJSON(w, http.StatusAccepted, env)
}

// streamBatch writes the admission envelope, then one NDJSON line per
// admitted member as it finishes, in completion order.
func (s *Server) streamBatch(w http.ResponseWriter, r *http.Request, b *batch, env batchJSON, admitted []*Job) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusAccepted, env)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusAccepted)
	enc := json.NewEncoder(w)
	if err := enc.Encode(env); err != nil {
		return
	}
	flusher.Flush()

	// Fan in completions. The channel is buffered to len(admitted) so
	// every waiter delivers and exits even if the client disconnects
	// mid-stream — no goroutine outlives its job.
	finished := make(chan *Job, len(admitted))
	for _, j := range admitted {
		j := j
		go func() {
			<-j.Done()
			finished <- j
		}()
	}
	ctx := r.Context()
	for range admitted {
		select {
		case j := <-finished:
			line := struct {
				Name string  `json:"name"`
				Job  jobJSON `json:"job"`
			}{Name: b.memberName(j.ID), Job: s.jobView(j)}
			if err := enc.Encode(line); err != nil {
				return
			}
			flusher.Flush()
		case <-ctx.Done():
			return
		}
	}
}

func (s *Server) handleBatchGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	b := s.batches[id]
	var env batchJSON
	if b != nil {
		env = s.batchJSONLocked(b)
	}
	s.mu.Unlock()
	if b == nil {
		httpError(w, http.StatusNotFound, "unknown batch %q", id)
		return
	}
	writeJSON(w, http.StatusOK, env)
}

// evictBatchesLocked bounds retained batch envelopes to MaxJobs,
// dropping oldest first. There is no WAL evict record for batches:
// the next snapshot compaction drops evicted envelopes from durable
// state, and restore re-applies the same bound meanwhile.
func (s *Server) evictBatchesLocked() {
	for len(s.batchOrder) > s.cfg.MaxJobs {
		delete(s.batches, s.batchOrder[0])
		s.batchOrder = s.batchOrder[1:]
	}
}

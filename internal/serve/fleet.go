package serve

import (
	"bytes"
	"io"
	"net/http"
	"time"

	"repro/internal/obs"
)

// forwardedHeader marks a submission one replica already forwarded.
// A forwarded request is always admitted (or shed) locally — never
// re-forwarded — so routing disagreements or stale peer lists cannot
// bounce a job around the fleet.
const forwardedHeader = "X-Cdcs-Forwarded"

// fleetHTTPTimeout bounds one peer forward. Submissions answer
// immediately (202/429), so a slow peer means a struggling peer: fall
// back to local admission rather than stall the client.
const fleetHTTPTimeout = 10 * time.Second

// maybeForward forwards the raw submission body to the workload's
// rendezvous owner when this replica is past its degrade watermark
// and does not own the key. It reports whether the response was
// written (the job now lives on the peer; the passed-through envelope
// carries the peer's address in its server field). Any forward
// failure falls back to local tiered admission — forwarding is an
// optimization, never a correctness dependency.
func (s *Server) maybeForward(w http.ResponseWriter, r *http.Request, body []byte, workload string) bool {
	if s.fleet == nil || r.Header.Get(forwardedHeader) != "" {
		return false
	}
	s.mu.Lock()
	tier, load := s.tierLocked()
	draining := s.draining
	s.mu.Unlock()
	if draining || tier == TierAccept {
		return false
	}
	owner := s.fleet.Route(workload)
	if owner == s.fleet.Self() {
		return false
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		owner+"/v1/synthesize", bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, s.fleet.Self())
	// The forward hop is a span of its own: it joins the caller's
	// trace (or roots a fresh one) and re-injects its context as the
	// outgoing traceparent, so the owner replica's serve/job span
	// parents under this replica's forward span and a stitched trace
	// shows the full hop chain.
	parent, propagated := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
	ft := obs.NewTracerWithIDs(s.now, s.ids, parent)
	fspan := ft.Start(nil, "serve/forward",
		obs.String("peer", owner), obs.String("workload", workload))
	req.Header.Set(obs.TraceparentHeader, fspan.Context().Traceparent())
	traceID := fspan.Context().TraceID.String()
	s.countRoot(propagated)
	resp, err := s.fleetClient.Do(req)
	if err != nil {
		ft.End(fspan, obs.String("outcome", "failed"))
		s.recordTrace(traceID, ft.Roots())
		s.reg.Counter("fleet/forward_failed").Add(1)
		s.log.Warn("peer forward failed; admitting locally",
			"peer", owner, "workload", workload, "trace_id", traceID, "error", err.Error())
		return false
	}
	defer resp.Body.Close()
	ft.End(fspan, obs.Int("status", resp.StatusCode))
	s.recordTrace(traceID, ft.Roots())
	s.reg.Counter("fleet/forwarded").Add(1)
	s.log.Info("job forwarded",
		"peer", owner, "workload", workload, "load", load,
		"trace_id", traceID, "status", resp.StatusCode)
	// Pass the owner's answer through verbatim: its job envelope names
	// the owner in the server field, so the client polls the right
	// replica; its Retry-After still applies if the owner shed too.
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return true
}

// fleetJSON is the GET /v1/fleet shape.
type fleetJSON struct {
	Enabled bool     `json:"enabled"`
	Self    string   `json:"self,omitempty"`
	Peers   []string `json:"peers,omitempty"`
	// Load is the unfinished-job count the admission tiers are judged
	// against, with its two watermarks.
	Load      int `json:"load"`
	DegradeAt int `json:"degradeAt"`
	ShedAt    int `json:"shedAt"`
	// Forwarded / ForwardFailed count submissions this replica handed
	// to (or failed to hand to) their rendezvous owner.
	Forwarded     int64 `json:"forwarded"`
	ForwardFailed int64 `json:"forwardFailed"`
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	load := s.active
	s.mu.Unlock()
	out := fleetJSON{
		Load:          load,
		DegradeAt:     s.shed.DegradeAt,
		ShedAt:        s.shed.ShedAt,
		Forwarded:     s.reg.Counter("fleet/forwarded").Value(),
		ForwardFailed: s.reg.Counter("fleet/forward_failed").Value(),
	}
	if s.fleet != nil {
		out.Enabled = true
		out.Self = s.fleet.Self()
		out.Peers = s.fleet.Peers()
	}
	writeJSON(w, http.StatusOK, out)
}

// jobView renders a job envelope stamped with this replica's fleet
// address, so a client that reached the job through a forward (or a
// load balancer) knows which replica to poll.
func (s *Server) jobView(j *Job) jobJSON {
	jj := j.json()
	if s.fleet != nil {
		jj.Server = s.fleet.Self()
	}
	return jj
}

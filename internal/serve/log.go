package serve

import (
	"io"
	"log/slog"
)

// NewLogger builds the structured logger the daemon and the CLIs
// share: JSON (one object per line — key order is deterministic:
// time, level, msg, then the attrs in emission order, which the log
// tests pin down) or logfmt-style text for interactive terminals.
// Human-readable status always goes through a logger to stderr;
// stdout is reserved for machine output (reports, metrics snapshots,
// NDJSON progress).
func NewLogger(w io.Writer, level slog.Level, jsonFormat bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if jsonFormat {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/durable/faultfs"
	"repro/internal/obs"
)

// getJobTrace fetches GET /v1/jobs/{id}/trace, returning raw bytes and
// the decoded envelope.
func getJobTrace(t *testing.T, ts *httptest.Server, id string) ([]byte, jobTraceJSON) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace of %s: status %d: %s", id, resp.StatusCode, raw)
	}
	var env jobTraceJSON
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("decode trace: %v\n%s", err, raw)
	}
	return raw, env
}

// getRingTrace fetches GET /v1/traces/{traceID} from one replica.
func getRingTrace(t *testing.T, ts *httptest.Server, traceID string) (traceJSON, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/traces/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env traceJSON
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
	}
	return env, resp.StatusCode
}

// findSpan returns the first span named name in the forest (nil when
// absent), depth-first.
func findSpan(spans []*obs.Span, name string) *obs.Span {
	for _, sp := range spans {
		if sp.Name == name {
			return sp
		}
		if found := findSpan(sp.Children, name); found != nil {
			return found
		}
	}
	return nil
}

// TestJobTraceEndpoint: a finished job's /trace serves the full span
// forest — serve/job root with admission, queue-wait and the synth
// phase tree nested under it — byte-stably under a frozen clock and a
// seeded ID source, and the same trace is retrievable from the ring.
func TestJobTraceEndpoint(t *testing.T) {
	clock := faultfs.NewClock(time.Unix(1_700_000_000, 0).UTC())
	_, ts := newTestServer(t, Config{Now: clock.Now, TraceIDs: obs.NewIDSource(42)})

	j, code := submit(t, ts, `{"example":"wan","options":{"workers":1}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	if j.TraceID == "" || len(j.TraceID) != 32 {
		t.Fatalf("job envelope traceId = %q, want 32 hex digits", j.TraceID)
	}
	if j.Links.Trace != "/v1/jobs/"+j.ID+"/trace" {
		t.Fatalf("trace link = %q", j.Links.Trace)
	}
	fin := waitJob(t, ts, j.ID)
	if fin.State != StateDone {
		t.Fatalf("state = %q (error %q)", fin.State, fin.Error)
	}
	if fin.TraceID != j.TraceID {
		t.Errorf("traceId changed across the lifecycle: %q then %q", j.TraceID, fin.TraceID)
	}

	raw1, env := getJobTrace(t, ts, j.ID)
	raw2, _ := getJobTrace(t, ts, j.ID)
	if !bytes.Equal(raw1, raw2) {
		t.Errorf("/trace not byte-stable under the frozen clock:\n%s\nvs\n%s", raw1, raw2)
	}
	if env.TraceID != j.TraceID {
		t.Errorf("trace envelope traceId = %q, want %q", env.TraceID, j.TraceID)
	}
	root := findSpan(env.Spans, "serve/job")
	if root == nil {
		t.Fatalf("no serve/job root span:\n%s", raw1)
	}
	if root.TraceID != j.TraceID || root.SpanID == "" || root.ParentID != "" {
		t.Errorf("root identity = %+v, want fresh root of trace %s", root, j.TraceID)
	}
	if v, _ := root.Attr("outcome"); v != "done" {
		t.Errorf("root outcome = %q, want done", v)
	}
	for _, name := range []string{"serve/admission", "serve/queue-wait"} {
		sp := findSpan(root.Children, name)
		if sp == nil {
			t.Fatalf("missing %s child span", name)
		}
		if sp.ParentID != root.SpanID || sp.TraceID != j.TraceID {
			t.Errorf("%s = parent %q trace %q, want under root", name, sp.ParentID, sp.TraceID)
		}
	}
	// The synth phase tree nests under the serve/job root.
	run := findSpan(root.Children, "synth/run")
	if run == nil {
		t.Fatalf("synth/run not nested under serve/job:\n%s", raw1)
	}
	if run.ParentID != root.SpanID {
		t.Errorf("synth/run parent = %q, want root %q", run.ParentID, root.SpanID)
	}
	for _, phase := range []string{"p2p/plan", "merging/enumerate", "synth/solve"} {
		if findSpan(run.Children, phase) == nil {
			t.Errorf("synth phase %s missing from the job trace", phase)
		}
	}

	// Chrome rendering of the same forest.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	chrome, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(chrome, []byte(`"ph":"X"`)) || !bytes.Contains(chrome, []byte(`"name":"serve/job"`)) {
		t.Errorf("chrome export missing complete events:\n%s", chrome)
	}

	// The finished trace is in the ring too.
	ring, code := getRingTrace(t, ts, j.TraceID)
	if code != http.StatusOK || findSpan(ring.Spans, "serve/job") == nil {
		t.Errorf("ring lookup = status %d spans %v, want the job trace", code, ring.Spans)
	}
	if _, code := getRingTrace(t, ts, "ffffffffffffffffffffffffffffffff"); code != http.StatusNotFound {
		t.Errorf("unknown trace lookup status = %d, want 404", code)
	}
}

// TestJobTraceDeterministicAcrossSeededServers: two servers with the
// same ID seed and the same frozen clock produce byte-identical
// /trace answers for the same submission.
func TestJobTraceDeterministicAcrossSeededServers(t *testing.T) {
	run := func() []byte {
		clock := faultfs.NewClock(time.Unix(1_700_000_000, 0).UTC())
		_, ts := newTestServer(t, Config{Now: clock.Now, TraceIDs: obs.NewIDSource(7)})
		j, code := submit(t, ts, `{"example":"wan","options":{"workers":1}}`)
		if code != http.StatusAccepted {
			t.Fatalf("submit status = %d", code)
		}
		if fin := waitJob(t, ts, j.ID); fin.State != StateDone {
			t.Fatalf("state = %q", fin.State)
		}
		raw, _ := getJobTrace(t, ts, j.ID)
		return raw
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Errorf("same seed, same clock, different trace bytes:\n%s\nvs\n%s", a, b)
	}
}

// TestTraceparentPropagation: a valid inbound traceparent is joined
// (job parents under the remote span, counter roots_propagated), a
// malformed one roots a fresh trace without erroring.
func TestTraceparentPropagation(t *testing.T) {
	srv, ts := newTestServer(t, Config{TraceIDs: obs.NewIDSource(42)})
	remote := obs.NewIDSource(999).NewRoot()

	submitWithHeader := func(tp string) jobJSON {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/synthesize",
			strings.NewReader(`{"example":"wan","options":{"workers":1}}`))
		req.Header.Set("Content-Type", "application/json")
		if tp != "" {
			req.Header.Set(obs.TraceparentHeader, tp)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("submit status = %d: %s", resp.StatusCode, body)
		}
		var j jobJSON
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			t.Fatal(err)
		}
		return j
	}

	j := submitWithHeader(remote.Traceparent())
	if j.TraceID != remote.TraceID.String() {
		t.Errorf("propagated job traceId = %q, want remote %s", j.TraceID, remote.TraceID)
	}
	if fin := waitJob(t, ts, j.ID); fin.State != StateDone {
		t.Fatalf("state = %q", fin.State)
	}
	_, env := getJobTrace(t, ts, j.ID)
	root := findSpan(env.Spans, "serve/job")
	if root == nil || root.ParentID != remote.SpanID.String() {
		t.Errorf("propagated root = %+v, want parent %s", root, remote.SpanID)
	}

	// Malformed headers must not fail admission; they root fresh traces.
	for _, bad := range []string{"not-a-traceparent", "00-zz-zz-01"} {
		jb := submitWithHeader(bad)
		if jb.TraceID == "" || jb.TraceID == remote.TraceID.String() {
			t.Errorf("malformed header %q: traceId = %q, want a fresh root", bad, jb.TraceID)
		}
		waitJob(t, ts, jb.ID)
	}
	jf := submitWithHeader("")
	if jf.TraceID == "" {
		t.Error("headerless submission must still root a trace")
	}
	waitJob(t, ts, jf.ID)

	snap := srv.Registry().Snapshot().CounterMap()
	if snap["trace/roots_propagated"] != 1 {
		t.Errorf("trace/roots_propagated = %d, want 1", snap["trace/roots_propagated"])
	}
	if snap["trace/roots_new"] != 3 {
		t.Errorf("trace/roots_new = %d, want 3 (two malformed + one absent)", snap["trace/roots_new"])
	}
	if snap["trace/spans_started"] == 0 {
		t.Error("trace/spans_started never incremented")
	}
}

// TestBatchMembersJoinBatchTrace: batch member jobs share the batch's
// trace ID, their serve/job spans parent under the serve/batch root,
// and the merged forest is retrievable from the ring under one ID.
func TestBatchMembersJoinBatchTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2, TraceIDs: obs.NewIDSource(42)})
	env, code := submitBatch(t, ts, "/v1/batch", `{"workload":"bt","graphs":[
		{"name":"a","example":"wan","options":{"workers":1}},
		{"name":"b","example":"lan","options":{"workers":1}}]}`)
	if code != http.StatusAccepted {
		t.Fatalf("batch status = %d", code)
	}
	if env.TraceID == "" {
		t.Fatal("batch envelope has no traceId")
	}
	fin := waitBatch(t, ts, env.ID)
	for _, m := range fin.Members {
		if m.Job == nil {
			t.Fatalf("member %s has no job", m.Name)
		}
		if m.Job.TraceID != env.TraceID {
			t.Errorf("member %s traceId = %q, want the batch's %q", m.Name, m.Job.TraceID, env.TraceID)
		}
	}

	ring, code := getRingTrace(t, ts, env.TraceID)
	if code != http.StatusOK {
		t.Fatalf("ring lookup status = %d", code)
	}
	broot := findSpan(ring.Spans, "serve/batch")
	if broot == nil {
		t.Fatalf("serve/batch root not in the ring: %v", ring.Spans)
	}
	jobs := 0
	for _, sp := range ring.Spans {
		if sp.Name == "serve/job" {
			jobs++
			if sp.ParentID != broot.SpanID || sp.TraceID != env.TraceID {
				t.Errorf("member span = parent %q trace %q, want under batch root %q", sp.ParentID, sp.TraceID, broot.SpanID)
			}
		}
	}
	if jobs != 2 {
		t.Errorf("ring holds %d serve/job forests, want 2", jobs)
	}
}

// TestTraceRingEvicts: a cap-1 ring drops the oldest trace whole and
// counts the eviction.
func TestTraceRingEvicts(t *testing.T) {
	srv, ts := newTestServer(t, Config{TraceIDs: obs.NewIDSource(42), TraceRing: 1})
	j1, _ := submit(t, ts, `{"example":"wan","options":{"workers":1}}`)
	waitJob(t, ts, j1.ID)
	j2, _ := submit(t, ts, `{"example":"wan","options":{"workers":1}}`)
	waitJob(t, ts, j2.ID)

	if _, code := getRingTrace(t, ts, j1.TraceID); code != http.StatusNotFound {
		t.Errorf("evicted trace lookup status = %d, want 404", code)
	}
	if _, code := getRingTrace(t, ts, j2.TraceID); code != http.StatusOK {
		t.Errorf("latest trace lookup status = %d, want 200", code)
	}
	snap := srv.Registry().Snapshot().CounterMap()
	if snap["trace/ring_evictions"] == 0 || snap["trace/spans_dropped"] == 0 {
		t.Errorf("eviction counters = %d/%d, want both > 0",
			snap["trace/ring_evictions"], snap["trace/spans_dropped"])
	}
	// The job's own /trace endpoint still answers from the live tracer.
	if _, env := getJobTrace(t, ts, j1.ID); findSpan(env.Spans, "serve/job") == nil {
		t.Error("evicted ring entry must not affect the per-job trace")
	}
}

// TestFleetForwardStitchedTrace is the cross-replica acceptance path:
// a replica past its degrade watermark forwards a submission, and the
// partial forests the two replicas retain stitch into one trace —
// forward hop on A, admission + synth phases on B, the remote
// serve/job span parented under A's serve/forward span.
func TestFleetForwardStitchedTrace(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(release) })
	// Park only the filler (workload "wan"); the forwarded probe job
	// (workload wl-N) must run to completion on the owner.
	setTestJobStartHook(func(j *Job) {
		if j.Workload == "wan" {
			<-release
		}
	})
	defer setTestJobStartHook(nil)

	members := newTestFleet(t, 2, Config{
		MaxConcurrent: 1,
		Shed:          ShedConfig{DegradeAt: 1, ShedAt: 99},
		TraceIDs:      obs.NewIDSource(42),
	})
	a, b := members[0], members[1]

	if _, code := submit(t, a.ts, `{"example":"wan","options":{"workers":1}}`); code != http.StatusAccepted {
		t.Fatalf("filler status = %d", code)
	}
	wl := workloadOwnedBy(t, a.srv.fleet, b.ts.URL)
	j, code := submit(t, a.ts, fmt.Sprintf(`{"example":"lan","workload":%q,"options":{"workers":1}}`, wl))
	if code != http.StatusAccepted {
		t.Fatalf("forwarded submit status = %d", code)
	}
	if j.Server != b.ts.URL {
		t.Fatalf("job server = %q, want forward to %q", j.Server, b.ts.URL)
	}
	if j.TraceID == "" {
		t.Fatal("forwarded job carries no traceId")
	}
	fin := waitJob(t, b.ts, j.ID)
	if fin.State != StateDone {
		t.Fatalf("forwarded job state = %q (error %q)", fin.State, fin.Error)
	}

	// Replica A holds the forward hop under the shared trace ID.
	ringA, code := getRingTrace(t, a.ts, j.TraceID)
	if code != http.StatusOK {
		t.Fatalf("forwarder ring lookup status = %d", code)
	}
	hop := findSpan(ringA.Spans, "serve/forward")
	if hop == nil {
		t.Fatalf("forwarder retains no serve/forward span: %v", ringA.Spans)
	}
	if hop.TraceID != j.TraceID {
		t.Errorf("forward span trace = %q, want %q", hop.TraceID, j.TraceID)
	}
	if peer, _ := hop.Attr("peer"); peer != b.ts.URL {
		t.Errorf("forward span peer = %q, want %q", peer, b.ts.URL)
	}

	// Replica B holds the job, parented under A's hop, with the synth
	// phases nested below.
	ringB, code := getRingTrace(t, b.ts, j.TraceID)
	if code != http.StatusOK {
		t.Fatalf("owner ring lookup status = %d", code)
	}
	remote := findSpan(ringB.Spans, "serve/job")
	if remote == nil {
		t.Fatalf("owner retains no serve/job span: %v", ringB.Spans)
	}
	if remote.TraceID != j.TraceID || remote.ParentID != hop.SpanID {
		t.Errorf("remote root = trace %q parent %q, want trace %q under hop %q",
			remote.TraceID, remote.ParentID, j.TraceID, hop.SpanID)
	}
	if findSpan(remote.Children, "serve/admission") == nil || findSpan(remote.Children, "synth/run") == nil {
		t.Errorf("remote forest lacks admission/synth spans: %+v", remote)
	}
	// The forwarder never saw the trace's job spans, the owner never
	// saw the hop: the trace only exists stitched.
	if findSpan(ringA.Spans, "serve/job") != nil {
		t.Error("forwarder must not hold the remote job's spans")
	}
	if findSpan(ringB.Spans, "serve/forward") != nil {
		t.Error("owner must not hold the forwarder's hop span")
	}

	// Stitch the two partial forests the way client.CollectTrace does:
	// one pid row per replica.
	stitched, err := obs.ChromeExport([]obs.TraceSource{
		{Name: ringA.Server, Spans: ringA.Spans},
		{Name: ringB.Server, Spans: ringB.Spans},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"pid":1`, `"pid":2`, `"name":"serve/forward"`, `"name":"synth/run"`} {
		if !bytes.Contains(stitched, []byte(want)) {
			t.Errorf("stitched trace missing %s:\n%s", want, stitched)
		}
	}

	// Root accounting on the forwarder: the hop rooted a fresh trace.
	if got := a.srv.Registry().Snapshot().CounterMap()["trace/roots_new"]; got < 2 {
		t.Errorf("forwarder trace/roots_new = %d, want filler + hop", got)
	}
	once.Do(func() { close(release) })
}

// TestRestoreReplaysTraceIdentity: a daemon restart preserves trace
// correlation — a restored finished job answers with its original
// trace ID (SSE and /trace), and a re-queued job's re-execution joins
// the original trace as a child of the crashed run's root span.
func TestRestoreReplaysTraceIdentity(t *testing.T) {
	const body = `{"example":"wan","options":{"workers":1}}`
	dir := t.TempDir()

	release := make(chan struct{})
	var releaseOnce sync.Once
	releaseAll := func() { releaseOnce.Do(func() { close(release) }) }
	defer releaseAll()
	first := true
	var hookMu sync.Mutex
	setTestJobStartHook(func(j *Job) {
		hookMu.Lock()
		f := first
		first = false
		hookMu.Unlock()
		if !f {
			<-release
		}
	})
	defer setTestJobStartHook(nil)

	srv1, err := New(Config{
		MaxConcurrent: 1, DataDir: dir,
		TraceIDs: obs.NewIDSource(42), Logger: discardLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())

	j1, _ := submit(t, ts1, body)
	if fin := waitJob(t, ts1, j1.ID); fin.State != StateDone {
		t.Fatalf("job 1 state = %q", fin.State)
	}
	j2, _ := submit(t, ts1, body)
	if j1.TraceID == "" || j2.TraceID == "" {
		t.Fatal("jobs submitted without trace IDs")
	}
	_, env1 := getJobTrace(t, ts1, j1.ID)
	origRoot := findSpan(env1.Spans, "serve/job")
	if origRoot == nil {
		t.Fatal("job 1 has no root span before the crash")
	}

	// Crash the store with job 2 parked mid-run, then restart.
	srv1.store.Crash()
	releaseAll()
	drainServer(t, srv1)
	ts1.Close()
	setTestJobStartHook(nil)

	srv2, ts2 := newTestServer(t, Config{
		MaxConcurrent: 1, DataDir: dir, TraceIDs: obs.NewIDSource(43),
	})
	_ = srv2

	// Finished job: original trace ID on the envelope, the SSE replay,
	// and /trace (spans themselves did not survive — the forest is
	// empty but correctly identified).
	r1, code := getJobStatus(t, ts2.URL, j1.ID)
	if code != http.StatusOK || r1.TraceID != j1.TraceID {
		t.Errorf("restored job traceId = %q (status %d), want %q", r1.TraceID, code, j1.TraceID)
	}
	raw, tenv := getJobTrace(t, ts2, j1.ID)
	if tenv.TraceID != j1.TraceID || len(tenv.Spans) != 0 {
		t.Errorf("restored /trace = %s, want original trace ID with no spans", raw)
	}
	resp, err := http.Get(ts2.URL + "/v1/jobs/" + j1.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events := readSSE(t, resp.Body)
	resp.Body.Close()
	if len(events) == 0 {
		t.Fatal("restored job has no SSE replay")
	}
	for _, e := range events {
		if e.ev.TraceID != j1.TraceID {
			t.Fatalf("restored SSE event traceId = %q, want %q", e.ev.TraceID, j1.TraceID)
		}
	}

	// Re-queued job: the re-execution keeps the trace ID and parents
	// under the crashed run's root span.
	fin2 := waitJob(t, ts2, j2.ID)
	if fin2.State != StateDone || !fin2.Restarted {
		t.Fatalf("re-queued job = %+v, want done and restarted", fin2)
	}
	if fin2.TraceID != j2.TraceID {
		t.Errorf("re-queued job traceId = %q, want original %q", fin2.TraceID, j2.TraceID)
	}
	_, tenv2 := getJobTrace(t, ts2, j2.ID)
	reroot := findSpan(tenv2.Spans, "serve/job")
	if reroot == nil {
		t.Fatal("re-queued job has no new root span")
	}
	if reroot.TraceID != j2.TraceID || reroot.ParentID == "" {
		t.Errorf("re-run root = trace %q parent %q, want a child of the crashed run's root", reroot.TraceID, reroot.ParentID)
	}
	adm := findSpan(reroot.Children, "serve/admission")
	if adm == nil {
		t.Fatal("re-run lacks an admission span")
	}
	if tier, _ := adm.Attr("tier"); tier != "restored" {
		t.Errorf("re-run admission tier = %q, want restored", tier)
	}
}

package serve

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/load"
)

// TestMetricCatalogMatchesDocs cross-checks the metric names the code
// registers against the catalog in docs/OBSERVABILITY.md, in both
// directions: an undocumented metric and a documented-but-gone metric
// both fail. It drives one server through a successful wan job, a
// failing job and a rejected submission so every serve/* counter is
// genuinely registered by its real code path — with a data dir, so
// the durable/wal/* instruments are registered by a real store too —
// then snapshots the shared registry (which a full exact run
// populates with every algorithm counter). The cdcs-load generator's
// load/* counters share the catalog, so a tiny load.Run against the
// same server publishes them into the same registry first.
func TestMetricCatalogMatchesDocs(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxJobs: 1, DataDir: t.TempDir()})

	// Success path: registers all merging/synth/ucp/p2p counters plus
	// the serve submission/completion/duration instruments.
	j, code := submit(t, ts, `{"example":"wan","options":{"workers":1}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	// Rejection path (table of one unfinished job): serve/jobs_rejected.
	for try := 0; try < 20; try++ {
		if _, code = submit(t, ts, `{"example":"wan"}`); code == http.StatusTooManyRequests {
			break
		}
		waitJob(t, ts, j.ID)
		if j, code = submit(t, ts, `{"example":"wan","options":{"workers":1}}`); code != http.StatusAccepted {
			t.Fatalf("refill submit status = %d", code)
		}
	}
	if code != http.StatusTooManyRequests {
		t.Fatal("could not exercise the rejection path")
	}
	waitJob(t, ts, j.ID)
	// Failure path: serve/jobs_failed.
	fj, code := submit(t, ts, fmt.Sprintf(`{"graph":%s,"library":%s}`, infeasibleGraph, infeasibleLibrary))
	if code != http.StatusAccepted {
		t.Fatalf("failing submit status = %d", code)
	}
	waitJob(t, ts, fj.ID)

	// Load-generator path: one tiny burst registers every load/*
	// counter in the shared registry. Values are irrelevant here —
	// only the registered names are cross-checked.
	loadCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := load.Run(loadCtx, load.Config{
		Targets:  []string{ts.URL},
		QPS:      20,
		Duration: 100 * time.Millisecond,
		Deadline: 20 * time.Second,
		Registry: srv.Registry(),
	}); err != nil {
		t.Fatalf("load.Run: %v", err)
	}

	registered := make(map[string]bool)
	snap := srv.Registry().Snapshot()
	perArity := regexp.MustCompile(`/k\d+$`)
	for _, c := range snap.Counters {
		registered[perArity.ReplaceAllString(c.Name, "/k<k>")] = true
	}
	for _, g := range snap.Gauges {
		registered[g.Name] = true
	}
	for _, h := range snap.Histograms {
		registered[h.Name] = true
	}

	documented := docMetricNames(t)

	for name := range registered {
		if !documented[name] {
			t.Errorf("metric %q is registered in code but missing from the docs/OBSERVABILITY.md catalog", name)
		}
	}
	for name := range documented {
		if !registered[name] {
			t.Errorf("metric %q is documented in docs/OBSERVABILITY.md but never registered by this full serve scenario — stale docs or dead metric", name)
		}
	}
}

// docMetricNames extracts every metric name from the "## Metric
// catalog" section of docs/OBSERVABILITY.md: backticked tokens that
// look like registry names (lowercase path with a '/'), excluding
// prefix mentions like `p2p/cache/`.
func docMetricNames(t *testing.T) map[string]bool {
	t.Helper()
	data, err := os.ReadFile("../../docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("read docs: %v", err)
	}
	text := string(data)
	start := strings.Index(text, "## Metric catalog")
	if start < 0 {
		t.Fatal("docs/OBSERVABILITY.md has no \"## Metric catalog\" section")
	}
	section := text[start:]
	// The catalog ends at the next same-level heading.
	if end := strings.Index(section[2:], "\n## "); end >= 0 {
		section = section[:end+2]
	}
	nameRe := regexp.MustCompile("`([a-z0-9_]+(?:/[a-z0-9_<>]+)+)`")
	out := make(map[string]bool)
	for _, m := range nameRe.FindAllStringSubmatch(section, -1) {
		out[m[1]] = true
	}
	if len(out) == 0 {
		t.Fatal("no metric names parsed from the catalog section")
	}
	return out
}

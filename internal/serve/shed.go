package serve

import (
	"time"
)

// Admission tiers. Every POST /v1/synthesize lands in exactly one,
// decided by the unfinished-job load (queued + running) against the
// shed watermarks; each decision increments its serve/shed/* counter
// and emits a structured log event.
const (
	// TierAccept admits the job at its full requested budget.
	TierAccept = "accepted"
	// TierDegrade admits the job with a tightened Timeout budget (the
	// anytime solver then returns its best incumbent at the cap), so
	// an overloaded daemon keeps answering — just less exhaustively.
	TierDegrade = "degraded"
	// TierShed refuses the job with 429 + Retry-After.
	TierShed = "shed"
)

// ShedConfig sets the tiered load-shedding policy. The zero value
// derives both watermarks from MaxConcurrent.
type ShedConfig struct {
	// DegradeAt is the unfinished-job load (queued + running, the
	// submission included would make load+1) at which new submissions
	// are admitted degraded. <=0 means 2*MaxConcurrent.
	DegradeAt int
	// ShedAt is the load at which new submissions are shed with 429 +
	// Retry-After. <=0 means 4*MaxConcurrent; always normalized to at
	// least DegradeAt+1 so the degrade band exists.
	ShedAt int
	// DegradedTimeout caps the per-job Timeout budget in the degrade
	// tier (requests asking for less keep their own). <=0 means 2s.
	DegradedTimeout time.Duration
	// RetryAfter is the backoff hint returned with every shed (and
	// drain) response. <=0 means 1s.
	RetryAfter time.Duration
}

// normalize resolves defaults against the concurrency bound.
func (c ShedConfig) normalize(maxConcurrent int) ShedConfig {
	if c.DegradeAt <= 0 {
		c.DegradeAt = 2 * maxConcurrent
	}
	if c.ShedAt <= 0 {
		c.ShedAt = 4 * maxConcurrent
	}
	if c.ShedAt <= c.DegradeAt {
		c.ShedAt = c.DegradeAt + 1
	}
	if c.DegradedTimeout <= 0 {
		c.DegradedTimeout = 2 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// tierLocked classifies the next submission by current load. Caller
// holds s.mu.
func (s *Server) tierLocked() (tier string, load int) {
	load = s.active
	switch {
	case load >= s.shed.ShedAt:
		return TierShed, load
	case load >= s.shed.DegradeAt:
		return TierDegrade, load
	default:
		return TierAccept, load
	}
}

// retryAfterSeconds renders the Retry-After hint (ceiling, min 1s —
// the header has whole-second resolution).
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

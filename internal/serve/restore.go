package serve

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/durable"
	"repro/internal/obs"
)

// persistJob logs an accepted submission to the WAL. All persist*
// helpers are called WITHOUT s.mu held (the store may compact, and
// compaction snapshots the table through s.mu) and tolerate a closed
// or failing store: durability degrades to lossy, serving never
// stops.
func (s *Server) persistJob(j *Job) {
	if s.store == nil {
		return
	}
	spec := j.spec()
	if err := s.store.AppendJob(j.ID, j.Workload, j.created, spec, j.traceparent()); err != nil {
		s.walWarn("job", j.ID, err)
	}
}

func (s *Server) persistState(j *Job, state string) {
	if s.store == nil {
		return
	}
	if err := s.store.AppendState(j.ID, state); err != nil {
		s.walWarn("state", j.ID, err)
	}
}

// persistResult logs the terminal outcome; the stored Result bytes
// are what a restarted daemon serves, byte-identically, for this job.
func (s *Server) persistResult(j *Job) {
	if s.store == nil {
		return
	}
	j.mu.Lock()
	res := j.result
	errMsg := j.errMsg
	j.mu.Unlock()
	var raw json.RawMessage
	if res != nil {
		data, err := json.Marshal(res)
		if err != nil {
			s.walWarn("result", j.ID, err)
			return
		}
		raw = data
	}
	if err := s.store.AppendResult(j.ID, raw, errMsg); err != nil {
		s.walWarn("result", j.ID, err)
	}
}

// persistBatch logs a batch envelope. Member jobs are persisted as
// ordinary job records — the envelope only binds the membership, so a
// crash mid-batch re-queues exactly the unfinished members through
// the normal job replay.
func (s *Server) persistBatch(b *batch) {
	if s.store == nil {
		return
	}
	if err := s.store.AppendBatch(b.id, b.workload, b.created, b.durableMembers()); err != nil {
		s.walWarn("batch", b.id, err)
	}
}

func (b *batch) durableMembers() []durable.BatchMember {
	out := make([]durable.BatchMember, len(b.members))
	for i, m := range b.members {
		out[i] = durable.BatchMember{Name: m.name, JobID: m.jobID, Tier: m.tier, Error: m.err}
	}
	return out
}

func (s *Server) persistEvict(id string) {
	if s.store == nil {
		return
	}
	if err := s.store.AppendEvict(id); err != nil {
		s.walWarn("evict", id, err)
	}
}

func (s *Server) walWarn(kind, id string, err error) {
	if errors.Is(err, durable.ErrClosed) {
		return // shutdown/crash race: persistence is over by design
	}
	s.log.Warn("wal append failed", "record", kind, "job_id", id, "error", err.Error())
}

// spec returns the job's submission JSON: the verbatim replayed bytes
// for a restored job, a fresh marshal otherwise.
func (j *Job) spec() json.RawMessage {
	if len(j.specRaw) > 0 {
		return j.specRaw
	}
	data, err := json.Marshal(j.req)
	if err != nil {
		return nil
	}
	return data
}

// snapshotTable renders the current job table for WAL compaction —
// the durable.Options.Source hook. Takes s.mu, so the store must
// never be called while holding it.
func (s *Server) snapshotTable() []durable.Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]durable.Job, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		if j == nil {
			continue
		}
		out = append(out, j.durable())
	}
	return out
}

// snapshotBatches renders the retained batch envelopes for WAL
// compaction — the durable.Options.BatchSource hook. Takes s.mu, so
// the store must never be called while holding it.
func (s *Server) snapshotBatches() []durable.Batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]durable.Batch, 0, len(s.batchOrder))
	for _, id := range s.batchOrder {
		b := s.batches[id]
		if b == nil {
			continue
		}
		out = append(out, durable.Batch{
			ID:       b.id,
			Workload: b.workload,
			Created:  b.created,
			Members:  b.durableMembers(),
		})
	}
	return out
}

// durable renders the job's current durable view. Lock order is
// s.mu → j.mu, same as the listing path.
func (j *Job) durable() durable.Job {
	spec := j.spec()
	j.mu.Lock()
	defer j.mu.Unlock()
	dj := durable.Job{
		ID:        j.ID,
		Workload:  j.Workload,
		Created:   j.created,
		State:     j.state,
		Restarted: j.restarted,
		Spec:      spec,
		Error:     j.errMsg,
		Trace:     j.traceparent(),
	}
	if j.result != nil {
		if data, err := json.Marshal(j.result); err == nil {
			dj.Result = data
		}
	}
	return dj
}

// restore folds the replayed durable state back into the job table:
// finished jobs come back queryable (with synthetic run_start/run_end
// SSE replay), interrupted jobs are re-queued through the normal
// synth pipeline and marked restarted. Runs during New, before the
// server accepts traffic.
func (s *Server) restore(rep *durable.Replay) {
	if rep.Skipped > 0 {
		s.log.Warn("wal replay skipped records", "skipped", rep.Skipped)
	}
	jobs := rep.Jobs
	// Respect the retention bound: keep every unfinished job, drop
	// the oldest finished ones beyond MaxJobs.
	if over := len(jobs) - s.cfg.MaxJobs; over > 0 {
		kept := make([]*durable.Job, 0, s.cfg.MaxJobs)
		for _, dj := range jobs {
			if over > 0 && (dj.State == StateDone || dj.State == StateFailed) {
				over--
				continue
			}
			kept = append(kept, dj)
		}
		jobs = kept
	}

	var requeued []*Job
	restoredDone := 0
	for _, dj := range jobs {
		var n int
		if _, err := fmt.Sscanf(dj.ID, "j-%d", &n); err == nil && n > s.nextID {
			s.nextID = n
		}
		switch dj.State {
		case StateDone, StateFailed:
			j := s.restoreFinished(dj)
			s.jobs[j.ID] = j
			s.order = append(s.order, j.ID)
			restoredDone++
		default: // queued or running at crash time: re-queue
			j := s.requeue(dj)
			s.jobs[j.ID] = j
			s.order = append(s.order, j.ID)
			if j.State() == StateQueued {
				s.active++
				requeued = append(requeued, j)
			} else {
				// Rebuild failed permanently: record it so the next
				// restart does not retry a spec that cannot decode.
				s.persistResult(j)
			}
		}
	}
	// The re-queue marker makes a second crash replay these jobs as
	// restarted too, and tells clients the run is a re-execution.
	for _, j := range requeued {
		s.persistState(j, durable.StateRestarted)
		s.wg.Add(1)
		go s.runJob(j)
	}
	// Rebind batch envelopes to their (restored or re-queued) member
	// jobs, oldest dropped beyond the retention bound. Members whose
	// jobs aged out stay listed without a live job view.
	dbs := rep.Batches
	if over := len(dbs) - s.cfg.MaxJobs; over > 0 {
		dbs = dbs[over:]
	}
	for _, db := range dbs {
		var n int
		if _, err := fmt.Sscanf(db.ID, "b-%d", &n); err == nil && n > s.nextBatch {
			s.nextBatch = n
		}
		b := &batch{
			id:       db.ID,
			workload: db.Workload,
			created:  db.Created,
			restored: true,
			members:  make([]batchMember, len(db.Members)),
		}
		for i, m := range db.Members {
			b.members[i] = batchMember{name: m.Name, jobID: m.JobID, tier: m.Tier, err: m.Error}
		}
		s.batches[b.id] = b
		s.batchOrder = append(s.batchOrder, b.id)
	}
	if restoredDone > 0 || len(requeued) > 0 || len(dbs) > 0 {
		s.log.Info("job table restored",
			"finished", restoredDone, "requeued", len(requeued), "batches", len(dbs),
			"replayed_records", rep.Records, "skipped", rep.Skipped)
	}
}

// restoreFinished rebuilds a terminal job, including a minimal
// synthetic event history so SSE replay of a restored job still
// serves a contiguous, cleanly-terminated stream.
func (s *Server) restoreFinished(dj *durable.Job) *Job {
	j := &Job{
		ID:        dj.ID,
		Workload:  dj.Workload,
		now:       s.now,
		restarted: dj.Restarted,
		specRaw:   dj.Spec,
		state:     dj.State,
		created:   dj.Created,
		errMsg:    dj.Error,
		events:    obs.NewEvents(s.cfg.EventBuffer, nil),
		done:      make(chan struct{}),
	}
	// Replay the persisted trace identity: the restored job's SSE
	// history and /trace endpoint answer with the original trace ID
	// (the spans themselves did not survive the crash).
	if sc, ok := obs.ParseTraceparent(dj.Trace); ok {
		j.sc = sc
		j.traceID = sc.TraceID.String()
		j.events.SetTrace(j.traceID, sc.SpanID.String())
	}
	if len(dj.Result) > 0 {
		var res Result
		if err := json.Unmarshal(dj.Result, &res); err == nil {
			if res.Degradation == nil {
				res.Degradation = []string{}
			}
			j.result = &res
		} else {
			s.log.Warn("restored result undecodable", "job_id", dj.ID, "error", err.Error())
		}
	}
	start := obs.Event{Type: obs.EventRunStart}
	if j.result != nil {
		start.Channels = j.result.Channels
	}
	j.events.Publish(start)
	if dj.State == StateFailed {
		j.events.Publish(obs.Event{Type: obs.EventRunError, Err: dj.Error})
	} else if j.result != nil {
		j.events.Publish(obs.Event{
			Type:     obs.EventRunEnd,
			Cost:     j.result.Cost,
			Optimal:  j.result.Optimal,
			Degraded: j.result.Degraded,
		})
	} else {
		j.events.Publish(obs.Event{Type: obs.EventRunEnd})
	}
	j.events.Close()
	close(j.done)
	return j
}

// requeue rebuilds an interrupted job for idempotent re-execution. A
// spec that no longer decodes (should not happen: it decoded when
// first accepted) fails the job instead of dropping it silently.
func (s *Server) requeue(dj *durable.Job) *Job {
	j := &Job{
		ID:        dj.ID,
		Workload:  dj.Workload,
		now:       s.now,
		restarted: true,
		specRaw:   dj.Spec,
		state:     StateQueued,
		created:   dj.Created,
		events:    obs.NewEvents(s.cfg.EventBuffer, nil),
		done:      make(chan struct{}),
	}
	// The persisted trace context makes the re-execution a child of
	// the original trace: the new serve/job root parents under the
	// crashed run's root span, so collectors stitch both attempts.
	parent, _ := obs.ParseTraceparent(dj.Trace)
	var req SynthesizeRequest
	decodeErr := json.Unmarshal(dj.Spec, &req)
	if decodeErr == nil {
		cg, lib, _, err := decodeInstance(&req)
		if err == nil {
			j.req = req
			j.cg = cg
			j.lib = lib
			s.initJobTrace(j, parent, "restored", 0)
			return j
		}
		decodeErr = err
	}
	j.state = StateFailed
	j.errMsg = "restart could not rebuild the job: " + decodeErr.Error()
	if parent.Valid() {
		j.sc = parent
		j.traceID = parent.TraceID.String()
		j.events.SetTrace(j.traceID, parent.SpanID.String())
	}
	j.events.Publish(obs.Event{Type: obs.EventRunStart})
	j.events.Publish(obs.Event{Type: obs.EventRunError, Err: j.errMsg})
	j.events.Close()
	close(j.done)
	s.log.Error("requeue failed", "job_id", dj.ID, "error", decodeErr.Error())
	return j
}

package serve

import (
	"bytes"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/durable/faultfs"
)

// TestInjectedClockDeterministicLifetimes: with a frozen injected
// clock every job timestamp — created, started, finished — is exactly
// the frozen instant, and the job-duration histogram records an exact
// zero. Before the clock seam, serve called time.Now directly and
// lifetime assertions could only be approximate.
func TestInjectedClockDeterministicLifetimes(t *testing.T) {
	t0 := time.Unix(1_700_000_000, 0).UTC()
	clock := faultfs.NewClock(t0)
	srv, ts := newTestServer(t, Config{Now: clock.Now})

	j, code := submit(t, ts, `{"example":"wan","options":{"workers":1}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	fin := waitJob(t, ts, j.ID)
	if fin.State != StateDone {
		t.Fatalf("state = %q, want done", fin.State)
	}
	if want := t0.Format(time.RFC3339Nano); fin.Created != want {
		t.Errorf("created = %q, want the frozen instant %q", fin.Created, want)
	}

	job := srv.getJob(j.ID)
	job.mu.Lock()
	started, finished := job.started, job.finished
	job.mu.Unlock()
	if !started.Equal(t0) || !finished.Equal(t0) {
		t.Errorf("started = %v finished = %v, want both frozen at %v", started, finished, t0)
	}

	// Zero elapsed wall time lands in the first duration bucket.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if want := []byte("serve_job_duration_ms_bucket{le=\"1\"} 1\n"); !bytes.Contains(body, want) {
		t.Errorf("/metrics missing %q (frozen clock must record an exact zero duration)", want)
	}
}

// TestClockAdvanceSeparatesTimestamps: advancing the clock between
// lifecycle stages is visible in the stored timestamps.
func TestClockAdvanceSeparatesTimestamps(t *testing.T) {
	t0 := time.Unix(1_700_000_000, 0).UTC()
	clock := faultfs.NewClock(t0)

	// The start hook runs strictly after started is stamped and before
	// the job can finish, so advancing the clock there splits the
	// lifetime deterministically: created = started = t0, finished =
	// t0 + 1h.
	setTestJobStartHook(func(j *Job) { clock.Advance(time.Hour) })
	defer setTestJobStartHook(nil)

	srv, ts := newTestServer(t, Config{Now: clock.Now})
	j, _ := submit(t, ts, `{"example":"wan","options":{"workers":1}}`)
	fin := waitJob(t, ts, j.ID)
	if fin.State != StateDone {
		t.Fatalf("state = %q, want done", fin.State)
	}

	job := srv.getJob(j.ID)
	job.mu.Lock()
	created, started, finished := job.created, job.started, job.finished
	job.mu.Unlock()
	if !created.Equal(t0) || !started.Equal(t0) {
		t.Errorf("created = %v started = %v, want both %v", created, started, t0)
	}
	if want := t0.Add(time.Hour); !finished.Equal(want) {
		t.Errorf("finished = %v, want exactly %v", finished, want)
	}
}

package serve

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// TestCrashRecovery is the end-to-end durability property at the serve
// layer: run a daemon with a data dir, let one job finish and kill the
// store while a second is mid-run, garble the WAL tail, then bring up
// a second daemon on the same directory. The finished job must come
// back with a byte-identical result and a clean synthetic SSE stream;
// the interrupted job must be re-queued, marked restarted, and re-run
// to completion; the torn tail must be skipped and counted.
func TestCrashRecovery(t *testing.T) {
	const body = `{"example":"wan","options":{"workers":1}}`
	dir := t.TempDir()

	// Park every job that starts while parking is enabled; the first
	// job runs unhindered so it can finish before the crash.
	release := make(chan struct{})
	var releaseOnce sync.Once
	releaseAll := func() { releaseOnce.Do(func() { close(release) }) }
	defer releaseAll()
	started := make(chan string, 8)
	var hookCalls int32
	setTestJobStartHook(func(j *Job) {
		if atomic.AddInt32(&hookCalls, 1) == 1 {
			return
		}
		started <- j.ID
		<-release
	})
	defer setTestJobStartHook(nil)

	srv1, err := New(Config{MaxConcurrent: 1, DataDir: dir, Logger: discardLogger()})
	if err != nil {
		t.Fatalf("first daemon: %v", err)
	}
	ts1 := httptest.NewServer(srv1.Handler())

	j1, code := submit(t, ts1, body)
	if code != http.StatusAccepted {
		t.Fatalf("job 1 status = %d", code)
	}
	fin1 := waitJob(t, ts1, j1.ID)
	if fin1.State != StateDone {
		t.Fatalf("job 1 state = %q, want done", fin1.State)
	}
	result1 := rawResult(t, ts1.URL, j1.ID)

	j2, code := submit(t, ts1, body)
	if code != http.StatusAccepted {
		t.Fatalf("job 2 status = %d", code)
	}
	if id := <-started; id != j2.ID {
		t.Fatalf("running job is %s, want %s", id, j2.ID)
	}

	// kill -9 the persistence mid-run: everything after this instant is
	// lost, so job 2's completion below never reaches the WAL.
	srv1.store.Crash()
	releaseAll()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv1.Drain(ctx); err != nil {
		t.Fatalf("drain first daemon: %v", err)
	}
	ts1.Close()

	// The torn tail a real crash leaves behind.
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"result","id":"j-0000`); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	// Second daemon, same directory. Jobs must re-run unparked.
	setTestJobStartHook(nil)
	srv2, ts2 := newTestServer(t, Config{MaxConcurrent: 1, DataDir: dir})

	if got := srv2.Registry().Snapshot().CounterMap()["durable/wal/replay_skipped"]; got != 1 {
		t.Errorf("durable/wal/replay_skipped = %d, want 1 (the torn tail)", got)
	}

	// Finished job: restored, byte-identical result, not marked
	// restarted (it never re-ran).
	rj1, code := getJobStatus(t, ts2.URL, j1.ID)
	if code != http.StatusOK || rj1.State != StateDone {
		t.Fatalf("restored job 1 = %+v (status %d), want done", rj1, code)
	}
	if rj1.Restarted {
		t.Error("restored finished job must not be marked restarted")
	}
	if got := rawResult(t, ts2.URL, j1.ID); string(got) != string(result1) {
		t.Errorf("restored result differs from the original:\n  before: %s\n  after:  %s", result1, got)
	}

	// Interrupted job: re-queued, marked restarted, re-runs to done.
	rj2 := waitJob(t, ts2, j2.ID)
	if rj2.State != StateDone {
		t.Fatalf("re-queued job 2 state = %q (error %q), want done", rj2.State, rj2.Error)
	}
	if !rj2.Restarted {
		t.Error("re-queued job must report restarted: true")
	}

	// SSE replay of the restored finished job: a synthetic but
	// contiguous, cleanly-terminated stream.
	checkRestoredStream(t, ts2, j1.ID)
	// SSE replay of the re-run job: the full real stream.
	resp, err := http.Get(ts2.URL + "/v1/jobs/" + j2.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	checkEventStream(t, readSSE(t, resp.Body))
	resp.Body.Close()
}

// checkRestoredStream asserts the synthetic stream of a restored
// finished job: contiguous from seq 1, run_start first, run_end last,
// and the stream terminates on its own (readSSE returns).
func checkRestoredStream(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readSSE(t, resp.Body)
	if len(events) < 2 {
		t.Fatalf("restored stream has %d events, want at least run_start + run_end", len(events))
	}
	for i, e := range events {
		if want := int64(i + 1); e.id != want || e.ev.Seq != want {
			t.Fatalf("restored stream event %d: id=%d seq=%d, want both %d", i, e.id, e.ev.Seq, want)
		}
	}
	if events[0].ev.Type != obs.EventRunStart {
		t.Errorf("restored stream starts with %q, want run_start", events[0].ev.Type)
	}
	if last := events[len(events)-1].ev.Type; last != obs.EventRunEnd {
		t.Errorf("restored stream ends with %q, want run_end", last)
	}
}

// rawResult fetches a job and returns its "result" JSON verbatim —
// the byte-identity probe.
func rawResult(t *testing.T, url, id string) json.RawMessage {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if len(env.Result) == 0 {
		t.Fatalf("job %s has no result", id)
	}
	return env.Result
}

// TestRestoreRespectsRetention: more finished jobs in the WAL than
// MaxJobs must restore to exactly MaxJobs, dropping the oldest.
func TestRestoreRespectsRetention(t *testing.T) {
	const body = `{"example":"wan","options":{"workers":1}}`
	dir := t.TempDir()

	srv1, err := New(Config{MaxConcurrent: 1, MaxJobs: 8, DataDir: dir, Logger: discardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	var ids []string
	for i := 0; i < 3; i++ {
		j, code := submit(t, ts1, body)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d status = %d", i, code)
		}
		waitJob(t, ts1, j.ID)
		ids = append(ids, j.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv1.Drain(ctx)
	ts1.Close()

	// A tighter retention on restart keeps only the newest finished.
	_, ts2 := newTestServer(t, Config{MaxConcurrent: 1, MaxJobs: 1, DataDir: dir})
	if _, code := getJobStatus(t, ts2.URL, ids[0]); code != http.StatusNotFound {
		t.Errorf("oldest job survived a MaxJobs=1 restore (status %d), want 404", code)
	}
	if got, code := getJobStatus(t, ts2.URL, ids[2]); code != http.StatusOK || got.State != StateDone {
		t.Errorf("newest job = %+v (status %d), want done", got, code)
	}

	// New submissions must not collide with replayed IDs.
	j, code := submit(t, ts2, body)
	if code != http.StatusAccepted {
		t.Fatalf("post-restore submit status = %d", code)
	}
	for _, old := range ids {
		if j.ID == old {
			t.Fatalf("post-restore job reused replayed ID %s", j.ID)
		}
	}
	waitJob(t, ts2, j.ID)
}

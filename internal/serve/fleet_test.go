package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
)

// fleetMember is one test replica: its httptest front end is created
// first (so the fleet addresses are known), then the Server is built
// with the full membership and patched in behind the handler.
type fleetMember struct {
	srv     *Server
	ts      *httptest.Server
	install func(http.Handler)
}

// newTestFleet starts n replicas that all share one membership list.
func newTestFleet(t *testing.T, n int, cfg Config) []fleetMember {
	t.Helper()
	members := make([]fleetMember, n)
	urls := make([]string, n)
	for i := range members {
		var (
			mu sync.Mutex
			h  http.Handler
		)
		i := i
		members[i].ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			handler := h
			mu.Unlock()
			if handler == nil {
				http.Error(w, "not ready", http.StatusServiceUnavailable)
				return
			}
			handler.ServeHTTP(w, r)
		}))
		urls[i] = members[i].ts.URL
		setHandler := func(nh http.Handler) {
			mu.Lock()
			h = nh
			mu.Unlock()
		}
		members[i].install = setHandler
	}
	for i := range members {
		router, err := fleet.New(urls[i], urls)
		if err != nil {
			t.Fatalf("fleet.New: %v", err)
		}
		c := cfg
		c.Fleet = router
		c.Logger = discardLogger()
		srv, err := New(c)
		if err != nil {
			t.Fatalf("serve.New replica %d: %v", i, err)
		}
		members[i].srv = srv
		members[i].install(srv.Handler())
	}
	t.Cleanup(func() {
		for _, m := range members {
			m.ts.Close()
			drainServer(t, m.srv)
		}
	})
	return members
}

func drainServer(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Drain(ctx)
}

func TestFleetEndpointStandalone(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fj fleetJSON
	if err := json.NewDecoder(resp.Body).Decode(&fj); err != nil {
		t.Fatal(err)
	}
	if fj.Enabled || fj.Self != "" || len(fj.Peers) != 0 {
		t.Errorf("standalone fleet status = %+v, want disabled", fj)
	}
	if fj.ShedAt == 0 {
		t.Error("fleet status must report the shed watermark even standalone")
	}
}

// workloadOwnedBy finds a workload label the router assigns to the
// wanted peer, so forwarding tests can steer deterministically.
func workloadOwnedBy(t *testing.T, r *fleet.Router, owner string) string {
	t.Helper()
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("wl-%d", i)
		if r.Route(key) == owner {
			return key
		}
	}
	t.Fatalf("no workload routes to %s", owner)
	return ""
}

// TestFleetForwardsPastDegrade: a replica past its degrade watermark
// hands a submission it does not own to the rendezvous owner; the
// passed-through envelope names the owner, and the job lives there.
func TestFleetForwardsPastDegrade(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(release) })
	setTestJobStartHook(func(j *Job) { <-release })
	defer setTestJobStartHook(nil)

	members := newTestFleet(t, 2, Config{
		MaxConcurrent: 1,
		Shed:          ShedConfig{DegradeAt: 1, ShedAt: 99},
	})
	a, b := members[0], members[1]

	// One parked job puts A at its degrade watermark.
	if _, code := submit(t, a.ts, `{"example":"wan","options":{"workers":1}}`); code != http.StatusAccepted {
		t.Fatalf("filler job status = %d", code)
	}

	// B is idle, so the forwarded job is accepted at full budget there.
	wl := workloadOwnedBy(t, a.srv.fleet, b.ts.URL)
	body := fmt.Sprintf(`{"example":"wan","workload":%q,"options":{"workers":1}}`, wl)
	j, code := submit(t, a.ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("forwarded submit status = %d, want 202", code)
	}
	if j.Server != b.ts.URL {
		t.Fatalf("job server = %q, want owner %q", j.Server, b.ts.URL)
	}
	if j.Admission != "" {
		t.Errorf("job admission = %q, want accepted on the idle owner", j.Admission)
	}
	if a.srv.getJob(j.ID) != nil && b.srv.getJob(j.ID) == nil {
		t.Error("job must live on the owner replica, not the forwarder")
	}
	if b.srv.getJob(j.ID) == nil {
		t.Fatal("job not found on the owner replica")
	}
	if got := a.srv.Registry().Snapshot().CounterMap()["fleet/forwarded"]; got != 1 {
		t.Errorf("forwarder fleet/forwarded = %d, want 1", got)
	}

	// A self-owned workload stays local even past the watermark.
	selfWl := workloadOwnedBy(t, a.srv.fleet, a.ts.URL)
	j2, code := submit(t, a.ts, fmt.Sprintf(`{"example":"wan","workload":%q,"options":{"workers":1}}`, selfWl))
	if code != http.StatusAccepted {
		t.Fatalf("self-owned submit status = %d", code)
	}
	if j2.Server != a.ts.URL || j2.Admission != TierDegrade {
		t.Errorf("self-owned job = server %q admission %q, want local degraded", j2.Server, j2.Admission)
	}

	// A forwarded request is never re-forwarded: B, also configured
	// with A as a peer, admits it locally despite the marker.
	req, _ := http.NewRequest(http.MethodPost, b.ts.URL+"/v1/synthesize",
		strings.NewReader(`{"example":"wan","options":{"workers":1}}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, a.ts.URL)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var j3 jobJSON
	if err := json.NewDecoder(resp.Body).Decode(&j3); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if j3.Server != b.ts.URL {
		t.Errorf("marked request landed on %q, want local admission on B", j3.Server)
	}
	once.Do(func() { close(release) })
}

// TestFleetForwardFailureFallsBack: a dead owner peer must not take
// the forwarder down with it — the submission is admitted locally at
// its tier and the failure counted.
func TestFleetForwardFailsOpen(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(release) })
	setTestJobStartHook(func(j *Job) { <-release })
	defer setTestJobStartHook(nil)

	// A real replica plus a peer address nobody listens on.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	var (
		mu sync.Mutex
		h  http.Handler
	)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		handler := h
		mu.Unlock()
		handler.ServeHTTP(w, r)
	}))
	defer ts.Close()
	router, err := fleet.New(ts.URL, []string{ts.URL, deadURL})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		MaxConcurrent: 1,
		Shed:          ShedConfig{DegradeAt: 1, ShedAt: 99},
		Fleet:         router,
		Logger:        discardLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	h = srv.Handler()
	mu.Unlock()

	if _, code := submit(t, &httptest.Server{URL: ts.URL}, `{"example":"wan","options":{"workers":1}}`); code != http.StatusAccepted {
		t.Fatal("filler job rejected")
	}
	wl := workloadOwnedBy(t, router, deadURL)
	j, code := submit(t, &httptest.Server{URL: ts.URL}, fmt.Sprintf(`{"example":"wan","workload":%q,"options":{"workers":1}}`, wl))
	if code != http.StatusAccepted {
		t.Fatalf("fallback submit status = %d, want 202 local degraded admission", code)
	}
	if j.Admission != TierDegrade || j.Server != ts.URL {
		t.Errorf("fallback job = admission %q server %q, want local degraded", j.Admission, j.Server)
	}
	snap := srv.Registry().Snapshot().CounterMap()
	if snap["fleet/forward_failed"] != 1 || snap["fleet/forwarded"] != 0 {
		t.Errorf("forward counters = forwarded %d failed %d, want 0/1",
			snap["fleet/forwarded"], snap["fleet/forward_failed"])
	}
	once.Do(func() { close(release) })
	drainServer(t, srv)
}

package serve

import (
	"net/http"
	"sync"

	"repro/internal/obs"
)

// DefaultTraceRing is how many distinct traces the server retains for
// GET /v1/traces/{traceID} when Config.TraceRing is zero.
const DefaultTraceRing = 256

// traceRing retains the span forests of finished work keyed by trace
// ID, bounded and drop-oldest: when a new trace would exceed the cap,
// the oldest retained trace is evicted whole. Forests recorded for an
// already-retained trace merge into its entry (a batch root and its
// member jobs share one trace).
type traceRing struct {
	mu    sync.Mutex
	cap   int
	order []string
	byID  map[string][]*obs.Span
}

func newTraceRing(cap int) *traceRing {
	if cap <= 0 {
		cap = DefaultTraceRing
	}
	return &traceRing{cap: cap, byID: make(map[string][]*obs.Span)}
}

// add records a forest under traceID, returning how many whole traces
// were evicted and how many spans they held (the ring-eviction and
// span-drop counters).
func (rg *traceRing) add(traceID string, roots []*obs.Span) (evictedTraces, evictedSpans int) {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	if _, ok := rg.byID[traceID]; !ok {
		for len(rg.order) >= rg.cap {
			oldest := rg.order[0]
			rg.order = rg.order[1:]
			evictedTraces++
			evictedSpans += countSpans(rg.byID[oldest])
			delete(rg.byID, oldest)
		}
		rg.order = append(rg.order, traceID)
	}
	rg.byID[traceID] = append(rg.byID[traceID], roots...)
	return evictedTraces, evictedSpans
}

// get returns the retained forest for traceID (nil when unknown).
func (rg *traceRing) get(traceID string) []*obs.Span {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	return rg.byID[traceID]
}

func countSpans(roots []*obs.Span) int {
	n := 0
	for _, sp := range roots {
		n += 1 + countSpans(sp.Children)
	}
	return n
}

// recordTrace publishes a finished span forest into the trace ring and
// bumps the trace/* counters. Safe with an empty forest or ID (no-op).
func (s *Server) recordTrace(traceID string, roots []*obs.Span) {
	if traceID == "" || len(roots) == 0 {
		return
	}
	s.reg.Counter("trace/spans_started").Add(int64(countSpans(roots)))
	evictedTraces, evictedSpans := s.traces.add(traceID, roots)
	if evictedTraces > 0 {
		s.reg.Counter("trace/ring_evictions").Add(int64(evictedTraces))
		s.reg.Counter("trace/spans_dropped").Add(int64(evictedSpans))
	}
}

// countRoot classifies a newly-created root span: did it continue a
// propagated upstream trace or start a fresh one?
func (s *Server) countRoot(propagated bool) {
	if propagated {
		s.reg.Counter("trace/roots_propagated").Add(1)
	} else {
		s.reg.Counter("trace/roots_new").Add(1)
	}
}

// selfName is the replica's fleet address ("" standalone) — the
// process label on exported traces.
func (s *Server) selfName() string {
	if s.fleet == nil {
		return ""
	}
	return s.fleet.Self()
}

// jobTraceJSON is the GET /v1/jobs/{id}/trace shape.
type jobTraceJSON struct {
	ID      string      `json:"id"`
	TraceID string      `json:"traceId,omitempty"`
	Server  string      `json:"server,omitempty"`
	Spans   []*obs.Span `json:"spans"`
}

// handleJobTrace serves the job's span forest: the per-job tracer's
// live view (complete once the job is terminal), as deterministic
// indented JSON or, with ?format=chrome, as a Perfetto-loadable
// trace_event array.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	spans := j.tracer.Roots()
	if spans == nil {
		spans = []*obs.Span{}
	}
	if r.URL.Query().Get("format") == "chrome" {
		data, err := obs.ChromeExport([]obs.TraceSource{{Name: s.selfName(), Spans: spans}})
		if err != nil {
			httpError(w, http.StatusInternalServerError, "encode trace: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(data)
		return
	}
	writeJSON(w, http.StatusOK, jobTraceJSON{
		ID: j.ID, TraceID: j.traceID, Server: s.selfName(), Spans: spans,
	})
}

// traceJSON is the GET /v1/traces/{traceID} shape: every span this
// replica retained for the trace. A fleet client fans this call out to
// all replicas and stitches the partial forests (client.CollectTrace).
type traceJSON struct {
	TraceID string      `json:"traceId"`
	Server  string      `json:"server,omitempty"`
	Spans   []*obs.Span `json:"spans"`
}

func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("traceID")
	spans := s.traces.get(id)
	if spans == nil {
		httpError(w, http.StatusNotFound, "no local spans for trace %q", id)
		return
	}
	writeJSON(w, http.StatusOK, traceJSON{TraceID: id, Server: s.selfName(), Spans: spans})
}

package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func submitBatch(t *testing.T, ts *httptest.Server, path, body string) (batchJSON, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var env batchJSON
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatalf("decode batch envelope: %v", err)
		}
	}
	return env, resp.StatusCode
}

func getBatch(t *testing.T, ts *httptest.Server, id string) (batchJSON, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/batch/" + id)
	if err != nil {
		t.Fatalf("GET batch: %v", err)
	}
	defer resp.Body.Close()
	var env batchJSON
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatalf("decode batch envelope: %v", err)
		}
	}
	return env, resp.StatusCode
}

func waitBatch(t *testing.T, ts *httptest.Server, id string) batchJSON {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		env, code := getBatch(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("GET batch %s = %d", id, code)
		}
		if env.Done {
			return env
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("batch %s did not finish", id)
	return batchJSON{}
}

func TestBatchHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2})
	env, code := submitBatch(t, ts, "/v1/batch", `{"workload":"mix","graphs":[
		{"name":"a","example":"wan","options":{"workers":1}},
		{"name":"b","example":"lan","options":{"workers":1}},
		{"example":"mcm","options":{"workers":1}}]}`)
	if code != http.StatusAccepted {
		t.Fatalf("batch status = %d, want 202", code)
	}
	if env.ID == "" || env.Links.Self != "/v1/batch/"+env.ID {
		t.Fatalf("bad batch envelope: %+v", env)
	}
	if len(env.Members) != 3 {
		t.Fatalf("envelope has %d members, want 3", len(env.Members))
	}
	if env.Members[0].Name != "a" || env.Members[1].Name != "b" || env.Members[2].Name != "g-2" {
		t.Errorf("member names = %q %q %q, want a b g-2 (index default)",
			env.Members[0].Name, env.Members[1].Name, env.Members[2].Name)
	}
	for i, m := range env.Members {
		if m.Tier != TierAccept || m.Job == nil || m.Error != "" {
			t.Errorf("member %d = %+v, want accepted with a job", i, m)
		}
	}

	fin := waitBatch(t, ts, env.ID)
	for i, m := range fin.Members {
		if m.Job == nil || m.Job.State != StateDone || m.Job.Result == nil {
			t.Fatalf("member %d = %+v, want done with result", i, m.Job)
		}
		if m.Job.Result.Cost <= 0 {
			t.Errorf("member %d cost = %v, want > 0", i, m.Job.Result.Cost)
		}
	}
	// Members are ordinary jobs: reachable through /v1/jobs too.
	j := waitJob(t, ts, fin.Members[0].Job.ID)
	if j.Workload != "wan" {
		t.Errorf("member 0 workload = %q, want wan", j.Workload)
	}
}

func TestBatchBadRequests(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"empty graphs":  `{"graphs":[]}`,
		"no graphs key": `{}`,
		"garbage":       `{nope`,
		"unknown field": `{"graphs":[],"surprise":1}`,
	} {
		if _, code := submitBatch(t, ts, "/v1/batch", body); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, code)
		}
	}
	// All-invalid members: rejected whole, nothing enters the table.
	_, code := submitBatch(t, ts, "/v1/batch", `{"graphs":[{"example":"nope"},{"example":"also-nope"}]}`)
	if code != http.StatusBadRequest {
		t.Errorf("all-invalid batch status = %d, want 400", code)
	}
	if got := srv.Registry().Snapshot().CounterMap()["serve/batch/rejected"]; got != 5 {
		t.Errorf("serve/batch/rejected = %d, want 5", got)
	}
	if got := srv.Registry().Snapshot().CounterMap()["serve/jobs_submitted"]; got != 0 {
		t.Errorf("serve/jobs_submitted = %d, want 0 after rejects", got)
	}
}

// TestBatchPartialInvalid: one undecodable graph among valid ones is
// a per-member error in a 202 envelope, not a batch reject.
func TestBatchPartialInvalid(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2})
	env, code := submitBatch(t, ts, "/v1/batch", `{"graphs":[
		{"name":"good","example":"wan","options":{"workers":1}},
		{"name":"bad","example":"mystery"},
		{"name":"alsogood","example":"noc","options":{"workers":1}}]}`)
	if code != http.StatusAccepted {
		t.Fatalf("batch status = %d, want 202 (partial acceptance)", code)
	}
	bad := env.Members[1]
	if bad.Error == "" || bad.Job != nil || bad.Tier != "" {
		t.Fatalf("invalid member = %+v, want error only", bad)
	}
	if !strings.Contains(bad.Error, "mystery") {
		t.Errorf("invalid member error %q does not name the bad example", bad.Error)
	}
	fin := waitBatch(t, ts, env.ID)
	for _, i := range []int{0, 2} {
		if m := fin.Members[i]; m.Job == nil || m.Job.State != StateDone {
			t.Errorf("valid member %d = %+v, want done", i, m.Job)
		}
	}
}

// TestBatchTieredAdmission: members pass the same watermark gate as
// single submissions, one at a time under one lock hold — so a batch
// wider than the degrade band is admitted, degraded, then shed
// member-by-member, deterministically.
func TestBatchTieredAdmission(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		MaxConcurrent: 1,
		Shed:          ShedConfig{DegradeAt: 2, ShedAt: 3},
	})
	env, code := submitBatch(t, ts, "/v1/batch", `{"graphs":[
		{"example":"wan","options":{"workers":1}},
		{"example":"wan","options":{"workers":1}},
		{"example":"wan","options":{"workers":1}},
		{"example":"wan","options":{"workers":1}},
		{"example":"wan","options":{"workers":1}},
		{"example":"wan","options":{"workers":1}}]}`)
	if code != http.StatusAccepted {
		t.Fatalf("batch status = %d, want 202", code)
	}
	want := []string{TierAccept, TierAccept, TierDegrade, TierShed, TierShed, TierShed}
	for i, m := range env.Members {
		if m.Tier != want[i] {
			t.Errorf("member %d tier = %q, want %q", i, m.Tier, want[i])
		}
		if (m.Job != nil) != (want[i] != TierShed) {
			t.Errorf("member %d job presence inconsistent with tier %q", i, want[i])
		}
	}
	snap := srv.Registry().Snapshot().CounterMap()
	if snap["serve/shed/"+TierShed] != 3 || snap["serve/shed/"+TierDegrade] != 1 || snap["serve/shed/"+TierAccept] != 2 {
		t.Errorf("tier counters = accept %d degrade %d shed %d, want 2/1/3",
			snap["serve/shed/"+TierAccept], snap["serve/shed/"+TierDegrade], snap["serve/shed/"+TierShed])
	}
	fin := waitBatch(t, ts, env.ID)
	if m := fin.Members[2]; m.Job == nil || m.Job.State != StateDone || m.Job.Admission != TierDegrade {
		t.Errorf("degraded member = %+v, want done with degraded admission", m.Job)
	}
}

// TestBatchWiderThanJobTable: a batch larger than MaxJobs sheds the
// overflow members (nothing finished to evict) instead of rejecting
// the whole request.
func TestBatchWiderThanJobTable(t *testing.T) {
	_, ts := newTestServer(t, Config{
		MaxConcurrent: 1,
		MaxJobs:       2,
		Shed:          ShedConfig{DegradeAt: 98, ShedAt: 99},
	})
	env, code := submitBatch(t, ts, "/v1/batch", `{"graphs":[
		{"example":"wan","options":{"workers":1}},
		{"example":"wan","options":{"workers":1}},
		{"example":"wan","options":{"workers":1}},
		{"example":"wan","options":{"workers":1}}]}`)
	if code != http.StatusAccepted {
		t.Fatalf("batch status = %d, want 202 (partial admission)", code)
	}
	var jobs, shed int
	for _, m := range env.Members {
		switch {
		case m.Job != nil:
			jobs++
		case m.Tier == TierShed:
			shed++
		}
	}
	if jobs != 2 || shed != 2 {
		t.Fatalf("admitted %d / shed %d, want 2 / 2 with MaxJobs=2", jobs, shed)
	}
	fin := waitBatch(t, ts, env.ID)
	if !fin.Done {
		t.Error("batch must report done once admitted members finish")
	}
}

// TestBatchAllShed: a server already at the shed watermark refuses
// the whole batch with 429 + Retry-After and records no batch.
func TestBatchAllShed(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(release) })
	var parked atomic.Int32
	setTestJobStartHook(func(j *Job) {
		parked.Add(1)
		<-release
	})
	defer setTestJobStartHook(nil)

	_, ts := newTestServer(t, Config{
		MaxConcurrent: 1,
		Shed:          ShedConfig{DegradeAt: 1, ShedAt: 2},
	})
	for i := 0; i < 2; i++ {
		if _, code := submit(t, ts, `{"example":"wan","options":{"workers":1}}`); code != http.StatusAccepted {
			t.Fatalf("filler job %d status = %d", i, code)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json",
		strings.NewReader(`{"graphs":[{"example":"wan"},{"example":"lan"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("batch status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 batch response must carry Retry-After")
	}
	if _, code := getBatch(t, ts, "b-000001"); code != http.StatusNotFound {
		t.Errorf("fully-shed batch must not be recorded, GET = %d", code)
	}
	once.Do(func() { close(release) })
}

func TestBatchNDJSONStream(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2})
	resp, err := http.Post(ts.URL+"/v1/batch?stream=ndjson", "application/json",
		strings.NewReader(`{"graphs":[
			{"name":"x","example":"wan","options":{"workers":1}},
			{"name":"y","example":"noc","options":{"workers":1}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("stream status = %d, want 202", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	if !sc.Scan() {
		t.Fatal("stream ended before the envelope line")
	}
	var env batchJSON
	if err := json.Unmarshal(sc.Bytes(), &env); err != nil {
		t.Fatalf("envelope line: %v", err)
	}
	if len(env.Members) != 2 || env.Done {
		t.Fatalf("envelope = %+v, want 2 admitted members not yet done", env)
	}

	got := map[string]string{}
	for sc.Scan() {
		var line struct {
			Name string  `json:"name"`
			Job  jobJSON `json:"job"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("result line %q: %v", sc.Text(), err)
		}
		got[line.Name] = line.Job.State
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if len(got) != 2 || got["x"] != StateDone || got["y"] != StateDone {
		t.Fatalf("streamed results = %v, want x and y done", got)
	}
}

// TestBatchCrashRecovery is the batch durability property: crash with
// one member finished and one mid-run, restart, and the batch comes
// back bound to a restored finished job (byte-identical result, SSE
// replay intact) and a re-queued restarted member — only the
// unfinished member re-runs.
func TestBatchCrashRecovery(t *testing.T) {
	dir := t.TempDir()

	release := make(chan struct{})
	var releaseOnce sync.Once
	releaseAll := func() { releaseOnce.Do(func() { close(release) }) }
	defer releaseAll()
	// Both members run concurrently (MaxConcurrent 2): the wan member
	// finishes unhindered, the "parkme"-labelled member parks mid-run
	// until the crash. The parked member is a cheap lan solve — the
	// hook, not the workload's cost, is what keeps it mid-run, and the
	// post-restart re-run must fit the waitJob budget even under -race.
	started := make(chan string, 8)
	setTestJobStartHook(func(j *Job) {
		if j.Workload == "parkme" {
			started <- j.ID
			<-release
		}
	})
	defer setTestJobStartHook(nil)

	srv1, err := New(Config{MaxConcurrent: 2, DataDir: dir, Logger: discardLogger()})
	if err != nil {
		t.Fatalf("first daemon: %v", err)
	}
	ts1 := httptest.NewServer(srv1.Handler())

	env, code := submitBatch(t, ts1, "/v1/batch", `{"workload":"crashmix","graphs":[
		{"name":"fast","example":"wan","options":{"workers":1}},
		{"name":"slow","example":"lan","workload":"parkme","options":{"workers":1}}]}`)
	if code != http.StatusAccepted {
		t.Fatalf("batch status = %d", code)
	}
	fastID, slowID := env.Members[0].Job.ID, env.Members[1].Job.ID
	fin := waitJob(t, ts1, fastID)
	if fin.State != StateDone {
		t.Fatalf("fast member state = %q, want done before crash", fin.State)
	}
	result1 := rawResult(t, ts1.URL, fastID)
	if id := <-started; id != slowID {
		t.Fatalf("running member is %s, want %s", id, slowID)
	}

	srv1.store.Crash()
	releaseAll()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv1.Drain(ctx); err != nil {
		t.Fatalf("drain first daemon: %v", err)
	}
	ts1.Close()

	setTestJobStartHook(nil)
	_, ts2 := newTestServer(t, Config{MaxConcurrent: 2, DataDir: dir})

	renv, code := getBatch(t, ts2, env.ID)
	if code != http.StatusOK {
		t.Fatalf("restored batch GET = %d, want 200", code)
	}
	if !renv.Restored || renv.Workload != "crashmix" || len(renv.Members) != 2 {
		t.Fatalf("restored envelope = %+v, want restored crashmix with 2 members", renv)
	}

	// Finished member: restored, not re-run, byte-identical result.
	rfast := renv.Members[0]
	if rfast.Job == nil || rfast.Job.State != StateDone || rfast.Job.Restarted {
		t.Fatalf("restored fast member = %+v, want done and not restarted", rfast.Job)
	}
	if got := rawResult(t, ts2.URL, fastID); string(got) != string(result1) {
		t.Errorf("restored member result differs:\n  before: %s\n  after:  %s", result1, got)
	}

	// Interrupted member: re-queued, marked restarted, re-runs.
	rslow := waitJob(t, ts2, slowID)
	if rslow.State != StateDone || !rslow.Restarted {
		t.Fatalf("re-queued member = state %q restarted %v, want done and restarted", rslow.State, rslow.Restarted)
	}
	fin2 := waitBatch(t, ts2, env.ID)
	if !fin2.Done {
		t.Error("restored batch must reach done")
	}

	// SSE replay of the restored batch member: synthetic but
	// contiguous and cleanly terminated.
	checkRestoredStream(t, ts2, fastID)
}

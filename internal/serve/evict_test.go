package serve

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
)

// getJobStatus fetches /v1/jobs/<id> and returns the decoded job (when
// found) and the HTTP status code.
func getJobStatus(t *testing.T, url, id string) (jobJSON, int) {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job %s: %v", id, err)
	}
	defer resp.Body.Close()
	var j jobJSON
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			t.Fatalf("decode job %s: %v", id, err)
		}
	}
	return j, resp.StatusCode
}

// TestEvictionSkipsQueuedJobs pins the eviction invariant under a POST
// burst against a full table holding a known mix of states: a finished
// job, a running job, and a queued-not-started job, oldest to newest.
// Eviction must reclaim the finished job — never the queued one, even
// though the queued job has been idle just as long from the client's
// point of view — and once no finished job remains, submissions must be
// rejected with 429 rather than displacing queued or running work.
//
// The concurrent-burst audit of evictLocked found no reproducing bug
// (only StateDone/StateFailed jobs are eligible, oldest-first through
// s.order, under s.mu); this test keeps it that way.
func TestEvictionSkipsQueuedJobs(t *testing.T) {
	const body = `{"example":"wan","options":{"workers":1}}`

	// Job 1 runs to completion unhindered; every later job that reaches
	// the running state parks in the hook until released, keeping the
	// single concurrency slot occupied so subsequent jobs stay queued.
	release := make(chan struct{})
	var releaseOnce sync.Once
	releaseAll := func() { releaseOnce.Do(func() { close(release) }) }
	defer releaseAll()
	started := make(chan string, 8)
	var hookCalls int32
	setTestJobStartHook(func(j *Job) {
		if atomic.AddInt32(&hookCalls, 1) == 1 {
			return
		}
		started <- j.ID
		<-release
	})
	defer setTestJobStartHook(nil)

	_, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxJobs: 3})

	// Oldest slot: a finished job.
	j1, code := submit(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("job 1 status = %d", code)
	}
	if got := waitJob(t, ts, j1.ID); got.State != StateDone {
		t.Fatalf("job 1 state = %q, want done", got.State)
	}

	// Middle slot: a running job, held in the start hook.
	j2, code := submit(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("job 2 status = %d", code)
	}
	if id := <-started; id != j2.ID {
		t.Fatalf("running job is %s, want %s", id, j2.ID)
	}

	// Newest slot: a queued job that cannot start while job 2 holds the
	// only concurrency slot. The table is now full.
	j3, code := submit(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("job 3 status = %d", code)
	}

	// A further submission must evict the finished job 1 — not queued
	// job 3 — and be accepted.
	j4, code := submit(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit against full table with a finished job: status = %d, want 202", code)
	}
	if _, code := getJobStatus(t, ts.URL, j1.ID); code != http.StatusNotFound {
		t.Errorf("finished job 1 status = %d after eviction, want 404", code)
	}
	if got, code := getJobStatus(t, ts.URL, j3.ID); code != http.StatusOK {
		t.Errorf("queued job 3 status = %d, want 200 (must never be evicted)", code)
	} else if got.State != StateQueued {
		t.Errorf("job 3 state = %q, want queued", got.State)
	}

	// The table now holds running + queued + queued: nothing is
	// evictable, so the next submission must be rejected outright.
	if _, code := submit(t, ts, body); code != http.StatusTooManyRequests {
		t.Errorf("submit against full unfinished table: status = %d, want 429", code)
	}

	// Drain the parked jobs so server shutdown is clean.
	releaseAll()
	for _, id := range []string{j2.ID, j3.ID, j4.ID} {
		if got := waitJob(t, ts, id); got.State != StateDone {
			t.Errorf("job %s finished in state %q, want done", id, got.State)
		}
	}
}

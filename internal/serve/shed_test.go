package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTieredLoadShedding pins the exact admission split under a
// deterministic overload: one concurrency slot, every running job
// parked, watermarks degrade:2 shed:4. The load (queued + running) is
// incremented synchronously at submission, so the five submissions
// land at loads 0,1,2,3,4 → accepted, accepted, degraded, degraded,
// shed — regardless of goroutine timing.
func TestTieredLoadShedding(t *testing.T) {
	const body = `{"example":"wan","options":{"workers":1}}`
	const degradedBudget = 200 * time.Millisecond

	release := make(chan struct{})
	var releaseOnce sync.Once
	releaseAll := func() { releaseOnce.Do(func() { close(release) }) }
	defer releaseAll()
	setTestJobStartHook(func(j *Job) { <-release })
	defer setTestJobStartHook(nil)

	srv, ts := newTestServer(t, Config{
		MaxConcurrent: 1,
		MaxJobs:       10,
		Shed:          ShedConfig{DegradeAt: 2, ShedAt: 4, DegradedTimeout: degradedBudget},
	})

	var jobs []jobJSON
	for i := 0; i < 4; i++ {
		j, code := submit(t, ts, body)
		if code != http.StatusAccepted {
			t.Fatalf("submission %d status = %d, want 202", i+1, code)
		}
		jobs = append(jobs, j)
	}
	// Fifth submission: load 4 >= ShedAt → 429 with a Retry-After hint.
	resp, err := http.Post(ts.URL+"/v1/synthesize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed submission status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want %q (default 1s hint)", ra, "1")
	}

	// The tier split is exact, not approximate.
	snap := srv.Registry().Snapshot().CounterMap()
	for name, want := range map[string]int64{
		"serve/shed/accepted": 2,
		"serve/shed/degraded": 2,
		"serve/shed/shed":     1,
	} {
		if got := snap[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}

	// Degraded admissions are visible on the job and carry the
	// tightened budget; full-budget admissions carry neither.
	for i, j := range jobs {
		got, code := getJobStatus(t, ts.URL, j.ID)
		if code != http.StatusOK {
			t.Fatalf("job %s status = %d", j.ID, code)
		}
		wantAdmission := ""
		if i >= 2 {
			wantAdmission = TierDegrade
		}
		if got.Admission != wantAdmission {
			t.Errorf("job %d admission = %q, want %q", i+1, got.Admission, wantAdmission)
		}
		var wantTimeout time.Duration
		if i >= 2 {
			wantTimeout = degradedBudget
		}
		if eff := srv.getJob(j.ID).effTimeout; eff != wantTimeout {
			t.Errorf("job %d effTimeout = %v, want %v", i+1, eff, wantTimeout)
		}
	}

	// The new rows render on /metrics under the documented names.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"serve_shed_accepted_total 2\n",
		"serve_shed_degraded_total 2\n",
		"serve_shed_shed_total 1\n",
	} {
		if !bytes.Contains(metrics, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Unpark and let every admitted job finish — the degraded budget is
	// generous for the wan example, so all four complete.
	releaseAll()
	for _, j := range jobs {
		if fin := waitJob(t, ts, j.ID); fin.State != StateDone {
			t.Errorf("job %s finished in state %q (error %q), want done", j.ID, fin.State, fin.Error)
		}
	}
}

// TestShedWatermarkDefaults pins the zero-value policy derivation.
func TestShedWatermarkDefaults(t *testing.T) {
	c := ShedConfig{}.normalize(3)
	if c.DegradeAt != 6 || c.ShedAt != 12 {
		t.Errorf("normalize(3) watermarks = %d:%d, want 6:12", c.DegradeAt, c.ShedAt)
	}
	if c.DegradedTimeout != 2*time.Second || c.RetryAfter != time.Second {
		t.Errorf("normalize(3) budgets = %v/%v, want 2s/1s", c.DegradedTimeout, c.RetryAfter)
	}
	// A shed watermark at or below degrade is widened so the degrade
	// band always exists.
	c = ShedConfig{DegradeAt: 5, ShedAt: 5}.normalize(1)
	if c.ShedAt != 6 {
		t.Errorf("ShedAt = %d, want DegradeAt+1 = 6", c.ShedAt)
	}
}

// TestDrainRetryAfter: the drain 503 carries the same backoff hint as
// a shed 429, so client retry logic handles both identically.
func TestDrainRetryAfter(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/synthesize", "application/json", strings.NewReader(`{"example":"wan"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want %q", ra, "1")
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/cdcs"
	"repro/internal/obs"
	"repro/internal/workloads"
)

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// SynthesizeRequest is the POST /v1/synthesize body. Either Example
// names a built-in instance ("wan", "mpeg4") or Graph and Library
// carry the JSON forms the cdcs CLI consumes.
type SynthesizeRequest struct {
	Example string          `json:"example,omitempty"`
	Graph   json.RawMessage `json:"graph,omitempty"`
	Library json.RawMessage `json:"library,omitempty"`
	// Workload labels the job in logs and listings; defaults to
	// Example or "graph".
	Workload string `json:"workload,omitempty"`
	// ReturnGraph includes the synthesized implementation graph JSON
	// in the job result (off by default: results are retained in
	// memory).
	ReturnGraph bool           `json:"returnGraph,omitempty"`
	Options     RequestOptions `json:"options"`
}

// RequestOptions mirrors the cdcs.Options knobs that make sense per
// request.
type RequestOptions struct {
	Greedy             bool  `json:"greedy,omitempty"`
	StrictPruning      bool  `json:"strictPruning,omitempty"`
	KeepDominated      bool  `json:"keepDominated,omitempty"`
	MaxMergeArity      int   `json:"maxMergeArity,omitempty"`
	MaxCandidates      int   `json:"maxCandidates,omitempty"`
	TruncateCandidates bool  `json:"truncateCandidates,omitempty"`
	Workers            int   `json:"workers,omitempty"`
	TimeoutMs          int64 `json:"timeoutMs,omitempty"`
}

// Result is the machine-readable outcome of a finished job — the same
// fields the cdcs CLI's -report emits, so scripts assert one schema
// everywhere.
type Result struct {
	Channels    int             `json:"channels"`
	Cost        float64         `json:"cost"`
	P2PCost     float64         `json:"p2pCost"`
	SavingsPct  float64         `json:"savingsPercent"`
	Optimal     bool            `json:"optimal"`
	Degraded    bool            `json:"degraded"`
	Degradation []string        `json:"degradation"`
	GapBound    float64         `json:"gapBound"`
	Incumbents  int             `json:"incumbents"`
	ElapsedMs   float64         `json:"elapsedMs"`
	Graph       json.RawMessage `json:"graph,omitempty"`
}

// Job is one submitted synthesis. State transitions queued → running →
// done|failed; Events carries its live progress stream and survives
// completion for SSE replay.
type Job struct {
	ID       string
	Workload string

	// now is the server's clock, injected for deterministic
	// job-lifetime tests.
	now func() time.Time
	// restarted marks a job the daemon re-queued (or restored) after
	// replaying a crash-interrupted run.
	restarted bool
	// admission is the tier the job was admitted at (TierDegrade
	// only; the common accepted tier is left empty in JSON).
	admission string
	// effTimeout, when set, caps the job's synthesis budget — the
	// degrade tier's tightened deadline.
	effTimeout time.Duration
	// specRaw preserves the submitted spec verbatim for snapshot
	// compaction of restored jobs (whose req was never re-decoded).
	specRaw json.RawMessage

	// tracer records the job's span forest; span is its serve/job
	// root, queueSpan the admission-to-slot wait. sc/traceID are the
	// root's identity — set once before the job is visible (or at
	// restore), immutable after, so they are read without j.mu.
	// tracer is nil only for jobs restored in a terminal state.
	tracer    *obs.Tracer
	span      *obs.Span
	queueSpan *obs.Span
	sc        obs.SpanContext
	traceID   string

	// mu guards the lifecycle fields below. Like Server.mu, it must
	// be released before any durable store call (the durable()
	// snapshot is built under it, then persisted by the caller):
	//
	//cdcsvet:lockorder Job.mu -> durable.Store
	mu       sync.Mutex
	state    string
	created  time.Time
	started  time.Time
	finished time.Time
	result   *Result
	errMsg   string

	events *obs.Events
	done   chan struct{}

	req SynthesizeRequest
	cg  *cdcs.ConstraintGraph
	lib *cdcs.Library
}

// jobJSON is the GET /v1/jobs/{id} shape.
type jobJSON struct {
	ID       string `json:"id"`
	Workload string `json:"workload"`
	State    string `json:"state"`
	Created  string `json:"created"`
	// Restarted marks a job that was re-queued (or restored) from the
	// durable log after a daemon restart.
	Restarted bool `json:"restarted,omitempty"`
	// Admission reports a non-default admission tier ("degraded").
	Admission string `json:"admission,omitempty"`
	// Server names the fleet replica the job lives on (set only when
	// fleet routing is configured): after a peer forward, the address
	// the client must poll.
	Server string `json:"server,omitempty"`
	// TraceID is the job's distributed trace identifier (32 hex
	// digits); clients collect the cross-replica trace with it.
	TraceID string  `json:"traceId,omitempty"`
	Error   string  `json:"error,omitempty"`
	Result  *Result `json:"result,omitempty"`
	Links   links   `json:"links"`
}

type links struct {
	Self   string `json:"self"`
	Events string `json:"events"`
	Trace  string `json:"trace"`
}

func (j *Job) json() jobJSON {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobJSON{
		ID:        j.ID,
		Workload:  j.Workload,
		State:     j.state,
		Created:   j.created.UTC().Format(time.RFC3339Nano),
		Restarted: j.restarted,
		Admission: j.admission,
		TraceID:   j.traceID,
		Error:     j.errMsg,
		Result:    j.result,
		Links: links{
			Self:   "/v1/jobs/" + j.ID,
			Events: "/v1/jobs/" + j.ID + "/events",
			Trace:  "/v1/jobs/" + j.ID + "/trace",
		},
	}
}

func (j *Job) setState(state string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	switch state {
	case StateRunning:
		j.started = j.now()
	case StateDone, StateFailed:
		j.finished = j.now()
	}
}

// State returns the job's current state string.
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{
		"error": fmt.Sprintf(format, args...),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// decodeInstance resolves the request into a constraint graph and
// library, either from a built-in example or from the embedded JSON.
func decodeInstance(req *SynthesizeRequest) (*cdcs.ConstraintGraph, *cdcs.Library, string, error) {
	switch req.Example {
	case "wan":
		return workloads.WAN(), workloads.WANLibrary(), "wan", nil
	case "lan":
		return workloads.LAN(), workloads.LANLibrary(), "lan", nil
	case "mcm":
		return workloads.MCM(), workloads.MCMLibrary(), "mcm", nil
	case "noc":
		return workloads.NoC(), workloads.NoCLibrary(), "noc", nil
	case "mpeg4":
		return workloads.MPEG4(), workloads.MPEG4Technology().Library(), "mpeg4", nil
	case "":
	default:
		return nil, nil, "", fmt.Errorf("unknown example %q (wan, lan, mcm, noc, mpeg4)", req.Example)
	}
	if len(req.Graph) == 0 || len(req.Library) == 0 {
		return nil, nil, "", errors.New("need graph and library, or example")
	}
	cg, err := cdcs.DecodeConstraintGraph(req.Graph)
	if err != nil {
		return nil, nil, "", err
	}
	lib, err := cdcs.DecodeLibrary(req.Library)
	if err != nil {
		return nil, nil, "", err
	}
	return cg, lib, "graph", nil
}

func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	// Buffer the body: a fleet forward re-sends the same bytes to the
	// workload's owner.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read request: %v", err)
		return
	}
	var req SynthesizeRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	cg, lib, workload, err := decodeInstance(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Workload != "" {
		workload = req.Workload
	}
	if s.maybeForward(w, r, body, workload) {
		return
	}
	// The propagated upstream trace context, when the caller sent a
	// well-formed traceparent; the zero value means "start a fresh
	// root" — a malformed header degrades to that, never to an error.
	parent, propagated := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds(s.shed.RetryAfter)))
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	// Tiered admission: accept at full budget, accept with a
	// tightened budget, or shed — decided by the unfinished-job load
	// against the watermarks, before any table mutation.
	tier, load := s.tierLocked()
	if tier == TierShed {
		s.mu.Unlock()
		s.reg.Counter("serve/shed/" + TierShed).Add(1)
		s.log.Warn("job shed",
			"tier", TierShed, "load", load, "shed_at", s.shed.ShedAt,
			"workload", workload)
		w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds(s.shed.RetryAfter)))
		httpError(w, http.StatusTooManyRequests,
			"overloaded: %d unfinished jobs at or above the shed watermark %d; retry later",
			load, s.shed.ShedAt)
		return
	}
	evicted, ok := s.evictLocked()
	if !ok {
		s.mu.Unlock()
		s.reg.Counter("serve/jobs_rejected").Add(1)
		w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds(s.shed.RetryAfter)))
		httpError(w, http.StatusTooManyRequests,
			"job table full (%d jobs, none finished)", s.cfg.MaxJobs)
		return
	}
	j := s.newJobLocked(req, cg, lib, workload, tier, parent, load)
	s.mu.Unlock()

	s.countRoot(propagated)
	s.reg.Counter("serve/shed/" + tier).Add(1)
	s.reg.Counter("serve/jobs_submitted").Add(1)
	if evicted != "" {
		s.persistEvict(evicted)
	}
	s.persistJob(j)
	s.log.Info("job submitted",
		"job_id", j.ID, "workload", j.Workload, "tier", tier, "load", load,
		"trace_id", j.traceID, "queue_cap", s.cfg.MaxConcurrent)
	go s.runJob(j)
	writeJSON(w, http.StatusAccepted, s.jobView(j))
}

// newJobLocked creates and registers one admitted job. Caller holds
// s.mu, has classified the tier (not TierShed) and made room with
// evictLocked; the caller persists the job and starts runJob after
// releasing the lock.
func (s *Server) newJobLocked(req SynthesizeRequest, cg *cdcs.ConstraintGraph, lib *cdcs.Library, workload, tier string, parent obs.SpanContext, load int) *Job {
	s.nextID++
	j := &Job{
		ID:       fmt.Sprintf("j-%06d", s.nextID),
		Workload: workload,
		now:      s.now,
		state:    StateQueued,
		created:  s.now(),
		events:   obs.NewEvents(s.cfg.EventBuffer, nil),
		done:     make(chan struct{}),
		req:      req,
		cg:       cg,
		lib:      lib,
	}
	if tier == TierDegrade {
		j.admission = TierDegrade
		j.effTimeout = s.shed.DegradedTimeout
	}
	s.initJobTrace(j, parent, tier, load)
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.active++
	s.wg.Add(1)
	return j
}

// initJobTrace gives j its per-job tracer: a serve/job root span
// (joining the propagated upstream trace when parent is valid, else a
// fresh root), a closed serve/admission child recording the tier
// decision, and an open serve/queue-wait child that runJob closes when
// the job wins a concurrency slot. The job's event stream is stamped
// so every SSE line carries the trace correlation.
func (s *Server) initJobTrace(j *Job, parent obs.SpanContext, tier string, load int) {
	j.tracer = obs.NewTracerWithIDs(s.now, s.ids, parent)
	j.span = j.tracer.Start(nil, "serve/job",
		obs.String("job_id", j.ID), obs.String("workload", j.Workload))
	j.sc = j.span.Context()
	j.traceID = j.sc.TraceID.String()
	adm := j.tracer.Start(j.span, "serve/admission",
		obs.String("tier", tier), obs.Int("load", load))
	j.tracer.End(adm)
	j.queueSpan = j.tracer.Start(j.span, "serve/queue-wait")
	j.events.SetTrace(j.traceID, j.sc.SpanID.String())
}

// traceparent serializes the job root's span context ("" untraced).
func (j *Job) traceparent() string {
	if !j.sc.Valid() {
		return ""
	}
	return j.sc.Traceparent()
}

// testJobStartHook, when non-nil, is called by runJob after a job has
// acquired its concurrency slot and entered StateRunning, before
// synthesis begins. Tests use it to hold a job in the running state so
// the table can be filled with a known mix of finished, running and
// queued jobs. Access only through setTestJobStartHook/jobStartHook:
// runJob goroutines can outlive the test that installed the hook, so
// the bare variable would race with teardown clearing it.
var (
	testHookMu       sync.Mutex
	testJobStartHook func(j *Job)
)

func setTestJobStartHook(fn func(j *Job)) {
	testHookMu.Lock()
	defer testHookMu.Unlock()
	testJobStartHook = fn
}

func jobStartHook() func(j *Job) {
	testHookMu.Lock()
	defer testHookMu.Unlock()
	return testJobStartHook
}

// evictLocked makes room for one more job, dropping finished jobs
// oldest-first. It reports whether the table has room, and the ID it
// evicted (if any) so the caller can log the eviction to the WAL
// after releasing s.mu.
func (s *Server) evictLocked() (evicted string, ok bool) {
	if len(s.jobs) < s.cfg.MaxJobs {
		return "", true
	}
	for i, id := range s.order {
		j := s.jobs[id]
		if j == nil {
			continue
		}
		st := j.State()
		if st == StateDone || st == StateFailed {
			delete(s.jobs, id)
			s.order = append(s.order[:i], s.order[i+1:]...)
			return id, true
		}
	}
	return "", false
}

// runJob owns a job goroutine: wait for a concurrency slot, run the
// synthesis with a per-job sink (shared metrics registry, private
// event stream), record the outcome, close the stream so SSE tails
// end.
func (s *Server) runJob(j *Job) {
	defer s.wg.Done()
	defer close(j.done)
	defer j.events.Close()
	defer func() {
		s.mu.Lock()
		s.active--
		s.mu.Unlock()
	}()

	log := s.log.With("job_id", j.ID, "workload", j.Workload, "trace_id", j.traceID)
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-s.runCtx.Done():
		j.mu.Lock()
		j.errMsg = "server shut down before the job started"
		j.mu.Unlock()
		// Close out the trace before the state flips: a client that sees
		// a terminal state must find the span forest complete.
		j.tracer.End(j.queueSpan)
		j.tracer.End(j.span, obs.String("outcome", "aborted"))
		s.recordTrace(j.traceID, j.tracer.Roots())
		j.setState(StateFailed)
		s.reg.Counter("serve/jobs_failed").Add(1)
		// Deliberately not persisted as failed: in the durable log the
		// job stays queued, so the next start re-queues it instead of
		// fossilizing a shutdown race as a permanent failure.
		log.Warn("job aborted", "reason", "drain before start")
		return
	}

	j.tracer.End(j.queueSpan)
	j.setState(StateRunning)
	s.persistState(j, StateRunning)
	if hook := jobStartHook(); hook != nil {
		hook(j)
	}
	inflight := s.reg.Gauge("serve/jobs_inflight")
	inflight.Add(1)
	defer inflight.Add(-1)
	log.Info("job started", "channels", j.cg.NumChannels())

	// The job's sink: counters land in the server-wide registry (the
	// /metrics scrape target), events go straight into the job's own
	// stream — created at submission time, so SSE subscribers attached
	// while the job was still queued miss nothing — and the synth
	// phase tree lands in the job's tracer, nested under the serve/job
	// root via the context below. The run context is the server's:
	// Drain cancels it and the flow degrades to its incumbent instead
	// of dying.
	sink := obs.New(obs.Config{
		Registry:    s.reg,
		EventStream: j.events,
		Tracer:      j.tracer,
	})
	ro := j.req.Options
	opt := cdcs.Options{
		Greedy:             ro.Greedy,
		StrictPruning:      ro.StrictPruning,
		KeepDominated:      ro.KeepDominated,
		MaxMergeArity:      ro.MaxMergeArity,
		MaxCandidates:      ro.MaxCandidates,
		TruncateCandidates: ro.TruncateCandidates,
		Workers:            ro.Workers,
		Observer:           sink,
	}
	if ro.TimeoutMs > 0 {
		opt.Timeout = time.Duration(ro.TimeoutMs) * time.Millisecond
	}
	// The degrade tier tightens the budget: the anytime solver then
	// returns its best incumbent at the cap instead of running long.
	if j.effTimeout > 0 && (opt.Timeout == 0 || opt.Timeout > j.effTimeout) {
		opt.Timeout = j.effTimeout
		log.Info("degraded admission budget applied", "timeout", opt.Timeout.String())
	}

	start := s.now()
	runCtx := obs.ContextWithSpan(s.runCtx, j.span)
	ig, rep, err := cdcs.SynthesizeContext(runCtx, j.cg, j.lib, opt)
	s.reg.Histogram("serve/job_duration_ms", 1, 10, 100, 1_000, 10_000).
		Record(s.now().Sub(start).Milliseconds())
	if err != nil {
		j.mu.Lock()
		j.errMsg = err.Error()
		j.mu.Unlock()
		// Trace first, state second: terminal state implies a complete
		// span forest on /trace.
		j.tracer.End(j.span, obs.String("outcome", "failed"))
		s.recordTrace(j.traceID, j.tracer.Roots())
		j.setState(StateFailed)
		s.persistResult(j)
		s.reg.Counter("serve/jobs_failed").Add(1)
		log.Error("job failed", "error", err.Error())
		return
	}

	res := &Result{
		Channels:    j.cg.NumChannels(),
		Cost:        rep.Cost,
		P2PCost:     rep.P2PCost,
		SavingsPct:  rep.SavingsPercent(),
		Optimal:     rep.ResultOptimal(),
		Degraded:    rep.Degradation.Degraded(),
		Degradation: rep.Degradation.Summary(),
		GapBound:    rep.Degradation.GapBound,
		Incumbents:  rep.UCPStats.Incumbents,
		ElapsedMs:   float64(rep.Elapsed.Microseconds()) / 1000,
	}
	if res.Degradation == nil {
		res.Degradation = []string{}
	}
	if j.req.ReturnGraph {
		if data, merr := json.Marshal(ig); merr == nil {
			res.Graph = data
		}
	}
	j.mu.Lock()
	j.result = res
	j.mu.Unlock()
	// Trace first, state second: terminal state implies a complete
	// span forest on /trace.
	j.tracer.End(j.span, obs.String("outcome", "done"))
	s.recordTrace(j.traceID, j.tracer.Roots())
	j.setState(StateDone)
	s.persistResult(j)
	s.reg.Counter("serve/jobs_completed").Add(1)
	log.Info("job done",
		"cost", res.Cost,
		"optimal", res.Optimal,
		"degraded", res.Degraded,
		"elapsed_ms", res.ElapsedMs,
	)
}

func (s *Server) getJob(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.jobView(j))
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]jobJSON, 0, len(s.order))
	for _, id := range s.order {
		if j := s.jobs[id]; j != nil {
			out = append(out, s.jobView(j))
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

// handleJobEvents streams the job's progress as Server-Sent Events:
// first the bounded retained history (replay), then the live tail —
// Subscribe snapshots both under one lock, so the sequence numbers the
// client sees are contiguous. The stream ends when the job finishes
// (its event stream closes) or the client disconnects.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	replay, live, cancel := j.events.Subscribe(0)
	defer cancel()
	write := func(ev obs.Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", ev.Type, ev.Seq, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	for _, ev := range replay {
		if !write(ev) {
			return
		}
	}
	ctx := r.Context()
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				// Job finished: emit a terminal comment so curl users
				// see a clean end-of-stream marker.
				fmt.Fprintf(w, ": stream closed (job %s)\n\n", j.State())
				flusher.Flush()
				return
			}
			if !write(ev) {
				return
			}
		case <-ctx.Done():
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(s.reg.Snapshot().Prometheus())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	version := s.cfg.Version
	if version == "" {
		version = "unknown"
	}
	writeJSON(w, http.StatusOK, map[string]string{
		"status":  "ok",
		"version": version,
	})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

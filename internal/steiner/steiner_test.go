package steiner

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestSpanningTreeBasics(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1)}
	tree, err := SpanningTree(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Edges) != 2 {
		t.Fatalf("edges = %d, want 2", len(tree.Edges))
	}
	if math.Abs(tree.Length-2) > 1e-12 {
		t.Errorf("length = %v, want 2", tree.Length)
	}
	if _, err := SpanningTree(nil); err == nil {
		t.Error("empty input should fail")
	}
	single, err := SpanningTree(pts[:1])
	if err != nil || single.Length != 0 || len(single.Edges) != 0 {
		t.Errorf("single point tree wrong: %+v, %v", single, err)
	}
}

func TestSteinerImprovesClassicInstance(t *testing.T) {
	// Terminals (0,0), (2,0), (1,2): the RMST costs 2 + 3 = 5, but a
	// Steiner point at (1,0) connects everything with length 4.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(2, 0), geom.Pt(1, 2)}
	mst, err := SpanningTree(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mst.Length-5) > 1e-12 {
		t.Fatalf("RMST = %v, want 5", mst.Length)
	}
	st, err := SteinerTree(pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Length-4) > 1e-12 {
		t.Errorf("Steiner length = %v, want 4", st.Length)
	}
	if len(st.Points) != 4 || st.Terminals != 3 {
		t.Errorf("expected one Steiner point: %+v", st.Points)
	}
	if !st.Points[3].Eq(geom.Pt(1, 0)) {
		t.Errorf("Steiner point = %v, want (1,0)", st.Points[3])
	}
}

func TestSteinerCross(t *testing.T) {
	// Four arms of a cross: RMST 3·2=... terminals (±1,0),(0,±1):
	// RMST = 2+2+2 = 6; a center Steiner point gives 4.
	pts := []geom.Point{geom.Pt(1, 0), geom.Pt(-1, 0), geom.Pt(0, 1), geom.Pt(0, -1)}
	st, err := SteinerTree(pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Length-4) > 1e-12 {
		t.Errorf("cross Steiner length = %v, want 4", st.Length)
	}
}

func TestHalfPerimeter(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 0), geom.Pt(0, 4)}
	if got := HalfPerimeter(pts); got != 7 {
		t.Errorf("HPWL = %v, want 7", got)
	}
	if got := HalfPerimeter(nil); got != 0 {
		t.Errorf("empty HPWL = %v", got)
	}
}

// Property: HPWL ≤ Steiner ≤ RMST ≤ 1.5 · Steiner on random instances
// (the classical sandwich for rectilinear trees).
func TestSteinerSandwichProperty(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	for trial := 0; trial < 40; trial++ {
		n := 3 + r.Intn(6)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(float64(r.Intn(20)), float64(r.Intn(20)))
		}
		mst, err := SpanningTree(pts)
		if err != nil {
			t.Fatal(err)
		}
		st, err := SteinerTree(pts, Options{})
		if err != nil {
			t.Fatal(err)
		}
		hp := HalfPerimeter(pts)
		if st.Length > mst.Length+1e-9 {
			t.Fatalf("trial %d: Steiner %v worse than RMST %v", trial, st.Length, mst.Length)
		}
		if hp > st.Length+1e-9 {
			t.Fatalf("trial %d: HPWL %v exceeds Steiner %v — bound violated", trial, hp, st.Length)
		}
		if mst.Length > 1.5*st.Length+1e-9 {
			t.Fatalf("trial %d: RMST %v exceeds 1.5×Steiner %v", trial, mst.Length, st.Length)
		}
		// Tree shape: exactly |points|−1 edges.
		if len(st.Edges) != len(st.Points)-1 {
			t.Fatalf("trial %d: %d edges over %d points", trial, len(st.Edges), len(st.Points))
		}
	}
}

// Property: adding a terminal never shortens the Steiner tree.
func TestSteinerMonotoneInTerminals(t *testing.T) {
	r := rand.New(rand.NewSource(56))
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(4)
		pts := make([]geom.Point, n+1)
		for i := range pts {
			pts[i] = geom.Pt(float64(r.Intn(15)), float64(r.Intn(15)))
		}
		small, err := SteinerTree(pts[:n], Options{})
		if err != nil {
			t.Fatal(err)
		}
		big, err := SteinerTree(pts, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if big.Length < small.Length-1e-9 {
			t.Fatalf("trial %d: more terminals, shorter tree: %v < %v", trial, big.Length, small.Length)
		}
	}
}

func BenchmarkSteinerTree8(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 8)
	for i := range pts {
		pts[i] = geom.Pt(r.Float64()*10, r.Float64()*10)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SteinerTree(pts, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Package steiner builds rectilinear spanning and Steiner trees over
// point sets. In the CDCS context it provides the topology-free lower
// bound on interconnect length: any structure that connects a merged
// channel group's endpoints — the paper's two-hub star included — uses
// at least the rectilinear Steiner minimal tree's wirelength. The E14
// experiment uses this to quantify how close the paper's mux–trunk–
// demux realization comes to topology-optimal wiring.
//
// Algorithms: Prim's algorithm for the rectilinear minimum spanning
// tree (RMST), and the classical iterated 1-Steiner heuristic of
// Kahng–Robins for the Steiner tree — repeatedly add the Hanan-grid
// point that shrinks the RMST most, until no point helps. The heuristic
// is within a few percent of optimal on small instances and never
// worse than the RMST.
package steiner

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Tree is a rectilinear tree over the input terminals plus any added
// Steiner points.
type Tree struct {
	// Points holds the terminals (in input order) followed by the
	// Steiner points the heuristic added.
	Points []geom.Point
	// Terminals is the number of input terminals (a prefix of Points).
	Terminals int
	// Edges connect indices into Points; each edge is realized as an
	// L-shaped rectilinear wire of the Manhattan length between its
	// endpoints.
	Edges [][2]int
	// Length is the total rectilinear wirelength.
	Length float64
}

// SpanningTree returns the rectilinear minimum spanning tree of the
// points (Prim, O(n²)).
func SpanningTree(pts []geom.Point) (*Tree, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("steiner: no points")
	}
	n := len(pts)
	inTree := make([]bool, n)
	dist := make([]float64, n)
	parent := make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	dist[0] = 0
	t := &Tree{Points: append([]geom.Point(nil), pts...), Terminals: n}
	for iter := 0; iter < n; iter++ {
		best := -1
		for v := 0; v < n; v++ {
			if !inTree[v] && (best < 0 || dist[v] < dist[best]) {
				best = v
			}
		}
		inTree[best] = true
		if parent[best] >= 0 {
			t.Edges = append(t.Edges, [2]int{parent[best], best})
			t.Length += dist[best]
		}
		for v := 0; v < n; v++ {
			if inTree[v] {
				continue
			}
			if d := geom.Manhattan.Distance(pts[best], pts[v]); d < dist[v] {
				dist[v] = d
				parent[v] = best
			}
		}
	}
	return t, nil
}

// mstLength returns just the RMST length (no tree construction), used
// in the inner loop of the 1-Steiner iteration.
func mstLength(pts []geom.Point) float64 {
	n := len(pts)
	if n <= 1 {
		return 0
	}
	inTree := make([]bool, n)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[0] = 0
	var total float64
	for iter := 0; iter < n; iter++ {
		best := -1
		for v := 0; v < n; v++ {
			if !inTree[v] && (best < 0 || dist[v] < dist[best]) {
				best = v
			}
		}
		inTree[best] = true
		total += dist[best]
		for v := 0; v < n; v++ {
			if !inTree[v] {
				if d := geom.Manhattan.Distance(pts[best], pts[v]); d < dist[v] {
					dist[v] = d
				}
			}
		}
	}
	return total
}

// Options tunes the Steiner heuristic.
type Options struct {
	// MaxSteinerPoints caps how many Hanan points may be added; zero
	// means len(terminals) − 2 (the theoretical maximum useful count).
	MaxSteinerPoints int
	// MinGain is the smallest absolute length improvement worth adding
	// a point for; zero means 1e-9.
	MinGain float64
}

// SteinerTree runs iterated 1-Steiner over the terminals.
func SteinerTree(terminals []geom.Point, opt Options) (*Tree, error) {
	if len(terminals) == 0 {
		return nil, fmt.Errorf("steiner: no terminals")
	}
	maxAdd := opt.MaxSteinerPoints
	if maxAdd <= 0 {
		maxAdd = len(terminals) - 2
		if maxAdd < 0 {
			maxAdd = 0
		}
	}
	minGain := opt.MinGain
	if minGain <= 0 {
		minGain = 1e-9
	}

	pts := append([]geom.Point(nil), terminals...)
	current := mstLength(pts)
	for added := 0; added < maxAdd; added++ {
		bestGain := minGain
		var bestPt geom.Point
		found := false
		// Hanan grid of the current point set.
		for _, hx := range pts {
			for _, hy := range pts {
				c := geom.Pt(hx.X, hy.Y)
				if containsPoint(pts, c) {
					continue
				}
				l := mstLength(append(pts, c))
				if gain := current - l; gain > bestGain {
					bestGain, bestPt, found = gain, c, true
				}
			}
		}
		if !found {
			break
		}
		pts = append(pts, bestPt)
		current -= bestGain
	}

	tree, err := SpanningTree(pts)
	if err != nil {
		return nil, err
	}
	tree.Terminals = len(terminals)
	// Prune degree-≤1 Steiner points (they only add length); repeat to
	// a fixed point.
	tree = pruneUselessSteiner(tree)
	return tree, nil
}

// pruneUselessSteiner removes Steiner points of degree ≤ 1 (a leaf
// Steiner point never helps) and rebuilds the tree over the survivors.
func pruneUselessSteiner(t *Tree) *Tree {
	for {
		deg := make([]int, len(t.Points))
		for _, e := range t.Edges {
			deg[e[0]]++
			deg[e[1]]++
		}
		keep := make([]geom.Point, 0, len(t.Points))
		removed := false
		for i, p := range t.Points {
			if i >= t.Terminals && deg[i] <= 1 {
				removed = true
				continue
			}
			keep = append(keep, p)
		}
		if !removed {
			return t
		}
		nt, err := SpanningTree(keep)
		if err != nil {
			return t
		}
		nt.Terminals = t.Terminals
		t = nt
	}
}

// HalfPerimeter returns the half-perimeter wirelength bound (HPWL) of
// the points: a lower bound on any connected rectilinear structure.
func HalfPerimeter(pts []geom.Point) float64 {
	if len(pts) == 0 {
		return 0
	}
	b := geom.Bounds(pts)
	return b.Width() + b.Height()
}

func containsPoint(pts []geom.Point, p geom.Point) bool {
	for _, q := range pts {
		if q.Eq(p) {
			return true
		}
	}
	return false
}

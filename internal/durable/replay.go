package durable

import (
	"bytes"
	"encoding/json"
	"errors"
	"io/fs"
	"path/filepath"
)

// replay folds the snapshot and WAL into per-job final states. It
// never fails: a missing file is an empty store, a corrupt snapshot
// is counted and skipped (the WAL still replays), and a truncated or
// garbled WAL record — the torn tail a crash leaves — is counted and
// skipped without abandoning the records before it.
func (s *Store) replay() *Replay {
	rep := &Replay{}
	byID := make(map[string]*Job)
	batchByID := make(map[string]*Batch)

	if data, err := s.fsys.ReadFile(filepath.Join(s.dir, snapshotFile)); err == nil {
		var snap struct {
			V       int     `json:"v"`
			Jobs    []Job   `json:"jobs"`
			Batches []Batch `json:"batches"`
		}
		if jerr := json.Unmarshal(data, &snap); jerr != nil {
			rep.Skipped++
			s.log.Warn("corrupt snapshot skipped; replaying WAL alone",
				"path", snapshotFile, "error", jerr.Error())
		} else {
			rep.SnapshotRestored = true
			for i := range snap.Jobs {
				j := snap.Jobs[i]
				byID[j.ID] = &j
				rep.Jobs = append(rep.Jobs, &j)
			}
			for i := range snap.Batches {
				b := snap.Batches[i]
				batchByID[b.ID] = &b
				rep.Batches = append(rep.Batches, &b)
			}
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		rep.Skipped++
		s.log.Warn("unreadable snapshot skipped", "error", err.Error())
	}

	data, err := s.fsys.ReadFile(filepath.Join(s.dir, walFile))
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			rep.Skipped++
			s.log.Warn("unreadable WAL skipped", "error", err.Error())
		}
		return rep
	}
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			// Torn tail or mid-file garbage: count and move on. A
			// record the crash cut short can only cost itself.
			rep.Skipped++
			continue
		}
		if !s.apply(rep, byID, batchByID, &rec) {
			rep.Skipped++
			continue
		}
		rep.Records++
	}
	return rep
}

// apply folds one record into the replay state; false means the
// record is malformed or references a job replay never saw (its job
// record was itself lost) and should be counted as skipped.
func (s *Store) apply(rep *Replay, byID map[string]*Job, batchByID map[string]*Batch, rec *Record) bool {
	if rec.ID == "" {
		return false
	}
	switch rec.T {
	case RecordBatch:
		if b, dup := batchByID[rec.ID]; dup {
			// Snapshot + stale WAL overlap: refresh in place, keeping
			// the original replay position.
			b.Workload = rec.Workload
			b.Created = rec.Time
			b.Members = rec.Members
			return true
		}
		b := &Batch{ID: rec.ID, Workload: rec.Workload, Created: rec.Time, Members: rec.Members}
		batchByID[rec.ID] = b
		rep.Batches = append(rep.Batches, b)
		return true
	case RecordJob:
		if _, dup := byID[rec.ID]; dup {
			// Snapshot + stale WAL overlap after a crash between
			// snapshot publish and log reset: refresh in place.
			j := byID[rec.ID]
			j.Workload = rec.Workload
			j.Spec = rec.Spec
			j.Created = rec.Time
			j.Trace = rec.Trace
			return true
		}
		j := &Job{
			ID:       rec.ID,
			Workload: rec.Workload,
			Created:  rec.Time,
			State:    "queued",
			Spec:     rec.Spec,
			Trace:    rec.Trace,
		}
		byID[rec.ID] = j
		rep.Jobs = append(rep.Jobs, j)
		return true
	case RecordState:
		j, ok := byID[rec.ID]
		if !ok {
			return false
		}
		switch rec.State {
		case StateRestarted:
			j.State = "queued"
			j.Restarted = true
		case "queued", "running":
			j.State = rec.State
		default:
			return false
		}
		return true
	case RecordResult:
		j, ok := byID[rec.ID]
		if !ok {
			return false
		}
		j.Result = rec.Result
		j.Error = rec.Error
		if rec.Error == "" {
			j.State = "done"
		} else {
			j.State = "failed"
		}
		return true
	case RecordEvict:
		j, ok := byID[rec.ID]
		if !ok {
			return false
		}
		delete(byID, rec.ID)
		for i, rj := range rep.Jobs {
			if rj == j {
				rep.Jobs = append(rep.Jobs[:i], rep.Jobs[i+1:]...)
				break
			}
		}
		return true
	default:
		return false
	}
}

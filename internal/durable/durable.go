// Package durable persists the cdcsd job table across crashes: an
// append-only JSON-lines write-ahead log plus a periodic snapshot,
// replayed at startup into the last durable view of every job. The
// contract is crash-shaped at both ends:
//
//   - Writing: appends are batched fsyncs (Options.FsyncEvery records
//     per sync — group commit, the latency/durability knob), the log
//     is compacted into an atomically-renamed snapshot every
//     Options.SnapshotEvery records, and any write error degrades the
//     store to lossy instead of taking the daemon down.
//   - Reading: replay tolerates the wreckage a kill -9 leaves behind.
//     A truncated or garbled record — typically the torn tail the
//     dying write left — is skipped and counted, never fatal, and a
//     corrupt snapshot falls back to the log alone.
//
// The record stream is append-only state transitions: a job record
// (spec + workload, implying queued), a state record (running, or the
// restarted marker a recovering daemon writes when it re-queues
// interrupted work), a result record (terminal: done when Error is
// empty, failed otherwise), and an evict record (the serving layer
// dropped a finished job to make room). Replay folds the stream into
// per-job final states; the serving layer turns those into restored
// finished jobs and re-queued interrupted ones.
//
// Filesystem and clock are injectable through faultfs, which is how
// the crash-recovery property tests sweep every kill point.
package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/durable/faultfs"
	"repro/internal/obs"
)

// Record type tags (the "t" field of a WAL line).
const (
	RecordJob    = "job"
	RecordState  = "state"
	RecordResult = "result"
	RecordEvict  = "evict"
	RecordBatch  = "batch"
)

// StateRestarted is the state-record value a recovering daemon
// appends when it re-queues a job that was interrupted mid-run; on a
// later replay it reads back as "queued, marked restarted".
const StateRestarted = "restarted"

// ErrClosed is returned by appends after Close (or the Crash test
// hook); the serving layer treats it as "persistence is over", not as
// a serving failure.
var ErrClosed = errors.New("durable: store is closed")

// WAL and snapshot file names inside the data directory.
const (
	walFile      = "wal.log"
	snapshotFile = "snapshot.json"
	snapshotTmp  = "snapshot.json.tmp"
)

// Record is one WAL line. Which fields are set depends on T; every
// record carries the job ID and a timestamp.
type Record struct {
	T    string    `json:"t"`
	ID   string    `json:"id"`
	Time time.Time `json:"time"`
	// Job records: the submission. Trace is the job root span's
	// serialized traceparent, so a restored job keeps its distributed
	// trace correlation across the crash.
	Workload string          `json:"workload,omitempty"`
	Spec     json.RawMessage `json:"spec,omitempty"`
	Trace    string          `json:"trace,omitempty"`
	// State records: the transition (running, or StateRestarted).
	State string `json:"state,omitempty"`
	// Result records: the terminal outcome — done when Error is
	// empty, failed otherwise.
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	// Batch records: the membership of a POST /v1/batch submission
	// (Workload carries the batch's label). The member jobs persist
	// as ordinary job records; this record only binds them to the
	// batch envelope, so a restart re-queues unfinished members
	// through the normal job path and still answers GET /v1/batch.
	Members []BatchMember `json:"members,omitempty"`
}

// BatchMember is one named slot of a batch: either an admitted job
// (JobID set, Tier accepted/degraded) or a refusal (Error set — an
// undecodable spec, a shed, or a full job table).
type BatchMember struct {
	Name  string `json:"name,omitempty"`
	JobID string `json:"jobId,omitempty"`
	Tier  string `json:"tier,omitempty"`
	Error string `json:"error,omitempty"`
}

// Batch is the replayed (and snapshotted) durable view of one batch
// submission. Member job states are not duplicated here — they live
// with the jobs themselves.
type Batch struct {
	ID       string        `json:"id"`
	Workload string        `json:"workload,omitempty"`
	Created  time.Time     `json:"created"`
	Members  []BatchMember `json:"members"`
}

// Job is the replayed (and snapshotted) durable view of one job.
type Job struct {
	ID        string          `json:"id"`
	Workload  string          `json:"workload"`
	Created   time.Time       `json:"created"`
	State     string          `json:"state"`
	Restarted bool            `json:"restarted,omitempty"`
	Spec      json.RawMessage `json:"spec,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
	Error     string          `json:"error,omitempty"`
	// Trace is the job root span's traceparent, replayed so restored
	// jobs keep their trace IDs.
	Trace string `json:"trace,omitempty"`
}

// Replay is what Open recovered from the data directory.
type Replay struct {
	// Jobs are the recovered jobs, oldest first (snapshot order, then
	// first WAL appearance).
	Jobs []*Job
	// Batches are the recovered batch envelopes, oldest first.
	Batches []*Batch
	// Records is how many WAL records were applied.
	Records int
	// Skipped counts truncated or garbled records that replay dropped
	// — the durable/wal/replay_skipped instrument.
	Skipped int
	// SnapshotRestored reports whether a snapshot file was loaded.
	SnapshotRestored bool
}

// Options tunes the store. The zero value syncs every record,
// compacts every 1024, and uses the real filesystem and clock.
type Options struct {
	// FS is the filesystem seam; nil means the real OS.
	FS faultfs.FS
	// Now is the record-timestamp clock; nil means time.Now.
	Now func() time.Time
	// FsyncEvery batches fsyncs: one sync per this many appended
	// records (group commit). <=0 means 1 — sync every record.
	FsyncEvery int
	// SnapshotEvery compacts the WAL into a snapshot after this many
	// records. <=0 means 1024.
	SnapshotEvery int
	// Source supplies the current job table for compaction; nil
	// disables automatic and close-time snapshots.
	Source func() []Job
	// BatchSource supplies the current batch envelopes for
	// compaction; nil snapshots an empty batch set. Only consulted
	// when Source is set — batches never compact without jobs.
	BatchSource func() []Batch
	// Registry receives the durable/wal/* instruments; nil disables.
	Registry *obs.Registry
	// Logger receives structured warnings; nil means slog.Default.
	Logger *slog.Logger
}

// Store is the open write-ahead log. Safe for concurrent appends.
type Store struct {
	dir  string
	fsys faultfs.FS
	now  func() time.Time
	log  *slog.Logger

	records, fsyncs, skipped, snapshots *obs.CounterHandle

	// mu serializes appends, fsync batching, and compaction. It is
	// not reentrant, and compaction (which runs under it) calls the
	// injected source hook — so no internal path may re-acquire it:
	//
	//cdcsvet:lockorder Store.mu -> Store.mu
	mu          sync.Mutex
	w           faultfs.File
	pending     int // records appended since the last fsync
	sinceSnap   int // records appended since the last snapshot
	closed      bool
	fsyncEvery  int
	snapEvery   int
	source      func() []Job
	batchSource func() []Batch
}

// Open replays dir's snapshot and WAL — tolerating a torn tail — and
// returns the store ready for appends plus what it recovered. Replay
// problems are counted and logged, never fatal; only the inability to
// create the directory or open the log for appending fails Open.
func Open(dir string, opts Options) (*Store, *Replay, error) {
	if opts.FS == nil {
		opts.FS = faultfs.OS()
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.FsyncEvery <= 0 {
		opts.FsyncEvery = 1
	}
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = 1024
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durable: create data dir: %w", err)
	}
	s := &Store{
		dir:         dir,
		fsys:        opts.FS,
		now:         opts.Now,
		log:         opts.Logger,
		records:     opts.Registry.Counter("durable/wal/records"),
		fsyncs:      opts.Registry.Counter("durable/wal/fsyncs"),
		skipped:     opts.Registry.Counter("durable/wal/replay_skipped"),
		snapshots:   opts.Registry.Counter("durable/wal/snapshots"),
		fsyncEvery:  opts.FsyncEvery,
		snapEvery:   opts.SnapshotEvery,
		source:      opts.Source,
		batchSource: opts.BatchSource,
	}
	rep := s.replay()
	s.skipped.Add(int64(rep.Skipped))
	w, err := opts.FS.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: open WAL: %w", err)
	}
	s.w = w
	// The replayed backlog counts toward the next compaction, so a
	// daemon that crash-loops before reaching SnapshotEvery fresh
	// records still compacts instead of growing the log forever.
	s.sinceSnap = rep.Records
	return s, rep, nil
}

// AppendJob records a submission (the job enters queued). trace is the
// job's serialized traceparent ("" when untraced).
func (s *Store) AppendJob(id, workload string, created time.Time, spec json.RawMessage, trace string) error {
	return s.append(&Record{T: RecordJob, ID: id, Time: created, Workload: workload, Spec: spec, Trace: trace})
}

// AppendState records a non-terminal transition (running, or the
// StateRestarted re-queue marker).
func (s *Store) AppendState(id, state string) error {
	return s.append(&Record{T: RecordState, ID: id, Time: s.now(), State: state})
}

// AppendResult records the terminal outcome: done when errMsg is
// empty, failed otherwise.
func (s *Store) AppendResult(id string, result json.RawMessage, errMsg string) error {
	return s.append(&Record{T: RecordResult, ID: id, Time: s.now(), Result: result, Error: errMsg})
}

// AppendEvict records that the serving layer dropped a finished job.
func (s *Store) AppendEvict(id string) error {
	return s.append(&Record{T: RecordEvict, ID: id, Time: s.now()})
}

// AppendBatch records a batch envelope: its label and the per-member
// admission outcomes. Member jobs are appended separately via
// AppendJob; replaying the batch record alone restores the grouping.
func (s *Store) AppendBatch(id, workload string, created time.Time, members []BatchMember) error {
	return s.append(&Record{T: RecordBatch, ID: id, Time: created, Workload: workload, Members: members})
}

func (s *Store) append(rec *Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("durable: encode record: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, err := s.w.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("durable: append record: %w", err)
	}
	s.records.Add(1)
	s.pending++
	s.sinceSnap++
	if s.pending >= s.fsyncEvery {
		if err := s.syncLocked(); err != nil {
			return err
		}
	}
	if s.source != nil && s.sinceSnap >= s.snapEvery {
		if err := s.compactLocked(s.source()); err != nil {
			// Compaction failure is not data loss — the WAL still has
			// everything — so log and keep appending to the old log.
			s.log.Warn("wal compaction failed", "error", err.Error())
			s.sinceSnap = 0 // back off until the next threshold
		}
	}
	return nil
}

func (s *Store) syncLocked() error {
	if err := s.w.Sync(); err != nil {
		return fmt.Errorf("durable: fsync: %w", err)
	}
	s.fsyncs.Add(1)
	s.pending = 0
	return nil
}

// Compact snapshots the current table (via Options.Source) and
// truncates the WAL. No-op without a source.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.source == nil {
		return nil
	}
	return s.compactLocked(s.source())
}

// compactLocked writes the snapshot atomically (tmp file, fsync,
// rename) and then truncates the log: crash before the rename leaves
// the old snapshot + full WAL, crash after it leaves the new snapshot
// + stale-but-reapplyable WAL records (replay is idempotent per job).
func (s *Store) compactLocked(jobs []Job) error {
	var batches []Batch
	if s.batchSource != nil {
		batches = s.batchSource()
	}
	data, err := json.Marshal(struct {
		V       int     `json:"v"`
		Jobs    []Job   `json:"jobs"`
		Batches []Batch `json:"batches,omitempty"`
	}{V: 1, Jobs: jobs, Batches: batches})
	if err != nil {
		return fmt.Errorf("encode snapshot: %w", err)
	}
	tmp := filepath.Join(s.dir, snapshotTmp)
	f, err := s.fsys.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("create snapshot tmp: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		_ = f.Close()
		return fmt.Errorf("write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close snapshot: %w", err)
	}
	if err := s.fsys.Rename(tmp, filepath.Join(s.dir, snapshotFile)); err != nil {
		return fmt.Errorf("publish snapshot: %w", err)
	}
	// The snapshot is durable; start a fresh log.
	_ = s.w.Close()
	w, err := s.fsys.OpenFile(filepath.Join(s.dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		// The old handle is gone: further appends cannot persist.
		s.closed = true
		return fmt.Errorf("reset WAL: %w", err)
	}
	s.w = w
	s.pending = 0
	s.sinceSnap = 0
	s.snapshots.Add(1)
	return nil
}

// Close compacts one final time (when a Source is configured — a
// clean shutdown restarts from the snapshot alone), syncs any batched
// records, and closes the log. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	var err error
	if s.source != nil {
		err = s.compactLocked(s.source())
	}
	if !s.closed { // compactLocked may have disabled the store
		if s.pending > 0 {
			if serr := s.syncLocked(); err == nil {
				err = serr
			}
		}
		_ = s.w.Close()
		s.closed = true
	}
	return err
}

// Crash is the kill -9 test hook: drop the log on the floor — no
// final sync, no compaction — and refuse further appends with
// ErrClosed. What recovery sees afterward is exactly what had been
// fsynced (plus whatever the OS happened to flush).
func (s *Store) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	_ = s.w.Close()
	s.closed = true
}

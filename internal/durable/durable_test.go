package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/durable/faultfs"
	"repro/internal/obs"
)

func testLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func testClock() func() time.Time {
	return faultfs.NewClock(time.Unix(1_700_000_000, 0).UTC()).Now
}

// runScenario drives a fixed append sequence against a store: three
// jobs — one finishing, one failing, one left running — plus an
// eviction of the finished one's predecessor.
func runScenario(t *testing.T, s *Store) {
	t.Helper()
	now := time.Unix(1_700_000_000, 0).UTC()
	steps := []func() error{
		func() error { return s.AppendJob("j-000001", "wan", now, json.RawMessage(`{"example":"wan"}`), "") },
		func() error { return s.AppendState("j-000001", "running") },
		func() error {
			return s.AppendResult("j-000001", json.RawMessage(`{"channels":9,"cost":9.5}`), "")
		},
		func() error { return s.AppendJob("j-000002", "bad", now, json.RawMessage(`{"example":"bad"}`), "") },
		func() error { return s.AppendState("j-000002", "running") },
		func() error { return s.AppendResult("j-000002", nil, "infeasible instance") },
		func() error { return s.AppendJob("j-000003", "mpeg4", now, json.RawMessage(`{"example":"mpeg4"}`), "") },
		func() error { return s.AppendState("j-000003", "running") },
	}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("scenario step %d: %v", i, err)
		}
	}
}

func TestReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, rep, err := Open(dir, Options{Logger: testLogger(), Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != 0 || rep.Skipped != 0 {
		t.Fatalf("fresh dir replay = %+v, want empty", rep)
	}
	runScenario(t, s)
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	_, rep, err = Open(dir, Options{Logger: testLogger(), Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 0 {
		t.Errorf("replay skipped = %d, want 0", rep.Skipped)
	}
	if len(rep.Jobs) != 3 {
		t.Fatalf("replayed %d jobs, want 3", len(rep.Jobs))
	}
	j1, j2, j3 := rep.Jobs[0], rep.Jobs[1], rep.Jobs[2]
	if j1.ID != "j-000001" || j1.State != "done" || string(j1.Result) != `{"channels":9,"cost":9.5}` {
		t.Errorf("job 1 = %+v, want done with its exact result bytes", j1)
	}
	if j2.State != "failed" || j2.Error != "infeasible instance" {
		t.Errorf("job 2 = %+v, want failed", j2)
	}
	if j3.State != "running" || string(j3.Spec) != `{"example":"mpeg4"}` {
		t.Errorf("job 3 = %+v, want still running with its spec", j3)
	}
}

func TestEvictRecordDropsJob(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{Logger: testLogger(), Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	runScenario(t, s)
	if err := s.AppendEvict("j-000001"); err != nil {
		t.Fatal(err)
	}
	_ = s.Close()
	_, rep, err := Open(dir, Options{Logger: testLogger(), Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != 2 || rep.Jobs[0].ID != "j-000002" {
		t.Fatalf("after evict, jobs = %v, want j-000002 and j-000003", ids(rep.Jobs))
	}
}

func ids(jobs []*Job) []string {
	out := make([]string, len(jobs))
	for i, j := range jobs {
		out[i] = j.ID
	}
	return out
}

// TestTornTailSkippedNotFatal covers the crash signature: a final
// record cut mid-bytes, and separately pure garbage, must be skipped
// and counted while every record before them survives.
func TestTornTailSkippedNotFatal(t *testing.T) {
	for name, tail := range map[string]string{
		"truncated": `{"t":"result","id":"j-000003","resu`,
		"garbage":   "\x00\x7fnot json at all",
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, _, err := Open(dir, Options{Logger: testLogger(), Now: testClock()})
			if err != nil {
				t.Fatal(err)
			}
			runScenario(t, s)
			_ = s.Close()
			// No Source configured, so everything still lives in the
			// WAL; append the torn tail right behind the good records.
			f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(tail); err != nil {
				t.Fatal(err)
			}
			_ = f.Close()

			reg := obs.NewRegistry()
			_, rep, err := Open(dir, Options{Logger: testLogger(), Now: testClock(), Registry: reg})
			if err != nil {
				t.Fatalf("open over torn tail: %v", err)
			}
			if rep.Skipped != 1 {
				t.Errorf("skipped = %d, want 1", rep.Skipped)
			}
			if len(rep.Jobs) != 3 {
				t.Errorf("jobs = %v, want all 3 intact", ids(rep.Jobs))
			}
			if got := reg.Snapshot().CounterMap()["durable/wal/replay_skipped"]; got != 1 {
				t.Errorf("durable/wal/replay_skipped = %d, want 1", got)
			}
		})
	}
}

// TestGarbledMidFileRecord: corruption before good records loses only
// itself — later records still apply.
func TestGarbledMidFileRecord(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1_700_000_000, 0).UTC()
	lines := []string{
		fmt.Sprintf(`{"t":"job","id":"j-000001","time":%q,"workload":"wan","spec":{"example":"wan"}}`, now.Format(time.RFC3339)),
		`{"t":"state","id":"j-0000`, // torn mid-file
		fmt.Sprintf(`{"t":"job","id":"j-000002","time":%q,"workload":"wan","spec":{"example":"wan"}}`, now.Format(time.RFC3339)),
		`{"t":"result","id":"j-000002","time":"2023-11-14T22:13:20Z","result":{"cost":1}}`,
	}
	var data []byte
	for _, l := range lines {
		data = append(data, l...)
		data = append(data, '\n')
	}
	if err := os.WriteFile(filepath.Join(dir, walFile), data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rep, err := Open(dir, Options{Logger: testLogger(), Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 1 || len(rep.Jobs) != 2 {
		t.Fatalf("skipped=%d jobs=%v, want 1 skipped and both jobs", rep.Skipped, ids(rep.Jobs))
	}
	if rep.Jobs[1].State != "done" {
		t.Errorf("job 2 state = %q, want done (record after the garble must apply)", rep.Jobs[1].State)
	}
}

// TestCorruptSnapshotFallsBackToWAL: a garbled snapshot is counted
// and skipped; the WAL alone still reconstructs its records.
func TestCorruptSnapshotFallsBackToWAL(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{Logger: testLogger(), Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	runScenario(t, s)
	_ = s.Close()
	if err := os.WriteFile(filepath.Join(dir, snapshotFile), []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rep, err := Open(dir, Options{Logger: testLogger(), Now: testClock()})
	if err != nil {
		t.Fatalf("open over corrupt snapshot: %v", err)
	}
	if rep.SnapshotRestored || rep.Skipped != 1 {
		t.Errorf("replay = %+v, want snapshot skipped and counted", rep)
	}
	if len(rep.Jobs) != 3 {
		t.Errorf("jobs = %v, want all 3 rebuilt from the WAL alone", ids(rep.Jobs))
	}
}

// TestSnapshotCompaction pins the rotation contract: crossing
// SnapshotEvery writes the snapshot, truncates the log, and a reopen
// restores from the snapshot alone.
func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	table := []Job{{ID: "j-000001", Workload: "wan", State: "done", Result: json.RawMessage(`{"cost":2}`)}}
	reg := obs.NewRegistry()
	s, _, err := Open(dir, Options{
		Logger: testLogger(), Now: testClock(), Registry: reg,
		SnapshotEvery: 3,
		Source:        func() []Job { return table },
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_700_000_000, 0).UTC()
	for i := 1; i <= 3; i++ {
		id := fmt.Sprintf("j-%06d", i)
		if err := s.AppendJob(id, "wan", now, json.RawMessage(`{"example":"wan"}`), ""); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Snapshot().CounterMap()["durable/wal/snapshots"]; got != 1 {
		t.Fatalf("durable/wal/snapshots = %d, want 1 after crossing the threshold", got)
	}
	if data, err := os.ReadFile(filepath.Join(dir, walFile)); err != nil || len(data) != 0 {
		t.Fatalf("WAL after compaction: %d bytes, err %v; want empty", len(data), err)
	}
	s.Crash() // skip Close's own compaction: reopen must see the mid-run snapshot

	_, rep, err := Open(dir, Options{Logger: testLogger(), Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SnapshotRestored || len(rep.Jobs) != 1 || rep.Jobs[0].ID != "j-000001" {
		t.Fatalf("replay = %+v (%v), want the snapshot table", rep, ids(rep.Jobs))
	}
}

// TestFsyncBatching pins group commit: FsyncEvery=4 over 10 records
// is 2 batched syncs plus the final one Close issues for the
// remainder.
func TestFsyncBatching(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s, _, err := Open(dir, Options{Logger: testLogger(), Now: testClock(), Registry: reg, FsyncEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_700_000_000, 0).UTC()
	for i := 1; i <= 10; i++ {
		if err := s.AppendJob(fmt.Sprintf("j-%06d", i), "wan", now, nil, ""); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot().CounterMap()
	if snap["durable/wal/records"] != 10 {
		t.Errorf("durable/wal/records = %d, want 10", snap["durable/wal/records"])
	}
	if snap["durable/wal/fsyncs"] != 2 {
		t.Errorf("durable/wal/fsyncs = %d, want 2 (batches of 4)", snap["durable/wal/fsyncs"])
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().CounterMap()["durable/wal/fsyncs"]; got != 3 {
		t.Errorf("fsyncs after close = %d, want 3 (close syncs the remainder)", got)
	}
}

func TestAppendAfterCloseAndCrash(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{Logger: testLogger(), Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	s.Crash()
	if err := s.AppendState("j-000001", "running"); !errors.Is(err, ErrClosed) {
		t.Errorf("append after crash = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("close after crash = %v, want nil (idempotent)", err)
	}
}

// TestCrashRecoverySweep is the fault-injection property test: for
// every kill point N in the scenario's write-op sequence (odd N torn
// — the dying write lands half its bytes), a reopen must succeed,
// skip at most the one torn record, and reconstruct exactly a prefix
// of the scenario — a job replayed as done must carry its exact
// result bytes, and one replayed as queued/running must carry its
// spec so it can be re-queued.
func TestCrashRecoverySweep(t *testing.T) {
	// Measure the op budget with no fault armed.
	probe := faultfs.NewFaulty(nil)
	dir := t.TempDir()
	s, _, err := Open(dir, Options{Logger: testLogger(), Now: testClock(), FS: probe})
	if err != nil {
		t.Fatal(err)
	}
	runScenario(t, s)
	_ = s.Close()
	totalOps := probe.Ops()
	if totalOps < 10 {
		t.Fatalf("scenario used only %d write ops; sweep would be vacuous", totalOps)
	}

	for n := int64(1); n <= totalOps; n++ {
		t.Run(fmt.Sprintf("kill@%d", n), func(t *testing.T) {
			dir := t.TempDir()
			ffs := faultfs.NewFaulty(nil)
			ffs.FailFrom(n, n%2 == 1)
			s, _, err := Open(dir, Options{Logger: testLogger(), Now: testClock(), FS: ffs})
			if err != nil {
				// Killed during Open's own setup: nothing persisted,
				// nothing to recover. Fine.
				if !errors.Is(err, faultfs.ErrInjected) {
					t.Fatalf("open failed with a non-injected error: %v", err)
				}
				return
			}
			// Drive the scenario ignoring errors, as a crashing
			// process effectively does, then drop the store.
			sRun(s)
			s.Crash()

			_, rep, err := Open(dir, Options{Logger: testLogger(), Now: testClock()})
			if err != nil {
				t.Fatalf("recovery open failed: %v", err)
			}
			if rep.Skipped > 1 {
				t.Errorf("skipped = %d, want <= 1 (only the torn tail)", rep.Skipped)
			}
			for _, j := range rep.Jobs {
				switch j.ID {
				case "j-000001":
					if j.State == "done" && string(j.Result) != `{"channels":9,"cost":9.5}` {
						t.Errorf("job 1 done with result %q, want exact bytes", j.Result)
					}
				case "j-000002":
					if j.State == "failed" && j.Error != "infeasible instance" {
						t.Errorf("job 2 failed with error %q", j.Error)
					}
				}
				if j.State == "queued" || j.State == "running" {
					if len(j.Spec) == 0 {
						t.Errorf("job %s interrupted without a spec; cannot re-queue", j.ID)
					}
				}
			}
		})
	}
}

// sRun drives the scenario without a testing.T, swallowing errors —
// the crashing-process shape used by the sweep.
func sRun(s *Store) {
	now := time.Unix(1_700_000_000, 0).UTC()
	_ = s.AppendJob("j-000001", "wan", now, json.RawMessage(`{"example":"wan"}`), "")
	_ = s.AppendState("j-000001", "running")
	_ = s.AppendResult("j-000001", json.RawMessage(`{"channels":9,"cost":9.5}`), "")
	_ = s.AppendJob("j-000002", "bad", now, json.RawMessage(`{"example":"bad"}`), "")
	_ = s.AppendState("j-000002", "running")
	_ = s.AppendResult("j-000002", nil, "infeasible instance")
	_ = s.AppendJob("j-000003", "mpeg4", now, json.RawMessage(`{"example":"mpeg4"}`), "")
	_ = s.AppendState("j-000003", "running")
	_ = s.Close()
}

package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testMembers() []BatchMember {
	return []BatchMember{
		{Name: "a", JobID: "j-000001", Tier: "accepted"},
		{Name: "b", JobID: "j-000002", Tier: "degraded"},
		{Name: "c", Tier: "shed"},
		{Name: "d", Error: "unknown example"},
	}
}

func TestBatchReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{Logger: testLogger(), Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_700_000_000, 0).UTC()
	runScenario(t, s)
	if err := s.AppendBatch("b-000001", "mixed", now, testMembers()); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBatch("b-000002", "wan", now, testMembers()[:1]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	_, rep, err := Open(dir, Options{Logger: testLogger(), Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 0 {
		t.Errorf("replay skipped = %d, want 0", rep.Skipped)
	}
	if len(rep.Jobs) != 3 {
		t.Errorf("batch records must not disturb job replay: %d jobs, want 3", len(rep.Jobs))
	}
	if len(rep.Batches) != 2 {
		t.Fatalf("replayed %d batches, want 2", len(rep.Batches))
	}
	b1, b2 := rep.Batches[0], rep.Batches[1]
	if b1.ID != "b-000001" || b1.Workload != "mixed" || !b1.Created.Equal(now) {
		t.Errorf("batch 1 = %+v, want b-000001/mixed at %v", b1, now)
	}
	if len(b1.Members) != 4 {
		t.Fatalf("batch 1 has %d members, want 4", len(b1.Members))
	}
	for i, want := range testMembers() {
		if b1.Members[i] != want {
			t.Errorf("batch 1 member %d = %+v, want %+v", i, b1.Members[i], want)
		}
	}
	if b2.ID != "b-000002" || len(b2.Members) != 1 {
		t.Errorf("batch 2 = %+v, want b-000002 with one member", b2)
	}
}

func TestBatchSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1_700_000_000, 0).UTC()
	table := []Job{{ID: "j-000001", Workload: "wan", State: "done", Result: json.RawMessage(`{"cost":2}`)}}
	batches := []Batch{{ID: "b-000001", Workload: "mixed", Created: now, Members: testMembers()}}
	s, _, err := Open(dir, Options{
		Logger: testLogger(), Now: testClock(),
		SnapshotEvery: 3,
		Source:        func() []Job { return table },
		BatchSource:   func() []Batch { return batches },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		id := fmt.Sprintf("j-%06d", i)
		if err := s.AppendJob(id, "wan", now, json.RawMessage(`{"example":"wan"}`), ""); err != nil {
			t.Fatal(err)
		}
	}
	if data, err := os.ReadFile(filepath.Join(dir, walFile)); err != nil || len(data) != 0 {
		t.Fatalf("WAL after compaction: %d bytes, err %v; want empty", len(data), err)
	}
	s.Crash() // reopen must restore batches from the snapshot alone

	_, rep, err := Open(dir, Options{Logger: testLogger(), Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SnapshotRestored {
		t.Fatal("replay did not restore from snapshot")
	}
	if len(rep.Batches) != 1 || rep.Batches[0].ID != "b-000001" || len(rep.Batches[0].Members) != 4 {
		t.Fatalf("batches from snapshot = %+v, want the compacted envelope", rep.Batches)
	}
}

// TestBatchSnapshotWALOverlap pins the crash window between snapshot
// publish and WAL reset: a batch present in both must replay once,
// with the WAL copy refreshing the snapshot copy in place.
func TestBatchSnapshotWALOverlap(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1_700_000_000, 0).UTC()
	snap := struct {
		V       int     `json:"v"`
		Jobs    []Job   `json:"jobs"`
		Batches []Batch `json:"batches,omitempty"`
	}{V: 1, Batches: []Batch{{ID: "b-000001", Workload: "stale", Created: now, Members: testMembers()[:1]}}}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapshotFile), data, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := json.Marshal(&Record{T: RecordBatch, ID: "b-000001", Time: now, Workload: "mixed", Members: testMembers()})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walFile), append(rec, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	_, rep, err := Open(dir, Options{Logger: testLogger(), Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 0 {
		t.Errorf("replay skipped = %d, want 0", rep.Skipped)
	}
	if len(rep.Batches) != 1 {
		t.Fatalf("replayed %d batches, want the overlap folded into 1", len(rep.Batches))
	}
	b := rep.Batches[0]
	if b.Workload != "mixed" || len(b.Members) != 4 {
		t.Errorf("overlap batch = %+v, want the WAL copy's fields", b)
	}
}

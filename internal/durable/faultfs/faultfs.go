// Package faultfs is the fault-injection seam under the durable WAL:
// a minimal filesystem interface covering exactly the operations the
// write-ahead log performs, a passthrough implementation over the os
// package, and a Faulty wrapper that fails — or stalls — write-class
// operations starting at the Nth one. Failing "from op N onward"
// models a crash: once the disk dies at a kill point, nothing after
// it persists either, which is what crash-recovery tests sweep. An
// injectable Clock rides along so durability timestamps and serve
// job lifetimes are deterministic under test.
package faultfs

import (
	"errors"
	"io/fs"
	"os"
	"sync"
	"time"
)

// ErrInjected is the error every injected fault returns; tests match
// it with errors.Is to tell injected failures from real ones.
var ErrInjected = errors.New("faultfs: injected fault")

// FS is the slice of filesystem behavior the WAL needs. Methods map
// 1:1 onto the os package; OS() returns the real thing.
type FS interface {
	MkdirAll(path string, perm fs.FileMode) error
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadFile(name string) ([]byte, error)
}

// File is the open-file surface the WAL uses: append writes, fsync,
// close.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Faulty wraps an FS and injects failures into write-class operations
// (MkdirAll, OpenFile, Rename, Remove, Write, Sync). Operations are
// numbered from 1 in call order across the whole FS; once the
// configured kill point is reached every later write-class operation
// fails too, like a disk that died mid-run. Read-class operations
// (ReadFile) never fail — recovery reads the surviving bytes.
type Faulty struct {
	inner FS

	mu       sync.Mutex
	ops      int64
	failFrom int64 // 1-based op index; 0 = never fail
	partial  bool  // the op at the kill point writes half its bytes first
	stall    func(op string)
}

// NewFaulty wraps inner (nil means the real OS) with no fault armed.
func NewFaulty(inner FS) *Faulty {
	if inner == nil {
		inner = OS()
	}
	return &Faulty{inner: inner}
}

// FailFrom arms the fault: write-class operation number n (1-based)
// and every one after it fail with ErrInjected. With partial set, the
// Write at the kill point first writes half its bytes — a torn
// record, the shape a real crash leaves behind. n <= 0 disarms.
func (f *Faulty) FailFrom(n int64, partial bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failFrom = n
	f.partial = partial
}

// Stall registers a hook called with the operation name before every
// write-class operation; tests use it to block or delay writes.
func (f *Faulty) Stall(hook func(op string)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stall = hook
}

// Ops reports how many write-class operations have been attempted.
func (f *Faulty) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// step counts one write-class op and reports whether it must fail and
// whether this op sits exactly at the kill point (for partial writes).
func (f *Faulty) step(op string) (fail, atKill bool) {
	f.mu.Lock()
	f.ops++
	fail = f.failFrom > 0 && f.ops >= f.failFrom
	atKill = fail && f.ops == f.failFrom && f.partial
	stall := f.stall
	f.mu.Unlock()
	if stall != nil {
		stall(op)
	}
	return fail, atKill
}

func (f *Faulty) MkdirAll(path string, perm fs.FileMode) error {
	if fail, _ := f.step("mkdirall"); fail {
		return ErrInjected
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *Faulty) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if fail, _ := f.step("openfile"); fail {
		return nil, ErrInjected
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, inner: file}, nil
}

func (f *Faulty) Rename(oldpath, newpath string) error {
	if fail, _ := f.step("rename"); fail {
		return ErrInjected
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *Faulty) Remove(name string) error {
	if fail, _ := f.step("remove"); fail {
		return ErrInjected
	}
	return f.inner.Remove(name)
}

func (f *Faulty) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }

type faultyFile struct {
	f     *Faulty
	inner File
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	fail, atKill := ff.f.step("write")
	if !fail {
		return ff.inner.Write(p)
	}
	if atKill && len(p) > 1 {
		// The dying write lands half its bytes: a torn tail record.
		n, _ := ff.inner.Write(p[:len(p)/2])
		return n, ErrInjected
	}
	return 0, ErrInjected
}

func (ff *faultyFile) Sync() error {
	if fail, _ := ff.f.step("sync"); fail {
		return ErrInjected
	}
	return ff.inner.Sync()
}

// Close never injects: a crashed process's descriptors close anyway,
// and recovery depends only on what reached the file.
func (ff *faultyFile) Close() error { return ff.inner.Close() }

// Clock is an injectable, manually-advanced clock for deterministic
// timestamp tests. The zero value starts at the Unix epoch.
type Clock struct {
	mu sync.Mutex
	t  time.Time
}

// NewClock returns a clock frozen at t.
func NewClock(t time.Time) *Clock { return &Clock{t: t} }

// Now returns the current frozen instant.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d and returns the new instant.
func (c *Clock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
	return c.t
}

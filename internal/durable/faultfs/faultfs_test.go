package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestFailFromKillsEverythingAfter(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(nil)
	f.FailFrom(3, false)

	if err := f.MkdirAll(filepath.Join(dir, "d"), 0o755); err != nil { // op 1
		t.Fatalf("op 1 should succeed: %v", err)
	}
	file, err := f.OpenFile(filepath.Join(dir, "d", "f"), os.O_CREATE|os.O_WRONLY, 0o644) // op 2
	if err != nil {
		t.Fatalf("op 2 should succeed: %v", err)
	}
	if _, err := file.Write([]byte("x")); !errors.Is(err, ErrInjected) { // op 3: kill point
		t.Fatalf("op 3 = %v, want ErrInjected", err)
	}
	if err := file.Sync(); !errors.Is(err, ErrInjected) { // op 4: still dead
		t.Fatalf("op 4 = %v, want ErrInjected (disk stays dead)", err)
	}
	if err := file.Close(); err != nil {
		t.Fatalf("close must never inject: %v", err)
	}
	if got := f.Ops(); got != 4 {
		t.Errorf("Ops() = %d, want 4", got)
	}
}

func TestPartialWriteTearsTheRecord(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(nil)
	path := filepath.Join(dir, "f")
	file, err := f.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644) // op 1
	if err != nil {
		t.Fatal(err)
	}
	f.FailFrom(2, true)
	if _, err := file.Write([]byte("0123456789")); !errors.Is(err, ErrInjected) { // op 2
		t.Fatalf("write = %v, want ErrInjected", err)
	}
	_ = file.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "01234" {
		t.Errorf("file holds %q, want the torn half %q", data, "01234")
	}
}

func TestReadsNeverFail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("survivor"), 0o644); err != nil {
		t.Fatal(err)
	}
	f := NewFaulty(nil)
	f.FailFrom(1, false)
	data, err := f.ReadFile(path)
	if err != nil || string(data) != "survivor" {
		t.Errorf("ReadFile = %q, %v; recovery reads must bypass the fault", data, err)
	}
}

func TestStallHookSeesEveryWriteOp(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(nil)
	var ops []string
	f.Stall(func(op string) { ops = append(ops, op) })
	file, err := f.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := file.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := file.Sync(); err != nil {
		t.Fatal(err)
	}
	want := []string{"openfile", "write", "sync"}
	if len(ops) != len(want) {
		t.Fatalf("hook saw %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("hook saw %v, want %v", ops, want)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	t0 := time.Unix(1_700_000_000, 0).UTC()
	c := NewClock(t0)
	if !c.Now().Equal(t0) {
		t.Errorf("Now() = %v, want %v", c.Now(), t0)
	}
	if got := c.Advance(3 * time.Second); !got.Equal(t0.Add(3 * time.Second)) {
		t.Errorf("Advance = %v, want +3s", got)
	}
	if !c.Now().Equal(t0.Add(3 * time.Second)) {
		t.Errorf("Now() after Advance = %v", c.Now())
	}
}

package workloads

// Published values of the paper's Table 1 (Γ) and Table 2 (Δ), in km,
// upper triangle in channel order a1…a8. These are the reference data
// every reproduction run is compared against (experiments E1 and E2).

// PaperTable1 returns Γ(aᵢ, aⱼ) as published; entries with j ≤ i are 0.
func PaperTable1() [8][8]float64 {
	rows := [][]float64{
		{10.38, 14.05, 102.02, 105.18, 103.61, 8.60, 8.60},
		{14.44, 102.40, 105.56, 104.00, 8.99, 8.99},
		{106.07, 109.23, 107.67, 12.66, 12.66},
		{197.20, 195.63, 100.62, 100.62},
		{198.79, 103.78, 103.78},
		{102.22, 102.22},
		{7.21},
	}
	return expandUpper(rows)
}

// PaperTable2 returns Δ(aᵢ, aⱼ) as published; entries with j ≤ i are 0.
func PaperTable2() [8][8]float64 {
	rows := [][]float64{
		{9.05, 14.05, 102.02, 97.02, 102.40, 200.09, 200.17},
		{5.00, 103.61, 98.61, 104.00, 201.69, 201.58},
		{98.61, 103.61, 107.67, 198.61, 198.42},
		{5.00, 9.05, 100.00, 100.63},
		{5.38, 103.07, 103.78},
		{101.40, 102.22},
		{7.21},
	}
	return expandUpper(rows)
}

func expandUpper(rows [][]float64) [8][8]float64 {
	var m [8][8]float64
	for i, row := range rows {
		for k, v := range row {
			m[i][i+1+k] = v
		}
	}
	return m
}

// PaperCandidateCounts returns the per-k candidate-merging counts the
// paper reports for Example 1 (k → count).
func PaperCandidateCounts() map[int]int {
	return map[int]int{2: 13, 3: 21, 4: 16, 5: 5}
}

package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/model"
)

// RandomWANConfig parameterizes the random clustered-WAN generator used
// by the scaling experiments (E8).
type RandomWANConfig struct {
	// Seed makes the instance reproducible.
	Seed int64
	// Clusters is the number of site clusters (≥ 1).
	Clusters int
	// Channels is the number of constraint arcs to generate.
	Channels int
	// Area is the side of the square region in km (default 200).
	Area float64
	// Spread is the intra-cluster standard deviation in km (default 4).
	Spread float64
	// MinBandwidth and MaxBandwidth bound the uniform channel
	// requirements (defaults 5 and 10 Mbps).
	MinBandwidth, MaxBandwidth float64
	// InterClusterFraction is the probability that a channel crosses
	// clusters (default 0.5); intra-cluster channels are rarely worth
	// merging, inter-cluster ones often are.
	InterClusterFraction float64
}

func (c RandomWANConfig) withDefaults() RandomWANConfig {
	if c.Clusters <= 0 {
		c.Clusters = 2
	}
	if c.Area <= 0 {
		c.Area = 200
	}
	if c.Spread <= 0 {
		c.Spread = 4
	}
	if c.MinBandwidth <= 0 {
		c.MinBandwidth = 5
	}
	if c.MaxBandwidth < c.MinBandwidth {
		c.MaxBandwidth = c.MinBandwidth + 5
	}
	if c.InterClusterFraction <= 0 {
		c.InterClusterFraction = 0.5
	}
	return c
}

// RandomWAN generates a clustered WAN constraint graph: sites gather in
// clusters (as in the paper's Figure 3, where A/B/C and D/E form two
// groups) and channels connect random sites, biased toward
// inter-cluster pairs.
func RandomWAN(cfg RandomWANConfig) *model.ConstraintGraph {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	cg := model.NewConstraintGraph(geom.Euclidean)

	centers := make([]geom.Point, cfg.Clusters)
	box := geom.BoundingBox{Min: geom.Pt(0, 0), Max: geom.Pt(cfg.Area, cfg.Area)}
	for i := range centers {
		centers[i] = geom.RandomInBox(r, box)
	}
	pick := func(cluster int) geom.Point {
		c := centers[cluster]
		return geom.Pt(c.X+r.NormFloat64()*cfg.Spread, c.Y+r.NormFloat64()*cfg.Spread)
	}
	for i := 0; i < cfg.Channels; i++ {
		cu := r.Intn(cfg.Clusters)
		cv := cu
		if cfg.Clusters > 1 && r.Float64() < cfg.InterClusterFraction {
			for cv == cu {
				cv = r.Intn(cfg.Clusters)
			}
		}
		u := cg.MustAddPort(model.Port{
			Name:     fmt.Sprintf("s%d", i),
			Module:   fmt.Sprintf("cluster%d", cu),
			Position: pick(cu),
		})
		v := cg.MustAddPort(model.Port{
			Name:     fmt.Sprintf("d%d", i),
			Module:   fmt.Sprintf("cluster%d", cv),
			Position: pick(cv),
		})
		bw := cfg.MinBandwidth + r.Float64()*(cfg.MaxBandwidth-cfg.MinBandwidth)
		cg.MustAddChannel(model.Channel{
			Name: fmt.Sprintf("ch%d", i), From: u, To: v, Bandwidth: bw,
		})
	}
	return cg
}

// RandomSoCConfig parameterizes the random on-chip generator.
type RandomSoCConfig struct {
	// Seed makes the instance reproducible.
	Seed int64
	// Modules is the number of floorplan modules (≥ 2).
	Modules int
	// Channels is the number of critical channels.
	Channels int
	// Die is the die side length in mm (default 6).
	Die float64
	// MinBandwidth and MaxBandwidth bound the channel word-rates
	// (defaults 0.4 and 6.4).
	MinBandwidth, MaxBandwidth float64
}

func (c RandomSoCConfig) withDefaults() RandomSoCConfig {
	if c.Modules < 2 {
		c.Modules = 8
	}
	if c.Die <= 0 {
		c.Die = 6
	}
	if c.MinBandwidth <= 0 {
		c.MinBandwidth = 0.4
	}
	if c.MaxBandwidth < c.MinBandwidth {
		c.MaxBandwidth = c.MinBandwidth + 6
	}
	return c
}

// RandomSoC generates a Manhattan-norm on-chip instance: modules placed
// uniformly on the die, channels between distinct random modules.
func RandomSoC(cfg RandomSoCConfig) *model.ConstraintGraph {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	cg := model.NewConstraintGraph(geom.Manhattan)
	positions := make([]geom.Point, cfg.Modules)
	box := geom.BoundingBox{Min: geom.Pt(0, 0), Max: geom.Pt(cfg.Die, cfg.Die)}
	for i := range positions {
		positions[i] = geom.RandomInBox(r, box)
	}
	for i := 0; i < cfg.Channels; i++ {
		mu := r.Intn(cfg.Modules)
		mv := mu
		for mv == mu {
			mv = r.Intn(cfg.Modules)
		}
		u := cg.MustAddPort(model.Port{
			Name:     fmt.Sprintf("m%d.ch%d.out", mu, i),
			Module:   fmt.Sprintf("m%d", mu),
			Position: positions[mu],
		})
		v := cg.MustAddPort(model.Port{
			Name:     fmt.Sprintf("m%d.ch%d.in", mv, i),
			Module:   fmt.Sprintf("m%d", mv),
			Position: positions[mv],
		})
		bw := cfg.MinBandwidth + r.Float64()*(cfg.MaxBandwidth-cfg.MinBandwidth)
		cg.MustAddChannel(model.Channel{
			Name: fmt.Sprintf("ch%d", i), From: u, To: v, Bandwidth: bw,
		})
	}
	return cg
}

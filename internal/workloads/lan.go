package workloads

import (
	"math"

	"repro/internal/geom"
	"repro/internal/library"
	"repro/internal/model"
)

// LAN builds the second motivating scenario of the paper's Section 2:
// a local-area network where the design question is whether to realize
// each link as fiber-optic, wireless, or a combination of the two.
// Distances are Euclidean meters, bandwidths Mbit/s.
//
// The instance is a small campus: two server racks in a machine room,
// client pools in three buildings, and an uplink pair between the
// servers. Client pools need modest bandwidth (wireless-friendly);
// the backup and storage flows towards the racks are fat
// (fiber-territory); the interesting channels are in between.
func LAN() *model.ConstraintGraph {
	sites := map[string]geom.Point{
		"rack1": geom.Pt(0, 0),
		"rack2": geom.Pt(4, 2),
		"bldgA": geom.Pt(120, 30),
		"bldgB": geom.Pt(150, -40),
		"bldgC": geom.Pt(90, 85),
		"gw":    geom.Pt(-30, 10),
	}
	channels := []struct {
		name     string
		from, to string
		bw       float64
	}{
		{"a-web", "bldgA", "rack1", 40}, // client traffic
		{"b-web", "bldgB", "rack1", 40},
		{"c-web", "bldgC", "rack1", 30},
		{"a-push", "rack2", "bldgA", 25}, // content push
		{"b-push", "rack2", "bldgB", 25},
		{"backupA", "bldgA", "rack2", 300}, // nightly backup, fat
		{"replic", "rack1", "rack2", 500},  // rack replication
		{"uplink", "rack1", "gw", 600},     // WAN uplink
		{"dnlink", "gw", "rack1", 600},
	}
	cg := model.NewConstraintGraph(geom.Euclidean)
	for _, c := range channels {
		src := cg.MustAddPort(model.Port{
			Name: c.from + "." + c.name + ".out", Module: c.from, Position: sites[c.from],
		})
		dst := cg.MustAddPort(model.Port{
			Name: c.to + "." + c.name + ".in", Module: c.to, Position: sites[c.to],
		})
		cg.MustAddChannel(model.Channel{Name: c.name, From: src, To: dst, Bandwidth: c.bw})
	}
	return cg
}

// LANLibrary is the fiber-vs-wireless library of the Section 2
// scenario: a wireless link (54 Mbit/s, any distance within the campus,
// cheap per meter — mostly amortized equipment) and a fiber link
// (10 Gbit/s, trenching priced per meter at four wireless-equivalents),
// plus inexpensive switches. The economics put the crossover at about
// four wireless channels' worth of bandwidth (~200 Mbit/s): thin client
// flows stay wireless, fat backbone flows go fiber.
func LANLibrary() *library.Library {
	return &library.Library{
		Links: []library.Link{
			{Name: "wireless", Bandwidth: 54, MaxSpan: math.Inf(1), CostPerLength: 1},
			{Name: "fiber", Bandwidth: 10000, MaxSpan: math.Inf(1), CostPerLength: 4},
		},
		Nodes: []library.Node{
			{Name: "switch-mux", Kind: library.Mux, Cost: 20},
			{Name: "switch-demux", Kind: library.Demux, Cost: 20},
		},
	}
}

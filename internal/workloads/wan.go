// Package workloads constructs the benchmark instances of the paper's
// Section 4 plus parameterized random generators for scaling studies.
//
// The WAN instance (Example 1, Figure 3, Tables 1–2) is reconstructed
// from the published matrices: Table 1 (Γ) determines the eight arc
// lengths uniquely, and matching every entry of Table 2 (Δ) pins the
// arc topology and — up to rigid motion — the node coordinates. See
// DESIGN.md §3 for the derivation.
package workloads

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/library"
	"repro/internal/model"
)

// WAN node coordinates in kilometers, reconstructed from Tables 1–2.
// Nodes A, B, C form one cluster, D, E the other, ~100 km apart.
// The coordinates solve the distance system implied by the tables and
// were refined by least squares against all 56 published entries (max
// residual 0.007 km, i.e. within the tables' two-decimal rounding).
var wanNodes = map[string]geom.Point{
	"D": geom.Pt(0, 0),
	"E": geom.Pt(-2.95783, -2.06056),
	"A": geom.Pt(97.01858, 0),
	"B": geom.Pt(100.09920, -3.93572),
	"C": geom.Pt(98.20504, -8.97522),
}

// wanChannels lists the eight constraint arcs a1…a8 as (source node,
// destination node). Every channel requires WANBandwidth.
var wanChannels = []struct {
	name     string
	from, to string
}{
	{"a1", "A", "B"},
	{"a2", "C", "B"},
	{"a3", "C", "A"},
	{"a4", "D", "A"},
	{"a5", "D", "B"},
	{"a6", "D", "C"},
	{"a7", "D", "E"},
	{"a8", "E", "D"},
}

// WANBandwidth is the uniform channel requirement of Example 1 (Mbps).
const WANBandwidth = 10.0

// WAN builds the Example 1 constraint graph. Following the paper's
// approximation that all ports of a computational node share the node's
// position, each channel endpoint gets a dedicated port placed at its
// node's coordinates.
func WAN() *model.ConstraintGraph {
	cg := model.NewConstraintGraph(geom.Euclidean)
	for _, c := range wanChannels {
		srcName := fmt.Sprintf("%s.%s.out", c.from, c.name)
		dstName := fmt.Sprintf("%s.%s.in", c.to, c.name)
		src := cg.MustAddPort(model.Port{Name: srcName, Module: c.from, Position: wanNodes[c.from]})
		dst := cg.MustAddPort(model.Port{Name: dstName, Module: c.to, Position: wanNodes[c.to]})
		cg.MustAddChannel(model.Channel{Name: c.name, From: src, To: dst, Bandwidth: WANBandwidth})
	}
	return cg
}

// WANLibrary is Example 1's communication library: a radio link
// (11 Mbps, any length, $2 per km) and an optical link (1 Gbps, any
// length, $4 per km). The example's switches carry no cost figures in
// the paper, so mux/demux nodes are present at zero cost; repeaters are
// never needed (both links are length-parametric).
func WANLibrary() *library.Library {
	return &library.Library{
		Links: []library.Link{
			{Name: "radio", Bandwidth: 11, MaxSpan: math.Inf(1), CostPerLength: 2},
			{Name: "optical", Bandwidth: 1000, MaxSpan: math.Inf(1), CostPerLength: 4},
		},
		Nodes: []library.Node{
			{Name: "mux", Kind: library.Mux, Cost: 0},
			{Name: "demux", Kind: library.Demux, Cost: 0},
		},
	}
}

// WANNodePosition returns the reconstructed coordinate of a WAN node
// (A–E), for reports and tests.
func WANNodePosition(name string) (geom.Point, bool) {
	p, ok := wanNodes[name]
	return p, ok
}

package workloads

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/library"
	"repro/internal/model"
)

// NoC builds the on-chip aggregation study instance: eight cores of a
// 3×3 tiled die (2×2 mm tiles) streaming to a memory controller in the
// center tile, Manhattan norm. Merging-friendly by construction — the
// traffic all converges on one hot spot, the canonical motivation for
// the bus/NoC topologies that grew out of this paper's framework.
func NoC() *model.ConstraintGraph {
	cg := model.NewConstraintGraph(geom.Manhattan)
	memPos := geom.Pt(3, 3)
	idx := 0
	for row := 0; row < 3; row++ {
		for col := 0; col < 3; col++ {
			if row == 1 && col == 1 {
				continue // memory controller tile
			}
			idx++
			corePos := geom.Pt(float64(col)*2+1, float64(row)*2+1)
			core := cg.MustAddPort(model.Port{
				Name:     fmt.Sprintf("core%d.out", idx),
				Module:   fmt.Sprintf("core%d", idx),
				Position: corePos,
			})
			mem := cg.MustAddPort(model.Port{
				Name:     fmt.Sprintf("mem.in%d", idx),
				Module:   "mem",
				Position: memPos,
			})
			cg.MustAddChannel(model.Channel{
				Name: fmt.Sprintf("core%d-mem", idx), From: core, To: mem, Bandwidth: 3.2,
			})
		}
	}
	return cg
}

// NoCLibrary is the on-chip library of the NoC study: a critical-length
// wire (cost counts active elements only), inverter repeaters, and
// router mux/demux pairs priced above a repeater.
func NoCLibrary() *library.Library {
	return &library.Library{
		Links: []library.Link{
			{Name: "wire", Bandwidth: 100, MaxSpan: 0.6, CostFixed: 1e-6},
		},
		Nodes: []library.Node{
			{Name: "inverter", Kind: library.Repeater, Cost: 1},
			{Name: "router-mux", Kind: library.Mux, Cost: 2},
			{Name: "router-demux", Kind: library.Demux, Cost: 2},
		},
	}
}

package workloads

import (
	"repro/internal/geom"
	"repro/internal/library"
	"repro/internal/model"
)

// MCM builds the third system class the paper's Section 2 lists: a
// multi-chip multi-processor system. Four processor chips, a memory
// controller hub and an I/O hub sit on a 300×200 mm board; channels are
// the inter-chip fabric links. Distances are Manhattan millimeters
// (board routing is rectilinear), bandwidths Gbit/s.
func MCM() *model.ConstraintGraph {
	chips := map[string]geom.Point{
		"cpu0": geom.Pt(60, 60),
		"cpu1": geom.Pt(60, 140),
		"cpu2": geom.Pt(240, 60),
		"cpu3": geom.Pt(240, 140),
		"mch":  geom.Pt(150, 100), // memory controller hub
		"ioh":  geom.Pt(150, 25),  // I/O hub
	}
	channels := []struct {
		name     string
		from, to string
		bw       float64
	}{
		{"c0-mem", "cpu0", "mch", 24},
		{"c1-mem", "cpu1", "mch", 24},
		{"c2-mem", "cpu2", "mch", 24},
		{"c3-mem", "cpu3", "mch", 24},
		{"mem-c0", "mch", "cpu0", 24},
		{"mem-c2", "mch", "cpu2", 24},
		{"c0-c1", "cpu0", "cpu1", 12}, // cache-coherence ring segments
		{"c1-c3", "cpu1", "cpu3", 12},
		{"c3-c2", "cpu3", "cpu2", 12},
		{"c2-c0", "cpu2", "cpu0", 12},
		{"io-in", "ioh", "mch", 8},
		{"io-out", "mch", "ioh", 8},
	}
	cg := model.NewConstraintGraph(geom.Manhattan)
	for _, c := range channels {
		src := cg.MustAddPort(model.Port{
			Name: c.from + "." + c.name + ".out", Module: c.from, Position: chips[c.from],
		})
		dst := cg.MustAddPort(model.Port{
			Name: c.to + "." + c.name + ".in", Module: c.to, Position: chips[c.to],
		})
		cg.MustAddChannel(model.Channel{Name: c.name, From: src, To: dst, Bandwidth: c.bw})
	}
	return cg
}

// MCMLibrary is the board-level library: a parallel PCB trace bundle
// (16 Gbit/s, up to 120 mm before a redriver, priced per mm) and a
// SerDes link (64 Gbit/s, up to 250 mm, pricier per mm), with redriver
// chips as repeaters and switch chips as mux/demux.
func MCMLibrary() *library.Library {
	return &library.Library{
		Links: []library.Link{
			{Name: "trace", Bandwidth: 16, MaxSpan: 120, CostPerLength: 0.05, CostFixed: 0.5},
			{Name: "serdes", Bandwidth: 64, MaxSpan: 250, CostPerLength: 0.12, CostFixed: 2},
		},
		Nodes: []library.Node{
			{Name: "redriver", Kind: library.Repeater, Cost: 3},
			{Name: "xbar-mux", Kind: library.Mux, Cost: 5},
			{Name: "xbar-demux", Kind: library.Demux, Cost: 5},
		},
	}
}

package workloads

import (
	"math"
	"testing"

	"repro/internal/impl"
	"repro/internal/merging"
	"repro/internal/model"
	"repro/internal/p2p"
)

// TableTolerance is the acceptance bound of experiments E1/E2: every
// reproduced matrix entry must sit within this distance of the published
// value (the tables are rounded to two decimals, so 0.03 km absorbs the
// rounding of sums of two rounded coordinates).
const TableTolerance = 0.03

func TestWANStructure(t *testing.T) {
	cg := WAN()
	if cg.NumChannels() != 8 {
		t.Fatalf("channels = %d, want 8", cg.NumChannels())
	}
	if cg.NumPorts() != 16 {
		t.Fatalf("ports = %d, want 16 (dedicated per endpoint)", cg.NumPorts())
	}
	if err := cg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if cg.Norm().Name() != "euclidean" {
		t.Errorf("norm = %s", cg.Norm().Name())
	}
	for i := 0; i < 8; i++ {
		if b := cg.Bandwidth(model.ChannelID(i)); b != WANBandwidth {
			t.Errorf("channel %d bandwidth = %v", i, b)
		}
	}
	if _, ok := WANNodePosition("D"); !ok {
		t.Error("node D missing")
	}
	if _, ok := WANNodePosition("Z"); ok {
		t.Error("node Z should not exist")
	}
}

func TestWANReproducesTable1(t *testing.T) {
	cg := WAN()
	gamma := merging.Gamma(cg)
	want := PaperTable1()
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			got := gamma.At(i, j)
			if math.Abs(got-want[i][j]) > TableTolerance {
				t.Errorf("Γ(a%d,a%d) = %.3f, published %.2f", i+1, j+1, got, want[i][j])
			}
		}
	}
}

func TestWANReproducesTable2(t *testing.T) {
	cg := WAN()
	delta := merging.Delta(cg)
	want := PaperTable2()
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			got := delta.At(i, j)
			if math.Abs(got-want[i][j]) > TableTolerance {
				t.Errorf("Δ(a%d,a%d) = %.3f, published %.2f", i+1, j+1, got, want[i][j])
			}
		}
	}
}

func TestWANLemma31MatchesPaper(t *testing.T) {
	// 13 two-way candidates; a8 mergeable with nothing.
	cg := WAN()
	res, err := merging.Enumerate(cg, WANLibrary(), merging.Options{Policy: merging.MaxIndexRef, MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Count(2), PaperCandidateCounts()[2]; got != want {
		t.Errorf("2-way candidates = %d, paper %d", got, want)
	}
	a8, _ := cg.ChannelByName("a8")
	for _, pair := range res.ByK[2] {
		for _, ch := range pair {
			if ch == a8 {
				t.Errorf("a8 appears in pair %v; paper says unmergeable", pair)
			}
		}
	}
}

func TestWANLibraryValid(t *testing.T) {
	lib := WANLibrary()
	if err := lib.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if lib.MaxBandwidth() != 1000 {
		t.Errorf("MaxBandwidth = %v", lib.MaxBandwidth())
	}
}

func TestMPEG4RepeaterCount(t *testing.T) {
	// Experiment E6 / Figure 5: 55 repeaters at l_crit = 0.6 mm.
	cg := MPEG4()
	tech := MPEG4Technology()
	if got := tech.TotalRepeaters(cg); got != MPEG4ExpectedRepeaters {
		t.Errorf("analytic repeater count = %d, want %d", got, MPEG4ExpectedRepeaters)
	}
	// The synthesized segmentation must realize exactly that count.
	ig, plans, err := p2p.Synthesize(cg, tech.Library(), p2p.Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if err := ig.Verify(impl.VerifyOptions{}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	repeaters := 0
	for _, plan := range plans {
		repeaters += (plan.Segments - 1) * plan.Chains
	}
	if repeaters != MPEG4ExpectedRepeaters {
		t.Errorf("synthesized repeaters = %d, want %d", repeaters, MPEG4ExpectedRepeaters)
	}
	if ig.NumCommVertices() != MPEG4ExpectedRepeaters {
		t.Errorf("communication vertices = %d, want %d", ig.NumCommVertices(), MPEG4ExpectedRepeaters)
	}
}

func TestMPEG4Structure(t *testing.T) {
	cg := MPEG4()
	if err := cg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cg.Norm().Name() != "manhattan" {
		t.Errorf("norm = %s, want manhattan", cg.Norm().Name())
	}
	if cg.NumChannels() != 10 {
		t.Errorf("channels = %d, want 10", cg.NumChannels())
	}
	// No channel length may be an exact multiple of l_crit (that would
	// make the paper's floor cost and segmentation count diverge).
	tech := MPEG4Technology()
	for i := 0; i < cg.NumChannels(); i++ {
		d := cg.Distance(model.ChannelID(i))
		ratio := d / tech.LCrit
		if math.Abs(ratio-math.Round(ratio)) < 1e-9 {
			t.Errorf("channel %d length %v is an exact l_crit multiple", i, d)
		}
	}
}

func TestRandomWANDeterministic(t *testing.T) {
	a := RandomWAN(RandomWANConfig{Seed: 5, Clusters: 3, Channels: 10})
	b := RandomWAN(RandomWANConfig{Seed: 5, Clusters: 3, Channels: 10})
	if a.NumChannels() != 10 || b.NumChannels() != 10 {
		t.Fatal("channel count wrong")
	}
	for i := 0; i < 10; i++ {
		id := model.ChannelID(i)
		if a.Distance(id) != b.Distance(id) || a.Bandwidth(id) != b.Bandwidth(id) {
			t.Fatalf("same seed produced different instances at channel %d", i)
		}
	}
	c := RandomWAN(RandomWANConfig{Seed: 6, Clusters: 3, Channels: 10})
	same := true
	for i := 0; i < 10; i++ {
		if a.Distance(model.ChannelID(i)) != c.Distance(model.ChannelID(i)) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical instances")
	}
}

func TestRandomWANValidates(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		cg := RandomWAN(RandomWANConfig{Seed: seed, Clusters: 2, Channels: 6})
		if err := cg.Validate(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestRandomSoCValidates(t *testing.T) {
	cg := RandomSoC(RandomSoCConfig{Seed: 1, Modules: 6, Channels: 8})
	if err := cg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cg.Norm().Name() != "manhattan" {
		t.Error("SoC instances must use Manhattan norm")
	}
	if cg.NumChannels() != 8 {
		t.Errorf("channels = %d", cg.NumChannels())
	}
}

func TestLANStructure(t *testing.T) {
	cg := LAN()
	if err := cg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cg.NumChannels() != 9 {
		t.Errorf("channels = %d, want 9", cg.NumChannels())
	}
	lib := LANLibrary()
	if err := lib.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, ok := lib.LinkByName("wireless"); !ok {
		t.Error("wireless link missing")
	}
	if _, ok := lib.LinkByName("fiber"); !ok {
		t.Error("fiber link missing")
	}
}

func TestMCMStructure(t *testing.T) {
	cg := MCM()
	if err := cg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cg.NumChannels() != 12 {
		t.Errorf("channels = %d, want 12", cg.NumChannels())
	}
	if cg.Norm().Name() != "manhattan" {
		t.Error("board routing is rectilinear; expected Manhattan norm")
	}
	lib := MCMLibrary()
	if err := lib.Validate(); err != nil {
		t.Fatal(err)
	}
	// The fabric must be synthesizable end to end: channels above
	// 16 Gbps need duplication or SerDes, and memory-bound channels are
	// merge candidates into the hub.
	ig, plans, err := p2p.Synthesize(cg, lib, p2p.Options{})
	if err != nil {
		t.Fatalf("p2p: %v", err)
	}
	if err := ig.Verify(impl.VerifyOptions{}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// Bandwidth-driven media mix: the 24 Gbps memory channels exceed one
	// trace bundle and upgrade to SerDes, while the thin ring and I/O
	// channels stay on cheap traces.
	media := map[string]bool{}
	for _, p := range plans {
		media[p.Link.Name] = true
	}
	if !media["trace"] || !media["serdes"] {
		t.Errorf("expected a trace+serdes mix, got %v", media)
	}
}

func TestNoCStructure(t *testing.T) {
	cg := NoC()
	if err := cg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cg.NumChannels() != 8 {
		t.Errorf("channels = %d, want 8", cg.NumChannels())
	}
	if cg.Norm().Name() != "manhattan" {
		t.Error("NoC must use Manhattan norm")
	}
	if err := NoCLibrary().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPaperTablesShape(t *testing.T) {
	t1 := PaperTable1()
	t2 := PaperTable2()
	// Spot checks against the publication.
	if t1[0][1] != 10.38 || t1[6][7] != 7.21 || t1[3][4] != 197.20 {
		t.Error("Table 1 transcription wrong")
	}
	if t2[0][1] != 9.05 || t2[3][6] != 100.00 || t2[6][7] != 7.21 {
		t.Error("Table 2 transcription wrong")
	}
	// Lower triangles must stay zero.
	if t1[1][0] != 0 || t2[7][6] != 0 {
		t.Error("lower triangle should be zero")
	}
}

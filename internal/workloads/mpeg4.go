package workloads

import (
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/soc"
)

// MPEG4 builds the on-chip instance of the paper's Example 2 (Figure 5):
// the most critical global channels of a multi-processor MPEG-4 decoder
// in a 0.18 µm process, measured with the Manhattan norm.
//
// The paper does not publish the decoder's floorplan, only the outcome —
// 55 repeaters in total at l_crit = 0.6 mm. This synthetic floorplan
// (a plausible multi-processor MPEG-4 decoder: RISC control CPU, variable
// length decoder, IQ/IDCT, motion compensation, audio DSP, SDRAM
// controller, video output unit, DMA engine and peripheral bridge on a
// ~6×6 mm die) is constructed so the critical-channel length multiset
// yields the paper's exact repeater total, which is the experiment's
// observable. See DESIGN.md §4.
//
// Channel bandwidths are word-rates in Gbit/s, all far below a repeated
// wire's capacity, so — as in the paper — the experiment exercises pure
// arc segmentation.
func MPEG4() *model.ConstraintGraph {
	modules := map[string]geom.Point{
		"sdram":  geom.Pt(5.40, 3.08), // SDRAM controller
		"cpu":    geom.Pt(0.90, 5.10), // RISC control processor
		"vld":    geom.Pt(0.85, 3.20), // variable-length decoder
		"idct":   geom.Pt(2.25, 1.95), // IQ / IDCT engine
		"mc":     geom.Pt(3.10, 4.25), // motion compensation
		"adsp":   geom.Pt(1.20, 0.85), // audio DSP
		"vout":   geom.Pt(4.75, 0.90), // video output unit
		"dma":    geom.Pt(3.05, 3.00), // DMA engine
		"bridge": geom.Pt(5.10, 5.15), // peripheral bridge
	}
	channels := []struct {
		name     string
		from, to string
		bw       float64
	}{
		{"ctrl_dma", "cpu", "dma", 0.8},    // control traffic to DMA
		{"dma_mem", "dma", "sdram", 6.4},   // DMA ↔ memory burst
		{"mem_vld", "sdram", "vld", 3.2},   // bitstream fetch
		{"vld_idct", "vld", "idct", 1.6},   // coefficient stream
		{"idct_mc", "idct", "mc", 3.2},     // residual blocks
		{"mc_mem", "mc", "sdram", 6.4},     // reference frame fetch
		{"mem_vout", "sdram", "vout", 4.8}, // display scan-out
		{"ctrl_per", "cpu", "bridge", 0.4}, // peripheral control
		{"adsp_dma", "adsp", "dma", 1.6},   // audio buffer traffic
		{"dma_vout", "dma", "vout", 3.2},   // OSD / overlay path
	}
	cg := model.NewConstraintGraph(geom.Manhattan)
	for _, c := range channels {
		src := cg.MustAddPort(model.Port{
			Name:     c.from + "." + c.name + ".out",
			Module:   c.from,
			Position: modules[c.from],
		})
		dst := cg.MustAddPort(model.Port{
			Name:     c.to + "." + c.name + ".in",
			Module:   c.to,
			Position: modules[c.to],
		})
		cg.MustAddChannel(model.Channel{Name: c.name, From: src, To: dst, Bandwidth: c.bw})
	}
	return cg
}

// MPEG4Technology returns the 0.18 µm process used by Example 2.
func MPEG4Technology() soc.Technology { return soc.Tech180nm() }

// MPEG4ExpectedRepeaters is the paper's published total for Figure 5.
const MPEG4ExpectedRepeaters = 55

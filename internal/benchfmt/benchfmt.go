// Package benchfmt defines the machine-readable benchmark baseline
// written by cmd/cdcs-bench -json and compared by cmd/bench-diff. The
// committed reference trajectory is BENCH_seed.json in the repo root;
// CI regenerates a fresh baseline on every push and gates the build on
// Diff against the seed.
//
// A baseline has two kinds of payload per run: wall-clock time, which
// is compared with a tolerance (runners are noisy), and the
// observability layer's algorithm counters (prune hits, B&B nodes, …),
// which are pure functions of the instance and compared exactly — a
// counter drift is an algorithmic change, not noise, and must be
// reviewed via a seed regeneration in the same commit. Counters whose
// split is scheduling-dependent (the p2p planner's cache hit/miss pair;
// see docs/OBSERVABILITY.md) are excluded by prefix.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Baseline is one cdcs-bench trajectory point: the environment it ran
// in plus a record per experiment.
type Baseline struct {
	GoVersion string `json:"goVersion"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"numCPU"`
	Workers   int    `json:"workers"`
	Timeout   string `json:"timeout,omitempty"`
	Short     bool   `json:"short"`
	Runs      []Run  `json:"runs"`
}

// Run records one experiment's outcome.
type Run struct {
	ID        string  `json:"id"`
	Name      string  `json:"name"`
	Title     string  `json:"title"`
	Passed    bool    `json:"passed"`
	ElapsedMs float64 `json:"elapsedMs"`
	// Counters is the run's delta of the observability registry's
	// deterministic counters (obs.Snapshot.CounterMap before/after).
	// Older baselines (and runs without -json) omit it; Diff only
	// compares counters present on both sides.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Load reads a baseline JSON file.
func Load(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &b, nil
}

// Write writes the baseline as indented JSON (the committed-seed
// format: stable field order, trailing newline).
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// DiffOptions tunes the gate.
type DiffOptions struct {
	// TimeTolerance is the allowed fractional slowdown per run; 0 means
	// the default 0.30 (+30%). Only regressions fail — a faster run is
	// never a violation.
	TimeTolerance float64
	// AbsSlackMs is an absolute grace added to every run's time limit,
	// so sub-millisecond experiments (whose relative variance is huge)
	// do not flap the gate; 0 means the default 50ms. Set negative to
	// disable the grace entirely.
	AbsSlackMs float64
	// IgnorePrefixes lists counter-name prefixes excluded from the
	// exact-match comparison; nil means the default {"p2p/cache/"}
	// (the planner cache's hit/miss split is scheduling-dependent under
	// parallel pricing). An explicit empty non-nil slice ignores
	// nothing.
	IgnorePrefixes []string
}

func (o DiffOptions) timeTolerance() float64 {
	if o.TimeTolerance == 0 {
		return 0.30
	}
	return o.TimeTolerance
}

func (o DiffOptions) absSlackMs() float64 {
	if o.AbsSlackMs == 0 {
		return 50
	}
	if o.AbsSlackMs < 0 {
		return 0
	}
	return o.AbsSlackMs
}

func (o DiffOptions) ignored(name string) bool {
	prefixes := o.IgnorePrefixes
	if prefixes == nil {
		prefixes = []string{"p2p/cache/"}
	}
	for _, p := range prefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// Violation is one gate failure, already formatted for the log.
type Violation struct {
	// RunID is the experiment the violation is about ("E5"), or "" for
	// baseline-level problems.
	RunID string
	// Kind classifies the violation: "missing", "failed", "time",
	// "counter".
	Kind string
	// Detail is the human-readable explanation.
	Detail string
}

func (v Violation) String() string {
	if v.RunID == "" {
		return fmt.Sprintf("%s: %s", v.Kind, v.Detail)
	}
	return fmt.Sprintf("%s [%s]: %s", v.RunID, v.Kind, v.Detail)
}

// Diff compares a current baseline against the committed seed and
// returns the violations, in seed-run order (counter violations
// name-sorted within a run) so the gate's output is deterministic. An
// empty result means the gate passes. Runs present only in cur are
// informational, not violations — new experiments extend the seed on
// the next regeneration.
func Diff(seed, cur *Baseline, opt DiffOptions) []Violation {
	byID := make(map[string]*Run, len(cur.Runs))
	for i := range cur.Runs {
		byID[cur.Runs[i].ID] = &cur.Runs[i]
	}
	var out []Violation
	for i := range seed.Runs {
		s := &seed.Runs[i]
		c, ok := byID[s.ID]
		if !ok {
			out = append(out, Violation{RunID: s.ID, Kind: "missing",
				Detail: fmt.Sprintf("experiment %q in seed but absent from current run", s.Name)})
			continue
		}
		if !c.Passed {
			out = append(out, Violation{RunID: s.ID, Kind: "failed",
				Detail: fmt.Sprintf("experiment %q failed (seed passed=%v)", c.Name, s.Passed)})
		}
		limit := s.ElapsedMs*(1+opt.timeTolerance()) + opt.absSlackMs()
		if c.ElapsedMs > limit {
			out = append(out, Violation{RunID: s.ID, Kind: "time",
				Detail: fmt.Sprintf("%.3fms exceeds limit %.3fms (seed %.3fms, tolerance +%d%% +%.0fms slack)",
					c.ElapsedMs, limit, s.ElapsedMs,
					int(opt.timeTolerance()*100), opt.absSlackMs())})
		}
		out = append(out, diffCounters(s, c, opt)...)
	}
	return out
}

// diffCounters exact-matches every non-ignored counter present in both
// the seed run and the current run. One side lacking a counter the
// other has is a violation only when the seed has it and the current
// run recorded counters at all — an old seed without counters, or a
// current run without metrics, compares vacuously.
func diffCounters(s, c *Run, opt DiffOptions) []Violation {
	if len(s.Counters) == 0 || c.Counters == nil {
		return nil
	}
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Violation
	for _, name := range names {
		if opt.ignored(name) {
			continue
		}
		got, ok := c.Counters[name]
		if !ok {
			out = append(out, Violation{RunID: s.ID, Kind: "counter",
				Detail: fmt.Sprintf("%s: in seed (%d) but not recorded by current run", name, s.Counters[name])})
			continue
		}
		if got != s.Counters[name] {
			out = append(out, Violation{RunID: s.ID, Kind: "counter",
				Detail: fmt.Sprintf("%s: %d != seed %d (deterministic counter drift — algorithmic change? regenerate the seed in the same commit if intended)",
					name, got, s.Counters[name])})
		}
	}
	return out
}

package benchfmt

import (
	"path/filepath"
	"testing"
)

func seedAndCopy() (*Baseline, *Baseline) {
	mk := func() *Baseline {
		return &Baseline{
			GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", NumCPU: 4, Short: true,
			Runs: []Run{
				{ID: "E1", Name: "table1", Title: "Table 1", Passed: true, ElapsedMs: 0.2},
				{ID: "E5", Name: "fig4", Title: "Figure 4", Passed: true, ElapsedMs: 100,
					Counters: map[string]int64{
						"merging/sets_tested": 57,
						"ucp/nodes":           12,
						"p2p/cache/hits":      40,
						"p2p/cache/misses":    9,
					}},
			},
		}
	}
	return mk(), mk()
}

func TestDiffIdenticalPasses(t *testing.T) {
	seed, cur := seedAndCopy()
	if v := Diff(seed, cur, DiffOptions{}); len(v) != 0 {
		t.Fatalf("identical baselines must pass, got %v", v)
	}
}

func TestDiffFasterRunPasses(t *testing.T) {
	seed, cur := seedAndCopy()
	cur.Runs[1].ElapsedMs = 1 // 100x speedup is never a violation
	if v := Diff(seed, cur, DiffOptions{}); len(v) != 0 {
		t.Fatalf("faster run must pass, got %v", v)
	}
}

func TestDiffTimeRegressionFails(t *testing.T) {
	seed, cur := seedAndCopy()
	// Limit for E5 is 100*1.30 + 50 = 180ms.
	cur.Runs[1].ElapsedMs = 181
	v := Diff(seed, cur, DiffOptions{})
	if len(v) != 1 || v[0].Kind != "time" || v[0].RunID != "E5" {
		t.Fatalf("want one E5 time violation, got %v", v)
	}
	cur.Runs[1].ElapsedMs = 179
	if v := Diff(seed, cur, DiffOptions{}); len(v) != 0 {
		t.Fatalf("run inside tolerance must pass, got %v", v)
	}
}

func TestDiffAbsSlackShieldsTinyRuns(t *testing.T) {
	seed, cur := seedAndCopy()
	// E1's seed time is 0.2ms; a 10ms flake is inside the 50ms slack.
	cur.Runs[0].ElapsedMs = 10
	if v := Diff(seed, cur, DiffOptions{}); len(v) != 0 {
		t.Fatalf("sub-slack jitter must pass, got %v", v)
	}
	// With the grace disabled the same jitter fails.
	v := Diff(seed, cur, DiffOptions{AbsSlackMs: -1})
	if len(v) != 1 || v[0].Kind != "time" || v[0].RunID != "E1" {
		t.Fatalf("want one E1 time violation with slack off, got %v", v)
	}
}

func TestDiffCounterDriftFails(t *testing.T) {
	seed, cur := seedAndCopy()
	cur.Runs[1].Counters["ucp/nodes"] = 13
	delete(cur.Runs[1].Counters, "merging/sets_tested")
	v := Diff(seed, cur, DiffOptions{})
	if len(v) != 2 {
		t.Fatalf("want 2 counter violations, got %v", v)
	}
	// Violations are name-sorted: merging/... before ucp/....
	if v[0].Kind != "counter" || v[1].Kind != "counter" ||
		v[0].Detail[:len("merging")] != "merging" || v[1].Detail[:len("ucp")] != "ucp" {
		t.Fatalf("violations wrong or unsorted: %v", v)
	}
}

func TestDiffIgnoresSchedulingDependentPrefixes(t *testing.T) {
	seed, cur := seedAndCopy()
	// The planner cache split moves between hits and misses under
	// parallel pricing; the default ignore list excludes it.
	cur.Runs[1].Counters["p2p/cache/hits"] = 35
	cur.Runs[1].Counters["p2p/cache/misses"] = 14
	if v := Diff(seed, cur, DiffOptions{}); len(v) != 0 {
		t.Fatalf("ignored-prefix drift must pass, got %v", v)
	}
	// An explicit empty (non-nil) list ignores nothing.
	v := Diff(seed, cur, DiffOptions{IgnorePrefixes: []string{}})
	if len(v) != 2 {
		t.Fatalf("want 2 violations with empty ignore list, got %v", v)
	}
}

func TestDiffMissingAndFailedRuns(t *testing.T) {
	seed, cur := seedAndCopy()
	cur.Runs = cur.Runs[:1]
	cur.Runs[0].Passed = false
	v := Diff(seed, cur, DiffOptions{})
	if len(v) != 2 || v[0].Kind != "failed" || v[0].RunID != "E1" ||
		v[1].Kind != "missing" || v[1].RunID != "E5" {
		t.Fatalf("want E1 failed + E5 missing, got %v", v)
	}
}

func TestDiffOldSeedWithoutCountersIsVacuous(t *testing.T) {
	seed, cur := seedAndCopy()
	seed.Runs[1].Counters = nil
	cur.Runs[1].Counters["ucp/nodes"] = 999
	if v := Diff(seed, cur, DiffOptions{}); len(v) != 0 {
		t.Fatalf("counter-less seed must not gate counters, got %v", v)
	}
	// And a current run without metrics compares vacuously too.
	seed2, cur2 := seedAndCopy()
	cur2.Runs[1].Counters = nil
	if v := Diff(seed2, cur2, DiffOptions{}); len(v) != 0 {
		t.Fatalf("counter-less current run must not gate counters, got %v", v)
	}
}

func TestLoadWriteRoundTrip(t *testing.T) {
	seed, _ := seedAndCopy()
	path := filepath.Join(t.TempDir(), "b.json")
	if err := seed.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if v := Diff(seed, got, DiffOptions{}); len(v) != 0 {
		t.Fatalf("round-trip changed the baseline: %v", v)
	}
	if got.Runs[1].Counters["merging/sets_tested"] != 57 {
		t.Fatalf("counters lost in round trip: %+v", got.Runs[1])
	}
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("Load of a missing file must error")
	}
}

package baseline

import (
	"testing"

	"repro/internal/workloads"
)

func BenchmarkGreedyAgglomerativeWAN(b *testing.B) {
	cg := workloads.WAN()
	lib := workloads.WANLibrary()
	for i := 0; i < b.N; i++ {
		if _, _, err := Synthesize(cg, lib, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

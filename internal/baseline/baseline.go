// Package baseline implements a prior-art-style heuristic synthesizer
// to contrast with the paper's exact algorithm: greedy agglomerative
// merging. Starting from the optimum point-to-point implementation, it
// repeatedly commits the single group merge with the largest immediate
// saving and stops when no merge improves the cost — the
// local-improvement flavor of the earlier communication-synthesis
// approaches the paper's related-work section describes.
//
// The heuristic's blind spot is exactly what motivates the paper's
// two-step exact flow: a k-way merging can be profitable even when
// every smaller merging of the same arcs is not. On the paper's own WAN
// example no pair from {a4, a5, a6} beats two dedicated radio links —
// only the triple on an optical trunk pays — so greedy agglomeration
// never leaves the point-to-point solution and forfeits the entire
// 28 % saving (experiment E13).
package baseline

import (
	"fmt"
	"math"
	"time"

	"repro/internal/graph"
	"repro/internal/impl"
	"repro/internal/library"
	"repro/internal/model"
	"repro/internal/p2p"
	"repro/internal/place"
)

// Options configures the heuristic.
type Options struct {
	// P2P and Place configure the shared sub-planners.
	P2P   p2p.Options
	Place place.Options
	// MaxGroupSize caps how many channels one merged group may hold;
	// zero means unlimited.
	MaxGroupSize int
}

// Report summarizes a heuristic run.
type Report struct {
	// Cost is the final architecture cost; P2PCost the starting point.
	Cost, P2PCost float64
	// Merges is the number of group merges committed.
	Merges int
	// Groups lists the final channel grouping.
	Groups [][]model.ChannelID
	// Elapsed is the wall-clock time.
	Elapsed time.Duration
}

// group is a unit of the evolving partition.
type group struct {
	channels []model.ChannelID
	cost     float64
	merge    *place.Candidate // nil for singletons
	plan     *p2p.Plan        // set for singletons
}

// Synthesize runs greedy agglomerative merging and materializes the
// resulting architecture.
func Synthesize(cg *model.ConstraintGraph, lib *library.Library, opt Options) (*impl.Graph, *Report, error) {
	start := time.Now()
	if err := cg.Validate(); err != nil {
		return nil, nil, err
	}
	if err := lib.Validate(); err != nil {
		return nil, nil, err
	}
	n := cg.NumChannels()
	groups := make([]*group, 0, n)
	rep := &Report{}
	for i := 0; i < n; i++ {
		ch := model.ChannelID(i)
		plan, err := p2p.BestPlan(cg.Distance(ch), cg.Bandwidth(ch), lib, opt.P2P)
		if err != nil {
			return nil, nil, fmt.Errorf("baseline: channel %q: %w", cg.Channel(ch).Name, err)
		}
		p := plan
		groups = append(groups, &group{
			channels: []model.ChannelID{ch},
			cost:     plan.Cost,
			plan:     &p,
		})
		rep.P2PCost += plan.Cost
	}

	// Greedy loop: commit the best-improving pairwise group merge.
	for {
		bestI, bestJ := -1, -1
		bestGain := 1e-9 // require strict improvement
		var bestCand *place.Candidate
		for i := 0; i < len(groups); i++ {
			for j := i + 1; j < len(groups); j++ {
				combined := len(groups[i].channels) + len(groups[j].channels)
				if opt.MaxGroupSize > 0 && combined > opt.MaxGroupSize {
					continue
				}
				union := append(append([]model.ChannelID(nil),
					groups[i].channels...), groups[j].channels...)
				cand, err := place.Optimize(cg, lib, union, opt.Place)
				if err != nil {
					continue // merging infeasible
				}
				gain := groups[i].cost + groups[j].cost - cand.Cost
				if gain > bestGain {
					bestGain, bestI, bestJ, bestCand = gain, i, j, cand
				}
			}
		}
		if bestI < 0 {
			break
		}
		merged := &group{
			channels: bestCand.Channels,
			cost:     bestCand.Cost,
			merge:    bestCand,
		}
		// Remove j first (j > i) to keep indices valid.
		groups = append(groups[:bestJ], groups[bestJ+1:]...)
		groups[bestI] = merged
		rep.Merges++
	}

	// Materialize.
	ig := impl.New(cg)
	var total float64
	for _, g := range groups {
		total += g.cost
		rep.Groups = append(rep.Groups, g.channels)
		if g.merge != nil {
			if err := g.merge.Instantiate(ig, lib); err != nil {
				return nil, nil, err
			}
			continue
		}
		ch := g.channels[0]
		c := cg.Channel(ch)
		paths, err := p2p.BuildChains(ig, graph.VertexID(c.From), graph.VertexID(c.To), *g.plan, lib, c.Name)
		if err != nil {
			return nil, nil, err
		}
		ig.AssignImplementation(ch, paths)
	}
	rep.Cost = total
	if math.IsNaN(total) || math.IsInf(total, 0) {
		return nil, nil, fmt.Errorf("baseline: non-finite cost")
	}
	if err := ig.Verify(impl.VerifyOptions{}); err != nil {
		return nil, nil, fmt.Errorf("baseline: result fails verification: %w", err)
	}
	rep.Elapsed = time.Since(start)
	return ig, rep, nil
}

package baseline

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/impl"
	"repro/internal/model"
	"repro/internal/synth"
	"repro/internal/workloads"
)

func TestGreedyMissesTripleMergeOnWAN(t *testing.T) {
	// The headline failure mode: on the paper's own instance no pair of
	// {a4, a5, a6} improves on point-to-point (a 2-way radio-to-optical
	// upgrade costs exactly what it saves), so greedy agglomeration
	// stays at the point-to-point solution while the exact algorithm
	// finds the 3-way merge.
	cg := workloads.WAN()
	lib := workloads.WANLibrary()

	ig, rep, err := Synthesize(cg, lib, Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if err := ig.Verify(impl.VerifyOptions{}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Merges != 0 {
		t.Errorf("greedy committed %d merges; expected to be stuck at p2p", rep.Merges)
	}
	if math.Abs(rep.Cost-rep.P2PCost) > 1e-9 {
		t.Errorf("greedy cost %v ≠ p2p %v", rep.Cost, rep.P2PCost)
	}

	_, exact, err := synth.Synthesize(cg, lib, synth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Cost >= rep.Cost {
		t.Errorf("exact (%v) should beat greedy (%v) on the WAN", exact.Cost, rep.Cost)
	}
	gap := 100 * (rep.Cost - exact.Cost) / exact.Cost
	if gap < 20 {
		t.Errorf("expected a large optimality gap, got %.1f%%", gap)
	}
	t.Logf("WAN: greedy %.2f vs exact %.2f (gap %.1f%%)", rep.Cost, exact.Cost, gap)
}

func TestGreedyFindsObviousMerge(t *testing.T) {
	// When a pairwise merge does pay immediately, greedy must take it:
	// two channels from one point to nearby destinations, with the
	// trunk medium already cheap.
	cg := model.NewConstraintGraph(geom.Euclidean)
	u1 := cg.MustAddPort(model.Port{Name: "u1", Position: geom.Pt(0, 0)})
	u2 := cg.MustAddPort(model.Port{Name: "u2", Position: geom.Pt(0, 0)})
	d1 := cg.MustAddPort(model.Port{Name: "d1", Position: geom.Pt(100, 1)})
	d2 := cg.MustAddPort(model.Port{Name: "d2", Position: geom.Pt(100, -1)})
	cg.MustAddChannel(model.Channel{Name: "x", From: u1, To: d1, Bandwidth: 4})
	cg.MustAddChannel(model.Channel{Name: "y", From: u2, To: d2, Bandwidth: 4})

	// Combined 8 Mbps still fits one 11 Mbps radio trunk: merging two
	// $2/km radios into one is nearly half price.
	ig, rep, err := Synthesize(cg, workloads.WANLibrary(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ig.Verify(impl.VerifyOptions{}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Merges != 1 {
		t.Errorf("merges = %d, want 1", rep.Merges)
	}
	if rep.Cost >= rep.P2PCost {
		t.Errorf("merge should improve: %v vs %v", rep.Cost, rep.P2PCost)
	}
}

func TestGreedyNeverBeatsExactProperty(t *testing.T) {
	lib := workloads.WANLibrary()
	for seed := int64(0); seed < 6; seed++ {
		cg := workloads.RandomWAN(workloads.RandomWANConfig{
			Seed: seed, Clusters: 2, Channels: 6,
		})
		_, greedy, err := Synthesize(cg, lib, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		_, exact, err := synth.Synthesize(cg, lib, synth.Options{})
		if err != nil {
			t.Fatalf("seed %d exact: %v", seed, err)
		}
		if exact.Cost > greedy.Cost+1e-6 {
			t.Fatalf("seed %d: exact %v worse than greedy %v", seed, exact.Cost, greedy.Cost)
		}
	}
}

func TestMaxGroupSize(t *testing.T) {
	cg := model.NewConstraintGraph(geom.Euclidean)
	for i := 0; i < 3; i++ {
		u := cg.MustAddPort(model.Port{Name: "u" + string(rune('0'+i)), Position: geom.Pt(0, 0)})
		v := cg.MustAddPort(model.Port{Name: "v" + string(rune('0'+i)), Position: geom.Pt(100, float64(i))})
		cg.MustAddChannel(model.Channel{Name: "c" + string(rune('0'+i)), From: u, To: v, Bandwidth: 3})
	}
	_, rep, err := Synthesize(cg, workloads.WANLibrary(), Options{MaxGroupSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range rep.Groups {
		if len(g) > 2 {
			t.Errorf("group %v exceeds MaxGroupSize", g)
		}
	}
}

func TestValidatesInputs(t *testing.T) {
	cg := model.NewConstraintGraph(geom.Euclidean)
	if _, _, err := Synthesize(cg, workloads.WANLibrary(), Options{}); err == nil {
		t.Error("empty graph should fail")
	}
}

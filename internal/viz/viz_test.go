package viz

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/impl"
	"repro/internal/merging"
	"repro/internal/model"
	"repro/internal/p2p"
	"repro/internal/synth"
	"repro/internal/workloads"
)

func TestConstraintGraphSVG(t *testing.T) {
	cg := workloads.WAN()
	svg := ConstraintGraph(cg, Options{ShowLabels: true})
	for _, want := range []string{
		"<svg", "</svg>", "<circle", "<line",
		">a1<", ">a8<", // channel labels
		">A<", ">D<", // module labels
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Contains(svg, "NaN") {
		t.Error("SVG contains NaN coordinates")
	}
}

func TestConstraintGraphDeterministic(t *testing.T) {
	cg := workloads.WAN()
	a := ConstraintGraph(cg, Options{ShowLabels: true})
	b := ConstraintGraph(cg, Options{ShowLabels: true})
	if a != b {
		t.Error("rendering is not deterministic")
	}
}

func TestImplementationSVGFig4(t *testing.T) {
	cg := workloads.WAN()
	lib := workloads.WANLibrary()
	ig, _, err := synth.Synthesize(cg, lib, synth.Options{
		Merging: merging.Options{Policy: merging.MaxIndexRef},
	})
	if err != nil {
		t.Fatal(err)
	}
	svg := Implementation(ig, Options{ShowLabels: true})
	// Figure 4 conventions: dashed radio, solid optical, plus the mux
	// and demux drawn as squares and a legend.
	for _, want := range []string{
		"stroke-dasharray",     // radio dash
		"<rect",                // communication vertices (and background)
		">radio<", ">optical<", // legend entries
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestImplementationSVGFig5(t *testing.T) {
	cg := workloads.MPEG4()
	lib := workloads.MPEG4Technology().Library()
	ig, _, err := p2p.Synthesize(cg, lib, p2p.Options{})
	if err != nil {
		t.Fatal(err)
	}
	svg := Implementation(ig, Options{})
	// 55 repeaters drawn as squares (plus the white background rect).
	if got := strings.Count(svg, "<rect"); got != 56 {
		t.Errorf("rect count = %d, want 56 (background + 55 repeaters)", got)
	}
	if !strings.Contains(svg, ">wire<") {
		t.Error("legend missing wire entry")
	}
}

func TestDegenerateGeometry(t *testing.T) {
	// All ports at one point must not divide by zero.
	cg := model.NewConstraintGraph(geom.Euclidean)
	u := cg.MustAddPort(model.Port{Name: "u", Position: geom.Pt(5, 5)})
	v := cg.MustAddPort(model.Port{Name: "v", Position: geom.Pt(5, 5)})
	_ = v
	_ = u
	svg := ConstraintGraph(cg, Options{})
	if !strings.Contains(svg, "<svg") || strings.Contains(svg, "NaN") {
		t.Errorf("degenerate rendering broken:\n%s", svg)
	}
}

func TestZeroLengthLinkArrow(t *testing.T) {
	// A zero-length link (coincident endpoints) must not emit NaN
	// arrowheads.
	cg := model.NewConstraintGraph(geom.Euclidean)
	u := cg.MustAddPort(model.Port{Name: "u", Position: geom.Pt(0, 0)})
	v := cg.MustAddPort(model.Port{Name: "v", Position: geom.Pt(10, 0)})
	ch := cg.MustAddChannel(model.Channel{Name: "c", From: u, To: v, Bandwidth: 1})
	_ = ch
	ig := impl.New(cg)
	svg := Implementation(ig, Options{})
	if strings.Contains(svg, "NaN") {
		t.Error("NaN in SVG output")
	}
}

func TestEscape(t *testing.T) {
	if got := escape(`a<b>&"c`); got != "a&lt;b&gt;&amp;&quot;c" {
		t.Errorf("escape = %q", got)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Width != 640 || o.Height != 480 || o.Margin != 40 || o.LinkStyles == nil {
		t.Errorf("defaults wrong: %+v", o)
	}
	custom := Options{Width: 100, Height: 50, Margin: 5}.withDefaults()
	if custom.Width != 100 || custom.Height != 50 || custom.Margin != 5 {
		t.Errorf("custom sizes overridden: %+v", custom)
	}
}

package viz

import (
	"strings"
	"testing"

	"repro/internal/floorplan"
)

func TestFloorplanSVG(t *testing.T) {
	modules := []floorplan.Module{{Name: "cpu"}, {Name: "mem"}, {Name: "io"}}
	demands := []floorplan.Demand{
		{From: 0, To: 1, Bandwidth: 10},
		{From: 2, To: 0, Bandwidth: 2},
	}
	pl, err := floorplan.Place(modules, demands, floorplan.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	svg := FloorplanSVG(modules, demands, pl, Options{ShowLabels: true})
	for _, want := range []string{"<svg", "</svg>", ">cpu<", ">mem<", ">io<", "<rect", "<line"} {
		if !strings.Contains(svg, want) {
			t.Errorf("floorplan SVG missing %q", want)
		}
	}
	// The fat demand should be drawn thicker than the thin one.
	if !strings.Contains(svg, `stroke-width="4.0"`) || !strings.Contains(svg, `stroke-width="1.6"`) {
		t.Errorf("bandwidth weighting not visible:\n%s", svg)
	}
	// Empty placement degenerates gracefully.
	if out := FloorplanSVG(nil, nil, &floorplan.Placement{}, Options{}); !strings.Contains(out, "<svg") {
		t.Error("empty placement malformed")
	}
}

package viz

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/p2p"
	"repro/internal/routing"
	"repro/internal/workloads"
)

func TestRoutedImplementationSVG(t *testing.T) {
	cg := workloads.MPEG4()
	lib := workloads.MPEG4Technology().Library()
	ig, _, err := p2p.Synthesize(cg, lib, p2p.Options{})
	if err != nil {
		t.Fatal(err)
	}
	routed, err := routing.RouteImplementation(ig, routing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	routeMap := make(map[graph.ArcID][]geom.Point, len(routed.Routes))
	for _, r := range routed.Routes {
		routeMap[r.Arc] = r.Points
	}
	svg := RoutedImplementation(ig, routeMap, Options{ShowLabels: true})
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("malformed SVG")
	}
	// One path element per link.
	if got := strings.Count(svg, "<path"); got != ig.NumLinks() {
		t.Errorf("path count = %d, want %d", got, ig.NumLinks())
	}
	if strings.Contains(svg, "NaN") {
		t.Error("NaN coordinates in SVG")
	}
	// Missing routes fall back to straight lines without panicking.
	partial := RoutedImplementation(ig, nil, Options{})
	if !strings.Contains(partial, "<path") {
		t.Error("fallback rendering missing paths")
	}
}

// Two renders of the same implementation must be byte-identical even
// when the route map was populated in different insertion orders: the
// renderer iterates routes in sorted-arc order, not map order.
func TestRoutedImplementationByteStable(t *testing.T) {
	cg := workloads.MPEG4()
	lib := workloads.MPEG4Technology().Library()
	ig, _, err := p2p.Synthesize(cg, lib, p2p.Options{})
	if err != nil {
		t.Fatal(err)
	}
	routed, err := routing.RouteImplementation(ig, routing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	forward := make(map[graph.ArcID][]geom.Point, len(routed.Routes))
	for _, r := range routed.Routes {
		forward[r.Arc] = r.Points
	}
	backward := make(map[graph.ArcID][]geom.Point, len(routed.Routes))
	for i := len(routed.Routes) - 1; i >= 0; i-- {
		backward[routed.Routes[i].Arc] = routed.Routes[i].Points
	}
	ref := RoutedImplementation(ig, forward, Options{ShowLabels: true})
	for i := 0; i < 10; i++ {
		if got := RoutedImplementation(ig, backward, Options{ShowLabels: true}); got != ref {
			t.Fatalf("run %d: SVG differs across insertion orders", i)
		}
	}
}

func TestCongestionHeatmap(t *testing.T) {
	cg := workloads.MPEG4()
	lib := workloads.MPEG4Technology().Library()
	ig, _, err := p2p.Synthesize(cg, lib, p2p.Options{})
	if err != nil {
		t.Fatal(err)
	}
	routed, err := routing.RouteImplementation(ig, routing.Options{GridCells: 16})
	if err != nil {
		t.Fatal(err)
	}
	svg := CongestionHeatmap(routed.Congestion, routed.Bounds, Options{})
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "max overlap:") {
		t.Fatalf("heatmap malformed:\n%.200s", svg)
	}
	if !strings.Contains(svg, "fill-opacity") {
		t.Error("no heat cells rendered")
	}
	// Empty grid degenerates gracefully.
	empty := CongestionHeatmap(nil, routed.Bounds, Options{})
	if !strings.Contains(empty, "<svg") {
		t.Error("empty heatmap malformed")
	}
}

package viz

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/impl"
)

// RoutedImplementation renders an implementation graph with explicit
// rectilinear wire routes (as produced by the routing package) instead
// of straight-line links — the Figure 5 style of drawing. Routes maps
// each arc to its polyline; arcs without a route fall back to a
// straight line.
func RoutedImplementation(ig *impl.Graph, routes map[graph.ArcID][]geom.Point, o Options) string {
	o = o.withDefaults()
	var pts []geom.Point
	for v := 0; v < ig.NumVertices(); v++ {
		pts = append(pts, ig.Vertex(graph.VertexID(v)).Position)
	}
	// Gather route points in sorted arc order so the emitted SVG is
	// byte-identical across runs (mapiter invariant).
	routed := make([]graph.ArcID, 0, len(routes))
	for id := range routes {
		routed = append(routed, id)
	}
	sort.Slice(routed, func(i, j int) bool { return routed[i] < routed[j] })
	for _, id := range routed {
		pts = append(pts, routes[id]...)
	}
	t := fit(pts, o)

	var b strings.Builder
	header(&b, o)
	for a := 0; a < ig.NumLinks(); a++ {
		id := graph.ArcID(a)
		style, ok := o.LinkStyles[ig.Link(id).Name]
		if !ok {
			style = LinkStyle{Stroke: "#999", Width: 1}
		}
		route, ok := routes[id]
		if !ok || len(route) < 2 {
			arc := ig.Digraph().Arc(id)
			route = []geom.Point{
				ig.Vertex(arc.From).Position,
				ig.Vertex(arc.To).Position,
			}
		}
		polyline(&b, t, route, style)
	}
	for v := 0; v < ig.NumVertices(); v++ {
		id := graph.VertexID(v)
		vx := ig.Vertex(id)
		x, y := t.apply(vx.Position)
		if vx.Kind == impl.Communication {
			fmt.Fprintf(&b,
				`<rect x="%.1f" y="%.1f" width="6" height="6" fill="#e67700" stroke="#333"/>`+"\n",
				x-3, y-3)
		} else {
			fmt.Fprintf(&b,
				`<circle cx="%.1f" cy="%.1f" r="5" fill="#1b7837" stroke="#333"/>`+"\n", x, y)
			if o.ShowLabels {
				fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" fill="#000">%s</text>`+"\n",
					x+7, y+3, escape(vx.Name))
			}
		}
	}
	legend(&b, ig, o)
	b.WriteString("</svg>\n")
	return b.String()
}

func polyline(b *strings.Builder, t transform, route []geom.Point, s LinkStyle) {
	var d strings.Builder
	for i, p := range route {
		x, y := t.apply(p)
		if i == 0 {
			fmt.Fprintf(&d, "M %.1f %.1f", x, y)
		} else {
			fmt.Fprintf(&d, " L %.1f %.1f", x, y)
		}
	}
	dash := ""
	if s.Dash != "" {
		dash = fmt.Sprintf(` stroke-dasharray="%s"`, s.Dash)
	}
	fmt.Fprintf(b, `<path d="%s" fill="none" stroke="%s" stroke-width="%.1f"%s/>`+"\n",
		d.String(), s.Stroke, s.Width, dash)
}

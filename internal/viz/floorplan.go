package viz

import (
	"fmt"
	"strings"

	"repro/internal/floorplan"
)

// FloorplanSVG renders a placement: modules as labelled tiles at their
// slots, demands as straight arrows weighted by bandwidth (thicker =
// more traffic). The drawing shares the scale/margin conventions of the
// other renderers so it can sit alongside the architecture views.
func FloorplanSVG(modules []floorplan.Module, demands []floorplan.Demand, pl *floorplan.Placement, o Options) string {
	o = o.withDefaults()
	if len(pl.Positions) == 0 {
		return `<svg xmlns="http://www.w3.org/2000/svg" width="0" height="0"></svg>` + "\n"
	}
	t := fit(pl.Positions, o)

	maxBW := 0.0
	for _, d := range demands {
		if d.Bandwidth > maxBW {
			maxBW = d.Bandwidth
		}
	}

	var b strings.Builder
	header(&b, o)
	for _, d := range demands {
		x1, y1 := t.apply(pl.Positions[d.From])
		x2, y2 := t.apply(pl.Positions[d.To])
		width := 1.0
		if maxBW > 0 {
			width = 1 + 3*d.Bandwidth/maxBW
		}
		arrow(&b, x1, y1, x2, y2, LinkStyle{Stroke: "#2166ac", Width: width})
	}
	// Tile size: half the smallest slot pitch in screen space, capped.
	tile := 28.0
	for i, p := range pl.Positions {
		x, y := t.apply(p)
		fmt.Fprintf(&b,
			`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#d9ead3" stroke="#333"/>`+"\n",
			x-tile/2, y-tile/2, tile, tile)
		if o.ShowLabels && i < len(modules) {
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="middle" fill="#000">%s</text>`+"\n",
				x, y+4, escape(modules[i].Name))
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// Package viz renders constraint graphs and implementation graphs as
// standalone SVG documents, regenerating the paper's figures: the
// network diagrams of Figures 1 and 3, the synthesized architecture of
// Figure 4 (dashed radio links, solid optical trunk) and the on-chip
// layout of Figure 5.
//
// The renderer is deliberately simple and deterministic — stdlib only,
// stable output for golden tests — and draws to scale: vertex positions
// come straight from the model, fitted into the viewport with a uniform
// scale and margin.
package viz

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/impl"
	"repro/internal/model"
)

// Options controls rendering.
type Options struct {
	// Width and Height of the SVG viewport in pixels; zero means 640×480.
	Width, Height int
	// Margin in pixels around the drawing; zero means 40.
	Margin int
	// LinkClass maps a link name to an SVG stroke style class; nil uses
	// DefaultLinkStyles. Unknown links fall back to a solid gray line.
	LinkStyles map[string]LinkStyle
	// ShowLabels draws vertex names (default true via the constructor;
	// the zero value hides them).
	ShowLabels bool
}

// LinkStyle is the stroke used for instances of one library link.
type LinkStyle struct {
	// Stroke is the CSS color.
	Stroke string
	// Dash is the stroke-dasharray ("" for solid).
	Dash string
	// Width is the stroke width in pixels.
	Width float64
}

// DefaultLinkStyles mirrors the paper's Figure 4 conventions: dash-dot
// lines for radio links, solid for optical, thin gray for on-chip wire.
func DefaultLinkStyles() map[string]LinkStyle {
	return map[string]LinkStyle{
		"radio":   {Stroke: "#555", Dash: "8,3,2,3", Width: 1.5},
		"optical": {Stroke: "#0a58ca", Dash: "", Width: 3},
		"fiber":   {Stroke: "#0a58ca", Dash: "", Width: 3},
		"wire":    {Stroke: "#888", Dash: "", Width: 1},
	}
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 640
	}
	if o.Height <= 0 {
		o.Height = 480
	}
	if o.Margin <= 0 {
		o.Margin = 40
	}
	if o.LinkStyles == nil {
		o.LinkStyles = DefaultLinkStyles()
	}
	return o
}

// transform maps model coordinates into the SVG viewport (y flipped so
// north is up).
type transform struct {
	scale      float64
	minX, maxY float64
	margin     float64
}

func fit(points []geom.Point, o Options) transform {
	b := geom.Bounds(points)
	w := b.Width()
	h := b.Height()
	if w == 0 {
		w = 1
	}
	if h == 0 {
		h = 1
	}
	sx := (float64(o.Width) - 2*float64(o.Margin)) / w
	sy := (float64(o.Height) - 2*float64(o.Margin)) / h
	return transform{
		scale:  math.Min(sx, sy),
		minX:   b.Min.X,
		maxY:   b.Max.Y,
		margin: float64(o.Margin),
	}
}

func (t transform) apply(p geom.Point) (float64, float64) {
	return t.margin + (p.X-t.minX)*t.scale, t.margin + (t.maxY-p.Y)*t.scale
}

// ConstraintGraph renders the constraint graph: ports as circles
// (grouped visually by module color), channels as arrows labelled with
// their names.
func ConstraintGraph(cg *model.ConstraintGraph, o Options) string {
	o = o.withDefaults()
	var pts []geom.Point
	for i := 0; i < cg.NumPorts(); i++ {
		pts = append(pts, cg.Position(model.PortID(i)))
	}
	t := fit(pts, o)

	var b strings.Builder
	header(&b, o)
	// Channels first (under the vertices).
	for i := 0; i < cg.NumChannels(); i++ {
		ch := model.ChannelID(i)
		c := cg.Channel(ch)
		x1, y1 := t.apply(cg.Position(c.From))
		x2, y2 := t.apply(cg.Position(c.To))
		arrow(&b, x1, y1, x2, y2, LinkStyle{Stroke: "#333", Width: 1.2})
		if o.ShowLabels {
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="#333">%s</text>`+"\n",
				(x1+x2)/2+4, (y1+y2)/2-4, escape(c.Name))
		}
	}
	drawPorts(&b, cg, t, o)
	b.WriteString("</svg>\n")
	return b.String()
}

// Implementation renders an implementation graph: computational
// vertices as circles, communication vertices as squares, link
// instances styled per library link (Figure 4's dashed/solid
// convention).
func Implementation(ig *impl.Graph, o Options) string {
	o = o.withDefaults()
	var pts []geom.Point
	for v := 0; v < ig.NumVertices(); v++ {
		pts = append(pts, ig.Vertex(graph.VertexID(v)).Position)
	}
	t := fit(pts, o)

	var b strings.Builder
	header(&b, o)
	for a := 0; a < ig.NumLinks(); a++ {
		id := graph.ArcID(a)
		arc := ig.Digraph().Arc(id)
		x1, y1 := t.apply(ig.Vertex(arc.From).Position)
		x2, y2 := t.apply(ig.Vertex(arc.To).Position)
		style, ok := o.LinkStyles[ig.Link(id).Name]
		if !ok {
			style = LinkStyle{Stroke: "#999", Width: 1}
		}
		arrow(&b, x1, y1, x2, y2, style)
	}
	for v := 0; v < ig.NumVertices(); v++ {
		id := graph.VertexID(v)
		vx := ig.Vertex(id)
		x, y := t.apply(vx.Position)
		if vx.Kind == impl.Communication {
			fmt.Fprintf(&b,
				`<rect x="%.1f" y="%.1f" width="8" height="8" fill="#e67700" stroke="#333"/>`+"\n",
				x-4, y-4)
		} else {
			fmt.Fprintf(&b,
				`<circle cx="%.1f" cy="%.1f" r="5" fill="#1b7837" stroke="#333"/>`+"\n", x, y)
		}
		if o.ShowLabels && vx.Kind == impl.Computational {
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" fill="#000">%s</text>`+"\n",
				x+7, y+3, escape(vx.Name))
		}
	}
	legend(&b, ig, o)
	b.WriteString("</svg>\n")
	return b.String()
}

func drawPorts(b *strings.Builder, cg *model.ConstraintGraph, t transform, o Options) {
	// Stable module → color assignment.
	moduleColors := map[string]string{}
	var modules []string
	for i := 0; i < cg.NumPorts(); i++ {
		m := cg.Port(model.PortID(i)).Module
		if _, seen := moduleColors[m]; !seen {
			moduleColors[m] = ""
			modules = append(modules, m)
		}
	}
	sort.Strings(modules)
	palette := []string{"#1b7837", "#762a83", "#2166ac", "#b2182b", "#e08214", "#35978f", "#c51b7d", "#4d4d4d"}
	for i, m := range modules {
		moduleColors[m] = palette[i%len(palette)]
	}
	drawn := map[string]bool{}
	for i := 0; i < cg.NumPorts(); i++ {
		id := model.PortID(i)
		p := cg.Port(id)
		x, y := t.apply(p.Position)
		fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="5" fill="%s" stroke="#333"/>`+"\n",
			x, y, moduleColors[p.Module])
		label := p.Module
		if label == "" {
			label = p.Name
		}
		if o.ShowLabels && !drawn[label] {
			fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="12" fill="#000">%s</text>`+"\n",
				x+8, y+4, escape(label))
			drawn[label] = true
		}
	}
}

func header(b *strings.Builder, o Options) {
	fmt.Fprintf(b,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		o.Width, o.Height, o.Width, o.Height)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", o.Width, o.Height)
}

func arrow(b *strings.Builder, x1, y1, x2, y2 float64, s LinkStyle) {
	dash := ""
	if s.Dash != "" {
		dash = fmt.Sprintf(` stroke-dasharray="%s"`, s.Dash)
	}
	fmt.Fprintf(b,
		`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"%s/>`+"\n",
		x1, y1, x2, y2, s.Stroke, s.Width, dash)
	// Arrowhead: a short chevron at 85% along the line.
	dx, dy := x2-x1, y2-y1
	length := math.Hypot(dx, dy)
	if length < 1e-9 {
		return
	}
	ux, uy := dx/length, dy/length
	ax, ay := x1+dx*0.85, y1+dy*0.85
	const size = 5.0
	leftX, leftY := ax-size*ux-size*0.5*uy, ay-size*uy+size*0.5*ux
	rightX, rightY := ax-size*ux+size*0.5*uy, ay-size*uy-size*0.5*ux
	fmt.Fprintf(b,
		`<path d="M %.1f %.1f L %.1f %.1f L %.1f %.1f" fill="none" stroke="%s" stroke-width="%.1f"/>`+"\n",
		leftX, leftY, ax, ay, rightX, rightY, s.Stroke, s.Width)
}

func legend(b *strings.Builder, ig *impl.Graph, o Options) {
	// Collect the link names actually used, sorted for determinism.
	used := map[string]bool{}
	for a := 0; a < ig.NumLinks(); a++ {
		used[ig.Link(graph.ArcID(a)).Name] = true
	}
	var names []string
	for n := range used {
		names = append(names, n)
	}
	sort.Strings(names)
	y := float64(o.Height) - 14*float64(len(names)) - 8
	for _, n := range names {
		style, ok := o.LinkStyles[n]
		if !ok {
			style = LinkStyle{Stroke: "#999", Width: 1}
		}
		dash := ""
		if style.Dash != "" {
			dash = fmt.Sprintf(` stroke-dasharray="%s"`, style.Dash)
		}
		fmt.Fprintf(b, `<line x1="10" y1="%.1f" x2="40" y2="%.1f" stroke="%s" stroke-width="%.1f"%s/>`+"\n",
			y, y, style.Stroke, style.Width, dash)
		fmt.Fprintf(b, `<text x="46" y="%.1f" font-size="11" fill="#000">%s</text>`+"\n", y+4, escape(n))
		y += 14
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

package viz

import (
	"fmt"
	"strings"

	"repro/internal/geom"
)

// CongestionHeatmap renders a routing congestion grid as an SVG
// overlayable heat map: cells shaded from transparent (empty) through
// yellow to red (hottest), with the hotness scale normalized to the
// grid's maximum overlap.
func CongestionHeatmap(congestion [][]int, bounds geom.BoundingBox, o Options) string {
	o = o.withDefaults()
	rows := len(congestion)
	if rows == 0 {
		return `<svg xmlns="http://www.w3.org/2000/svg" width="0" height="0"></svg>` + "\n"
	}
	cols := len(congestion[0])
	maxCount := 0
	for _, row := range congestion {
		for _, c := range row {
			if c > maxCount {
				maxCount = c
			}
		}
	}
	t := fit([]geom.Point{bounds.Min, bounds.Max}, o)

	var b strings.Builder
	header(&b, o)
	cellW := bounds.Width() / float64(cols)
	cellH := bounds.Height() / float64(rows)
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			c := congestion[y][x]
			if c == 0 {
				continue
			}
			heat := float64(c) / float64(maxCount)
			// Yellow (low) → red (high).
			g := int(220 * (1 - heat))
			corner := geom.Pt(bounds.Min.X+float64(x)*cellW, bounds.Min.Y+float64(y+1)*cellH)
			px, py := t.apply(corner)
			fmt.Fprintf(&b,
				`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="rgb(230,%d,40)" fill-opacity="0.6"/>`+"\n",
				px, py, cellW*t.scale, cellH*t.scale, g)
		}
	}
	// Scale legend.
	fmt.Fprintf(&b, `<text x="10" y="%d" font-size="11" fill="#000">max overlap: %d</text>`+"\n",
		o.Height-8, maxCount)
	b.WriteString("</svg>\n")
	return b.String()
}

package flowsim

import (
	"math/rand"
	"testing"

	"repro/internal/impl"
	"repro/internal/synth"
	"repro/internal/workloads"
)

// Conservation and sanity properties of the fluid simulation on random
// synthesized architectures.

func randomArchitecture(t *testing.T, seed int64) *impl.Graph {
	t.Helper()
	cg := workloads.RandomWAN(workloads.RandomWANConfig{
		Seed: seed, Clusters: 2, Channels: 5,
	})
	ig, _, err := synth.Synthesize(cg, workloads.WANLibrary(), synth.Options{})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return ig
}

// Property: delivered throughput never exceeds offered demand, and
// never goes negative.
func TestDeliveredBoundedByOffered(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		ig := randomArchitecture(t, seed)
		res, err := Simulate(ig, Config{Ticks: 300})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range res.Channels {
			if c.Delivered < -1e-9 {
				t.Fatalf("seed %d: negative delivery %v", seed, c.Delivered)
			}
			if c.Delivered > c.Offered*1.01 {
				t.Fatalf("seed %d: channel %s delivered %v > offered %v",
					seed, c.Name, c.Delivered, c.Offered)
			}
		}
	}
}

// Property: per-link utilization stays within [0, 1] — the max-min
// server can never overbook a link.
func TestUtilizationBounded(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		ig := randomArchitecture(t, seed)
		res, err := Simulate(ig, Config{Ticks: 300})
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range res.Links {
			if l.PeakUtilization < -1e-12 || l.PeakUtilization > 1+1e-9 {
				t.Fatalf("seed %d: link %s peak utilization %v outside [0,1]",
					seed, l.Link, l.PeakUtilization)
			}
			if l.MeanUtilization > l.PeakUtilization+1e-9 {
				t.Fatalf("seed %d: mean %v exceeds peak %v", seed, l.MeanUtilization, l.PeakUtilization)
			}
		}
	}
}

// Property: a longer simulation never reduces a channel's measured
// sustained throughput by more than the transient tolerance (steady
// state has been reached).
func TestSteadyState(t *testing.T) {
	ig := randomArchitecture(t, 3)
	short, err := Simulate(ig, Config{Ticks: 200})
	if err != nil {
		t.Fatal(err)
	}
	long, err := Simulate(ig, Config{Ticks: 800})
	if err != nil {
		t.Fatal(err)
	}
	for i := range short.Channels {
		s, l := short.Channels[i].Delivered, long.Channels[i].Delivered
		if l < s*0.98 {
			t.Errorf("channel %s regressed with longer sim: %v -> %v",
				short.Channels[i].Name, s, l)
		}
	}
}

// Property: simulation is deterministic.
func TestSimulationDeterministic(t *testing.T) {
	ig := randomArchitecture(t, 4)
	a, err := Simulate(ig, Config{Ticks: 250})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(ig, Config{Ticks: 250})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Channels {
		if a.Channels[i].Delivered != b.Channels[i].Delivered {
			t.Fatalf("non-deterministic delivery on %s", a.Channels[i].Name)
		}
	}
}

// Property: scaling all demands down keeps everything satisfied (the
// architecture is provisioned for the full demand).
func TestUnderloadAlwaysSatisfied(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	_ = r
	for seed := int64(10); seed < 14; seed++ {
		ig := randomArchitecture(t, seed)
		res, err := Simulate(ig, Config{Ticks: 400})
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllSatisfied() {
			t.Fatalf("seed %d: synthesized architecture starves channels: %+v",
				seed, res.Channels)
		}
	}
}

package flowsim

import (
	"testing"

	"repro/internal/merging"
	"repro/internal/synth"
	"repro/internal/workloads"
)

func BenchmarkSimulateWAN(b *testing.B) {
	cg := workloads.WAN()
	lib := workloads.WANLibrary()
	ig, _, err := synth.Synthesize(cg, lib, synth.Options{
		Merging: merging.Options{Policy: merging.MaxIndexRef},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(ig, Config{Ticks: 400}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateMPEG4(b *testing.B) {
	cg := workloads.MPEG4()
	lib := workloads.MPEG4Technology().Library()
	ig, _, err := synth.Synthesize(cg, lib, synth.Options{
		Merging: merging.Options{Policy: merging.MaxIndexRef, MaxK: 3},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(ig, Config{Ticks: 200}); err != nil {
			b.Fatal(err)
		}
	}
}

// Package flowsim is a discrete-time fluid-flow simulator for
// implementation graphs: every channel injects traffic at its required
// bandwidth, flows travel hop by hop along the channel's implementation
// paths, and links serve competing flows max-min fairly within their
// bandwidth. The simulator measures sustained per-channel throughput
// and per-link utilization.
//
// The paper argues correctness structurally (Definition 2.4); this
// substrate validates the same property dynamically and makes design
// choices observable — most notably the trunk-capacity question: under
// the sum rule every synthesized architecture sustains all demands,
// while a max-rule trunk visibly starves concurrent merged channels
// (experiment E9).
package flowsim

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/impl"
	"repro/internal/model"
)

// Config tunes a simulation run.
type Config struct {
	// Ticks is the simulation length; zero means 500.
	Ticks int
	// Warmup is the number of initial ticks excluded from throughput
	// measurement (pipelines need to fill); zero means Ticks/5.
	Warmup int
}

func (c Config) ticks() int {
	if c.Ticks <= 0 {
		return 500
	}
	return c.Ticks
}

func (c Config) warmup() int {
	if c.Warmup > 0 {
		return c.Warmup
	}
	return c.ticks() / 5
}

// ChannelStats reports one channel's measured service.
type ChannelStats struct {
	Channel model.ChannelID
	Name    string
	// Offered is the channel's bandwidth requirement b(a).
	Offered float64
	// Delivered is the measured sustained throughput (per tick average
	// after warmup, in bandwidth units).
	Delivered float64
	// LatencyTicks is the tick at which the channel's first data
	// arrived (pipeline fill time, equal to the shortest path's hop
	// count); -1 if nothing ever arrived.
	LatencyTicks int
}

// Satisfied reports whether the channel received its demand (within
// half a percent, absorbing pipeline-fill transients).
func (s ChannelStats) Satisfied() bool {
	return s.Delivered >= s.Offered*0.995
}

// LinkStats reports one link instance's load.
type LinkStats struct {
	Arc      graph.ArcID
	Link     string
	Capacity float64
	// MeanUtilization is average served volume / capacity after warmup.
	MeanUtilization float64
	// PeakUtilization is the maximum per-tick utilization after warmup.
	PeakUtilization float64
}

// Result is a completed simulation.
type Result struct {
	Channels []ChannelStats
	Links    []LinkStats
	Ticks    int
}

// AllSatisfied reports whether every channel sustained its demand.
func (r *Result) AllSatisfied() bool {
	for _, c := range r.Channels {
		if !c.Satisfied() {
			return false
		}
	}
	return true
}

// ChannelByName finds a channel's stats by constraint-graph name.
func (r *Result) ChannelByName(name string) (ChannelStats, bool) {
	for _, c := range r.Channels {
		if c.Name == name {
			return c, true
		}
	}
	return ChannelStats{}, false
}

// flow is one (channel, path) traffic stream: a pipeline of queues, one
// per hop, queue[i] holding volume waiting to traverse path.Arcs[i].
type flow struct {
	channel model.ChannelID
	path    graph.Path
	inject  float64 // volume injected per tick
	queues  []float64
	done    float64 // delivered volume after warmup
	firstAt int     // tick of first delivery; -1 until then
}

// Simulate runs the fluid simulation. The implementation graph must
// carry a recorded implementation for every channel (as produced by the
// synthesizer); Simulate returns an error otherwise.
func Simulate(ig *impl.Graph, cfg Config) (*Result, error) {
	cg := ig.ConstraintGraph()
	n := cg.NumChannels()
	var flows []*flow
	for i := 0; i < n; i++ {
		ch := model.ChannelID(i)
		paths := ig.Implementation(ch)
		if len(paths) == 0 {
			return nil, fmt.Errorf("flowsim: channel %q has no implementation", cg.Channel(ch).Name)
		}
		// Split the channel demand across its parallel paths the same
		// way the verifier accounts for it: fill each path up to its
		// own bandwidth in order.
		remaining := cg.Bandwidth(ch)
		for _, p := range paths {
			if p.Len() == 0 {
				return nil, fmt.Errorf("flowsim: channel %q has a trivial path", cg.Channel(ch).Name)
			}
			take := math.Min(remaining, ig.PathBandwidth(p))
			remaining -= take
			flows = append(flows, &flow{
				channel: ch,
				path:    p,
				inject:  take,
				queues:  make([]float64, p.Len()),
				firstAt: -1,
			})
		}
	}

	// Per-arc flow membership: which (flow, hop) pairs traverse it.
	byArc := make([][]hopRef, ig.NumLinks())
	for _, f := range flows {
		for hop, a := range f.path.Arcs {
			byArc[a] = append(byArc[a], hopRef{f, hop})
		}
	}

	ticks := cfg.ticks()
	warmup := cfg.warmup()
	meanUtil := make([]float64, ig.NumLinks())
	peakUtil := make([]float64, ig.NumLinks())
	measured := 0

	// Double-buffered queue updates: serve every link against the
	// start-of-tick queue state so data advances one hop per tick and
	// link order cannot starve anyone.
	for tick := 0; tick < ticks; tick++ {
		for _, f := range flows {
			f.queues[0] += f.inject
		}
		arrivals := make(map[*flow]map[int]float64)
		for a := 0; a < ig.NumLinks(); a++ {
			refs := byArc[a]
			if len(refs) == 0 {
				continue
			}
			capacity := ig.Link(graph.ArcID(a)).Bandwidth
			served := maxMinServe(refs, capacity)
			var total float64
			for idx, r := range refs {
				v := served[idx]
				if v <= 0 {
					continue
				}
				total += v
				r.f.queues[r.hop] -= v
				if m := arrivals[r.f]; m == nil {
					arrivals[r.f] = map[int]float64{r.hop + 1: v}
				} else {
					m[r.hop+1] += v
				}
			}
			if capacity > 0 {
				u := total / capacity
				if tick >= warmup {
					meanUtil[a] += u
					if u > peakUtil[a] {
						peakUtil[a] = u
					}
				}
			}
		}
		for f, m := range arrivals {
			for hop, v := range m {
				if hop >= len(f.queues) {
					if f.firstAt < 0 && v > 0 {
						f.firstAt = tick + 1
					}
					if tick >= warmup {
						f.done += v
					}
					continue
				}
				f.queues[hop] += v
			}
		}
		if tick >= warmup {
			measured++
		}
	}

	res := &Result{Ticks: ticks}
	delivered := make([]float64, n)
	latency := make([]int, n)
	for i := range latency {
		latency[i] = -1
	}
	for _, f := range flows {
		if measured > 0 {
			delivered[f.channel] += f.done / float64(measured)
		}
		if f.firstAt >= 0 && (latency[f.channel] < 0 || f.firstAt < latency[f.channel]) {
			latency[f.channel] = f.firstAt
		}
	}
	for i := 0; i < n; i++ {
		ch := model.ChannelID(i)
		res.Channels = append(res.Channels, ChannelStats{
			Channel:      ch,
			Name:         cg.Channel(ch).Name,
			Offered:      cg.Bandwidth(ch),
			Delivered:    delivered[i],
			LatencyTicks: latency[i],
		})
	}
	for a := 0; a < ig.NumLinks(); a++ {
		if len(byArc[a]) == 0 {
			continue
		}
		id := graph.ArcID(a)
		stats := LinkStats{
			Arc:             id,
			Link:            ig.Link(id).Name,
			Capacity:        ig.Link(id).Bandwidth,
			PeakUtilization: peakUtil[a],
		}
		if measured > 0 {
			stats.MeanUtilization = meanUtil[a] / float64(measured)
		}
		res.Links = append(res.Links, stats)
	}
	return res, nil
}

// hopRef identifies one flow's hop traversing a link.
type hopRef struct {
	f   *flow
	hop int
}

// maxMinServe allocates capacity among the referenced hop queues
// max-min fairly: everyone gets an equal share, unused share is
// redistributed until either all demand is met or the capacity is
// exhausted.
func maxMinServe(refs []hopRef, capacity float64) []float64 {
	n := len(refs)
	out := make([]float64, n)
	remainingDemand := make([]float64, n)
	active := 0
	for i, r := range refs {
		remainingDemand[i] = r.f.queues[r.hop]
		if remainingDemand[i] > 0 {
			active++
		}
	}
	remaining := capacity
	for active > 0 && remaining > 1e-15 {
		share := remaining / float64(active)
		progressed := false
		for i := range refs {
			if remainingDemand[i] <= 0 {
				continue
			}
			take := math.Min(share, remainingDemand[i])
			out[i] += take
			remainingDemand[i] -= take
			remaining -= take
			if remainingDemand[i] <= 1e-15 {
				remainingDemand[i] = 0
				active--
			}
			if take > 0 {
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	return out
}

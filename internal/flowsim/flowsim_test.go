package flowsim

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/impl"
	"repro/internal/library"
	"repro/internal/merging"
	"repro/internal/model"
	"repro/internal/p2p"
	"repro/internal/place"
	"repro/internal/synth"
	"repro/internal/workloads"
)

var radio = library.Link{Name: "radio", Bandwidth: 11, MaxSpan: math.Inf(1), CostPerLength: 2}

func singleChannelGraph(t *testing.T, bw float64) (*impl.Graph, model.ChannelID) {
	t.Helper()
	cg := model.NewConstraintGraph(geom.Euclidean)
	u := cg.MustAddPort(model.Port{Name: "u", Position: geom.Pt(0, 0)})
	v := cg.MustAddPort(model.Port{Name: "v", Position: geom.Pt(10, 0)})
	ch := cg.MustAddChannel(model.Channel{Name: "c", From: u, To: v, Bandwidth: bw})
	ig := impl.New(cg)
	a, err := ig.AddLink(graph.VertexID(u), graph.VertexID(v), radio)
	if err != nil {
		t.Fatal(err)
	}
	ig.AssignImplementation(ch, []graph.Path{{
		Vertices: []graph.VertexID{graph.VertexID(u), graph.VertexID(v)},
		Arcs:     []graph.ArcID{a},
	}})
	return ig, ch
}

func TestSingleLinkDelivers(t *testing.T) {
	ig, _ := singleChannelGraph(t, 10)
	res, err := Simulate(ig, Config{Ticks: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllSatisfied() {
		t.Errorf("channel starved: %+v", res.Channels)
	}
	c := res.Channels[0]
	if math.Abs(c.Delivered-10) > 0.2 {
		t.Errorf("delivered = %v, want ≈10", c.Delivered)
	}
	if len(res.Links) != 1 {
		t.Fatalf("links = %d", len(res.Links))
	}
	// 10 of 11 Mbps used.
	if u := res.Links[0].MeanUtilization; math.Abs(u-10.0/11) > 0.05 {
		t.Errorf("utilization = %v, want ≈0.909", u)
	}
}

func TestOverloadedLinkSaturates(t *testing.T) {
	// Demand 22 over an 11 Mbps link (a deliberately broken
	// architecture): delivery caps at capacity.
	ig, _ := singleChannelGraph(t, 22)
	res, err := Simulate(ig, Config{Ticks: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.AllSatisfied() {
		t.Error("overloaded channel should be unsatisfied")
	}
	c := res.Channels[0]
	if math.Abs(c.Delivered-11) > 0.3 {
		t.Errorf("delivered = %v, want ≈11 (capacity)", c.Delivered)
	}
	if u := res.Links[0].PeakUtilization; u > 1.0+1e-9 {
		t.Errorf("utilization exceeded 1: %v", u)
	}
}

func TestSegmentedPipelineDelivers(t *testing.T) {
	cg := model.NewConstraintGraph(geom.Manhattan)
	u := cg.MustAddPort(model.Port{Name: "u", Position: geom.Pt(0, 0)})
	v := cg.MustAddPort(model.Port{Name: "v", Position: geom.Pt(3, 0)})
	cg.MustAddChannel(model.Channel{Name: "c", From: u, To: v, Bandwidth: 50})
	lib := &library.Library{
		Links: []library.Link{{Name: "wire", Bandwidth: 100, MaxSpan: 1, CostFixed: 0.1}},
		Nodes: []library.Node{{Name: "rep", Kind: library.Repeater, Cost: 1}},
	}
	ig, _, err := p2p.Synthesize(cg, lib, p2p.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(ig, Config{Ticks: 300})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllSatisfied() {
		t.Errorf("segmented channel starved: %+v", res.Channels)
	}
}

func TestDuplicatedChannelSplits(t *testing.T) {
	// 20 Mbps over two parallel 11 Mbps radios.
	cg := model.NewConstraintGraph(geom.Euclidean)
	u := cg.MustAddPort(model.Port{Name: "u", Position: geom.Pt(0, 0)})
	v := cg.MustAddPort(model.Port{Name: "v", Position: geom.Pt(10, 0)})
	cg.MustAddChannel(model.Channel{Name: "c", From: u, To: v, Bandwidth: 20})
	lib := &library.Library{Links: []library.Link{radio}}
	ig, _, err := p2p.Synthesize(cg, lib, p2p.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(ig, Config{Ticks: 300})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllSatisfied() {
		t.Errorf("duplicated channel starved: %+v", res.Channels)
	}
}

func TestSynthesizedWANDeliversAll(t *testing.T) {
	// The paper's optimal architecture must sustain all eight demands
	// concurrently — including the three merged onto one optical trunk.
	cg := workloads.WAN()
	lib := workloads.WANLibrary()
	ig, _, err := synth.Synthesize(cg, lib, synth.Options{
		Merging: merging.Options{Policy: merging.MaxIndexRef},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(ig, Config{Ticks: 400})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllSatisfied() {
		t.Errorf("synthesized WAN starves channels: %+v", res.Channels)
	}
	for _, l := range res.Links {
		if l.PeakUtilization > 1.0+1e-9 {
			t.Errorf("link %s overloaded: %v", l.Link, l.PeakUtilization)
		}
	}
}

func TestMaxRuleTrunkStarves(t *testing.T) {
	// Ablation: build the {a4, a5, a6} merging with the literal
	// Definition 2.8 trunk rule (≥ max bᵢ) over a radio-only library.
	// Three concurrent 10 Mbps channels on an 11 Mbps trunk must starve.
	cg := workloads.WAN()
	lib := &library.Library{
		Links: []library.Link{radio},
		Nodes: []library.Node{
			{Name: "mux", Kind: library.Mux, Cost: 0},
			{Name: "demux", Kind: library.Demux, Cost: 0},
		},
	}
	var ids []model.ChannelID
	for _, name := range []string{"a4", "a5", "a6"} {
		id, _ := cg.ChannelByName(name)
		ids = append(ids, id)
	}
	cand, err := place.Optimize(cg, lib, ids, place.Options{Capacity: place.MaxBandwidth})
	if err != nil {
		t.Fatal(err)
	}
	ig := impl.New(cg)
	if err := cand.Instantiate(ig, lib); err != nil {
		t.Fatal(err)
	}
	// Implement the remaining channels point-to-point so Simulate has a
	// complete architecture.
	for i := 0; i < cg.NumChannels(); i++ {
		ch := model.ChannelID(i)
		if containsChannel(ids, ch) {
			continue
		}
		plan, err := p2p.BestPlan(cg.Distance(ch), cg.Bandwidth(ch), lib, p2p.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := p2p.Instantiate(ig, ch, plan, lib); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Simulate(ig, Config{Ticks: 400})
	if err != nil {
		t.Fatal(err)
	}
	if res.AllSatisfied() {
		t.Fatal("max-rule trunk should starve the merged channels")
	}
	var totalMerged float64
	for _, name := range []string{"a4", "a5", "a6"} {
		c, ok := res.ChannelByName(name)
		if !ok {
			t.Fatalf("channel %s missing", name)
		}
		totalMerged += c.Delivered
	}
	// Three 10 Mbps flows squeezed through 11 Mbps: combined ≈ 11.
	if math.Abs(totalMerged-11) > 0.5 {
		t.Errorf("merged delivery = %v, want ≈11 (trunk capacity)", totalMerged)
	}
}

func TestSimulateMissingImplementation(t *testing.T) {
	cg := model.NewConstraintGraph(geom.Euclidean)
	u := cg.MustAddPort(model.Port{Name: "u", Position: geom.Pt(0, 0)})
	v := cg.MustAddPort(model.Port{Name: "v", Position: geom.Pt(1, 0)})
	cg.MustAddChannel(model.Channel{Name: "c", From: u, To: v, Bandwidth: 1})
	ig := impl.New(cg)
	if _, err := Simulate(ig, Config{}); err == nil {
		t.Error("missing implementation should error")
	}
}

func TestMaxMinFairness(t *testing.T) {
	// Two queues of 10 and 2 sharing capacity 6: max-min gives 4 and 2.
	f1 := &flow{queues: []float64{10}}
	f2 := &flow{queues: []float64{2}}
	served := maxMinServe([]hopRef{{f1, 0}, {f2, 0}}, 6)
	if math.Abs(served[0]-4) > 1e-9 || math.Abs(served[1]-2) > 1e-9 {
		t.Errorf("served = %v, want [4 2]", served)
	}
	// Zero capacity serves nothing.
	served = maxMinServe([]hopRef{{f1, 0}}, 0)
	if served[0] != 0 {
		t.Errorf("zero capacity served %v", served[0])
	}
}

func containsChannel(ids []model.ChannelID, ch model.ChannelID) bool {
	for _, id := range ids {
		if id == ch {
			return true
		}
	}
	return false
}

func TestLatencyEqualsHopCount(t *testing.T) {
	// A 3-segment chain fills in exactly 3 ticks.
	cg := model.NewConstraintGraph(geom.Manhattan)
	u := cg.MustAddPort(model.Port{Name: "u", Position: geom.Pt(0, 0)})
	v := cg.MustAddPort(model.Port{Name: "v", Position: geom.Pt(3, 0)})
	cg.MustAddChannel(model.Channel{Name: "c", From: u, To: v, Bandwidth: 50})
	lib := &library.Library{
		Links: []library.Link{{Name: "wire", Bandwidth: 100, MaxSpan: 1, CostFixed: 0.1}},
		Nodes: []library.Node{{Name: "rep", Kind: library.Repeater, Cost: 1}},
	}
	ig, plans, err := p2p.Synthesize(cg, lib, p2p.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(ig, Config{Ticks: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Channels[0].LatencyTicks, plans[0].Segments; got != want {
		t.Errorf("latency = %d ticks, want %d (hop count)", got, want)
	}
}

func TestLatencyUnreachedIsMinusOne(t *testing.T) {
	// Zero warmup + zero effective capacity is impossible to build via
	// the library (positive bandwidth required); instead use one tick:
	// a 5-hop pipeline cannot deliver within 3 ticks.
	cg := model.NewConstraintGraph(geom.Manhattan)
	u := cg.MustAddPort(model.Port{Name: "u", Position: geom.Pt(0, 0)})
	v := cg.MustAddPort(model.Port{Name: "v", Position: geom.Pt(5, 0)})
	cg.MustAddChannel(model.Channel{Name: "c", From: u, To: v, Bandwidth: 50})
	lib := &library.Library{
		Links: []library.Link{{Name: "wire", Bandwidth: 100, MaxSpan: 1, CostFixed: 0.1}},
		Nodes: []library.Node{{Name: "rep", Kind: library.Repeater, Cost: 1}},
	}
	ig, _, err := p2p.Synthesize(cg, lib, p2p.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(ig, Config{Ticks: 3, Warmup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Channels[0].LatencyTicks != -1 {
		t.Errorf("latency = %d, want -1 (nothing delivered in 3 ticks over 5 hops)",
			res.Channels[0].LatencyTicks)
	}
}

package load

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeDaemon is a minimal in-memory cdcsd stand-in: it accepts
// submissions (optionally shedding every shedEvery-th one), reports
// each job done after one poll, and stamps envelopes with its own URL
// so per-replica attribution is observable.
type fakeDaemon struct {
	ts        *httptest.Server
	submits   atomic.Int64
	shedEvery int64 // shed the n-th submission when n%shedEvery==0; 0 = never
	admission string
}

func newFakeDaemon(t *testing.T, shedEvery int64, admission string) *fakeDaemon {
	t.Helper()
	d := &fakeDaemon{shedEvery: shedEvery, admission: admission}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/synthesize", func(w http.ResponseWriter, r *http.Request) {
		n := d.submits.Add(1)
		if d.shedEvery > 0 && n%d.shedEvery == 0 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"shed"}`, http.StatusTooManyRequests)
			return
		}
		var req struct {
			Workload string `json:"workload"`
		}
		_ = json.NewDecoder(r.Body).Decode(&req)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"id":"j-%06d","workload":%q,"state":"queued","admission":%q,"server":%q}`,
			n, req.Workload, d.admission, d.ts.URL)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"id":%q,"state":"done","admission":%q,"server":%q,"result":{"cost":1}}`,
			r.PathValue("id"), d.admission, d.ts.URL)
	})
	d.ts = httptest.NewServer(mux)
	t.Cleanup(d.ts.Close)
	return d
}

// TestRunHappyPath drives a short burst against two healthy replicas
// and checks the report's arithmetic end to end.
func TestRunHappyPath(t *testing.T) {
	a := newFakeDaemon(t, 0, "")
	b := newFakeDaemon(t, 0, "")
	reg := obs.NewRegistry()
	rep, err := Run(context.Background(), Config{
		Targets:  []string{a.ts.URL, b.ts.URL},
		QPS:      200,
		Duration: 200 * time.Millisecond,
		Deadline: 5 * time.Second,
		Registry: reg,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Offered == 0 {
		t.Fatal("no arrivals offered")
	}
	if rep.Completed != rep.Offered {
		t.Errorf("completed %d of %d offered against healthy replicas", rep.Completed, rep.Offered)
	}
	if rep.Shed != 0 || rep.Errors != 0 || rep.DeadlineMissed != 0 {
		t.Errorf("shed/errors/missed = %d/%d/%d, want all zero", rep.Shed, rep.Errors, rep.DeadlineMissed)
	}
	if len(rep.Replicas) != 2 {
		t.Fatalf("replicas = %+v, want both servers represented", rep.Replicas)
	}
	if rep.Balance <= 0 || rep.Balance > 1 {
		t.Errorf("balance = %v, want in (0,1]", rep.Balance)
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 || rep.Latency.Max < rep.Latency.P99 {
		t.Errorf("latency summary not monotone: %+v", rep.Latency)
	}
	if rep.AchievedQPS <= 0 {
		t.Error("achieved QPS must be positive")
	}
	var total int64
	for _, n := range rep.ByWorkload {
		total += n
	}
	if total != rep.Completed {
		t.Errorf("by-workload sums to %d, want %d", total, rep.Completed)
	}
	snap := reg.Snapshot().CounterMap()
	if snap["load/offered"] != rep.Offered || snap["load/completed"] != rep.Completed {
		t.Errorf("counters offered=%d completed=%d, want %d/%d",
			snap["load/offered"], snap["load/completed"], rep.Offered, rep.Completed)
	}
	for _, name := range []string{"load/offered", "load/completed", "load/degraded",
		"load/shed", "load/errors", "load/deadline_missed"} {
		if _, ok := snap[name]; !ok {
			t.Errorf("counter %s not registered", name)
		}
	}
}

// TestRunCountsShedAndDegrade: a replica shedding every 3rd
// submission and admitting the rest degraded must show up in the
// rates, without the run failing.
func TestRunCountsShedAndDegrade(t *testing.T) {
	d := newFakeDaemon(t, 3, "degraded")
	rep, err := Run(context.Background(), Config{
		Targets:  []string{d.ts.URL},
		QPS:      200,
		Duration: 150 * time.Millisecond,
		Deadline: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Shed == 0 {
		t.Error("shed = 0, want the 429s counted")
	}
	if rep.Completed == 0 {
		t.Error("completed = 0, want the accepted jobs to finish")
	}
	if rep.Degraded != rep.Completed {
		t.Errorf("degraded = %d, want every completed job (%d) counted degraded", rep.Degraded, rep.Completed)
	}
	if rep.ShedRate <= 0 || rep.ShedRate >= 1 {
		t.Errorf("shed rate = %v, want in (0,1)", rep.ShedRate)
	}
	if rep.Shed+rep.Completed != rep.Offered {
		t.Errorf("shed %d + completed %d != offered %d", rep.Shed, rep.Completed, rep.Offered)
	}
}

// TestRunDeadlineMissed: a daemon that never finishes jobs turns
// every arrival into a deadline miss, not an error.
func TestRunDeadlineMissed(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/synthesize", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"j-000001","state":"queued"}`)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"j-000001","state":"running"}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	rep, err := Run(context.Background(), Config{
		Targets:  []string{ts.URL},
		QPS:      100,
		Duration: 100 * time.Millisecond,
		Deadline: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.DeadlineMissed == 0 || rep.DeadlineMissed != rep.Offered {
		t.Errorf("deadline missed = %d of %d offered, want all", rep.DeadlineMissed, rep.Offered)
	}
	if rep.Completed != 0 || rep.Errors != 0 {
		t.Errorf("completed/errors = %d/%d, want 0/0", rep.Completed, rep.Errors)
	}
}

// TestRunErrorsCounted: a replica that 500s every submission counts
// errors; the generator itself succeeds.
func TestRunErrorsCounted(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()
	rep, err := Run(context.Background(), Config{
		Targets:  []string{ts.URL},
		QPS:      100,
		Duration: 100 * time.Millisecond,
		Deadline: time.Second,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Errors == 0 || rep.Errors != rep.Offered {
		t.Errorf("errors = %d of %d offered, want all", rep.Errors, rep.Offered)
	}
	if rep.ErrorRate != 1 {
		t.Errorf("error rate = %v, want 1", rep.ErrorRate)
	}
}

// TestRunValidation rejects unusable configs.
func TestRunValidation(t *testing.T) {
	cases := []Config{
		{QPS: 10, Duration: time.Second},
		{Targets: []string{"http://x"}, Duration: time.Second},
		{Targets: []string{"http://x"}, QPS: 10},
	}
	for i, cfg := range cases {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("case %d: config %+v accepted, want error", i, cfg)
		}
	}
}

// TestExpandMix pins the weighted schedule.
func TestExpandMix(t *testing.T) {
	sched := expandMix([]Spec{{Name: "a", Weight: 2}, {Name: "b"}, {Name: "c", Weight: -1}})
	var names []string
	for _, s := range sched {
		names = append(names, s.Name)
	}
	if got := strings.Join(names, ","); got != "a,a,b,c" {
		t.Errorf("schedule = %s, want a,a,b,c", got)
	}
}

// TestPercentiles pins nearest-rank arithmetic on a known set.
func TestPercentiles(t *testing.T) {
	var lat []time.Duration
	for i := 1; i <= 100; i++ {
		lat = append(lat, time.Duration(i)*time.Millisecond)
	}
	p := percentiles(lat)
	if p.P50 != 50 || p.P90 != 90 || p.P99 != 99 || p.Max != 100 {
		t.Errorf("percentiles = %+v, want 50/90/99/100", p)
	}
	if z := percentiles(nil); z != (Latency{}) {
		t.Errorf("empty percentiles = %+v, want zero", z)
	}
}

// TestRunTraceExemplars: with an ID source configured, every arrival
// carries a traceparent header and the report ends with the slowest
// trace IDs as exemplars.
func TestRunTraceExemplars(t *testing.T) {
	var mu sync.Mutex
	headers := map[string]bool{}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/synthesize", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		headers[r.Header.Get("traceparent")] = true
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"j-000001","state":"queued"}`)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"j-000001","state":"done","result":{"cost":1}}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		Targets:  []string{ts.URL},
		QPS:      200,
		Duration: 100 * time.Millisecond,
		Deadline: 5 * time.Second,
		TraceIDs: obs.NewIDSource(42),
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Completed == 0 {
		t.Fatal("no completions")
	}
	mu.Lock()
	seen := make([]string, 0, len(headers))
	for h := range headers {
		seen = append(seen, h)
	}
	mu.Unlock()
	if len(seen) != int(rep.Offered) {
		t.Errorf("saw %d distinct traceparents for %d arrivals, want one fresh root each",
			len(seen), rep.Offered)
	}
	for _, h := range seen {
		if _, ok := obs.ParseTraceparent(h); !ok {
			t.Errorf("arrival carried unparseable traceparent %q", h)
		}
	}
	if len(rep.Exemplars) == 0 || len(rep.Exemplars) > maxExemplars {
		t.Fatalf("exemplars = %+v, want 1..%d entries", rep.Exemplars, maxExemplars)
	}
	for i, ex := range rep.Exemplars {
		if len(ex.TraceID) != 32 || ex.LatencyMs < rep.Latency.P99 {
			t.Errorf("exemplar %d = %+v, want a p99-or-slower traced request", i, ex)
		}
		if i > 0 && ex.LatencyMs > rep.Exemplars[i-1].LatencyMs {
			t.Errorf("exemplars not slowest-first: %v then %v",
				rep.Exemplars[i-1].LatencyMs, ex.LatencyMs)
		}
	}

	// Tracing off: no headers, no exemplars.
	repOff, err := Run(context.Background(), Config{
		Targets:  []string{ts.URL},
		QPS:      100,
		Duration: 50 * time.Millisecond,
		Deadline: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(repOff.Exemplars) != 0 {
		t.Errorf("untraced run reported exemplars: %+v", repOff.Exemplars)
	}
}

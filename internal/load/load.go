// Package load is an open-loop traffic generator for a cdcsd daemon
// or fleet: it offers synthesis submissions at a fixed target QPS —
// arrivals keep coming whether or not earlier requests have finished,
// which is what makes overload measurable — waits on each accepted
// job with a per-request deadline, and distills the run into a
// machine-readable Report (latency percentiles, throughput, shed /
// degrade / error rates, per-replica balance).
//
// Each arrival carries a workload label drawn from a rotating pool so
// a fleet's rendezvous router spreads jobs across replicas; the
// replica a job actually lands on (after any peer forward) is read
// back from the job envelope's server field, so the balance section
// reflects where work ran, not where it was submitted.
//
// The generator deliberately does not retry shed responses by
// default: a 429 is a measurement, not a failure. Retries can be
// turned on (Attempts > 1) to measure the fleet as a client with
// replica rotation would see it. Counters are published under load/*
// on the injected obs registry.
package load

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/obs"
)

// Spec is one weighted entry in the workload mix.
type Spec struct {
	// Name labels the entry in the report (usually the example name).
	Name string `json:"name"`
	// Body is the POST /v1/synthesize JSON body. A "%s" verb, when
	// present via BodyFor, is the per-arrival workload label.
	Body string `json:"-"`
	// Weight is the entry's relative share of arrivals; <=0 means 1.
	Weight int `json:"weight"`
}

// Config tunes one generator run.
type Config struct {
	// Targets are the daemon base URLs. Arrivals round-robin across
	// them; at least one is required.
	Targets []string
	// QPS is the open-loop arrival rate; must be > 0.
	QPS float64
	// Duration is how long arrivals are offered; must be > 0. The run
	// then waits for in-flight requests to finish or miss Deadline.
	Duration time.Duration
	// Deadline bounds each request end-to-end (submit through
	// terminal state); <=0 means 30s.
	Deadline time.Duration
	// Mix is the weighted workload mix; empty means the default
	// wan/lan/mcm blend.
	Mix []Spec
	// WorkloadKeys is how many distinct workload labels each mix
	// entry rotates through (fleet routing spreads by label); <=0
	// means 16.
	WorkloadKeys int
	// Attempts is the client's MaxAttempts per submission; <=0 means
	// 1 — shed responses are counted, not retried.
	Attempts int
	// Registry receives load/* counters; nil disables.
	Registry *obs.Registry
	// TraceIDs mints a fresh distributed-trace root per arrival, which
	// the client stamps onto the submission as a traceparent header;
	// the report then names the trace IDs of the slowest completed
	// requests as exemplars. Nil disables tracing.
	TraceIDs *obs.IDSource
	// Logger receives per-request warnings; nil disables.
	Logger *slog.Logger
	// HTTP overrides the transport; nil means the client default.
	HTTP *http.Client
}

// DefaultMix is the blend used when Config.Mix is empty: the small
// WAN and LAN access networks plus the MCM system — three distinct
// graph shapes that all finish quickly enough to sustain high QPS.
func DefaultMix() []Spec {
	return []Spec{
		{Name: "wan", Body: `{"example":"wan","workload":"%s","options":{"workers":1}}`, Weight: 2},
		{Name: "lan", Body: `{"example":"lan","workload":"%s","options":{"workers":1}}`, Weight: 2},
		{Name: "mcm", Body: `{"example":"mcm","workload":"%s","options":{"workers":1}}`, Weight: 1},
	}
}

// Latency is the percentile summary of end-to-end request latency
// (submit through terminal job state), in milliseconds.
type Latency struct {
	P50 float64 `json:"p50_ms"`
	P90 float64 `json:"p90_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

// Exemplar names one of the slowest completed requests by its
// distributed-trace ID, so a tail-latency investigation starts from
// `cdcs -server ... -trace` instead of from log spelunking.
type Exemplar struct {
	TraceID   string  `json:"trace_id"`
	LatencyMs float64 `json:"latency_ms"`
	Workload  string  `json:"workload"`
	Server    string  `json:"server,omitempty"`
}

// Replica is one server's share of the completed work.
type Replica struct {
	Server    string  `json:"server"`
	Completed int64   `json:"completed"`
	Share     float64 `json:"share"`
}

// Report is the machine-readable run summary.
type Report struct {
	Targets   []string `json:"targets"`
	TargetQPS float64  `json:"target_qps"`
	// DurationSec is the offered-arrival window, not the (longer)
	// wall time including the drain of in-flight requests.
	DurationSec float64 `json:"duration_sec"`

	Offered        int64 `json:"offered"`
	Completed      int64 `json:"completed"`
	Degraded       int64 `json:"degraded"`
	Shed           int64 `json:"shed"`
	Errors         int64 `json:"errors"`
	DeadlineMissed int64 `json:"deadline_missed"`

	// AchievedQPS is completed work over the arrival window.
	AchievedQPS float64 `json:"achieved_qps"`
	ShedRate    float64 `json:"shed_rate"`
	DegradeRate float64 `json:"degrade_rate"`
	ErrorRate   float64 `json:"error_rate"`

	Latency  Latency   `json:"latency"`
	Replicas []Replica `json:"replicas"`
	// Balance is the smallest replica share over the largest — 1.0 is
	// a perfectly even fleet, 0 means some replica served nothing.
	Balance float64 `json:"balance"`

	ByWorkload map[string]int64 `json:"by_workload"`

	// Exemplars are the p99-and-slower completed requests (slowest
	// first, capped), present only when Config.TraceIDs was set.
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// collector accumulates per-request outcomes under one mutex; the
// request goroutines are short-lived and the critical sections tiny.
type collector struct {
	mu         sync.Mutex
	latencies  []time.Duration
	samples    []sample
	perReplica map[string]int64
	byWorkload map[string]int64
	completed  int64
	degraded   int64
	shed       int64
	errors     int64
	missed     int64
}

// sample ties one completed request's latency to its trace identity,
// feeding the exemplar selection. Only recorded when tracing is on.
type sample struct {
	latency  time.Duration
	traceID  string
	workload string
	server   string
}

// Run drives one generator run to completion and returns its report.
// Canceling ctx stops new arrivals and abandons the in-flight wait.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if len(cfg.Targets) == 0 {
		return nil, errors.New("load: no targets")
	}
	if cfg.QPS <= 0 {
		return nil, fmt.Errorf("load: qps %v must be > 0", cfg.QPS)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("load: duration %v must be > 0", cfg.Duration)
	}
	deadline := cfg.Deadline
	if deadline <= 0 {
		deadline = 30 * time.Second
	}
	keys := cfg.WorkloadKeys
	if keys <= 0 {
		keys = 16
	}
	attempts := cfg.Attempts
	if attempts <= 0 {
		attempts = 1
	}
	mix := cfg.Mix
	if len(mix) == 0 {
		mix = DefaultMix()
	}
	schedule := expandMix(mix)

	// Register every load/* counter up front so a zero-traffic run
	// still exports the full set.
	reg := cfg.Registry
	offeredC := reg.Counter("load/offered")
	completedC := reg.Counter("load/completed")
	degradedC := reg.Counter("load/degraded")
	shedC := reg.Counter("load/shed")
	errorsC := reg.Counter("load/errors")
	missedC := reg.Counter("load/deadline_missed")

	col := &collector{
		perReplica: make(map[string]int64),
		byWorkload: make(map[string]int64),
	}
	interval := time.Duration(float64(time.Second) / cfg.QPS)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	stop := time.NewTimer(cfg.Duration)
	defer stop.Stop()

	var (
		wg      sync.WaitGroup
		offered int64
	)
arrivals:
	for {
		select {
		case <-ctx.Done():
			break arrivals
		case <-stop.C:
			break arrivals
		case <-ticker.C:
			seq := offered
			offered++
			offeredC.Add(1)
			spec := schedule[int(seq)%len(schedule)]
			target := cfg.Targets[int(seq)%len(cfg.Targets)]
			wl := fmt.Sprintf("%s-%d", spec.Name, int(seq)%keys)
			// A fresh client per arrival: clients pin themselves to
			// the replica a forwarded job lands on, and that pin must
			// not leak into other in-flight arrivals. Targets still
			// round-robin, so submission pressure stays even and any
			// imbalance in the report is the fleet's routing, not ours.
			c := client.New(client.Config{
				BaseURL:     target,
				MaxAttempts: attempts,
				HTTP:        cfg.HTTP,
			})
			// A fresh trace root per arrival: the client stamps it onto
			// the submission as a traceparent header, so the daemon's
			// spans join a trace this run can name in its exemplars.
			var sc obs.SpanContext
			if cfg.TraceIDs != nil {
				sc = cfg.TraceIDs.NewRoot()
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				runOne(ctx, c, spec, wl, target, sc, deadline, col, cfg.Logger,
					completedC, degradedC, shedC, errorsC, missedC)
			}()
		}
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return col.report(cfg, offered), nil
}

// expandMix flattens the weighted mix into a repeating schedule, so
// arrival i deterministically maps to a spec.
func expandMix(mix []Spec) []Spec {
	var out []Spec
	for _, s := range mix {
		w := s.Weight
		if w <= 0 {
			w = 1
		}
		for i := 0; i < w; i++ {
			out = append(out, s)
		}
	}
	return out
}

// runOne submits one arrival and waits it to a terminal state within
// the per-request deadline, classifying the outcome.
func runOne(ctx context.Context, c *client.Client, spec Spec,
	workload, target string, sc obs.SpanContext, deadline time.Duration, col *collector, log *slog.Logger,
	completedC, degradedC, shedC, errorsC, missedC *obs.CounterHandle) {
	reqCtx, cancel := context.WithTimeout(ctx, deadline)
	defer cancel()
	reqCtx = obs.ContextWithSpanContext(reqCtx, sc)
	body := spec.Body
	if strings.Contains(body, "%s") {
		body = fmt.Sprintf(body, workload)
	}
	start := time.Now()
	job, err := c.Submit(reqCtx, []byte(body))
	if err != nil {
		col.mu.Lock()
		defer col.mu.Unlock()
		var se *client.StatusError
		if errors.As(err, &se) && (se.Code == http.StatusTooManyRequests || se.Code == http.StatusServiceUnavailable) {
			col.shed++
			shedC.Add(1)
			return
		}
		if reqCtx.Err() != nil && ctx.Err() == nil {
			col.missed++
			missedC.Add(1)
			return
		}
		col.errors++
		errorsC.Add(1)
		if log != nil {
			log.Warn("submit failed", "target", target, "workload", workload, "error", err.Error())
		}
		return
	}
	// The client pinned itself to the replica the job lives on (a
	// fleet daemon may have forwarded the submission to its
	// rendezvous owner), so Wait polls the right place.
	fin, err := c.Wait(reqCtx, job.ID, 20*time.Millisecond)
	elapsed := time.Since(start)
	col.mu.Lock()
	defer col.mu.Unlock()
	if err != nil {
		if reqCtx.Err() != nil && ctx.Err() == nil {
			col.missed++
			missedC.Add(1)
			return
		}
		col.errors++
		errorsC.Add(1)
		if log != nil {
			log.Warn("wait failed", "target", target, "job_id", job.ID, "error", err.Error())
		}
		return
	}
	if fin.State != "done" {
		col.errors++
		errorsC.Add(1)
		if log != nil {
			log.Warn("job failed", "target", target, "job_id", job.ID, "error", fin.Error)
		}
		return
	}
	col.completed++
	completedC.Add(1)
	col.latencies = append(col.latencies, elapsed)
	server := fin.Server
	if server == "" {
		server = job.Server
	}
	if server == "" {
		server = target
	}
	col.perReplica[server]++
	col.byWorkload[spec.Name]++
	if sc.Valid() {
		// Prefer the trace ID the daemon reports (the authoritative
		// one if propagation was ever dropped); fall back to the root
		// this run minted.
		tid := fin.TraceID
		if tid == "" {
			tid = job.TraceID
		}
		if tid == "" {
			tid = sc.TraceID.String()
		}
		col.samples = append(col.samples, sample{
			latency: elapsed, traceID: tid, workload: workload, server: server,
		})
	}
	if fin.Admission == "degraded" || job.Admission == "degraded" {
		col.degraded++
		degradedC.Add(1)
	}
}

// report distills the collector into the final Report.
func (col *collector) report(cfg Config, offered int64) *Report {
	col.mu.Lock()
	defer col.mu.Unlock()
	r := &Report{
		Targets:        cfg.Targets,
		TargetQPS:      cfg.QPS,
		DurationSec:    cfg.Duration.Seconds(),
		Offered:        offered,
		Completed:      col.completed,
		Degraded:       col.degraded,
		Shed:           col.shed,
		Errors:         col.errors,
		DeadlineMissed: col.missed,
		ByWorkload:     col.byWorkload,
	}
	if offered > 0 {
		r.ShedRate = float64(col.shed) / float64(offered)
		r.DegradeRate = float64(col.degraded) / float64(offered)
		r.ErrorRate = float64(col.errors) / float64(offered)
	}
	if cfg.Duration > 0 {
		r.AchievedQPS = float64(col.completed) / cfg.Duration.Seconds()
	}
	r.Latency = percentiles(col.latencies)
	servers := make([]string, 0, len(col.perReplica))
	for s := range col.perReplica {
		servers = append(servers, s)
	}
	sort.Strings(servers)
	var minC, maxC int64 = -1, 0
	for _, s := range servers {
		n := col.perReplica[s]
		share := 0.0
		if col.completed > 0 {
			share = float64(n) / float64(col.completed)
		}
		r.Replicas = append(r.Replicas, Replica{Server: s, Completed: n, Share: share})
		if minC < 0 || n < minC {
			minC = n
		}
		if n > maxC {
			maxC = n
		}
	}
	if maxC > 0 {
		r.Balance = float64(minC) / float64(maxC)
	}
	r.Exemplars = exemplars(col.samples, r.Latency.P99)
	return r
}

// maxExemplars caps the report's exemplar list: enough trace IDs to
// chase the tail, few enough to read.
const maxExemplars = 5

// exemplars picks the traced requests at or above the p99 latency,
// slowest first, capped at maxExemplars.
func exemplars(samples []sample, p99ms float64) []Exemplar {
	if len(samples) == 0 {
		return nil
	}
	sorted := append([]sample(nil), samples...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].latency > sorted[j].latency })
	var out []Exemplar
	for _, s := range sorted {
		ms := float64(s.latency) / float64(time.Millisecond)
		if ms < p99ms || len(out) >= maxExemplars {
			break
		}
		out = append(out, Exemplar{
			TraceID:   s.traceID,
			LatencyMs: ms,
			Workload:  s.workload,
			Server:    s.server,
		})
	}
	return out
}

// percentiles computes the nearest-rank latency summary in ms.
func percentiles(lat []time.Duration) Latency {
	if len(lat) == 0 {
		return Latency{}
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := func(q float64) float64 {
		i := int(q*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return float64(sorted[i]) / float64(time.Millisecond)
	}
	return Latency{
		P50: rank(0.50),
		P90: rank(0.90),
		P99: rank(0.99),
		Max: float64(sorted[len(sorted)-1]) / float64(time.Millisecond),
	}
}

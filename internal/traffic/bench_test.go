package traffic

import (
	"math/rand"
	"testing"
)

func BenchmarkEffectiveBandwidth(b *testing.B) {
	s := Source{Peak: 10, MeanOn: 20, MeanOff: 60}
	for i := 0; i < b.N; i++ {
		if _, err := s.EffectiveBandwidth(150, 1e-4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrace100k(b *testing.B) {
	s := Source{Peak: 10, MeanOn: 20, MeanOff: 60}
	r := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Trace(r, 100000); err != nil {
			b.Fatal(err)
		}
	}
}

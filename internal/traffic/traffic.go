// Package traffic derives channel bandwidth requirements from traffic
// models — the step upstream of the constraint graph. The paper takes
// b(a) as given ("a certain required channel bandwidth could be
// specified in gigabyte per second"); in practice that number comes
// from characterizing the application's traffic. This package provides
// the classical tools:
//
//   - an on/off Markov fluid source (bursty traffic with exponential
//     burst and idle durations);
//   - its effective bandwidth at a target overflow probability for a
//     given buffer (the standard large-deviations approximation);
//   - trace generation plus empirical bandwidth estimation (windowed
//     quantile), so the analytic requirement can be validated against
//     simulation.
package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Source is an on/off Markov fluid source: it transmits at Peak while
// on; on and off periods are exponentially distributed with means
// MeanOn and MeanOff (in ticks).
type Source struct {
	// Peak is the transmission rate while on (bandwidth units).
	Peak float64
	// MeanOn and MeanOff are the mean burst and idle durations (ticks).
	MeanOn, MeanOff float64
}

// Validate checks the parameters.
func (s Source) Validate() error {
	if s.Peak <= 0 || math.IsNaN(s.Peak) {
		return fmt.Errorf("traffic: peak must be positive")
	}
	if s.MeanOn <= 0 || s.MeanOff < 0 {
		return fmt.Errorf("traffic: durations must be positive (on) and non-negative (off)")
	}
	return nil
}

// MeanRate returns the long-run average rate p·on/(on+off).
func (s Source) MeanRate() float64 {
	return s.Peak * s.MeanOn / (s.MeanOn + s.MeanOff)
}

// Utilization is the on-probability.
func (s Source) Utilization() float64 {
	return s.MeanOn / (s.MeanOn + s.MeanOff)
}

// EffectiveBandwidth returns the service rate c such that a buffer of
// size B overflows with probability ≈ ε, using the standard
// exponential-bandwidth approximation for a Markov on/off fluid source
// (Guérin–Ahmadi–Naghshineh): with α = ln(1/ε) and
// y = α·b_on·(1−ρ)·p,
//
//	c = p · ( y − B + sqrt( (y − B)² + 4·B·ρ·y ) ) / (2·y)
//
// For B → 0 the requirement approaches the peak rate; for B → ∞ it
// approaches the mean rate.
func (s Source) EffectiveBandwidth(buffer, epsilon float64) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if epsilon <= 0 || epsilon >= 1 {
		return 0, fmt.Errorf("traffic: epsilon must be in (0,1)")
	}
	if buffer <= 0 {
		return s.Peak, nil
	}
	rho := s.Utilization()
	if rho >= 1 {
		return s.Peak, nil
	}
	alpha := math.Log(1 / epsilon)
	// Standard GAN closed form with y = α·b_on·(1−ρ)·p:
	//   c = p · ( y − B + sqrt( (y − B)² + 4·B·ρ·y ) ) / (2·y)
	b := s.MeanOn // mean burst duration
	y := alpha * b * (1 - rho) * s.Peak
	x := y - buffer
	c := s.Peak * (x + math.Sqrt(x*x+4*buffer*rho*y)) / (2 * y)
	// Clamp into [mean, peak]: the approximation can stray just outside
	// at the extremes.
	if c < s.MeanRate() {
		c = s.MeanRate()
	}
	if c > s.Peak {
		c = s.Peak
	}
	return c, nil
}

// Trace simulates the source for the given number of ticks and returns
// the per-tick transmitted volume.
func (s Source) Trace(r *rand.Rand, ticks int) ([]float64, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	trace := make([]float64, ticks)
	on := r.Float64() < s.Utilization()
	remaining := s.sample(r, on)
	for t := 0; t < ticks; t++ {
		if on {
			trace[t] = s.Peak
		}
		remaining--
		for remaining <= 0 {
			on = !on
			remaining += s.sample(r, on)
		}
	}
	return trace, nil
}

func (s Source) sample(r *rand.Rand, on bool) float64 {
	mean := s.MeanOff
	if on {
		mean = s.MeanOn
	}
	if mean <= 0 {
		return 1
	}
	return r.ExpFloat64() * mean
}

// EstimateBandwidth returns the empirical bandwidth requirement of a
// trace: the (1−epsilon) quantile of the window-averaged rate. A
// channel provisioned at this rate would have served all but an
// epsilon fraction of the windows without queueing beyond one window.
func EstimateBandwidth(trace []float64, window int, epsilon float64) (float64, error) {
	if window <= 0 || window > len(trace) {
		return 0, fmt.Errorf("traffic: window %d out of range for trace of %d", window, len(trace))
	}
	if epsilon < 0 || epsilon >= 1 {
		return 0, fmt.Errorf("traffic: epsilon must be in [0,1)")
	}
	var rates []float64
	var sum float64
	for i, v := range trace {
		sum += v
		if i >= window {
			sum -= trace[i-window]
		}
		if i >= window-1 {
			rates = append(rates, sum/float64(window))
		}
	}
	sort.Float64s(rates)
	idx := int(float64(len(rates)-1) * (1 - epsilon))
	return rates[idx], nil
}

package traffic

import (
	"math"
	"math/rand"
	"testing"
)

func burstySource() Source {
	return Source{Peak: 10, MeanOn: 20, MeanOff: 60}
}

func TestValidate(t *testing.T) {
	if err := burstySource().Validate(); err != nil {
		t.Errorf("valid source rejected: %v", err)
	}
	bad := []Source{
		{Peak: 0, MeanOn: 1, MeanOff: 1},
		{Peak: 1, MeanOn: 0, MeanOff: 1},
		{Peak: 1, MeanOn: 1, MeanOff: -1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("source %+v should be rejected", s)
		}
	}
}

func TestMeanRateAndUtilization(t *testing.T) {
	s := burstySource()
	if got := s.Utilization(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("utilization = %v, want 0.25", got)
	}
	if got := s.MeanRate(); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("mean rate = %v, want 2.5", got)
	}
}

func TestEffectiveBandwidthLimits(t *testing.T) {
	s := burstySource()
	// Tiny buffer → near peak.
	nearPeak, err := s.EffectiveBandwidth(0.01, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if nearPeak < s.Peak*0.9 {
		t.Errorf("tiny-buffer bandwidth %v should approach the peak %v", nearPeak, s.Peak)
	}
	// Huge buffer → near mean.
	nearMean, err := s.EffectiveBandwidth(1e7, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if nearMean > s.MeanRate()*1.1 {
		t.Errorf("huge-buffer bandwidth %v should approach the mean %v", nearMean, s.MeanRate())
	}
	// Zero buffer degenerates to the peak.
	peak, err := s.EffectiveBandwidth(0, 1e-6)
	if err != nil || peak != s.Peak {
		t.Errorf("zero-buffer = %v, %v; want peak", peak, err)
	}
}

func TestEffectiveBandwidthMonotone(t *testing.T) {
	s := burstySource()
	prev := math.Inf(1)
	for _, buf := range []float64{1, 10, 100, 1000, 10000} {
		c, err := s.EffectiveBandwidth(buf, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if c > prev+1e-9 {
			t.Errorf("effective bandwidth increased with buffer: %v at B=%v (prev %v)", c, buf, prev)
		}
		if c < s.MeanRate()-1e-9 || c > s.Peak+1e-9 {
			t.Errorf("bandwidth %v outside [mean, peak]", c)
		}
		prev = c
	}
	// Stricter loss needs more bandwidth.
	loose, _ := s.EffectiveBandwidth(100, 1e-2)
	strict, _ := s.EffectiveBandwidth(100, 1e-9)
	if strict < loose-1e-9 {
		t.Errorf("stricter epsilon needs less bandwidth? %v < %v", strict, loose)
	}
}

func TestEffectiveBandwidthErrors(t *testing.T) {
	s := burstySource()
	if _, err := s.EffectiveBandwidth(10, 0); err == nil {
		t.Error("epsilon 0 should fail")
	}
	if _, err := s.EffectiveBandwidth(10, 1); err == nil {
		t.Error("epsilon 1 should fail")
	}
	if _, err := (Source{}).EffectiveBandwidth(10, 0.1); err == nil {
		t.Error("invalid source should fail")
	}
}

func TestTraceStatisticsMatchModel(t *testing.T) {
	s := burstySource()
	r := rand.New(rand.NewSource(13))
	trace, err := s.Trace(r, 200000)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range trace {
		if v != 0 && v != s.Peak {
			t.Fatalf("trace value %v is neither 0 nor peak", v)
		}
		sum += v
	}
	empMean := sum / float64(len(trace))
	if math.Abs(empMean-s.MeanRate()) > 0.15*s.MeanRate() {
		t.Errorf("empirical mean %v far from model mean %v", empMean, s.MeanRate())
	}
}

func TestEstimateBandwidth(t *testing.T) {
	s := burstySource()
	r := rand.New(rand.NewSource(17))
	trace, err := s.Trace(r, 100000)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateBandwidth(trace, 50, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	// The empirical requirement sits between mean and peak, and below
	// the analytic effective bandwidth for a comparable buffer (c·B/w).
	if est < s.MeanRate() || est > s.Peak {
		t.Errorf("estimate %v outside [mean %v, peak %v]", est, s.MeanRate(), s.Peak)
	}
	// Quantile 0 (epsilon→1-ish) degenerates towards the minimum window.
	lo, err := EstimateBandwidth(trace, 50, 0.999999)
	if err != nil {
		t.Fatal(err)
	}
	if lo > est {
		t.Errorf("low quantile %v above high quantile %v", lo, est)
	}
}

func TestEstimateBandwidthErrors(t *testing.T) {
	trace := []float64{1, 2, 3}
	if _, err := EstimateBandwidth(trace, 0, 0.1); err == nil {
		t.Error("zero window should fail")
	}
	if _, err := EstimateBandwidth(trace, 4, 0.1); err == nil {
		t.Error("window larger than trace should fail")
	}
	if _, err := EstimateBandwidth(trace, 2, 1); err == nil {
		t.Error("epsilon 1 should fail")
	}
}

// Property: the analytic effective bandwidth is a safe provisioning
// level — a channel served at that rate drops (almost) nothing in
// simulation with the corresponding buffer.
func TestEffectiveBandwidthSafeInSimulation(t *testing.T) {
	s := burstySource()
	r := rand.New(rand.NewSource(23))
	const buffer = 200.0
	const epsilon = 1e-3
	c, err := s.EffectiveBandwidth(buffer, epsilon)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := s.Trace(r, 300000)
	if err != nil {
		t.Fatal(err)
	}
	// Fluid queue served at rate c with the given buffer.
	var q, dropped, offered float64
	for _, v := range trace {
		offered += v
		q += v - c
		if q < 0 {
			q = 0
		}
		if q > buffer {
			dropped += q - buffer
			q = buffer
		}
	}
	lossRate := dropped / offered
	if lossRate > epsilon*20 { // generous slack: it is an approximation
		t.Errorf("loss rate %v too high for effective bandwidth %v (target %v)", lossRate, c, epsilon)
	}
}

// Package lid implements the extension sketched in the paper's
// conclusion: combining constraint-driven communication synthesis with
// the latency-insensitive design (LID) methodology of reference [1]
// once deep sub-micron wires no longer traverse the chip in one clock
// period.
//
// The model follows the paper's framing: after optimal repeater
// insertion at the critical length l_crit, a global wire propagates
// signals at a fixed velocity, so a clock period T bounds the distance
// one cycle can cover (the per-clock reach). Segments beyond the reach
// need *stateful* repeaters — relay stations with latches — while the
// remaining segmentation points keep *stateless* buffers. The cost
// function the conclusion calls for weighs both:
//
//	C = w_buf · (#stateless buffers) + w_latch · (#relay stations)
//
// and each relay station adds one clock cycle of channel latency, the
// quantity the LID methodology makes safe by construction.
package lid

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/soc"
)

// Params describes a technology point for LID analysis.
type Params struct {
	// Tech supplies l_crit (the repeater spacing).
	Tech soc.Technology
	// ClockPeriodNS is the target clock period in nanoseconds.
	ClockPeriodNS float64
	// VelocityMMPerNS is the post-repeater signal velocity in mm/ns.
	VelocityMMPerNS float64
	// BufferCost weighs a stateless repeater; LatchCost weighs a relay
	// station (stateful). LatchCost ≥ BufferCost in practice.
	BufferCost, LatchCost float64
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Tech.LCrit <= 0 {
		return fmt.Errorf("lid: technology l_crit must be positive")
	}
	if p.ClockPeriodNS <= 0 || p.VelocityMMPerNS <= 0 {
		return fmt.Errorf("lid: clock period and velocity must be positive")
	}
	if p.BufferCost < 0 || p.LatchCost < 0 {
		return fmt.Errorf("lid: costs must be non-negative")
	}
	return nil
}

// PerClockReach returns the longest distance (mm) a signal covers in
// one clock period on an optimally repeated wire.
func (p Params) PerClockReach() float64 {
	return p.ClockPeriodNS * p.VelocityMMPerNS
}

// ChannelPlan is the LID treatment of one channel.
type ChannelPlan struct {
	// Distance is the channel's Manhattan length (mm).
	Distance float64
	// Buffers is the number of stateless repeaters inserted.
	Buffers int
	// RelayStations is the number of stateful repeaters (latches).
	RelayStations int
	// LatencyCycles is the channel's forward latency in clock cycles
	// (1 + one per relay station).
	LatencyCycles int
	// Cost is w_buf·Buffers + w_latch·RelayStations.
	Cost float64
}

// Plan computes the LID treatment of a channel of the given length:
// the wire is segmented every l_crit as in the base flow; segmentation
// points falling on per-clock-reach boundaries become relay stations,
// the rest remain plain buffers.
func (p Params) Plan(distance float64) ChannelPlan {
	if distance < 0 {
		distance = 0
	}
	repeaters := p.Tech.RepeaterCount(distance) // ⌊d / l_crit⌋
	reach := p.PerClockReach()
	relays := 0
	if reach > 0 && distance > reach {
		// One relay station at each whole multiple of the reach.
		relays = int(math.Ceil(distance/reach-1e-12)) - 1
	}
	if relays > repeaters {
		// A relay station subsumes a repeater position; if timing needs
		// more stations than l_crit points exist, extra stations are
		// inserted on their own.
		repeaters = relays
	}
	buffers := repeaters - relays
	return ChannelPlan{
		Distance:      distance,
		Buffers:       buffers,
		RelayStations: relays,
		LatencyCycles: 1 + relays,
		Cost:          p.BufferCost*float64(buffers) + p.LatchCost*float64(relays),
	}
}

// Report aggregates the LID analysis of a constraint graph.
type Report struct {
	Params   Params
	Channels []ChannelPlan
	// Names mirrors Channels with the constraint-graph channel names.
	Names []string
	// TotalBuffers, TotalRelays and TotalCost aggregate the plans.
	TotalBuffers, TotalRelays int
	TotalCost                 float64
	// MaxLatencyCycles is the worst channel latency.
	MaxLatencyCycles int
}

// Analyze runs the LID treatment over every channel of an on-chip
// constraint graph (which should use the Manhattan norm).
func Analyze(cg *model.ConstraintGraph, p Params) (*Report, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := cg.Validate(); err != nil {
		return nil, err
	}
	rep := &Report{Params: p}
	for i := 0; i < cg.NumChannels(); i++ {
		ch := model.ChannelID(i)
		plan := p.Plan(cg.Distance(ch))
		rep.Channels = append(rep.Channels, plan)
		rep.Names = append(rep.Names, cg.Channel(ch).Name)
		rep.TotalBuffers += plan.Buffers
		rep.TotalRelays += plan.RelayStations
		rep.TotalCost += plan.Cost
		if plan.LatencyCycles > rep.MaxLatencyCycles {
			rep.MaxLatencyCycles = plan.LatencyCycles
		}
	}
	return rep, nil
}

// SingleCycle reports whether every channel completes in one clock
// period — the paper's stated validity condition for the plain Figure 5
// result ("as long as all links on the chip have a delay smaller than
// the clock period").
func (r *Report) SingleCycle() bool {
	return r.MaxLatencyCycles <= 1
}

// TechnologyPoint bundles a named process generation for the DSM sweep
// of experiment E10.
type TechnologyPoint struct {
	Name string
	// LCritMM is the repeater spacing at this node.
	LCritMM float64
	// ReachMM is the per-clock reach at this node (clock periods shrink
	// and wires slow relative to gates as feature size drops).
	ReachMM float64
}

// DSMGenerations returns the sweep the paper's conclusion motivates:
// at 0.18 µm every global wire still makes timing in a cycle; at
// 0.13 µm and below ("this will be true for fewer wires") relay
// stations appear.
func DSMGenerations() []TechnologyPoint {
	return []TechnologyPoint{
		{Name: "0.18um", LCritMM: 0.60, ReachMM: 12.0},
		{Name: "0.13um", LCritMM: 0.45, ReachMM: 3.0},
		{Name: "90nm", LCritMM: 0.30, ReachMM: 1.5},
		{Name: "65nm", LCritMM: 0.20, ReachMM: 0.8},
	}
}

// ParamsFor builds LID parameters for a DSM generation with unit buffer
// cost and the given latch premium (latch cost = premium × buffer
// cost). Velocity is normalized so the reach equals the generation's
// ReachMM at a 1 ns clock.
func ParamsFor(gen TechnologyPoint, latchPremium float64) Params {
	return Params{
		Tech:            soc.Technology{Name: gen.Name, LCrit: gen.LCritMM, WireBandwidth: 100},
		ClockPeriodNS:   1,
		VelocityMMPerNS: gen.ReachMM,
		BufferCost:      1,
		LatchCost:       latchPremium,
	}
}

package lid

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/impl"
	"repro/internal/model"
)

// Implementation-level LID analysis: instead of treating each channel
// as one straight wire (Analyze), walk the channel's actual
// implementation paths — through mux/demux hubs, shared trunks and
// repeater chains — and derive per-channel forward latency and the
// relay-station budget.
//
// Model: repeaters and switches are combinational, so distance
// accumulates continuously along a path; a stateful relay station
// (latch) is required at every whole multiple of the per-clock reach.
// A path of total length d therefore takes ⌈d / reach⌉ cycles and
// traverses ⌈d / reach⌉ − 1 relay stations. A channel's latency is the
// maximum over its parallel paths (the slowest path bounds when the
// last word arrives).
type ImplementationReport struct {
	Params Params
	// LatencyCycles maps each channel to its forward latency.
	LatencyCycles map[model.ChannelID]int
	// MaxLatencyCycles is the worst channel latency.
	MaxLatencyCycles int
	// TotalRelays sums the relay stations each channel's worst path
	// traverses. Relay stations on shared trunks are counted once per
	// channel using them: in latency-insensitive design every channel
	// crossing a station needs its own queue slot and flow-control
	// tokens there, so the per-channel sum is the relevant budget.
	TotalRelays int
	// SingleCycleLinks and MultiCycleLinks partition the link instances
	// by whether one instance alone fits the per-clock reach.
	SingleCycleLinks, MultiCycleLinks int
}

// AnalyzeImplementation runs the LID treatment over a synthesized
// architecture.
func AnalyzeImplementation(ig *impl.Graph, p Params) (*ImplementationReport, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	reach := p.PerClockReach()
	cg := ig.ConstraintGraph()
	rep := &ImplementationReport{
		Params:        p,
		LatencyCycles: make(map[model.ChannelID]int, cg.NumChannels()),
	}

	pathCycles := func(length float64) int {
		if length <= 0 {
			return 1
		}
		c := int(math.Ceil(length/reach - 1e-12))
		if c < 1 {
			c = 1
		}
		return c
	}

	// Per-link classification against the reach.
	dg := ig.Digraph()
	for a := 0; a < dg.NumArcs(); a++ {
		if ig.ArcLength(graph.ArcID(a)) <= reach+1e-12 {
			rep.SingleCycleLinks++
		} else {
			rep.MultiCycleLinks++
		}
	}

	for i := 0; i < cg.NumChannels(); i++ {
		ch := model.ChannelID(i)
		paths := ig.Implementation(ch)
		if len(paths) == 0 {
			return nil, fmt.Errorf("lid: channel %q has no implementation", cg.Channel(ch).Name)
		}
		worst := 0
		for _, path := range paths {
			if c := pathCycles(ig.PathLength(path)); c > worst {
				worst = c
			}
		}
		rep.LatencyCycles[ch] = worst
		rep.TotalRelays += worst - 1
		if worst > rep.MaxLatencyCycles {
			rep.MaxLatencyCycles = worst
		}
	}
	return rep, nil
}

// SingleCycle reports whether every channel completes in one cycle.
func (r *ImplementationReport) SingleCycle() bool { return r.MaxLatencyCycles <= 1 }

package lid

import (
	"testing"

	"repro/internal/impl"
	"repro/internal/merging"
	"repro/internal/model"
	"repro/internal/p2p"
	"repro/internal/synth"
	"repro/internal/workloads"
)

func TestAnalyzeImplementationMPEG4SingleCycle(t *testing.T) {
	// At 0.18 µm every segmented wire piece (≤ 0.6 mm) is far below the
	// 12 mm reach: each link is single-cycle, but a channel's latency is
	// its hop count... no — links retime only when they exceed the
	// reach, so a chain of sub-reach segments still counts one cycle per
	// link in this model. The relevant observable: no relay stations.
	cg := workloads.MPEG4()
	lib := workloads.MPEG4Technology().Library()
	ig, _, err := p2p.Synthesize(cg, lib, p2p.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeImplementation(ig, params018())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalRelays != 0 {
		t.Errorf("relays = %d, want 0 at 0.18 µm", rep.TotalRelays)
	}
	if rep.MultiCycleLinks != 0 {
		t.Errorf("multi-cycle links = %d, want 0", rep.MultiCycleLinks)
	}
	if rep.SingleCycleLinks != ig.NumLinks() {
		t.Errorf("single-cycle links = %d, want %d", rep.SingleCycleLinks, ig.NumLinks())
	}
}

func TestAnalyzeImplementationLatencyGrowsWithDSM(t *testing.T) {
	cg := workloads.MPEG4()
	lib := workloads.MPEG4Technology().Library()
	ig, _, err := synth.Synthesize(cg, lib, synth.Options{
		Merging: merging.Options{Policy: merging.MaxIndexRef, MaxK: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for _, gen := range DSMGenerations() {
		rep, err := AnalyzeImplementation(ig, ParamsFor(gen, 4))
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && rep.TotalRelays < prev {
			t.Errorf("%s: relays decreased: %d < %d", gen.Name, rep.TotalRelays, prev)
		}
		prev = rep.TotalRelays
		for ch, lat := range rep.LatencyCycles {
			if lat < 1 {
				t.Errorf("%s: channel %d latency %d < 1", gen.Name, ch, lat)
			}
		}
		if rep.MaxLatencyCycles < 1 {
			t.Errorf("%s: max latency %d", gen.Name, rep.MaxLatencyCycles)
		}
	}
}

func TestAnalyzeImplementationErrors(t *testing.T) {
	cg := workloads.MPEG4()
	// Missing implementations must error.
	ig := impl.New(cg)
	if _, err := AnalyzeImplementation(ig, params018()); err == nil {
		t.Error("empty implementation should error")
	}
	bad := params018()
	bad.VelocityMMPerNS = 0
	lib := workloads.MPEG4Technology().Library()
	full, _, err := p2p.Synthesize(cg, lib, p2p.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeImplementation(full, bad); err == nil {
		t.Error("invalid params should error")
	}
	_ = model.ChannelID(0)
}

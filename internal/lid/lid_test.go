package lid

import (
	"math"
	"testing"

	"repro/internal/soc"
	"repro/internal/workloads"
)

func params018() Params {
	return ParamsFor(DSMGenerations()[0], 4)
}

func TestValidate(t *testing.T) {
	p := params018()
	if err := p.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := p
	bad.ClockPeriodNS = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero clock should be rejected")
	}
	bad = p
	bad.Tech.LCrit = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero l_crit should be rejected")
	}
	bad = p
	bad.LatchCost = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative cost should be rejected")
	}
}

func TestPerClockReach(t *testing.T) {
	p := Params{Tech: soc.Tech180nm(), ClockPeriodNS: 2, VelocityMMPerNS: 3}
	if got := p.PerClockReach(); got != 6 {
		t.Errorf("reach = %v, want 6", got)
	}
}

func TestPlanSingleCycle(t *testing.T) {
	// Reach 12 mm at 0.18 µm: a 4.25 mm channel is single cycle with
	// the plain ⌊d/l_crit⌋ = 7 buffers and no latches.
	plan := params018().Plan(4.25)
	if plan.Buffers != 7 || plan.RelayStations != 0 || plan.LatencyCycles != 1 {
		t.Errorf("plan = %+v, want 7 buffers, 0 relays, 1 cycle", plan)
	}
	if plan.Cost != 7 {
		t.Errorf("cost = %v, want 7", plan.Cost)
	}
}

func TestPlanMultiCycle(t *testing.T) {
	// 0.13 µm: reach 3 mm, l_crit 0.45 mm. A 4.25 mm channel needs
	// ⌈4.25/3⌉−1 = 1 relay station and ⌊4.25/0.45⌋ = 9 repeater sites,
	// one of which becomes the relay.
	p := ParamsFor(DSMGenerations()[1], 4)
	plan := p.Plan(4.25)
	if plan.RelayStations != 1 {
		t.Errorf("relays = %d, want 1", plan.RelayStations)
	}
	if plan.Buffers != 8 {
		t.Errorf("buffers = %d, want 8 (9 sites − 1 relay)", plan.Buffers)
	}
	if plan.LatencyCycles != 2 {
		t.Errorf("latency = %d cycles, want 2", plan.LatencyCycles)
	}
	if want := 8.0 + 4.0; plan.Cost != want {
		t.Errorf("cost = %v, want %v", plan.Cost, want)
	}
}

func TestPlanRelayDominated(t *testing.T) {
	// Pathological: reach shorter than l_crit — every segment boundary
	// is a relay and extra stations subsume the repeater count.
	p := Params{
		Tech:            soc.Technology{Name: "x", LCrit: 2.0, WireBandwidth: 1},
		ClockPeriodNS:   1,
		VelocityMMPerNS: 0.5, // reach 0.5 < l_crit 2.0
		BufferCost:      1,
		LatchCost:       4,
	}
	plan := p.Plan(2.0)
	// ⌈2/0.5⌉−1 = 3 relays > ⌊2/2⌋ = 1 repeater.
	if plan.RelayStations != 3 || plan.Buffers != 0 {
		t.Errorf("plan = %+v, want 3 relays, 0 buffers", plan)
	}
	if plan.LatencyCycles != 4 {
		t.Errorf("latency = %d, want 4", plan.LatencyCycles)
	}
}

func TestPlanBoundaries(t *testing.T) {
	p := params018()
	zero := p.Plan(0)
	if zero.Buffers != 0 || zero.RelayStations != 0 || zero.LatencyCycles != 1 {
		t.Errorf("zero-length plan = %+v", zero)
	}
	neg := p.Plan(-5)
	if neg.Buffers != 0 || neg.Cost != 0 {
		t.Errorf("negative-length plan = %+v", neg)
	}
	// Distance exactly equal to the reach stays single cycle.
	exact := p.Plan(p.PerClockReach())
	if exact.RelayStations != 0 {
		t.Errorf("at-reach plan = %+v, want 0 relays", exact)
	}
}

func TestAnalyzeMPEG4At018MatchesPaperAssumption(t *testing.T) {
	// The paper's Figure 5 result holds "as long as all links on the
	// chip have a delay smaller than the clock period": at 0.18 µm the
	// LID analysis must report single-cycle operation and exactly the
	// 55 stateless repeaters.
	cg := workloads.MPEG4()
	rep, err := Analyze(cg, params018())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SingleCycle() {
		t.Errorf("0.18 µm should be single cycle; max latency %d", rep.MaxLatencyCycles)
	}
	if rep.TotalBuffers != workloads.MPEG4ExpectedRepeaters || rep.TotalRelays != 0 {
		t.Errorf("buffers/relays = %d/%d, want 55/0", rep.TotalBuffers, rep.TotalRelays)
	}
}

func TestAnalyzeMPEG4DSMSweepMonotone(t *testing.T) {
	// Shrinking the technology must monotonically increase relay
	// stations and worst-case latency — the paper's DSM prediction.
	cg := workloads.MPEG4()
	prevRelays, prevLatency := -1, 0
	for _, gen := range DSMGenerations() {
		rep, err := Analyze(cg, ParamsFor(gen, 4))
		if err != nil {
			t.Fatal(err)
		}
		if rep.TotalRelays < prevRelays {
			t.Errorf("%s: relays decreased: %d < %d", gen.Name, rep.TotalRelays, prevRelays)
		}
		if rep.MaxLatencyCycles < prevLatency {
			t.Errorf("%s: latency decreased: %d < %d", gen.Name, rep.MaxLatencyCycles, prevLatency)
		}
		prevRelays, prevLatency = rep.TotalRelays, rep.MaxLatencyCycles
	}
	// The deepest node must actually need relay stations.
	last, err := Analyze(cg, ParamsFor(DSMGenerations()[3], 4))
	if err != nil {
		t.Fatal(err)
	}
	if last.TotalRelays == 0 {
		t.Error("65nm should require relay stations on a ~6mm die")
	}
	if last.SingleCycle() {
		t.Error("65nm should not be single cycle")
	}
}

func TestAnalyzeCostWeights(t *testing.T) {
	cg := workloads.MPEG4()
	cheap, err := Analyze(cg, ParamsFor(DSMGenerations()[2], 1))
	if err != nil {
		t.Fatal(err)
	}
	costly, err := Analyze(cg, ParamsFor(DSMGenerations()[2], 10))
	if err != nil {
		t.Fatal(err)
	}
	wantDiff := 9 * float64(cheap.TotalRelays)
	if math.Abs((costly.TotalCost-cheap.TotalCost)-wantDiff) > 1e-9 {
		t.Errorf("latch premium not reflected: diff = %v, want %v",
			costly.TotalCost-cheap.TotalCost, wantDiff)
	}
}

func TestAnalyzeRejectsBadInputs(t *testing.T) {
	cg := workloads.MPEG4()
	bad := params018()
	bad.VelocityMMPerNS = 0
	if _, err := Analyze(cg, bad); err == nil {
		t.Error("invalid params should error")
	}
}

package graph

import (
	"container/heap"
	"fmt"
	"math"
)

// WeightFunc assigns a non-negative traversal cost to an arc. Returning
// +Inf makes the arc impassable, which callers use to mask arcs whose
// library link cannot satisfy a bandwidth requirement.
type WeightFunc func(ArcID) float64

// ShortestPath runs Dijkstra's algorithm from src to dst under w and
// returns the minimum-cost path. The boolean result is false when dst is
// unreachable. It panics if w returns a negative weight, because
// Dijkstra's invariants do not hold then and a silent wrong answer would
// be worse than a crash.
func (g *Digraph) ShortestPath(src, dst VertexID, w WeightFunc) (Path, float64, bool) {
	dist, prevArc, ok := g.dijkstra(src, dst, w)
	if !ok {
		return Path{}, math.Inf(1), false
	}
	// Reconstruct backwards.
	var rvert []VertexID
	var rarcs []ArcID
	at := dst
	rvert = append(rvert, at)
	for at != src {
		id := prevArc[at]
		rarcs = append(rarcs, id)
		at = g.Arc(id).From
		rvert = append(rvert, at)
	}
	// Reverse.
	for i, j := 0, len(rvert)-1; i < j; i, j = i+1, j-1 {
		rvert[i], rvert[j] = rvert[j], rvert[i]
	}
	for i, j := 0, len(rarcs)-1; i < j; i, j = i+1, j-1 {
		rarcs[i], rarcs[j] = rarcs[j], rarcs[i]
	}
	return Path{Vertices: rvert, Arcs: rarcs}, dist[dst], true
}

// Distances returns the Dijkstra distance from src to every vertex
// (+Inf where unreachable).
func (g *Digraph) Distances(src VertexID, w WeightFunc) []float64 {
	dist, _, _ := g.dijkstra(src, -1, w)
	return dist
}

func (g *Digraph) dijkstra(src, dst VertexID, w WeightFunc) (dist []float64, prevArc []ArcID, reached bool) {
	n := g.NumVertices()
	dist = make([]float64, n)
	prevArc = make([]ArcID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevArc[i] = -1
	}
	if !g.HasVertex(src) {
		return dist, prevArc, false
	}
	dist[src] = 0
	pq := &vertexHeap{items: []heapItem{{v: src, d: 0}}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		v := it.v
		if done[v] {
			continue
		}
		done[v] = true
		if v == dst {
			return dist, prevArc, true
		}
		for _, id := range g.Out(v) {
			weight := w(id)
			if weight < 0 {
				panic(fmt.Sprintf("graph: negative arc weight %g on arc %d", weight, id))
			}
			if math.IsInf(weight, 1) {
				continue
			}
			to := g.Arc(id).To
			if nd := dist[v] + weight; nd < dist[to] {
				dist[to] = nd
				prevArc[to] = id
				heap.Push(pq, heapItem{v: to, d: nd})
			}
		}
	}
	if dst < 0 {
		return dist, prevArc, true
	}
	return dist, prevArc, done[dst]
}

type heapItem struct {
	v VertexID
	d float64
}

type vertexHeap struct {
	items []heapItem
}

func (h *vertexHeap) Len() int           { return len(h.items) }
func (h *vertexHeap) Less(i, j int) bool { return h.items[i].d < h.items[j].d }
func (h *vertexHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *vertexHeap) Push(x interface{}) { h.items = append(h.items, x.(heapItem)) }
func (h *vertexHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

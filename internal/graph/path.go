package graph

import "fmt"

// Path is the alternating sequence of Definition 2.3: distinct vertices
// v₁, a₁, v₂, …, a_{Q−1}, v_Q where arc aᵢ goes from vᵢ to vᵢ₊₁. A path
// with a single vertex and no arcs is valid (the trivial path).
type Path struct {
	Vertices []VertexID
	Arcs     []ArcID
}

// Validate checks that the path is structurally consistent with g:
// lengths line up, every arc connects its neighbouring vertices, and all
// vertices are distinct (paths are simple per Def. 2.3).
func (p Path) Validate(g *Digraph) error {
	if len(p.Vertices) == 0 {
		return fmt.Errorf("graph: empty path")
	}
	if len(p.Arcs) != len(p.Vertices)-1 {
		return fmt.Errorf("graph: path has %d vertices but %d arcs", len(p.Vertices), len(p.Arcs))
	}
	seen := make(map[VertexID]bool, len(p.Vertices))
	for _, v := range p.Vertices {
		if !g.HasVertex(v) {
			return fmt.Errorf("graph: path vertex %d not in graph", v)
		}
		if seen[v] {
			return fmt.Errorf("graph: path repeats vertex %d", v)
		}
		seen[v] = true
	}
	for i, id := range p.Arcs {
		if !g.HasArcID(id) {
			return fmt.Errorf("graph: path arc %d not in graph", id)
		}
		a := g.Arc(id)
		if a.From != p.Vertices[i] || a.To != p.Vertices[i+1] {
			return fmt.Errorf("graph: path arc %d connects %d→%d, expected %d→%d",
				id, a.From, a.To, p.Vertices[i], p.Vertices[i+1])
		}
	}
	return nil
}

// Source returns the first vertex of the path.
func (p Path) Source() VertexID { return p.Vertices[0] }

// Target returns the last vertex of the path.
func (p Path) Target() VertexID { return p.Vertices[len(p.Vertices)-1] }

// Len returns the number of arcs in the path.
func (p Path) Len() int { return len(p.Arcs) }

// Interior returns the vertices strictly between source and target.
func (p Path) Interior() []VertexID {
	if len(p.Vertices) <= 2 {
		return nil
	}
	return p.Vertices[1 : len(p.Vertices)-1]
}

// SubPathTo returns the prefix of p up to (and including) vertex v,
// mirroring sub(q, vⱼ) of Definition 2.3. It returns false if v is not
// on the path.
func (p Path) SubPathTo(v VertexID) (Path, bool) {
	for i, u := range p.Vertices {
		if u == v {
			return Path{
				Vertices: p.Vertices[:i+1],
				Arcs:     p.Arcs[:i],
			}, true
		}
	}
	return Path{}, false
}

// String renders the path as "v0 -> v1 -> v2".
func (p Path) String() string {
	s := ""
	for i, v := range p.Vertices {
		if i > 0 {
			s += " -> "
		}
		s += fmt.Sprint(v)
	}
	return s
}

// SimplePaths enumerates all simple paths from src to dst whose interior
// vertices all satisfy allowInterior (src and dst are exempt). The
// enumeration stops early once limit paths have been found; limit <= 0
// means unlimited. This powers the Definition 2.4 satisfaction checker,
// where interior vertices must be communication vertices.
func (g *Digraph) SimplePaths(src, dst VertexID, allowInterior func(VertexID) bool, limit int) []Path {
	if !g.HasVertex(src) || !g.HasVertex(dst) || src == dst {
		return nil
	}
	var out []Path
	onPath := make([]bool, g.NumVertices())
	var vertStack []VertexID
	var arcStack []ArcID

	var rec func(v VertexID) bool // returns false to abort (limit hit)
	rec = func(v VertexID) bool {
		onPath[v] = true
		vertStack = append(vertStack, v)
		defer func() {
			onPath[v] = false
			vertStack = vertStack[:len(vertStack)-1]
		}()
		for _, id := range g.Out(v) {
			w := g.Arc(id).To
			if onPath[w] {
				continue
			}
			if w == dst {
				p := Path{
					Vertices: append(append([]VertexID(nil), vertStack...), dst),
					Arcs:     append(append([]ArcID(nil), arcStack...), id),
				}
				out = append(out, p)
				if limit > 0 && len(out) >= limit {
					return false
				}
				continue
			}
			if allowInterior != nil && !allowInterior(w) {
				continue
			}
			arcStack = append(arcStack, id)
			ok := rec(w)
			arcStack = arcStack[:len(arcStack)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	rec(src)
	return out
}

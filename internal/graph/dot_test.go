package graph

import (
	"fmt"
	"testing"
)

// The DOT renderer is part of the deterministic-output contract the
// mapiter analyzer guards: two renders of the same graph must match
// byte for byte, and the emission order is vertex/arc ID order.
func TestDotGoldenAndByteStable(t *testing.T) {
	g := NewDigraph(3)
	a0, _ := g.AddArc(0, 1)
	a1, _ := g.AddArc(1, 2)
	_, _ = g.AddArc(2, 0)

	opt := DotOptions{
		Name:        "cdcs",
		VertexLabel: func(v VertexID) string { return fmt.Sprintf("v%d", v) },
		ArcLabel: func(a ArcID) string {
			switch a {
			case a0:
				return "fast"
			case a1:
				return "slow"
			}
			return ""
		},
		ArcAttrs: func(a ArcID) string {
			if a == a1 {
				return "style=dashed"
			}
			return ""
		},
	}

	want := `digraph "cdcs" {
  n0 [label="v0"];
  n1 [label="v1"];
  n2 [label="v2"];
  n0 -> n1 [label="fast"];
  n1 -> n2 [label="slow", style=dashed];
  n2 -> n0;
}
`
	got := g.Dot(opt)
	if got != want {
		t.Errorf("Dot output drifted from golden:\ngot:\n%s\nwant:\n%s", got, want)
	}
	for i := 0; i < 10; i++ {
		if again := g.Dot(opt); again != got {
			t.Fatalf("run %d: Dot output differs between identical runs:\n%s\nvs\n%s", i, got, again)
		}
	}
}

package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildRandom constructs a digraph from a quick-generated adjacency
// recipe: sizes are clamped to keep the checks fast.
func buildRandom(seed int64, nRaw, mRaw uint8) *Digraph {
	n := int(nRaw%12) + 1
	m := int(mRaw % 40)
	r := rand.New(rand.NewSource(seed))
	g := NewDigraph(n)
	for e := 0; e < m; e++ {
		u := VertexID(r.Intn(n))
		v := VertexID(r.Intn(n))
		if u != v {
			g.MustAddArc(u, v)
		}
	}
	return g
}

// Property: every arc's endpoints are valid and the in/out adjacency
// lists are mutually consistent.
func TestAdjacencyConsistencyProperty(t *testing.T) {
	f := func(seed int64, n, m uint8) bool {
		g := buildRandom(seed, n, m)
		for id := 0; id < g.NumArcs(); id++ {
			a := g.Arc(ArcID(id))
			if !g.HasVertex(a.From) || !g.HasVertex(a.To) {
				return false
			}
			foundOut, foundIn := false, false
			for _, o := range g.Out(a.From) {
				if o == ArcID(id) {
					foundOut = true
				}
			}
			for _, i := range g.In(a.To) {
				if i == ArcID(id) {
					foundIn = true
				}
			}
			if !foundOut || !foundIn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Σ out-degrees = Σ in-degrees = number of arcs.
func TestDegreeSumProperty(t *testing.T) {
	f := func(seed int64, n, m uint8) bool {
		g := buildRandom(seed, n, m)
		outSum, inSum := 0, 0
		for v := 0; v < g.NumVertices(); v++ {
			outSum += g.OutDegree(VertexID(v))
			inSum += g.InDegree(VertexID(v))
		}
		return outSum == g.NumArcs() && inSum == g.NumArcs()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: weakly connected components partition the vertices, and
// every arc stays within one component.
func TestComponentsPartitionProperty(t *testing.T) {
	f := func(seed int64, n, m uint8) bool {
		g := buildRandom(seed, n, m)
		comp, count := g.WeaklyConnectedComponents()
		for _, c := range comp {
			if c < 0 || c >= count {
				return false
			}
		}
		for id := 0; id < g.NumArcs(); id++ {
			a := g.Arc(ArcID(id))
			if comp[a.From] != comp[a.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every path returned by SimplePaths validates and respects
// the interior filter.
func TestSimplePathsValidProperty(t *testing.T) {
	f := func(seed int64, n, m uint8, srcRaw, dstRaw uint8) bool {
		g := buildRandom(seed, n, m)
		nv := g.NumVertices()
		src := VertexID(int(srcRaw) % nv)
		dst := VertexID(int(dstRaw) % nv)
		allow := func(v VertexID) bool { return v%2 == 0 }
		for _, p := range g.SimplePaths(src, dst, allow, 50) {
			if err := p.Validate(g); err != nil {
				return false
			}
			if p.Source() != src || p.Target() != dst {
				return false
			}
			for _, v := range p.Interior() {
				if !allow(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Dijkstra distances satisfy the triangle property along
// arcs: dist(to) ≤ dist(from) + w(arc).
func TestDijkstraRelaxationProperty(t *testing.T) {
	f := func(seed int64, n, m uint8) bool {
		g := buildRandom(seed, n, m)
		r := rand.New(rand.NewSource(seed ^ 0x5a5a))
		w := make([]float64, g.NumArcs())
		for i := range w {
			w[i] = r.Float64() * 10
		}
		dist := g.Distances(0, func(id ArcID) float64 { return w[id] })
		for id := 0; id < g.NumArcs(); id++ {
			a := g.Arc(ArcID(id))
			if dist[a.From]+w[id] < dist[a.To]-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkDijkstraGrid(b *testing.B) {
	// 30×30 grid graph.
	const side = 30
	g := NewDigraph(side * side)
	at := func(r, c int) VertexID { return VertexID(r*side + c) }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				g.MustAddArc(at(r, c), at(r, c+1))
			}
			if r+1 < side {
				g.MustAddArc(at(r, c), at(r+1, c))
			}
		}
	}
	w := func(ArcID) float64 { return 1 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := g.ShortestPath(0, VertexID(side*side-1), w); !ok {
			b.Fatal("unreachable")
		}
	}
}

package graph

import (
	"fmt"
	"strings"
)

// DotOptions customizes DOT (Graphviz) rendering of a Digraph. All
// callbacks may be nil, in which case IDs are used as labels and no extra
// attributes are emitted.
type DotOptions struct {
	// Name is the graph name; empty means "G".
	Name string
	// VertexLabel returns the label for a vertex.
	VertexLabel func(VertexID) string
	// VertexAttrs returns extra DOT attributes (e.g. `shape=box`).
	VertexAttrs func(VertexID) string
	// ArcLabel returns the label for an arc.
	ArcLabel func(ArcID) string
	// ArcAttrs returns extra DOT attributes (e.g. `style=dashed`).
	ArcAttrs func(ArcID) string
}

// Dot renders the graph in Graphviz DOT syntax. The output is stable:
// vertices and arcs are emitted in ID order.
func (g *Digraph) Dot(opt DotOptions) string {
	name := opt.Name
	if name == "" {
		name = "G"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n", quoteDotID(name))
	for v := 0; v < g.NumVertices(); v++ {
		id := VertexID(v)
		label := fmt.Sprint(v)
		if opt.VertexLabel != nil {
			label = opt.VertexLabel(id)
		}
		attrs := fmt.Sprintf("label=%s", quoteDotID(label))
		if opt.VertexAttrs != nil {
			if extra := opt.VertexAttrs(id); extra != "" {
				attrs += ", " + extra
			}
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", v, attrs)
	}
	for i := 0; i < g.NumArcs(); i++ {
		id := ArcID(i)
		a := g.Arc(id)
		var attrs []string
		if opt.ArcLabel != nil {
			if label := opt.ArcLabel(id); label != "" {
				attrs = append(attrs, fmt.Sprintf("label=%s", quoteDotID(label)))
			}
		}
		if opt.ArcAttrs != nil {
			if extra := opt.ArcAttrs(id); extra != "" {
				attrs = append(attrs, extra)
			}
		}
		if len(attrs) > 0 {
			fmt.Fprintf(&b, "  n%d -> n%d [%s];\n", a.From, a.To, strings.Join(attrs, ", "))
		} else {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", a.From, a.To)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func quoteDotID(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
}

// Package graph is the hand-rolled directed-multigraph kernel underneath
// the CDCS data structures (constraint graphs and implementation graphs).
// It is deliberately minimal and allocation-friendly: vertices and arcs
// are dense integer IDs, attributes live in caller-owned parallel slices,
// and all traversals are iterative.
//
// The package supports multi-arcs (several distinct arcs between the same
// ordered vertex pair), which the model needs: a module may communicate
// with another through multiple unidirectional channels, and an
// implementation graph may instantiate parallel links between the same
// two communication vertices (K-way arc duplication, Def. 2.7).
package graph

import "fmt"

// VertexID identifies a vertex of a Digraph. IDs are dense: the n-th
// added vertex has ID n-1.
type VertexID int

// ArcID identifies an arc of a Digraph. IDs are dense in insertion order.
type ArcID int

// Arc is a directed connection between two vertices.
type Arc struct {
	From, To VertexID
}

// Digraph is a directed multigraph. The zero value is an empty graph
// ready to use.
type Digraph struct {
	arcs []Arc
	out  [][]ArcID
	in   [][]ArcID
}

// NewDigraph returns a graph pre-sized for n vertices (all isolated).
func NewDigraph(n int) *Digraph {
	g := &Digraph{}
	for i := 0; i < n; i++ {
		g.AddVertex()
	}
	return g
}

// NumVertices returns the number of vertices added so far.
func (g *Digraph) NumVertices() int { return len(g.out) }

// NumArcs returns the number of arcs added so far.
func (g *Digraph) NumArcs() int { return len(g.arcs) }

// AddVertex adds an isolated vertex and returns its ID.
func (g *Digraph) AddVertex() VertexID {
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return VertexID(len(g.out) - 1)
}

// AddArc adds a directed arc from u to v and returns its ID. Parallel
// arcs are allowed; self-loops are rejected because neither constraint
// graphs (a port does not talk to itself) nor implementation graphs
// (a link connects two distinct endpoints) use them.
func (g *Digraph) AddArc(u, v VertexID) (ArcID, error) {
	if err := g.checkVertex(u); err != nil {
		return 0, err
	}
	if err := g.checkVertex(v); err != nil {
		return 0, err
	}
	if u == v {
		return 0, fmt.Errorf("graph: self-loop on vertex %d rejected", u)
	}
	id := ArcID(len(g.arcs))
	g.arcs = append(g.arcs, Arc{From: u, To: v})
	g.out[u] = append(g.out[u], id)
	g.in[v] = append(g.in[v], id)
	return id, nil
}

// MustAddArc is AddArc for programmatic construction where the arguments
// are known valid; it panics on error.
func (g *Digraph) MustAddArc(u, v VertexID) ArcID {
	id, err := g.AddArc(u, v)
	if err != nil {
		panic(err)
	}
	return id
}

// Arc returns the endpoints of arc id.
func (g *Digraph) Arc(id ArcID) Arc {
	return g.arcs[id]
}

// HasVertex reports whether v is a valid vertex ID.
func (g *Digraph) HasVertex(v VertexID) bool {
	return v >= 0 && int(v) < len(g.out)
}

// HasArcID reports whether id is a valid arc ID.
func (g *Digraph) HasArcID(id ArcID) bool {
	return id >= 0 && int(id) < len(g.arcs)
}

// Out returns the IDs of arcs leaving v. The returned slice is owned by
// the graph and must not be modified.
func (g *Digraph) Out(v VertexID) []ArcID { return g.out[v] }

// In returns the IDs of arcs entering v. The returned slice is owned by
// the graph and must not be modified.
func (g *Digraph) In(v VertexID) []ArcID { return g.in[v] }

// OutDegree returns the number of arcs leaving v.
func (g *Digraph) OutDegree(v VertexID) int { return len(g.out[v]) }

// InDegree returns the number of arcs entering v.
func (g *Digraph) InDegree(v VertexID) int { return len(g.in[v]) }

// Degree returns the total number of arcs incident to v.
func (g *Digraph) Degree(v VertexID) int { return len(g.out[v]) + len(g.in[v]) }

// ArcsBetween returns the IDs of all arcs from u to v, in insertion order.
func (g *Digraph) ArcsBetween(u, v VertexID) []ArcID {
	var ids []ArcID
	for _, id := range g.out[u] {
		if g.arcs[id].To == v {
			ids = append(ids, id)
		}
	}
	return ids
}

// Arcs returns a snapshot of every arc, indexed by ArcID.
func (g *Digraph) Arcs() []Arc {
	out := make([]Arc, len(g.arcs))
	copy(out, g.arcs)
	return out
}

// Clone returns a deep copy of the graph.
func (g *Digraph) Clone() *Digraph {
	c := &Digraph{
		arcs: make([]Arc, len(g.arcs)),
		out:  make([][]ArcID, len(g.out)),
		in:   make([][]ArcID, len(g.in)),
	}
	copy(c.arcs, g.arcs)
	for i := range g.out {
		c.out[i] = append([]ArcID(nil), g.out[i]...)
		c.in[i] = append([]ArcID(nil), g.in[i]...)
	}
	return c
}

func (g *Digraph) checkVertex(v VertexID) error {
	if !g.HasVertex(v) {
		return fmt.Errorf("graph: vertex %d out of range [0, %d)", v, len(g.out))
	}
	return nil
}

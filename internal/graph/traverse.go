package graph

import "fmt"

// BFS visits every vertex reachable from src along arc directions, in
// breadth-first order, invoking visit for each. Returning false from
// visit stops the traversal.
func (g *Digraph) BFS(src VertexID, visit func(VertexID) bool) {
	if !g.HasVertex(src) {
		return
	}
	seen := make([]bool, g.NumVertices())
	queue := []VertexID{src}
	seen[src] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if !visit(v) {
			return
		}
		for _, id := range g.Out(v) {
			w := g.Arc(id).To
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
}

// DFS visits every vertex reachable from src along arc directions, in
// depth-first preorder, invoking visit for each. Returning false from
// visit stops the traversal.
func (g *Digraph) DFS(src VertexID, visit func(VertexID) bool) {
	if !g.HasVertex(src) {
		return
	}
	seen := make([]bool, g.NumVertices())
	stack := []VertexID{src}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[v] {
			continue
		}
		seen[v] = true
		if !visit(v) {
			return
		}
		// Push in reverse so the first out-arc is visited first.
		out := g.Out(v)
		for i := len(out) - 1; i >= 0; i-- {
			w := g.Arc(out[i]).To
			if !seen[w] {
				stack = append(stack, w)
			}
		}
	}
}

// Reachable returns the set of vertices reachable from src (including
// src itself), as a boolean slice indexed by VertexID.
func (g *Digraph) Reachable(src VertexID) []bool {
	reach := make([]bool, g.NumVertices())
	g.BFS(src, func(v VertexID) bool {
		reach[v] = true
		return true
	})
	return reach
}

// WeaklyConnectedComponents partitions the vertices into components of
// the underlying undirected graph. The result maps each VertexID to a
// component index in [0, count).
func (g *Digraph) WeaklyConnectedComponents() (comp []int, count int) {
	n := g.NumVertices()
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		queue := []VertexID{VertexID(s)}
		comp[s] = count
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			neighbors := func(ids []ArcID, pick func(Arc) VertexID) {
				for _, id := range ids {
					w := pick(g.Arc(id))
					if comp[w] < 0 {
						comp[w] = count
						queue = append(queue, w)
					}
				}
			}
			neighbors(g.Out(v), func(a Arc) VertexID { return a.To })
			neighbors(g.In(v), func(a Arc) VertexID { return a.From })
		}
		count++
	}
	return comp, count
}

// TopoSort returns the vertices in a topological order, or an error if
// the graph contains a directed cycle (Kahn's algorithm).
func (g *Digraph) TopoSort() ([]VertexID, error) {
	n := g.NumVertices()
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = g.InDegree(VertexID(v))
	}
	var queue []VertexID
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, VertexID(v))
		}
	}
	order := make([]VertexID, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, id := range g.Out(v) {
			w := g.Arc(id).To
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("graph: directed cycle detected (%d of %d vertices ordered)", len(order), n)
	}
	return order, nil
}

// HasCycle reports whether the graph contains a directed cycle.
func (g *Digraph) HasCycle() bool {
	_, err := g.TopoSort()
	return err != nil
}

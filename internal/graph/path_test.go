package graph

import (
	"strings"
	"testing"
)

func linePath(t *testing.T) (*Digraph, Path) {
	t.Helper()
	g := NewDigraph(4)
	a0 := g.MustAddArc(0, 1)
	a1 := g.MustAddArc(1, 2)
	a2 := g.MustAddArc(2, 3)
	return g, Path{Vertices: []VertexID{0, 1, 2, 3}, Arcs: []ArcID{a0, a1, a2}}
}

func TestPathValidateOK(t *testing.T) {
	g, p := linePath(t)
	if err := p.Validate(g); err != nil {
		t.Errorf("valid path rejected: %v", err)
	}
	if p.Source() != 0 || p.Target() != 3 || p.Len() != 3 {
		t.Errorf("path accessors wrong: %v", p)
	}
	interior := p.Interior()
	if len(interior) != 2 || interior[0] != 1 || interior[1] != 2 {
		t.Errorf("Interior = %v", interior)
	}
}

func TestPathValidateErrors(t *testing.T) {
	g, p := linePath(t)
	cases := []struct {
		name string
		path Path
	}{
		{"empty", Path{}},
		{"length mismatch", Path{Vertices: p.Vertices, Arcs: p.Arcs[:1]}},
		{"repeated vertex", Path{Vertices: []VertexID{0, 1, 0}, Arcs: []ArcID{p.Arcs[0], p.Arcs[0]}}},
		{"wrong endpoints", Path{Vertices: []VertexID{0, 2}, Arcs: []ArcID{p.Arcs[0]}}},
		{"unknown vertex", Path{Vertices: []VertexID{0, 9}, Arcs: []ArcID{p.Arcs[0]}}},
		{"unknown arc", Path{Vertices: []VertexID{0, 1}, Arcs: []ArcID{99}}},
	}
	for _, c := range cases {
		if err := c.path.Validate(g); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestSubPathTo(t *testing.T) {
	g, p := linePath(t)
	sub, ok := p.SubPathTo(2)
	if !ok {
		t.Fatal("SubPathTo(2) should exist")
	}
	if err := sub.Validate(g); err != nil {
		t.Errorf("sub-path invalid: %v", err)
	}
	if sub.Target() != 2 || sub.Len() != 2 {
		t.Errorf("sub-path = %v", sub)
	}
	if _, ok := p.SubPathTo(99); ok {
		t.Error("SubPathTo of absent vertex should fail")
	}
}

func TestPathString(t *testing.T) {
	_, p := linePath(t)
	if got := p.String(); got != "0 -> 1 -> 2 -> 3" {
		t.Errorf("String = %q", got)
	}
}

func TestSimplePathsDiamond(t *testing.T) {
	g := NewDigraph(4)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 3)
	g.MustAddArc(0, 2)
	g.MustAddArc(2, 3)
	paths := g.SimplePaths(0, 3, nil, 0)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	for _, p := range paths {
		if err := p.Validate(g); err != nil {
			t.Errorf("path %v invalid: %v", p, err)
		}
	}
}

func TestSimplePathsInteriorFilter(t *testing.T) {
	g := NewDigraph(4)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 3)
	g.MustAddArc(0, 2)
	g.MustAddArc(2, 3)
	// Forbid vertex 1 as interior: only the 0→2→3 path remains.
	paths := g.SimplePaths(0, 3, func(v VertexID) bool { return v != 1 }, 0)
	if len(paths) != 1 {
		t.Fatalf("got %d paths, want 1", len(paths))
	}
	if paths[0].Vertices[1] != 2 {
		t.Errorf("surviving path = %v, want via vertex 2", paths[0])
	}
}

func TestSimplePathsLimit(t *testing.T) {
	// Complete-ish DAG with many paths; limit should cap the output.
	g := NewDigraph(6)
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 6; v++ {
			g.MustAddArc(VertexID(u), VertexID(v))
		}
	}
	all := g.SimplePaths(0, 5, nil, 0)
	if len(all) != 16 { // 2^(n-2) paths from 0 to 5 over 4 optional interior vertices
		t.Errorf("got %d paths, want 16", len(all))
	}
	capped := g.SimplePaths(0, 5, nil, 3)
	if len(capped) != 3 {
		t.Errorf("limited enumeration returned %d, want 3", len(capped))
	}
}

func TestSimplePathsParallelArcs(t *testing.T) {
	g := NewDigraph(2)
	g.MustAddArc(0, 1)
	g.MustAddArc(0, 1)
	paths := g.SimplePaths(0, 1, nil, 0)
	if len(paths) != 2 {
		t.Errorf("parallel arcs should yield 2 distinct paths, got %d", len(paths))
	}
}

func TestSimplePathsDegenerate(t *testing.T) {
	g := NewDigraph(2)
	g.MustAddArc(0, 1)
	if got := g.SimplePaths(0, 0, nil, 0); got != nil {
		t.Errorf("src==dst should return nil, got %v", got)
	}
	if got := g.SimplePaths(5, 1, nil, 0); got != nil {
		t.Errorf("invalid src should return nil, got %v", got)
	}
}

func TestDotOutput(t *testing.T) {
	g := NewDigraph(2)
	g.MustAddArc(0, 1)
	dot := g.Dot(DotOptions{
		Name:        "test",
		VertexLabel: func(v VertexID) string { return "V" + string(rune('A'+int(v))) },
		ArcLabel:    func(ArcID) string { return "ch" },
		ArcAttrs:    func(ArcID) string { return "style=dashed" },
	})
	for _, want := range []string{`digraph "test"`, `"VA"`, `"VB"`, `n0 -> n1`, `"ch"`, "style=dashed"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestDotQuotesEmbeddedQuotes(t *testing.T) {
	g := NewDigraph(1)
	dot := g.Dot(DotOptions{VertexLabel: func(VertexID) string { return `a"b` }})
	if !strings.Contains(dot, `\"`) {
		t.Errorf("embedded quotes not escaped:\n%s", dot)
	}
}

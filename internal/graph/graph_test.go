package graph

import (
	"math"
	"math/rand"
	"testing"
)

func buildDiamond(t *testing.T) (*Digraph, []ArcID) {
	// 0 -> 1 -> 3, 0 -> 2 -> 3
	t.Helper()
	g := NewDigraph(4)
	ids := []ArcID{
		g.MustAddArc(0, 1),
		g.MustAddArc(1, 3),
		g.MustAddArc(0, 2),
		g.MustAddArc(2, 3),
	}
	return g, ids
}

func TestAddVertexAndArc(t *testing.T) {
	g := &Digraph{}
	v0 := g.AddVertex()
	v1 := g.AddVertex()
	if v0 != 0 || v1 != 1 {
		t.Fatalf("vertex IDs = %d, %d; want 0, 1", v0, v1)
	}
	id, err := g.AddArc(v0, v1)
	if err != nil {
		t.Fatalf("AddArc: %v", err)
	}
	if a := g.Arc(id); a.From != v0 || a.To != v1 {
		t.Errorf("Arc = %+v", a)
	}
	if g.NumVertices() != 2 || g.NumArcs() != 1 {
		t.Errorf("counts = %d vertices, %d arcs", g.NumVertices(), g.NumArcs())
	}
}

func TestAddArcErrors(t *testing.T) {
	g := NewDigraph(2)
	if _, err := g.AddArc(0, 0); err == nil {
		t.Error("self-loop should be rejected")
	}
	if _, err := g.AddArc(0, 5); err == nil {
		t.Error("out-of-range target should be rejected")
	}
	if _, err := g.AddArc(-1, 0); err == nil {
		t.Error("negative source should be rejected")
	}
}

func TestParallelArcs(t *testing.T) {
	g := NewDigraph(2)
	a := g.MustAddArc(0, 1)
	b := g.MustAddArc(0, 1)
	if a == b {
		t.Error("parallel arcs must get distinct IDs")
	}
	between := g.ArcsBetween(0, 1)
	if len(between) != 2 {
		t.Errorf("ArcsBetween = %v, want 2 arcs", between)
	}
	if len(g.ArcsBetween(1, 0)) != 0 {
		t.Error("reverse direction should have no arcs")
	}
}

func TestDegrees(t *testing.T) {
	g, _ := buildDiamond(t)
	if g.OutDegree(0) != 2 || g.InDegree(0) != 0 {
		t.Errorf("vertex 0 degrees: out=%d in=%d", g.OutDegree(0), g.InDegree(0))
	}
	if g.OutDegree(3) != 0 || g.InDegree(3) != 2 {
		t.Errorf("vertex 3 degrees: out=%d in=%d", g.OutDegree(3), g.InDegree(3))
	}
	if g.Degree(1) != 2 {
		t.Errorf("vertex 1 total degree = %d, want 2", g.Degree(1))
	}
}

func TestClone(t *testing.T) {
	g, _ := buildDiamond(t)
	c := g.Clone()
	c.MustAddArc(3, 0)
	if g.NumArcs() == c.NumArcs() {
		t.Error("mutating clone affected original arc count")
	}
	if g.NumArcs() != 4 || c.NumArcs() != 5 {
		t.Errorf("arc counts: original=%d clone=%d", g.NumArcs(), c.NumArcs())
	}
}

func TestBFSOrder(t *testing.T) {
	g, _ := buildDiamond(t)
	var order []VertexID
	g.BFS(0, func(v VertexID) bool {
		order = append(order, v)
		return true
	})
	if len(order) != 4 || order[0] != 0 || order[3] != 3 {
		t.Errorf("BFS order = %v", order)
	}
}

func TestDFSVisitsAllReachable(t *testing.T) {
	g, _ := buildDiamond(t)
	g.AddVertex() // isolated vertex 4
	count := 0
	g.DFS(0, func(VertexID) bool { count++; return true })
	if count != 4 {
		t.Errorf("DFS visited %d vertices, want 4", count)
	}
}

func TestTraversalEarlyStop(t *testing.T) {
	g, _ := buildDiamond(t)
	count := 0
	g.BFS(0, func(VertexID) bool { count++; return false })
	if count != 1 {
		t.Errorf("BFS early stop visited %d, want 1", count)
	}
	count = 0
	g.DFS(0, func(VertexID) bool { count++; return false })
	if count != 1 {
		t.Errorf("DFS early stop visited %d, want 1", count)
	}
}

func TestReachable(t *testing.T) {
	g := NewDigraph(3)
	g.MustAddArc(0, 1)
	reach := g.Reachable(0)
	if !reach[0] || !reach[1] || reach[2] {
		t.Errorf("Reachable = %v", reach)
	}
}

func TestWeaklyConnectedComponents(t *testing.T) {
	g := NewDigraph(5)
	g.MustAddArc(0, 1)
	g.MustAddArc(2, 1) // 0,1,2 weakly connected
	g.MustAddArc(3, 4) // 3,4 separate
	comp, count := g.WeaklyConnectedComponents()
	if count != 2 {
		t.Fatalf("component count = %d, want 2", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Errorf("0,1,2 should share a component: %v", comp)
	}
	if comp[3] != comp[4] || comp[3] == comp[0] {
		t.Errorf("3,4 should share a separate component: %v", comp)
	}
}

func TestTopoSort(t *testing.T) {
	g, _ := buildDiamond(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	pos := make(map[VertexID]int)
	for i, v := range order {
		pos[v] = i
	}
	for _, a := range g.Arcs() {
		if pos[a.From] >= pos[a.To] {
			t.Errorf("arc %d→%d violates topological order %v", a.From, a.To, order)
		}
	}
	if g.HasCycle() {
		t.Error("diamond reported cyclic")
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := NewDigraph(2)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 0)
	if _, err := g.TopoSort(); err == nil {
		t.Error("cycle should make TopoSort fail")
	}
	if !g.HasCycle() {
		t.Error("HasCycle should report true")
	}
}

func TestShortestPath(t *testing.T) {
	g := NewDigraph(4)
	a01 := g.MustAddArc(0, 1)
	a13 := g.MustAddArc(1, 3)
	a03 := g.MustAddArc(0, 3)
	weights := map[ArcID]float64{a01: 1, a13: 1, a03: 5}
	w := func(id ArcID) float64 { return weights[id] }

	p, cost, ok := g.ShortestPath(0, 3, w)
	if !ok {
		t.Fatal("path should exist")
	}
	if cost != 2 {
		t.Errorf("cost = %v, want 2", cost)
	}
	if err := p.Validate(g); err != nil {
		t.Errorf("returned path invalid: %v", err)
	}
	if p.Len() != 2 || p.Source() != 0 || p.Target() != 3 {
		t.Errorf("path = %v", p)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := NewDigraph(3)
	g.MustAddArc(0, 1)
	if _, _, ok := g.ShortestPath(0, 2, func(ArcID) float64 { return 1 }); ok {
		t.Error("vertex 2 should be unreachable")
	}
}

func TestShortestPathInfiniteWeightMasks(t *testing.T) {
	g := NewDigraph(3)
	blocked := g.MustAddArc(0, 2)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 2)
	w := func(id ArcID) float64 {
		if id == blocked {
			return inf()
		}
		return 1
	}
	p, cost, ok := g.ShortestPath(0, 2, w)
	if !ok || cost != 2 || p.Len() != 2 {
		t.Errorf("masked path = %v cost=%v ok=%v; want 2-arc detour", p, cost, ok)
	}
}

func TestShortestPathNegativePanics(t *testing.T) {
	g := NewDigraph(2)
	g.MustAddArc(0, 1)
	defer func() {
		if recover() == nil {
			t.Error("negative weight should panic")
		}
	}()
	g.ShortestPath(0, 1, func(ArcID) float64 { return -1 })
}

func TestDistances(t *testing.T) {
	g := NewDigraph(3)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 2)
	d := g.Distances(0, func(ArcID) float64 { return 2 })
	if d[0] != 0 || d[1] != 2 || d[2] != 4 {
		t.Errorf("Distances = %v", d)
	}
}

// Property-style test: Dijkstra distance matches BFS hop count on random
// graphs when all weights are 1.
func TestDijkstraMatchesBFSHops(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(15)
		g := NewDigraph(n)
		for e := 0; e < n*2; e++ {
			u := VertexID(r.Intn(n))
			v := VertexID(r.Intn(n))
			if u != v {
				g.MustAddArc(u, v)
			}
		}
		src := VertexID(r.Intn(n))
		dist := g.Distances(src, func(ArcID) float64 { return 1 })
		// BFS hop counts.
		hops := make([]int, n)
		for i := range hops {
			hops[i] = -1
		}
		hops[src] = 0
		queue := []VertexID{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, id := range g.Out(v) {
				w := g.Arc(id).To
				if hops[w] < 0 {
					hops[w] = hops[v] + 1
					queue = append(queue, w)
				}
			}
		}
		for v := 0; v < n; v++ {
			if hops[v] < 0 {
				if !isInf(dist[v]) {
					t.Fatalf("trial %d: vertex %d unreachable by BFS but dist=%v", trial, v, dist[v])
				}
				continue
			}
			if dist[v] != float64(hops[v]) {
				t.Fatalf("trial %d: vertex %d dist=%v hops=%d", trial, v, dist[v], hops[v])
			}
		}
	}
}

func inf() float64 { return math.Inf(1) }

func isInf(v float64) bool { return math.IsInf(v, 1) }

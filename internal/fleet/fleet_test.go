package fleet

import (
	"fmt"
	"testing"
)

func mustNew(t *testing.T, self string, peers []string) *Router {
	t.Helper()
	r, err := New(self, peers)
	if err != nil {
		t.Fatalf("New(%q, %v): %v", self, peers, err)
	}
	return r
}

func threeReplicas() []string {
	return []string{
		"http://127.0.0.1:18181",
		"http://127.0.0.1:18182",
		"http://127.0.0.1:18183",
	}
}

func TestNewNormalizesAndIncludesSelf(t *testing.T) {
	r := mustNew(t, " http://a:1/ ", []string{"http://b:2", "http://a:1", "http://b:2/", ""})
	want := []string{"http://a:1", "http://b:2"}
	got := r.Peers()
	if len(got) != len(want) {
		t.Fatalf("Peers() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Peers() = %v, want %v", got, want)
		}
	}
	if r.Self() != "http://a:1" {
		t.Errorf("Self() = %q, want normalized http://a:1", r.Self())
	}
	if others := r.Others(); len(others) != 1 || others[0] != "http://b:2" {
		t.Errorf("Others() = %v, want [http://b:2]", others)
	}
	// Self absent from the peer list is added, not an error.
	r2 := mustNew(t, "http://c:3", []string{"http://a:1"})
	if len(r2.Peers()) != 2 {
		t.Errorf("self not folded into membership: %v", r2.Peers())
	}
}

func TestNewRejectsEmptySelf(t *testing.T) {
	if _, err := New("  ", []string{"http://a:1"}); err == nil {
		t.Fatal("New with empty self must fail")
	}
}

// TestRouteAgreement is the property the fleet depends on: every
// replica, constructed with its own self but the same membership,
// computes the same owner for every key.
func TestRouteAgreement(t *testing.T) {
	peers := threeReplicas()
	routers := make([]*Router, len(peers))
	for i, self := range peers {
		routers[i] = mustNew(t, self, peers)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("wan:%d", i)
		owner := routers[0].Route(key)
		for _, r := range routers[1:] {
			if got := r.Route(key); got != owner {
				t.Fatalf("replicas disagree on key %q: %q vs %q", key, owner, got)
			}
		}
		if routers[0].Owns(key) != (owner == routers[0].Self()) {
			t.Fatalf("Owns(%q) inconsistent with Route", key)
		}
	}
}

// TestRouteBalance: each of three peers should own roughly a third of
// a large key set. The bound is loose (>=20% each) — the test guards
// against degenerate hashing (one peer owning everything), not exact
// uniformity.
func TestRouteBalance(t *testing.T) {
	r := mustNew(t, threeReplicas()[0], threeReplicas())
	const n = 30000
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		counts[r.Route(fmt.Sprintf("job-%d", i))]++
	}
	if len(counts) != 3 {
		t.Fatalf("only %d of 3 peers own keys: %v", len(counts), counts)
	}
	for _, p := range r.Peers() {
		if c := counts[p]; c < n/5 {
			t.Errorf("peer %s owns %d of %d keys (< 20%%): degenerate distribution %v", p, c, n, counts)
		}
	}
}

// TestMinimalDisruption: removing one peer must reassign only the keys
// it owned — rendezvous hashing's defining property.
func TestMinimalDisruption(t *testing.T) {
	peers := threeReplicas()
	full := mustNew(t, peers[0], peers)
	reduced := mustNew(t, peers[0], peers[:2]) // peers[2] removed
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("job-%d", i)
		before := full.Route(key)
		after := reduced.Route(key)
		if before != peers[2] && after != before {
			t.Fatalf("key %q moved from %q to %q although its owner was not removed", key, before, after)
		}
		if before == peers[2] && after == peers[2] {
			t.Fatalf("key %q still routed to removed peer", key)
		}
	}
}

// TestRouteDeterministicAcrossConstruction: the score function has no
// process-local state, so two routers with identical membership agree
// byte-for-byte.
func TestRouteDeterministicAcrossConstruction(t *testing.T) {
	a := mustNew(t, "http://x:1", []string{"http://x:1", "http://y:2"})
	b := mustNew(t, "http://y:2", []string{"http://y:2", "http://x:1"})
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		if a.Route(key) != b.Route(key) {
			t.Fatalf("construction order changed routing for %q", key)
		}
	}
}

func TestSinglePeerFleet(t *testing.T) {
	r := mustNew(t, "http://a:1", nil)
	if !r.Owns("anything") {
		t.Error("single-replica fleet must own every key")
	}
	if len(r.Others()) != 0 {
		t.Errorf("Others() = %v, want empty", r.Others())
	}
}

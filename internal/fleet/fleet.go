// Package fleet makes a set of cdcsd replicas agree on which one owns
// a job without talking to each other: rendezvous (highest-random-
// weight) hashing over a static peer list. Every replica is configured
// with the same `-peers` list and its own `-self` address; Route(key)
// then evaluates the same pure function everywhere, so any replica can
// compute any job's owner locally — no coordinator, no gossip, no
// shared state.
//
// Rendezvous hashing was chosen over a hash ring because the peer sets
// here are small (a handful of replicas) and it gives the two
// properties the serving layer needs with no tuning knobs:
//
//   - balance: each peer owns an even share of the key space (each
//     key independently picks the peer with the highest score), and
//   - minimal disruption: removing a peer reassigns only the keys it
//     owned — every other key keeps its owner, so a restarting
//     replica does not reshuffle the fleet's cache/WAL locality.
//
// The score is FNV-1a over "peer\x00key" passed through a splitmix64
// finalizer: FNV alone clusters badly on shared prefixes (peer
// addresses differ only in the port), the finalizer's avalanche fixes
// that. The function is deterministic across processes and platforms,
// which is what lets N independently-started daemons agree.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Router answers "which replica owns this key" for one static fleet.
// It is immutable after New and safe for concurrent use.
type Router struct {
	self  string
	peers []string // normalized, deduplicated, sorted; includes self
}

// New builds a Router for the fleet in peers, identifying this replica
// as self. Addresses are normalized (trimmed, trailing slash dropped)
// and deduplicated; self is added to the set if the list omits it. An
// empty self is an error — a replica that cannot name itself cannot
// tell forwarded traffic from its own.
func New(self string, peers []string) (*Router, error) {
	self = normalize(self)
	if self == "" {
		return nil, fmt.Errorf("fleet: empty self address")
	}
	seen := map[string]bool{self: true}
	out := []string{self}
	for _, p := range peers {
		p = normalize(p)
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	sort.Strings(out)
	return &Router{self: self, peers: out}, nil
}

// normalize canonicalizes one peer address so that configuration
// spelling ("http://a:1/" vs "http://a:1") cannot split the fleet's
// view of the key space.
func normalize(addr string) string {
	return strings.TrimSuffix(strings.TrimSpace(addr), "/")
}

// Self returns this replica's normalized address.
func (r *Router) Self() string { return r.self }

// Peers returns the full normalized membership, self included, in
// sorted order.
func (r *Router) Peers() []string {
	out := make([]string, len(r.peers))
	copy(out, r.peers)
	return out
}

// Others returns the membership without self, in sorted order.
func (r *Router) Others() []string {
	out := make([]string, 0, len(r.peers)-1)
	for _, p := range r.peers {
		if p != r.self {
			out = append(out, p)
		}
	}
	return out
}

// Route returns the peer that owns key: the member with the highest
// rendezvous score. Ties (astronomically unlikely with 64-bit scores)
// break toward the lexicographically first peer via the sorted
// membership order.
func (r *Router) Route(key string) string {
	best := r.peers[0]
	bestScore := score(best, key)
	for _, p := range r.peers[1:] {
		if s := score(p, key); s > bestScore {
			best, bestScore = p, s
		}
	}
	return best
}

// Owns reports whether this replica is key's owner.
func (r *Router) Owns(key string) bool { return r.Route(key) == r.self }

// score is the rendezvous weight of (peer, key): FNV-1a over
// "peer\x00key" (the NUL keeps "ab"+"c" and "a"+"bc" distinct),
// finalized with the splitmix64 mixer for avalanche.
func score(peer, key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(peer))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: full-avalanche mixing so nearby
// FNV outputs (peer addresses differing in one digit) spread across
// the whole 64-bit range.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

package experiments

import (
	"strings"
	"testing"
)

func TestTable1Passes(t *testing.T) {
	o := Table1()
	if !o.Passed() {
		t.Errorf("E1 failed: %+v", o.Records)
	}
	if !strings.Contains(o.Text, "10.38") && !strings.Contains(o.Text, "10.39") {
		t.Errorf("Γ(a1,a2) missing from rendering:\n%s", o.Text)
	}
}

func TestTable2Passes(t *testing.T) {
	o := Table2()
	if !o.Passed() {
		t.Errorf("E2 failed: %+v", o.Records)
	}
}

func TestFig3Passes(t *testing.T) {
	o := Fig3()
	if !o.Passed() {
		t.Errorf("E3 failed: %+v", o.Records)
	}
	if !strings.Contains(o.Text, "a4") {
		t.Errorf("arc table missing:\n%s", o.Text)
	}
}

func TestCandidatesPasses(t *testing.T) {
	o := Candidates()
	if !o.Passed() {
		t.Errorf("E4 failed: %+v", o.Records)
	}
	// Both policies must be reported for comparison.
	if !strings.Contains(o.Text, "any-ref") {
		t.Errorf("strict policy column missing:\n%s", o.Text)
	}
}

func TestFig4Passes(t *testing.T) {
	o := Fig4()
	if !o.Passed() {
		t.Errorf("E5 failed: %+v", o.Records)
	}
	if !strings.Contains(o.Text, "optical") {
		t.Errorf("merge detail missing:\n%s", o.Text)
	}
}

func TestFig5Passes(t *testing.T) {
	o := Fig5()
	if !o.Passed() {
		t.Errorf("E6 failed: %+v", o.Records)
	}
	if !strings.Contains(o.Text, "dma_mem") {
		t.Errorf("channel table missing:\n%s", o.Text)
	}
}

func TestFlowValidationPasses(t *testing.T) {
	o := FlowValidation()
	if !o.Passed() {
		t.Errorf("E9 failed: %+v", o.Records)
	}
	if !strings.Contains(o.Text, "a4") {
		t.Errorf("channel table missing:\n%s", o.Text)
	}
}

func TestLIDSweepPasses(t *testing.T) {
	o := LIDSweep()
	if !o.Passed() {
		t.Errorf("E10 failed: %+v", o.Records)
	}
	for _, want := range []string{"0.18um", "65nm", "relay stations"} {
		if !strings.Contains(o.Text, want) {
			t.Errorf("sweep table missing %q:\n%s", want, o.Text)
		}
	}
}

func TestBandwidthSweepPasses(t *testing.T) {
	o := BandwidthSweep()
	if !o.Passed() {
		t.Errorf("E11 failed: %+v", o.Records)
	}
	// The sweep table must show both trunk media (the crossover).
	if !strings.Contains(o.Text, "radio") || !strings.Contains(o.Text, "optical") {
		t.Errorf("crossover not visible:\n%s", o.Text)
	}
}

func TestLANCaseStudyPasses(t *testing.T) {
	o := LANCaseStudy()
	if !o.Passed() {
		t.Errorf("E12 failed: %+v", o.Records)
	}
	if !strings.Contains(o.Text, "wireless") || !strings.Contains(o.Text, "fiber") {
		t.Errorf("media mix not visible:\n%s", o.Text)
	}
}

func TestBaselineComparisonPasses(t *testing.T) {
	o := BaselineComparison()
	if !o.Passed() {
		t.Errorf("E13 failed: %+v", o.Records)
	}
	if !strings.Contains(o.Text, "WAN (paper Ex.1)") {
		t.Errorf("instance rows missing:\n%s", o.Text)
	}
}

func TestSteinerGapPasses(t *testing.T) {
	o := SteinerGap()
	if !o.Passed() {
		t.Errorf("E14 failed: %+v", o.Records)
	}
	if !strings.Contains(o.Text, "steiner bound") {
		t.Errorf("gap table missing:\n%s", o.Text)
	}
}

func TestAblationPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep is slow")
	}
	o := Ablation()
	if !o.Passed() {
		t.Errorf("E7 failed: %+v", o.Records)
	}
	if !strings.Contains(o.Text, "no pruning at all") {
		t.Errorf("variant rows missing:\n%s", o.Text)
	}
}

func TestScalingPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep is slow")
	}
	o := Scaling([]int{4, 6, 8})
	if !o.Passed() {
		t.Errorf("E8 failed: %+v", o.Records)
	}
}

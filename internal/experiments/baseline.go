package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/merging"
	"repro/internal/report"
	"repro/internal/synth"
	"repro/internal/workloads"
)

// BaselineComparison (E13) contrasts the paper's exact two-step
// algorithm with a prior-art-style greedy agglomerative heuristic (the
// local-improvement flavor of the related-work approaches). The paper's
// own WAN instance is the separating example: no pair of {a4, a5, a6}
// improves on point-to-point, so hill climbing never discovers the
// 3-way merge the exact covering finds.
func BaselineComparison() Outcome {
	var rows [][]string
	var recs []report.Record

	type inst struct {
		name string
		cg   func() *workloadsGraph
	}
	instances := []inst{
		{"WAN (paper Ex.1)", func() *workloadsGraph {
			return &workloadsGraph{workloads.WAN(), workloads.WANLibrary()}
		}},
	}
	for _, seed := range []int64{11, 12, 13, 14} {
		s := seed
		instances = append(instances, inst{
			fmt.Sprintf("random seed %d (|A|=8)", s),
			func() *workloadsGraph {
				cg := workloads.RandomWAN(workloads.RandomWANConfig{
					Seed: s, Clusters: 3, Channels: 8,
				})
				return &workloadsGraph{cg, workloads.WANLibrary()}
			},
		})
	}

	for _, in := range instances {
		w := in.cg()
		start := time.Now()
		_, exact, err := synth.SynthesizeContext(synthCtx("baseline"), w.cg, w.lib, synthOpts(synth.Options{
			Merging: merging.Options{Policy: merging.MaxIndexRef},
		}))
		exactTime := time.Since(start)
		if err != nil {
			return errorOutcome("E13", err)
		}
		start = time.Now()
		_, greedy, err := baseline.Synthesize(w.cg, w.lib, baseline.Options{})
		greedyTime := time.Since(start)
		if err != nil {
			return errorOutcome("E13", err)
		}
		gap := 0.0
		if exact.Cost > 0 {
			gap = 100 * (greedy.Cost - exact.Cost) / exact.Cost
		}
		rows = append(rows, []string{
			in.name,
			fmt.Sprintf("%.2f", exact.Cost),
			fmt.Sprintf("%.2f", greedy.Cost),
			fmt.Sprintf("%.1f%%", gap),
			fmt.Sprint(greedy.Merges),
			exactTime.Round(time.Millisecond).String(),
			greedyTime.Round(time.Millisecond).String(),
		})
		recs = append(recs, report.Record{
			Experiment: "E13",
			Metric:     in.name + ": exact ≤ agglomerative",
			Paper:      "exact covering dominates local improvement",
			Measured:   fmt.Sprintf("%.2f ≤ %.2f", exact.Cost, greedy.Cost),
			Match:      exact.Cost <= greedy.Cost+1e-9,
		})
		if in.name == "WAN (paper Ex.1)" {
			recs = append(recs, report.Record{
				Experiment: "E13",
				Metric:     "WAN: greedy stuck at point-to-point",
				Paper:      "no 2-way step from {a4,a5,a6} improves; only the 3-way merge pays",
				Measured:   fmt.Sprintf("%d merges committed, gap %.1f%%", greedy.Merges, gap),
				Match:      greedy.Merges == 0 && gap > 20,
			})
		}
	}
	text := report.Table(
		[]string{"instance", "exact cost", "greedy cost", "gap", "greedy merges", "exact time", "greedy time"},
		rows)
	return Outcome{
		ID:      "E13",
		Title:   "Baseline — exact algorithm vs greedy agglomerative merging",
		Records: recs,
		Text:    text,
	}
}

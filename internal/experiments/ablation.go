package experiments

import (
	"fmt"
	"time"

	"repro/internal/library"
	"repro/internal/merging"
	"repro/internal/model"
	"repro/internal/report"
	"repro/internal/synth"
	"repro/internal/workloads"
)

// Ablation (E7) quantifies the pruning theorems' effect on the WAN
// instance and a larger random instance: candidate counts, subsets
// tested, and end-to-end synthesis time with each prune toggled off.
func Ablation() Outcome {
	type variant struct {
		name string
		opts merging.Options
	}
	base := merging.Options{Policy: merging.MaxIndexRef}
	variants := []variant{
		{"all prunes (default)", base},
		{"no Lemma 3.1", with(base, func(o *merging.Options) { o.DisableLemma31 = true })},
		{"no Lemma 3.2", with(base, func(o *merging.Options) { o.DisableLemma32 = true })},
		{"no Theorem 3.1", with(base, func(o *merging.Options) { o.DisableTheorem31 = true })},
		{"no Theorem 3.2", with(base, func(o *merging.Options) { o.DisableTheorem32 = true })},
		{"no pruning at all", with(base, func(o *merging.Options) {
			o.DisableLemma31 = true
			o.DisableLemma32 = true
			o.DisableTheorem31 = true
			o.DisableTheorem32 = true
		})},
		{"strict any-ref", merging.Options{Policy: merging.AnyRef}},
	}

	instances := []struct {
		name string
		cg   func() *workloadsGraph
	}{
		{"WAN (|A|=8)", func() *workloadsGraph { return &workloadsGraph{workloads.WAN(), workloads.WANLibrary()} }},
		{"random (|A|=12)", func() *workloadsGraph {
			cg := workloads.RandomWAN(workloads.RandomWANConfig{Seed: 42, Clusters: 3, Channels: 12})
			return &workloadsGraph{cg, workloads.WANLibrary()}
		}},
	}

	var rows [][]string
	var recs []report.Record
	baselineCost := map[string]float64{}
	for _, inst := range instances {
		for _, v := range variants {
			w := inst.cg()
			start := time.Now()
			_, rep, err := synth.SynthesizeContext(synthCtx("ablation"), w.cg, w.lib, synthOpts(synth.Options{Merging: v.opts}))
			elapsed := time.Since(start)
			if err != nil {
				rows = append(rows, []string{inst.name, v.name, "error: " + err.Error(), "", "", ""})
				continue
			}
			enum := rep.Enumeration
			rows = append(rows, []string{
				inst.name, v.name,
				fmt.Sprint(enum.TotalCandidates()),
				fmt.Sprint(enum.SetsTested),
				fmt.Sprintf("%.2f", rep.Cost),
				elapsed.Round(time.Millisecond).String(),
			})
			if v.name == "all prunes (default)" {
				baselineCost[inst.name] = rep.Cost
			} else if base, ok := baselineCost[inst.name]; ok {
				// Soundness: pruning must never change the optimum.
				recs = append(recs, report.Record{
					Experiment: "E7",
					Metric:     fmt.Sprintf("%s: optimum with %q", inst.name, v.name),
					Paper:      "pruning is exact (Section 3 theorems)",
					Measured:   fmt.Sprintf("%.2f vs %.2f", rep.Cost, base),
					Match:      almostEq(rep.Cost, base, 1e-6),
				})
			}
		}
	}
	text := report.Table(
		[]string{"instance", "variant", "candidates", "subsets tested", "optimal cost", "time"}, rows)
	return Outcome{ID: "E7", Title: "Ablation — pruning effectiveness", Records: recs, Text: text}
}

type workloadsGraph struct {
	cg  *model.ConstraintGraph
	lib *library.Library
}

func with(o merging.Options, f func(*merging.Options)) merging.Options {
	f(&o)
	return o
}

func almostEq(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol*(1+b)
}

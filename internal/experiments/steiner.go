package experiments

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/merging"
	"repro/internal/report"
	"repro/internal/steiner"
	"repro/internal/synth"
	"repro/internal/workloads"
)

// SteinerGap (E14) quantifies the structural restriction discussed in
// docs/ALGORITHM.md: the paper's merging realization is a two-hub star
// (mux → trunk → demux), while the cheapest conceivable interconnect
// over the same endpoints is a rectilinear Steiner minimal tree. For
// every merging the synthesizer selects on an on-chip instance, the
// experiment compares the star's wirelength against the Steiner lower
// bound — the ratio measures how much wire the two-hub restriction
// leaves on the table (bandwidth legality aside, since a Steiner
// topology shares wires more aggressively than Definition 2.8 allows).
func SteinerGap() Outcome {
	cg, lib := workloads.NoC(), workloads.NoCLibrary()
	_, rep, err := synth.SynthesizeContext(synthCtx("steiner"), cg, lib, synthOpts(synth.Options{
		Merging: merging.Options{Policy: merging.MaxIndexRef, MaxK: 4},
	}))
	if err != nil {
		return errorOutcome("E14", err)
	}

	var rows [][]string
	var recs []report.Record
	merges := 0
	for _, c := range rep.SelectedCandidates() {
		if c.Kind != "merge" {
			continue
		}
		merges++
		// Star wirelength: trunk plus all access legs (realized
		// distances, not costs).
		norm := cg.Norm()
		star := norm.Distance(c.Merge.MuxPos, c.Merge.DemuxPos)
		var terminals []geom.Point
		for _, ch := range c.Channels {
			cc := cg.Channel(ch)
			src := cg.Position(cc.From)
			dst := cg.Position(cc.To)
			star += norm.Distance(src, c.Merge.MuxPos) + norm.Distance(c.Merge.DemuxPos, dst)
			for _, p := range []geom.Point{src, dst} {
				dup := false
				for _, q := range terminals {
					if q.Eq(p) {
						dup = true
						break
					}
				}
				if !dup {
					terminals = append(terminals, p)
				}
			}
		}
		st, err := steiner.SteinerTree(terminals, steiner.Options{})
		if err != nil {
			return errorOutcome("E14", err)
		}
		hp := steiner.HalfPerimeter(terminals)
		ratio := star / st.Length
		names := map[string]bool{}
		for _, ch := range c.Channels {
			names[cg.Channel(ch).Name] = true
		}
		rows = append(rows, []string{
			setString(names),
			fmt.Sprintf("%.2f", star),
			fmt.Sprintf("%.2f", st.Length),
			fmt.Sprintf("%.2f", hp),
			fmt.Sprintf("%.2f×", ratio),
		})
		recs = append(recs, report.Record{
			Experiment: "E14",
			Metric:     fmt.Sprintf("merge %s: star vs Steiner bound", setString(names)),
			Paper:      "star ≥ Steiner (lower bound); modest overhead expected",
			Measured:   fmt.Sprintf("%.2f ≥ %.2f (%.2f×)", star, st.Length, ratio),
			Match:      ratio >= 1-1e-9 && ratio <= 3,
		})
	}
	if merges == 0 {
		recs = append(recs, report.Record{
			Experiment: "E14", Metric: "mergings selected",
			Paper: "≥ 1 on the aggregation-friendly NoC instance", Measured: "0", Match: false,
		})
	}
	text := report.Table(
		[]string{"merged set", "star wire (mm)", "steiner bound (mm)", "HPWL (mm)", "overhead"},
		rows)
	return Outcome{
		ID:      "E14",
		Title:   "Steiner gap — two-hub merging vs topology-free lower bound",
		Records: recs,
		Text:    text,
	}
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4) and the repository's extension studies, each as
// a self-contained function returning paper-vs-measured records plus a
// printable detail section. cmd/cdcs-bench and the top-level Go
// benchmarks are thin wrappers over this package; EXPERIMENTS.md is the
// archived output.
package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/impl"
	"repro/internal/merging"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/report"
	"repro/internal/routing"
	"repro/internal/synth"
	"repro/internal/workloads"
)

// workers is the Step 1c pricing-pool size every experiment's synthesis
// runs use; 0 lets synth default to all CPUs.
var workers int

// timeout is the per-synthesis-run deadline every experiment applies;
// 0 means none. With a timeout set, a pathological instance inside a
// sweep degrades to its best feasible architecture (anytime semantics)
// instead of stalling the whole benchmark run.
var timeout time.Duration

// SetWorkers fixes the candidate-pricing worker-pool size for all
// experiment synthesis runs (0 = all CPUs, 1 = serial). cmd/cdcs-bench
// exposes it as -workers so serial/parallel timings can be compared on
// the same tables.
func SetWorkers(n int) { workers = n }

// SetTimeout fixes the per-run synthesis deadline for all experiment
// synthesis runs (0 = none). cmd/cdcs-bench exposes it as -timeout so
// sweeps survive pathological instances.
func SetTimeout(d time.Duration) { timeout = d }

// sink is the observability sink every experiment synthesis run
// reports into; nil (the default) disables observability.
var sink *obs.Sink

// SetSink installs an observability sink for all experiment synthesis
// runs. cmd/cdcs-bench installs one to collect per-run counter deltas
// for the CI benchmark-regression gate and to honor -trace/-metrics.
func SetSink(s *obs.Sink) { sink = s }

// synthCtx is the context every experiment synthesis run uses: the
// package sink (when installed) plus a runtime/pprof label naming the
// experiment, so a CPU profile of a bench run attributes samples per
// experiment on top of the sink's per-phase labels.
func synthCtx(name string) context.Context {
	ctx := obs.NewContext(context.Background(), sink)
	return obs.WithLabels(ctx, "experiment", name)
}

// synthOpts applies the package-wide worker and timeout settings to a
// run's options.
func synthOpts(base synth.Options) synth.Options {
	base.Workers = workers
	base.Timeout = timeout
	return base
}

// Outcome is one experiment's result.
type Outcome struct {
	// ID is the experiment identifier ("E1").
	ID string
	// Title describes the paper artifact.
	Title string
	// Records are the paper-vs-measured comparisons.
	Records []report.Record
	// Text is the printable detail (matrices, architecture listings).
	Text string
}

// Passed reports whether all records matched.
func (o Outcome) Passed() bool { return report.AllMatch(o.Records) }

func channelNames() []string {
	return []string{"a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8"}
}

// matrixOutcome compares a reproduced symmetric matrix against its
// published counterpart within the E1/E2 tolerance.
func matrixOutcome(id, title string, got *merging.SymMatrix, want [8][8]float64) Outcome {
	const tol = 0.03
	maxErr := 0.0
	worst := ""
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			err := math.Abs(got.At(i, j) - want[i][j])
			if err > maxErr {
				maxErr = err
				worst = fmt.Sprintf("(a%d,a%d)", i+1, j+1)
			}
		}
	}
	rec := report.Record{
		Experiment: id,
		Metric:     "max |entry error| km",
		Paper:      "0 (published values)",
		Measured:   fmt.Sprintf("%.4f at %s", maxErr, worst),
		Match:      maxErr <= tol,
		Note:       fmt.Sprintf("tolerance %.2f (two-decimal rounding)", tol),
	}
	text := report.UpperTriangle(channelNames(), got.At)
	return Outcome{ID: id, Title: title, Records: []report.Record{rec}, Text: text}
}

// Table1 regenerates the Constrained Distance Sum Matrix Γ (paper
// Table 1) from the reconstructed WAN instance.
func Table1() Outcome {
	cg := workloads.WAN()
	return matrixOutcome("E1", "Table 1 — Γ matrix (km)", merging.Gamma(cg), workloads.PaperTable1())
}

// Table2 regenerates the Merging Distance Sum Matrix Δ (paper Table 2).
func Table2() Outcome {
	cg := workloads.WAN()
	return matrixOutcome("E2", "Table 2 — Δ matrix (km)", merging.Delta(cg), workloads.PaperTable2())
}

// Fig3 reproduces the WAN constraint graph of Figure 3: the instance
// statistics and the cluster structure.
func Fig3() Outcome {
	cg := workloads.WAN()
	var recs []report.Record
	recs = append(recs, report.Record{
		Experiment: "E3", Metric: "constraint arcs",
		Paper: "8", Measured: fmt.Sprint(cg.NumChannels()),
		Match: cg.NumChannels() == 8,
	})
	recs = append(recs, report.Record{
		Experiment: "E3", Metric: "uniform bandwidth (Mbps)",
		Paper: "10", Measured: fmt.Sprint(workloads.WANBandwidth),
		Match: workloads.WANBandwidth == 10,
	})
	// Cluster separation: the two groups are ~100 km apart while nodes
	// within a group sit within ~10 km.
	dPos, _ := workloads.WANNodePosition("D")
	aPos, _ := workloads.WANNodePosition("A")
	ePos, _ := workloads.WANNodePosition("E")
	sep := cg.Norm().Distance(dPos, aPos)
	intra := cg.Norm().Distance(dPos, ePos)
	recs = append(recs, report.Record{
		Experiment: "E3", Metric: "cluster separation / intra-cluster distance (km)",
		Paper: "\"relatively much larger\"", Measured: fmt.Sprintf("%.1f / %.1f", sep, intra),
		Match: sep > 10*intra,
	})
	var b strings.Builder
	rows := make([][]string, 0, 8)
	for i := 0; i < cg.NumChannels(); i++ {
		ch := model.ChannelID(i)
		c := cg.Channel(ch)
		rows = append(rows, []string{
			c.Name,
			cg.Port(c.From).Module, cg.Port(c.To).Module,
			fmt.Sprintf("%.3f", cg.Distance(ch)),
			fmt.Sprintf("%.0f", c.Bandwidth),
		})
	}
	b.WriteString(report.Table([]string{"arc", "from", "to", "d (km)", "b (Mbps)"}, rows))
	return Outcome{ID: "E3", Title: "Figure 3 — WAN constraint graph", Records: recs, Text: b.String()}
}

// Candidates reproduces the Section 4 candidate-generation narrative:
// per-k candidate counts, a8's unmergeability, and the Theorem 3.1
// eliminations, under the paper-matching MaxIndexRef policy (AnyRef
// shown alongside for comparison).
func Candidates() Outcome {
	cg := workloads.WAN()
	lib := workloads.WANLibrary()
	paper := workloads.PaperCandidateCounts()

	res, err := merging.Enumerate(cg, lib, merging.Options{Policy: merging.MaxIndexRef})
	if err != nil {
		return errorOutcome("E4", err)
	}
	strict, err := merging.Enumerate(cg, lib, merging.Options{Policy: merging.AnyRef})
	if err != nil {
		return errorOutcome("E4", err)
	}

	var recs []report.Record
	for k := 2; k <= 4; k++ {
		recs = append(recs, report.Record{
			Experiment: "E4", Metric: fmt.Sprintf("%d-way candidates", k),
			Paper: fmt.Sprint(paper[k]), Measured: fmt.Sprint(res.Count(k)),
			Match: res.Count(k) == paper[k],
		})
	}
	recs = append(recs, report.Record{
		Experiment: "E4", Metric: "5-way candidates",
		Paper: fmt.Sprint(paper[5]), Measured: fmt.Sprint(res.Count(5)),
		Match: res.Count(5) >= paper[5],
		Note:  "sound superset; pruning may only discard provably sub-optimal sets",
	})
	a8, _ := cg.ChannelByName("a8")
	recs = append(recs, report.Record{
		Experiment: "E4", Metric: "a8 mergeable with any arc",
		Paper: "no", Measured: yesNo(res.EliminatedAt[a8] != 2),
		Match: res.EliminatedAt[a8] == 2,
	})
	a7, _ := cg.ChannelByName("a7")
	maxA7 := res.MaxArityOf(a7)
	recs = append(recs, report.Record{
		Experiment: "E4", Metric: "largest k-way candidate containing a7",
		Paper: "4 (\"in no merging with k > 4\")", Measured: fmt.Sprint(maxA7),
		Match: maxA7 <= 4,
	})

	rows := [][]string{}
	for k := 2; k <= 8; k++ {
		if res.Count(k) == 0 && strict.Count(k) == 0 {
			continue
		}
		paperVal := "-"
		if v, ok := paper[k]; ok {
			paperVal = fmt.Sprint(v)
		}
		rows = append(rows, []string{
			fmt.Sprint(k), paperVal,
			fmt.Sprint(res.Count(k)), fmt.Sprint(strict.Count(k)),
		})
	}
	text := report.Table([]string{"k", "paper", "max-index-ref", "any-ref"}, rows)
	return Outcome{ID: "E4", Title: "Section 4 — candidate arc mergings", Records: recs, Text: text}
}

// Fig4 reproduces Figure 4: the full synthesis of the WAN instance and
// the optimum architecture (merge {a4, a5, a6} on an optical trunk,
// dedicated radio links elsewhere).
func Fig4() Outcome {
	cg := workloads.WAN()
	lib := workloads.WANLibrary()
	ig, rep, err := synth.SynthesizeContext(synthCtx("fig4"), cg, lib, synthOpts(synth.Options{
		Merging: merging.Options{Policy: merging.MaxIndexRef},
	}))
	if err != nil {
		return errorOutcome("E5", err)
	}
	if err := ig.Verify(impl.VerifyOptions{}); err != nil {
		return errorOutcome("E5", fmt.Errorf("verification: %w", err))
	}

	merged := map[string]bool{}
	radioArcs := map[string]bool{}
	trunkLink := ""
	for _, c := range rep.SelectedCandidates() {
		if c.Kind == "merge" {
			trunkLink = c.Merge.TrunkPlan.Link.Name
			for _, ch := range c.Channels {
				merged[cg.Channel(ch).Name] = true
			}
		} else {
			radioArcs[cg.Channel(c.Channels[0]).Name] = c.Plan.Link.Name == "radio"
		}
	}
	wantMerged := merged["a4"] && merged["a5"] && merged["a6"] && len(merged) == 3
	allRadio := radioArcs["a1"] && radioArcs["a2"] && radioArcs["a3"] && radioArcs["a7"] && radioArcs["a8"]

	recs := []report.Record{
		{
			Experiment: "E5", Metric: "merged arcs",
			Paper: "{a4, a5, a6}", Measured: setString(merged),
			Match: wantMerged,
		},
		{
			Experiment: "E5", Metric: "merged trunk link",
			Paper: "optical", Measured: trunkLink, Match: trunkLink == "optical",
		},
		{
			Experiment: "E5", Metric: "remaining arcs",
			Paper: "dedicated radio links", Measured: yesNo(allRadio) + " (all radio)",
			Match: allRadio,
		},
		{
			Experiment: "E5", Metric: "optimum beats point-to-point",
			Paper: "yes (motivation for merging)",
			Measured: fmt.Sprintf("%.2f vs %.2f (%.1f%% saved)",
				rep.Cost, rep.P2PCost, rep.SavingsPercent()),
			Match: rep.Cost < rep.P2PCost,
		},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "optimal cost      : $%.2f\n", rep.Cost)
	fmt.Fprintf(&b, "point-to-point    : $%.2f\n", rep.P2PCost)
	fmt.Fprintf(&b, "savings           : %.1f%%\n", rep.SavingsPercent())
	fmt.Fprintf(&b, "priced mergings   : %d (infeasible %d, dominated %d)\n",
		rep.PricedMergings, rep.InfeasibleMergings, rep.DominatedMergings)
	fmt.Fprintf(&b, "UCP nodes/prunes  : %d/%d\n", rep.UCPStats.Nodes, rep.UCPStats.Prunes)
	fmt.Fprintf(&b, "elapsed           : %v\n", rep.Elapsed.Round(time.Millisecond))
	for _, c := range rep.SelectedCandidates() {
		if c.Kind == "merge" {
			names := make([]string, len(c.Channels))
			for i, ch := range c.Channels {
				names[i] = cg.Channel(ch).Name
			}
			fmt.Fprintf(&b, "merge %v: mux %v, demux %v, trunk %s, cost $%.2f\n",
				names, c.Merge.MuxPos, c.Merge.DemuxPos, c.Merge.TrunkPlan.Link.Name, c.Cost)
		}
	}
	return Outcome{ID: "E5", Title: "Figure 4 — optimum WAN architecture", Records: recs, Text: b.String()}
}

// Fig5 reproduces Figure 5: repeater insertion on the MPEG-4 decoder's
// critical channels at l_crit = 0.6 mm.
func Fig5() Outcome {
	cg := workloads.MPEG4()
	tech := workloads.MPEG4Technology()
	analytic := tech.TotalRepeaters(cg)

	ig, plans, err := p2p.Synthesize(cg, tech.Library(), p2p.Options{})
	if err != nil {
		return errorOutcome("E6", err)
	}
	if err := ig.Verify(impl.VerifyOptions{}); err != nil {
		return errorOutcome("E6", fmt.Errorf("verification: %w", err))
	}
	synthesized := 0
	rows := [][]string{}
	for i, plan := range plans {
		ch := model.ChannelID(i)
		reps := (plan.Segments - 1) * plan.Chains
		synthesized += reps
		rows = append(rows, []string{
			cg.Channel(ch).Name,
			fmt.Sprintf("%.2f", cg.Distance(ch)),
			fmt.Sprint(plan.Segments),
			fmt.Sprint(reps),
		})
	}
	recs := []report.Record{
		{
			Experiment: "E6", Metric: "total repeaters (analytic ⌊d/l_crit⌋)",
			Paper: fmt.Sprint(workloads.MPEG4ExpectedRepeaters), Measured: fmt.Sprint(analytic),
			Match: analytic == workloads.MPEG4ExpectedRepeaters,
			Note:  "synthetic floorplan constructed to the published total; see DESIGN.md §4",
		},
		{
			Experiment: "E6", Metric: "total repeaters (synthesized segmentation)",
			Paper: fmt.Sprint(workloads.MPEG4ExpectedRepeaters), Measured: fmt.Sprint(synthesized),
			Match: synthesized == workloads.MPEG4ExpectedRepeaters,
		},
		{
			Experiment: "E6", Metric: "l_crit (mm)",
			Paper: "0.6", Measured: fmt.Sprint(tech.LCrit), Match: tech.LCrit == 0.6,
		},
	}
	text := report.Table([]string{"channel", "d (mm)", "segments", "repeaters"}, rows)
	if routed, err := routing.RouteImplementation(ig, routing.Options{}); err == nil {
		text += fmt.Sprintf("\nrouted wirelength %.2f mm, congestion max/mean overlap %d/%.2f\n",
			routed.TotalWirelength, routed.MaxOverlap, routed.MeanOverlap)
	}
	return Outcome{ID: "E6", Title: "Figure 5 — MPEG-4 decoder repeater insertion", Records: recs, Text: text}
}

func errorOutcome(id string, err error) Outcome {
	return Outcome{
		ID: id,
		Records: []report.Record{{
			Experiment: id, Metric: "execution",
			Paper: "success", Measured: err.Error(), Match: false,
		}},
	}
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func setString(set map[string]bool) string {
	names := make([]string, 0, len(set))
	for name := range set {
		names = append(names, name)
	}
	// Deterministic order.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	return "{" + strings.Join(names, ", ") + "}"
}

package experiments

import (
	"fmt"

	"repro/internal/flowsim"
	"repro/internal/lid"
	"repro/internal/merging"
	"repro/internal/report"
	"repro/internal/synth"
	"repro/internal/workloads"
)

// FlowValidation (E9) simulates the synthesized Figure 4 architecture
// under concurrent traffic and contrasts the paper's multiplexer
// semantics (trunk sized for Σ bᵢ) with the literal Definition 2.8
// bound (trunk sized for max bᵢ): the former sustains all demands, the
// latter visibly starves the merged channels.
func FlowValidation() Outcome {
	cg := workloads.WAN()
	lib := workloads.WANLibrary()
	ig, _, err := synth.SynthesizeContext(synthCtx("flowsim"), cg, lib, synthOpts(synth.Options{
		Merging: merging.Options{Policy: merging.MaxIndexRef},
	}))
	if err != nil {
		return errorOutcome("E9", err)
	}
	res, err := flowsim.Simulate(ig, flowsim.Config{Ticks: 600})
	if err != nil {
		return errorOutcome("E9", err)
	}

	var rows [][]string
	for _, c := range res.Channels {
		rows = append(rows, []string{
			c.Name,
			fmt.Sprintf("%.1f", c.Offered),
			fmt.Sprintf("%.2f", c.Delivered),
			yesNo(c.Satisfied()),
		})
	}
	var peak float64
	for _, l := range res.Links {
		if l.PeakUtilization > peak {
			peak = l.PeakUtilization
		}
	}
	recs := []report.Record{
		{
			Experiment: "E9", Metric: "all channels sustain their demand (sum-rule trunk)",
			Paper:    "implied by Definition 2.4 satisfaction",
			Measured: yesNo(res.AllSatisfied()),
			Match:    res.AllSatisfied(),
		},
		{
			Experiment: "E9", Metric: "peak link utilization",
			Paper:    "≤ 1 (no link exceeds its bandwidth)",
			Measured: fmt.Sprintf("%.3f", peak),
			Match:    peak <= 1.0+1e-9,
		},
	}
	text := report.Table([]string{"channel", "offered", "delivered", "satisfied"}, rows)
	return Outcome{ID: "E9", Title: "Flow simulation — synthesized WAN under load", Records: recs, Text: text}
}

// LIDSweep (E10) runs the conclusion's latency-insensitive extension:
// the MPEG-4 instance swept across deep-sub-micron generations with the
// buffer/latch cost function. At 0.18 µm the analysis must reduce to
// the plain Figure 5 result (55 stateless repeaters, single cycle).
func LIDSweep() Outcome {
	cg := workloads.MPEG4()
	const latchPremium = 4.0

	var rows [][]string
	var recs []report.Record
	prevRelays := -1
	for _, gen := range lid.DSMGenerations() {
		rep, err := lid.Analyze(cg, lid.ParamsFor(gen, latchPremium))
		if err != nil {
			return errorOutcome("E10", err)
		}
		rows = append(rows, []string{
			gen.Name,
			fmt.Sprintf("%.2f", gen.LCritMM),
			fmt.Sprintf("%.1f", gen.ReachMM),
			fmt.Sprint(rep.TotalBuffers),
			fmt.Sprint(rep.TotalRelays),
			fmt.Sprint(rep.MaxLatencyCycles),
			fmt.Sprintf("%.0f", rep.TotalCost),
		})
		if gen.Name == "0.18um" {
			recs = append(recs, report.Record{
				Experiment: "E10", Metric: "0.18 µm reduces to Figure 5",
				Paper:    "55 repeaters, all links single cycle",
				Measured: fmt.Sprintf("%d buffers, %d relays, max %d cycle(s)", rep.TotalBuffers, rep.TotalRelays, rep.MaxLatencyCycles),
				Match:    rep.TotalBuffers == workloads.MPEG4ExpectedRepeaters && rep.SingleCycle(),
			})
		}
		if prevRelays >= 0 && rep.TotalRelays < prevRelays {
			recs = append(recs, report.Record{
				Experiment: "E10", Metric: gen.Name + " relay monotonicity",
				Paper: "DSM needs more relay stations", Measured: "decreased", Match: false,
			})
		}
		prevRelays = rep.TotalRelays
	}
	recs = append(recs, report.Record{
		Experiment: "E10", Metric: "relay stations appear below 0.18 µm",
		Paper:    "\"with DSM (0.13 µm and below) this will be true for fewer wires\"",
		Measured: fmt.Sprintf("%d relays at 65nm", prevRelays),
		Match:    prevRelays > 0,
	})
	text := report.Table(
		[]string{"process", "l_crit (mm)", "reach (mm)", "buffers", "relay stations", "max latency (cyc)", "cost"},
		rows)
	return Outcome{ID: "E10", Title: "LID extension — DSM sweep of the MPEG-4 decoder", Records: recs, Text: text}
}

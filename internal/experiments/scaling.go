package experiments

import (
	"fmt"
	"time"

	"repro/internal/merging"
	"repro/internal/report"
	"repro/internal/synth"
	"repro/internal/workloads"
)

// ScalingSizes is the default |A| sweep of experiment E8.
var ScalingSizes = []int{4, 6, 8, 10, 12, 14}

// Scaling (E8) sweeps random clustered WAN instances over |A| and
// compares the exact covering solver against the greedy heuristic:
// runtime, candidate counts, and the optimality gap.
func Scaling(sizes []int) Outcome {
	if len(sizes) == 0 {
		sizes = ScalingSizes
	}
	var rows [][]string
	var recs []report.Record
	for _, n := range sizes {
		cg := workloads.RandomWAN(workloads.RandomWANConfig{
			Seed: int64(1000 + n), Clusters: 3, Channels: n,
		})
		lib := workloads.WANLibrary()
		opts := synthOpts(synth.Options{Merging: merging.Options{Policy: merging.MaxIndexRef}})

		start := time.Now()
		_, exact, err := synth.SynthesizeContext(synthCtx("scaling"), cg, lib, opts)
		exactTime := time.Since(start)
		if err != nil {
			rows = append(rows, []string{fmt.Sprint(n), "error: " + err.Error(), "", "", "", "", ""})
			continue
		}
		greedyOpts := opts
		greedyOpts.Solver = synth.GreedySolver
		start = time.Now()
		_, greedy, err := synth.SynthesizeContext(synthCtx("scaling"), cg, lib, greedyOpts)
		greedyTime := time.Since(start)
		if err != nil {
			rows = append(rows, []string{fmt.Sprint(n), "greedy error: " + err.Error(), "", "", "", "", ""})
			continue
		}
		gap := 0.0
		if exact.Cost > 0 {
			gap = 100 * (greedy.Cost - exact.Cost) / exact.Cost
		}
		rows = append(rows, []string{
			fmt.Sprint(n),
			fmt.Sprint(exact.Enumeration.TotalCandidates()),
			fmt.Sprintf("%.2f", exact.Cost),
			fmt.Sprintf("%.1f%%", exact.SavingsPercent()),
			fmt.Sprintf("%.2f%%", gap),
			exactTime.Round(time.Millisecond).String(),
			greedyTime.Round(time.Millisecond).String(),
		})
		recs = append(recs, report.Record{
			Experiment: "E8",
			Metric:     fmt.Sprintf("|A|=%d exact ≤ greedy", n),
			Paper:      "exact covering is optimal",
			Measured:   fmt.Sprintf("%.2f ≤ %.2f", exact.Cost, greedy.Cost),
			Match:      exact.Cost <= greedy.Cost+1e-9,
		})
	}
	text := report.Table(
		[]string{"|A|", "candidates", "optimal cost", "savings vs p2p", "greedy gap", "exact time", "greedy time"},
		rows)
	return Outcome{ID: "E8", Title: "Scaling — random clustered WANs", Records: recs, Text: text}
}

package experiments

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/merging"
	"repro/internal/model"
	"repro/internal/report"
	"repro/internal/synth"
	"repro/internal/workloads"
)

// BandwidthSweep (E11) re-solves the WAN instance with the uniform
// channel bandwidth swept from light to heavy and tracks where the
// optimum architecture's crossovers fall:
//
//   - while 3·b ≤ 11 Mbps the full {a4, a5, a6} merge rides a radio
//     trunk — merging is essentially free;
//   - in a middle band (3·b > 11 ≥ 2·b) the optimum drops to a 2-way
//     radio merge: a radio trunk for two channels beats paying the
//     optical premium for all three;
//   - once 2·b > 11 the radio trunk dies entirely and the 3-way optical
//     merge of the paper's operating point (b = 10) takes over.
//
// The experiment verifies the trunk-medium consistency k·b ≤ 11 ⇔ radio
// at every sweep point, the paper's exact architecture at b = 10, and
// that the optimum never exceeds the point-to-point baseline.
func BandwidthSweep() Outcome {
	lib := workloads.WANLibrary()
	var rows [][]string
	var recs []report.Record

	sweep := []float64{1, 2, 3, 3.5, 3.8, 5, 8, 10, 15, 22}
	for _, b := range sweep {
		cg := wanWithBandwidth(b)
		_, rep, err := synth.SynthesizeContext(synthCtx("bwsweep"), cg, lib, synthOpts(synth.Options{
			Merging: merging.Options{Policy: merging.MaxIndexRef},
		}))
		if err != nil {
			return errorOutcome("E11", err)
		}
		mergedSet := ""
		trunk := "-"
		k := 0
		for _, c := range rep.SelectedCandidates() {
			if c.Kind != "merge" {
				continue
			}
			names := map[string]bool{}
			for _, ch := range c.Channels {
				names[cg.Channel(ch).Name] = true
			}
			mergedSet = setString(names)
			trunk = c.Merge.TrunkPlan.Link.Name
			k = len(c.Channels)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", b),
			mergedSet,
			trunk,
			fmt.Sprintf("%.2f", rep.Cost),
			fmt.Sprintf("%.1f%%", rep.SavingsPercent()),
		})

		// Consistency: a merge must exist on this merge-friendly
		// instance, and its trunk medium follows k·b vs the radio rate.
		consistent := k >= 2 && rep.Cost <= rep.P2PCost+1e-9
		if consistent {
			if trunk == "radio" {
				consistent = float64(k)*b <= 11+1e-9
			} else {
				consistent = float64(k)*b > 11-1e-9
			}
		}
		recs = append(recs, report.Record{
			Experiment: "E11",
			Metric:     fmt.Sprintf("b=%.1f: trunk medium consistent with k·b vs 11 Mbps", b),
			Paper:      "radio trunk iff merged load fits one radio link",
			Measured:   fmt.Sprintf("%d-way %s on %s", k, mergedSet, trunk),
			Match:      consistent,
		})
		if b == 10 {
			recs = append(recs, report.Record{
				Experiment: "E11",
				Metric:     "b=10 (paper's operating point)",
				Paper:      "{a4, a5, a6} merged on optical",
				Measured:   fmt.Sprintf("%s on %s", mergedSet, trunk),
				Match:      mergedSet == "{a4, a5, a6}" && trunk == "optical",
			})
		}
	}
	text := report.Table([]string{"b (Mbps)", "merged set", "trunk", "optimal cost", "savings"}, rows)
	return Outcome{ID: "E11", Title: "Bandwidth sweep — WAN crossover analysis", Records: recs, Text: text}
}

// wanWithBandwidth rebuilds the WAN instance with a different uniform
// channel bandwidth.
func wanWithBandwidth(b float64) *model.ConstraintGraph {
	base := workloads.WAN()
	cg := model.NewConstraintGraph(geom.Euclidean)
	for i := 0; i < base.NumPorts(); i++ {
		cg.MustAddPort(base.Port(model.PortID(i)))
	}
	for i := 0; i < base.NumChannels(); i++ {
		c := base.Channel(model.ChannelID(i))
		c.Bandwidth = b
		cg.MustAddChannel(c)
	}
	return cg
}

// LANCaseStudy (E12) runs the Section 2 fiber-vs-wireless LAN scenario:
// a campus network where the synthesizer should assign wireless to the
// thin client channels and fiber to the fat backbone flows — the
// "combination of the two" outcome the paper motivates.
func LANCaseStudy() Outcome {
	cg := workloads.LAN()
	lib := workloads.LANLibrary()
	_, rep, err := synth.SynthesizeContext(synthCtx("lan"), cg, lib, synthOpts(synth.Options{
		Merging: merging.Options{Policy: merging.MaxIndexRef},
	}))
	if err != nil {
		return errorOutcome("E12", err)
	}

	linkOf := map[string]string{}
	mergedOn := map[string]string{}
	var rows [][]string
	for _, c := range rep.SelectedCandidates() {
		if c.Kind == "p2p" {
			name := cg.Channel(c.Channels[0]).Name
			linkOf[name] = c.Plan.Link.Name
			rows = append(rows, []string{name, c.Plan.Kind(), c.Plan.Link.Name, fmt.Sprintf("%.1f", c.Cost)})
		} else {
			for _, ch := range c.Channels {
				mergedOn[cg.Channel(ch).Name] = c.Merge.TrunkPlan.Link.Name
			}
			names := map[string]bool{}
			for _, ch := range c.Channels {
				names[cg.Channel(ch).Name] = true
			}
			rows = append(rows, []string{setString(names), "merge", c.Merge.TrunkPlan.Link.Name, fmt.Sprintf("%.1f", c.Cost)})
		}
	}
	// Media actually deployed anywhere in the architecture: dedicated
	// links, merge trunks, and merge access legs all count.
	media := map[string]bool{}
	for _, l := range linkOf {
		media[l] = true
	}
	for _, c := range rep.SelectedCandidates() {
		if c.Kind != "merge" {
			continue
		}
		media[c.Merge.TrunkPlan.Link.Name] = true
		for _, p := range c.Merge.AccessIn {
			media[p.Link.Name] = true
		}
		for _, p := range c.Merge.AccessOut {
			media[p.Link.Name] = true
		}
	}
	usesWireless := media["wireless"]
	usesFiber := media["fiber"]
	fatOnFiber := true
	for _, fat := range []string{"replic", "uplink", "dnlink", "backupA"} {
		l := linkOf[fat]
		if m, ok := mergedOn[fat]; ok {
			l = m
		}
		if l != "fiber" {
			fatOnFiber = false
		}
	}
	recs := []report.Record{
		{
			Experiment: "E12", Metric: "heterogeneous mix chosen",
			Paper:    "\"a fiber-optic network or a wireless network, or a combination of the two\"",
			Measured: fmt.Sprintf("wireless=%v fiber=%v", usesWireless, usesFiber),
			Match:    usesWireless && usesFiber,
		},
		{
			Experiment: "E12", Metric: "fat flows (≥300 Mbps) on fiber",
			Paper:    "bandwidth-driven medium selection",
			Measured: yesNo(fatOnFiber),
			Match:    fatOnFiber,
		},
		{
			Experiment: "E12", Metric: "optimum vs point-to-point",
			Paper:    "never worse",
			Measured: fmt.Sprintf("%.1f vs %.1f", rep.Cost, rep.P2PCost),
			Match:    rep.Cost <= rep.P2PCost+1e-9,
		},
	}
	text := report.Table([]string{"channels", "structure", "medium", "cost"}, rows)
	return Outcome{ID: "E12", Title: "LAN case study — fiber vs wireless (Section 2 scenario)", Records: recs, Text: text}
}

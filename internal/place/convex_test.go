package place

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/library"
	"repro/internal/model"
	"repro/internal/workloads"
)

// Validation of the convex fast path: the alternating-weighted-median
// seed must match (within tolerance) the best value found by a brute
// grid search over hub positions.

func TestConvexSeedMatchesGridSearch(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	lib := workloads.WANLibrary()
	for trial := 0; trial < 10; trial++ {
		cg := model.NewConstraintGraph(geom.Euclidean)
		k := 2 + r.Intn(2)
		var ids []model.ChannelID
		for i := 0; i < k; i++ {
			u := cg.MustAddPort(model.Port{
				Name:     "u" + string(rune('0'+i)),
				Position: geom.Pt(r.Float64()*10, r.Float64()*10),
			})
			v := cg.MustAddPort(model.Port{
				Name:     "v" + string(rune('0'+i)),
				Position: geom.Pt(60+r.Float64()*10, r.Float64()*10),
			})
			ids = append(ids, cg.MustAddChannel(model.Channel{
				Name: "c" + string(rune('0'+i)), From: u, To: v,
				Bandwidth: 2 + r.Float64()*6,
			}))
		}
		cand, err := Optimize(cg, lib, ids, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Coarse 2-level grid search over (x1, x2).
		best := math.Inf(1)
		evalAt := func(x1, x2 geom.Point) float64 {
			c, err := priceAt(cg, lib, ids, x1, x2)
			if err != nil {
				return math.Inf(1)
			}
			return c
		}
		var bestX1, bestX2 geom.Point
		for gx1 := 0.0; gx1 <= 70; gx1 += 7 {
			for gy1 := 0.0; gy1 <= 10; gy1 += 5 {
				for gx2 := 0.0; gx2 <= 70; gx2 += 7 {
					for gy2 := 0.0; gy2 <= 10; gy2 += 5 {
						x1, x2 := geom.Pt(gx1, gy1), geom.Pt(gx2, gy2)
						if c := evalAt(x1, x2); c < best {
							best, bestX1, bestX2 = c, x1, x2
						}
					}
				}
			}
		}
		// Refine the grid winner locally so the comparison is fair.
		for step := 3.5; step > 0.01; step /= 2 {
			improved := true
			for improved {
				improved = false
				for _, d := range []geom.Point{{X: step}, {X: -step}, {Y: step}, {Y: -step}} {
					for _, m := range [][2]geom.Point{
						{bestX1.Add(d), bestX2}, {bestX1, bestX2.Add(d)},
					} {
						if c := evalAt(m[0], m[1]); c < best-1e-12 {
							best, bestX1, bestX2 = c, m[0], m[1]
							improved = true
						}
					}
				}
			}
		}
		if cand.Cost > best*(1+1e-4) {
			t.Fatalf("trial %d: convex path %v worse than grid search %v", trial, cand.Cost, best)
		}
	}
}

// priceAt evaluates the merged structure cost at fixed hub positions
// (mirrors Optimize's eval; reimplemented here so the test does not
// depend on internals).
func priceAt(cg *model.ConstraintGraph, lib *library.Library, ids []model.ChannelID, x1, x2 geom.Point) (float64, error) {
	norm := cg.Norm()
	var trunkBW float64
	for _, ch := range ids {
		trunkBW += cg.Bandwidth(ch)
	}
	mux, _ := lib.CheapestNode(library.Mux)
	demux, _ := lib.CheapestNode(library.Demux)
	total := mux.Cost + demux.Cost
	trunk, err := bestPlanSingle(norm.Distance(x1, x2), trunkBW, lib)
	if err != nil {
		return 0, err
	}
	total += trunk
	for _, ch := range ids {
		c := cg.Channel(ch)
		in, err := bestPlanAny(norm.Distance(cg.Position(c.From), x1), c.Bandwidth, lib)
		if err != nil {
			return 0, err
		}
		out, err := bestPlanAny(norm.Distance(x2, cg.Position(c.To)), c.Bandwidth, lib)
		if err != nil {
			return 0, err
		}
		total += in + out
	}
	return total, nil
}

func bestPlanSingle(d, b float64, lib *library.Library) (float64, error) {
	best := math.Inf(1)
	for _, l := range lib.Links {
		if l.Bandwidth < b {
			continue
		}
		if !l.CanSpan(d) {
			continue // WAN links are unbounded, so this never triggers
		}
		if c := l.Cost(d); c < best {
			best = c
		}
	}
	if math.IsInf(best, 1) {
		return 0, errNoLink
	}
	return best, nil
}

func bestPlanAny(d, b float64, lib *library.Library) (float64, error) {
	best := math.Inf(1)
	for _, l := range lib.Links {
		chains := 1
		if l.Bandwidth < b {
			chains = int(math.Ceil(b/l.Bandwidth - 1e-12))
		}
		if !l.CanSpan(d) {
			continue
		}
		if c := float64(chains) * l.Cost(d); c < best {
			best = c
		}
	}
	if math.IsInf(best, 1) {
		return 0, errNoLink
	}
	return best, nil
}

var errNoLink = errorString("no feasible link")

type errorString string

func (e errorString) Error() string { return string(e) }

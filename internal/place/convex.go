package place

import (
	"math"

	"repro/internal/geom"
	"repro/internal/library"
)

// convexSeed solves the hub-placement problem exactly when the library
// is purely length-priced (every link unbounded with zero fixed cost):
// then the candidate cost is
//
//	c(x₁,x₂) = Σᵢ wᵢ·‖uᵢ−x₁‖ + w_t·‖x₁−x₂‖ + Σᵢ wᵢ·‖x₂−vᵢ‖ + const
//
// with distance-independent weights (wᵢ = cheapest per-length rate that
// carries bandwidth bᵢ, duplication included; w_t likewise for the
// single-chain trunk). The objective is jointly convex, and block
// minimization over x₁ (a weighted median of the sources plus x₂) and
// x₂ (a weighted median of the destinations plus x₁) converges to the
// global optimum.
//
// The second return is false when the library is not purely
// length-priced or the trunk bandwidth is infeasible; callers then fall
// back to the general pattern search.
func convexSeed(
	norm geom.Norm, lib *library.Library,
	sources, dests []geom.Point, bws []float64, trunkBW float64,
	sc *Scratch,
) ([2]geom.Point, bool) {
	for _, l := range lib.Links {
		if !l.Unbounded() || l.CostFixed != 0 {
			return [2]geom.Point{}, false
		}
	}
	rate := func(b float64, singleChain bool) (float64, bool) {
		best := math.Inf(1)
		for _, l := range lib.Links {
			chains := 1
			if l.Bandwidth < b {
				if singleChain {
					continue
				}
				chains = int(math.Ceil(b/l.Bandwidth - 1e-12))
			}
			if r := float64(chains) * l.CostPerLength; r < best {
				best = r
			}
		}
		return best, !math.IsInf(best, 1)
	}
	weights := resizeFloats(&sc.weights, len(bws))
	for i, b := range bws {
		w, ok := rate(b, false)
		if !ok {
			return [2]geom.Point{}, false
		}
		weights[i] = w
	}
	wTrunk, ok := rate(trunkBW, true)
	if !ok {
		return [2]geom.Point{}, false
	}

	// A loose per-median iteration budget: the pattern-search polish in
	// Optimize absorbs the residual tolerance, so the alternation only
	// needs to get close.
	mopt := geom.MedianOptions{MaxIter: 60, Scratch: &sc.median}
	x1 := geom.WeightedMedian(norm, sources, weights, mopt)
	x2 := geom.WeightedMedian(norm, dests, weights, mopt)
	pts := append(append(sc.pts[:0], sources...), dests...)
	sc.pts = pts
	bb := geom.Bounds(pts)
	tol := 1e-6 * math.Max(1, math.Max(bb.Width(), bb.Height()))
	srcSites := append(append(sc.srcSites[:0], sources...), x2)
	dstSites := append(append(sc.dstSites[:0], dests...), x1)
	wAll := append(append(sc.wAll[:0], weights...), wTrunk)
	sc.srcSites, sc.dstSites, sc.wAll = srcSites, dstSites, wAll
	for iter := 0; iter < 40; iter++ {
		srcSites[len(srcSites)-1] = x2
		nx1 := geom.WeightedMedian(norm, srcSites, wAll, mopt)
		dstSites[len(dstSites)-1] = nx1
		nx2 := geom.WeightedMedian(norm, dstSites, wAll, mopt)
		moved := norm.Distance(nx1, x1) + norm.Distance(nx2, x2)
		x1, x2 = nx1, nx2
		if moved < tol {
			break
		}
	}
	return [2]geom.Point{x1, x2}, true
}

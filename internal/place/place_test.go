package place

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/impl"
	"repro/internal/library"
	"repro/internal/model"
	"repro/internal/p2p"
	"repro/internal/workloads"
)

func fanInstance(t *testing.T) (*model.ConstraintGraph, []model.ChannelID) {
	// Three 10 Mbps channels from a common source position to three
	// destinations clustered ~100 away — the shape of the paper's
	// {a4, a5, a6} merging.
	t.Helper()
	cg := model.NewConstraintGraph(geom.Euclidean)
	var ids []model.ChannelID
	dsts := []geom.Point{geom.Pt(100, 0), geom.Pt(103, -4), geom.Pt(101, -9)}
	for i, d := range dsts {
		u := cg.MustAddPort(model.Port{Name: "s" + string(rune('0'+i)), Position: geom.Pt(0, 0)})
		v := cg.MustAddPort(model.Port{Name: "d" + string(rune('0'+i)), Position: d})
		ids = append(ids, cg.MustAddChannel(model.Channel{
			Name: "c" + string(rune('0'+i)), From: u, To: v, Bandwidth: 10,
		}))
	}
	return cg, ids
}

func TestOptimizeFanMerging(t *testing.T) {
	cg, ids := fanInstance(t)
	lib := workloads.WANLibrary()
	cand, err := Optimize(cg, lib, ids, Options{})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	// The trunk must be optical: 30 Mbps exceeds the 11 Mbps radio.
	if cand.TrunkPlan.Link.Name != "optical" {
		t.Errorf("trunk link = %q, want optical", cand.TrunkPlan.Link.Name)
	}
	// The mux belongs at the shared source.
	if !cand.MuxPos.AlmostEq(geom.Pt(0, 0), 0.5) {
		t.Errorf("mux at %v, want near origin", cand.MuxPos)
	}
	// Candidate must beat the point-to-point alternative (3 radio links).
	var p2pCost float64
	for _, ch := range ids {
		p, err := p2p.BestPlan(cg.Distance(ch), cg.Bandwidth(ch), lib, p2p.Options{})
		if err != nil {
			t.Fatal(err)
		}
		p2pCost += p.Cost
	}
	if cand.Cost >= p2pCost {
		t.Errorf("merged cost %v should beat p2p %v", cand.Cost, p2pCost)
	}
	// Sanity bound: trunk ≈ 4·100, access ≈ small.
	if cand.Cost < 380 || cand.Cost > 450 {
		t.Errorf("cost %v outside plausible band [380, 450]", cand.Cost)
	}
}

func TestOptimizeRejectsSmallSets(t *testing.T) {
	cg, ids := fanInstance(t)
	if _, err := Optimize(cg, workloads.WANLibrary(), ids[:1], Options{}); err == nil {
		t.Error("single-channel merging should be rejected")
	}
}

func TestOptimizeNeedsSwitches(t *testing.T) {
	cg, ids := fanInstance(t)
	lib := &library.Library{
		Links: []library.Link{
			{Name: "radio", Bandwidth: 11, MaxSpan: math.Inf(1), CostPerLength: 2},
			{Name: "optical", Bandwidth: 1000, MaxSpan: math.Inf(1), CostPerLength: 4},
		},
	}
	if _, err := Optimize(cg, lib, ids, Options{}); err == nil {
		t.Error("library without mux/demux should make merging infeasible")
	}
}

func TestOptimizeTrunkOverload(t *testing.T) {
	// Merged bandwidth 30 exceeds the only link's 11: no single-chain
	// trunk exists.
	cg, ids := fanInstance(t)
	lib := &library.Library{
		Links: []library.Link{
			{Name: "radio", Bandwidth: 11, MaxSpan: math.Inf(1), CostPerLength: 2},
		},
		Nodes: []library.Node{
			{Name: "mux", Kind: library.Mux, Cost: 0},
			{Name: "demux", Kind: library.Demux, Cost: 0},
		},
	}
	if _, err := Optimize(cg, lib, ids, Options{}); err == nil {
		t.Error("trunk overload should make merging infeasible")
	}
}

func TestOptimizeMaxBandwidthCapacity(t *testing.T) {
	// Under the Definition 2.8 literal rule (trunk ≥ max bᵢ), the radio
	// can carry the trunk, so merging succeeds even without optical.
	cg, ids := fanInstance(t)
	lib := &library.Library{
		Links: []library.Link{
			{Name: "radio", Bandwidth: 11, MaxSpan: math.Inf(1), CostPerLength: 2},
		},
		Nodes: []library.Node{
			{Name: "mux", Kind: library.Mux, Cost: 0},
			{Name: "demux", Kind: library.Demux, Cost: 0},
		},
	}
	cand, err := Optimize(cg, lib, ids, Options{Capacity: MaxBandwidth})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if cand.TrunkPlan.Link.Name != "radio" {
		t.Errorf("trunk = %q, want radio", cand.TrunkPlan.Link.Name)
	}
}

func TestNodeCostsIncluded(t *testing.T) {
	cg, ids := fanInstance(t)
	free := workloads.WANLibrary()
	cheap, err := Optimize(cg, free, ids, Options{})
	if err != nil {
		t.Fatal(err)
	}
	costly := workloads.WANLibrary()
	for i := range costly.Nodes {
		costly.Nodes[i].Cost = 7
	}
	expensive, err := Optimize(cg, costly, ids, Options{})
	if err != nil {
		t.Fatal(err)
	}
	diff := expensive.Cost - cheap.Cost
	if math.Abs(diff-14) > 0.5 {
		t.Errorf("node costs not reflected: diff = %v, want ≈ 14", diff)
	}
}

func TestInstantiateVerifies(t *testing.T) {
	cg, ids := fanInstance(t)
	lib := workloads.WANLibrary()
	cand, err := Optimize(cg, lib, ids, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ig := impl.New(cg)
	if err := cand.Instantiate(ig, lib); err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	if err := ig.Verify(impl.VerifyOptions{}); err != nil {
		t.Errorf("Verify: %v", err)
	}
	// The implementation-graph cost must equal the candidate cost.
	if got := ig.Cost(); math.Abs(got-cand.Cost) > 1e-6 {
		t.Errorf("graph cost %v ≠ candidate cost %v", got, cand.Cost)
	}
	// Exactly one mux and one demux vertex plus no repeaters.
	if n := ig.NumCommVertices(); n != 2 {
		t.Errorf("comm vertices = %d, want 2", n)
	}
}

func TestInstantiateSegmentedTrunkVerifies(t *testing.T) {
	// A short-span fixed-cost library forces the trunk and the access
	// legs to be segmented with repeaters.
	cg := model.NewConstraintGraph(geom.Manhattan)
	var ids []model.ChannelID
	for i, d := range []geom.Point{geom.Pt(5, 0.2), geom.Pt(5, -0.2)} {
		u := cg.MustAddPort(model.Port{Name: "s" + string(rune('0'+i)), Position: geom.Pt(0, 0)})
		v := cg.MustAddPort(model.Port{Name: "d" + string(rune('0'+i)), Position: d})
		ids = append(ids, cg.MustAddChannel(model.Channel{
			Name: "c" + string(rune('0'+i)), From: u, To: v, Bandwidth: 10,
		}))
	}
	lib := &library.Library{
		Links: []library.Link{
			{Name: "wire", Bandwidth: 100, MaxSpan: 1.0, CostFixed: 0.05},
		},
		Nodes: []library.Node{
			{Name: "rep", Kind: library.Repeater, Cost: 1},
			{Name: "mux", Kind: library.Mux, Cost: 1},
			{Name: "demux", Kind: library.Demux, Cost: 1},
		},
	}
	cand, err := Optimize(cg, lib, ids, Options{})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	ig := impl.New(cg)
	if err := cand.Instantiate(ig, lib); err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	if err := ig.Verify(impl.VerifyOptions{}); err != nil {
		t.Errorf("Verify: %v", err)
	}
	if cand.TrunkPlan.Segments < 2 {
		t.Errorf("trunk should be segmented, got %d segments", cand.TrunkPlan.Segments)
	}
}

func TestInstantiateDuplicatedAccessVerifies(t *testing.T) {
	// Channels of 20 Mbps: access legs on 11 Mbps radio need
	// duplication, while the optical trunk carries 40 Mbps on one chain.
	cg := model.NewConstraintGraph(geom.Euclidean)
	var ids []model.ChannelID
	for i, d := range []geom.Point{geom.Pt(100, 3), geom.Pt(100, -3)} {
		u := cg.MustAddPort(model.Port{Name: "s" + string(rune('0'+i)), Position: geom.Pt(0, float64(i))})
		v := cg.MustAddPort(model.Port{Name: "d" + string(rune('0'+i)), Position: d})
		ids = append(ids, cg.MustAddChannel(model.Channel{
			Name: "c" + string(rune('0'+i)), From: u, To: v, Bandwidth: 20,
		}))
	}
	lib := workloads.WANLibrary()
	cand, err := Optimize(cg, lib, ids, Options{})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	ig := impl.New(cg)
	if err := cand.Instantiate(ig, lib); err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	if err := ig.Verify(impl.VerifyOptions{}); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestWANTripleMergeCost(t *testing.T) {
	// The paper's winning candidate: merge {a4, a5, a6} on an optical
	// trunk from D towards the A/B/C cluster.
	cg := workloads.WAN()
	lib := workloads.WANLibrary()
	var ids []model.ChannelID
	for _, name := range []string{"a4", "a5", "a6"} {
		id, ok := cg.ChannelByName(name)
		if !ok {
			t.Fatalf("channel %s missing", name)
		}
		ids = append(ids, id)
	}
	cand, err := Optimize(cg, lib, ids, Options{})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	// Stand-alone: three radio links = 2·(d4+d5+d6) ≈ 591.65.
	var p2pCost float64
	for _, ch := range ids {
		p2pCost += 2 * cg.Distance(ch)
	}
	if cand.Cost >= p2pCost {
		t.Errorf("merged %v should beat p2p %v", cand.Cost, p2pCost)
	}
	t.Logf("merged {a4,a5,a6} cost = %.2f vs p2p %.2f (saving %.1f%%)",
		cand.Cost, p2pCost, 100*(1-cand.Cost/p2pCost))
	// Mux should sit at D (all three sources there).
	if d, _ := workloads.WANNodePosition("D"); !cand.MuxPos.AlmostEq(d, 0.5) {
		t.Errorf("mux at %v, want near D %v", cand.MuxPos, d)
	}
}

package place

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/impl"
	"repro/internal/library"
	"repro/internal/p2p"
)

// Instantiate materializes the candidate into an implementation graph:
// it creates the mux and demux communication vertices, the shared trunk
// chain (the common path q* of Definition 2.8), and per-channel access
// chains, and records each channel's path set.
//
// When an access plan is duplicated (multiple chains), the channel gets
// one path per chain, all sharing the trunk; mismatched in/out chain
// counts are paired round-robin, which is safe because the bandwidth
// check in impl.Verify accounts for shared links exactly once.
func (cand *Candidate) Instantiate(ig *impl.Graph, lib *library.Library) error {
	cg := ig.ConstraintGraph()
	tag := fmt.Sprintf("merge%v", cand.Channels)

	mux, err := ig.AddCommVertex(cand.MuxNode, cand.MuxPos, tag+".mux")
	if err != nil {
		return err
	}
	demux, err := ig.AddCommVertex(cand.DemuxNode, cand.DemuxPos, tag+".demux")
	if err != nil {
		return err
	}
	trunkPaths, err := p2p.BuildChains(ig, mux, demux, cand.TrunkPlan, lib, tag+".trunk")
	if err != nil {
		return err
	}
	if len(trunkPaths) != 1 {
		return fmt.Errorf("place: trunk must be a single chain, got %d", len(trunkPaths))
	}
	trunk := trunkPaths[0]

	for i, ch := range cand.Channels {
		c := cg.Channel(ch)
		inPaths, err := p2p.BuildChains(ig, graph.VertexID(c.From), mux, cand.AccessIn[i],
			lib, fmt.Sprintf("%s.%s.in", tag, c.Name))
		if err != nil {
			return err
		}
		outPaths, err := p2p.BuildChains(ig, demux, graph.VertexID(c.To), cand.AccessOut[i],
			lib, fmt.Sprintf("%s.%s.out", tag, c.Name))
		if err != nil {
			return err
		}
		n := len(inPaths)
		if len(outPaths) > n {
			n = len(outPaths)
		}
		paths := make([]graph.Path, 0, n)
		for j := 0; j < n; j++ {
			in := inPaths[j%len(inPaths)]
			out := outPaths[j%len(outPaths)]
			paths = append(paths, concatPaths(in, trunk, out))
		}
		ig.AssignImplementation(ch, paths)
	}
	return nil
}

// concatPaths joins consecutive paths a→b→c where a ends at b's start
// and b ends at c's start.
func concatPaths(parts ...graph.Path) graph.Path {
	var out graph.Path
	for i, p := range parts {
		if i == 0 {
			out.Vertices = append(out.Vertices, p.Vertices...)
		} else {
			out.Vertices = append(out.Vertices, p.Vertices[1:]...)
		}
		out.Arcs = append(out.Arcs, p.Arcs...)
	}
	return out
}

package place

import (
	"testing"

	"repro/internal/model"
	"repro/internal/workloads"
)

// BenchmarkOptimizeConvex measures the alternating-median fast path on
// the paper's winning candidate (pure length-priced WAN library).
func BenchmarkOptimizeConvex(b *testing.B) {
	cg := workloads.WAN()
	lib := workloads.WANLibrary()
	var ids []model.ChannelID
	for _, name := range []string{"a4", "a5", "a6"} {
		id, _ := cg.ChannelByName(name)
		ids = append(ids, id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(cg, lib, ids, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizePatternSearch measures the general multistart path
// (fixed-cost on-chip library, no convex shortcut).
func BenchmarkOptimizePatternSearch(b *testing.B) {
	cg := workloads.MPEG4()
	lib := workloads.MPEG4Technology().Library()
	ids := []model.ChannelID{1, 5} // dma_mem + mc_mem, both into sdram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(cg, lib, ids, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Package place solves the per-candidate "simple nonlinear optimization
// problem" of Section 3: given a set of constraint arcs chosen for a
// k-way merging, find the positions of the merging communication
// vertices and the resulting candidate cost.
//
// The candidate structure follows the paper's composition rules: a
// multiplexer vertex at position x₁ collects the k channels from their
// source ports, a single shared trunk (the common path q* of Definition
// 2.8) carries the combined traffic to a de-multiplexer vertex at x₂,
// and access links deliver each channel to its destination port. Every
// piece (access links and trunk) is itself implemented point-to-point by
// the p2p package, so a long trunk is transparently segmented with
// repeaters and a fat access leg transparently duplicated.
//
// The optimization over (x₁, x₂) ∈ R⁴ is a multistart pattern search on
// the exact cost function. For length-priced libraries the objective is
// a weighted sum of norms — jointly convex — so the search converges to
// the global optimum; for fixed-priced (step-cost) libraries the result
// is the best point among the explored pattern, which is the classical
// engineering treatment of such piecewise-constant costs.
package place

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/library"
	"repro/internal/model"
	"repro/internal/p2p"
)

// Options tunes candidate placement.
type Options struct {
	// P2P configures the embedded point-to-point planner.
	P2P p2p.Options
	// Planner, when non-nil, memoizes every point-to-point sub-problem
	// the optimization prices (access legs and trunk). It must have been
	// built over the same library Optimize is called with. When nil,
	// Optimize uses a private per-call planner, so repeated probes
	// within one pattern search still hit the memo table; sharing one
	// planner across calls (as synth.Synthesize does) additionally
	// reuses sub-problems across candidates.
	Planner *p2p.Planner
	// MaxIter bounds pattern-search iterations per start; zero means 120.
	MaxIter int
	// Capacity selects how the trunk is sized: the sum of merged
	// bandwidths (default, matching the paper's multiplexer description)
	// or their maximum (the literal Definition 2.8 bound, for ablation).
	Capacity TrunkCapacity
	// Scratch, when non-nil, supplies reusable buffers for the per-call
	// endpoint/weight staging and the convex-seed alternation, making a
	// warm Optimize call (planner memo hot) allocate only the candidate
	// it returns. A scratch must not be shared between concurrent
	// Optimize calls; synthesis keeps one per pricing worker.
	Scratch *Scratch
}

// Scratch holds the reusable buffers behind Options.Scratch. The zero
// value is ready to use; buffers grow to the largest merging priced
// through them and are reused verbatim afterwards.
type Scratch struct {
	sources, dests     []geom.Point
	bws                []float64
	pts                []geom.Point
	weights            []float64
	srcSites, dstSites []geom.Point
	wAll               []float64
	starts             [][2]geom.Point
	median             geom.MedianScratch
}

// TrunkCapacity selects the trunk sizing rule.
type TrunkCapacity int

const (
	// SumBandwidth sizes the trunk for Σ b(aᵢ).
	SumBandwidth TrunkCapacity = iota
	// MaxBandwidth sizes the trunk for max b(aᵢ).
	MaxBandwidth
)

func (o Options) maxIter() int {
	if o.MaxIter <= 0 {
		return 120
	}
	return o.MaxIter
}

// Candidate is a priced k-way merging: the optimized hub positions, the
// plans for every piece, and the total cost (including the mux and demux
// node costs).
type Candidate struct {
	Channels  []model.ChannelID
	MuxPos    geom.Point
	DemuxPos  geom.Point
	TrunkPlan p2p.Plan
	// AccessIn[i] implements source→mux for Channels[i]; AccessOut[i]
	// implements demux→destination.
	AccessIn  []p2p.Plan
	AccessOut []p2p.Plan
	// MuxNode and DemuxNode are the library nodes instantiated at the
	// hubs.
	MuxNode, DemuxNode library.Node
	Cost               float64
}

// Optimize prices the merging of the given channels (k ≥ 2) over the
// library, returning the best candidate found. It returns an error when
// the merging is infeasible: the library lacks mux/demux nodes, or no
// single link chain can carry the combined trunk traffic.
func Optimize(cg *model.ConstraintGraph, lib *library.Library, channels []model.ChannelID, opt Options) (*Candidate, error) {
	if len(channels) < 2 {
		return nil, fmt.Errorf("place: merging needs at least 2 channels, got %d", len(channels))
	}
	mux, okM := lib.CheapestNode(library.Mux)
	demux, okD := lib.CheapestNode(library.Demux)
	if !okM || !okD {
		return nil, fmt.Errorf("place: library lacks mux/demux nodes; merging unavailable")
	}

	sc := opt.Scratch
	if sc == nil {
		sc = &Scratch{}
	}
	sources := resizePoints(&sc.sources, len(channels))
	dests := resizePoints(&sc.dests, len(channels))
	bws := resizeFloats(&sc.bws, len(channels))
	var trunkBW float64
	for i, ch := range channels {
		c := cg.Channel(ch)
		sources[i] = cg.Position(c.From)
		dests[i] = cg.Position(c.To)
		bws[i] = c.Bandwidth
		if opt.Capacity == MaxBandwidth {
			trunkBW = math.Max(trunkBW, c.Bandwidth)
		} else {
			trunkBW += c.Bandwidth
		}
	}

	norm := cg.Norm()
	// Trunk: single chain so all merged channels share one common path
	// (Definition 2.8's q*).
	trunkOpt := opt.P2P
	trunkOpt.MaxChains = 1

	planner := opt.Planner
	if planner == nil {
		planner = p2p.NewPlanner(lib)
	}

	// eval prices the structure at given hub positions without building
	// the full candidate (the search calls it thousands of times).
	eval := func(x1, x2 geom.Point) float64 {
		trunk, err := planner.BestPlan(norm.Distance(x1, x2), trunkBW, trunkOpt)
		if err != nil {
			return math.Inf(1)
		}
		total := mux.Cost + demux.Cost + trunk.Cost
		for i := range channels {
			in, err := planner.BestPlan(norm.Distance(sources[i], x1), bws[i], opt.P2P)
			if err != nil {
				return math.Inf(1)
			}
			out, err := planner.BestPlan(norm.Distance(x2, dests[i]), bws[i], opt.P2P)
			if err != nil {
				return math.Inf(1)
			}
			total += in.Cost + out.Cost
		}
		return total
	}
	// build constructs the full candidate at the chosen positions. The
	// candidate escapes to the caller, so its slices are fresh
	// exact-capacity allocations, never scratch views.
	build := func(x1, x2 geom.Point) (*Candidate, error) {
		cand := &Candidate{
			Channels:  append([]model.ChannelID(nil), channels...),
			MuxPos:    x1,
			DemuxPos:  x2,
			MuxNode:   mux,
			DemuxNode: demux,
			AccessIn:  make([]p2p.Plan, 0, len(channels)),
			AccessOut: make([]p2p.Plan, 0, len(channels)),
		}
		trunk, err := planner.BestPlan(norm.Distance(x1, x2), trunkBW, trunkOpt)
		if err != nil {
			return nil, err
		}
		cand.TrunkPlan = trunk
		total := mux.Cost + demux.Cost + trunk.Cost
		for i := range channels {
			in, err := planner.BestPlan(norm.Distance(sources[i], x1), bws[i], opt.P2P)
			if err != nil {
				return nil, err
			}
			out, err := planner.BestPlan(norm.Distance(x2, dests[i]), bws[i], opt.P2P)
			if err != nil {
				return nil, err
			}
			cand.AccessIn = append(cand.AccessIn, in)
			cand.AccessOut = append(cand.AccessOut, out)
			total += in.Cost + out.Cost
		}
		cand.Cost = total
		return cand, nil
	}

	pts := append(append(sc.pts[:0], sources...), dests...)
	sc.pts = pts
	bb := geom.Bounds(pts)
	initStep := math.Max(bb.Width(), bb.Height())
	if initStep == 0 {
		initStep = 1
	}

	bestCost := math.Inf(1)
	var bestX1, bestX2 geom.Point

	// Fast path: with a pure length-priced library the objective is a
	// jointly convex weighted sum of norms, solved directly by
	// alternating weighted medians; a short small-step polish absorbs
	// the iteration tolerance.
	if seed, ok := convexSeed(norm, lib, sources, dests, bws, trunkBW, sc); ok {
		bestCost, bestX1, bestX2 = patternSearch(eval, seed[0], seed[1], initStep*0.02, 20)
	} else {
		// General path: multistart pattern search from the endpoint
		// medians, centroids, and each channel's own endpoints.
		mopt := geom.MedianOptions{Scratch: &sc.median}
		starts := append(sc.starts[:0],
			[2]geom.Point{geom.WeightedMedian(norm, sources, bws, mopt),
				geom.WeightedMedian(norm, dests, bws, mopt)},
			[2]geom.Point{geom.Centroid(sources), geom.Centroid(dests)},
		)
		for i := range sources {
			starts = append(starts, [2]geom.Point{sources[i], dests[i]})
		}
		sc.starts = starts
		for _, s := range starts {
			if c, x1, x2 := patternSearch(eval, s[0], s[1], initStep, opt.maxIter()); c < bestCost {
				bestCost, bestX1, bestX2 = c, x1, x2
			}
		}
	}
	if math.IsInf(bestCost, 1) {
		return nil, fmt.Errorf("place: merging of %d channels infeasible (trunk bandwidth %.6g exceeds every library chain)",
			len(channels), trunkBW)
	}
	return build(bestX1, bestX2)
}

// patternDirs are the eight compass directions of the pattern search,
// hoisted to package scope so the hot loop references static data
// instead of rebuilding a slice per call.
var patternDirs = [8]geom.Point{
	{X: 1}, {X: -1}, {Y: 1}, {Y: -1},
	{X: 1, Y: 1}, {X: 1, Y: -1}, {X: -1, Y: 1}, {X: -1, Y: -1},
}

// patternSearch minimizes eval over the two hub positions with a
// shrinking compass pattern. It moves one hub at a time through the
// eight compass directions plus joint translations, returning the best
// cost and positions found. The three probe position-pairs per
// direction live in a fixed-size stack array — the former per-iteration
// slice literal was the single largest allocation source of candidate
// pricing (3 probes × 8 directions × ~10² iterations per Optimize).
func patternSearch(
	eval func(geom.Point, geom.Point) float64,
	x1, x2 geom.Point, step float64, maxIter int,
) (float64, geom.Point, geom.Point) {
	bestCost := eval(x1, x2)
	if math.IsInf(bestCost, 1) {
		return bestCost, x1, x2
	}
	tol := step * 1e-7
	for iter := 0; iter < maxIter && step > tol; iter++ {
		improved := false
		for _, d := range patternDirs {
			delta := d.Scale(step)
			moves := [3][2]geom.Point{
				{x1.Add(delta), x2},            // move mux
				{x1, x2.Add(delta)},            // move demux
				{x1.Add(delta), x2.Add(delta)}, // translate both
			}
			for _, m := range moves {
				if c := eval(m[0], m[1]); c < bestCost-1e-12 {
					bestCost = c
					x1, x2 = m[0], m[1]
					improved = true
				}
			}
		}
		if !improved {
			step /= 2
		}
	}
	return bestCost, x1, x2
}

// resizePoints returns *buf resized to n, growing the backing array
// only when the scratch has never seen a merging this large.
func resizePoints(buf *[]geom.Point, n int) []geom.Point {
	if cap(*buf) < n {
		*buf = make([]geom.Point, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// resizeFloats is resizePoints for float64 buffers.
func resizeFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

package synth

// Cross-validation of the covering step against the independent 0-1 ILP
// solver, at the level of the full synthesis flow: the paper observes
// Problem 2.1 "can be seen as a special case of 0-1 integer linear
// programming", so formulating the priced candidate set as an ILP must
// give the same optimum as the UCP branch-and-bound.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/ilp"
	"repro/internal/impl"
	"repro/internal/merging"
	"repro/internal/model"
	"repro/internal/workloads"
)

// ilpOptimum formulates the report's candidate set as a 0-1 ILP
// (minimize Σ cost·x subject to per-channel coverage) and solves it.
func ilpOptimum(t *testing.T, rep *Report, numChannels int) float64 {
	t.Helper()
	costs := make([]float64, len(rep.Candidates))
	for i, c := range rep.Candidates {
		costs[i] = c.Cost
	}
	p, err := ilp.NewProblem(costs)
	if err != nil {
		t.Fatal(err)
	}
	for ch := 0; ch < numChannels; ch++ {
		coeffs := make(map[int]float64)
		for i, c := range rep.Candidates {
			for _, cc := range c.Channels {
				if int(cc) == ch {
					coeffs[i] = 1
				}
			}
		}
		if err := p.AddConstraint(ilp.Constraint{Coeffs: coeffs, RHS: 1}); err != nil {
			t.Fatal(err)
		}
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	return sol.Cost
}

func TestWANCoveringMatchesILP(t *testing.T) {
	cg := workloads.WAN()
	lib := workloads.WANLibrary()
	_, rep, err := Synthesize(cg, lib, Options{
		Merging: merging.Options{Policy: merging.MaxIndexRef},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := ilpOptimum(t, rep, cg.NumChannels())
	if math.Abs(rep.Cost-want) > 1e-9 {
		t.Errorf("UCP optimum %v ≠ ILP optimum %v", rep.Cost, want)
	}
}

func TestRandomCoveringMatchesILPProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2002))
	lib := workloads.WANLibrary()
	for trial := 0; trial < 8; trial++ {
		cg := workloads.RandomWAN(workloads.RandomWANConfig{
			Seed: int64(300 + trial), Clusters: 2, Channels: 5 + r.Intn(3),
		})
		_, rep, err := Synthesize(cg, lib, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := ilpOptimum(t, rep, cg.NumChannels())
		if math.Abs(rep.Cost-want) > 1e-9 {
			t.Fatalf("trial %d: UCP %v ≠ ILP %v", trial, rep.Cost, want)
		}
	}
}

// TestLargeInstanceStress synthesizes a 16-channel clustered instance
// with a capped merge arity, verifies the result structurally and
// dynamically, and checks the basic optimality invariants.
func TestLargeInstanceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	cg := workloads.RandomWAN(workloads.RandomWANConfig{
		Seed: 99, Clusters: 4, Channels: 16,
	})
	lib := workloads.WANLibrary()
	ig, rep, err := Synthesize(cg, lib, Options{
		Merging: merging.Options{Policy: merging.MaxIndexRef, MaxK: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ig.Verify(impl.VerifyOptions{}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Cost > rep.P2PCost+1e-9 {
		t.Errorf("cost %v exceeds p2p %v", rep.Cost, rep.P2PCost)
	}
	if got := ig.Cost(); math.Abs(got-rep.Cost) > 1e-6*rep.Cost {
		t.Errorf("graph cost %v ≠ report %v", got, rep.Cost)
	}
}

// TestDegenerateSharedPortMerging exercises merging when channels share
// a literal source port vertex (rather than distinct co-located ports).
func TestDegenerateSharedPortMerging(t *testing.T) {
	cg := model.NewConstraintGraph(geom.Euclidean)
	hub := cg.MustAddPort(model.Port{Name: "hub", Position: geom.Pt(0, 0)})
	d1 := cg.MustAddPort(model.Port{Name: "d1", Position: geom.Pt(90, 3)})
	d2 := cg.MustAddPort(model.Port{Name: "d2", Position: geom.Pt(90, -3)})
	d3 := cg.MustAddPort(model.Port{Name: "d3", Position: geom.Pt(93, 0)})
	cg.MustAddChannel(model.Channel{Name: "x", From: hub, To: d1, Bandwidth: 8})
	cg.MustAddChannel(model.Channel{Name: "y", From: hub, To: d2, Bandwidth: 8})
	cg.MustAddChannel(model.Channel{Name: "z", From: hub, To: d3, Bandwidth: 8})

	ig, rep, err := Synthesize(cg, workloads.WANLibrary(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ig.Verify(impl.VerifyOptions{}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// All three channels leave the SAME port vertex. A 3-way merge on an
	// optical trunk ($4/km) beats three radios ($6/km combined).
	if rep.Cost >= rep.P2PCost {
		t.Errorf("merge should win: %v vs %v", rep.Cost, rep.P2PCost)
	}
	merged := false
	for _, c := range rep.SelectedCandidates() {
		if c.Kind == "merge" && len(c.Channels) == 3 {
			merged = true
		}
	}
	if !merged {
		t.Error("expected a 3-way merge from the shared port")
	}
}

package synth

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/merging"
	"repro/internal/obs"
	"repro/internal/workloads"
)

// obsFakeClock returns a deterministic clock advancing 1ms per call,
// so span timestamps are a pure function of the call sequence.
func obsFakeClock() func() time.Time {
	base := time.Unix(0, 0)
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * time.Millisecond)
	}
}

// TestObservabilityDeterministic runs the same WAN synthesis twice
// with fresh fake-clocked sinks and requires byte-identical trace JSON
// (both exports) and metric snapshots. Workers=1 pins the planner
// cache hit/miss split, which is the one scheduling-dependent counter
// pair; everything else is a pure function of the instance (the
// mapiter/collect-then-sort rules of docs/LINT.md keep it that way).
func TestObservabilityDeterministic(t *testing.T) {
	cg := workloads.WAN()
	lib := workloads.WANLibrary()
	runOnce := func() (trace, chrome, metrics []byte) {
		sink := obs.New(obs.Config{Tracing: true, Metrics: true, Now: obsFakeClock()})
		ctx := obs.NewContext(context.Background(), sink)
		_, _, err := SynthesizeContext(ctx, cg, lib, Options{
			Merging: merging.Options{Policy: merging.MaxIndexRef},
			Workers: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		trace, err = sink.Tracer().JSON()
		if err != nil {
			t.Fatal(err)
		}
		chrome, err = sink.Tracer().ChromeTrace()
		if err != nil {
			t.Fatal(err)
		}
		metrics, err = sink.Metrics().Snapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return trace, chrome, metrics
	}
	trace1, chrome1, metrics1 := runOnce()
	trace2, chrome2, metrics2 := runOnce()
	if !bytes.Equal(trace1, trace2) {
		t.Errorf("trace JSON not byte-identical across identical runs:\n%s\n---\n%s", trace1, trace2)
	}
	if !bytes.Equal(chrome1, chrome2) {
		t.Errorf("Chrome trace not byte-identical across identical runs")
	}
	if !bytes.Equal(metrics1, metrics2) {
		t.Errorf("metric snapshots not byte-identical across identical runs:\n%s\n---\n%s", metrics1, metrics2)
	}
}

// TestObservabilitySpanAndCounterContents checks the acceptance shape
// of a traced WAN run: spans for p2p planning, merging enumeration,
// pricing and ucp covering are present under one root, and the pruning
// and search counters the paper's staged algorithm produces are
// nonzero.
func TestObservabilitySpanAndCounterContents(t *testing.T) {
	cg := workloads.WAN()
	lib := workloads.WANLibrary()
	sink := obs.New(obs.Config{Tracing: true, Metrics: true, PprofLabels: true})
	ctx := obs.NewContext(context.Background(), sink)
	_, rep, err := SynthesizeContext(ctx, cg, lib, Options{
		Merging: merging.Options{Policy: merging.MaxIndexRef},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"synth/run", "p2p/plan", "merging/enumerate",
		"synth/price", "synth/solve", "ucp/solve", "synth/materialize",
	} {
		if len(sink.Tracer().FindSpans(name)) == 0 {
			t.Errorf("no %q span in trace", name)
		}
	}
	roots := sink.Tracer().Roots()
	if len(roots) != 1 {
		t.Fatalf("want one root span, got %d", len(roots))
	}

	counters := sink.Metrics().Snapshot().CounterMap()
	for _, name := range []string{
		"merging/sets_tested", "merging/pruned_lemma31", "merging/pruned_lemma32",
		"merging/candidates", "ucp/nodes", "synth/price/pricings", "p2p/cache/hits",
	} {
		if counters[name] <= 0 {
			t.Errorf("counter %q = %d, want > 0", name, counters[name])
		}
	}
	// The registry view must agree with the per-run report where both
	// exist — they are two projections of the same run.
	if got := counters["synth/priced_mergings"]; got != int64(rep.PricedMergings) {
		t.Errorf("synth/priced_mergings = %d, report says %d", got, rep.PricedMergings)
	}
	if got := counters["merging/sets_tested"]; got != int64(rep.Enumeration.SetsTested) {
		t.Errorf("merging/sets_tested = %d, report says %d", got, rep.Enumeration.SetsTested)
	}
	if got := counters["ucp/nodes"]; got != int64(rep.UCPStats.Nodes) {
		t.Errorf("ucp/nodes = %d, report says %d", got, rep.UCPStats.Nodes)
	}
	// Per-rule prune counts must sum to the aggregate.
	enum := rep.Enumeration
	if enum.PrunedLemma31+enum.PrunedLemma32+enum.PrunedTheorem32 != enum.SetsPruned {
		t.Errorf("per-rule prunes %d+%d+%d != total %d",
			enum.PrunedLemma31, enum.PrunedLemma32, enum.PrunedTheorem32, enum.SetsPruned)
	}
}

// TestObserverConcurrentPricingWorkers drives a shared sink from the
// full parallel pricing pool (this is the test `go test -race` leans
// on to prove the sink is safe under worker concurrency) and checks
// that the deterministic counters still match the serial run's.
func TestObserverConcurrentPricingWorkers(t *testing.T) {
	cg := workloads.RandomWAN(workloads.RandomWANConfig{Seed: 7, Clusters: 3, Channels: 10})
	lib := workloads.WANLibrary()

	run := func(workers int) (map[string]int64, int64) {
		sink := obs.New(obs.Config{Tracing: true, Metrics: true, PprofLabels: true})
		ctx := obs.NewContext(context.Background(), sink)
		_, _, err := SynthesizeContext(ctx, cg, lib, Options{
			Merging: merging.Options{Policy: merging.MaxIndexRef},
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		snap := sink.Metrics().Snapshot()
		return snap.CounterMap(), snap.Gauges[sliceIndex(t, snap, "synth/price/queue_depth")].Value
	}
	serial, _ := run(1)
	parallel, queueDepth := run(8)

	if queueDepth != 0 {
		t.Errorf("queue_depth gauge = %d after a full run, want 0", queueDepth)
	}
	// Scheduling may redistribute planner cache hits/misses, but every
	// algorithmic counter must be identical to the serial run.
	for name, want := range serial {
		if name == "p2p/cache/hits" || name == "p2p/cache/misses" {
			continue
		}
		if got := parallel[name]; got != want {
			t.Errorf("counter %q: parallel %d != serial %d", name, got, want)
		}
	}
	// Hits+misses (total planner queries) is scheduling-dependent too —
	// concurrent workers may both solve the same key — but can never be
	// fewer than the serial run's distinct sub-problems (the misses).
	if parallel["p2p/cache/hits"]+parallel["p2p/cache/misses"] < serial["p2p/cache/misses"] {
		t.Errorf("parallel planner queries %d below serial distinct sub-problems %d",
			parallel["p2p/cache/hits"]+parallel["p2p/cache/misses"], serial["p2p/cache/misses"])
	}
}

// sliceIndex finds the named gauge in a snapshot.
func sliceIndex(t *testing.T, snap obs.Snapshot, name string) int {
	t.Helper()
	for i, g := range snap.Gauges {
		if g.Name == name {
			return i
		}
	}
	t.Fatalf("gauge %q not in snapshot", name)
	return -1
}

package synth

import (
	"fmt"
	"testing"

	"repro/internal/library"
	"repro/internal/model"
	"repro/internal/workloads"
)

// candidateSignature serializes everything the covering step and the
// report consumer can observe about the candidate sequence: order,
// channel sets, kinds, exact costs, plan shapes and hub positions.
// Byte-identical signatures mean byte-identical covering instances.
func candidateSignature(rep *Report) string {
	sig := ""
	for _, c := range rep.Candidates {
		sig += fmt.Sprintf("%s%v cost=%x sel=%v", c.Kind, c.Channels, c.Cost, c.Selected)
		if c.Plan != nil {
			sig += fmt.Sprintf(" plan=%s/%d/%d/%x", c.Plan.Link.Name, c.Plan.Segments, c.Plan.Chains, c.Plan.Cost)
		}
		if c.Merge != nil {
			sig += fmt.Sprintf(" mux=%v demux=%v trunk=%s/%d/%x",
				c.Merge.MuxPos, c.Merge.DemuxPos,
				c.Merge.TrunkPlan.Link.Name, c.Merge.TrunkPlan.Segments, c.Merge.TrunkPlan.Cost)
		}
		sig += "|"
	}
	return sig
}

// runWorkload synthesizes one instance at the given worker count and
// returns the full observable outcome.
func runWorkload(t *testing.T, cg *model.ConstraintGraph, lib *library.Library, workers int) (*Report, int, int) {
	t.Helper()
	ig, rep, err := Synthesize(cg, lib, Options{Workers: workers})
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return rep, ig.NumVertices(), ig.NumLinks()
}

// TestParallelPricingEquivalence: Synthesize with Workers > 1 must be
// observationally identical to the serial run — same candidate sequence
// (byte-identical signature), same optimal cost, same counters, same
// implementation-graph shape — on the WAN instance and on seeded random
// workloads of varying density. Run under -race this doubles as the
// pool/cache race check.
func TestParallelPricingEquivalence(t *testing.T) {
	lib := workloads.WANLibrary()
	instances := []struct {
		name string
		cg   func() *model.ConstraintGraph
	}{
		{"wan", workloads.WAN},
		{"rand-s77", func() *model.ConstraintGraph {
			return workloads.RandomWAN(workloads.RandomWANConfig{Seed: 77, Clusters: 3, Channels: 9})
		}},
		{"rand-s1010", func() *model.ConstraintGraph {
			return workloads.RandomWAN(workloads.RandomWANConfig{Seed: 1010, Clusters: 3, Channels: 10})
		}},
		{"rand-s5", func() *model.ConstraintGraph {
			return workloads.RandomWAN(workloads.RandomWANConfig{Seed: 5, Clusters: 2, Channels: 8})
		}},
	}
	for _, inst := range instances {
		t.Run(inst.name, func(t *testing.T) {
			serial, sv, sl := runWorkload(t, inst.cg(), lib, 1)
			serialSig := candidateSignature(serial)
			for _, workers := range []int{2, 4, 8} {
				rep, v, l := runWorkload(t, inst.cg(), lib, workers)
				if got := candidateSignature(rep); got != serialSig {
					t.Fatalf("workers=%d candidate sequence diverged:\nserial:   %s\nparallel: %s",
						workers, serialSig, got)
				}
				if rep.Cost != serial.Cost || rep.P2PCost != serial.P2PCost {
					t.Fatalf("workers=%d cost %v/%v, serial %v/%v",
						workers, rep.Cost, rep.P2PCost, serial.Cost, serial.P2PCost)
				}
				if rep.PricedMergings != serial.PricedMergings ||
					rep.InfeasibleMergings != serial.InfeasibleMergings ||
					rep.DominatedMergings != serial.DominatedMergings {
					t.Fatalf("workers=%d counters (%d,%d,%d), serial (%d,%d,%d)",
						workers, rep.PricedMergings, rep.InfeasibleMergings, rep.DominatedMergings,
						serial.PricedMergings, serial.InfeasibleMergings, serial.DominatedMergings)
				}
				if v != sv || l != sl {
					t.Fatalf("workers=%d graph %d vertices/%d links, serial %d/%d", workers, v, l, sv, sl)
				}
			}
		})
	}
}

// TestPlanCacheCounters: the run's shared planner must actually be
// exercised — Step 1a and Step 1c both go through it, and any non-trivial
// instance re-prices sub-problems, so hits must be non-zero and the
// counters must survive into the report.
func TestPlanCacheCounters(t *testing.T) {
	_, rep, err := Synthesize(workloads.WAN(), workloads.WANLibrary(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PlanCache.Misses == 0 {
		t.Error("plan cache recorded no misses; planner not wired in")
	}
	if rep.PlanCache.Hits == 0 {
		t.Error("plan cache recorded no hits on the WAN instance")
	}
	if rate := rep.PlanCache.HitRate(); rate <= 0 || rate >= 1 {
		t.Errorf("hit rate %v outside (0,1)", rate)
	}
}

// TestPhaseTimings: the per-phase breakdown must be populated and must
// not exceed the total elapsed time.
func TestPhaseTimings(t *testing.T) {
	_, rep, err := Synthesize(workloads.WAN(), workloads.WANLibrary(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	tm := rep.Timings
	if tm.Enumerate <= 0 || tm.Price <= 0 || tm.Solve <= 0 || tm.Materialize <= 0 {
		t.Errorf("unpopulated phase timing: %+v", tm)
	}
	if sum := tm.Enumerate + tm.Price + tm.Solve + tm.Materialize; sum > rep.Elapsed {
		t.Errorf("phase sum %v exceeds elapsed %v", sum, rep.Elapsed)
	}
	if rep.Workers <= 0 {
		t.Errorf("report workers = %d", rep.Workers)
	}
}

// TestWorkersReported: an explicit worker count is echoed in the report.
func TestWorkersReported(t *testing.T) {
	_, rep, err := Synthesize(workloads.WAN(), workloads.WANLibrary(), Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workers != 3 {
		t.Errorf("report workers = %d, want 3", rep.Workers)
	}
}

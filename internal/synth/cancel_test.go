package synth

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/impl"
	"repro/internal/merging"
	"repro/internal/model"
	"repro/internal/workloads"
)

// TestPreCanceledContext: a context that is dead before synthesis
// starts returns ErrCanceled (matching the context's own error too) and
// no partial result.
func TestPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ig, rep, err := SynthesizeContext(ctx, workloads.WAN(), workloads.WANLibrary(), Options{})
	if ig != nil || rep != nil {
		t.Fatalf("pre-canceled context returned a result: ig=%v rep=%v", ig, rep)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("err = %v, want errors.Is(err, ErrCanceled)", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want errors.Is(err, context.Canceled)", err)
	}

	// Same for an already-expired deadline.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	_, _, err = SynthesizeContext(dctx, workloads.WAN(), workloads.WANLibrary(), Options{})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired deadline: err = %v, want ErrCanceled and context.DeadlineExceeded", err)
	}
}

// checkDegradedResult asserts the anytime contract on a degraded run:
// no error, a verifiable graph, a populated degradation section, a cost
// no better than the true optimum and no worse than all-p2p, and a
// finite gap bound.
func checkDegradedResult(t *testing.T, ig *impl.Graph, rep *Report, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("degraded run must not error: %v", err)
	}
	if ig == nil || rep == nil {
		t.Fatal("degraded run returned nil result")
	}
	if err := ig.Verify(impl.VerifyOptions{}); err != nil {
		t.Fatalf("degraded architecture fails verification: %v", err)
	}
	if !rep.Degradation.Degraded() {
		t.Fatal("Degradation not populated on a degraded run")
	}
	if rep.ResultOptimal() {
		t.Fatal("ResultOptimal() true on a degraded run")
	}
	if len(rep.Degradation.Summary()) == 0 {
		t.Fatal("Degradation.Summary() empty on a degraded run")
	}
	if rep.Cost > rep.P2PCost+1e-9 {
		t.Fatalf("degraded cost %.6f exceeds the all-p2p fallback %.6f", rep.Cost, rep.P2PCost)
	}
	if g := rep.Degradation.GapBound; g < -1e-9 || math.IsInf(g, 0) || math.IsNaN(g) {
		t.Fatalf("gap bound %v not finite/non-negative", g)
	}
}

// TestDeadlineDuringPricing: a latency hook makes Step 1c slow enough
// that a small overall timeout reliably expires there; the run must
// degrade gracefully at every worker count.
func TestDeadlineDuringPricing(t *testing.T) {
	testPricingHook = func([]model.ChannelID) { time.Sleep(2 * time.Millisecond) }
	defer func() { testPricingHook = nil }()

	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ig, rep, err := Synthesize(workloads.WAN(), workloads.WANLibrary(), Options{
				Workers: workers,
				Timeout: 15 * time.Millisecond,
			})
			checkDegradedResult(t, ig, rep, err)
			if !rep.Degradation.PricingInterrupted {
				t.Errorf("PricingInterrupted not set; degradation: %v", rep.Degradation.Summary())
			}
			if rep.Degradation.PricingSkipped <= 0 {
				t.Errorf("PricingSkipped = %d, want > 0", rep.Degradation.PricingSkipped)
			}
		})
	}
}

// TestPhaseBudgetPrice: a tiny per-phase pricing budget degrades Step 1c
// while the rest of the flow — under no overall deadline — completes,
// and the budget is recorded in BudgetsExceeded.
func TestPhaseBudgetPrice(t *testing.T) {
	testPricingHook = func([]model.ChannelID) { time.Sleep(2 * time.Millisecond) }
	defer func() { testPricingHook = nil }()

	ig, rep, err := Synthesize(workloads.WAN(), workloads.WANLibrary(), Options{
		Workers: 1,
		Budgets: Budgets{Price: 10 * time.Millisecond},
	})
	checkDegradedResult(t, ig, rep, err)
	if !rep.Degradation.PricingInterrupted {
		t.Error("PricingInterrupted not set")
	}
	found := false
	for _, name := range rep.Degradation.BudgetsExceeded {
		if name == "price" {
			found = true
		}
	}
	if !found {
		t.Errorf("BudgetsExceeded = %v, want to contain %q", rep.Degradation.BudgetsExceeded, "price")
	}
	// The covering step ran to completion on the surviving candidates.
	if !rep.SolverOptimal {
		t.Error("solver should still prove optimality over the priced subset")
	}
}

// TestPricingPanicTyped: a panic inside candidate pricing surfaces as a
// *PricingPanicError naming the candidate — never a process crash — at
// every worker count (run under -race this also checks the pool's
// recovery path).
func TestPricingPanicTyped(t *testing.T) {
	testPricingHook = func(set []model.ChannelID) {
		if len(set) == 2 {
			panic("injected pricing panic")
		}
	}
	defer func() { testPricingHook = nil }()

	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ig, rep, err := Synthesize(workloads.WAN(), workloads.WANLibrary(), Options{Workers: workers})
			if err == nil {
				t.Fatal("panicking pricing hook must surface an error")
			}
			if ig != nil || rep != nil {
				t.Error("panicking run returned a partial result")
			}
			var pe *PricingPanicError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want errors.As(*PricingPanicError)", err)
			}
			if len(pe.Channels) != 2 {
				t.Errorf("panic error names candidate %v, want a 2-set", pe.Channels)
			}
			if pe.Value != "injected pricing panic" {
				t.Errorf("panic value = %v", pe.Value)
			}
			if len(pe.Stack) == 0 {
				t.Error("panic error carries no stack trace")
			}
		})
	}
}

// TestTruncatedEnumerationDegrades: CapTruncate mode flows through to
// the report and the result stays verifiable.
func TestTruncatedEnumerationDegrades(t *testing.T) {
	ig, rep, err := Synthesize(workloads.WAN(), workloads.WANLibrary(), Options{
		Merging: merging.Options{
			Policy:        merging.MaxIndexRef,
			MaxCandidates: 2,
			CapMode:       merging.CapTruncate,
		},
	})
	checkDegradedResult(t, ig, rep, err)
	if !rep.Degradation.EnumerationTruncated {
		t.Error("EnumerationTruncated not set")
	}
	if got := rep.Enumeration.TotalCandidates(); got != 2 {
		t.Errorf("TotalCandidates = %d, want 2", got)
	}
}

// TestModerateTimeoutAlwaysUsable: with a timeout the WAN run may or
// may not degrade depending on machine speed; either way the result
// must be verifiable and internally consistent.
func TestModerateTimeoutAlwaysUsable(t *testing.T) {
	ig, rep, err := Synthesize(workloads.WAN(), workloads.WANLibrary(), Options{
		Timeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if err := ig.Verify(impl.VerifyOptions{}); err != nil {
		t.Fatalf("result fails verification: %v", err)
	}
	if rep.Cost > rep.P2PCost+1e-9 {
		t.Fatalf("cost %.6f exceeds the all-p2p fallback %.6f", rep.Cost, rep.P2PCost)
	}
	if rep.Degradation.Degraded() == rep.ResultOptimal() && rep.SolverOptimal {
		// Degraded() and ResultOptimal() must disagree when the solver
		// proved optimality over whatever candidates it saw.
		t.Errorf("inconsistent: Degraded=%v ResultOptimal=%v SolverOptimal=%v",
			rep.Degradation.Degraded(), rep.ResultOptimal(), rep.SolverOptimal)
	}
}

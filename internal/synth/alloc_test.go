package synth

import (
	"testing"

	"repro/internal/library"
	"repro/internal/merging"
	"repro/internal/model"
	"repro/internal/p2p"
	"repro/internal/place"
	"repro/internal/workloads"
)

// The checked-in allocation budget for warm candidate pricing, enforced
// by `make bench-alloc` (part of the CI bench-gate job).
//
// A "warm" pricing is the steady state of Step 1c: the planner memo
// already holds every point-to-point sub-problem and the pricing lane's
// place.Scratch has grown to the largest merging. In that state the
// only remaining allocations are the returned candidate itself — its
// struct, the Channels copy, and the two exact-capacity access-plan
// slices — which is 4 allocations per candidate on both the Euclidean
// (WAN) and Manhattan (NoC) pricing paths. The budget leaves headroom
// of two for toolchain drift while still pinning the ≥50% reduction
// over the pre-flattening implementation, which measured 21.68
// allocations per candidate on the same WAN workload (per-iteration
// probe-slice literals in the pattern search, per-call direction
// slices, unpooled endpoint staging, and sync.Map boxing).
const allocBudgetPerCandidate = 6.0

// pricingAllocsPerCandidate prices every enumerated merging of the
// workload twice — once to warm the planner memo and scratch, once
// under testing.AllocsPerRun — and returns the steady-state average
// allocation count per priced candidate.
func pricingAllocsPerCandidate(t testing.TB, cg *model.ConstraintGraph, lib *library.Library) float64 {
	t.Helper()
	enum, err := merging.Enumerate(cg, lib, merging.Options{Policy: merging.MaxIndexRef})
	if err != nil {
		t.Fatal(err)
	}
	var sets [][]model.ChannelID
	for k := 2; k < len(enum.ByK); k++ {
		sets = append(sets, enum.ByK[k]...)
	}
	if len(sets) == 0 {
		t.Fatal("workload enumerates no mergings")
	}
	opt := place.Options{Planner: p2p.NewPlanner(lib), Scratch: &place.Scratch{}}
	price := func() {
		for _, set := range sets {
			if _, err := place.Optimize(cg, lib, set, opt); err != nil {
				t.Fatal(err)
			}
		}
	}
	price() // warm the planner memo and grow the scratch
	allocs := testing.AllocsPerRun(10, price)
	perCand := allocs / float64(len(sets))
	t.Logf("%d candidates, %.1f allocs/run, %.2f allocs/candidate (budget %.1f)",
		len(sets), allocs, perCand, allocBudgetPerCandidate)
	return perCand
}

// TestAllocBudgetWAN pins the warm pricing allocation budget on the
// paper's Euclidean WAN instance (the E5 workload).
func TestAllocBudgetWAN(t *testing.T) {
	if got := pricingAllocsPerCandidate(t, workloads.WAN(), workloads.WANLibrary()); got > allocBudgetPerCandidate {
		t.Errorf("WAN warm pricing allocates %.2f/candidate, budget %.1f", got, allocBudgetPerCandidate)
	}
}

// TestAllocBudgetNoC pins the warm pricing allocation budget on the
// Manhattan NoC instance (the E14 workload), which exercises the L1
// median scratch path.
func TestAllocBudgetNoC(t *testing.T) {
	if got := pricingAllocsPerCandidate(t, workloads.NoC(), workloads.NoCLibrary()); got > allocBudgetPerCandidate {
		t.Errorf("NoC warm pricing allocates %.2f/candidate, budget %.1f", got, allocBudgetPerCandidate)
	}
}

package synth

// Golden regression suite: canonical instances with their expected
// synthesis outcomes (optimal cost, point-to-point baseline, and the
// selected merge sets), frozen in testdata/golden.json. Any algorithmic
// change that shifts an optimum — intended or not — trips this suite
// and forces a conscious regeneration of the goldens.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/library"
	"repro/internal/merging"
	"repro/internal/model"
	"repro/internal/soc"
	"repro/internal/workloads"
)

type goldenCase struct {
	Name       string     `json:"name"`
	Cost       float64    `json:"cost"`
	P2PCost    float64    `json:"p2pCost"`
	MergedSets [][]string `json:"mergedSets"`
}

func goldenInstance(name string) (*model.ConstraintGraph, *library.Library, bool) {
	switch name {
	case "wan":
		return workloads.WAN(), workloads.WANLibrary(), true
	case "lan":
		return workloads.LAN(), workloads.LANLibrary(), true
	case "mcm":
		return workloads.MCM(), workloads.MCMLibrary(), true
	case "random-wan-21":
		return workloads.RandomWAN(workloads.RandomWANConfig{
			Seed: 21, Clusters: 3, Channels: 8,
		}), workloads.WANLibrary(), true
	case "noc":
		return workloads.NoC(), workloads.NoCLibrary(), true
	case "random-soc-9":
		return workloads.RandomSoC(workloads.RandomSoCConfig{
			Seed: 9, Modules: 6, Channels: 7,
		}), soc.Tech180nm().Library(), true
	}
	return nil, nil, false
}

func TestGoldenRegressions(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "golden.json"))
	if err != nil {
		t.Fatalf("read goldens: %v", err)
	}
	var cases []goldenCase
	if err := json.Unmarshal(data, &cases); err != nil {
		t.Fatalf("decode goldens: %v", err)
	}
	if len(cases) < 5 {
		t.Fatalf("only %d golden cases", len(cases))
	}
	for _, gc := range cases {
		gc := gc
		t.Run(gc.Name, func(t *testing.T) {
			cg, lib, ok := goldenInstance(gc.Name)
			if !ok {
				t.Fatalf("unknown golden instance %q", gc.Name)
			}
			_, rep, err := Synthesize(cg, lib, Options{
				Merging: merging.Options{Policy: merging.MaxIndexRef, MaxK: 4},
			})
			if err != nil {
				t.Fatal(err)
			}
			// Costs are deterministic; a tight relative tolerance guards
			// against platform float noise only.
			if rel := math.Abs(rep.Cost-gc.Cost) / math.Max(1, gc.Cost); rel > 1e-9 {
				t.Errorf("cost = %.9f, golden %.9f", rep.Cost, gc.Cost)
			}
			if rel := math.Abs(rep.P2PCost-gc.P2PCost) / math.Max(1, gc.P2PCost); rel > 1e-9 {
				t.Errorf("p2p = %.9f, golden %.9f", rep.P2PCost, gc.P2PCost)
			}
			var got [][]string
			for _, cand := range rep.SelectedCandidates() {
				if cand.Kind != "merge" {
					continue
				}
				var names []string
				for _, ch := range cand.Channels {
					names = append(names, cg.Channel(ch).Name)
				}
				sort.Strings(names)
				got = append(got, names)
			}
			sort.Slice(got, func(i, j int) bool {
				return fmt.Sprint(got[i]) < fmt.Sprint(got[j])
			})
			if fmt.Sprint(got) != fmt.Sprint(gc.MergedSets) {
				t.Errorf("merged sets = %v, golden %v", got, gc.MergedSets)
			}
		})
	}
}

// Package synth is the core of the reproduction: the end-to-end
// constraint-driven communication synthesis flow of the paper.
//
// Given a communication constraint graph and a communication library it
// runs the two-step algorithm of Section 3:
//
//  1. Local solution generation — the optimum point-to-point
//     implementation of every constraint arc (p2p), plus all candidate
//     k-way arc mergings that survive the Lemma 3.1 / Lemma 3.2 /
//     Theorem 3.1 / Theorem 3.2 prunes (merging), each priced by the
//     nonlinear placement optimization (place);
//  2. Global solution derivation — a weighted Unate Covering Problem
//     over the candidate set (ucp), whose optimum selects the subset of
//     candidates forming the minimum-cost implementation graph.
//
// The selected candidates are then materialized into an implementation
// graph (impl) that satisfies every constraint of Definition 2.4.
package synth

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/impl"
	"repro/internal/library"
	"repro/internal/merging"
	"repro/internal/model"
	"repro/internal/num"
	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/place"
	"repro/internal/ucp"
)

// SolverKind selects the covering solver.
type SolverKind int

const (
	// ExactSolver is the branch-and-bound UCP solver (default).
	ExactSolver SolverKind = iota
	// GreedySolver is the weight-per-row heuristic, for comparison runs.
	GreedySolver
)

// Options configures the full flow.
type Options struct {
	// P2P configures point-to-point planning.
	P2P p2p.Options
	// Merging configures candidate enumeration.
	Merging merging.Options
	// Place configures candidate placement/pricing.
	Place place.Options
	// Solver selects the covering solver.
	Solver SolverKind
	// KeepDominated keeps merging candidates that cost at least as much
	// as their channels' summed point-to-point implementations. The
	// paper discards these ("the algorithm discards all the sub-optimal
	// local solutions"); keeping them only grows the covering instance.
	KeepDominated bool
	// Workers bounds the candidate-pricing worker pool (Step 1c, the
	// dominant cost of the flow). Zero or negative means
	// runtime.NumCPU(); 1 prices serially on the calling goroutine. The
	// results are collected in enumeration order and every pricing
	// sub-problem is a pure function of its candidate set, so the
	// report — candidate order, costs, counters — and the synthesized
	// graph are identical for every worker count.
	Workers int
	// Timeout bounds the whole run's wall clock. When it expires the
	// flow does not error: each remaining phase is cut short
	// cooperatively and the run still returns a feasible, verified
	// architecture with Report.Degradation describing what was cut
	// (anytime semantics). Zero means no deadline. A deadline already
	// present on the caller's context behaves identically; the
	// effective deadline is whichever is earlier.
	Timeout time.Duration
	// Budgets optionally bound individual phases; see Budgets.
	Budgets Budgets
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.NumCPU()
	}
	return o.Workers
}

// Candidate describes one local solution considered by the covering
// step.
type Candidate struct {
	// Channels are the constraint arcs this candidate implements.
	Channels []model.ChannelID
	// Kind is "p2p" for single-arc candidates, "merge" for k-way
	// mergings.
	Kind string
	// Cost is the candidate's weight in the covering instance.
	Cost float64
	// Plan is set for p2p candidates.
	Plan *p2p.Plan
	// Merge is set for merging candidates.
	Merge *place.Candidate
	// Selected marks candidates chosen by the covering optimum.
	Selected bool
}

// Report summarizes a synthesis run.
type Report struct {
	// Cost is the optimal implementation-graph cost found.
	Cost float64
	// P2PCost is the optimum point-to-point implementation graph cost
	// (Definition 2.6), the paper's implicit baseline.
	P2PCost float64
	// Candidates lists every priced local solution.
	Candidates []Candidate
	// Enumeration carries the per-k candidate sets and Theorem 3.1
	// eliminations from the merging step.
	Enumeration *merging.Result
	// PricedMergings counts mergings that survived pricing;
	// InfeasibleMergings counts those the placement step rejected;
	// DominatedMergings counts those dropped as costlier than their
	// point-to-point alternative.
	PricedMergings     int
	InfeasibleMergings int
	DominatedMergings  int
	// UCPStats carries covering-solver counters.
	UCPStats ucp.Stats
	// SolverOptimal is true when the covering solver proved optimality.
	SolverOptimal bool
	// PlanCache reports the run's memoized point-to-point planner: how
	// many BestPlan sub-problems were answered from the memo table
	// (shared by Step 1a and every Step 1c pricing) versus solved.
	PlanCache p2p.CacheStats
	// Workers is the pricing worker-pool size the run actually used.
	Workers int
	// Degradation records what (if anything) a deadline, per-phase
	// budget, or candidate cap cut short; its zero value means the run
	// completed in full.
	Degradation Degradation
	// Timings breaks Elapsed into the flow's phases.
	Timings Timings
	// Elapsed is the wall-clock synthesis time.
	Elapsed time.Duration
}

// Timings are the per-phase wall-clock durations of one synthesis run.
type Timings struct {
	// Enumerate covers local solution generation Steps 1a–1b: optimum
	// point-to-point planning plus candidate-merging enumeration.
	Enumerate time.Duration
	// Price covers Step 1c: placement-pricing every surviving merging.
	Price time.Duration
	// Solve covers Step 2: the unate covering solver.
	Solve time.Duration
	// Materialize covers building and verifying the implementation
	// graph from the selected candidates.
	Materialize time.Duration
}

// ResultOptimal reports whether the returned architecture is provably
// optimal: the covering solver proved optimality AND no upstream phase
// (enumeration, pricing) was cut short — a truncated candidate set can
// hide cheaper mergings even when its covering solve is exact.
func (r *Report) ResultOptimal() bool {
	return r.SolverOptimal && !r.Degradation.Degraded()
}

// SavingsPercent returns how much cheaper the synthesized architecture
// is than the optimum point-to-point implementation graph, in percent.
func (r *Report) SavingsPercent() float64 {
	if num.IsZero(r.P2PCost) {
		return 0
	}
	return 100 * (1 - r.Cost/r.P2PCost)
}

// SelectedCandidates returns the candidates chosen by the optimum.
func (r *Report) SelectedCandidates() []Candidate {
	var out []Candidate
	for _, c := range r.Candidates {
		if c.Selected {
			out = append(out, c)
		}
	}
	return out
}

// Synthesize runs the full flow and returns the materialized optimal
// implementation graph together with the run report.
func Synthesize(cg *model.ConstraintGraph, lib *library.Library, opt Options) (*impl.Graph, *Report, error) {
	return SynthesizeContext(context.Background(), cg, lib, opt)
}

// SynthesizeContext is Synthesize under cooperative cancellation with
// anytime semantics. A context that is already dead on entry returns
// ErrCanceled; after that, a deadline (from the context or from
// Options.Timeout, whichever is earlier) never produces an error or a
// partial failure — each phase is cut short at its next checkpoint, the
// flow degrades to the best architecture constructible from the work
// completed so far (at worst the all-point-to-point implementation,
// which is always feasible), and Report.Degradation records what was
// cut together with an optimality-gap bound.
func SynthesizeContext(ctx context.Context, cg *model.ConstraintGraph, lib *library.Library, opt Options) (_ *impl.Graph, _ *Report, err error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	if opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
		defer cancel()
	}
	if err := cg.Validate(); err != nil {
		return nil, nil, err
	}
	if err := lib.Validate(); err != nil {
		return nil, nil, err
	}
	report := &Report{}

	// Progress events stream to live watchers (CLI -progress, cdcsd SSE
	// subscribers) while the run is in flight. The handle is fetched
	// once per run; without a stream it is nil and every publish below
	// is a nil-receiver no-op.
	events := obs.EventsFromContext(ctx)
	events.Publish(obs.Event{
		Type:     obs.EventRunStart,
		Channels: cg.NumChannels(),
		Workers:  opt.workers(),
	})
	defer func() {
		if err != nil {
			events.Publish(obs.Event{Type: obs.EventRunError, Err: err.Error()})
			return
		}
		events.Publish(obs.Event{
			Type:     obs.EventRunEnd,
			Cost:     report.Cost,
			Optimal:  report.ResultOptimal(),
			Degraded: report.Degradation.Degraded(),
		})
	}()

	// The run span roots the trace; every phase span (and the spans the
	// merging/ucp layers open through the derived contexts) nests under
	// it. Without a sink on ctx this — like every obs call below — is a
	// no-op costing one context lookup per phase.
	ctx, endRun := obs.Trace(ctx, "synth/run",
		obs.Int("channels", cg.NumChannels()), obs.Int("workers", opt.workers()))
	defer func() {
		endRun(obs.Float("cost", report.Cost),
			obs.Float("p2pCost", report.P2PCost),
			obs.Bool("degraded", report.Degradation.Degraded()))
	}()

	// phaseCtx nests an optional per-phase budget inside the overall
	// deadline (via the given parent); noteBudget records — after the
	// phase ran — whether the phase budget (rather than the overall
	// deadline) was what expired.
	phaseCtx := func(parent context.Context, budget time.Duration) (context.Context, context.CancelFunc) {
		if budget <= 0 {
			return parent, func() {}
		}
		return context.WithTimeout(parent, budget)
	}
	noteBudget := func(name string, pctx, parent context.Context) {
		if pctx != parent && pctx.Err() != nil && ctx.Err() == nil {
			report.Degradation.BudgetsExceeded = append(report.Degradation.BudgetsExceeded, name)
		}
	}

	// The placement optimizer prices access legs and trunks with its own
	// embedded point-to-point planner; unless the caller configured it
	// separately, it must agree with the top-level planner or candidate
	// prices would diverge from materialized costs.
	if (opt.Place.P2P == p2p.Options{}) {
		opt.Place.P2P = opt.P2P
	}
	// One memo table serves the whole run: Step 1a's per-channel plans
	// and every access-leg/trunk sub-problem of Step 1c. BestPlan is a
	// pure function of (distance, bandwidth, options) over the library,
	// so sharing the table across pricing workers cannot change any
	// result.
	planner := p2p.NewPlanner(lib)
	if opt.Place.Planner == nil {
		opt.Place.Planner = planner
	}
	report.Workers = opt.workers()

	// --- Step 1a: optimum point-to-point plans. ---
	// Not interruptible by design: the p2p plans are what every
	// degraded outcome falls back to, and they cost O(n·|L|).
	phase := time.Now()
	n := cg.NumChannels()
	events.Publish(obs.Event{Type: obs.EventPhaseStart, Phase: "plan"})
	_, endPlan := obs.Trace(ctx, "p2p/plan", obs.Int("channels", n))
	p2pPlans := make([]p2p.Plan, n)
	for i := 0; i < n; i++ {
		ch := model.ChannelID(i)
		plan, err := planner.BestPlan(cg.Distance(ch), cg.Bandwidth(ch), opt.P2P)
		if err != nil {
			endPlan()
			return nil, nil, fmt.Errorf("synth: channel %q: %w", cg.Channel(ch).Name, err)
		}
		p2pPlans[i] = plan
		report.P2PCost += plan.Cost
	}
	endPlan(obs.Float("p2pCost", report.P2PCost))
	events.Publish(obs.Event{Type: obs.EventPhaseEnd, Phase: "plan", Channels: n})

	// --- Step 1b: candidate mergings. ---
	// merging.EnumerateContext opens its own "merging/enumerate" span
	// and publishes the per-lemma prune counters plus one EventEnumLevel
	// per completed arity.
	events.Publish(obs.Event{Type: obs.EventPhaseStart, Phase: "enumerate"})
	ectx, ecancel := phaseCtx(ctx, opt.Budgets.Enumerate)
	enum, err := merging.EnumerateContext(ectx, cg, lib, opt.Merging)
	noteBudget("enumerate", ectx, ctx)
	ecancel()
	if err != nil {
		return nil, nil, err
	}
	report.Enumeration = enum
	report.Degradation.EnumerationTruncated = enum.Truncated
	report.Degradation.EnumerationInterrupted = enum.Interrupted
	report.Timings.Enumerate = time.Since(phase)
	events.Publish(obs.Event{
		Type: obs.EventPhaseEnd, Phase: "enumerate",
		Candidates: enum.TotalCandidates(), SetsTested: enum.SetsTested,
	})

	// --- Step 1c: price every candidate. ---
	phase = time.Now()
	events.Publish(obs.Event{Type: obs.EventPhaseStart, Phase: "price", Candidates: enum.TotalCandidates()})
	for i := 0; i < n; i++ {
		plan := p2pPlans[i]
		report.Candidates = append(report.Candidates, Candidate{
			Channels: []model.ChannelID{model.ChannelID(i)},
			Kind:     "p2p",
			Cost:     plan.Cost,
			Plan:     &plan,
		})
	}
	priceCtx, endPrice := obs.Trace(ctx, "synth/price",
		obs.Int("mergings", enum.TotalCandidates()))
	pctx, pcancel := phaseCtx(priceCtx, opt.Budgets.Price)
	err = priceCandidates(pctx, cg, lib, enum, p2pPlans, opt, report)
	noteBudget("price", pctx, priceCtx)
	pcancel()
	if err != nil {
		endPrice()
		return nil, nil, err
	}
	endPrice(
		obs.Int("priced", report.PricedMergings),
		obs.Int("infeasible", report.InfeasibleMergings),
		obs.Int("dominated", report.DominatedMergings),
		obs.Int("skipped", report.Degradation.PricingSkipped),
	)
	report.Timings.Price = time.Since(phase)
	events.Publish(obs.Event{
		Type: obs.EventPhaseEnd, Phase: "price",
		Candidates: len(report.Candidates),
	})

	// --- Step 2: weighted unate covering. ---
	phase = time.Now()
	events.Publish(obs.Event{Type: obs.EventPhaseStart, Phase: "solve"})
	m := ucp.NewMatrix(n)
	for idx, c := range report.Candidates {
		rows := make([]int, len(c.Channels))
		for i, ch := range c.Channels {
			rows[i] = int(ch)
		}
		if _, err := m.AddColumn(ucp.Column{
			Rows:   rows,
			Weight: c.Cost,
			Label:  fmt.Sprintf("cand%d", idx),
		}); err != nil {
			return nil, nil, err
		}
	}
	solveCtx, endSolve := obs.Trace(ctx, "synth/solve",
		obs.Int("rows", n), obs.Int("cols", len(report.Candidates)))
	var sol ucp.Solution
	switch opt.Solver {
	case GreedySolver:
		sol, err = m.SolveGreedy()
	default:
		// Independent blocks (channel groups sharing no candidate) are
		// solved separately — exponentially cheaper, same optimum. On
		// deadline the branch-and-bound returns its greedy-seeded best
		// incumbent rather than erroring (anytime solving). The ucp
		// layer opens its own "ucp/solve" spans under solveCtx and
		// publishes the node/prune/incumbent counters.
		sctx, scancel := phaseCtx(solveCtx, opt.Budgets.Solve)
		sol, err = m.SolveDecomposedContext(sctx)
		noteBudget("solve", sctx, solveCtx)
		scancel()
	}
	if err != nil {
		endSolve()
		return nil, nil, err
	}
	endSolve(obs.Int("nodes", sol.Stats.Nodes), obs.Bool("optimal", sol.Optimal))
	report.UCPStats = sol.Stats
	report.SolverOptimal = sol.Optimal
	if sol.Interrupted {
		report.Degradation.SolverInterrupted = true
		report.Degradation.CoverLowerBound = sol.LowerBound
		report.Degradation.GapBound = sol.GapBound()
	}
	report.Cost = sol.Cost
	for _, j := range sol.Columns {
		report.Candidates[j].Selected = true
	}
	report.Timings.Solve = time.Since(phase)
	events.Publish(obs.Event{
		Type: obs.EventPhaseEnd, Phase: "solve",
		Cost: sol.Cost, Nodes: sol.Stats.Nodes, Optimal: sol.Optimal,
	})

	// --- Materialize the selected candidates. ---
	phase = time.Now()
	events.Publish(obs.Event{Type: obs.EventPhaseStart, Phase: "materialize"})
	_, endMat := obs.Trace(ctx, "synth/materialize",
		obs.Int("selected", len(sol.Columns)))
	ig, err := materialize(cg, lib, report)
	if err != nil {
		endMat()
		return nil, nil, err
	}
	endMat()
	report.Timings.Materialize = time.Since(phase)
	events.Publish(obs.Event{Type: obs.EventPhaseEnd, Phase: "materialize"})
	report.PlanCache = planner.Stats()
	report.Elapsed = time.Since(start)
	publishRun(ctx, report)
	return ig, report, nil
}

// publishRun adds the run's summary counters — including the memoized
// planner's cache statistics, which only settle once every phase has
// run — to the registry carried by ctx (no-op without one). The
// planner's single-flight fill makes misses count unique sub-problems
// solved (deterministic at any worker count); cmd/bench-diff still
// ignores the p2p/cache/ prefix by default so baselines recorded under
// the old attempt-counting semantics keep comparing cleanly.
func publishRun(ctx context.Context, r *Report) {
	m := obs.FromContext(ctx).Metrics()
	if m == nil {
		return
	}
	m.Counter("synth/runs").Add(1)
	m.Counter("synth/candidates").Add(int64(len(r.Candidates)))
	m.Counter("synth/priced_mergings").Add(int64(r.PricedMergings))
	m.Counter("synth/infeasible_mergings").Add(int64(r.InfeasibleMergings))
	m.Counter("synth/dominated_mergings").Add(int64(r.DominatedMergings))
	m.Counter("p2p/cache/hits").Add(r.PlanCache.Hits)
	m.Counter("p2p/cache/misses").Add(r.PlanCache.Misses)
	m.Counter("p2p/cache/entries").Add(r.PlanCache.Entries)
	m.Gauge("p2p/cache/shards").Set(int64(r.PlanCache.Shards))
	m.Gauge("synth/price/workers").Set(int64(r.Workers))
}

// testPricingHook, when non-nil, is invoked with each candidate set
// just before it is priced. Tests use it to inject latency or panics
// into Step 1c; production code never sets it.
var testPricingHook func([]model.ChannelID)

// priceOne prices a single candidate set, converting a panic anywhere
// inside the placement optimization into a typed *PricingPanicError
// naming the candidate. The recover lives here — inside the function
// each worker goroutine calls — so a panicking worker can never take
// down the process.
func priceOne(
	cg *model.ConstraintGraph, lib *library.Library,
	set []model.ChannelID, opt place.Options,
) (cand *place.Candidate, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PricingPanicError{
				Channels: append([]model.ChannelID(nil), set...),
				Value:    r,
				Stack:    debug.Stack(),
			}
		}
	}()
	if hook := testPricingHook; hook != nil {
		hook(set)
	}
	return place.Optimize(cg, lib, set, opt)
}

// priceCandidates runs Step 1c — placement-pricing every enumerated
// merging — over a bounded worker pool. Candidate sets are independent
// sub-problems, so they fan out freely; results are collected into a
// slice indexed by enumeration order and appended to the report
// serially, which keeps the candidate sequence, the counters and hence
// the covering instance identical to a single-worker run.
//
// When ctx expires mid-phase, no further candidates are dispatched:
// already-dispatched pricings finish (each is bounded by the pattern
// search's iteration cap), undispatched ones are counted as skipped in
// Report.Degradation, and the covering step proceeds over what was
// priced. The only error it returns is a *PricingPanicError.
func priceCandidates(
	ctx context.Context,
	cg *model.ConstraintGraph, lib *library.Library,
	enum *merging.Result, p2pPlans []p2p.Plan,
	opt Options, report *Report,
) error {
	total := 0
	for k := 2; k <= len(p2pPlans); k++ {
		total += len(enum.ByK[k])
	}
	if total == 0 {
		return nil
	}
	sets := make([][]model.ChannelID, 0, total)
	for k := 2; k <= len(p2pPlans); k++ {
		sets = append(sets, enum.ByK[k]...)
	}

	type priced struct {
		cand *place.Candidate
		err  error
		done bool
	}
	results := make([]priced, len(sets))

	// Worker-pool instruments, fetched once and shared by every worker
	// (handles are atomic and nil-safe, so the disabled path costs one
	// nil check per pricing). queue_depth counts not-yet-priced
	// mergings: it starts at the backlog size, ends at zero on a full
	// run, and on deadline is left at exactly the skipped count.
	sink := obs.FromContext(ctx)
	met := sink.Metrics()
	now := sink.Clock()
	pricings := met.Counter("synth/price/pricings")
	arityHist := met.Histogram("synth/price/arity", 2, 3, 4, 6, 8, 12, 16)
	durHist := met.Histogram("synth/price/duration_us", 100, 1_000, 10_000, 100_000, 1_000_000)
	queueDepth := met.Gauge("synth/price/queue_depth")
	queueDepth.Set(int64(len(sets)))
	// Each pricing lane owns one placement scratch: the buffers behind
	// the pattern search and convex seed are reused across every
	// candidate the lane prices, so a warm pricing allocates only the
	// candidate it returns. Lane scratches are never shared (Optimize
	// mutates them), which is why the scratch rides a parameter here
	// rather than sitting in opt.Place up front.
	priceSet := func(i int, sc *place.Scratch) {
		var t0 time.Time
		if durHist != nil {
			t0 = now()
		}
		popt := opt.Place
		popt.Scratch = sc
		cand, err := priceOne(cg, lib, sets[i], popt)
		if durHist != nil {
			durHist.Record(now().Sub(t0).Microseconds())
		}
		results[i] = priced{cand: cand, err: err, done: true}
		pricings.Add(1)
		arityHist.Record(int64(len(sets[i])))
		queueDepth.Add(-1)
	}

	done := ctx.Done()
	canceled := func() bool {
		if done == nil {
			return false
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	workers := opt.workers()
	if workers > len(sets) {
		workers = len(sets)
	}
	// scratch_pools reports how many placement scratches the phase kept
	// alive (one per pricing lane). A gauge, not a counter: the value
	// follows the worker count, which is machine-dependent by default,
	// and gauges stay out of the benchmark baselines.
	met.Gauge("synth/price/scratch_pools").Set(int64(max(workers, 1)))
	if workers <= 1 {
		sc := &place.Scratch{}
		for i := range sets {
			if canceled() {
				break
			}
			priceSet(i, sc)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Workers run on their own goroutines, so ctx's pprof
				// label set (phase=synth/price, plus any workload
				// labels) must be applied explicitly for CPU profiles
				// to attribute their samples.
				obs.ApplyGoroutineLabels(ctx)
				sc := &place.Scratch{}
				for i := range jobs {
					priceSet(i, sc)
				}
			}()
		}
		for i := range sets {
			if canceled() {
				break
			}
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}

	for i, set := range sets {
		if !results[i].done {
			report.Degradation.PricingSkipped++
			continue
		}
		cand, err := results[i].cand, results[i].err
		if err != nil {
			var pe *PricingPanicError
			if errors.As(err, &pe) {
				return err
			}
			report.InfeasibleMergings++
			continue
		}
		if !opt.KeepDominated {
			var alt float64
			for _, ch := range set {
				alt += p2pPlans[ch].Cost
			}
			if num.GreaterEq(cand.Cost, alt) {
				report.DominatedMergings++
				continue
			}
		}
		report.PricedMergings++
		report.Candidates = append(report.Candidates, Candidate{
			Channels: append([]model.ChannelID(nil), set...),
			Kind:     "merge",
			Cost:     cand.Cost,
			Merge:    cand,
		})
	}
	if report.Degradation.PricingSkipped > 0 {
		report.Degradation.PricingInterrupted = true
	}
	return nil
}

// materialize builds the implementation graph from the selected
// candidates. A channel covered by several selected candidates receives
// the union of their path sets, so every built link is referenced.
func materialize(cg *model.ConstraintGraph, lib *library.Library, report *Report) (*impl.Graph, error) {
	ig := impl.New(cg)
	pathsOf := make(map[model.ChannelID][]graph.Path)

	for _, cand := range report.Candidates {
		if !cand.Selected {
			continue
		}
		switch cand.Kind {
		case "p2p":
			ch := cand.Channels[0]
			c := cg.Channel(ch)
			paths, err := p2p.BuildChains(ig, graph.VertexID(c.From), graph.VertexID(c.To), *cand.Plan, lib, c.Name)
			if err != nil {
				return nil, err
			}
			pathsOf[ch] = append(pathsOf[ch], paths...)
		case "merge":
			// Instantiate assigns directly; collect and merge instead.
			before := make(map[model.ChannelID][]graph.Path, len(cand.Channels))
			for _, ch := range cand.Channels {
				before[ch] = ig.Implementation(ch)
			}
			if err := cand.Merge.Instantiate(ig, lib); err != nil {
				return nil, err
			}
			for _, ch := range cand.Channels {
				pathsOf[ch] = append(pathsOf[ch], ig.Implementation(ch)...)
				ig.AssignImplementation(ch, before[ch])
			}
		default:
			return nil, fmt.Errorf("synth: unknown candidate kind %q", cand.Kind)
		}
	}
	// Assign in sorted channel order: each key is touched exactly once
	// so the result cannot depend on order, but iterating the map
	// directly would still trip the mapiter determinism invariant.
	channels := make([]model.ChannelID, 0, len(pathsOf))
	for ch := range pathsOf {
		channels = append(channels, ch)
	}
	sort.Slice(channels, func(i, j int) bool { return channels[i] < channels[j] })
	for _, ch := range channels {
		ig.AssignImplementation(ch, pathsOf[ch])
	}
	if err := ig.Verify(impl.VerifyOptions{}); err != nil {
		return nil, fmt.Errorf("synth: internal error: synthesized graph fails verification: %w", err)
	}
	return ig, nil
}

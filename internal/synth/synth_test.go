package synth

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/impl"
	"repro/internal/library"
	"repro/internal/merging"
	"repro/internal/model"
	"repro/internal/workloads"
)

func TestSynthesizeWANExample1(t *testing.T) {
	cg := workloads.WAN()
	lib := workloads.WANLibrary()
	ig, report, err := Synthesize(cg, lib, Options{
		Merging: merging.Options{Policy: merging.MaxIndexRef},
	})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if err := ig.Verify(impl.VerifyOptions{}); err != nil {
		t.Fatalf("Verify: %v", err)
	}

	// Paper result (Figure 4): merge {a4, a5, a6} on an optical trunk;
	// every other arc is a dedicated radio link.
	selected := report.SelectedCandidates()
	var mergeSets [][]model.ChannelID
	p2pChannels := map[string]bool{}
	for _, c := range selected {
		if c.Kind == "merge" {
			mergeSets = append(mergeSets, c.Channels)
			if c.Merge.TrunkPlan.Link.Name != "optical" {
				t.Errorf("merge trunk = %q, want optical", c.Merge.TrunkPlan.Link.Name)
			}
		} else {
			p2pChannels[cg.Channel(c.Channels[0]).Name] = true
			if c.Plan.Link.Name != "radio" {
				t.Errorf("p2p channel %s uses %q, want radio", cg.Channel(c.Channels[0]).Name, c.Plan.Link.Name)
			}
		}
	}
	if len(mergeSets) != 1 {
		t.Fatalf("selected %d mergings, want exactly 1", len(mergeSets))
	}
	wantMerged := map[string]bool{"a4": true, "a5": true, "a6": true}
	if len(mergeSets[0]) != 3 {
		t.Fatalf("merged set = %v, want {a4, a5, a6}", mergeSets[0])
	}
	for _, ch := range mergeSets[0] {
		if !wantMerged[cg.Channel(ch).Name] {
			t.Errorf("unexpected merged channel %s", cg.Channel(ch).Name)
		}
	}
	for _, name := range []string{"a1", "a2", "a3", "a7", "a8"} {
		if !p2pChannels[name] {
			t.Errorf("channel %s should be a dedicated radio link", name)
		}
	}

	// Quantitative shape: merging saves roughly a quarter of the
	// point-to-point cost on this instance.
	if report.Cost >= report.P2PCost {
		t.Errorf("optimum %v not better than p2p %v", report.Cost, report.P2PCost)
	}
	if s := report.SavingsPercent(); s < 20 || s > 40 {
		t.Errorf("savings = %.1f%%, expected 20–40%%", s)
	}
	// Graph cost agrees with the covering optimum.
	if got := ig.Cost(); math.Abs(got-report.Cost) > 1e-6 {
		t.Errorf("graph cost %v ≠ report cost %v", got, report.Cost)
	}
	if !report.SolverOptimal {
		t.Error("exact solver should prove optimality")
	}
	t.Logf("WAN: p2p=%.2f optimal=%.2f savings=%.1f%% candidates=%d (infeasible=%d dominated=%d)",
		report.P2PCost, report.Cost, report.SavingsPercent(),
		report.PricedMergings, report.InfeasibleMergings, report.DominatedMergings)
}

func TestSynthesizeWANCandidateCounts(t *testing.T) {
	// §4 of the paper: besides the 8 point-to-point implementations, S
	// contains 13 two-way, 21 three-way and 16 four-way candidate
	// mergings; a8 merges with nothing. (At k ≥ 5 our sound enumeration
	// keeps a small superset: 6 five-way + 1 six-way versus the paper's
	// 5 five-way — see EXPERIMENTS.md.)
	cg := workloads.WAN()
	lib := workloads.WANLibrary()
	_, report, err := Synthesize(cg, lib, Options{
		Merging: merging.Options{Policy: merging.MaxIndexRef},
	})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	enum := report.Enumeration
	wants := map[int]int{2: 13, 3: 21, 4: 16, 5: 6, 6: 1}
	for k, want := range wants {
		if got := enum.Count(k); got != want {
			t.Errorf("k=%d candidates = %d, want %d", k, got, want)
		}
	}
	a8, _ := cg.ChannelByName("a8")
	if k := enum.EliminatedAt[a8]; k != 2 {
		t.Errorf("a8 eliminated at k=%d, want 2 (not mergeable with any arc)", k)
	}
}

func TestGreedyNeverBeatsExact(t *testing.T) {
	cg := workloads.WAN()
	lib := workloads.WANLibrary()
	_, exact, err := Synthesize(cg, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, greedy, err := Synthesize(cg, lib, Options{Solver: GreedySolver})
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Cost < exact.Cost-1e-9 {
		t.Errorf("greedy %v beat exact %v", greedy.Cost, exact.Cost)
	}
}

func TestKeepDominatedGrowsInstanceNotCost(t *testing.T) {
	cg := workloads.WAN()
	lib := workloads.WANLibrary()
	_, lean, err := Synthesize(cg, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, full, err := Synthesize(cg, lib, Options{KeepDominated: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.PricedMergings <= lean.PricedMergings {
		t.Errorf("KeepDominated should yield more candidates: %d vs %d",
			full.PricedMergings, lean.PricedMergings)
	}
	if math.Abs(full.Cost-lean.Cost) > 1e-6 {
		t.Errorf("optimal cost changed with dominated candidates: %v vs %v", full.Cost, lean.Cost)
	}
}

func TestSynthesizeNoMergePossible(t *testing.T) {
	// Two divergent channels: every merging is pruned or dominated, so
	// the optimum equals the point-to-point baseline.
	cg := model.NewConstraintGraph(geom.Euclidean)
	u1 := cg.MustAddPort(model.Port{Name: "u1", Position: geom.Pt(0, 0)})
	v1 := cg.MustAddPort(model.Port{Name: "v1", Position: geom.Pt(-50, 0)})
	u2 := cg.MustAddPort(model.Port{Name: "u2", Position: geom.Pt(100, 0)})
	v2 := cg.MustAddPort(model.Port{Name: "v2", Position: geom.Pt(150, 0)})
	cg.MustAddChannel(model.Channel{Name: "left", From: u1, To: v1, Bandwidth: 10})
	cg.MustAddChannel(model.Channel{Name: "right", From: u2, To: v2, Bandwidth: 10})

	ig, report, err := Synthesize(cg, workloads.WANLibrary(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(report.Cost-report.P2PCost) > 1e-9 {
		t.Errorf("cost %v should equal p2p baseline %v", report.Cost, report.P2PCost)
	}
	if ig.NumCommVertices() != 0 {
		t.Errorf("no communication vertices expected, got %d", ig.NumCommVertices())
	}
}

func TestSynthesizeInfeasibleChannel(t *testing.T) {
	// A channel whose bandwidth no link provides (and duplication capped
	// off) must surface as an error.
	cg := model.NewConstraintGraph(geom.Euclidean)
	u := cg.MustAddPort(model.Port{Name: "u", Position: geom.Pt(0, 0)})
	v := cg.MustAddPort(model.Port{Name: "v", Position: geom.Pt(10, 0)})
	cg.MustAddChannel(model.Channel{Name: "fat", From: u, To: v, Bandwidth: 1e9})
	lib := &library.Library{
		Links: []library.Link{{Name: "thin", Bandwidth: 1, MaxSpan: math.Inf(1), CostPerLength: 1}},
	}
	opt := Options{}
	opt.P2P.MaxChains = 4
	if _, _, err := Synthesize(cg, lib, opt); err == nil {
		t.Error("unsatisfiable bandwidth should be an error")
	}
}

func TestSynthesizeValidatesInputs(t *testing.T) {
	cg := model.NewConstraintGraph(geom.Euclidean)
	if _, _, err := Synthesize(cg, workloads.WANLibrary(), Options{}); err == nil {
		t.Error("empty graph should fail")
	}
	cg2 := workloads.WAN()
	if _, _, err := Synthesize(cg2, &library.Library{}, Options{}); err == nil {
		t.Error("empty library should fail")
	}
}

// Property: on random clustered instances, the synthesized graph always
// verifies, its cost matches the covering optimum, and never exceeds the
// point-to-point baseline.
func TestSynthesizeRandomProperty(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	lib := workloads.WANLibrary()
	for trial := 0; trial < 12; trial++ {
		cg := model.NewConstraintGraph(geom.Euclidean)
		// Two clusters with channels crossing between them.
		nch := 3 + r.Intn(4)
		for i := 0; i < nch; i++ {
			u := cg.MustAddPort(model.Port{
				Name:     "u" + string(rune('0'+i)),
				Position: geom.Pt(r.Float64()*8, r.Float64()*8),
			})
			v := cg.MustAddPort(model.Port{
				Name:     "v" + string(rune('0'+i)),
				Position: geom.Pt(80+r.Float64()*8, r.Float64()*8),
			})
			cg.MustAddChannel(model.Channel{
				Name: "ch" + string(rune('0'+i)), From: u, To: v,
				Bandwidth: 2 + r.Float64()*9,
			})
		}
		ig, report, err := Synthesize(cg, lib, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := ig.Verify(impl.VerifyOptions{}); err != nil {
			t.Fatalf("trial %d: Verify: %v", trial, err)
		}
		if report.Cost > report.P2PCost+1e-9 {
			t.Fatalf("trial %d: cost %v exceeds p2p %v", trial, report.Cost, report.P2PCost)
		}
		if got := ig.Cost(); math.Abs(got-report.Cost) > 1e-6*math.Max(1, report.Cost) {
			t.Fatalf("trial %d: graph cost %v ≠ report %v", trial, got, report.Cost)
		}
	}
}

// Property: the exact flow result is never worse than any single
// alternative assembled by hand from the priced candidates (spot-check
// of covering optimality at the synthesis level).
func TestSynthesizeOptimalAmongCandidates(t *testing.T) {
	cg := workloads.WAN()
	lib := workloads.WANLibrary()
	_, report, err := Synthesize(cg, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The all-p2p assembly.
	var allP2P float64
	for _, c := range report.Candidates {
		if c.Kind == "p2p" {
			allP2P += c.Cost
		}
	}
	if report.Cost > allP2P+1e-9 {
		t.Errorf("optimum %v worse than all-p2p %v", report.Cost, allP2P)
	}
	// Every single merge candidate + p2p for the rest.
	for _, c := range report.Candidates {
		if c.Kind != "merge" {
			continue
		}
		total := c.Cost
		inSet := map[model.ChannelID]bool{}
		for _, ch := range c.Channels {
			inSet[ch] = true
		}
		for _, pc := range report.Candidates {
			if pc.Kind == "p2p" && !inSet[pc.Channels[0]] {
				total += pc.Cost
			}
		}
		if report.Cost > total+1e-9 {
			t.Errorf("optimum %v worse than assembly around %v (%v)", report.Cost, c.Channels, total)
		}
	}
}

package synth

import (
	"fmt"
	"testing"

	"repro/internal/workloads"
)

// TestSynthesisDeterministic: identical inputs must produce identical
// architectures — same cost, same selected candidate sets, same
// implementation-graph shape. EDA flows are rerun constantly; a
// non-deterministic synthesizer is not adoptable.
func TestSynthesisDeterministic(t *testing.T) {
	lib := workloads.WANLibrary()
	run := func() (float64, string, int, int) {
		cg := workloads.WAN()
		ig, rep, err := Synthesize(cg, lib, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sig := ""
		for _, c := range rep.SelectedCandidates() {
			sig += fmt.Sprintf("%s%v|", c.Kind, c.Channels)
		}
		return rep.Cost, sig, ig.NumVertices(), ig.NumLinks()
	}
	c1, s1, v1, l1 := run()
	c2, s2, v2, l2 := run()
	if c1 != c2 || s1 != s2 || v1 != v2 || l1 != l2 {
		t.Errorf("non-deterministic synthesis:\nrun1: %v %s %d %d\nrun2: %v %s %d %d",
			c1, s1, v1, l1, c2, s2, v2, l2)
	}
}

// TestRandomInstanceDeterministic repeats the check on a random
// clustered instance where more candidates compete.
func TestRandomInstanceDeterministic(t *testing.T) {
	lib := workloads.WANLibrary()
	build := func() (float64, string) {
		cg := workloads.RandomWAN(workloads.RandomWANConfig{
			Seed: 77, Clusters: 3, Channels: 9,
		})
		_, rep, err := Synthesize(cg, lib, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sig := ""
		for _, c := range rep.SelectedCandidates() {
			sig += fmt.Sprintf("%s%v|", c.Kind, c.Channels)
		}
		return rep.Cost, sig
	}
	c1, s1 := build()
	c2, s2 := build()
	if c1 != c2 || s1 != s2 {
		t.Errorf("non-deterministic: %v %s vs %v %s", c1, s1, c2, s2)
	}
}

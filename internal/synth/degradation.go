package synth

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/model"
)

// ErrCanceled is returned when the context is already canceled (or its
// deadline already passed) before synthesis produced anything worth
// degrading to. Once the flow is past point-to-point planning it never
// returns this: a later deadline degrades the result instead of
// erroring (see Degradation). The error wraps the context's own error,
// so errors.Is matches both ErrCanceled and context.Canceled /
// context.DeadlineExceeded.
var ErrCanceled = errors.New("synth: canceled before start")

// PricingPanicError reports a panic recovered inside a Step 1c pricing
// worker, naming the candidate whose pricing panicked. It aborts the
// run as an error (never a process crash) and is matchable with
// errors.As.
type PricingPanicError struct {
	// Channels is the candidate set whose pricing panicked.
	Channels []model.ChannelID
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PricingPanicError) Error() string {
	return fmt.Sprintf("synth: pricing candidate %v panicked: %v", e.Channels, e.Value)
}

// Budgets are optional per-phase wall-clock budgets, each enforced as a
// context deadline nested inside the run's overall Timeout. A phase
// whose budget expires is cut short exactly like an overall deadline —
// the flow degrades and continues — but the remaining phases still get
// to run, so a pathological enumeration cannot starve the solver.
type Budgets struct {
	// Enumerate bounds Steps 1a–1b (p2p planning + candidate
	// enumeration). Zero means no phase budget.
	Enumerate time.Duration
	// Price bounds Step 1c (candidate pricing).
	Price time.Duration
	// Solve bounds Step 2 (the covering solver).
	Solve time.Duration
}

// Degradation records everything a deadline, budget, or candidate cap
// cut short during a run. The zero value means the flow ran to
// completion; any flag set means the returned architecture is feasible
// and verified but possibly sub-optimal.
type Degradation struct {
	// EnumerationTruncated is true when the MaxCandidates cap stopped
	// candidate enumeration in truncate mode.
	EnumerationTruncated bool
	// EnumerationInterrupted is true when a deadline stopped candidate
	// enumeration.
	EnumerationInterrupted bool
	// PricingInterrupted is true when a deadline stopped candidate
	// pricing; PricingSkipped counts the enumerated mergings that were
	// never priced (and therefore never entered the covering instance).
	PricingInterrupted bool
	PricingSkipped     int
	// SolverInterrupted is true when a deadline stopped the covering
	// branch-and-bound; the solution is its best incumbent.
	SolverInterrupted bool
	// CoverLowerBound is an admissible lower bound on the optimal cost
	// of the covering instance that was actually solved, from the
	// solver's root relaxation (internal/ucp/bound.go). GapBound =
	// Report.Cost − CoverLowerBound bounds the optimality gap of the
	// returned architecture relative to that instance. When enumeration
	// or pricing was also cut short, the bound is relative to the
	// truncated candidate set (the full set could in principle do
	// better). Both are zero when the solver proved optimality.
	CoverLowerBound float64
	GapBound        float64
	// BudgetsExceeded lists the phases ("enumerate", "price", "solve")
	// whose per-phase budget — rather than the overall deadline —
	// expired.
	BudgetsExceeded []string
}

// Degraded reports whether anything was cut short.
func (d *Degradation) Degraded() bool {
	return d.EnumerationTruncated || d.EnumerationInterrupted ||
		d.PricingInterrupted || d.SolverInterrupted
}

// Summary returns human-readable lines describing what was cut short,
// empty when nothing was.
func (d *Degradation) Summary() []string {
	var out []string
	if d.EnumerationTruncated {
		out = append(out, "candidate enumeration truncated at the MaxCandidates cap")
	}
	if d.EnumerationInterrupted {
		out = append(out, "candidate enumeration interrupted by deadline")
	}
	if d.PricingInterrupted {
		out = append(out, fmt.Sprintf("candidate pricing interrupted by deadline (%d mergings unpriced)", d.PricingSkipped))
	}
	if d.SolverInterrupted {
		out = append(out, fmt.Sprintf("covering solver interrupted: best incumbent returned, cost ≤ optimum + %.4g (root bound %.4g)", d.GapBound, d.CoverLowerBound))
	}
	for _, phase := range d.BudgetsExceeded {
		out = append(out, fmt.Sprintf("per-phase budget for %q spent", phase))
	}
	return out
}

// Package ilp provides a small exact 0-1 integer linear program solver
// for covering-style problems: minimize c·x subject to A·x ≥ rhs with
// non-negative coefficients and binary variables.
//
// The paper observes that Problem 2.1 "can be seen as a special case of
// 0-1 integer linear programming"; this solver provides an independent
// formulation of the covering step so the UCP branch-and-bound can be
// cross-validated on the same instances. It is deliberately simple — a
// depth-first branch-and-bound with feasibility and incumbent pruning —
// and intended for the modest instance sizes of tests and experiments.
package ilp

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/num"
)

// Constraint is Σᵢ Coeffs[i]·xᵢ ≥ RHS with non-negative coefficients.
type Constraint struct {
	// Coeffs maps variable index to its (non-negative) coefficient.
	Coeffs map[int]float64
	// RHS is the constraint's right-hand side.
	RHS float64
}

// Problem is a 0-1 ILP: minimize Costs·x subject to the constraints.
type Problem struct {
	costs       []float64
	constraints []Constraint
}

// NewProblem creates a problem over numVars binary variables with the
// given objective costs (must be non-negative and finite).
func NewProblem(costs []float64) (*Problem, error) {
	for i, c := range costs {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("ilp: cost of x%d is invalid: %g", i, c)
		}
	}
	return &Problem{costs: append([]float64(nil), costs...)}, nil
}

// NumVars returns the number of binary variables.
func (p *Problem) NumVars() int { return len(p.costs) }

// AddConstraint adds Σ coeff·x ≥ rhs. Coefficients must be non-negative;
// variables out of range are rejected.
func (p *Problem) AddConstraint(c Constraint) error {
	for v, coeff := range c.Coeffs {
		if v < 0 || v >= len(p.costs) {
			return fmt.Errorf("ilp: constraint references unknown variable x%d", v)
		}
		if coeff < 0 || math.IsNaN(coeff) {
			return fmt.Errorf("ilp: negative coefficient %g on x%d", coeff, v)
		}
	}
	if math.IsNaN(c.RHS) {
		return fmt.Errorf("ilp: NaN right-hand side")
	}
	// Deep-copy the coefficient map so later caller mutations are inert.
	coeffs := make(map[int]float64, len(c.Coeffs))
	for v, coeff := range c.Coeffs {
		if coeff > 0 {
			coeffs[v] = coeff
		}
	}
	p.constraints = append(p.constraints, Constraint{Coeffs: coeffs, RHS: c.RHS})
	return nil
}

// Solution is an optimal assignment.
type Solution struct {
	// X is the binary assignment.
	X []bool
	// Cost is the objective value.
	Cost float64
	// Nodes counts branch-and-bound nodes explored.
	Nodes int
}

// Solve returns a provably optimal solution, or an error when the
// problem is infeasible (even x = 1…1 violates some constraint).
func (p *Problem) Solve() (Solution, error) {
	n := len(p.costs)
	// slack[k] tracks RHS minus contribution of assigned-1 variables;
	// potential[k] tracks the maximum additional contribution available
	// from unassigned variables.
	slack := make([]float64, len(p.constraints))
	potential := make([]float64, len(p.constraints))
	for k, c := range p.constraints {
		slack[k] = c.RHS
		for _, coeff := range c.Coeffs {
			potential[k] += coeff
		}
		if num.Less(potential[k], c.RHS) {
			return Solution{}, fmt.Errorf("ilp: constraint %d infeasible even with all variables set", k)
		}
	}
	// Branch on expensive variables first: their exclusion prunes most.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return num.Stronger(p.costs[order[a]], p.costs[order[b]]) })

	s := &solver{
		p:        p,
		order:    order,
		bestCost: math.Inf(1),
		x:        make([]bool, n),
	}
	s.branch(0, 0, slack, potential)
	if math.IsInf(s.bestCost, 1) {
		return Solution{}, fmt.Errorf("ilp: infeasible")
	}
	return Solution{X: s.bestX, Cost: s.bestCost, Nodes: s.nodes}, nil
}

type solver struct {
	p        *Problem
	order    []int
	bestCost float64
	bestX    []bool
	x        []bool
	nodes    int
}

func (s *solver) branch(depth int, cost float64, slack, potential []float64) {
	s.nodes++
	if num.NoBetter(cost, s.bestCost) {
		return
	}
	// Feasibility: every constraint must still be satisfiable.
	satisfied := true
	for k := range slack {
		if num.Positive(slack[k]) {
			satisfied = false
			if num.Less(potential[k], slack[k]) {
				return // dead end
			}
		}
	}
	if satisfied {
		if num.Improves(cost, s.bestCost) {
			s.bestCost = cost
			s.bestX = append([]bool(nil), s.x...)
		}
		return
	}
	if depth == len(s.order) {
		return
	}
	v := s.order[depth]

	// Branch x_v = 0: remove v's potential.
	pot0 := append([]float64(nil), potential...)
	for k, c := range s.p.constraints {
		if coeff, ok := c.Coeffs[v]; ok {
			pot0[k] -= coeff
		}
	}
	s.x[v] = false
	s.branch(depth+1, cost, slack, pot0)

	// Branch x_v = 1: reduce slack and potential.
	slack1 := append([]float64(nil), slack...)
	pot1 := append([]float64(nil), potential...)
	for k, c := range s.p.constraints {
		if coeff, ok := c.Coeffs[v]; ok {
			slack1[k] -= coeff
			pot1[k] -= coeff
		}
	}
	s.x[v] = true
	s.branch(depth+1, cost+s.p.costs[v], slack1, pot1)
	s.x[v] = false
}

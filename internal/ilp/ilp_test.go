package ilp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ucp"
)

func TestNewProblemValidation(t *testing.T) {
	if _, err := NewProblem([]float64{1, -2}); err == nil {
		t.Error("negative cost should be rejected")
	}
	if _, err := NewProblem([]float64{math.NaN()}); err == nil {
		t.Error("NaN cost should be rejected")
	}
	if _, err := NewProblem([]float64{1, 2}); err != nil {
		t.Errorf("valid costs rejected: %v", err)
	}
}

func TestAddConstraintValidation(t *testing.T) {
	p, _ := NewProblem([]float64{1, 2})
	if err := p.AddConstraint(Constraint{Coeffs: map[int]float64{5: 1}, RHS: 1}); err == nil {
		t.Error("unknown variable should be rejected")
	}
	if err := p.AddConstraint(Constraint{Coeffs: map[int]float64{0: -1}, RHS: 1}); err == nil {
		t.Error("negative coefficient should be rejected")
	}
	if err := p.AddConstraint(Constraint{Coeffs: map[int]float64{0: 1}, RHS: math.NaN()}); err == nil {
		t.Error("NaN RHS should be rejected")
	}
}

func TestSolveSimpleCover(t *testing.T) {
	// min x0 + 2 x1 + 3 x2  s.t. x0+x2 ≥ 1, x1+x2 ≥ 1.
	p, _ := NewProblem([]float64{1, 2, 3})
	p.AddConstraint(Constraint{Coeffs: map[int]float64{0: 1, 2: 1}, RHS: 1})
	p.AddConstraint(Constraint{Coeffs: map[int]float64{1: 1, 2: 1}, RHS: 1})
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Cost != 3 || !sol.X[0] || !sol.X[1] || sol.X[2] {
		t.Errorf("solution = %+v, want x0=x1=1", sol)
	}
}

func TestSolveMultiUnit(t *testing.T) {
	// Bandwidth-style: need total capacity 25 from units of 11 at cost 2
	// each or one unit of 30 at cost 5.
	p, _ := NewProblem([]float64{2, 2, 2, 5})
	p.AddConstraint(Constraint{
		Coeffs: map[int]float64{0: 11, 1: 11, 2: 11, 3: 30},
		RHS:    25,
	})
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Cost != 5 {
		t.Errorf("cost = %v, want 5 (one big unit beats three small)", sol.Cost)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p, _ := NewProblem([]float64{1})
	p.AddConstraint(Constraint{Coeffs: map[int]float64{0: 1}, RHS: 2})
	if _, err := p.Solve(); err == nil {
		t.Error("infeasible problem should error")
	}
}

func TestSolveEmptyConstraints(t *testing.T) {
	p, _ := NewProblem([]float64{4, 5})
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Cost != 0 {
		t.Errorf("unconstrained minimum should be all-zero, cost %v", sol.Cost)
	}
}

func TestCallerMutationInert(t *testing.T) {
	p, _ := NewProblem([]float64{1, 10})
	coeffs := map[int]float64{0: 1}
	p.AddConstraint(Constraint{Coeffs: coeffs, RHS: 1})
	coeffs[1] = 100 // mutate after adding; must not affect the problem
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Cost != 1 {
		t.Errorf("cost = %v, want 1", sol.Cost)
	}
}

// Property: the ILP formulation of random covering instances matches the
// UCP solver's optimum — the paper's "special case of 0-1 ILP" claim,
// used here as a cross-validation oracle.
func TestILPMatchesUCPProperty(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 80; trial++ {
		rows := 1 + r.Intn(6)
		cols := 1 + r.Intn(10)
		m := ucp.NewMatrix(rows)
		costs := make([]float64, cols)
		covers := make([][]int, cols)
		for j := 0; j < cols; j++ {
			var cover []int
			for rr := 0; rr < rows; rr++ {
				if r.Float64() < 0.5 {
					cover = append(cover, rr)
				}
			}
			if len(cover) == 0 {
				cover = []int{r.Intn(rows)}
			}
			w := 0.5 + r.Float64()*9
			costs[j] = w
			covers[j] = cover
			m.MustAddColumn(ucp.Column{Rows: cover, Weight: w})
		}
		if !m.Feasible() {
			continue
		}
		ucpSol, err := m.Solve()
		if err != nil {
			t.Fatalf("trial %d ucp: %v", trial, err)
		}
		p, err := NewProblem(costs)
		if err != nil {
			t.Fatal(err)
		}
		for rr := 0; rr < rows; rr++ {
			coeffs := make(map[int]float64)
			for j, cover := range covers {
				for _, cr := range cover {
					if cr == rr {
						coeffs[j] = 1
					}
				}
			}
			if err := p.AddConstraint(Constraint{Coeffs: coeffs, RHS: 1}); err != nil {
				t.Fatal(err)
			}
		}
		ilpSol, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d ilp: %v", trial, err)
		}
		if math.Abs(ilpSol.Cost-ucpSol.Cost) > 1e-9 {
			t.Fatalf("trial %d: ILP %v ≠ UCP %v", trial, ilpSol.Cost, ucpSol.Cost)
		}
	}
}

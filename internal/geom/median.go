package geom

import (
	"math"
	"sort"
)

// The placement step of the CDCS algorithm ("a simple nonlinear
// optimization problem", Section 3) reduces to weighted single-facility
// location: position a communication vertex x to minimize
// Σᵢ wᵢ·‖x − sᵢ‖. This file provides the classical solvers:
//
//   - WeightedMedianL2: Weiszfeld iteration for the Euclidean norm,
//   - WeightedMedianL1: exact per-axis weighted median for Manhattan,
//   - WeightedMedian:   dispatch plus a derivative-free coordinate
//     descent fallback that works for any Norm.
//
// All of them solve convex problems, so the local optimum found is the
// global one.

// MedianOptions tunes the iterative solvers. The zero value selects
// sensible defaults.
type MedianOptions struct {
	// MaxIter bounds the number of Weiszfeld / coordinate-descent sweeps.
	// Zero means 200.
	MaxIter int
	// Tol is the movement threshold below which iteration stops.
	// Zero means 1e-9 relative to the bounding-box diagonal.
	Tol float64
	// Scratch, when non-nil, supplies reusable buffers for the L1
	// solver's per-axis weighted medians, making repeated calls
	// allocation-free. The scratch path sorts by insertion, so it is
	// meant for the small site sets of the placement hot loop (a merging
	// has k ≤ a dozen channels); large one-off calls should leave it nil
	// and keep the O(n log n) path.
	Scratch *MedianScratch
}

// MedianScratch holds the reusable buffers behind MedianOptions.Scratch.
// A scratch must not be shared between concurrent median calls.
type MedianScratch struct {
	vals, ws []float64
}

func (o MedianOptions) maxIter() int {
	if o.MaxIter <= 0 {
		return 200
	}
	return o.MaxIter
}

func (o MedianOptions) tol(diag float64) float64 {
	if o.Tol > 0 {
		return o.Tol
	}
	if diag == 0 {
		return 1e-12
	}
	return 1e-9 * diag
}

// WeightedMedianL2 returns a minimizer of Σ wᵢ·‖x − sitesᵢ‖₂ using the
// Weiszfeld algorithm with the standard singularity handling (when the
// iterate lands on a site, the site is optimal iff its weight dominates
// the pull of the others; otherwise the iterate is nudged along the
// descent direction). A nil weights slice means unit weights. It panics
// if sites is empty or a weight is negative.
func WeightedMedianL2(sites []Point, weights []float64, opt MedianOptions) Point {
	checkSites(sites, weights)
	if len(sites) == 1 {
		return sites[0]
	}
	// Weighted centroid as the starting iterate.
	x := weightedCentroid(sites, weights)
	b := Bounds(sites)
	diag := math.Hypot(b.Width(), b.Height())
	tol := opt.tol(diag)

	for iter := 0; iter < opt.maxIter(); iter++ {
		var num Point
		var den float64
		var atSite = -1
		for i, s := range sites {
			d := x.Sub(s).L2()
			if d < 1e-15 {
				atSite = i
				continue
			}
			w := weightAt(weights, i)
			num = num.Add(s.Scale(w / d))
			den += w / d
		}
		if den == 0 {
			// All sites coincide with x.
			return x
		}
		next := num.Scale(1 / den)
		if atSite >= 0 {
			// Kuhn's optimality test at a site: the site is optimal iff
			// the resultant pull R of the other sites satisfies ‖R‖ ≤ w.
			var r Point
			for i, s := range sites {
				if i == atSite {
					continue
				}
				d := x.Sub(s).L2()
				if d < 1e-15 {
					continue
				}
				r = r.Add(s.Sub(x).Scale(weightAt(weights, i) / d))
			}
			w := weightAt(weights, atSite)
			if r.L2() <= w+1e-12 {
				return x
			}
			// Nudge off the site along the pull direction.
			step := (r.L2() - w) / den
			next = x.Add(r.Scale(step / r.L2()))
		}
		if next.Sub(x).L2() <= tol {
			return next
		}
		x = next
	}
	return x
}

// WeightedMedianL1 returns a minimizer of Σ wᵢ·‖x − sitesᵢ‖₁. Under the
// Manhattan norm the problem separates per axis, and each axis optimum is
// a weighted median of the site coordinates. A nil weights slice means
// unit weights. It panics if sites is empty or a weight is negative.
func WeightedMedianL1(sites []Point, weights []float64) Point {
	return weightedMedianL1(sites, weights, nil)
}

func weightedMedianL1(sites []Point, weights []float64, sc *MedianScratch) Point {
	checkSites(sites, weights)
	if sc != nil {
		return Point{
			X: weightedMedian1DScratch(sites, weights, sc, func(p Point) float64 { return p.X }),
			Y: weightedMedian1DScratch(sites, weights, sc, func(p Point) float64 { return p.Y }),
		}
	}
	xs := make([]float64, len(sites))
	ys := make([]float64, len(sites))
	for i, s := range sites {
		xs[i] = s.X
		ys[i] = s.Y
	}
	return Point{
		X: weightedMedian1D(xs, weights),
		Y: weightedMedian1D(ys, weights),
	}
}

// weightedMedian1DScratch is weightedMedian1D on caller-owned buffers:
// coordinates and weights are copied into the scratch pair and kept
// sorted by insertion (the placement hot loop calls this with k ≤ a
// dozen sites, where insertion sort beats the boxing of sort.Slice and
// allocates nothing once the scratch has grown).
func weightedMedian1DScratch(sites []Point, weights []float64, sc *MedianScratch, coord func(Point) float64) float64 {
	vals := sc.vals[:0]
	ws := sc.ws[:0]
	var total float64
	for i, s := range sites {
		v := coord(s)
		w := weightAt(weights, i)
		total += w
		k := len(vals)
		vals = append(vals, v)
		ws = append(ws, w)
		for ; k > 0 && vals[k-1] > v; k-- {
			vals[k], vals[k-1] = vals[k-1], vals[k]
			ws[k], ws[k-1] = ws[k-1], ws[k]
		}
	}
	sc.vals, sc.ws = vals, ws
	half := total / 2
	var acc float64
	for i, w := range ws {
		acc += w
		if acc >= half {
			return vals[i]
		}
	}
	return vals[len(vals)-1]
}

// weightedMedian1D returns a weighted median of vals: a point m such that
// the total weight strictly below m and strictly above m are each at most
// half of the total weight.
func weightedMedian1D(vals []float64, weights []float64) float64 {
	type vw struct {
		v, w float64
	}
	items := make([]vw, len(vals))
	var total float64
	for i, v := range vals {
		w := weightAt(weights, i)
		items[i] = vw{v, w}
		total += w
	}
	sort.Slice(items, func(i, j int) bool { return items[i].v < items[j].v })
	half := total / 2
	var acc float64
	for _, it := range items {
		acc += it.w
		if acc >= half {
			return it.v
		}
	}
	return items[len(items)-1].v
}

// WeightedMedian minimizes Σ wᵢ·‖x − sitesᵢ‖ under an arbitrary norm. For
// the built-in Euclidean and Manhattan norms it dispatches to the
// specialized solvers; otherwise it runs a derivative-free coordinate
// descent with shrinking step sizes, which converges on these convex
// objectives.
func WeightedMedian(n Norm, sites []Point, weights []float64, opt MedianOptions) Point {
	checkSites(sites, weights)
	switch n.Name() {
	case "euclidean":
		return WeightedMedianL2(sites, weights, opt)
	case "manhattan":
		return weightedMedianL1(sites, weights, opt.Scratch)
	}
	return coordinateDescent(n, sites, weights, opt)
}

func coordinateDescent(n Norm, sites []Point, weights []float64, opt MedianOptions) Point {
	x := weightedCentroid(sites, weights)
	b := Bounds(sites)
	step := math.Max(b.Width(), b.Height())
	if step == 0 {
		return x
	}
	tol := opt.tol(step)
	f := func(p Point) float64 { return SumOfDistances(n, p, sites, weights) }
	best := f(x)
	for iter := 0; iter < opt.maxIter()*4 && step > tol; iter++ {
		improved := false
		for _, d := range []Point{
			{step, 0}, {-step, 0}, {0, step}, {0, -step},
			{step, step}, {step, -step}, {-step, step}, {-step, -step},
		} {
			cand := x.Add(d)
			if v := f(cand); v < best {
				best, x = v, cand
				improved = true
			}
		}
		if !improved {
			step /= 2
		}
	}
	return x
}

func weightedCentroid(sites []Point, weights []float64) Point {
	var c Point
	var total float64
	for i, s := range sites {
		w := weightAt(weights, i)
		c = c.Add(s.Scale(w))
		total += w
	}
	if total == 0 {
		return Centroid(sites)
	}
	return c.Scale(1 / total)
}

func weightAt(weights []float64, i int) float64 {
	if weights == nil {
		return 1
	}
	return weights[i]
}

func checkSites(sites []Point, weights []float64) {
	if len(sites) == 0 {
		panic("geom: median of empty site set")
	}
	if weights != nil {
		if len(weights) != len(sites) {
			panic("geom: median weight/site length mismatch")
		}
		for _, w := range weights {
			if w < 0 || math.IsNaN(w) {
				panic("geom: median weight must be non-negative")
			}
		}
	}
}

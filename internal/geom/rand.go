package geom

import "math/rand"

// Deterministic random point generation for the workload generators and
// the property-based tests. All functions take an explicit *rand.Rand so
// experiments are reproducible from a seed.

// RandomInBox returns a point uniformly distributed in b.
func RandomInBox(r *rand.Rand, b BoundingBox) Point {
	return Point{
		X: b.Min.X + r.Float64()*b.Width(),
		Y: b.Min.Y + r.Float64()*b.Height(),
	}
}

// RandomCluster returns n points normally distributed around center with
// the given standard deviation per axis.
func RandomCluster(r *rand.Rand, center Point, stddev float64, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			X: center.X + r.NormFloat64()*stddev,
			Y: center.Y + r.NormFloat64()*stddev,
		}
	}
	return pts
}

// RandomClusters places k cluster centers uniformly in b and draws
// perCluster points around each with the given spread, modelling the
// "groups of nearby nodes separated by long hauls" structure of the
// paper's WAN example.
func RandomClusters(r *rand.Rand, b BoundingBox, k, perCluster int, spread float64) [][]Point {
	clusters := make([][]Point, k)
	for i := range clusters {
		center := RandomInBox(r, b)
		clusters[i] = RandomCluster(r, center, spread, perCluster)
	}
	return clusters
}

package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestWeightedMedianL2SingleSite(t *testing.T) {
	got := WeightedMedianL2([]Point{Pt(3, 7)}, nil, MedianOptions{})
	if !got.Eq(Pt(3, 7)) {
		t.Errorf("single-site median = %v, want (3, 7)", got)
	}
}

func TestWeightedMedianL2Collinear(t *testing.T) {
	// For three unit-weight collinear sites the median coincides with the
	// middle site.
	sites := []Point{Pt(0, 0), Pt(5, 0), Pt(10, 0)}
	got := WeightedMedianL2(sites, nil, MedianOptions{})
	if !got.AlmostEq(Pt(5, 0), 1e-6) {
		t.Errorf("collinear median = %v, want (5, 0)", got)
	}
}

func TestWeightedMedianL2DominantWeight(t *testing.T) {
	// When one site's weight exceeds the total of the rest, it is optimal.
	sites := []Point{Pt(0, 0), Pt(10, 0), Pt(0, 10)}
	weights := []float64{10, 1, 1}
	got := WeightedMedianL2(sites, weights, MedianOptions{})
	if !got.AlmostEq(Pt(0, 0), 1e-6) {
		t.Errorf("dominant-weight median = %v, want origin", got)
	}
}

func TestWeightedMedianL2EquilateralFermat(t *testing.T) {
	// The Fermat point of an equilateral triangle is its centroid.
	h := math.Sqrt(3) / 2
	sites := []Point{Pt(0, 0), Pt(1, 0), Pt(0.5, h)}
	got := WeightedMedianL2(sites, nil, MedianOptions{})
	want := Centroid(sites)
	if !got.AlmostEq(want, 1e-6) {
		t.Errorf("Fermat point = %v, want %v", got, want)
	}
}

func TestWeightedMedianL1Exact(t *testing.T) {
	sites := []Point{Pt(0, 0), Pt(2, 1), Pt(10, 8)}
	got := WeightedMedianL1(sites, nil)
	// Per-axis median of {0,2,10} and {0,1,8}.
	if !got.Eq(Pt(2, 1)) {
		t.Errorf("L1 median = %v, want (2, 1)", got)
	}
}

func TestWeightedMedianL1Weighted(t *testing.T) {
	sites := []Point{Pt(0, 0), Pt(10, 10)}
	// The heavy site wins both axes.
	got := WeightedMedianL1(sites, []float64{1, 3})
	if !got.Eq(Pt(10, 10)) {
		t.Errorf("weighted L1 median = %v, want (10, 10)", got)
	}
}

func TestWeightedMedianDispatch(t *testing.T) {
	sites := []Point{Pt(0, 0), Pt(4, 0), Pt(8, 0)}
	for _, n := range []Norm{Euclidean, Manhattan, Chebyshev} {
		got := WeightedMedian(n, sites, nil, MedianOptions{})
		if !got.AlmostEq(Pt(4, 0), 1e-4) {
			t.Errorf("%s median = %v, want (4, 0)", n.Name(), got)
		}
	}
}

func TestMedianPanics(t *testing.T) {
	cases := []func(){
		func() { WeightedMedianL2(nil, nil, MedianOptions{}) },
		func() { WeightedMedianL1([]Point{Pt(0, 0)}, []float64{1, 2}) },
		func() { WeightedMedianL2([]Point{Pt(0, 0)}, []float64{-1}, MedianOptions{}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: the computed median is no worse than 1000 random candidate
// positions, for each built-in norm. This is the defining property of a
// global optimum of a convex objective sampled at random points.
func TestMedianOptimalityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		nSites := 2 + r.Intn(6)
		sites := make([]Point, nSites)
		weights := make([]float64, nSites)
		for i := range sites {
			sites[i] = Pt(r.Float64()*100, r.Float64()*100)
			weights[i] = 0.5 + r.Float64()*4
		}
		for _, n := range []Norm{Euclidean, Manhattan, Chebyshev} {
			m := WeightedMedian(n, sites, weights, MedianOptions{})
			best := SumOfDistances(n, m, sites, weights)
			b := Bounds(sites).Expand(10)
			for k := 0; k < 1000; k++ {
				c := RandomInBox(r, b)
				if v := SumOfDistances(n, c, sites, weights); v < best-1e-5*best-1e-9 {
					t.Fatalf("trial %d norm %s: random point %v beats median %v (%.9f < %.9f)",
						trial, n.Name(), c, m, v, best)
				}
			}
		}
	}
}

// Property: Weiszfeld result is invariant (within tolerance) under
// translation of all sites.
func TestMedianTranslationInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		nSites := 3 + r.Intn(4)
		sites := make([]Point, nSites)
		for i := range sites {
			sites[i] = Pt(r.Float64()*10, r.Float64()*10)
		}
		shift := Pt(100+r.Float64()*50, -30+r.Float64()*20)
		shifted := make([]Point, nSites)
		for i, s := range sites {
			shifted[i] = s.Add(shift)
		}
		m1 := WeightedMedianL2(sites, nil, MedianOptions{})
		m2 := WeightedMedianL2(shifted, nil, MedianOptions{})
		if !m2.AlmostEq(m1.Add(shift), 1e-4) {
			t.Fatalf("trial %d: translation broke median: %v vs %v+%v", trial, m2, m1, shift)
		}
	}
}

func TestRandomInBoxStaysInside(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	b := BoundingBox{Min: Pt(-5, 3), Max: Pt(2, 9)}
	for i := 0; i < 500; i++ {
		if p := RandomInBox(r, b); !b.Contains(p) {
			t.Fatalf("point %v escaped box %+v", p, b)
		}
	}
}

func TestRandomClusters(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	clusters := RandomClusters(r, BoundingBox{Min: Pt(0, 0), Max: Pt(100, 100)}, 3, 5, 1.0)
	if len(clusters) != 3 {
		t.Fatalf("got %d clusters, want 3", len(clusters))
	}
	for i, c := range clusters {
		if len(c) != 5 {
			t.Errorf("cluster %d has %d points, want 5", i, len(c))
		}
		// Points of one cluster should be mutually close relative to the box.
		b := Bounds(c)
		if b.Width() > 20 || b.Height() > 20 {
			t.Errorf("cluster %d implausibly spread: %+v", i, b)
		}
	}
}

package geom

import (
	"fmt"
	"math"
)

// Norm is the generic geometric norm of Definition 2.1: the constraint
// graph measures the length of every arc (u, v) as ‖p(u) − p(v)‖ for a
// norm chosen by the application domain. The paper uses the Euclidean
// norm for the WAN example and the Manhattan norm for the on-chip one.
type Norm interface {
	// Distance returns ‖p − q‖.
	Distance(p, q Point) float64
	// Name returns a short stable identifier ("euclidean", "manhattan", ...).
	Name() string
}

type euclidean struct{}
type manhattan struct{}
type chebyshev struct{}

// Euclidean is the L2 norm, appropriate for free-space media such as the
// radio and optical links of the paper's WAN example.
var Euclidean Norm = euclidean{}

// Manhattan is the L1 norm, appropriate for on-chip rectilinear wiring
// as in the paper's MPEG-4 decoder example.
var Manhattan Norm = manhattan{}

// Chebyshev is the L∞ norm, provided for completeness (e.g. diagonal
// routing fabrics).
var Chebyshev Norm = chebyshev{}

func (euclidean) Distance(p, q Point) float64 { return p.Sub(q).L2() }
func (euclidean) Name() string                { return "euclidean" }

func (manhattan) Distance(p, q Point) float64 { return p.Sub(q).L1() }
func (manhattan) Name() string                { return "manhattan" }

func (chebyshev) Distance(p, q Point) float64 { return p.Sub(q).LInf() }
func (chebyshev) Name() string                { return "chebyshev" }

// NormByName returns the built-in norm with the given Name. It is the
// inverse of Norm.Name and is used when decoding serialized constraint
// graphs.
func NormByName(name string) (Norm, error) {
	switch name {
	case "euclidean":
		return Euclidean, nil
	case "manhattan":
		return Manhattan, nil
	case "chebyshev":
		return Chebyshev, nil
	default:
		return nil, fmt.Errorf("geom: unknown norm %q", name)
	}
}

// PathLength returns the length of the polyline through pts under n.
// A polyline with fewer than two points has length zero.
func PathLength(n Norm, pts []Point) float64 {
	var total float64
	for i := 1; i < len(pts); i++ {
		total += n.Distance(pts[i-1], pts[i])
	}
	return total
}

// SumOfDistances returns Σᵢ wᵢ·‖x − sitesᵢ‖ under n. Weights and sites
// must have equal length; a nil weights slice means unit weights.
func SumOfDistances(n Norm, x Point, sites []Point, weights []float64) float64 {
	if weights != nil && len(weights) != len(sites) {
		panic("geom: SumOfDistances weight/site length mismatch")
	}
	var total float64
	for i, s := range sites {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		total += w * n.Distance(x, s)
	}
	return total
}

// TriangleSlack returns ‖p−r‖ + ‖r−q‖ − ‖p−q‖, the extra length incurred
// by detouring through r. It is non-negative for every norm.
func TriangleSlack(n Norm, p, q, r Point) float64 {
	return n.Distance(p, r) + n.Distance(r, q) - n.Distance(p, q)
}

// Snap rounds v to the given number of decimal places. The paper's tables
// publish distances rounded to two decimals; Snap(v, 2) reproduces that
// presentation.
func Snap(v float64, decimals int) float64 {
	scale := math.Pow(10, float64(decimals))
	return math.Round(v*scale) / scale
}

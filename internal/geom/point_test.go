package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Pt(1, 2)
	q := Pt(3, -4)
	if got := p.Add(q); !got.Eq(Pt(4, -2)) {
		t.Errorf("Add = %v, want (4, -2)", got)
	}
	if got := p.Sub(q); !got.Eq(Pt(-2, 6)) {
		t.Errorf("Sub = %v, want (-2, 6)", got)
	}
	if got := p.Scale(2); !got.Eq(Pt(2, 4)) {
		t.Errorf("Scale = %v, want (2, 4)", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v, want -5", got)
	}
}

func TestVectorLengths(t *testing.T) {
	v := Pt(3, -4)
	if got := v.L2(); got != 5 {
		t.Errorf("L2 = %v, want 5", got)
	}
	if got := v.L1(); got != 7 {
		t.Errorf("L1 = %v, want 7", got)
	}
	if got := v.LInf(); got != 4 {
		t.Errorf("LInf = %v, want 4", got)
	}
}

func TestLerp(t *testing.T) {
	p, q := Pt(0, 0), Pt(10, 20)
	if got := p.Lerp(q, 0); !got.Eq(p) {
		t.Errorf("Lerp(0) = %v, want %v", got, p)
	}
	if got := p.Lerp(q, 1); !got.Eq(q) {
		t.Errorf("Lerp(1) = %v, want %v", got, q)
	}
	if got := p.Lerp(q, 0.5); !got.Eq(Pt(5, 10)) {
		t.Errorf("Lerp(0.5) = %v, want (5, 10)", got)
	}
}

func TestAlmostEq(t *testing.T) {
	p := Pt(1, 1)
	if !p.AlmostEq(Pt(1.0005, 0.9995), 1e-3) {
		t.Error("AlmostEq should accept within tolerance")
	}
	if p.AlmostEq(Pt(1.01, 1), 1e-3) {
		t.Error("AlmostEq should reject outside tolerance")
	}
}

func TestIsFinite(t *testing.T) {
	if !Pt(1, 2).IsFinite() {
		t.Error("finite point reported non-finite")
	}
	if Pt(math.NaN(), 0).IsFinite() {
		t.Error("NaN point reported finite")
	}
	if Pt(0, math.Inf(1)).IsFinite() {
		t.Error("Inf point reported finite")
	}
}

func TestCentroid(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	if got := Centroid(pts); !got.Eq(Pt(1, 1)) {
		t.Errorf("Centroid = %v, want (1, 1)", got)
	}
}

func TestCentroidEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Centroid(nil) should panic")
		}
	}()
	Centroid(nil)
}

func TestBounds(t *testing.T) {
	pts := []Point{Pt(1, 5), Pt(-2, 3), Pt(4, -1)}
	b := Bounds(pts)
	if !b.Min.Eq(Pt(-2, -1)) || !b.Max.Eq(Pt(4, 5)) {
		t.Errorf("Bounds = %+v", b)
	}
	if b.Width() != 6 || b.Height() != 6 {
		t.Errorf("Width/Height = %v/%v, want 6/6", b.Width(), b.Height())
	}
	if !b.Contains(Pt(0, 0)) {
		t.Error("box should contain origin")
	}
	if b.Contains(Pt(10, 0)) {
		t.Error("box should not contain (10, 0)")
	}
	if got := b.Center(); !got.Eq(Pt(1, 2)) {
		t.Errorf("Center = %v, want (1, 2)", got)
	}
	e := b.Expand(1)
	if !e.Min.Eq(Pt(-3, -2)) || !e.Max.Eq(Pt(5, 6)) {
		t.Errorf("Expand = %+v", e)
	}
}

func TestBoundsEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Bounds(nil) should panic")
		}
	}()
	Bounds(nil)
}

// Property: Add and Sub are inverse operations.
func TestAddSubInverseProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if anyNaNInf(ax, ay, bx, by) {
			return true
		}
		p, q := Pt(ax, ay), Pt(bx, by)
		r := p.Add(q).Sub(q)
		return r.AlmostEq(p, 1e-6*(1+math.Abs(ax)+math.Abs(bx)+math.Abs(ay)+math.Abs(by)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the bounding box contains all of its defining points.
func TestBoundsContainsAllProperty(t *testing.T) {
	f := func(coords []float64) bool {
		if len(coords) < 2 {
			return true
		}
		var pts []Point
		for i := 0; i+1 < len(coords); i += 2 {
			if anyNaNInf(coords[i], coords[i+1]) {
				return true
			}
			pts = append(pts, Pt(coords[i], coords[i+1]))
		}
		b := Bounds(pts)
		for _, p := range pts {
			if !b.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func anyNaNInf(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

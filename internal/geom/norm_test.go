package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormDistances(t *testing.T) {
	p, q := Pt(0, 0), Pt(3, 4)
	cases := []struct {
		norm Norm
		want float64
	}{
		{Euclidean, 5},
		{Manhattan, 7},
		{Chebyshev, 4},
	}
	for _, c := range cases {
		if got := c.norm.Distance(p, q); got != c.want {
			t.Errorf("%s.Distance = %v, want %v", c.norm.Name(), got, c.want)
		}
	}
}

func TestNormByName(t *testing.T) {
	for _, n := range []Norm{Euclidean, Manhattan, Chebyshev} {
		got, err := NormByName(n.Name())
		if err != nil {
			t.Fatalf("NormByName(%q): %v", n.Name(), err)
		}
		if got.Name() != n.Name() {
			t.Errorf("NormByName(%q).Name = %q", n.Name(), got.Name())
		}
	}
	if _, err := NormByName("taxicab"); err == nil {
		t.Error("NormByName should reject unknown names")
	}
}

func TestPathLength(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(3, 4), Pt(3, 8)}
	if got := PathLength(Euclidean, pts); got != 9 {
		t.Errorf("PathLength = %v, want 9", got)
	}
	if got := PathLength(Euclidean, pts[:1]); got != 0 {
		t.Errorf("single-point PathLength = %v, want 0", got)
	}
	if got := PathLength(Euclidean, nil); got != 0 {
		t.Errorf("empty PathLength = %v, want 0", got)
	}
}

func TestSumOfDistances(t *testing.T) {
	sites := []Point{Pt(1, 0), Pt(-1, 0)}
	if got := SumOfDistances(Euclidean, Pt(0, 0), sites, nil); got != 2 {
		t.Errorf("unit-weight sum = %v, want 2", got)
	}
	if got := SumOfDistances(Euclidean, Pt(0, 0), sites, []float64{2, 3}); got != 5 {
		t.Errorf("weighted sum = %v, want 5", got)
	}
}

func TestSumOfDistancesMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	SumOfDistances(Euclidean, Pt(0, 0), []Point{Pt(1, 1)}, []float64{1, 2})
}

func TestSnap(t *testing.T) {
	if got := Snap(10.376, 2); got != 10.38 {
		t.Errorf("Snap(10.376, 2) = %v, want 10.38", got)
	}
	if got := Snap(-1.005, 1); got != -1.0 {
		t.Errorf("Snap(-1.005, 1) = %v, want -1.0", got)
	}
	if got := Snap(3.14159, 0); got != 3 {
		t.Errorf("Snap(3.14159, 0) = %v, want 3", got)
	}
}

// normAxioms checks symmetry, identity and the triangle inequality for a
// norm-induced metric on bounded random points.
func normAxioms(t *testing.T, n Norm) {
	t.Helper()
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		p := Pt(clamp(ax), clamp(ay))
		q := Pt(clamp(bx), clamp(by))
		r := Pt(clamp(cx), clamp(cy))
		dpq := n.Distance(p, q)
		if dpq < 0 {
			return false
		}
		if n.Distance(p, p) != 0 {
			return false
		}
		if math.Abs(dpq-n.Distance(q, p)) > 1e-9 {
			return false
		}
		// Triangle inequality, with slack for float rounding.
		return TriangleSlack(n, p, q, r) >= -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("%s norm axioms: %v", n.Name(), err)
	}
}

func TestNormAxiomsProperty(t *testing.T) {
	for _, n := range []Norm{Euclidean, Manhattan, Chebyshev} {
		normAxioms(t, n)
	}
}

// Property: L∞ ≤ L2 ≤ L1 for every displacement.
func TestNormOrderingProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		p := Pt(clamp(ax), clamp(ay))
		q := Pt(clamp(bx), clamp(by))
		linf := Chebyshev.Distance(p, q)
		l2 := Euclidean.Distance(p, q)
		l1 := Manhattan.Distance(p, q)
		return linf <= l2+1e-9 && l2 <= l1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clamp maps arbitrary float64 quick-check inputs into a bounded range so
// the tests exercise realistic coordinates rather than overflow behavior.
func clamp(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	return math.Mod(v, 1e6)
}

package geom

import (
	"math/rand"
	"testing"
)

func benchSites(n int) ([]Point, []float64) {
	r := rand.New(rand.NewSource(9))
	sites := make([]Point, n)
	weights := make([]float64, n)
	for i := range sites {
		sites[i] = Pt(r.Float64()*100, r.Float64()*100)
		weights[i] = 0.5 + r.Float64()*4
	}
	return sites, weights
}

func BenchmarkWeightedMedianL2(b *testing.B) {
	sites, weights := benchSites(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		WeightedMedianL2(sites, weights, MedianOptions{})
	}
}

func BenchmarkWeightedMedianL1(b *testing.B) {
	sites, weights := benchSites(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		WeightedMedianL1(sites, weights)
	}
}

func BenchmarkCoordinateDescentChebyshev(b *testing.B) {
	sites, weights := benchSites(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		WeightedMedian(Chebyshev, sites, weights, MedianOptions{})
	}
}

func BenchmarkNormDistance(b *testing.B) {
	p, q := Pt(1.5, -2.5), Pt(100.25, 42.125)
	for _, n := range []Norm{Euclidean, Manhattan, Chebyshev} {
		b.Run(n.Name(), func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += n.Distance(p, q)
			}
			_ = sink
		})
	}
}

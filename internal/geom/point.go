// Package geom provides the small geometric kernel used by the
// constraint-driven communication synthesis (CDCS) flow: 2-D points,
// the norms used to measure channel lengths (Euclidean, Manhattan,
// Chebyshev), bounding boxes, and the facility-location style solvers
// (geometric median, weighted 1-median) that the candidate placement
// optimizer builds on.
//
// All distances are plain float64 in whatever unit the caller adopts
// (kilometers for the WAN examples, millimeters for the on-chip ones);
// the package is unit-agnostic.
package geom

import (
	"fmt"
	"math"
)

// Point is a position in the plane. The constraint-graph model assigns one
// to every port vertex; the placement optimizer assigns one to every
// communication vertex it inserts.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns the point scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product of p and q seen as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// L2 returns the Euclidean length of p seen as a vector.
func (p Point) L2() float64 { return math.Hypot(p.X, p.Y) }

// L1 returns the Manhattan length of p seen as a vector.
func (p Point) L1() float64 { return math.Abs(p.X) + math.Abs(p.Y) }

// LInf returns the Chebyshev length of p seen as a vector.
func (p Point) LInf() float64 { return math.Max(math.Abs(p.X), math.Abs(p.Y)) }

// Lerp returns the point (1-t)*p + t*q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Eq reports whether p and q coincide exactly.
func (p Point) Eq(q Point) bool { return p.X == q.X && p.Y == q.Y }

// AlmostEq reports whether p and q coincide within tol in each coordinate.
func (p Point) AlmostEq(q Point, tol float64) bool {
	return math.Abs(p.X-q.X) <= tol && math.Abs(p.Y-q.Y) <= tol
}

// String renders the point as "(x, y)" with three decimals.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// IsFinite reports whether both coordinates are finite numbers.
func (p Point) IsFinite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// Centroid returns the arithmetic mean of the points. It panics if pts is
// empty, because an empty centroid has no meaningful value.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		panic("geom: Centroid of empty point set")
	}
	var c Point
	for _, p := range pts {
		c.X += p.X
		c.Y += p.Y
	}
	return c.Scale(1 / float64(len(pts)))
}

// BoundingBox is an axis-aligned rectangle.
type BoundingBox struct {
	Min, Max Point
}

// Bounds returns the tight axis-aligned bounding box of the points.
// It panics if pts is empty.
func Bounds(pts []Point) BoundingBox {
	if len(pts) == 0 {
		panic("geom: Bounds of empty point set")
	}
	b := BoundingBox{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		b.Min.X = math.Min(b.Min.X, p.X)
		b.Min.Y = math.Min(b.Min.Y, p.Y)
		b.Max.X = math.Max(b.Max.X, p.X)
		b.Max.Y = math.Max(b.Max.Y, p.Y)
	}
	return b
}

// Width returns the horizontal extent of the box.
func (b BoundingBox) Width() float64 { return b.Max.X - b.Min.X }

// Height returns the vertical extent of the box.
func (b BoundingBox) Height() float64 { return b.Max.Y - b.Min.Y }

// Contains reports whether p lies inside the box (inclusive).
func (b BoundingBox) Contains(p Point) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X && p.Y >= b.Min.Y && p.Y <= b.Max.Y
}

// Expand returns the box grown by margin on every side.
func (b BoundingBox) Expand(margin float64) BoundingBox {
	return BoundingBox{
		Min: Point{b.Min.X - margin, b.Min.Y - margin},
		Max: Point{b.Max.X + margin, b.Max.Y + margin},
	}
}

// Center returns the center point of the box.
func (b BoundingBox) Center() Point {
	return Point{(b.Min.X + b.Max.X) / 2, (b.Min.Y + b.Max.Y) / 2}
}

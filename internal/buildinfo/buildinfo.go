// Package buildinfo derives a human-readable version string for the
// cmd/* binaries from the build metadata the Go toolchain embeds
// (runtime/debug.ReadBuildInfo) — module version when built as a
// versioned module, VCS revision and dirty flag when built from a
// checkout — so every binary answers -version without a linker-flag
// release pipeline, and cdcsd can report what it is running in its
// startup log and /healthz body.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version returns the best available version identifier: the module
// version when it is a real semver, otherwise "devel+<rev12>" from the
// embedded VCS stamp ("-dirty" appended for modified checkouts), or
// "unknown" when the binary carries no build metadata (e.g. built from
// a non-module, non-VCS directory).
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "devel"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		return "devel+" + rev + "-dirty"
	}
	return "devel+" + rev
}

// String formats the one-line -version output for the named binary:
// name, version, toolchain, and platform.
func String(name string) string {
	return fmt.Sprintf("%s %s %s %s/%s",
		name, Version(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
}

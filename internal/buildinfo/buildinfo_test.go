package buildinfo

import (
	"strings"
	"testing"
)

func TestVersionNonEmpty(t *testing.T) {
	v := Version()
	if v == "" {
		t.Fatal("Version() returned an empty string")
	}
}

func TestStringCarriesNameVersionPlatform(t *testing.T) {
	s := String("cdcsd")
	if !strings.HasPrefix(s, "cdcsd ") {
		t.Fatalf("String() = %q, want the binary name first", s)
	}
	for _, want := range []string{Version(), "go", "/"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

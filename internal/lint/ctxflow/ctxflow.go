// Package ctxflow preserves the cancelability guarantee of the
// deadline-aware synthesis work: every exported entry point of the hot
// pipeline packages that can run for a long time must be reachable
// under a context.Context. Concretely it flags exported functions in
// internal/{synth,merging,ucp} that
//
//   - can fail (return an error — the signature of a fallible,
//     potentially long-running entry point),
//   - contain a nested loop (superlinear work: candidate enumeration,
//     branch-and-bound, exhaustive sweeps), and
//   - neither take a context.Context parameter nor call a *Context
//     variant (the Foo → FooContext(context.Background(), …) delegation
//     idiom used throughout the flow).
//
// Cheap exported accessors (single loops, no error) are deliberately
// out of scope: the invariant protects the paths a deadline must be
// able to cut short, not O(n) getters. There is no suppression comment
// — add a Context variant or refactor.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "flags exported fallible functions with nested loops in synth/merging/ucp that neither take a context.Context nor delegate to a *Context variant",
	Run:  run,
}

// audited is the set of package base names forming the cancelable
// synthesis pipeline.
var audited = map[string]bool{
	"synth":   true,
	"merging": true,
	"ucp":     true,
}

func run(pass *analysis.Pass) error {
	if !audited[analysis.BaseName(pass.Path)] {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			if !returnsError(pass, fn) || maxLoopDepth(fn.Body) < 2 {
				continue
			}
			if takesContext(pass, fn) || callsContextVariant(fn.Body) {
				continue
			}
			pass.Reportf(fn.Pos(), "exported %s has nested loops and returns error but neither takes a context.Context nor calls a *Context variant; deadlines cannot cut it short (ctxflow)", fn.Name.Name)
		}
	}
	return nil
}

func returnsError(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Results == nil {
		return false
	}
	for _, f := range fn.Type.Results.List {
		if t := pass.TypesInfo.TypeOf(f.Type); t != nil && isErrorType(t) {
			return true
		}
	}
	return false
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

func takesContext(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, f := range fn.Type.Params.List {
		t := pass.TypesInfo.TypeOf(f.Type)
		if t == nil {
			continue
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
				return true
			}
		}
	}
	return false
}

// maxLoopDepth returns the deepest for/range nesting in the body.
// Function literals start a fresh scope: a loop inside a closure that
// the function merely defines is still that function's work, so the
// depth accumulates through them.
func maxLoopDepth(body *ast.BlockStmt) int {
	max := 0
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.ForStmt:
				if depth+1 > max {
					max = depth + 1
				}
				walk(m.Body, depth+1)
				if m.Init != nil {
					walk(m.Init, depth)
				}
				return false
			case *ast.RangeStmt:
				if depth+1 > max {
					max = depth + 1
				}
				walk(m.Body, depth+1)
				return false
			}
			return true
		})
	}
	walk(body, 0)
	return max
}

// callsContextVariant reports whether the body calls any function or
// method whose name ends in "Context" — the delegation idiom
// (SolveContext, EnumerateContext, SynthesizeContext, …).
func callsContextVariant(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		var name string
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if strings.HasSuffix(name, "Context") {
			found = true
		}
		return !found
	})
	return found
}

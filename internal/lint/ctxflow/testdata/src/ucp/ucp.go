// Package ucp is a ctxflow fixture standing in for the audited
// pipeline packages (synth, merging, ucp).
package ucp

import (
	"context"
	"errors"
)

// Matrix stands in for a solver instance.
type Matrix struct{ cols [][]int }

// Solve has nested loops, returns error, and delegates to a *Context
// variant: allowed.
func (m *Matrix) Solve() (int, error) {
	return m.SolveContext(context.Background())
}

// SolveContext takes a context: allowed.
func (m *Matrix) SolveContext(ctx context.Context) (int, error) {
	n := 0
	for _, c := range m.cols {
		for range c {
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			default:
			}
			n++
		}
	}
	return n, nil
}

// SolveRogue does superlinear fallible work with no cancellation path:
// flagged.
func SolveRogue(cols [][]int) (int, error) { // want `exported SolveRogue has nested loops and returns error`
	n := 0
	for _, c := range cols {
		for range c {
			n++
		}
	}
	if n == 0 {
		return 0, errors.New("empty")
	}
	return n, nil
}

// Count loops once and is infallible: cheap accessor, allowed.
func Count(cols [][]int) int {
	n := 0
	for _, c := range cols {
		n += len(c)
	}
	return n
}

// Validate is fallible but linear: allowed.
func Validate(xs []int) error {
	for _, x := range xs {
		if x < 0 {
			return errors.New("negative")
		}
	}
	return nil
}

// unexportedRogue is not an exported entry point: allowed.
func unexportedRogue(cols [][]int) (int, error) {
	n := 0
	for _, c := range cols {
		for range c {
			n++
		}
	}
	return n, nil
}

// Package other is not on the ctxflow audit list.
package other

import "errors"

// Sweep is exactly the shape ctxflow flags, but this package is not
// part of the cancelable pipeline.
func Sweep(cols [][]int) (int, error) {
	n := 0
	for _, c := range cols {
		for range c {
			n++
		}
	}
	if n == 0 {
		return 0, errors.New("empty")
	}
	return n, nil
}

// Package mapiter flags `for range` over maps in the packages that
// produce user-visible or test-compared output. Go randomizes map
// iteration order, so a map range in a result-producing path makes two
// identical runs disagree byte-for-byte — breaking the deterministic
// enumeration/output contract the workers-equivalence and golden tests
// rely on (and that the paper's exactness argument presumes when it
// talks about "the" synthesized architecture).
//
// Two patterns are recognized as safe and allowed:
//
//  1. Collect-then-sort: a range whose body only appends the map KEY to
//     a slice that the same function later sorts (sort.Strings,
//     sort.Ints, sort.Float64s, sort.Slice, slices.Sort*). The ordered
//     slice, not the map, then drives emission.
//  2. Order-insensitive reduction: a body consisting only of
//     commutative accumulation — `x += ...`, `x++`/`x--`, max/min
//     updates of the form `if a > m { m = a }`, and nested ranges over
//     slices doing the same. Such loops compute the same value in any
//     iteration order.
//
// Everything else in an audited package must iterate sorted keys.
// There is no suppression comment — fix or refactor.
package mapiter

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the mapiter check.
var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc:  "flags nondeterministic map iteration in result-producing packages (report, graph, merging, synth, viz) unless keys are collected and sorted or the loop is an order-insensitive reduction",
	Run:  run,
}

// audited is the set of package base names whose output must be
// deterministic. Matching by base name lets analysistest fixtures named
// testdata/src/report exercise the same rule as repro/internal/report.
var audited = map[string]bool{
	"report":  true,
	"graph":   true,
	"merging": true,
	"synth":   true,
	"viz":     true,
}

func run(pass *analysis.Pass) error {
	if !audited[analysis.BaseName(pass.Path)] {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn.Body)
		}
	}
	return nil
}

// checkFunc audits one function body: first find which slice variables
// the function sorts, then test every map range against the two allowed
// patterns.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	sorted := sortedSlices(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if isKeyCollect(pass, rng, sorted) || orderInsensitive(pass, rng.Body.List) {
			return true
		}
		pass.Reportf(rng.Pos(), "range over map %s in a deterministic-output package; sort the keys first or restructure (mapiter)", types.ExprString(rng.X))
		return true
	})
}

// sortedSlices returns the objects of every slice passed to a sort call
// anywhere in the function body.
func sortedSlices(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if obj, isPkg := pass.TypesInfo.Uses[pkg].(*types.PkgName); !isPkg ||
			(obj.Imported().Path() != "sort" && obj.Imported().Path() != "slices") {
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[arg]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// isKeyCollect reports whether the range body does nothing but append
// the map key to a slice that the function sorts.
func isKeyCollect(pass *analysis.Pass, rng *ast.RangeStmt, sorted map[types.Object]bool) bool {
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	if v, ok := rng.Value.(*ast.Ident); ok && v.Name != "_" {
		return false // the loop also consumes values; order may leak
	}
	if len(rng.Body.List) != 1 {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 || asg.Tok != token.ASSIGN {
		return false
	}
	dst, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "append" {
		return false
	}
	src, ok := call.Args[0].(*ast.Ident)
	if !ok || src.Name != dst.Name {
		return false
	}
	appended, ok := call.Args[1].(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[appended] != pass.TypesInfo.ObjectOf(key) {
		return false
	}
	dstObj := pass.TypesInfo.Uses[dst]
	if dstObj == nil {
		dstObj = pass.TypesInfo.Defs[dst]
	}
	return dstObj != nil && sorted[dstObj]
}

// orderInsensitive reports whether every statement is a commutative
// accumulation whose result cannot depend on iteration order.
func orderInsensitive(pass *analysis.Pass, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if !orderInsensitiveStmt(pass, s) {
			return false
		}
	}
	return len(stmts) > 0
}

func orderInsensitiveStmt(pass *analysis.Pass, s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.IncDecStmt:
		_, ok := s.X.(*ast.Ident)
		return ok
	case *ast.AssignStmt:
		// x += expr: a commutative sum.
		if s.Tok != token.ADD_ASSIGN || len(s.Lhs) != 1 {
			return false
		}
		_, ok := s.Lhs[0].(*ast.Ident)
		return ok
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	case *ast.BlockStmt:
		return orderInsensitive(pass, s.List)
	case *ast.RangeStmt:
		// A nested range is fine when it itself iterates something
		// ordered (slice/array) with an order-insensitive body.
		t := pass.TypesInfo.TypeOf(s.X)
		if t == nil {
			return false
		}
		if _, isMap := t.Underlying().(*types.Map); isMap {
			return false
		}
		return orderInsensitive(pass, s.Body.List)
	case *ast.IfStmt:
		if s.Else != nil || s.Init != nil {
			return false
		}
		if orderInsensitive(pass, s.Body.List) {
			return true
		}
		return isMaxMinUpdate(pass, s)
	default:
		return false
	}
}

// isMaxMinUpdate matches `if <conj> && a OP m && <conj> { m = a }` where
// OP is an ordering operator, i.e. a running max/min. The other
// conjuncts must not mention m, so they cannot reintroduce order
// dependence.
func isMaxMinUpdate(pass *analysis.Pass, s *ast.IfStmt) bool {
	if len(s.Body.List) != 1 {
		return false
	}
	asg, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	m, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	mObj := pass.TypesInfo.Uses[m]
	if mObj == nil {
		return false
	}
	src := types.ExprString(asg.Rhs[0])
	guard := false
	for _, conj := range conjuncts(s.Cond) {
		cmp, ok := conj.(*ast.BinaryExpr)
		isOrder := ok && (cmp.Op == token.LSS || cmp.Op == token.GTR || cmp.Op == token.LEQ || cmp.Op == token.GEQ)
		if isOrder && oneSideIs(pass, cmp, mObj, src) {
			guard = true
			continue
		}
		if mentions(pass, conj, mObj) {
			return false
		}
	}
	return guard
}

// oneSideIs reports whether cmp compares exactly the updated variable m
// against the assigned expression src.
func oneSideIs(pass *analysis.Pass, cmp *ast.BinaryExpr, mObj types.Object, src string) bool {
	match := func(a, b ast.Expr) bool {
		id, ok := a.(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == mObj && types.ExprString(b) == src
	}
	return match(cmp.X, cmp.Y) || match(cmp.Y, cmp.X)
}

func mentions(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

func conjuncts(e ast.Expr) []ast.Expr {
	if b, ok := e.(*ast.BinaryExpr); ok && b.Op == token.LAND {
		return append(conjuncts(b.X), conjuncts(b.Y)...)
	}
	if p, ok := e.(*ast.ParenExpr); ok {
		return conjuncts(p.X)
	}
	return []ast.Expr{e}
}

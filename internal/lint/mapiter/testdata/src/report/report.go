// Package report is a mapiter fixture standing in for the audited
// deterministic-output packages.
package report

import (
	"fmt"
	"sort"
	"strings"
)

// Emit ranges a map straight into output: flagged.
func Emit(vals map[string]float64) string {
	var b strings.Builder
	for k, v := range vals { // want `range over map vals in a deterministic-output package`
		fmt.Fprintf(&b, "%s=%g\n", k, v)
	}
	return b.String()
}

// EmitSorted collects keys, sorts, then emits: the approved pattern.
func EmitSorted(vals map[string]float64) string {
	var keys []string
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%g\n", k, vals[k])
	}
	return b.String()
}

// CollectWithoutSort gathers keys but never sorts them: flagged.
func CollectWithoutSort(vals map[string]float64) []string {
	var keys []string
	for k := range vals { // want `range over map vals`
		keys = append(keys, k)
	}
	return keys
}

// CollectValues appends the VALUE, not the key — sorting keys later
// does not save it: flagged.
func CollectValues(vals map[string]float64) []float64 {
	var out []float64
	var keys []string
	for _, v := range vals { // want `range over map vals`
		out = append(out, v)
	}
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	_ = keys
	return out
}

// Total is an order-insensitive reduction: allowed.
func Total(sets map[int][]string) int {
	total := 0
	for _, s := range sets {
		total += len(s)
	}
	return total
}

// MaxLen is a running max over nested slice ranges: allowed.
func MaxLen(sets map[int][]string, needle string) int {
	max := 0
	for k, set := range sets {
		for _, s := range set {
			if s == needle && k > max {
				max = k
			}
		}
	}
	return max
}

// FirstMatch leaks iteration order through an early assignment:
// flagged.
func FirstMatch(sets map[int][]string) int {
	found := -1
	for k := range sets { // want `range over map sets`
		if found < 0 {
			found = k
		}
	}
	return found
}

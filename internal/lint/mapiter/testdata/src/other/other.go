// Package other is not on the mapiter audit list: map ranges here are
// not output-producing and stay unflagged.
package other

import "fmt"

// Dump may iterate however it likes.
func Dump(vals map[string]int) {
	for k, v := range vals {
		fmt.Println(k, v)
	}
}

package errsentinel_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/errsentinel"
)

func TestErrSentinel(t *testing.T) {
	analysistest.Run(t, "testdata", errsentinel.Analyzer, "a")
}

package errsentinel_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/errsentinel"
)

func TestErrSentinel(t *testing.T) {
	analysistest.Run(t, "testdata", errsentinel.Analyzer, "a")
}

// TestCrossPackage proves the facts relay: package app compares
// sentinels declared by package sentinels — including one without the
// Err name prefix, invisible to the name heuristic — and the
// diagnostics appear in app because the IsSentinel facts exported
// while analyzing sentinels are imported when analyzing app.
func TestCrossPackage(t *testing.T) {
	analysistest.Run(t, "testdata", errsentinel.Analyzer, "sentinels", "app")
}

// Package errsentinel flags `err == ErrFoo` / `err != ErrFoo`
// comparisons against the flow's typed sentinel errors (ErrCanceled,
// ErrInfeasible, durable.ErrClosed, …) in favor of errors.Is. Every
// layer of the pipeline wraps sentinels with %w to attach context —
// the cap message carries the cap value, the facade re-exports
// internal sentinels, the serving stack wraps store errors — so
// identity comparison silently stops matching the moment anyone adds
// a wrap. errors.Is is the only comparison that survives refactoring;
// the invariant applies to tests too, which is where sentinel identity
// checks usually sneak back in.
//
// The rule is cross-package via facts: when a package is analyzed, an
// IsSentinel fact is exported for every package-level `error` variable
// that is sentinel-shaped — named Err*, or initialized directly with
// errors.New / fmt.Errorf regardless of name. Any equality comparison
// whose operand carries that fact (or, as a factless fallback for
// packages analyzed without their dependencies' facts, is Err*-named)
// is flagged, from the declaring package and from every importer
// alike. Comparisons with nil are untouched. There is no suppression
// comment — use errors.Is.
package errsentinel

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// IsSentinel marks a package-level error variable as a sentinel:
// downstream packages must compare against it with errors.Is.
type IsSentinel struct{}

// AFact marks IsSentinel as an analysis fact.
func (*IsSentinel) AFact() {}

func (*IsSentinel) String() string { return "isSentinel" }

// Analyzer is the errsentinel check.
var Analyzer = &analysis.Analyzer{
	Name:      "errsentinel",
	Doc:       "flags ==/!= comparisons against declared error sentinels (cross-package via facts); wrapped sentinels only match via errors.Is",
	Run:       run,
	FactTypes: []analysis.Fact{new(IsSentinel)},
}

func run(pass *analysis.Pass) error {
	exportSentinels(pass)
	pass.Inspect(func(n ast.Node) bool {
		cmp, ok := n.(*ast.BinaryExpr)
		if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
			return true
		}
		name, ok := sentinelName(pass, cmp.X)
		if !ok {
			name, ok = sentinelName(pass, cmp.Y)
		}
		if !ok {
			return true
		}
		op := "=="
		if cmp.Op == token.NEQ {
			op = "!="
		}
		pass.Reportf(cmp.Pos(), "%s compares sentinel %s by identity; wrapped errors will not match — use errors.Is (errsentinel)", op, name)
		return true
	})
	return nil
}

// exportSentinels attaches an IsSentinel fact to every sentinel-shaped
// package-level error variable declared by the pass's package: named
// Err*, or initialized with a direct errors.New / fmt.Errorf call.
func exportSentinels(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					obj, ok := pass.TypesInfo.Defs[id].(*types.Var)
					if !ok || !isErrorType(obj.Type()) {
						continue
					}
					shaped := strings.HasPrefix(id.Name, "Err")
					if !shaped && i < len(vs.Values) {
						shaped = isErrorCtor(pass, vs.Values[i])
					}
					if shaped {
						pass.ExportObjectFact(obj, &IsSentinel{})
					}
				}
			}
		}
	}
}

// isErrorCtor reports whether e is a direct errors.New(...) or
// fmt.Errorf(...) call — the canonical sentinel initializers.
func isErrorCtor(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() + "." + fn.Name() {
	case "errors.New", "fmt.Errorf":
		return true
	}
	return false
}

// sentinelName reports whether e denotes a package-level error variable
// that is a declared sentinel: one carrying an IsSentinel fact, or —
// so the rule degrades gracefully when dependency facts are absent
// (stdlib sentinels, bare analysis.Run) — one named Err*.
func sentinelName(pass *analysis.Pass, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || obj.IsField() || obj.Parent() == nil {
		return "", false
	}
	// Package-level: its parent scope is the package scope.
	if obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		return "", false
	}
	if !isErrorType(obj.Type()) {
		return "", false
	}
	if strings.HasPrefix(obj.Name(), "Err") || pass.ImportObjectFact(obj, new(IsSentinel)) {
		return obj.Name(), true
	}
	return "", false
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

// Package errsentinel flags `err == ErrFoo` / `err != ErrFoo`
// comparisons against the flow's typed sentinel errors (ErrCanceled,
// ErrInfeasible, ErrCandidateCap, …) in favor of errors.Is. Every layer
// of the pipeline wraps sentinels with %w to attach context — the cap
// message carries the cap value, the facade re-exports internal
// sentinels — so identity comparison silently stops matching the moment
// anyone adds a wrap. errors.Is is the only comparison that survives
// refactoring; the invariant applies to tests too, which is where
// sentinel identity checks usually sneak back in.
//
// The rule: any equality comparison where either operand is a
// package-level `error` variable whose name starts with "Err" is
// flagged. Comparisons with nil are untouched. There is no suppression
// comment — use errors.Is.
package errsentinel

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the errsentinel check.
var Analyzer = &analysis.Analyzer{
	Name: "errsentinel",
	Doc:  "flags ==/!= comparisons against Err* sentinel variables; wrapped sentinels only match via errors.Is",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		cmp, ok := n.(*ast.BinaryExpr)
		if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
			return true
		}
		name, ok := sentinelName(pass, cmp.X)
		if !ok {
			name, ok = sentinelName(pass, cmp.Y)
		}
		if !ok {
			return true
		}
		op := "=="
		if cmp.Op == token.NEQ {
			op = "!="
		}
		pass.Reportf(cmp.Pos(), "%s compares sentinel %s by identity; wrapped errors will not match — use errors.Is (errsentinel)", op, name)
		return true
	})
	return nil
}

// sentinelName reports whether e denotes a package-level error variable
// named Err*.
func sentinelName(pass *analysis.Pass, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || obj.IsField() || obj.Parent() == nil {
		return "", false
	}
	// Package-level: its parent scope is the package scope.
	if obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		return "", false
	}
	if !strings.HasPrefix(obj.Name(), "Err") || !isErrorType(obj.Type()) {
		return "", false
	}
	return obj.Name(), true
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

// Package a is the errsentinel single-package fixture.
package a

import (
	"errors"
	"fmt"
)

// ErrInfeasible is a typed sentinel like the ones the facade exports.
var ErrInfeasible = errors.New("infeasible") // want ErrInfeasible:`isSentinel`

// errInternal lacks the Err prefix after unexported naming, but its
// initializer makes it a sentinel all the same.
var errInternal = errors.New("internal") // want errInternal:`isSentinel`

// NotASentinel is Err-prefix-free but errors.New-initialized: the
// io.EOF shape. The fact keys on the initializer, not the name.
var NotASentinel = errors.New("odd name") // want NotASentinel:`isSentinel`

// dynamic is error-typed but built by arbitrary code — not a declared
// sentinel, so identity comparison is (dubiously but) allowed.
var dynamic = makeErr()

func makeErr() error { return fmt.Errorf("dynamic %d", 42) }

// Check exercises the flagged and allowed comparison shapes.
func Check(err error) int {
	if err == ErrInfeasible { // want `== compares sentinel ErrInfeasible by identity`
		return 1
	}
	if err != ErrInfeasible { // want `!= compares sentinel ErrInfeasible by identity`
		return 2
	}
	if ErrInfeasible == err { // want `== compares sentinel ErrInfeasible by identity`
		return 3
	}
	if errors.Is(err, ErrInfeasible) { // allowed: the fix
		return 4
	}
	if err == nil { // allowed: nil check, not a sentinel
		return 5
	}
	if err == errInternal { // want `== compares sentinel errInternal by identity`
		return 6
	}
	if err == NotASentinel { // want `== compares sentinel NotASentinel by identity`
		return 7
	}
	if err == dynamic { // allowed: not a declared sentinel
		return 8
	}
	wrapped := fmt.Errorf("cap 12: %w", ErrInfeasible)
	if errors.Is(wrapped, ErrInfeasible) {
		return 9
	}
	return 0
}

// Package a is the errsentinel fixture.
package a

import (
	"errors"
	"fmt"
)

// ErrInfeasible is a typed sentinel like the ones the facade exports.
var ErrInfeasible = errors.New("infeasible")

// errInternal is unexported but still a sentinel by shape; the rule
// keys on the Err name prefix, which it lacks after export rules — it
// is named err*, so identity comparison is not flagged.
var errInternal = errors.New("internal")

// NotASentinel is an error-typed package var without the Err prefix.
var NotASentinel = errors.New("odd name")

// Check exercises the flagged and allowed comparison shapes.
func Check(err error) int {
	if err == ErrInfeasible { // want `== compares sentinel ErrInfeasible by identity`
		return 1
	}
	if err != ErrInfeasible { // want `!= compares sentinel ErrInfeasible by identity`
		return 2
	}
	if ErrInfeasible == err { // want `== compares sentinel ErrInfeasible by identity`
		return 3
	}
	if errors.Is(err, ErrInfeasible) { // allowed: the fix
		return 4
	}
	if err == nil { // allowed: nil check, not a sentinel
		return 5
	}
	if err == errInternal { // allowed: not Err*-named (unexported err*)
		return 6
	}
	if err == NotASentinel { // allowed: no Err prefix
		return 7
	}
	wrapped := fmt.Errorf("cap 12: %w", ErrInfeasible)
	if errors.Is(wrapped, ErrInfeasible) {
		return 8
	}
	return 0
}

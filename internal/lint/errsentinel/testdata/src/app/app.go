// Package app imports the sentinels fixture package and compares its
// errors by identity — the cross-package case the IsSentinel facts
// exist to catch.
package app

import (
	"errors"

	"sentinels"
)

// Handle exercises cross-package sentinel comparisons.
func Handle(err error) int {
	if err == sentinels.ErrClosed { // want `== compares sentinel ErrClosed by identity`
		return 1
	}
	if err != sentinels.Torn { // want `!= compares sentinel Torn by identity`
		return 2
	}
	if errors.Is(err, sentinels.Torn) { // allowed: the fix
		return 3
	}
	if err == sentinels.Limit { // allowed: not a declared sentinel
		return 4
	}
	return 0
}

// Package sentinels declares the error sentinels the cross-package
// fixture (package app) compares against. It mirrors the shape of
// internal/durable: one Err*-named sentinel and one io.EOF-style
// sentinel whose name carries no Err prefix — the case only the facts
// relay can catch from an importing package.
package sentinels

import "errors"

// ErrClosed is the conventionally named sentinel.
var ErrClosed = errors.New("sentinels: closed") // want ErrClosed:`isSentinel`

// Torn is a sentinel by initializer, not by name.
var Torn = errors.New("sentinels: torn record") // want Torn:`isSentinel`

// Limit is error-typed but not sentinel-shaped: built indirectly.
var Limit = build()

func build() error { return errors.New("sentinels: limit") }

// Package user exercises the verified-then-mutated shapes implmut
// flags and the sanctioned ones it allows.
package user

import "impl"

// Flagged: mutator call after Verify with no re-verification.
func mutateAfterVerify(g *impl.Graph) error {
	if err := g.Verify(); err != nil {
		return err
	}
	g.AddCommVertex("v9") // want `AddCommVertex mutates g after Verify`
	return nil
}

// Flagged: all three mutator prefixes, plus a direct write.
func manyMutations(g *impl.Graph) error {
	if err := g.Validate(); err != nil {
		return err
	}
	g.AddLink("a", "b")              // want `AddLink mutates g after Verify`
	g.AssignImplementation("a", 2)   // want `AssignImplementation mutates g after Verify`
	g.SetLinks(nil)                  // want `SetLinks mutates g after Verify`
	g.Impl["a"] = 3                  // want `assignment to g.Impl\["a"\] mutates g after Verify`
	g.Vertices = append(g.Vertices, "x") // want `assignment to g.Vertices mutates g after Verify`
	return nil
}

// Allowed: mutate first, verify last — the canonical build flow.
func buildThenVerify() (*impl.Graph, error) {
	g := impl.New()
	g.AddCommVertex("v1")
	g.AddLink("v1", "v1")
	return g, g.Verify()
}

// Allowed: mutation followed by re-verification.
func mutateThenReverify(g *impl.Graph) error {
	if err := g.Verify(); err != nil {
		return err
	}
	g.AddCommVertex("v2")
	return g.Verify()
}

// Flagged: only the mutation after the last verification.
func reverifyThenMutate(g *impl.Graph) error {
	if err := g.Verify(); err != nil {
		return err
	}
	g.AddCommVertex("v3")
	if err := g.Verify(); err != nil {
		return err
	}
	g.AddLink("v3", "v3") // want `AddLink mutates g after Verify`
	return nil
}

// Allowed: reads after verification are not mutations.
func readAfterVerify(g *impl.Graph) (int, error) {
	if err := g.Verify(); err != nil {
		return 0, err
	}
	return g.Cost(), nil
}

// Allowed: distinct receivers do not contaminate each other.
func twoGraphs(a, b *impl.Graph) error {
	if err := a.Verify(); err != nil {
		return err
	}
	b.AddCommVertex("v4")
	return nil
}

// Allowed: rebinding the variable is not mutating the verified graph.
func rebind(g *impl.Graph) error {
	if err := g.Verify(); err != nil {
		return err
	}
	g = impl.New()
	return nil
}

// Allowed via reviewed escape.
func ignored(g *impl.Graph) error {
	if err := g.Verify(); err != nil {
		return err
	}
	//cdcsvet:ignore implmut -- scratch copy is re-verified by the caller
	g.AddCommVertex("v5")
	return nil
}

// Function literals are separate scopes: the literal verifies and the
// outer function mutates, neither is a verified-then-mutated path.
func litScopes(g *impl.Graph) {
	check := func() error { return g.Verify() }
	_ = check
	g.AddCommVertex("v6")
}

// Package impl is the fixture twin of repro/internal/impl: a Graph
// with mutators and verification entry points.
package impl

import "errors"

// Graph is a miniature implementation graph.
type Graph struct {
	Vertices []string
	Links    map[string]string
	Impl     map[string]int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{Links: map[string]string{}, Impl: map[string]int{}}
}

// AddCommVertex appends a vertex.
func (g *Graph) AddCommVertex(v string) { g.Vertices = append(g.Vertices, v) }

// AddLink records an edge.
func (g *Graph) AddLink(a, b string) { g.Links[a] = b }

// AssignImplementation binds a vertex to an implementation index.
func (g *Graph) AssignImplementation(v string, idx int) { g.Impl[v] = idx }

// SetLinks replaces the link table.
func (g *Graph) SetLinks(m map[string]string) { g.Links = m }

// Verify checks the graph's invariants.
func (g *Graph) Verify() error {
	if len(g.Vertices) == 0 {
		return errors.New("empty graph")
	}
	return nil
}

// Validate is the strict verification entry point.
func (g *Graph) Validate() error { return g.Verify() }

// Cost is a read-only query.
func (g *Graph) Cost() int { return len(g.Links) }

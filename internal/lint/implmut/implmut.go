// Package implmut flags mutations of an impl.Graph after a call to
// its verification entry points (Verify, Validate) within the same
// function. The CDCS exactness argument rests on the implementation
// graph a result was verified against being the graph the caller
// keeps using: append a vertex or reassign an implementation after
// Verify and the stored verdict is stale — the classic
// checked-then-changed bug the ROADMAP left open. Mutating and then
// re-verifying is fine; it is the mutation with no later verification
// that is flagged.
//
// Mutations are mutating method calls (Add*, Assign*, Set* — the
// package's mutator naming convention) and direct writes through the
// graph (field, index, or pointer assignment). Receivers are matched
// textually (types.ExprString), so aliasing through a second variable
// is invisible — a justified `//cdcsvet:ignore implmut -- why` escape
// exists for reviewed cases the approximation gets wrong.
package implmut

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the implmut check.
var Analyzer = &analysis.Analyzer{
	Name:        "implmut",
	Doc:         "flags impl.Graph mutations after Verify/Validate in the same function; the verification verdict goes stale",
	Run:         run,
	AllowIgnore: true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, fd.Body)
		}
	}
	return nil
}

// event is one ordered verify-or-mutate occurrence on a receiver.
type event struct {
	verify bool
	recv   string // types.ExprString of the graph expression
	pos    token.Pos
	what   string // mutation description for the diagnostic
}

// checkBody collects the function's events in source order and flags
// every mutation that follows a verification of the same receiver
// with no re-verification after it. Function literals are separate
// scopes: their bodies are checked independently.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var events []event
	collect(pass, body, &events)
	for i, m := range events {
		if m.verify {
			continue
		}
		verifiedBefore, verifiedAfter := false, false
		for j, v := range events {
			if !v.verify || v.recv != m.recv {
				continue
			}
			if j < i {
				verifiedBefore = true
			} else if j > i {
				verifiedAfter = true
			}
		}
		if verifiedBefore && !verifiedAfter {
			pass.Reportf(m.pos,
				"%s mutates %s after Verify; the verification verdict is stale — re-verify after mutating (implmut)",
				m.what, m.recv)
		}
	}
}

func collect(pass *analysis.Pass, body *ast.BlockStmt, events *[]event) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkBody(pass, n.Body)
			return false
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || !isGraph(pass.TypesInfo.TypeOf(sel.X)) {
				return true
			}
			name := sel.Sel.Name
			switch {
			case name == "Verify" || name == "Validate":
				*events = append(*events, event{verify: true, recv: types.ExprString(sel.X), pos: n.Pos()})
			case strings.HasPrefix(name, "Add") || strings.HasPrefix(name, "Assign") || strings.HasPrefix(name, "Set"):
				*events = append(*events, event{
					recv: types.ExprString(sel.X), pos: n.Pos(), what: name,
				})
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if recv, ok := graphWriteTarget(pass, lhs); ok {
					*events = append(*events, event{
						recv: recv, pos: lhs.Pos(), what: "assignment to " + types.ExprString(lhs),
					})
				}
			}
		}
		return true
	})
}

// graphWriteTarget reports whether lhs writes through an impl.Graph —
// a field, element, or pointer target rooted at a graph-typed
// expression — and returns that root. A plain rebinding of a graph
// variable (g = other) is not a mutation of the graph it used to hold.
func graphWriteTarget(pass *analysis.Pass, lhs ast.Expr) (string, bool) {
	switch lhs := lhs.(type) {
	case *ast.SelectorExpr:
		if isGraph(pass.TypesInfo.TypeOf(lhs.X)) {
			return types.ExprString(lhs.X), true
		}
		return graphWriteTarget(pass, lhs.X)
	case *ast.IndexExpr:
		if isGraph(pass.TypesInfo.TypeOf(lhs.X)) {
			return types.ExprString(lhs.X), true
		}
		return graphWriteTarget(pass, lhs.X)
	case *ast.StarExpr:
		if isGraph(pass.TypesInfo.TypeOf(lhs.X)) {
			return types.ExprString(lhs.X), true
		}
		return graphWriteTarget(pass, lhs.X)
	}
	return "", false
}

// isGraph reports whether t is (a pointer to) the Graph type of a
// package named impl — the real repro/internal/impl and the fixture's
// impl package alike.
func isGraph(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Graph" && obj.Pkg() != nil && analysis.BaseName(obj.Pkg().Path()) == "impl"
}

package implmut_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/implmut"
)

func TestImplMut(t *testing.T) {
	analysistest.Run(t, "testdata", implmut.Analyzer, "impl", "user")
}

// Package floatcmp flags `==` and `!=` between float64 (or float32)
// operands in the packages that carry the synthesis flow's costs and
// bounds. The CDCS optimality argument compares real-valued costs; in
// float64 those values arrive with summation-order-dependent rounding
// noise, so a raw equality test silently turns a mathematical tie into
// an arbitrary, non-reproducible decision. The approved alternative is
// repro/internal/num (Eq, Less, LessEq, Greater, GreaterEq, IsZero),
// whose shared epsilon makes every tie-break noise-tolerant.
//
// Constant-vs-constant comparisons are allowed (they are evaluated
// exactly at compile time), as are test files: tests compare against
// values they constructed themselves, where exact equality is the
// point. There is no suppression comment — fix or refactor.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the floatcmp check.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!= between float operands in cost/bound-carrying packages (ucp, merging, ilp, synth, p2p, cdcs); use repro/internal/num epsilon comparators",
	Run:  run,
}

// audited is the set of package base names whose float values are
// costs, bounds, distances, or bandwidths feeding the exactness
// argument.
var audited = map[string]bool{
	"ucp":     true,
	"merging": true,
	"ilp":     true,
	"synth":   true,
	"p2p":     true,
	"cdcs":    true,
}

func run(pass *analysis.Pass) error {
	if !audited[analysis.BaseName(pass.Path)] {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		cmp, ok := n.(*ast.BinaryExpr)
		if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
			return true
		}
		if pass.IsTestFile(cmp.Pos()) {
			return false
		}
		if !isFloat(pass, cmp.X) || !isFloat(pass, cmp.Y) {
			return true
		}
		if isConst(pass, cmp.X) && isConst(pass, cmp.Y) {
			return true
		}
		pass.Reportf(cmp.Pos(), "float %s comparison of %s and %s; use the epsilon helpers in repro/internal/num (floatcmp)",
			cmp.Op, types.ExprString(cmp.X), types.ExprString(cmp.Y))
		return true
	})
	return nil
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	return pass.TypesInfo.Types[e].Value != nil
}

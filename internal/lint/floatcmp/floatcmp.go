// Package floatcmp flags raw float64 (or float32) comparisons — the
// equalities `==`/`!=` and, since the B&B epsilon audit, the ordered
// operators `<`, `<=`, `>`, `>=` — in the packages that carry the
// synthesis flow's costs and bounds. The CDCS optimality argument
// compares real-valued costs; in float64 those values arrive with
// summation-order-dependent rounding noise, so a raw comparison
// silently encodes a decision about how ties and near-ties behave.
// The approved alternative is repro/internal/num, which splits every
// comparison into a reviewed family: the epsilon helpers (Eq, Less,
// LessEq, Greater, GreaterEq, IsZero) where a noise-split tie must
// stay a tie, and the exact helpers (Improves, NoBetter, Stronger,
// Below, AtMost) where the audit concluded tolerance is unsound —
// pruning against an incumbent must never discard a genuinely better
// subtree, and the bench gate pins the search counters exactly.
// Routing a comparison through a named helper is the audit trail.
//
// Exemptions: test files (tests compare values they constructed,
// where exactness is the point); equality of two constants (evaluated
// exactly at compile time); and ordered comparisons against a
// constant (`gap < 0`, `raise <= 0` — sign and threshold tests whose
// semantics are exact by construction, not tie-breaks between two
// computed quantities). There is no suppression comment — fix or
// refactor.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the floatcmp check.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "flags raw float comparisons (==, !=, <, <=, >, >=) in cost/bound-carrying packages (ucp, merging, ilp, synth, p2p, cdcs); use the repro/internal/num comparators",
	Run:  run,
}

// audited is the set of package base names whose float values are
// costs, bounds, distances, or bandwidths feeding the exactness
// argument.
var audited = map[string]bool{
	"ucp":     true,
	"merging": true,
	"ilp":     true,
	"synth":   true,
	"p2p":     true,
	"cdcs":    true,
}

func run(pass *analysis.Pass) error {
	if !audited[analysis.BaseName(pass.Path)] {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		cmp, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		var ordered bool
		switch cmp.Op {
		case token.EQL, token.NEQ:
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			ordered = true
		default:
			return true
		}
		if pass.IsTestFile(cmp.Pos()) {
			return false
		}
		if !isFloat(pass, cmp.X) || !isFloat(pass, cmp.Y) {
			return true
		}
		cx, cy := isConst(pass, cmp.X), isConst(pass, cmp.Y)
		if ordered {
			// Threshold tests against a literal are exact by intent.
			if cx || cy {
				return true
			}
		} else if cx && cy {
			return true
		}
		pass.Reportf(cmp.Pos(), "float %s comparison of %s and %s; use the comparators in repro/internal/num (floatcmp)",
			cmp.Op, types.ExprString(cmp.X), types.ExprString(cmp.Y))
		return true
	})
	return nil
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	return pass.TypesInfo.Types[e].Value != nil
}

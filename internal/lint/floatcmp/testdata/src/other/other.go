// Package other is not on the floatcmp audit list; raw float equality
// here is outside the exactness-critical flow.
package other

// Same compares floats directly and is not flagged.
func Same(a, b float64) bool { return a == b }

// Order uses a raw ordered comparison and is not flagged either.
func Order(a, b float64) bool { return a < b }

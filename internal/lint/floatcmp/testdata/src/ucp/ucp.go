// Package ucp is a floatcmp fixture standing in for the audited
// cost/bound-carrying packages.
package ucp

// eq stands in for the approved repro/internal/num helpers; calling a
// comparator instead of using an operator is the fix the analyzer
// drives toward. Its internals compare against a constant, which is
// exempt.
func eq(a, b float64) bool { return a-b < 1e-9 && b-a < 1e-9 }

// Pick compares candidate costs.
func Pick(cost, best float64, costs []float64) int {
	if cost == best { // want `float == comparison of cost and best`
		return 0
	}
	if cost != best { // want `float != comparison of cost and best`
		return 1
	}
	for i, c := range costs {
		if eq(c, best) { // allowed: comparator helper call
			return i
		}
	}
	const a, b = 1.5, 2.5
	if a == b { // allowed: constant comparison, evaluated exactly
		return 3
	}
	return -1
}

// Prune exercises the ordered operators the B&B audit brought under
// the rule: two computed quantities must go through a named
// comparator.
func Prune(cost, bound, best float64) int {
	if cost < best { // want `float < comparison of cost and best`
		return 0
	}
	if cost+bound >= best { // want `float >= comparison of cost \+ bound and best`
		return 1
	}
	if bound > cost { // want `float > comparison of bound and cost`
		return 2
	}
	if bound <= cost { // want `float <= comparison of bound and cost`
		return 3
	}
	return -1
}

// Thresholds against constants are exact by intent and stay exempt.
func Thresholds(gap, raise float64) bool {
	if gap < 0 {
		return true
	}
	if raise <= 0 {
		return true
	}
	return 1e-9 > gap
}

// Mixed types still count when the float side decides equality.
func Mixed(ratio float64) bool {
	return ratio == 0.5 // want `float == comparison of ratio and 0.5`
}

// Ints are untouched.
func Ints(a, b int) bool { return a == b && a < b == false }

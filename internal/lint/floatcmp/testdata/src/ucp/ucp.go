// Package ucp is a floatcmp fixture standing in for the audited
// cost/bound-carrying packages.
package ucp

// eq stands in for the approved repro/internal/num helpers; calling a
// comparator instead of using an operator is the fix the analyzer
// drives toward.
func eq(a, b float64) bool { return a-b < 1e-9 && b-a < 1e-9 }

// Pick compares candidate costs.
func Pick(cost, best float64, costs []float64) int {
	if cost == best { // want `float == comparison of cost and best`
		return 0
	}
	if cost != best { // want `float != comparison of cost and best`
		return 1
	}
	for i, c := range costs {
		if eq(c, best) { // allowed: epsilon helper call
			return i
		}
	}
	if cost < best { // allowed: strict ordering is not equality
		return 2
	}
	const a, b = 1.5, 2.5
	if a == b { // allowed: constant comparison, evaluated exactly
		return 3
	}
	return -1
}

// Mixed types still count when the float side decides.
func Mixed(ratio float64) bool {
	return ratio == 0.5 // want `float == comparison of ratio and 0.5`
}

// Ints are untouched.
func Ints(a, b int) bool { return a == b }

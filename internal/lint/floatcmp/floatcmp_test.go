package floatcmp_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/floatcmp"
)

func TestFloatCmp(t *testing.T) {
	analysistest.Run(t, "testdata", floatcmp.Analyzer, "ucp", "other")
}

package lockorder_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/analysistest"
	"repro/internal/lint/load"
	"repro/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "durable", "serve", "p2p")
}

// TestMalformedDirectives: a directive that cannot be parsed (or whose
// source mutex does not exist) is a diagnostic, never a silent no-op.
func TestMalformedDirectives(t *testing.T) {
	loader := load.New(filepath.Join("testdata", "src"), "")
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "badrule"))
	if err != nil {
		t.Fatalf("loading badrule: %v", err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{lockorder.Analyzer})
	if err != nil {
		t.Fatalf("running: %v", err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "malformed lockorder directive") {
			t.Errorf("diagnostic %q does not flag the malformed directive", d.Message)
		}
	}
}

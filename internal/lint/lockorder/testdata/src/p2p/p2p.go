// Package p2p is the lockorder fixture for the self-edge rule: shard
// locks are leaves, so holding one while acquiring another (any
// instance) is a lock-inversion deadlock waiting for two goroutines
// to pick opposite orders.
//
//cdcsvet:lockorder shard.mu -> shard.mu
package p2p

import "sync"

type shard struct {
	mu      sync.Mutex
	entries map[string]int
}

// Planner mirrors the sharded plan cache.
type Planner struct {
	shards [4]shard
}

// Flagged: the cross-shard double-lock.
func (p *Planner) transfer(a, b int, k string) {
	p.shards[a].mu.Lock()
	p.shards[b].mu.Lock() // want `acquires shard.mu while holding shard.mu`
	p.shards[b].entries[k] = p.shards[a].entries[k]
	p.shards[b].mu.Unlock()
	p.shards[a].mu.Unlock()
}

// lockedGet acquires a shard lock inside a helper.
func (p *Planner) lockedGet(i int, k string) int {
	sh := &p.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.entries[k]
}

// Flagged: the second acquisition hides in the helper.
func (p *Planner) sum(a, b int, k string) int {
	p.shards[a].mu.Lock()
	defer p.shards[a].mu.Unlock()
	return p.shards[a].entries[k] + p.lockedGet(b, k) // want `calls lockedGet, which acquires shard.mu, while holding shard.mu`
}

// Allowed: the real Stats pattern — one shard at a time, sequentially.
func (p *Planner) stats() int {
	total := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		total += len(sh.entries)
		sh.mu.Unlock()
	}
	return total
}

// Allowed: lock, read, unlock, then the helper locks afterwards.
func (p *Planner) sequential(a, b int, k string) int {
	p.shards[a].mu.Lock()
	v := p.shards[a].entries[k]
	p.shards[a].mu.Unlock()
	return v + p.lockedGet(b, k)
}

// Package serve is the lockorder fixture for the call-target rule:
// while Server.mu is held, no durable.Store method may run — the
// store calls back into the server's snapshot hook under its own
// lock, so the combination deadlocks.
//
//cdcsvet:lockorder Server.mu -> durable.Store
package serve

import (
	"sync"

	"durable"
)

// Server mirrors the daemon's front end.
type Server struct {
	mu    sync.Mutex
	jobs  map[string]int
	store *durable.Store
}

// Flagged: a store call directly under the lock.
func (s *Server) direct() {
	s.mu.Lock()
	s.store.Append("x") // want `calls durable.Store method while holding Server.mu`
	s.mu.Unlock()
}

// Flagged: defer keeps the lock to function end, so the call is under
// it.
func (s *Server) deferred() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.store.Append("x") // want `calls durable.Store method while holding Server.mu`
}

// persist is the helper the indirect cases route through.
func (s *Server) persist(r string) {
	s.store.Append(r)
}

// persistAll adds one more hop.
func (s *Server) persistAll() {
	s.persist("a")
	s.persist("b")
}

// Flagged: the violation is one helper deep.
func (s *Server) indirect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.persist("x") // want `calls persist, which calls durable.Store methods, while holding Server.mu`
}

// Flagged: two helpers deep — the transitive summary closure.
func (s *Server) transitive() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.persistAll() // want `calls persistAll, which calls durable.Store methods, while holding Server.mu`
}

// Allowed: the real tree's pattern — mutate the table under the lock,
// release, then persist.
func (s *Server) unlockFirst() {
	s.mu.Lock()
	s.jobs["a"] = 1
	s.mu.Unlock()
	s.persist("a")
}

// Allowed: the early-exit branch unlocks and returns; the fall-through
// path unlocks before persisting.
func (s *Server) branches(ok bool) {
	s.mu.Lock()
	if !ok {
		s.mu.Unlock()
		return
	}
	s.jobs["b"] = 2
	s.mu.Unlock()
	s.persist("b")
}

// Flagged: only one branch unlocks, so the store call is possibly
// under the lock — possibly held counts as held.
func (s *Server) leakyBranch(ok bool) {
	s.mu.Lock()
	if ok {
		s.mu.Unlock()
	}
	s.persist("c") // want `calls persist, which calls durable.Store methods, while holding Server.mu`
}

// Allowed: a goroutine does not inherit its creator's locks.
func (s *Server) spawn() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.persist("bg")
	}()
}

// Allowed: reads under the lock that never reach the store.
func (s *Server) snapshot() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.jobs))
	for k, v := range s.jobs {
		out[k] = v
	}
	return out
}

// Allowed via reviewed escape: a store call the human has argued is
// safe (e.g. a method documented not to take the store lock).
func (s *Server) ignored() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//cdcsvet:ignore lockorder -- Close is documented reentrancy-safe in this fixture
	_ = s.store.Close()
}

// Package badrule carries deliberately malformed lockorder directives;
// the analyzer must diagnose them instead of silently ignoring the
// declared discipline. Checked programmatically (not via want
// comments: the directive comment runs to end of line, so a trailing
// want cannot share it).
//
//cdcsvet:lockorder Server.mu
//
//cdcsvet:lockorder Missing.mu -> durable.Store
package badrule

import "sync"

// Server exists so only the second directive's source is unresolvable.
type Server struct {
	mu sync.Mutex
}

// Package durable is the dependency fixture: a store whose methods
// take their own lock — the reason callers must never invoke them
// under theirs.
package durable

import "sync"

// Store is a miniature of the real WAL-backed store.
type Store struct {
	mu   sync.Mutex
	rows []string
}

// Append records one row.
func (s *Store) Append(r string) {
	s.mu.Lock()
	s.rows = append(s.rows, r)
	s.mu.Unlock()
}

// Close shuts the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rows = nil
	return nil
}

// Package lockorder checks declared lock hierarchies. A package that
// documents a locking discipline turns the comment into a checked
// directive:
//
//	//cdcsvet:lockorder Server.mu -> durable.Store
//	//cdcsvet:lockorder shard.mu -> shard.mu
//
// Each directive forbids one thing while the source mutex (a field of
// a package-local type, identified as Type.field) is held on any path
// of a function in the package:
//
//   - a pkg.Type target forbids calling any method of that type — the
//     serve rule: persist* helpers must run outside s.mu because the
//     durable store calls back into the server's snapshot under its
//     own lock;
//   - a Type.field target forbids acquiring that mutex; the self-edge
//     form (shard.mu -> shard.mu) forbids nested acquisition across
//     instances, i.e. no cross-shard double-lock.
//
// The analysis is a source-order, intra-procedural held-set walk:
// Lock/RLock acquires, Unlock/RUnlock releases, `defer Unlock` holds
// to function end, branches that return are discarded, the rest merge
// by union (a mutex possibly held counts as held). Calls to
// same-package functions are resolved through transitive call
// summaries, so a violation buried two helpers deep is still caught at
// the outermost call made under the lock. Goroutine bodies start with
// an empty held set — a `go` statement does not carry its creator's
// locks. The approximations are deliberately one-sided where cheap,
// but conditional unlocking can still fool them; the
// `//cdcsvet:ignore lockorder -- why` escape covers reviewed cases.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name:        "lockorder",
	Doc:         "checks //cdcsvet:lockorder directives: no forbidden mutex acquisition or target-type method call while the declared source mutex is held",
	Run:         run,
	AllowIgnore: true,
}

// rule is one parsed directive.
type rule struct {
	src string // source mutex key "Type.field"
	// Exactly one of the two targets is set:
	mutex   string // forbidden mutex key "Type.field"
	callPkg string // forbidden callee package base name …
	callTyp string // … and type name
	pos     token.Pos
}

func (r *rule) target() string {
	if r.mutex != "" {
		return r.mutex
	}
	return r.callPkg + "." + r.callTyp
}

func run(pass *analysis.Pass) error {
	rules := parseDirectives(pass)
	if len(rules) == 0 {
		return nil
	}
	c := &checker{pass: pass, rules: rules}
	c.buildSummaries()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.walkBlock(fd.Body.List, held{})
			}
		}
	}
	return nil
}

// parseDirectives scans every comment of the package for lockorder
// directives; malformed ones are themselves diagnostics so a typo
// cannot silently disable the check.
func parseDirectives(pass *analysis.Pass) []*rule {
	const prefix = "//cdcsvet:lockorder "
	var rules []*rule
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, prefix)
				if !ok {
					continue
				}
				r, err := parseRule(pass, strings.TrimSpace(rest))
				if err != nil {
					pass.Reportf(c.Pos(), "malformed lockorder directive %q: %v (lockorder)", strings.TrimSpace(rest), err)
					continue
				}
				r.pos = c.Pos()
				rules = append(rules, r)
			}
		}
	}
	return rules
}

func parseRule(pass *analysis.Pass, text string) (*rule, error) {
	lhs, rhs, ok := strings.Cut(text, "->")
	if !ok {
		return nil, fmt.Errorf("want %q", "Type.field -> Type.field | pkg.Type")
	}
	src := strings.TrimSpace(lhs)
	dst := strings.TrimSpace(rhs)
	srcType, srcField, ok := strings.Cut(src, ".")
	if !ok || srcType == "" || srcField == "" {
		return nil, fmt.Errorf("source %q is not Type.field", src)
	}
	if !isLocalMutexField(pass, srcType, srcField) {
		return nil, fmt.Errorf("source %s.%s is not a sync.Mutex/RWMutex field of a package type", srcType, srcField)
	}
	a, b, ok := strings.Cut(dst, ".")
	if !ok || a == "" || b == "" {
		return nil, fmt.Errorf("target %q is not Type.field or pkg.Type", dst)
	}
	r := &rule{src: srcType + "." + srcField}
	// Disambiguate the target: a package-local type name means a mutex
	// edge; anything else names an imported package's type.
	if isLocalMutexField(pass, a, b) {
		r.mutex = a + "." + b
	} else if _, isType := pass.Pkg.Scope().Lookup(a).(*types.TypeName); isType {
		return nil, fmt.Errorf("target %s.%s is not a mutex field of package type %s", a, b, a)
	} else {
		r.callPkg, r.callTyp = a, b
	}
	return r, nil
}

// isLocalMutexField reports whether the package declares a type with
// the named sync.Mutex/RWMutex field.
func isLocalMutexField(pass *analysis.Pass, typeName, field string) bool {
	tn, ok := pass.Pkg.Scope().Lookup(typeName).(*types.TypeName)
	if !ok {
		return false
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == field && isSyncMutex(f.Type()) {
			return true
		}
	}
	return false
}

func isSyncMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// held maps mutex keys to acquisition counts on the current path.
type held map[string]int

func (h held) clone() held {
	out := make(held, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// merge unions counts (max): after a branch, "possibly held" is held.
func (h held) merge(o held) {
	for k, v := range o {
		if v > h[k] {
			h[k] = v
		}
	}
}

func (h held) any() bool {
	for _, v := range h {
		if v > 0 {
			return true
		}
	}
	return false
}

// effects summarizes what one package function does, transitively:
// which mutexes it may acquire and which foreign types it may call.
type effects struct {
	acquires map[string]bool
	calls    map[string]bool // "pkgBase.Type"
	callees  map[*types.Func]bool
}

type checker struct {
	pass      *analysis.Pass
	rules     []*rule
	summaries map[*types.Func]*effects
}

// buildSummaries computes per-function effect summaries and closes
// them over same-package calls, so checking a call site sees
// everything reachable beneath it.
func (c *checker) buildSummaries() {
	c.summaries = map[*types.Func]*effects{}
	for _, file := range c.pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			eff := &effects{acquires: map[string]bool{}, calls: map[string]bool{}, callees: map[*types.Func]bool{}}
			c.collectEffects(fd.Body, eff)
			c.summaries[fn] = eff
		}
	}
	// Fixpoint: fold callees' effects upward until nothing changes.
	for changed := true; changed; {
		changed = false
		for _, eff := range c.summaries {
			for callee := range eff.callees {
				ce, ok := c.summaries[callee]
				if !ok {
					continue
				}
				for k := range ce.acquires {
					if !eff.acquires[k] {
						eff.acquires[k] = true
						changed = true
					}
				}
				for k := range ce.calls {
					if !eff.calls[k] {
						eff.calls[k] = true
						changed = true
					}
				}
			}
		}
	}
}

// collectEffects records n's direct effects. Goroutine literals are
// excluded: their bodies run outside the caller's locks.
func (c *checker) collectEffects(n ast.Node, eff *effects) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if _, ok := n.Call.Fun.(*ast.FuncLit); ok {
				return false
			}
			return true
		case *ast.CallExpr:
			if key, acquire, isMutex := c.mutexOp(n); isMutex {
				if acquire {
					eff.acquires[key] = true
				}
				return true
			}
			if tgt, ok := c.foreignCallTarget(n); ok {
				eff.calls[tgt] = true
			}
			if fn := c.staticCallee(n); fn != nil {
				eff.callees[fn] = true
			}
		}
		return true
	})
}

// mutexOp classifies call as a Lock/RLock (acquire) or
// Unlock/RUnlock (release) on a Type.field mutex and returns its key.
func (c *checker) mutexOp(call *ast.CallExpr) (key string, acquire, isMutex bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	if !isSyncMutexExpr(c.pass, sel.X) {
		return "", false, false
	}
	// The mutex must itself be a field selector x.f with x of a named
	// package type: that pins it to a directive's Type.field key.
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	tn, ok := namedTypeOf(c.pass.TypesInfo.TypeOf(inner.X))
	if !ok {
		return "", false, false
	}
	return tn + "." + inner.Sel.Name, acquire, true
}

func isSyncMutexExpr(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return isSyncMutex(t)
}

// namedTypeOf returns the base name of t's named type, through one
// pointer.
func namedTypeOf(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name(), true
	}
	return "", false
}

// foreignCallTarget reports a method call on a value of an imported
// type as "pkgBase.Type".
func (c *checker) foreignCallTarget(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg() == c.pass.Pkg {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	tn, ok := namedTypeOf(recv.Type())
	if !ok {
		return "", false
	}
	return analysis.BaseName(fn.Pkg().Path()) + "." + tn, true
}

// staticCallee resolves a call to a function or method declared in the
// package under analysis.
func (c *checker) staticCallee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := c.pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() != c.pass.Pkg {
		return nil
	}
	return fn
}

// walkBlock interprets stmts with the entry held set and returns the
// fall-through held set; terminated reports that every path returned.
func (c *checker) walkBlock(stmts []ast.Stmt, h held) (out held, terminated bool) {
	for _, s := range stmts {
		h, terminated = c.walkStmt(s, h)
		if terminated {
			return h, true
		}
	}
	return h, false
}

func (c *checker) walkStmt(s ast.Stmt, h held) (held, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		c.scanExpr(s.X, h)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.scanExpr(e, h)
		}
		for _, e := range s.Lhs {
			c.scanExpr(e, h)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.scanExpr(v, h)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.scanExpr(e, h)
		}
		return h, true
	case *ast.DeferStmt:
		// `defer x.f.Unlock()` holds to function end: no release. Any
		// other deferred call is checked against the current held set —
		// an approximation that matches the lock-scoped defer idiom.
		if _, acquire, isMutex := c.mutexOp(s.Call); isMutex && !acquire {
			return h, false
		}
		c.scanExpr(s.Call, h)
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.walkBlock(lit.Body.List, held{})
		}
		// The goroutine runs without our locks; its launch is not a
		// call under them.
	case *ast.BlockStmt:
		return c.walkBlock(s.List, h)
	case *ast.IfStmt:
		if s.Init != nil {
			h, _ = c.walkStmt(s.Init, h)
		}
		c.scanExpr(s.Cond, h)
		thenOut, thenTerm := c.walkBlock(s.Body.List, h.clone())
		elseOut, elseTerm := h.clone(), false
		if s.Else != nil {
			elseOut, elseTerm = c.walkStmt(s.Else, h.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return h, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		default:
			thenOut.merge(elseOut)
			return thenOut, false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			h, _ = c.walkStmt(s.Init, h)
		}
		if s.Cond != nil {
			c.scanExpr(s.Cond, h)
		}
		bodyOut, _ := c.walkBlock(s.Body.List, h.clone())
		if s.Post != nil {
			c.walkStmt(s.Post, bodyOut)
		}
		h.merge(bodyOut)
		return h, false
	case *ast.RangeStmt:
		c.scanExpr(s.X, h)
		bodyOut, _ := c.walkBlock(s.Body.List, h.clone())
		h.merge(bodyOut)
		return h, false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.walkClauses(s, h)
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, h)
	case *ast.SendStmt:
		c.scanExpr(s.Chan, h)
		c.scanExpr(s.Value, h)
	case *ast.IncDecStmt:
		c.scanExpr(s.X, h)
	case *ast.BranchStmt:
		// break/continue/goto leave the structured flow; discard the
		// path like a return so its held set cannot pollute the merge.
		return h, true
	}
	return h, false
}

// walkClauses handles switch/type-switch/select uniformly: each clause
// starts from the entry set, non-returning clauses merge.
func (c *checker) walkClauses(s ast.Stmt, h held) (held, bool) {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			h, _ = c.walkStmt(s.Init, h)
		}
		if s.Tag != nil {
			c.scanExpr(s.Tag, h)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			h, _ = c.walkStmt(s.Init, h)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	out := h.clone()
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch cl := clause.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.scanExpr(e, h)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm != nil {
				c.walkStmt(cl.Comm, h.clone())
			}
			stmts = cl.Body
		}
		if clauseOut, term := c.walkBlock(stmts, h.clone()); !term {
			out.merge(clauseOut)
		}
	}
	return out, false
}

// scanExpr visits every call in e (in evaluation-ish order) against
// the held set; function literals are separate scopes starting empty.
func (c *checker) scanExpr(e ast.Expr, h held) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.walkBlock(n.Body.List, held{})
			return false
		case *ast.CallExpr:
			c.handleCall(n, h)
		}
		return true
	})
}

// handleCall applies one call's effect to the held set and reports
// rule violations it commits under the currently held mutexes.
func (c *checker) handleCall(call *ast.CallExpr, h held) {
	if key, acquire, isMutex := c.mutexOp(call); isMutex {
		if acquire {
			for _, r := range c.rules {
				if r.mutex == key && h[r.src] > 0 {
					c.pass.Reportf(call.Pos(),
						"acquires %s while holding %s; declared lock order forbids it (lockorder)", key, r.src)
				}
			}
			h[key]++
		} else if h[key] > 0 {
			h[key]--
		}
		return
	}
	if !h.any() {
		return
	}
	if tgt, ok := c.foreignCallTarget(call); ok {
		for _, r := range c.rules {
			if r.callPkg != "" && tgt == r.target() && h[r.src] > 0 {
				c.pass.Reportf(call.Pos(),
					"calls %s method while holding %s; declared lock order forbids it (lockorder)", tgt, r.src)
			}
		}
	}
	if fn := c.staticCallee(call); fn != nil {
		if eff, ok := c.summaries[fn]; ok {
			for _, r := range c.rules {
				if h[r.src] == 0 {
					continue
				}
				if r.mutex != "" && eff.acquires[r.mutex] {
					c.pass.Reportf(call.Pos(),
						"calls %s, which acquires %s, while holding %s; declared lock order forbids it (lockorder)",
						fn.Name(), r.mutex, r.src)
				}
				if r.callPkg != "" && eff.calls[r.target()] {
					c.pass.Reportf(call.Pos(),
						"calls %s, which calls %s methods, while holding %s; declared lock order forbids it (lockorder)",
						fn.Name(), r.target(), r.src)
				}
			}
		}
	}
}

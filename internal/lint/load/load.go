// Package load is a stdlib-only package loader for the cdcsvet
// analyzers: it parses and type-checks packages of this module (or of
// an analysistest testdata tree) without golang.org/x/tools or network
// access. Module-local imports are type-checked recursively from
// source; everything else is delegated to the toolchain's gc export
// data via go/importer.
package load

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// Loader loads packages rooted at one directory tree.
type Loader struct {
	// Fset is shared by every package the loader touches, so
	// diagnostics from different packages render consistently.
	Fset *token.FileSet

	root    string // absolute directory the import namespace is rooted at
	module  string // module path prefix; "" roots the namespace directly at root
	cache   map[string]*analysis.Package
	loading map[string]bool
	std     types.Importer
}

// New returns a loader for the tree at root. module is the module path
// that maps onto root ("repro" for this repository); the empty string
// makes every single-element import path resolve as a directory
// directly under root, which is how analysistest testdata trees are
// laid out.
func New(root, module string) *Loader {
	if abs, err := filepath.Abs(root); err == nil {
		root = abs
	}
	return &Loader{
		Fset:    token.NewFileSet(),
		root:    root,
		module:  module,
		cache:   map[string]*analysis.Package{},
		loading: map[string]bool{},
		std:     importer.Default(),
	}
}

// Dirs expands patterns into package directories under the loader's
// root: "./..." (or "...") walks the whole tree, anything else is taken
// as one directory relative to root. testdata and hidden directories
// are skipped — testdata holds intentional violations.
func (l *Loader) Dirs(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		switch pat {
		case "./...", "...":
			err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != l.root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if ok, err := hasGoFiles(path); err != nil {
					return err
				} else if ok {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		default:
			dir := pat
			if !filepath.IsAbs(dir) {
				dir = filepath.Join(l.root, dir)
			}
			if ok, err := hasGoFiles(dir); err != nil {
				return nil, err
			} else if !ok {
				return nil, fmt.Errorf("load: no Go files in %s", dir)
			}
			add(dir)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true, nil
		}
	}
	return false, nil
}

// LoadDir loads, parses, and type-checks the package in dir (which must
// be under the loader's root). Results are memoized by import path.
func (l *Loader) LoadDir(dir string) (*analysis.Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("load: %s is outside root %s", dir, l.root)
	}
	path := filepath.ToSlash(rel)
	if path == "." {
		path = ""
	}
	if l.module != "" {
		if path == "" {
			path = l.module
		} else {
			path = l.module + "/" + path
		}
	}
	if path == "" {
		return nil, fmt.Errorf("load: cannot load the bare testdata root %s as a package", dir)
	}
	return l.load(path, abs)
}

func (l *Loader) load(path, dir string) (*analysis.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importerFunc(l.importPath)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", path, err)
	}
	pkg := &analysis.Package{Path: path, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.cache[path] = pkg
	return pkg, nil
}

// importPath resolves one import during type-checking: local paths
// recurse into the loader, everything else goes to gc export data.
func (l *Loader) importPath(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.localDir(path); ok {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *Loader) localDir(path string) (string, bool) {
	var rel string
	switch {
	case l.module != "" && path == l.module:
		rel = "."
	case l.module != "" && strings.HasPrefix(path, l.module+"/"):
		rel = strings.TrimPrefix(path, l.module+"/")
	case l.module == "" && !strings.Contains(path, "."):
		// testdata mode: any dot-free path that exists under root is a
		// sibling fixture package; stdlib paths ("fmt", "sort") don't
		// collide because fixtures never shadow stdlib names.
		rel = path
	default:
		return "", false
	}
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	if ok, err := hasGoFiles(dir); err == nil && ok {
		return dir, true
	}
	return "", false
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Runner applies an analyzer suite across packages in dependency
// order with one shared fact store: before a package is analyzed,
// every loader-local package it imports is analyzed first (memoized),
// so facts exported by dependencies — sentinel declarations, lock
// hierarchies — are visible when the importer is checked. This is the
// in-process counterpart of the vetx-file relay the unitchecker driver
// does across `go vet` tool invocations.
type Runner struct {
	loader    *Loader
	analyzers []*analysis.Analyzer
	facts     *analysis.Facts
	results   map[string]*analysis.Result
}

// NewRunner returns a Runner over the loader's package namespace. It
// registers the analyzers' fact types for gob so the same suite can
// mix in-process and serialized runs.
func NewRunner(l *Loader, analyzers []*analysis.Analyzer) *Runner {
	analysis.RegisterFactTypes(analyzers)
	return &Runner{
		loader:    l,
		analyzers: analyzers,
		facts:     analysis.NewFacts(),
		results:   map[string]*analysis.Result{},
	}
}

// Analyze runs the suite on pkg (after its loader-local dependencies)
// and returns its memoized result.
func (r *Runner) Analyze(pkg *analysis.Package) (*analysis.Result, error) {
	if res, ok := r.results[pkg.Path]; ok {
		return res, nil
	}
	// Recursion terminates because type-checked packages cannot form
	// import cycles; diamonds are collapsed by the memo.
	for _, imp := range pkg.Types.Imports() {
		dir, ok := r.loader.localDir(imp.Path())
		if !ok {
			continue
		}
		dep, err := r.loader.load(imp.Path(), dir)
		if err != nil {
			return nil, err
		}
		if _, err := r.Analyze(dep); err != nil {
			return nil, err
		}
	}
	res, err := analysis.RunPackage(pkg, r.analyzers, r.facts)
	if err != nil {
		return nil, err
	}
	r.results[pkg.Path] = res
	return res, nil
}

// AnalyzeDir loads the package in dir and analyzes it (dependencies
// first).
func (r *Runner) AnalyzeDir(dir string) (*analysis.Result, error) {
	pkg, err := r.loader.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	return r.Analyze(pkg)
}

// Facts exposes the shared store — analysistest asserts exported facts
// through it.
func (r *Runner) Facts() *analysis.Facts { return r.facts }

// ModuleRoot walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func ModuleRoot(dir string) (root, module string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("load: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("load: no go.mod above %s", abs)
		}
	}
}
